package rendezvous_test

import (
	"testing"

	"rendezvous"
)

// TestScenarioAPI drives the public scenario surface end to end: a
// churn + primary-user + jammer fleet built and run purely from a seed,
// with identical results at different worker counts.
func TestScenarioAPI(t *testing.T) {
	sc := rendezvous.Scenario{
		Name:    "api-smoke",
		N:       64,
		Agents:  10,
		K:       3,
		Seed:    11,
		Horizon: 1 << 13,
		Churn:   rendezvous.Churn{WakeSpread: 400, LeaveFrac: 0.2, MinLife: 2000, MaxLife: 6000},
		PU:      rendezvous.PrimaryUsers{Count: 4, Window: 512, OnFrac: 0.5},
		Jammer:  rendezvous.Jammer{Dwell: 128},
	}
	build, err := rendezvous.ScenarioBuilder("ours", sc.N, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	res1, agents, err := sc.Run(build, 1)
	if err != nil {
		t.Fatal(err)
	}
	res8, _, err := sc.Run(build, 8)
	if err != nil {
		t.Fatal(err)
	}
	m1, m8 := res1.Meetings(), res8.Meetings()
	if len(m1) != len(m8) {
		t.Fatalf("worker counts disagree: %d vs %d meetings", len(m1), len(m8))
	}
	for i := range m1 {
		if m1[i] != m8[i] {
			t.Fatalf("meeting %d differs across worker counts: %+v vs %+v", i, m1[i], m8[i])
		}
	}
	cov := rendezvous.Summarize(res1, agents, sc.Horizon)
	if cov.Agents != sc.Agents || cov.MetPairs > cov.EligiblePairs {
		t.Fatalf("implausible coverage: %+v", cov)
	}

	// Validation surfaces through the public API too.
	badSc := sc
	badSc.K = 0
	if _, _, err := badSc.Run(build, 1); err == nil {
		t.Fatal("invalid scenario accepted")
	}
	if _, err := rendezvous.ScenarioBuilder("nope", 16, 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestEngineEnvAPI exercises Environment and Agent.Leave through the
// public Engine aliases.
func TestEngineEnvAPI(t *testing.T) {
	a, err := rendezvous.New(16, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rendezvous.New(16, []int{5, 9})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := rendezvous.NewEngine([]rendezvous.Agent{
		{Name: "x", Sched: a, Wake: 0, Leave: 5000},
		{Name: "y", Sched: b, Wake: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.RunEnv(5000, blockNothing{})
	want := eng.Run(5000)
	if res.MetCount() != want.MetCount() {
		t.Fatalf("pass-through environment changed the result: %d vs %d", res.MetCount(), want.MetCount())
	}
}

// blockNothing is the trivial all-available Environment.
type blockNothing struct{}

func (blockNothing) Available(ch, t int) bool { return true }
