// Command rvbench regenerates the paper's evaluation artifacts (Table 1,
// Figures 1–3, and the per-theorem experiments indexed in DESIGN.md) on
// the discrete-slot simulator and prints them as text tables.
//
// Usage:
//
//	rvbench              # run everything at full scale
//	rvbench -quick       # CI-sized sweeps
//	rvbench -parallel 4  # bound the sweep engine's worker pool
//	rvbench -exp t1-asym # one experiment: t1-asym t1-sym figures thm1
//	                     # thm3 sym beacon lb-ramsey lb-async oneround
//	                     # multi network network-sparse
//
// Experiments run on the internal/sweep engine: reports are
// byte-identical for a fixed -seed at any -parallel value (0 means one
// worker per CPU).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rendezvous/internal/experiments"
	"rendezvous/internal/tablecache"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rvbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rvbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (all, t1-asym, t1-sym, figures, thm1, thm3, sym, beacon, lb-ramsey, lb-async, oneround, multi, network, network-sparse)")
	quick := fs.Bool("quick", false, "shrink sweeps to CI size")
	seed := fs.Int64("seed", 1, "workload seed")
	parallel := fs.Int("parallel", 0, "sweep workers (0 = one per CPU); results are identical at any value")
	cachestats := fs.Bool("cachestats", false, "print shared table-cache counters after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cachestats {
		defer printCacheStats(out)
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed, Workers: *parallel}
	table := map[string]func(experiments.Config) *experiments.Report{
		"t1-asym":        experiments.Table1Asymmetric,
		"t1-sym":         experiments.Table1Symmetric,
		"figures":        experiments.Figures,
		"thm1":           experiments.Theorem1,
		"thm3":           experiments.Theorem3,
		"sym":            experiments.SymmetricWrapper,
		"beacon":         experiments.Beacon,
		"lb-ramsey":      experiments.LowerBoundRamsey,
		"lb-async":       experiments.LowerBoundAsync,
		"oneround":       experiments.OneRound,
		"multi":          experiments.MultiAgent,
		"network":        experiments.Network,
		"network-sparse": experiments.NetworkSparse,
	}
	if *exp == "all" {
		for _, rep := range experiments.All(cfg) {
			fmt.Fprintln(out, rep)
		}
		return nil
	}
	f, ok := table[strings.ToLower(*exp)]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	fmt.Fprintln(out, f(cfg))
	return nil
}

// printCacheStats reports the shared compiled-table cache and the
// rolling block cache after a run — the observability half of the table
// cache: how much schedule build work the run reused vs. recomputed.
func printCacheStats(out io.Writer) {
	st := tablecache.Shared().Stats()
	bs := tablecache.BlockStats()
	fmt.Fprintf(out, "table cache   hits=%d misses=%d evictions=%d entries=%d bytes=%d\n",
		st.Hits, st.Misses, st.Evictions, st.Entries, st.Bytes)
	fmt.Fprintf(out, "block cache   hits=%d misses=%d evictions=%d\n",
		bs.Hits, bs.Misses, bs.Evictions)
}
