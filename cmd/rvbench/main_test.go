package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "lb-ramsey", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "LB-RAMSEY") {
		t.Fatalf("missing experiment output:\n%s", sb.String())
	}
}

func TestRunFigures(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "figures", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 1a", "Figure 2a", "Figure 3b", "11010"} {
		if !strings.Contains(out, want) {
			t.Errorf("figures output missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "bogus"}, &sb); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Error("expected flag parse error")
	}
}
