package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "lb-ramsey", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "LB-RAMSEY") {
		t.Fatalf("missing experiment output:\n%s", sb.String())
	}
}

func TestRunFigures(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "figures", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 1a", "Figure 2a", "Figure 3b", "11010"} {
		if !strings.Contains(out, want) {
			t.Errorf("figures output missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "bogus"}, &sb); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Error("expected flag parse error")
	}
}

// TestRunParallelFlagDeterministic: rvbench output is byte-identical
// at any -parallel value for a fixed seed (the sweep engine invariant).
func TestRunParallelFlagDeterministic(t *testing.T) {
	var w1, w8 strings.Builder
	if err := run([]string{"-exp", "t1-sym", "-quick", "-seed", "3", "-parallel", "1"}, &w1); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "t1-sym", "-quick", "-seed", "3", "-parallel", "8"}, &w8); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w8.String() {
		t.Fatalf("-parallel 1 vs 8 diverged:\n%s\nvs\n%s", w1.String(), w8.String())
	}
}
