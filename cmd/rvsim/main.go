// Command rvsim runs a multi-agent blind-rendezvous simulation and
// prints every pairwise first meeting, or a fleet-scale scenario and
// prints its discovery summary.
//
// Explicit agents are specified as name=channels[@wake], e.g.:
//
//	rvsim -n 64 -alg ours -horizon 200000 \
//	      -agent base=10,20,30 -agent drone=20,40@25 -agent sensor=30,40@90
//
// Scenario mode generates the whole fleet and its environment dynamics
// deterministically from -seed instead (see -h for presets):
//
//	rvsim -scenario churn-pu -agents 256 -n 128 -horizon 65536 -seed 3
//
// Algorithms: ours (default), general (no §3.2 wrapper), crseq,
// crseq-rand, jumpstay, random, sweep, beacon-fresh, beacon-walk
// (scenario mode supports the first six).
//
// -parallel bounds the worker pool of the pairwise simulation engine
// (0 = one per CPU, 1 = the serial joint engine); the reported meetings
// are identical at every setting.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"rendezvous"
)

// agentSpec is one parsed -agent flag.
type agentSpec struct {
	name     string
	channels []int
	wake     int
}

// specList collects repeated -agent flags.
type specList []agentSpec

func (s *specList) String() string { return fmt.Sprintf("%d agents", len(*s)) }

func (s *specList) Set(v string) error {
	spec, err := parseAgent(v)
	if err != nil {
		return err
	}
	*s = append(*s, spec)
	return nil
}

func parseAgent(v string) (agentSpec, error) {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return agentSpec{}, fmt.Errorf("agent spec %q: want name=c1,c2[@wake]", v)
	}
	chanPart, wakePart, hasWake := strings.Cut(rest, "@")
	spec := agentSpec{name: name}
	for _, c := range strings.Split(chanPart, ",") {
		ch, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil {
			return agentSpec{}, fmt.Errorf("agent %q: channel %q: %v", name, c, err)
		}
		spec.channels = append(spec.channels, ch)
	}
	if hasWake {
		w, err := strconv.Atoi(wakePart)
		if err != nil || w < 0 {
			return agentSpec{}, fmt.Errorf("agent %q: wake %q must be a non-negative integer", name, wakePart)
		}
		spec.wake = w
	}
	return spec, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rvsim:", err)
		os.Exit(1)
	}
}

// scenarioPresets maps -scenario names onto their environment dynamics;
// -agents, -churn and -pu refine them.
var scenarioPresets = map[string]string{
	"calm":     "static fleet, static spectrum",
	"churn":    "staggered wakes, 25% of agents power off mid-run",
	"pu":       "8 primary users each occupying a channel 50% of every 1024-slot window",
	"churn-pu": "churn and primary users combined (the NETWORK experiment setting)",
	"jammer":   "a wide-band jammer sweeping the universe, 64 slots per channel",
	"sparse":   "churn-pu on a contact graph: √agents-side plane, radius 2.26 (≈16 neighbors each)",
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rvsim", flag.ContinueOnError)
	n := fs.Int("n", 64, "channel universe size")
	alg := fs.String("alg", "ours", "schedule algorithm")
	horizon := fs.Int("horizon", 1_000_000, "simulation slots")
	seed := fs.Uint64("seed", 1, "seed for randomized algorithms / beacon / scenario")
	parallel := fs.Int("parallel", 0, "pairwise engine workers (0 = one per CPU, 1 = serial joint engine)")
	scenarioName := fs.String("scenario", "", "run a generated fleet scenario: calm, churn, pu, churn-pu, jammer, sparse")
	fleetSize := fs.Int("agents", 64, "fleet size in scenario mode")
	churn := fs.Float64("churn", -1, "scenario mode: override leave fraction, in [0,1]")
	pu := fs.Int("pu", -1, "scenario mode: override primary-user count (≥ 0)")
	var specs specList
	fs.Var(&specs, "agent", "agent spec name=c1,c2[@wake] (repeatable)")
	fs.Usage = func() {
		o := fs.Output()
		fmt.Fprintf(o, "usage: rvsim [flags]\n\n")
		fmt.Fprintf(o, "explicit agents:\n")
		fmt.Fprintf(o, "  rvsim -n 64 -agent base=10,20,30 -agent drone=20,40@25\n\n")
		fmt.Fprintf(o, "generated fleet scenario (deterministic from -seed):\n")
		fmt.Fprintf(o, "  rvsim -scenario churn-pu -agents 256 -n 128 -horizon 65536 -seed 3\n")
		fmt.Fprintf(o, "  rvsim -scenario jammer -agents 64 -churn 0.5 -pu 4\n\npresets:\n")
		for _, name := range []string{"calm", "churn", "pu", "churn-pu", "jammer", "sparse"} {
			fmt.Fprintf(o, "  %-9s %s\n", name, scenarioPresets[name])
		}
		fmt.Fprintf(o, "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate shared numeric flags up front so both modes reject
	// nonsense the same way instead of failing deep in the engine.
	if *horizon < 1 {
		return fmt.Errorf("-horizon %d: need at least 1 slot", *horizon)
	}
	if *n < 1 {
		return fmt.Errorf("-n %d: channel universe must be non-empty", *n)
	}
	if *parallel < 0 {
		return fmt.Errorf("-parallel %d: worker count must be ≥ 0 (0 = one per CPU)", *parallel)
	}
	if *scenarioName != "" {
		if len(specs) > 0 {
			return fmt.Errorf("-scenario generates its own fleet; drop the -agent flags")
		}
		return runScenario(out, *scenarioName, *alg, *n, *fleetSize, *horizon, *parallel, *seed, *churn, *pu)
	}
	if *churn >= 0 || *pu >= 0 || *fleetSize != 64 {
		if len(specs) > 0 {
			return fmt.Errorf("-agents/-churn/-pu require -scenario (explicit -agent fleets configure agents directly)")
		}
		return fmt.Errorf("-agents/-churn/-pu require -scenario")
	}
	if len(specs) < 2 {
		return fmt.Errorf("need at least two -agent specs (or -scenario; see -h)")
	}

	agents := make([]rendezvous.Agent, 0, len(specs))
	src := rendezvous.NewBeaconSource(*seed)
	for i, sp := range specs {
		sched, err := buildSchedule(*alg, *n, sp, src, *seed+uint64(i))
		if err != nil {
			return fmt.Errorf("agent %q: %w", sp.name, err)
		}
		agents = append(agents, rendezvous.Agent{Name: sp.name, Sched: sched, Wake: sp.wake})
	}
	eng, err := rendezvous.NewEngine(agents)
	if err != nil {
		return err
	}
	// A session recycles the engine's run state; Close releases the hop
	// tables the engine borrowed from the shared cache.
	sess := eng.Session()
	defer sess.Close()
	var res *rendezvous.Result
	if *parallel == 1 {
		res = sess.Run(*horizon)
	} else {
		res = sess.RunParallel(*horizon, *parallel)
	}

	fmt.Fprintf(out, "universe n=%d  algorithm=%s  horizon=%d slots\n\n", *n, *alg, *horizon)
	meetings := res.Meetings()
	for _, m := range meetings {
		fmt.Fprintf(out, "%-10s ↔ %-10s met at slot %-8d on channel %-4d (TTR %d)\n",
			m.A, m.B, m.Slot, m.Channel, m.TTR)
	}
	var missed []string
	for i := range agents {
		for j := i + 1; j < len(agents); j++ {
			if _, ok := res.Meeting(agents[i].Name, agents[j].Name); !ok {
				missed = append(missed, fmt.Sprintf("%s ↔ %s", agents[i].Name, agents[j].Name))
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		fmt.Fprintf(out, "%-23s never met (disjoint sets or horizon too small)\n", m)
	}
	fmt.Fprintf(out, "\n%d of %d pairs met\n", len(meetings), len(meetings)+len(missed))
	return nil
}

// runScenario generates and runs a fleet scenario, printing its
// discovery summary. Everything is derived from seed, so the same
// command line reproduces the same report at any -parallel value.
func runScenario(out io.Writer, preset, alg string, n, agents, horizon, parallel int, seed uint64, churn float64, pu int) error {
	if _, ok := scenarioPresets[preset]; !ok {
		return fmt.Errorf("unknown scenario %q (want calm, churn, pu, churn-pu, jammer, sparse)", preset)
	}
	if agents < 2 {
		return fmt.Errorf("-agents %d: need at least 2", agents)
	}
	// -1 is the "no override" sentinel for both flags; anything else
	// must be a real value.
	if churn != -1 && (churn < 0 || churn > 1) {
		return fmt.Errorf("-churn %v: leave fraction must be in [0,1]", churn)
	}
	if pu != -1 && pu < 0 {
		return fmt.Errorf("-pu %d: primary-user count must be ≥ 0", pu)
	}
	sc := rendezvous.Scenario{
		Name:    preset,
		N:       n,
		Agents:  agents,
		K:       min(4, n),
		Seed:    seed,
		Horizon: horizon,
	}
	switch preset {
	case "churn", "churn-pu", "sparse":
		sc.Churn = rendezvous.Churn{WakeSpread: 2000, LeaveFrac: 0.25, MinLife: max(1, horizon/4), MaxLife: horizon}
	}
	switch preset {
	case "pu", "churn-pu", "sparse":
		sc.PU = rendezvous.PrimaryUsers{Count: 8, Window: 1024, OnFrac: 0.5}
	}
	if preset == "jammer" {
		sc.Jammer = rendezvous.Jammer{Dwell: 64}
	}
	if preset == "sparse" {
		// Constant density: ~1 agent per unit area, mean degree ≈ π·r².
		sc.Grid = rendezvous.Grid{Side: math.Sqrt(float64(agents)), Radius: 2.26}
	}
	if churn >= 0 {
		sc.Churn.LeaveFrac = churn
		if sc.Churn.MinLife == 0 {
			sc.Churn.MinLife, sc.Churn.MaxLife = max(1, horizon/4), horizon
		}
	}
	if pu >= 0 {
		sc.PU.Count = pu
		if sc.PU.Window == 0 {
			sc.PU.Window, sc.PU.OnFrac = 1024, 0.5
		}
	}
	build, err := rendezvous.ScenarioBuilder(alg, n, seed)
	if err != nil {
		return err
	}
	res, fleet, err := sc.Run(build, parallel)
	if err != nil {
		return err
	}
	// The contact-graph summary walks only the in-range edges; at
	// network scale the all-pairs Summarize loop would dominate the run.
	graph, err := sc.ContactGraph()
	if err != nil {
		return err
	}
	cov := rendezvous.SummarizeContact(res, fleet, horizon, graph)
	fmt.Fprintf(out, "%s  algorithm=%s\n\n", sc, alg)
	if graph != nil {
		pairs := agents * (agents - 1) / 2
		fmt.Fprintf(out, "contact edges     %d of %d pairs (%.0fx candidate reduction)\n",
			graph.Edges(), pairs, float64(pairs)/float64(max(1, graph.Edges())))
	}
	fmt.Fprintf(out, "eligible pairs    %d (channel sets overlap, lifetimes intersect)\n", cov.EligiblePairs)
	fmt.Fprintf(out, "pairs met         %d (%.1f%%)\n", cov.MetPairs, 100*cov.MetFrac())
	fmt.Fprintf(out, "mean TTR          %.0f slots\n", cov.MeanTTR)
	fmt.Fprintf(out, "last first-meet   slot %d\n", cov.LastSlot)
	return nil
}

func buildSchedule(alg string, n int, sp agentSpec, src rendezvous.BeaconSource, seed uint64) (rendezvous.Schedule, error) {
	switch alg {
	case "ours":
		return rendezvous.New(n, sp.channels)
	case "general":
		return rendezvous.NewGeneral(n, sp.channels)
	case "crseq":
		return rendezvous.NewCRSEQ(n, sp.channels)
	case "crseq-rand":
		return rendezvous.NewCRSEQRandomized(n, sp.channels, seed)
	case "jumpstay":
		return rendezvous.NewJumpStay(n, sp.channels)
	case "random":
		return rendezvous.NewRandom(n, sp.channels, seed, 1<<22)
	case "sweep":
		return rendezvous.NewSweep(n, sp.channels)
	case "beacon-fresh":
		s, err := rendezvous.NewBeaconFresh(n, sp.channels, src, rendezvous.BeaconConfig{})
		if err != nil {
			return nil, err
		}
		return rendezvous.AlignWake(s, sp.wake), nil
	case "beacon-walk":
		s, err := rendezvous.NewBeaconWalk(n, sp.channels, src, rendezvous.BeaconConfig{})
		if err != nil {
			return nil, err
		}
		return rendezvous.AlignWake(s, sp.wake), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", alg)
	}
}
