// Command rvsim runs a multi-agent blind-rendezvous scenario and prints
// every pairwise first meeting.
//
// Agents are specified as name=channels[@wake], e.g.:
//
//	rvsim -n 64 -alg ours -horizon 200000 \
//	      -agent base=10,20,30 -agent drone=20,40@25 -agent sensor=30,40@90
//
// Algorithms: ours (default), general (no §3.2 wrapper), crseq,
// crseq-rand, jumpstay, random, sweep, beacon-fresh, beacon-walk.
//
// -parallel bounds the worker pool of the pairwise simulation engine
// (0 = one per CPU, 1 = the serial joint engine); the reported meetings
// are identical at every setting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"rendezvous"
)

// agentSpec is one parsed -agent flag.
type agentSpec struct {
	name     string
	channels []int
	wake     int
}

// specList collects repeated -agent flags.
type specList []agentSpec

func (s *specList) String() string { return fmt.Sprintf("%d agents", len(*s)) }

func (s *specList) Set(v string) error {
	spec, err := parseAgent(v)
	if err != nil {
		return err
	}
	*s = append(*s, spec)
	return nil
}

func parseAgent(v string) (agentSpec, error) {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return agentSpec{}, fmt.Errorf("agent spec %q: want name=c1,c2[@wake]", v)
	}
	chanPart, wakePart, hasWake := strings.Cut(rest, "@")
	spec := agentSpec{name: name}
	for _, c := range strings.Split(chanPart, ",") {
		ch, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil {
			return agentSpec{}, fmt.Errorf("agent %q: channel %q: %v", name, c, err)
		}
		spec.channels = append(spec.channels, ch)
	}
	if hasWake {
		w, err := strconv.Atoi(wakePart)
		if err != nil || w < 0 {
			return agentSpec{}, fmt.Errorf("agent %q: wake %q must be a non-negative integer", name, wakePart)
		}
		spec.wake = w
	}
	return spec, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rvsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rvsim", flag.ContinueOnError)
	n := fs.Int("n", 64, "channel universe size")
	alg := fs.String("alg", "ours", "schedule algorithm")
	horizon := fs.Int("horizon", 1_000_000, "simulation slots")
	seed := fs.Uint64("seed", 1, "seed for randomized algorithms / beacon")
	parallel := fs.Int("parallel", 0, "pairwise engine workers (0 = one per CPU, 1 = serial joint engine)")
	var specs specList
	fs.Var(&specs, "agent", "agent spec name=c1,c2[@wake] (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(specs) < 2 {
		return fmt.Errorf("need at least two -agent specs")
	}

	agents := make([]rendezvous.Agent, 0, len(specs))
	src := rendezvous.NewBeaconSource(*seed)
	for i, sp := range specs {
		sched, err := buildSchedule(*alg, *n, sp, src, *seed+uint64(i))
		if err != nil {
			return fmt.Errorf("agent %q: %w", sp.name, err)
		}
		agents = append(agents, rendezvous.Agent{Name: sp.name, Sched: sched, Wake: sp.wake})
	}
	eng, err := rendezvous.NewEngine(agents)
	if err != nil {
		return err
	}
	var res *rendezvous.Result
	if *parallel == 1 {
		res = eng.Run(*horizon)
	} else {
		res = eng.RunParallel(*horizon, *parallel)
	}

	fmt.Fprintf(out, "universe n=%d  algorithm=%s  horizon=%d slots\n\n", *n, *alg, *horizon)
	meetings := res.Meetings()
	for _, m := range meetings {
		fmt.Fprintf(out, "%-10s ↔ %-10s met at slot %-8d on channel %-4d (TTR %d)\n",
			m.A, m.B, m.Slot, m.Channel, m.TTR)
	}
	var missed []string
	for i := range agents {
		for j := i + 1; j < len(agents); j++ {
			if _, ok := res.Meeting(agents[i].Name, agents[j].Name); !ok {
				missed = append(missed, fmt.Sprintf("%s ↔ %s", agents[i].Name, agents[j].Name))
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		fmt.Fprintf(out, "%-23s never met (disjoint sets or horizon too small)\n", m)
	}
	fmt.Fprintf(out, "\n%d of %d pairs met\n", len(meetings), len(meetings)+len(missed))
	return nil
}

func buildSchedule(alg string, n int, sp agentSpec, src rendezvous.BeaconSource, seed uint64) (rendezvous.Schedule, error) {
	switch alg {
	case "ours":
		return rendezvous.New(n, sp.channels)
	case "general":
		return rendezvous.NewGeneral(n, sp.channels)
	case "crseq":
		return rendezvous.NewCRSEQ(n, sp.channels)
	case "crseq-rand":
		return rendezvous.NewCRSEQRandomized(n, sp.channels, seed)
	case "jumpstay":
		return rendezvous.NewJumpStay(n, sp.channels)
	case "random":
		return rendezvous.NewRandom(n, sp.channels, seed, 1<<22)
	case "sweep":
		return rendezvous.NewSweep(n, sp.channels)
	case "beacon-fresh":
		s, err := rendezvous.NewBeaconFresh(n, sp.channels, src, rendezvous.BeaconConfig{})
		if err != nil {
			return nil, err
		}
		return rendezvous.AlignWake(s, sp.wake), nil
	case "beacon-walk":
		s, err := rendezvous.NewBeaconWalk(n, sp.channels, src, rendezvous.BeaconConfig{})
		if err != nil {
			return nil, err
		}
		return rendezvous.AlignWake(s, sp.wake), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", alg)
	}
}
