package main

import (
	"fmt"
	"strings"
	"testing"
)

// renderAgent is the canonical inverse of parseAgent: name=c1,c2@wake.
// The wake suffix always prints, because a parsed spec's wake is
// defined (zero when omitted) and the canonical form must round-trip.
func renderAgent(sp agentSpec) string {
	parts := make([]string, len(sp.channels))
	for i, c := range sp.channels {
		parts[i] = fmt.Sprint(c)
	}
	return fmt.Sprintf("%s=%s@%d", sp.name, strings.Join(parts, ","), sp.wake)
}

// FuzzParseAgentSpec hammers rvsim's -agent spec parser with arbitrary
// input. Properties: it never panics; every accepted spec is
// structurally valid (non-empty name, at least one channel,
// non-negative wake); and the canonical re-rendering parses back to the
// identical spec, so accepted specs have one lossless interpretation.
// The seed corpus lives in testdata/fuzz/FuzzParseAgentSpec/.
func FuzzParseAgentSpec(f *testing.F) {
	f.Add("base=10,20,30")
	f.Add("drone=20,40@25")
	f.Add("sensor=30, 40@90")
	f.Add("x=1")
	f.Add("=1,2@3")
	f.Add("a=b,c")
	f.Fuzz(func(t *testing.T, input string) {
		sp, err := parseAgent(input)
		if err != nil {
			return
		}
		if sp.name == "" {
			t.Fatalf("accepted empty name: %q", input)
		}
		if len(sp.channels) == 0 {
			t.Fatalf("accepted empty channel list: %q", input)
		}
		if sp.wake < 0 {
			t.Fatalf("accepted negative wake %d: %q", sp.wake, input)
		}
		canon := renderAgent(sp)
		sp2, err := parseAgent(canon)
		if err != nil {
			t.Fatalf("canonical form rejected:\n input: %q\n canon: %q\n error: %v", input, canon, err)
		}
		if renderAgent(sp2) != canon {
			t.Fatalf("canonical form not a fixed point:\n input: %q\n canon: %q\nreparse: %q",
				input, canon, renderAgent(sp2))
		}
	})
}
