package main

import (
	"strings"
	"testing"
)

func TestParseAgent(t *testing.T) {
	cases := []struct {
		in       string
		name     string
		channels []int
		wake     int
		wantErr  bool
	}{
		{in: "base=10,20,30", name: "base", channels: []int{10, 20, 30}},
		{in: "drone=20,40@25", name: "drone", channels: []int{20, 40}, wake: 25},
		{in: "x=5", name: "x", channels: []int{5}},
		{in: "noequals", wantErr: true},
		{in: "=1,2", wantErr: true},
		{in: "a=1,zz", wantErr: true},
		{in: "a=1@-3", wantErr: true},
		{in: "a=1@x", wantErr: true},
	}
	for _, c := range cases {
		got, err := parseAgent(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseAgent(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseAgent(%q): %v", c.in, err)
			continue
		}
		if got.name != c.name || got.wake != c.wake || len(got.channels) != len(c.channels) {
			t.Errorf("parseAgent(%q) = %+v", c.in, got)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-n", "64", "-horizon", "500000",
		"-agent", "base=10,20,30",
		"-agent", "drone=20,40@25",
		"-agent", "sensor=30,40@90",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "3 of 3 pairs met") {
		t.Fatalf("expected all pairs to meet:\n%s", out)
	}
	if !strings.Contains(out, "base") || !strings.Contains(out, "drone") {
		t.Fatalf("missing agents in output:\n%s", out)
	}
}

func TestRunDisjointSetsReported(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-n", "16", "-horizon", "10000",
		"-agent", "a=1,2",
		"-agent", "b=9,10",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "never met") {
		t.Fatalf("expected never-met notice:\n%s", sb.String())
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"ours", "general", "crseq", "crseq-rand", "jumpstay", "random", "sweep", "beacon-fresh", "beacon-walk"} {
		var sb strings.Builder
		err := run([]string{
			"-n", "32", "-alg", alg, "-horizon", "400000",
			"-agent", "a=3,9",
			"-agent", "b=9,20@7",
		}, &sb)
		if err != nil {
			t.Fatalf("alg %s: %v", alg, err)
		}
		if !strings.Contains(sb.String(), "pairs met") {
			t.Fatalf("alg %s: malformed output", alg)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-agent", "a=1,2"}, &sb); err == nil {
		t.Error("single agent: expected error")
	}
	if err := run([]string{"-alg", "nope", "-agent", "a=1", "-agent", "b=1"}, &sb); err == nil {
		t.Error("unknown algorithm: expected error")
	}
	if err := run([]string{"-n", "4", "-agent", "a=9", "-agent", "b=1"}, &sb); err == nil {
		t.Error("out-of-range channel: expected error")
	}
}

// TestRunFlagValidation: numeric flags are checked before either mode
// runs, so nonsense dies with a usage error instead of deep in the
// engine — and the message names the offending flag.
func TestRunFlagValidation(t *testing.T) {
	cases := map[string]struct {
		args []string
		want string
	}{
		"zero-horizon":      {[]string{"-horizon", "0", "-agent", "a=1", "-agent", "b=1"}, "-horizon"},
		"negative-horizon":  {[]string{"-horizon", "-5", "-scenario", "calm"}, "-horizon"},
		"zero-universe":     {[]string{"-n", "0", "-agent", "a=1", "-agent", "b=1"}, "-n"},
		"negative-universe": {[]string{"-n", "-2", "-scenario", "calm"}, "-n"},
		"negative-parallel": {[]string{"-parallel", "-1", "-agent", "a=1", "-agent", "b=1"}, "-parallel"},
	}
	for name, tc := range cases {
		var sb strings.Builder
		err := run(tc.args, &sb)
		if err == nil {
			t.Errorf("%s: expected error", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", name, err, tc.want)
		}
	}
}

func TestRunScenarioMode(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-scenario", "churn-pu", "-agents", "24", "-n", "64", "-horizon", "16384", "-seed", "5",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"churn-pu", "eligible pairs", "pairs met", "mean TTR"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scenario output missing %q:\n%s", want, out)
		}
	}
}

// TestRunScenarioDeterministicAcrossParallel: the scenario summary is a
// pure function of the seed, whatever -parallel says.
func TestRunScenarioDeterministicAcrossParallel(t *testing.T) {
	args := func(parallel string) []string {
		return []string{
			"-scenario", "churn", "-agents", "16", "-n", "32",
			"-horizon", "8192", "-seed", "9", "-parallel", parallel,
		}
	}
	var serial strings.Builder
	if err := run(args("1"), &serial); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"0", "4"} {
		var sb strings.Builder
		if err := run(args(p), &sb); err != nil {
			t.Fatalf("parallel=%s: %v", p, err)
		}
		if sb.String() != serial.String() {
			t.Fatalf("parallel=%s scenario output diverged:\n%s\nvs\n%s", p, sb.String(), serial.String())
		}
	}
}

func TestRunScenarioErrors(t *testing.T) {
	var sb strings.Builder
	cases := map[string][]string{
		"unknown-preset":     {"-scenario", "bogus"},
		"agents-too-small":   {"-scenario", "calm", "-agents", "1"},
		"churn-out-of-range": {"-scenario", "churn", "-churn", "1.5"},
		"churn-negative":     {"-scenario", "churn", "-churn", "-0.5"},
		"pu-negative":        {"-scenario", "pu", "-pu", "-3"},
		"pu-with-agents":     {"-pu", "3", "-agent", "a=1", "-agent", "b=1"},
		"churn-no-scenario":  {"-churn", "0.5"},
		"agent-and-scenario": {"-scenario", "calm", "-agent", "a=1,2"},
		"scenario-bad-alg":   {"-scenario", "calm", "-alg", "beacon-fresh"},
	}
	for name, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestRunParallelFlagDeterministic: the pairwise engine must print the
// same meetings as the serial joint engine at every -parallel value.
func TestRunParallelFlagDeterministic(t *testing.T) {
	args := func(parallel string) []string {
		return []string{
			"-n", "64", "-horizon", "500000", "-parallel", parallel,
			"-agent", "base=10,20,30",
			"-agent", "drone=20,40@25",
			"-agent", "sensor=30,40@90",
		}
	}
	var serial strings.Builder
	if err := run(args("1"), &serial); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"0", "2", "8"} {
		var sb strings.Builder
		if err := run(args(p), &sb); err != nil {
			t.Fatalf("parallel=%s: %v", p, err)
		}
		if sb.String() != serial.String() {
			t.Fatalf("parallel=%s output diverged from serial:\n%s\nvs\n%s", p, sb.String(), serial.String())
		}
	}
}
