package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden corpus for rvsim's output: every scenario preset plus one
// explicit-agent run, at small fixed parameters and a pinned seed,
// committed under testdata/golden/ and enforced byte for byte (the
// scenario engine's determinism contract makes these stable across
// machines and worker counts). Regenerate intentional changes with
// `make golden` and review the diff.

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenRuns pins each corpus entry's command line.
var goldenRuns = []struct {
	name string
	args []string
}{
	{"preset-calm", []string{"-scenario", "calm", "-agents", "16", "-n", "32", "-horizon", "8192", "-seed", "11"}},
	{"preset-churn", []string{"-scenario", "churn", "-agents", "16", "-n", "32", "-horizon", "8192", "-seed", "11"}},
	{"preset-pu", []string{"-scenario", "pu", "-agents", "16", "-n", "32", "-horizon", "8192", "-seed", "11"}},
	{"preset-churn-pu", []string{"-scenario", "churn-pu", "-agents", "16", "-n", "32", "-horizon", "8192", "-seed", "11"}},
	{"preset-jammer", []string{"-scenario", "jammer", "-agents", "16", "-n", "32", "-horizon", "8192", "-seed", "11"}},
	{"preset-sparse", []string{"-scenario", "sparse", "-agents", "64", "-n", "32", "-horizon", "8192", "-seed", "11"}},
	{"preset-overrides", []string{"-scenario", "calm", "-agents", "12", "-n", "16", "-horizon", "4096", "-seed", "11", "-churn", "0.5", "-pu", "2"}},
	{"explicit-agents", []string{"-n", "64", "-horizon", "500000", "-agent", "base=10,20,30", "-agent", "drone=20,40@25", "-agent", "sensor=30,40@90"}},
}

func TestGoldenSimOutput(t *testing.T) {
	for _, g := range goldenRuns {
		t.Run(g.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(g.args, &sb); err != nil {
				t.Fatalf("rvsim %s: %v", strings.Join(g.args, " "), err)
			}
			path := filepath.Join("testdata", "golden", g.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden: %v\n(run `make golden` and commit the result)", err)
			}
			if sb.String() != string(want) {
				t.Errorf("output diverged from %s:\n--- got ---\n%s\n--- want ---\n%s\n(if intentional, run `make golden`)",
					path, sb.String(), want)
			}
		})
	}
}
