// Command rvserve is the long-running rendezvous service: schedule
// generation and simulation jobs over HTTP/JSON, built on engine
// sessions and the shared table cache so repeated requests reuse
// compiled hop tables instead of rebuilding them.
//
//	rvserve -addr 127.0.0.1:8080 -workers 8
//
// Endpoints (see internal/serve):
//
//	POST   /v1/schedule     one agent's hop sequence (deterministic)
//	POST   /v1/jobs         submit a scenario simulation (idempotent)
//	GET    /v1/jobs/{id}    job status and result
//	DELETE /v1/jobs/{id}    cancel a queued/running job, evict a finished one
//	GET    /v1/stats        cache, queue, and per-route latency counters
//	GET    /v1/healthz      liveness
//
// A full queue or an exceeded per-fleet quota (-max-per-fleet) sheds
// load with 429 and a Retry-After hint; jobs carry optional per-run
// deadlines (spec TimeoutMs or -job-timeout) and finished jobs are
// evicted after -job-ttl.
//
// On SIGINT/SIGTERM the server stops accepting work, lets in-flight
// and queued jobs finish under the -drain deadline (queued jobs past
// it are reported aborted), closes every engine, and prints a drain
// report. A nonzero pinned count in that report is a table-cache pin
// leak and makes the exit status nonzero.
//
// Setting RVSERVE_CHAOS=1 arms the deterministic fault injector
// (worker stalls, mid-job panics, engine cancellations keyed on job
// id) — a test harness for drain-under-chaos, never for production.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rendezvous/internal/serve"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sig); err != nil {
		fmt.Fprintln(os.Stderr, "rvserve:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a signal arrives or the
// listener fails. It is the whole program behind flag parsing, taking
// the signal channel so tests can drive shutdown.
func run(args []string, out io.Writer, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("rvserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workers := fs.Int("workers", 0, "job worker pool size (0 = one per CPU)")
	queue := fs.Int("queue", 1024, "job queue depth; a full queue rejects submissions")
	sessions := fs.Int("sessions", 8, "engine sessions cached per worker, keyed by fleet shape")
	drain := fs.Duration("drain", 30*time.Second, "shutdown deadline for queued jobs")
	maxSlots := fs.Int("max-slots", 65536, "largest hop table /v1/schedule returns")
	jobTTL := fs.Duration("job-ttl", 0, "retention for finished jobs (0 = 15m, negative = keep forever)")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-job deadline (0 = none; spec TimeoutMs overrides)")
	maxPerFleet := fs.Int("max-per-fleet", 0, "max live jobs per fleet shape (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *drain < 0 {
		return fmt.Errorf("-drain %s: deadline must be non-negative", *drain)
	}

	cfg := serve.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		SessionsPerWorker: *sessions,
		MaxScheduleSlots:  *maxSlots,
		JobTTL:            *jobTTL,
		JobTimeout:        *jobTimeout,
		MaxPerFleet:       *maxPerFleet,
	}
	if os.Getenv("RVSERVE_CHAOS") != "" {
		cfg.PreRun = chaosPreRun
		fmt.Fprintln(out, "rvserve: CHAOS fault injection armed (RVSERVE_CHAOS)")
	}
	srv := serve.NewServer(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		// The pool is already running; release it before reporting.
		srv.Drain(0)
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	st := srv.Manager().Stats()
	fmt.Fprintf(out, "rvserve: listening on %s (workers=%d queue=%d)\n",
		ln.Addr(), st.Workers, st.QueueCapacity)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		srv.Drain(0)
		return fmt.Errorf("serve: %w", err)
	case s := <-sig:
		fmt.Fprintf(out, "rvserve: %v, draining (deadline %s)\n", s, *drain)
	}

	// Two-stage drain: stop the HTTP side first so no new jobs can
	// arrive, then let the worker pool finish what it holds.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(out, "rvserve: http shutdown: %v\n", err)
	}
	rep := srv.Drain(*drain)
	fmt.Fprintf(out, "rvserve: drained done=%d failed=%d aborted=%d canceled=%d pinned=%d\n",
		rep.Done, rep.Failed, rep.Aborted, rep.Canceled, rep.Pinned)
	if rep.Pinned != 0 {
		return fmt.Errorf("pin leak: %d cache entries still pinned after drain", rep.Pinned)
	}
	return nil
}

// chaosPreRun is the deterministic fault injector behind RVSERVE_CHAOS:
// keyed on the job's content-hash id, it stalls the worker, panics
// mid-job (recovered into a failed status), or fires the job's
// engine-level canceler. Ids are content hashes, so a given workload
// always draws the same fault schedule.
func chaosPreRun(j *serve.Job) {
	h := fnv.New32a()
	h.Write([]byte(j.ID))
	switch h.Sum32() % 4 {
	case 1:
		time.Sleep(2 * time.Millisecond)
	case 2:
		panic("chaos: injected panic")
	case 3:
		j.CancelEngine()
	}
}
