package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer lets the test read run's output while run is still
// writing it from its own goroutine.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// waitForAddr polls the startup line for the bound address.
func waitForAddr(t *testing.T, buf *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		out := buf.String()
		if _, rest, ok := strings.Cut(out, "listening on "); ok {
			return strings.Fields(rest)[0]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never announced its address; output:\n%s", buf.String())
	return ""
}

// TestServeAndDrain boots the daemon on an ephemeral port, runs a
// schedule request and a job through it, then delivers SIGTERM and
// checks the drain report: everything finished, nothing pinned.
func TestServeAndDrain(t *testing.T) {
	buf := &syncBuffer{}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain", "30s"}, buf, sig)
	}()
	addr := waitForAddr(t, buf)
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/schedule", "application/json",
		strings.NewReader(`{"N":8,"Channels":[1,3],"Slots":16}`))
	if err != nil {
		t.Fatalf("schedule request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule status = %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"Scenario":{"N":12,"Agents":6,"K":4,"Seed":3,"Horizon":2048}}`))
	if err != nil {
		t.Fatalf("job submit: %v", err)
	}
	var sub struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	resp.Body.Close()
	for {
		resp, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatalf("poll job: %v", err)
		}
		var jr struct{ Status string }
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatalf("decode job: %v", err)
		}
		resp.Body.Close()
		if jr.Status == "done" {
			break
		}
		if jr.Status == "failed" || jr.Status == "aborted" {
			t.Fatalf("job ended %s", jr.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output:\n%s", err, buf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("drain never completed; output:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "drained done=1 failed=0 aborted=0 canceled=0 pinned=0") {
		t.Fatalf("drain report missing or wrong:\n%s", out)
	}
}

// TestServeChaosDrain is the end-to-end drain-under-chaos check: with
// RVSERVE_CHAOS armed the daemon takes a burst of jobs whose fault
// schedule stalls workers, panics mid-job, and cancels engines — and a
// SIGTERM drain must still exit cleanly (exit code nil) with zero
// leaked pins, every job accounted for in the report.
func TestServeChaosDrain(t *testing.T) {
	t.Setenv("RVSERVE_CHAOS", "1")
	buf := &syncBuffer{}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "4", "-drain", "60s"}, buf, sig)
	}()
	addr := waitForAddr(t, buf)
	base := "http://" + addr
	if !strings.Contains(buf.String(), "CHAOS fault injection armed") {
		t.Fatalf("chaos banner missing:\n%s", buf.String())
	}

	total := 0
	for seed := 1; seed <= 4; seed++ {
		for _, horizon := range []int{512, 1024, 2048, 4096} {
			body := fmt.Sprintf(`{"Scenario":{"N":12,"Agents":8,"K":4,"Seed":%d,"Horizon":%d}}`, seed, horizon)
			resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit status = %d", resp.StatusCode)
			}
			total++
		}
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("chaos drain exited nonzero: %v; output:\n%s", err, buf.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("chaos drain never completed; output:\n%s", buf.String())
	}
	out := buf.String()
	_, repLine, ok := strings.Cut(out, "drained ")
	if !ok {
		t.Fatalf("no drain report:\n%s", out)
	}
	var nDone, nFailed, nAborted, nCanceled, nPinned int
	if _, err := fmt.Sscanf(repLine, "done=%d failed=%d aborted=%d canceled=%d pinned=%d",
		&nDone, &nFailed, &nAborted, &nCanceled, &nPinned); err != nil {
		t.Fatalf("unparseable drain report %q: %v", repLine, err)
	}
	if nDone+nFailed+nAborted+nCanceled != total {
		t.Fatalf("drain accounted for %d of %d jobs:\n%s", nDone+nFailed+nAborted+nCanceled, total, out)
	}
	if nPinned != 0 {
		t.Fatalf("chaos drain leaked %d pins:\n%s", nPinned, out)
	}
	if nFailed == 0 && nCanceled == 0 {
		t.Fatalf("chaos schedule injected no faults (done=%d): suspicious\n%s", nDone, out)
	}
}

func TestRunFlagErrors(t *testing.T) {
	buf := &syncBuffer{}
	if err := run([]string{"-drain", "-1s"}, buf, nil); err == nil ||
		!strings.Contains(err.Error(), "-drain") {
		t.Fatalf("negative drain: err = %v, want -drain usage error", err)
	}
	if err := run([]string{"-addr", "256.256.256.256:1"}, buf, nil); err == nil {
		t.Fatal("unlistenable address: expected error")
	}
}

func TestMainSmokeHelp(t *testing.T) {
	buf := &syncBuffer{}
	err := run([]string{"-h"}, buf, nil)
	if err == nil || !strings.Contains(err.Error(), "help") {
		// flag.ContinueOnError returns flag.ErrHelp for -h.
		t.Fatalf("-h: err = %v, want flag.ErrHelp", err)
	}
}
