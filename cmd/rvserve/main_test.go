package main

import (
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer lets the test read run's output while run is still
// writing it from its own goroutine.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// waitForAddr polls the startup line for the bound address.
func waitForAddr(t *testing.T, buf *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		out := buf.String()
		if _, rest, ok := strings.Cut(out, "listening on "); ok {
			return strings.Fields(rest)[0]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never announced its address; output:\n%s", buf.String())
	return ""
}

// TestServeAndDrain boots the daemon on an ephemeral port, runs a
// schedule request and a job through it, then delivers SIGTERM and
// checks the drain report: everything finished, nothing pinned.
func TestServeAndDrain(t *testing.T) {
	buf := &syncBuffer{}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain", "30s"}, buf, sig)
	}()
	addr := waitForAddr(t, buf)
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/schedule", "application/json",
		strings.NewReader(`{"N":8,"Channels":[1,3],"Slots":16}`))
	if err != nil {
		t.Fatalf("schedule request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule status = %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"Scenario":{"N":12,"Agents":6,"K":4,"Seed":3,"Horizon":2048}}`))
	if err != nil {
		t.Fatalf("job submit: %v", err)
	}
	var sub struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	resp.Body.Close()
	for {
		resp, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatalf("poll job: %v", err)
		}
		var jr struct{ Status string }
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatalf("decode job: %v", err)
		}
		resp.Body.Close()
		if jr.Status == "done" {
			break
		}
		if jr.Status == "failed" || jr.Status == "aborted" {
			t.Fatalf("job ended %s", jr.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output:\n%s", err, buf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("drain never completed; output:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "drained done=1 failed=0 aborted=0 pinned=0") {
		t.Fatalf("drain report missing or wrong:\n%s", out)
	}
}

func TestRunFlagErrors(t *testing.T) {
	buf := &syncBuffer{}
	if err := run([]string{"-drain", "-1s"}, buf, nil); err == nil ||
		!strings.Contains(err.Error(), "-drain") {
		t.Fatalf("negative drain: err = %v, want -drain usage error", err)
	}
	if err := run([]string{"-addr", "256.256.256.256:1"}, buf, nil); err == nil {
		t.Fatal("unlistenable address: expected error")
	}
}

func TestMainSmokeHelp(t *testing.T) {
	buf := &syncBuffer{}
	err := run([]string{"-h"}, buf, nil)
	if err == nil || !strings.Contains(err.Error(), "help") {
		// flag.ContinueOnError returns flag.ErrHelp for -h.
		t.Fatalf("-h: err = %v, want flag.ErrHelp", err)
	}
}
