package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: rendezvous
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkGeneralPairScan/slots         	     541	   2207333 ns/op	       0 B/op	       0 allocs/op
BenchmarkGeneralPairScan/block         	    2899	    408896 ns/op	    4096 B/op	       2 allocs/op
BenchmarkChannelLookupOurs-8           	31210146	        38.52 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	rendezvous	10.376s
pkg: rendezvous/internal/sweep
BenchmarkMapScaling-8   	    1000	   1234 ns/op
ok  	rendezvous/internal/sweep	1.2s
`

func TestParse(t *testing.T) {
	f, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.GoOS != "linux" || f.GoArch != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Fatalf("bad context: %+v", f)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}
	b := f.Benchmarks[1]
	if b.Pkg != "rendezvous" || b.Name != "BenchmarkGeneralPairScan/block" {
		t.Fatalf("bad benchmark identity: %+v", b)
	}
	if b.Iterations != 2899 || b.NsPerOp != 408896 {
		t.Fatalf("bad measurements: %+v", b)
	}
	if b.Metrics["B/op"] != 4096 || b.Metrics["allocs/op"] != 2 {
		t.Fatalf("bad metrics: %+v", b.Metrics)
	}
	c := f.Benchmarks[2]
	if c.Procs != 8 || c.Name != "BenchmarkChannelLookupOurs" || c.NsPerOp != 38.52 {
		t.Fatalf("bad procs split: %+v", c)
	}
	last := f.Benchmarks[3]
	if last.Pkg != "rendezvous/internal/sweep" || last.Metrics != nil {
		t.Fatalf("bad package tracking: %+v", last)
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var echo strings.Builder
	err := run([]string{"-out", out, "-date", "2026-07-28"}, strings.NewReader(sample), &echo)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"date": "2026-07-28"`, `"BenchmarkGeneralPairScan/slots"`, `"ns_per_op"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("output missing %q:\n%s", want, data)
		}
	}
	// The raw bench output must be echoed so the human still sees it.
	if !strings.Contains(echo.String(), "BenchmarkGeneralPairScan/slots") {
		t.Fatalf("input not echoed: %q", echo.String())
	}
}

// TestRunDeterministicOutput: for a fixed -date, the emitted JSON is a
// pure function of the input — byte-identical across runs (no map
// iteration order or timestamps leaking into the artifact).
func TestRunDeterministicOutput(t *testing.T) {
	runOnce := func() string {
		out := filepath.Join(t.TempDir(), "bench.json")
		var echo strings.Builder
		if err := run([]string{"-out", out, "-date", "2026-07-28"}, strings.NewReader(sample), &echo); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("reruns diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestRunStdoutWhenNoOut: omitting -out streams the JSON to stdout and
// still echoes the raw input.
func TestRunStdoutWhenNoOut(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var echo strings.Builder
	runErr := run([]string{"-date", "2026-07-28"}, strings.NewReader(sample), &echo)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"benchmarks"`) {
		t.Fatalf("stdout missing JSON payload:\n%s", data)
	}
}

func TestRunFlagAndIOErrors(t *testing.T) {
	var echo strings.Builder
	if err := run([]string{"-bogus"}, strings.NewReader(""), &echo); err == nil {
		t.Error("unknown flag: expected parse error")
	}
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "out.json")
	if err := run([]string{"-out", bad}, strings.NewReader(sample), &echo); err == nil {
		t.Error("unwritable -out path: expected error")
	}
}

// writeTrajectory writes a trajectory point for compare-mode tests.
func writeTrajectory(t *testing.T, dir, name, date string, benches []Benchmark) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f := File{Date: date, Benchmarks: benches}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(pkg, name string, ns, allocs float64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, Procs: 1, Iterations: 1, NsPerOp: ns,
		Metrics: map[string]float64{"allocs/op": allocs}}
}

// TestCompareTableAndGate: compare mode renders deltas for matched
// benchmarks, lists additions/removals without failing on them, and
// gates only on threshold-crossing regressions.
func TestCompareTableAndGate(t *testing.T) {
	dir := t.TempDir()
	old := writeTrajectory(t, dir, "old.json", "2026-07-01", []Benchmark{
		bench("p", "BenchmarkStable", 1000, 10),
		bench("p", "BenchmarkFaster", 2000, 40),
		bench("p", "BenchmarkGone", 10, 1),
	})
	new := writeTrajectory(t, dir, "new.json", "2026-07-28", []Benchmark{
		bench("p", "BenchmarkStable", 1020, 10), // +2% ns: under a 5% gate
		bench("p", "BenchmarkFaster", 1000, 20), // improvement: never gates
		bench("p", "BenchmarkNew", 5, 2),
	})
	var out strings.Builder
	if err := runCompare(old, new, gateSpec{ns: 5, allocs: 10, bytes: -1}, &out); err != nil {
		t.Fatalf("within thresholds, got error: %v\n%s", err, out.String())
	}
	for _, want := range []string{"BenchmarkStable", "+2.0%", "-50.0%",
		"only in " + new + ": BenchmarkNew", "only in " + old + ": BenchmarkGone"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, out.String())
		}
	}
	// Tighten the ns gate below the +2% drift: now it must fail.
	out.Reset()
	if err := runCompare(old, new, gateSpec{ns: 1, allocs: -1, bytes: -1}, &out); err == nil {
		t.Fatalf("2%% regression passed a 1%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSIONS") {
		t.Fatalf("violation table missing:\n%s", out.String())
	}
	// Allocs gate: regress allocs only.
	regressed := writeTrajectory(t, dir, "regressed.json", "2026-07-29", []Benchmark{
		bench("p", "BenchmarkStable", 1000, 30),
	})
	if err := runCompare(old, regressed, gateSpec{ns: -1, allocs: 10, bytes: -1}, &out); err == nil {
		t.Fatal("3x allocs passed a 10% allocs gate")
	}
	// Negative thresholds: report-only, never fails.
	if err := runCompare(old, regressed, gateSpec{ns: -1, allocs: -1, bytes: -1}, &out); err != nil {
		t.Fatalf("report-only mode failed: %v", err)
	}
}

// benchM builds a Benchmark carrying arbitrary extra metrics.
func benchM(pkg, name string, ns float64, metrics map[string]float64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, Procs: 1, Iterations: 1, NsPerOp: ns, Metrics: metrics}
}

// TestCompareMetricGates: -fail-metric-over thresholds are sign-aware —
// a negative percentage gates falls (throughput units), a positive one
// gates rises (cost units) — and ungated custom units only report.
func TestCompareMetricGates(t *testing.T) {
	dir := t.TempDir()
	old := writeTrajectory(t, dir, "old.json", "2026-08-01", []Benchmark{
		benchM("p", "BenchmarkEngine/inverted", 1000, map[string]float64{"slots/sec": 100000, "waste/op": 10}),
	})
	dropped := writeTrajectory(t, dir, "dropped.json", "2026-08-08", []Benchmark{
		benchM("p", "BenchmarkEngine/inverted", 1000, map[string]float64{"slots/sec": 80000, "waste/op": 10}),
	})
	var out strings.Builder
	// A 20% throughput fall must trip a slots/sec=-10 gate.
	err := runCompare(old, dropped, gateSpec{ns: -1, allocs: -1, bytes: -1,
		metric: metricGates{"slots/sec": -10}}, &out)
	if err == nil {
		t.Fatalf("20%% slots/sec drop passed a -10%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "lower is worse") {
		t.Fatalf("violation should name the direction:\n%s", out.String())
	}
	// The same drop with no gate for its unit only reports; the "other
	// metrics" table still shows the movement.
	out.Reset()
	if err := runCompare(old, dropped, gateSpec{ns: -1, allocs: -1, bytes: -1}, &out); err != nil {
		t.Fatalf("ungated custom unit failed the compare: %v", err)
	}
	for _, want := range []string{"other metrics", "slots/sec", "-20.0%"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("metrics table missing %q:\n%s", want, out.String())
		}
	}
	// A throughput rise sails through the negative gate.
	risen := writeTrajectory(t, dir, "risen.json", "2026-08-08", []Benchmark{
		benchM("p", "BenchmarkEngine/inverted", 1000, map[string]float64{"slots/sec": 200000, "waste/op": 10}),
	})
	if err := runCompare(old, risen, gateSpec{ns: -1, allocs: -1, bytes: -1,
		metric: metricGates{"slots/sec": -10}}, &out); err != nil {
		t.Fatalf("throughput rise tripped a lower-is-worse gate: %v", err)
	}
	// A positive threshold gates rises of cost-like units.
	waste := writeTrajectory(t, dir, "waste.json", "2026-08-08", []Benchmark{
		benchM("p", "BenchmarkEngine/inverted", 1000, map[string]float64{"slots/sec": 100000, "waste/op": 20}),
	})
	out.Reset()
	err = runCompare(old, waste, gateSpec{ns: -1, allocs: -1, bytes: -1,
		metric: metricGates{"waste/op": 5}}, &out)
	if err == nil {
		t.Fatalf("2x waste/op passed a +5%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "higher is worse") {
		t.Fatalf("violation should name the direction:\n%s", out.String())
	}
}

// TestCompareBytesGate: the B/op gate needs both the percentage and an
// absolute movement past the minBytes floor, mirroring the allocs rule.
func TestCompareBytesGate(t *testing.T) {
	dir := t.TempDir()
	old := writeTrajectory(t, dir, "old.json", "a", []Benchmark{
		benchM("p", "BenchmarkBig", 1000, map[string]float64{"B/op": 1000}),
		benchM("p", "BenchmarkTiny", 1000, map[string]float64{"B/op": 50}),
	})
	new := writeTrajectory(t, dir, "new.json", "b", []Benchmark{
		benchM("p", "BenchmarkBig", 1000, map[string]float64{"B/op": 3000}),
		benchM("p", "BenchmarkTiny", 1000, map[string]float64{"B/op": 150}),
	})
	var out strings.Builder
	err := runCompare(old, new, gateSpec{ns: -1, allocs: -1, bytes: 10,
		minBytes: defaultMinBytesDelta}, &out)
	if err == nil {
		t.Fatalf("3x B/op passed a 10%% gate:\n%s", out.String())
	}
	if strings.Contains(out.String(), "BenchmarkTiny: B/op") {
		t.Fatalf("+100 bytes is under the default floor and must not gate:\n%s", out.String())
	}
	// A zero floor removes the absolute requirement: now the tiny
	// movement gates too — the knob the single-iteration CI smoke turns
	// the other way.
	out.Reset()
	err = runCompare(old, new, gateSpec{ns: -1, allocs: -1, bytes: 10}, &out)
	if err == nil || !strings.Contains(out.String(), "BenchmarkTiny: B/op") {
		t.Fatalf("zero floor should gate the +100 byte movement:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkBig: B/op") {
		t.Fatalf("B/op violation missing:\n%s", out.String())
	}
	// Report-only default leaves the same movement ungated.
	if err := runCompare(old, new, gateSpec{ns: -1, allocs: -1, bytes: -1}, &out); err != nil {
		t.Fatalf("report-only bytes gate failed: %v", err)
	}
}

// TestCompareNsFloor: with a -min-ns-delta floor the ns/op percentage
// gate also wants a real absolute movement, so a microsecond-scale
// benchmark absorbing one scheduler preemption in a single-iteration
// run cannot read as a wall regression while a slow benchmark's
// genuine slide still gates.
func TestCompareNsFloor(t *testing.T) {
	dir := t.TempDir()
	old := writeTrajectory(t, dir, "old.json", "a", []Benchmark{
		bench("p", "BenchmarkMicro", 10_000, 5),
		bench("p", "BenchmarkSlow", 50_000_000, 5),
	})
	new := writeTrajectory(t, dir, "new.json", "b", []Benchmark{
		bench("p", "BenchmarkMicro", 300_000, 5),    // +2900%, but only +290µs
		bench("p", "BenchmarkSlow", 600_000_000, 5), // 12x, +550ms
	})
	var out strings.Builder
	err := runCompare(old, new, gateSpec{ns: 900, allocs: -1, bytes: -1,
		minNs: 1_000_000}, &out)
	if err == nil {
		t.Fatalf("12x on a slow benchmark passed the gate:\n%s", out.String())
	}
	if strings.Contains(out.String(), "BenchmarkMicro: ns/op") {
		t.Fatalf("+290µs is under the 1ms floor and must not gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkSlow: ns/op") {
		t.Fatalf("ns/op violation missing:\n%s", out.String())
	}
	// Zero floor (the default): the micro movement gates too.
	out.Reset()
	err = runCompare(old, new, gateSpec{ns: 900, allocs: -1, bytes: -1}, &out)
	if err == nil || !strings.Contains(out.String(), "BenchmarkMicro: ns/op") {
		t.Fatalf("zero floor should gate the micro benchmark:\n%s", out.String())
	}
}

// TestMetricGatesFlag covers the unit=pct flag syntax end to end.
func TestMetricGatesFlag(t *testing.T) {
	var echo strings.Builder
	for _, bad := range []string{"no-equals", "=5", "slots/sec=abc"} {
		if err := run([]string{"-compare", "-fail-metric-over", bad, "a", "b"}, strings.NewReader(""), &echo); err == nil {
			t.Errorf("spec %q: expected flag error", bad)
		}
	}
	dir := t.TempDir()
	old := writeTrajectory(t, dir, "old.json", "a", []Benchmark{
		benchM("p", "BenchmarkX", 100, map[string]float64{"slots/sec": 1000}),
	})
	new := writeTrajectory(t, dir, "new.json", "b", []Benchmark{
		benchM("p", "BenchmarkX", 100, map[string]float64{"slots/sec": 500}),
	})
	report := filepath.Join(dir, "report.txt")
	err := run([]string{"-compare", "-fail-metric-over", "slots/sec=-10", "-out", report, old, new},
		strings.NewReader(""), &echo)
	if err == nil {
		t.Fatal("halved slots/sec passed the CLI gate")
	}
	data, _ := os.ReadFile(report)
	if !strings.Contains(string(data), "REGRESSIONS") {
		t.Fatalf("report missing violation table:\n%s", data)
	}
}

// TestCompareViaRun drives compare mode through the CLI surface,
// including its argument and file errors.
func TestCompareViaRun(t *testing.T) {
	dir := t.TempDir()
	old := writeTrajectory(t, dir, "old.json", "a", []Benchmark{bench("p", "BenchmarkX", 100, 1)})
	new := writeTrajectory(t, dir, "new.json", "b", []Benchmark{bench("p", "BenchmarkX", 101, 1)})
	var echo strings.Builder
	report := filepath.Join(dir, "report.txt")
	if err := run([]string{"-compare", "-out", report, old, new}, strings.NewReader(""), &echo); err != nil {
		t.Fatalf("compare via run: %v", err)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("-out ignored in compare mode: %v", err)
	}
	if !strings.Contains(string(data), "BenchmarkX") {
		t.Fatalf("delta table missing from -out file:\n%s", data)
	}
	if err := run([]string{"-compare", old}, strings.NewReader(""), &echo); err == nil {
		t.Error("one file: expected usage error")
	}
	if err := run([]string{"-compare", old, filepath.Join(dir, "missing.json")}, strings.NewReader(""), &echo); err == nil {
		t.Error("missing file: expected error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-compare", old, bad}, strings.NewReader(""), &echo); err == nil {
		t.Error("malformed JSON: expected error")
	}
}

// TestParseEmptyAndMalformed: an empty stream yields an empty (but
// non-nil) benchmark list, and malformed Benchmark lines are skipped
// rather than aborting the parse.
func TestParseEmptyAndMalformed(t *testing.T) {
	f, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if f.Benchmarks == nil || len(f.Benchmarks) != 0 {
		t.Fatalf("empty input: got %+v", f.Benchmarks)
	}
	f, err = parse(strings.NewReader("BenchmarkOnlyName\nBenchmarkBadIters xx 1 ns/op\nBenchmarkGood 10 2.5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "BenchmarkGood" || f.Benchmarks[0].NsPerOp != 2.5 {
		t.Fatalf("malformed lines mishandled: %+v", f.Benchmarks)
	}
}
