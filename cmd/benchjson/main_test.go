package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: rendezvous
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkGeneralPairScan/slots         	     541	   2207333 ns/op	       0 B/op	       0 allocs/op
BenchmarkGeneralPairScan/block         	    2899	    408896 ns/op	    4096 B/op	       2 allocs/op
BenchmarkChannelLookupOurs-8           	31210146	        38.52 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	rendezvous	10.376s
pkg: rendezvous/internal/sweep
BenchmarkMapScaling-8   	    1000	   1234 ns/op
ok  	rendezvous/internal/sweep	1.2s
`

func TestParse(t *testing.T) {
	f, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.GoOS != "linux" || f.GoArch != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Fatalf("bad context: %+v", f)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}
	b := f.Benchmarks[1]
	if b.Pkg != "rendezvous" || b.Name != "BenchmarkGeneralPairScan/block" {
		t.Fatalf("bad benchmark identity: %+v", b)
	}
	if b.Iterations != 2899 || b.NsPerOp != 408896 {
		t.Fatalf("bad measurements: %+v", b)
	}
	if b.Metrics["B/op"] != 4096 || b.Metrics["allocs/op"] != 2 {
		t.Fatalf("bad metrics: %+v", b.Metrics)
	}
	c := f.Benchmarks[2]
	if c.Procs != 8 || c.Name != "BenchmarkChannelLookupOurs" || c.NsPerOp != 38.52 {
		t.Fatalf("bad procs split: %+v", c)
	}
	last := f.Benchmarks[3]
	if last.Pkg != "rendezvous/internal/sweep" || last.Metrics != nil {
		t.Fatalf("bad package tracking: %+v", last)
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var echo strings.Builder
	err := run([]string{"-out", out, "-date", "2026-07-28"}, strings.NewReader(sample), &echo)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"date": "2026-07-28"`, `"BenchmarkGeneralPairScan/slots"`, `"ns_per_op"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("output missing %q:\n%s", want, data)
		}
	}
	// The raw bench output must be echoed so the human still sees it.
	if !strings.Contains(echo.String(), "BenchmarkGeneralPairScan/slots") {
		t.Fatalf("input not echoed: %q", echo.String())
	}
}

// TestRunDeterministicOutput: for a fixed -date, the emitted JSON is a
// pure function of the input — byte-identical across runs (no map
// iteration order or timestamps leaking into the artifact).
func TestRunDeterministicOutput(t *testing.T) {
	runOnce := func() string {
		out := filepath.Join(t.TempDir(), "bench.json")
		var echo strings.Builder
		if err := run([]string{"-out", out, "-date", "2026-07-28"}, strings.NewReader(sample), &echo); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("reruns diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestRunStdoutWhenNoOut: omitting -out streams the JSON to stdout and
// still echoes the raw input.
func TestRunStdoutWhenNoOut(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var echo strings.Builder
	runErr := run([]string{"-date", "2026-07-28"}, strings.NewReader(sample), &echo)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"benchmarks"`) {
		t.Fatalf("stdout missing JSON payload:\n%s", data)
	}
}

func TestRunFlagAndIOErrors(t *testing.T) {
	var echo strings.Builder
	if err := run([]string{"-bogus"}, strings.NewReader(""), &echo); err == nil {
		t.Error("unknown flag: expected parse error")
	}
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "out.json")
	if err := run([]string{"-out", bad}, strings.NewReader(sample), &echo); err == nil {
		t.Error("unwritable -out path: expected error")
	}
}

// writeTrajectory writes a trajectory point for compare-mode tests.
func writeTrajectory(t *testing.T, dir, name, date string, benches []Benchmark) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f := File{Date: date, Benchmarks: benches}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(pkg, name string, ns, allocs float64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, Procs: 1, Iterations: 1, NsPerOp: ns,
		Metrics: map[string]float64{"allocs/op": allocs}}
}

// TestCompareTableAndGate: compare mode renders deltas for matched
// benchmarks, lists additions/removals without failing on them, and
// gates only on threshold-crossing regressions.
func TestCompareTableAndGate(t *testing.T) {
	dir := t.TempDir()
	old := writeTrajectory(t, dir, "old.json", "2026-07-01", []Benchmark{
		bench("p", "BenchmarkStable", 1000, 10),
		bench("p", "BenchmarkFaster", 2000, 40),
		bench("p", "BenchmarkGone", 10, 1),
	})
	new := writeTrajectory(t, dir, "new.json", "2026-07-28", []Benchmark{
		bench("p", "BenchmarkStable", 1020, 10), // +2% ns: under a 5% gate
		bench("p", "BenchmarkFaster", 1000, 20), // improvement: never gates
		bench("p", "BenchmarkNew", 5, 2),
	})
	var out strings.Builder
	if err := runCompare(old, new, 5, 10, &out); err != nil {
		t.Fatalf("within thresholds, got error: %v\n%s", err, out.String())
	}
	for _, want := range []string{"BenchmarkStable", "+2.0%", "-50.0%",
		"only in " + new + ": BenchmarkNew", "only in " + old + ": BenchmarkGone"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, out.String())
		}
	}
	// Tighten the ns gate below the +2% drift: now it must fail.
	out.Reset()
	if err := runCompare(old, new, 1, -1, &out); err == nil {
		t.Fatalf("2%% regression passed a 1%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSIONS") {
		t.Fatalf("violation table missing:\n%s", out.String())
	}
	// Allocs gate: regress allocs only.
	regressed := writeTrajectory(t, dir, "regressed.json", "2026-07-29", []Benchmark{
		bench("p", "BenchmarkStable", 1000, 30),
	})
	if err := runCompare(old, regressed, -1, 10, &out); err == nil {
		t.Fatal("3x allocs passed a 10% allocs gate")
	}
	// Negative thresholds: report-only, never fails.
	if err := runCompare(old, regressed, -1, -1, &out); err != nil {
		t.Fatalf("report-only mode failed: %v", err)
	}
}

// TestCompareViaRun drives compare mode through the CLI surface,
// including its argument and file errors.
func TestCompareViaRun(t *testing.T) {
	dir := t.TempDir()
	old := writeTrajectory(t, dir, "old.json", "a", []Benchmark{bench("p", "BenchmarkX", 100, 1)})
	new := writeTrajectory(t, dir, "new.json", "b", []Benchmark{bench("p", "BenchmarkX", 101, 1)})
	var echo strings.Builder
	report := filepath.Join(dir, "report.txt")
	if err := run([]string{"-compare", "-out", report, old, new}, strings.NewReader(""), &echo); err != nil {
		t.Fatalf("compare via run: %v", err)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("-out ignored in compare mode: %v", err)
	}
	if !strings.Contains(string(data), "BenchmarkX") {
		t.Fatalf("delta table missing from -out file:\n%s", data)
	}
	if err := run([]string{"-compare", old}, strings.NewReader(""), &echo); err == nil {
		t.Error("one file: expected usage error")
	}
	if err := run([]string{"-compare", old, filepath.Join(dir, "missing.json")}, strings.NewReader(""), &echo); err == nil {
		t.Error("missing file: expected error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-compare", old, bad}, strings.NewReader(""), &echo); err == nil {
		t.Error("malformed JSON: expected error")
	}
}

// TestParseEmptyAndMalformed: an empty stream yields an empty (but
// non-nil) benchmark list, and malformed Benchmark lines are skipped
// rather than aborting the parse.
func TestParseEmptyAndMalformed(t *testing.T) {
	f, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if f.Benchmarks == nil || len(f.Benchmarks) != 0 {
		t.Fatalf("empty input: got %+v", f.Benchmarks)
	}
	f, err = parse(strings.NewReader("BenchmarkOnlyName\nBenchmarkBadIters xx 1 ns/op\nBenchmarkGood 10 2.5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "BenchmarkGood" || f.Benchmarks[0].NsPerOp != 2.5 {
		t.Fatalf("malformed lines mishandled: %+v", f.Benchmarks)
	}
}
