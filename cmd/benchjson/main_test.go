package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: rendezvous
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkGeneralPairScan/slots         	     541	   2207333 ns/op	       0 B/op	       0 allocs/op
BenchmarkGeneralPairScan/block         	    2899	    408896 ns/op	    4096 B/op	       2 allocs/op
BenchmarkChannelLookupOurs-8           	31210146	        38.52 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	rendezvous	10.376s
pkg: rendezvous/internal/sweep
BenchmarkMapScaling-8   	    1000	   1234 ns/op
ok  	rendezvous/internal/sweep	1.2s
`

func TestParse(t *testing.T) {
	f, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.GoOS != "linux" || f.GoArch != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Fatalf("bad context: %+v", f)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}
	b := f.Benchmarks[1]
	if b.Pkg != "rendezvous" || b.Name != "BenchmarkGeneralPairScan/block" {
		t.Fatalf("bad benchmark identity: %+v", b)
	}
	if b.Iterations != 2899 || b.NsPerOp != 408896 {
		t.Fatalf("bad measurements: %+v", b)
	}
	if b.Metrics["B/op"] != 4096 || b.Metrics["allocs/op"] != 2 {
		t.Fatalf("bad metrics: %+v", b.Metrics)
	}
	c := f.Benchmarks[2]
	if c.Procs != 8 || c.Name != "BenchmarkChannelLookupOurs" || c.NsPerOp != 38.52 {
		t.Fatalf("bad procs split: %+v", c)
	}
	last := f.Benchmarks[3]
	if last.Pkg != "rendezvous/internal/sweep" || last.Metrics != nil {
		t.Fatalf("bad package tracking: %+v", last)
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var echo strings.Builder
	err := run([]string{"-out", out, "-date", "2026-07-28"}, strings.NewReader(sample), &echo)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"date": "2026-07-28"`, `"BenchmarkGeneralPairScan/slots"`, `"ns_per_op"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("output missing %q:\n%s", want, data)
		}
	}
	// The raw bench output must be echoed so the human still sees it.
	if !strings.Contains(echo.String(), "BenchmarkGeneralPairScan/slots") {
		t.Fatalf("input not echoed: %q", echo.String())
	}
}

// TestRunDeterministicOutput: for a fixed -date, the emitted JSON is a
// pure function of the input — byte-identical across runs (no map
// iteration order or timestamps leaking into the artifact).
func TestRunDeterministicOutput(t *testing.T) {
	runOnce := func() string {
		out := filepath.Join(t.TempDir(), "bench.json")
		var echo strings.Builder
		if err := run([]string{"-out", out, "-date", "2026-07-28"}, strings.NewReader(sample), &echo); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("reruns diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestRunStdoutWhenNoOut: omitting -out streams the JSON to stdout and
// still echoes the raw input.
func TestRunStdoutWhenNoOut(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var echo strings.Builder
	runErr := run([]string{"-date", "2026-07-28"}, strings.NewReader(sample), &echo)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"benchmarks"`) {
		t.Fatalf("stdout missing JSON payload:\n%s", data)
	}
}

func TestRunFlagAndIOErrors(t *testing.T) {
	var echo strings.Builder
	if err := run([]string{"-bogus"}, strings.NewReader(""), &echo); err == nil {
		t.Error("unknown flag: expected parse error")
	}
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "out.json")
	if err := run([]string{"-out", bad}, strings.NewReader(sample), &echo); err == nil {
		t.Error("unwritable -out path: expected error")
	}
}

// TestParseEmptyAndMalformed: an empty stream yields an empty (but
// non-nil) benchmark list, and malformed Benchmark lines are skipped
// rather than aborting the parse.
func TestParseEmptyAndMalformed(t *testing.T) {
	f, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if f.Benchmarks == nil || len(f.Benchmarks) != 0 {
		t.Fatalf("empty input: got %+v", f.Benchmarks)
	}
	f, err = parse(strings.NewReader("BenchmarkOnlyName\nBenchmarkBadIters xx 1 ns/op\nBenchmarkGood 10 2.5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "BenchmarkGood" || f.Benchmarks[0].NsPerOp != 2.5 {
		t.Fatalf("malformed lines mishandled: %+v", f.Benchmarks)
	}
}
