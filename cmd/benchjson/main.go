// Command benchjson converts the text output of `go test -bench` into a
// JSON benchmark-trajectory file, so per-PR performance is recorded as
// a machine-readable artifact instead of scrolling away in a CI log.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_2026-07-28.json
//
// The input is echoed to stderr unchanged (the human still sees the
// run); the parsed results land in -out (stdout when omitted). Lines
// that are not benchmark results — pkg/goos/cpu headers, PASS/ok
// trailers — set context or are ignored, so piping a whole `go test`
// session through is safe.
//
// Compare mode turns two trajectory points into a regression gate:
//
//	benchjson -compare -fail-over 5 -fail-allocs-over 10 -fail-bytes-over 10 \
//	    -fail-metric-over slots/sec=-10 old.json new.json
//
// prints a per-benchmark delta table (ns/op and allocs/op), an "other
// metrics" table (B/op and custom b.ReportMetric units), and exits
// nonzero when any matched benchmark regressed past a threshold.
// Negative -fail-over/-fail-allocs-over/-fail-bytes-over thresholds
// (the default) report without gating, so the same invocation serves
// both humans and CI. -fail-metric-over is repeatable and sign-aware:
// the sign encodes which direction is a regression, so slots/sec=-10
// fails when throughput *falls* more than 10%, while waste/op=10 fails
// when it *rises* more than 10%.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg        string  `json:"pkg"`
	Name       string  `json:"name"` // includes sub-benchmark path, excludes -procs suffix
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Remaining metric pairs ("B/op", "allocs/op", custom b.ReportMetric
	// units) keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the trajectory point written to -out.
type File struct {
	Date       string      `json:"date"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, echo io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "", "output file (stdout when empty)")
	date := fs.String("date", time.Now().Format("2006-01-02"), "date stamp recorded in the file")
	compare := fs.Bool("compare", false, "compare two trajectory files: benchjson -compare old.json new.json")
	failOver := fs.Float64("fail-over", -1, "compare mode: fail when any ns/op regression exceeds this percentage (negative = report only)")
	minNs := fs.Float64("min-ns-delta", 0, "compare mode: absolute ns/op movement the percentage gate also requires")
	failAllocsOver := fs.Float64("fail-allocs-over", -1, "compare mode: fail when any allocs/op regression exceeds this percentage (negative = report only)")
	failBytesOver := fs.Float64("fail-bytes-over", -1, "compare mode: fail when any B/op regression exceeds this percentage (negative = report only)")
	minAllocs := fs.Float64("min-allocs-delta", defaultMinAllocsDelta, "compare mode: absolute allocs/op movement the percentage gate also requires")
	minBytes := fs.Float64("min-bytes-delta", defaultMinBytesDelta, "compare mode: absolute B/op movement the percentage gate also requires")
	metricOver := metricGates{}
	fs.Var(metricOver, "fail-metric-over", "compare mode, repeatable: unit=pct gates a reported metric, sign-aware — slots/sec=-10 fails on a >10% fall, waste/op=10 on a >10% rise")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare wants exactly two files, got %d args", fs.NArg())
		}
		// -out means the same thing here as in conversion mode: where the
		// product (the delta table) goes.
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		g := gateSpec{
			ns: *failOver, allocs: *failAllocsOver, bytes: *failBytesOver,
			minNs: *minNs, minAllocs: *minAllocs, minBytes: *minBytes,
			metric: metricOver,
		}
		return runCompare(fs.Arg(0), fs.Arg(1), g, w)
	}
	f, err := parse(io.TeeReader(in, echo))
	if err != nil {
		return err
	}
	f.Date = *date
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(echo, "benchjson: wrote %d benchmarks to %s\n", len(f.Benchmarks), *out)
	return nil
}

// parse consumes `go test -bench` output. Context lines (pkg:, goos:,
// goarch:, cpu:) update the current state; Benchmark lines become
// entries; everything else is skipped.
func parse(r io.Reader) (*File, error) {
	f := &File{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			f.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if ok {
				b.Pkg = pkg
				f.Benchmarks = append(f.Benchmarks, b)
			}
		}
	}
	return f, sc.Err()
}

// parseResult parses one result line of the form
//
//	BenchmarkName/sub-8   123   456.7 ns/op   89 B/op   1 allocs/op
//
// reporting ok = false for lines that merely start with "Benchmark"
// (e.g. a bare name printed with -v before the measurement).
func parseResult(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name, procs := splitProcs(fields[0])
	if name == "" {
		// A bare procs suffix ("-8 …") would otherwise yield a nameless
		// benchmark no trajectory file could match (found by FuzzParseBenchLine).
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters}
	// The rest are value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	if b.NsPerOp == 0 && b.Metrics == nil {
		return Benchmark{}, false
	}
	return b, true
}

// loadFile reads one trajectory point from disk.
func loadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// benchKey identifies a benchmark across trajectory points.
func benchKey(b Benchmark) string { return b.Pkg + "\x00" + b.Name }

// defaultMinAllocsDelta is the absolute allocs/op movement below which
// the percentage gate stays quiet; see the comment at its use. Both
// floors are -min-allocs-delta/-min-bytes-delta flags because the
// right value depends on how the numbers were measured: amortized
// multi-iteration runs want them tight, while single-iteration smoke
// runs of multi-goroutine benchmarks see a goroutine stack or a
// per-worker scratch buffer land on either side of the measurement
// window and need room for that scheduling noise.
const defaultMinAllocsDelta = 8

// defaultMinBytesDelta plays the same role for the B/op gate: a
// percentage of a small byte count is noise (one pooled buffer
// surviving differently across runs), so the gate also wants a real
// absolute movement.
const defaultMinBytesDelta = 256

// metricGates accumulates repeated -fail-metric-over unit=pct flags.
// The percentage's sign picks the regression direction: positive gates
// rises (cost-like units), negative gates falls (throughput-like units
// such as slots/sec, where lower is worse).
type metricGates map[string]float64

func (m metricGates) String() string {
	parts := make([]string, 0, len(m))
	for u, v := range m {
		parts = append(parts, fmt.Sprintf("%s=%g", u, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (m metricGates) Set(s string) error {
	unit, pctStr, ok := strings.Cut(s, "=")
	if !ok || unit == "" {
		return fmt.Errorf("-fail-metric-over wants unit=pct, got %q", s)
	}
	pct, err := strconv.ParseFloat(pctStr, 64)
	if err != nil {
		return fmt.Errorf("-fail-metric-over %q: bad percentage: %w", s, err)
	}
	m[unit] = pct
	return nil
}

// gateSpec is the full set of compare-mode thresholds. ns, allocs and
// bytes follow the original convention (negative = report only);
// metric maps a unit to its sign-aware threshold.
type gateSpec struct {
	ns        float64
	allocs    float64
	bytes     float64
	minNs     float64 // absolute ns/op floor under the percentage gate
	minAllocs float64 // absolute allocs/op floor under the percentage gate
	minBytes  float64 // absolute B/op floor under the percentage gate
	metric    metricGates
}

// runCompare renders the per-benchmark delta table between two
// trajectory points and applies the regression thresholds. Benchmarks
// present in only one file are listed but never gate (a new benchmark
// is not a regression; a removed one is a review question, not a CI
// failure).
func runCompare(oldPath, newPath string, g gateSpec, out io.Writer) error {
	oldF, err := loadFile(oldPath)
	if err != nil {
		return err
	}
	newF, err := loadFile(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]Benchmark, len(oldF.Benchmarks))
	for _, b := range oldF.Benchmarks {
		if _, dup := oldBy[benchKey(b)]; !dup {
			oldBy[benchKey(b)] = b
		}
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	fmt.Fprintf(w, "benchmark trajectory: %s (%s) -> %s (%s)\n\n", oldPath, oldF.Date, newPath, newF.Date)
	fmt.Fprintf(w, "%-56s %14s %14s %9s %10s %10s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns/op", "old allocs", "new allocs", "Δallocs")
	var violations []string
	type metricRow struct {
		name, unit   string
		oldV, newV   float64
		okOld, okNew bool
	}
	var metricRows []metricRow
	matched := make(map[string]bool)
	for _, nb := range newF.Benchmarks {
		key := benchKey(nb)
		ob, ok := oldBy[key]
		if !ok || matched[key] {
			continue
		}
		matched[key] = true
		nsDelta := pctDelta(ob.NsPerOp, nb.NsPerOp)
		oldAllocs, okOld := ob.Metrics["allocs/op"]
		newAllocs, okNew := nb.Metrics["allocs/op"]
		allocsDelta := math.NaN()
		if okOld && okNew {
			allocsDelta = pctDelta(oldAllocs, newAllocs)
		}
		fmt.Fprintf(w, "%-56s %14.0f %14.0f %9s %10s %10s %9s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, fmtPct(nsDelta),
			fmtVal(oldAllocs, okOld), fmtVal(newAllocs, okNew), fmtPct(allocsDelta))
		// The ns floor defaults to 0 (any movement counts); the
		// single-iteration CI smoke raises it so a scheduler preemption
		// landing inside a microsecond-scale benchmark cannot read as a
		// thousand-percent wall regression.
		if g.ns >= 0 && !math.IsNaN(nsDelta) && nsDelta > g.ns &&
			nb.NsPerOp-ob.NsPerOp > g.minNs {
			violations = append(violations,
				fmt.Sprintf("%s: ns/op %+.1f%% exceeds %.1f%%", nb.Name, nsDelta, g.ns))
		}
		// Percentage alone misfires on tiny counts (2 → 3 allocs is
		// "+50%" but usually a one-time pool or cache warm-up caught by
		// a single-iteration run), so the allocs gate also requires an
		// absolute movement of more than g.minAllocs.
		if g.allocs >= 0 && !math.IsNaN(allocsDelta) && allocsDelta > g.allocs &&
			newAllocs-oldAllocs > g.minAllocs {
			violations = append(violations,
				fmt.Sprintf("%s: allocs/op %+.1f%% exceeds %.1f%%", nb.Name, allocsDelta, g.allocs))
		}
		// The remaining units — B/op plus anything a benchmark reported
		// via b.ReportMetric — render in their own table below and gate
		// here: B/op under the same rise-plus-absolute-floor rule as
		// allocs, custom units by their sign-aware -fail-metric-over
		// thresholds.
		for _, unit := range metricUnits(ob.Metrics, nb.Metrics) {
			ov, okO := ob.Metrics[unit]
			nv, okN := nb.Metrics[unit]
			metricRows = append(metricRows, metricRow{nb.Name, unit, ov, nv, okO, okN})
			if !okO || !okN {
				continue
			}
			d := pctDelta(ov, nv)
			if math.IsNaN(d) {
				continue
			}
			if unit == "B/op" {
				if g.bytes >= 0 && d > g.bytes && nv-ov > g.minBytes {
					violations = append(violations,
						fmt.Sprintf("%s: B/op %+.1f%% exceeds %.1f%%", nb.Name, d, g.bytes))
				}
				continue
			}
			switch mg, gated := g.metric[unit]; {
			case !gated:
			case mg >= 0 && d > mg:
				violations = append(violations,
					fmt.Sprintf("%s: %s %+.1f%% exceeds %.1f%% (higher is worse)", nb.Name, unit, d, mg))
			case mg < 0 && d < mg:
				violations = append(violations,
					fmt.Sprintf("%s: %s %+.1f%% falls past %.1f%% (lower is worse)", nb.Name, unit, d, mg))
			}
		}
	}
	if len(metricRows) > 0 {
		fmt.Fprintf(w, "\n%-56s %-14s %14s %14s %9s\n", "other metrics", "unit", "old", "new", "Δ")
		for _, r := range metricRows {
			d := math.NaN()
			if r.okOld && r.okNew {
				d = pctDelta(r.oldV, r.newV)
			}
			fmt.Fprintf(w, "%-56s %-14s %14s %14s %9s\n",
				r.name, r.unit, fmtVal(r.oldV, r.okOld), fmtVal(r.newV, r.okNew), fmtPct(d))
		}
	}
	var added, removed []string
	for _, nb := range newF.Benchmarks {
		if _, ok := oldBy[benchKey(nb)]; !ok {
			added = append(added, nb.Name)
		}
	}
	for _, ob := range oldF.Benchmarks {
		if !matched[benchKey(ob)] {
			removed = append(removed, ob.Name)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	if len(added) > 0 {
		fmt.Fprintf(w, "\nonly in %s: %s\n", newPath, strings.Join(added, ", "))
	}
	if len(removed) > 0 {
		fmt.Fprintf(w, "only in %s: %s\n", oldPath, strings.Join(removed, ", "))
	}
	if len(violations) > 0 {
		fmt.Fprintf(w, "\nREGRESSIONS:\n")
		for _, v := range violations {
			fmt.Fprintf(w, "  %s\n", v)
		}
		w.Flush()
		return fmt.Errorf("%d benchmark regression(s) past threshold", len(violations))
	}
	return nil
}

// pctDelta returns the percentage change old → new, NaN when the old
// value cannot anchor a percentage.
func pctDelta(old, new float64) float64 {
	if old == 0 || math.IsNaN(old) || math.IsNaN(new) {
		return math.NaN()
	}
	return (new - old) / old * 100
}

func fmtPct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", v)
}

func fmtVal(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// metricUnits returns the sorted union of the two metric maps' units,
// minus allocs/op (already a column of the main table).
func metricUnits(a, b map[string]float64) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var units []string
	for _, m := range []map[string]float64{a, b} {
		for u := range m {
			if u == "allocs/op" || seen[u] {
				continue
			}
			seen[u] = true
			units = append(units, u)
		}
	}
	sort.Strings(units)
	return units
}

// splitProcs splits the trailing -N GOMAXPROCS suffix off a benchmark
// name. The testing package only appends the suffix when GOMAXPROCS is
// greater than 1, so a trailing "-1" (or "-0") is part of the name, not
// a suffix — stripping it would change the name a reparse of the
// canonical rendering sees (found by FuzzParseBenchLine).
func splitProcs(s string) (string, int) {
	i := strings.LastIndex(s, "-")
	if i < 0 {
		return s, 1
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil || n < 2 {
		return s, 1
	}
	return s[:i], n
}
