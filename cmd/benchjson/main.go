// Command benchjson converts the text output of `go test -bench` into a
// JSON benchmark-trajectory file, so per-PR performance is recorded as
// a machine-readable artifact instead of scrolling away in a CI log.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_2026-07-28.json
//
// The input is echoed to stderr unchanged (the human still sees the
// run); the parsed results land in -out (stdout when omitted). Lines
// that are not benchmark results — pkg/goos/cpu headers, PASS/ok
// trailers — set context or are ignored, so piping a whole `go test`
// session through is safe.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg        string  `json:"pkg"`
	Name       string  `json:"name"` // includes sub-benchmark path, excludes -procs suffix
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Remaining metric pairs ("B/op", "allocs/op", custom b.ReportMetric
	// units) keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the trajectory point written to -out.
type File struct {
	Date       string      `json:"date"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, echo io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "", "output file (stdout when empty)")
	date := fs.String("date", time.Now().Format("2006-01-02"), "date stamp recorded in the file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := parse(io.TeeReader(in, echo))
	if err != nil {
		return err
	}
	f.Date = *date
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(echo, "benchjson: wrote %d benchmarks to %s\n", len(f.Benchmarks), *out)
	return nil
}

// parse consumes `go test -bench` output. Context lines (pkg:, goos:,
// goarch:, cpu:) update the current state; Benchmark lines become
// entries; everything else is skipped.
func parse(r io.Reader) (*File, error) {
	f := &File{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			f.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if ok {
				b.Pkg = pkg
				f.Benchmarks = append(f.Benchmarks, b)
			}
		}
	}
	return f, sc.Err()
}

// parseResult parses one result line of the form
//
//	BenchmarkName/sub-8   123   456.7 ns/op   89 B/op   1 allocs/op
//
// reporting ok = false for lines that merely start with "Benchmark"
// (e.g. a bare name printed with -v before the measurement).
func parseResult(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters}
	// The rest are value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	if b.NsPerOp == 0 && b.Metrics == nil {
		return Benchmark{}, false
	}
	return b, true
}

// splitProcs splits the trailing -N GOMAXPROCS suffix off a benchmark
// name (the suffix is only appended when GOMAXPROCS > 1).
func splitProcs(s string) (string, int) {
	i := strings.LastIndex(s, "-")
	if i < 0 {
		return s, 1
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil || n < 1 {
		return s, 1
	}
	return s[:i], n
}
