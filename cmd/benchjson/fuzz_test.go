package main

import (
	"maps"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// renderResult is the canonical inverse of parseResult: it lays a
// parsed Benchmark back out as a `go test -bench` result line. Floats
// use strconv's shortest round-trippable form, metrics print in sorted
// unit order.
func renderResult(b Benchmark) string {
	var sb strings.Builder
	sb.WriteString(b.Name)
	if b.Procs > 1 {
		sb.WriteString("-")
		sb.WriteString(strconv.Itoa(b.Procs))
	}
	sb.WriteString(" ")
	sb.WriteString(strconv.FormatInt(b.Iterations, 10))
	sb.WriteString(" ")
	sb.WriteString(strconv.FormatFloat(b.NsPerOp, 'g', -1, 64))
	sb.WriteString(" ns/op")
	units := make([]string, 0, len(b.Metrics))
	for u := range b.Metrics {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		sb.WriteString(" ")
		sb.WriteString(strconv.FormatFloat(b.Metrics[u], 'g', -1, 64))
		sb.WriteString(" ")
		sb.WriteString(u)
	}
	return sb.String()
}

// FuzzParseBenchLine hammers the bench-line parser with arbitrary
// input. Properties: it never panics; and for every line it accepts,
// the canonical re-rendering parses back to a fixed point (render ∘
// parse is idempotent), so accepted lines have a stable, lossless
// interpretation. The seed corpus lives in
// testdata/fuzz/FuzzParseBenchLine/.
func FuzzParseBenchLine(f *testing.F) {
	f.Add("BenchmarkGeneralPairScan/block 2899 408896 ns/op 4096 B/op 2 allocs/op")
	f.Add("BenchmarkChannelLookupOurs-8 31210146 38.52 ns/op")
	f.Add("BenchmarkX 1 2 custom/op 3 ns/op")
	f.Add("BenchmarkOnlyName")
	f.Add("pkg: rendezvous")
	f.Fuzz(func(t *testing.T, line string) {
		b1, ok := parseResult(line)
		if !ok {
			return
		}
		l1 := renderResult(b1)
		b2, ok2 := parseResult(l1)
		if !ok2 {
			t.Fatalf("rendered line rejected:\n input: %q\nrender: %q", line, l1)
		}
		if l2 := renderResult(b2); l1 != l2 {
			t.Fatalf("render not a fixed point:\n input: %q\n  l1: %q\n  l2: %q", line, l1, l2)
		}
		// The sub-fields of the two parses must agree structurally too
		// (NaN-valued metrics compare via their rendering above).
		if b1.Name != b2.Name || b1.Procs != b2.Procs || b1.Iterations != b2.Iterations {
			t.Fatalf("reparse changed identity: %+v vs %+v", b1, b2)
		}
		if len(b1.Metrics) != len(b2.Metrics) || !maps.Equal(keysOf(b1.Metrics), keysOf(b2.Metrics)) {
			t.Fatalf("reparse changed metric units: %+v vs %+v", b1.Metrics, b2.Metrics)
		}
	})
}

func keysOf(m map[string]float64) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// FuzzParseStream feeds arbitrary multi-line streams through the full
// parser: it must never panic and must always return a non-nil file.
func FuzzParseStream(f *testing.F) {
	f.Add(sample)
	f.Add("goos: linux\nBenchmarkA 1 1 ns/op\n\nok rendezvous 1s\n")
	f.Fuzz(func(t *testing.T, input string) {
		file, err := parse(strings.NewReader(input))
		if err == nil && file == nil {
			t.Fatal("nil file without error")
		}
	})
}
