package main

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"rendezvous/internal/serve"
)

func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := serve.NewServer(serve.Config{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain(time.Minute)
	})
	return ts
}

var checkLine = regexp.MustCompile(`sha256=([0-9a-f]{64})`)

func checkHash(t *testing.T, ts *httptest.Server, mode string, n int) string {
	t.Helper()
	var sb strings.Builder
	err := run([]string{"-url", ts.URL, "-mode", mode, "-check", strconv.Itoa(n), "-seed", "7"}, &sb)
	if err != nil {
		t.Fatalf("check %s: %v\noutput: %s", mode, err, sb.String())
	}
	m := checkLine.FindStringSubmatch(sb.String())
	if m == nil {
		t.Fatalf("no hash in output: %s", sb.String())
	}
	return m[1]
}

// TestCheckModeDeterministic: the hash is stable across repeat runs
// (cold then warm cache) in both modes — the property serve-smoke
// asserts across daemon restarts and worker counts.
func TestCheckModeDeterministic(t *testing.T) {
	ts := newBackend(t)
	for _, mode := range []string{"schedule", "jobs"} {
		h1 := checkHash(t, ts, mode, 8)
		h2 := checkHash(t, ts, mode, 8)
		if h1 != h2 {
			t.Fatalf("mode %s: hash changed between runs: %s vs %s", mode, h1, h2)
		}
	}
}

func TestLoadModeReportsLatency(t *testing.T) {
	ts := newBackend(t)
	var sb strings.Builder
	err := run([]string{
		"-url", ts.URL, "-mode", "schedule",
		"-rate", "500", "-duration", "300ms", "-c", "4", "-stats",
	}, &sb)
	if err != nil {
		t.Fatalf("load run: %v\noutput: %s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"achieved=", "p50=", "p99=", "p999=", "errors=0", "rvload: stats hits="} {
		if !strings.Contains(out, want) {
			t.Fatalf("load output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	var sb strings.Builder
	cases := map[string][]string{
		"missing-url":  {"-mode", "schedule"},
		"bad-mode":     {"-url", "http://x", "-mode", "nope"},
		"bad-rate":     {"-url", "http://x", "-rate", "0"},
		"bad-conc":     {"-url", "http://x", "-c", "0"},
		"bad-duration": {"-url", "http://x", "-duration", "-1s"},
		"bad-check":    {"-url", "http://x", "-check", "-1"},
	}
	for name, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
