package main

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"rendezvous/internal/serve"
)

func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := serve.NewServer(serve.Config{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain(time.Minute)
	})
	return ts
}

var checkLine = regexp.MustCompile(`sha256=([0-9a-f]{64})`)

func checkHash(t *testing.T, ts *httptest.Server, mode string, n int) string {
	t.Helper()
	var sb strings.Builder
	err := run([]string{"-url", ts.URL, "-mode", mode, "-check", strconv.Itoa(n), "-seed", "7"}, &sb)
	if err != nil {
		t.Fatalf("check %s: %v\noutput: %s", mode, err, sb.String())
	}
	m := checkLine.FindStringSubmatch(sb.String())
	if m == nil {
		t.Fatalf("no hash in output: %s", sb.String())
	}
	return m[1]
}

// TestCheckModeDeterministic: the hash is stable across repeat runs
// (cold then warm cache) in both modes — the property serve-smoke
// asserts across daemon restarts and worker counts.
func TestCheckModeDeterministic(t *testing.T) {
	ts := newBackend(t)
	for _, mode := range []string{"schedule", "jobs"} {
		h1 := checkHash(t, ts, mode, 8)
		h2 := checkHash(t, ts, mode, 8)
		if h1 != h2 {
			t.Fatalf("mode %s: hash changed between runs: %s vs %s", mode, h1, h2)
		}
	}
}

func TestLoadModeReportsLatency(t *testing.T) {
	ts := newBackend(t)
	var sb strings.Builder
	err := run([]string{
		"-url", ts.URL, "-mode", "schedule",
		"-rate", "500", "-duration", "300ms", "-c", "4", "-stats",
	}, &sb)
	if err != nil {
		t.Fatalf("load run: %v\noutput: %s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"achieved=", "p50=", "p99=", "p999=", "errors=0", "rvload: stats hits="} {
		if !strings.Contains(out, want) {
			t.Fatalf("load output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	var sb strings.Builder
	cases := map[string][]string{
		"missing-url":  {"-mode", "schedule"},
		"bad-mode":     {"-url", "http://x", "-mode", "nope"},
		"bad-rate":     {"-url", "http://x", "-rate", "0"},
		"bad-conc":     {"-url", "http://x", "-c", "0"},
		"bad-duration": {"-url", "http://x", "-duration", "-1s"},
		"bad-check":    {"-url", "http://x", "-check", "-1"},
		"bad-retries":  {"-url", "http://x", "-retries", "-1"},
	}
	for name, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestPostRetryBackoff pins the retry loop against a flaky backend: two
// 429s then success resolves within a 3-retry budget (3 attempts
// total), while a zero budget surfaces the shed status immediately.
func TestPostRetryBackoff(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits <= 2 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	client := ts.Client()

	code, _, attempts, err := postRetry(client, ts.URL, "{}", 3)
	if err != nil || code != http.StatusOK || attempts != 3 {
		t.Fatalf("retry run: code=%d attempts=%d err=%v, want 200 after 3 attempts", code, attempts, err)
	}
	hits = 0
	code, _, attempts, err = postRetry(client, ts.URL, "{}", 0)
	if err != nil || code != http.StatusTooManyRequests || attempts != 1 {
		t.Fatalf("no-retry run: code=%d attempts=%d err=%v, want immediate 429", code, attempts, err)
	}
}

// TestPostRetryHonorsRetryAfter: a 429 carrying Retry-After: 1 must
// hold the retry for at least that long.
func TestPostRetryHonorsRetryAfter(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	start := time.Now()
	code, _, attempts, err := postRetry(ts.Client(), ts.URL, "{}", 1)
	if err != nil || code != http.StatusOK || attempts != 2 {
		t.Fatalf("code=%d attempts=%d err=%v", code, attempts, err)
	}
	if waited := time.Since(start); waited < time.Second {
		t.Fatalf("retried after %v, Retry-After asked for 1s", waited)
	}
}

// TestLoadReportsShed: against a draining backend every request is
// shed; the load report must say so in the shed counter, separate from
// generator drops.
func TestLoadReportsShed(t *testing.T) {
	srv := serve.NewServer(serve.Config{Workers: 1})
	srv.Drain(0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var sb strings.Builder
	err := run([]string{
		"-url", ts.URL, "-mode", "jobs",
		"-rate", "50", "-duration", "200ms", "-c", "2", "-retries", "0",
	}, &sb)
	if err != nil {
		t.Fatalf("load run: %v\noutput: %s", err, sb.String())
	}
	out := sb.String()
	m := regexp.MustCompile(`shed=(\d+)`).FindStringSubmatch(out)
	if m == nil || m[1] == "0" {
		t.Fatalf("draining backend shed nothing:\n%s", out)
	}
	if !strings.Contains(out, "ok=0") {
		t.Fatalf("shed requests counted as ok:\n%s", out)
	}
}
