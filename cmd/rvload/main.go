// Command rvload drives an rvserve instance, in two modes:
//
// Check mode replays a deterministic request sequence derived from
// -seed and prints a SHA-256 over the concatenated response bodies —
// two runs against any server (any worker count, cold or warm cache)
// must print the same hash, which is how the smoke test pins the
// daemon's byte-determinism contract:
//
//	rvload -url http://127.0.0.1:8080 -mode jobs -check 64 -seed 7
//
// Load mode sends requests open-loop at -rate for -duration and
// reports achieved throughput with p50/p99/p999 request latency:
//
//	rvload -url http://127.0.0.1:8080 -rate 2000 -duration 10s -c 32
//
// Requests the server sheds (429 queue-full/quota, 503 draining) are
// retried up to -retries times with exponential backoff and jitter,
// honoring the server's Retry-After hint; the load report separates
// attempted (HTTP attempts incl. retries), retried (requests needing
// ≥1 retry), shed (still refused after the budget), and dropped
// (generator drops that kept the load open-loop).
//
// -stats appends one line from the server's /v1/stats (cache hits,
// pinned entries, queue depth) after either mode.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rendezvous/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rvload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rvload", flag.ContinueOnError)
	url := fs.String("url", "", "rvserve base URL, e.g. http://127.0.0.1:8080 (required)")
	mode := fs.String("mode", "schedule", "request kind: schedule or jobs")
	check := fs.Int("check", 0, "check mode: replay this many deterministic requests and print their hash")
	rate := fs.Int("rate", 2000, "load mode: target request rate per second")
	duration := fs.Duration("duration", 5*time.Second, "load mode: run length")
	conc := fs.Int("c", 16, "load mode: concurrent senders")
	seed := fs.Uint64("seed", 1, "request-sequence seed")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request (and job-completion) timeout")
	retries := fs.Int("retries", 3, "max retries per request on 429/503 (exponential backoff, honors Retry-After)")
	wantStats := fs.Bool("stats", false, "print server cache/queue stats after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("-url is required")
	}
	if *mode != "schedule" && *mode != "jobs" {
		return fmt.Errorf("-mode %q: want schedule or jobs", *mode)
	}
	if *check < 0 || *rate < 1 || *conc < 1 || *duration <= 0 || *retries < 0 {
		return fmt.Errorf("-check and -retries must be ≥ 0; -rate, -c, -duration must be positive")
	}
	base := strings.TrimSuffix(*url, "/")
	client := &http.Client{Timeout: *timeout}

	var err error
	if *check > 0 {
		err = runCheck(out, client, base, *mode, *check, *seed, *timeout, *retries)
	} else {
		err = runLoad(out, client, base, *mode, *rate, *conc, *duration, *seed, *retries)
	}
	if err != nil {
		return err
	}
	if *wantStats {
		return printStats(out, client, base)
	}
	return nil
}

// mix64 is the SplitMix64 finalizer: request i's parameters are pure
// functions of (seed, i), so the sequence replays identically anywhere.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// requestBody builds the i-th deterministic request for a mode.
// Schedule requests vary the channel set and seed; job requests rotate
// a few fleet seeds across several horizons so a warm server exercises
// session reuse while a cold one builds each fleet once.
func requestBody(mode string, seed uint64, i int) (path, body string) {
	h := mix64(seed + uint64(i))
	if mode == "schedule" {
		n := 16
		c1 := 1 + int(h%uint64(n))
		c2 := 1 + int((h>>16)%uint64(n))
		c3 := 1 + int((h>>32)%uint64(n))
		set := map[int]bool{c1: true, c2: true, c3: true}
		chans := make([]int, 0, 3)
		for c := range set {
			chans = append(chans, c)
		}
		sort.Ints(chans)
		b, _ := json.Marshal(chans)
		return "/v1/schedule", fmt.Sprintf(`{"N":%d,"Channels":%s,"Seed":%d,"Slots":64}`, n, b, h>>40)
	}
	fleetSeed := 1 + h%4
	horizon := 1024 * (1 + (h>>8)%4)
	if h%3 == 0 {
		// Coalition fleet: every agent hops the same block, so one
		// schedule backs the whole fleet and the engine's table
		// fetches hit the shared cache even on a cold single worker —
		// the hits the serve-smoke stats assertion counts on.
		return "/v1/jobs", fmt.Sprintf(
			`{"Scenario":{"N":12,"Agents":8,"Block":[1,2,5,%d],"Seed":%d,"Horizon":%d},"IncludeMeetings":true}`,
			7+(h>>4)%4, fleetSeed, horizon)
	}
	return "/v1/jobs", fmt.Sprintf(
		`{"Scenario":{"N":12,"Agents":8,"K":4,"Seed":%d,"Horizon":%d},"IncludeMeetings":true}`,
		fleetSeed, horizon)
}

func post(client *http.Client, url, body string) (int, http.Header, []byte, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, b, err
}

// shedStatus reports the server's overload statuses: 429 (queue full or
// fleet quota, with a Retry-After hint) and 503 (draining).
func shedStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// postRetry posts with up to retries re-attempts on the shedding
// statuses. The wait honors the server's Retry-After when present,
// otherwise exponential backoff from 50ms, always with jitter and
// capped at 2s so a load tool never parks for a server-sized hint.
// It returns the final status/body plus how many attempts it made;
// transport errors and non-shed statuses return immediately.
func postRetry(client *http.Client, url, body string, retries int) (code int, resp []byte, attempts int, err error) {
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		var hdr http.Header
		code, hdr, resp, err = post(client, url, body)
		attempts = attempt + 1
		if err != nil || !shedStatus(code) || attempt == retries {
			return
		}
		wait := backoff + time.Duration(rand.Int63n(int64(backoff)))
		if ra, e := strconv.Atoi(hdr.Get("Retry-After")); e == nil && ra > 0 {
			wait = time.Duration(ra) * time.Second
		}
		if wait > 2*time.Second {
			wait = 2 * time.Second
		}
		time.Sleep(wait)
		backoff *= 2
	}
}

// runCheck replays the deterministic sequence and hashes what the
// server said. Job requests hash the completed job body (status,
// result and all), not the submission ack, so the hash covers the
// simulation output itself.
func runCheck(out io.Writer, client *http.Client, base, mode string, n int, seed uint64, timeout time.Duration, retries int) error {
	hash := sha256.New()
	for i := 0; i < n; i++ {
		path, body := requestBody(mode, seed, i)
		code, resp, _, err := postRetry(client, base+path, body, retries)
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		if code != http.StatusOK && code != http.StatusAccepted {
			return fmt.Errorf("request %d: status %d: %s", i, code, resp)
		}
		if mode == "jobs" {
			var sub struct{ ID string }
			if err := json.Unmarshal(resp, &sub); err != nil {
				return fmt.Errorf("request %d: decode ack: %w", i, err)
			}
			resp, err = awaitJob(client, base, sub.ID, timeout)
			if err != nil {
				return fmt.Errorf("request %d: %w", i, err)
			}
		}
		hash.Write(resp)
	}
	fmt.Fprintf(out, "rvload: check mode=%s n=%d seed=%d sha256=%x\n", mode, n, seed, hash.Sum(nil))
	return nil
}

// awaitJob polls until the job is terminal and returns its final body.
func awaitJob(client *http.Client, base, id string, timeout time.Duration) ([]byte, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		var jr struct{ Status string }
		if err := json.Unmarshal(body, &jr); err != nil {
			return nil, fmt.Errorf("decode job %s: %w", id, err)
		}
		switch jr.Status {
		case "done", "failed", "aborted", "canceled":
			return body, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s still %s after %s", id, jr.Status, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// runLoad fires requests open-loop: a ticker releases send slots at
// the target rate and -c senders consume them, so server slowdowns
// show up as latency, not a silently reduced offered rate.
func runLoad(out io.Writer, client *http.Client, base, mode string, rate, conc int, duration time.Duration, seed uint64, retries int) error {
	type obs struct {
		micros float64
		ok     bool
	}
	slots := make(chan int, rate) // buffered: a stalled server queues slots
	results := make(chan obs, rate*int(duration/time.Second+1))

	// attempted counts every HTTP attempt including retries; retried
	// counts requests that needed at least one; shed counts requests
	// the server still refused (429/503) after the retry budget.
	var attempted, retried, shed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range slots {
				path, body := requestBody(mode, seed, i)
				start := time.Now()
				code, _, tries, err := postRetry(client, base+path, body, retries)
				attempted.Add(int64(tries))
				if tries > 1 {
					retried.Add(1)
				}
				if err == nil && shedStatus(code) {
					shed.Add(1)
				}
				results <- obs{
					micros: float64(time.Since(start).Microseconds()),
					ok:     err == nil && code < 400,
				}
			}
		}()
	}

	// Deficit dispatch: every tick releases however many sends the
	// target rate is owed since the last one, so the offered rate is
	// not bounded by timer granularity (a per-request ticker tops out
	// near 1 kHz on coalescing runtimes).
	ticker := time.NewTicker(5 * time.Millisecond)
	begin := time.Now()
	deadline := begin.Add(duration)
	sent, dropped := 0, 0
	for now := begin; now.Before(deadline); now = <-ticker.C {
		target := int(float64(rate) * now.Sub(begin).Seconds())
		for sent < target {
			select {
			case slots <- sent:
				sent++
			default:
				// A second's worth of backlog is already queued;
				// shedding keeps the generator open-loop instead of
				// stalling it behind the slow server.
				dropped += target - sent
				sent = target
			}
		}
	}
	ticker.Stop()
	close(slots)
	wg.Wait()
	elapsed := time.Since(begin)
	close(results)

	lats := make([]float64, 0, sent)
	okCount := 0
	for o := range results {
		lats = append(lats, o.micros)
		if o.ok {
			okCount++
		}
	}
	if len(lats) == 0 {
		return fmt.Errorf("no requests completed")
	}
	sort.Float64s(lats)
	achieved := float64(okCount) / elapsed.Seconds()
	// dropped = generator drops (open-loop backlog), shed = server 429/503
	// after retries — separate failure economies, reported separately.
	fmt.Fprintf(out, "rvload: mode=%s sent=%d ok=%d errors=%d attempted=%d retried=%d shed=%d dropped=%d elapsed=%.2fs achieved=%.0f req/s\n",
		mode, len(lats), okCount, len(lats)-okCount, attempted.Load(), retried.Load(), shed.Load(),
		dropped, elapsed.Seconds(), achieved)
	fmt.Fprintf(out, "rvload: latency p50=%.0fµs p99=%.0fµs p999=%.0fµs max=%.0fµs\n",
		stats.Percentile(lats, 0.50), stats.Percentile(lats, 0.99),
		stats.Percentile(lats, 0.999), lats[len(lats)-1])
	return nil
}

// printStats fetches /v1/stats and prints the cache and queue numbers
// the smoke test greps for.
func printStats(out io.Writer, client *http.Client, base string) error {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var st struct {
		Cache struct {
			Hits, Misses, Entries int64
			Pinned                int
		}
		Manager struct {
			QueueDepth     int
			SessionsOpened int64
			SessionsReused int64
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decode stats: %w", err)
	}
	fmt.Fprintf(out, "rvload: stats hits=%d misses=%d entries=%d pinned=%d queue=%d sessions=%d/%d\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Entries, st.Cache.Pinned,
		st.Manager.QueueDepth, st.Manager.SessionsOpened, st.Manager.SessionsReused)
	return nil
}
