// Command rvfig regenerates the paper's construction figures (1–3) as
// ASCII walks, plus an optional deep-dive that walks a concrete pair
// through the full Theorem-1 encoding pipeline.
//
// Usage:
//
//	rvfig            # all three figures
//	rvfig -fig 2     # a single figure
//	rvfig -pipeline -n 1024 -a 90 -b 700
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rendezvous/internal/asciiplot"
	"rendezvous/internal/bitstring"
	"rendezvous/internal/catalan"
	"rendezvous/internal/knuth"
	"rendezvous/internal/pairsched"
	"rendezvous/internal/ramsey"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rvfig:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rvfig", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "figure number (1–3; 0 = all)")
	pipeline := fs.Bool("pipeline", false, "show the full R(x) pipeline for one channel pair")
	n := fs.Int("n", 1024, "universe size for -pipeline")
	a := fs.Int("a", 90, "first channel for -pipeline")
	b := fs.Int("b", 700, "second channel for -pipeline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pipeline {
		return showPipeline(out, *n, *a, *b)
	}
	if *fig < 0 || *fig > 3 {
		return fmt.Errorf("figure %d out of range", *fig)
	}
	if *fig == 0 || *fig == 1 {
		fmt.Fprint(out, asciiplot.Walk("Figure 1a — the graph of a sequence", "11010"))
		fmt.Fprintln(out)
		fmt.Fprint(out, asciiplot.Walk("Figure 1b — a balanced sequence", "110001"))
		fmt.Fprintln(out)
	}
	strictly := bitstring.MustParse("1101011000")
	if *fig == 0 || *fig == 2 {
		fmt.Fprint(out, asciiplot.Walk("Figure 2a — a strictly Catalan sequence", strictly.String()))
		fmt.Fprintln(out)
		fmt.Fprint(out, asciiplot.Walk("Figure 2b — a shifted strictly Catalan sequence", strictly.Rotate(3).String()))
		fmt.Fprintln(out)
	}
	if *fig == 0 || *fig == 3 {
		fmt.Fprint(out, asciiplot.Walk("Figure 3a — a sequence with its maximum", strictly.String()))
		fmt.Fprintln(out)
		fmt.Fprint(out, asciiplot.Walk("Figure 3b — after the transformation to 2-maximality", catalan.MakeTwoMaximal(strictly).String()))
		fmt.Fprintln(out)
	}
	return nil
}

// showPipeline prints every intermediate string of the Theorem-1
// encoding for a channel pair: color, K(x), U(K(x)), and R(x).
func showPipeline(out io.Writer, n, a, b int) error {
	if a > b {
		a, b = b, a
	}
	color, err := ramsey.Color(a, b, n)
	if err != nil {
		return err
	}
	x := bitstring.MustFromUint(uint64(color), pairsched.ColorWidth(n))
	k := knuth.Encode(x)
	u := catalan.Catalanize(k)
	framed := bitstring.Concat(bitstring.Ones(1), u, bitstring.Zeros(1))
	r := catalan.MakeTwoMaximal(framed)

	fmt.Fprintf(out, "Theorem-1 pipeline for pair {%d,%d} in [1,%d]\n\n", a, b, n)
	fmt.Fprintf(out, "  χ(%d,%d)      = %d  (2-Ramsey color, palette %d)\n", a, b, color, ramsey.PaletteSize(n))
	fmt.Fprintf(out, "  x            = %v  (%d bits)\n", x, x.Len())
	fmt.Fprintf(out, "  K(x)         = %v  (balanced: %v)\n", k, k.IsBalanced())
	fmt.Fprintf(out, "  U(K(x))      = %v  (Catalan: %v)\n", u, u.IsCatalan())
	fmt.Fprintf(out, "  1∘U∘0        = %v  (strictly Catalan: %v)\n", framed, framed.IsStrictlyCatalan())
	fmt.Fprintf(out, "  R(x) = M(…)  = %v  (2-maximal: %v, %d slots)\n\n", r, r.IsTMaximal(2), r.Len())
	fmt.Fprint(out, asciiplot.Walk("R(x) walk — 0 hops the smaller channel, 1 the larger", r.String()))
	fmt.Fprintf(out, "\nGuarantee: any two overlapping pairs rendezvous within %d slots under any offsets.\n", pairsched.WordLen(n))
	return nil
}
