package main

import (
	"strings"
	"testing"
)

func TestRunAllFigures(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 1a", "Figure 1b", "Figure 2a", "Figure 2b", "Figure 3a", "Figure 3b"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestRunSingleFigure(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "Figure 1a") || !strings.Contains(out, "Figure 2a") {
		t.Fatalf("figure filter broken:\n%s", out)
	}
}

func TestRunFigureOutOfRange(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "9"}, &sb); err == nil {
		t.Error("expected range error")
	}
}

func TestPipeline(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-pipeline", "-n", "1024", "-a", "700", "-b", "90"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"K(x)", "U(K(x))", "2-maximal: true", "strictly Catalan: true", "R(x) walk"} {
		if !strings.Contains(out, want) {
			t.Errorf("pipeline output missing %q", want)
		}
	}
}

func TestPipelineBadPair(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-pipeline", "-n", "8", "-a", "3", "-b", "3"}, &sb); err == nil {
		t.Error("expected error for equal channels")
	}
}
