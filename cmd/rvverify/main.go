// Command rvverify exhaustively certifies rendezvous guarantees on a
// small universe: every overlapping subset pair, every wake offset (or
// a stride when the offset space is large). It is the release-gate
// companion to the probabilistic test suite — run it to convince
// yourself the construction cannot miss, or to audit an alternative
// algorithm's claimed guarantee.
//
// Usage:
//
//	rvverify -n 4                 # certify the flagship construction
//	rvverify -n 4 -alg crseq      # audit a baseline (expected to fail!)
//	rvverify -n 5 -stride 7       # larger universe, strided offsets
//	rvverify -stress 500 -seed 3  # randomized property stress instead
//
// -stress N leaves the exhaustive lattice and drives the property-based
// generators (internal/proptest) from the command line: N randomized
// overlapping pairs — universes up to 256, adversarial shapes, random
// offsets — each checked against the algorithm's analytic TTR bound and
// the time-shift metamorphic invariant. Violations are shrunk to a
// minimal counterexample and printed with a replayable instance; the
// run is a pure function of -seed. (-n and -stride apply only to the
// exhaustive mode.)
//
// Exit status 0 means every checked pair/offset rendezvoused within the
// analytic bound; 1 means a violation was found (printed with a
// replayable witness).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rendezvous"
	"rendezvous/internal/pairsched"
	"rendezvous/internal/proptest"
	"rendezvous/internal/schedule"
)

func main() {
	ok, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvverify:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (bool, error) {
	fs := flag.NewFlagSet("rvverify", flag.ContinueOnError)
	n := fs.Int("n", 4, "universe size (certification is exponential in n; ≤ 6 recommended)")
	alg := fs.String("alg", "ours", "algorithm to certify: ours, general, crseq, jumpstay")
	stride := fs.Int("stride", 1, "offset stride (1 = every offset)")
	maxPairs := fs.Int("maxpairs", 0, "cap on subset pairs checked (0 = all)")
	stress := fs.Int("stress", 0, "run N randomized property iterations instead of the exhaustive lattice")
	seed := fs.Int64("seed", 1, "base seed for -stress (the run is a pure function of it)")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if *stress < 0 {
		return false, fmt.Errorf("stress must be ≥ 0")
	}
	if *stress > 0 {
		return runStress(out, *alg, *stress, *seed)
	}
	if *n < 2 || *n > 10 {
		return false, fmt.Errorf("n=%d out of certifiable range [2,10]", *n)
	}
	if *stride < 1 {
		return false, fmt.Errorf("stride must be ≥ 1")
	}

	fmt.Fprintf(out, "certifying %s on universe [1,%d], offset stride %d\n", *alg, *n, *stride)

	pairOK := certifyPairs(out, *n)
	genOK, checked := certifySubsets(out, *n, *alg, *stride, *maxPairs)

	fmt.Fprintf(out, "\npair stage: %v   subset stage: %v (%d pair/offset checks)\n", verdict(pairOK), verdict(genOK), checked)
	if pairOK && genOK {
		fmt.Fprintln(out, "CERTIFIED: every checked configuration rendezvoused within its bound.")
		return true, nil
	}
	fmt.Fprintln(out, "VIOLATIONS FOUND: see witnesses above.")
	return false, nil
}

func verdict(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// runStress drives the property-based generators from the CLI: iters
// randomized overlapping pairs of the chosen algorithm, each checked
// against its analytic TTR bound and the time-shift metamorphic
// invariant. Failures are shrunk to a minimal counterexample before
// printing. Iteration i derives its instance from (seed, i) alone, so
// any reported iteration replays with the same -seed.
func runStress(out io.Writer, alg string, iters int, seed int64) (bool, error) {
	switch alg {
	case "ours", "general", "crseq", "jumpstay":
	default:
		return false, fmt.Errorf("stress mode supports ours, general, crseq, jumpstay; got %q", alg)
	}
	check := func(c proptest.PairCase) error {
		if err := proptest.CheckPairBound(c); err != nil {
			return err
		}
		return proptest.CheckPairTimeShift(c)
	}
	fmt.Fprintf(out, "stressing %s: %d randomized pair instances (seed %d)\n", alg, iters, seed)
	violations := 0
	for i := 0; i < iters; i++ {
		c := proptest.GenPairCase(proptest.SeedRNG(seed, i), []string{alg})
		err := check(c)
		if err == nil {
			continue
		}
		violations++
		min := proptest.ShrinkPair(c, func(c2 proptest.PairCase) bool { return check(c2) != nil })
		fmt.Fprintf(out, "  violation (iteration %d): %v\n    instance: %s\n    minimal:  %s\n", i, err, c, min)
	}
	fmt.Fprintf(out, "\nstress stage: %s (%d instances, %d violations)\n", verdict(violations == 0), iters, violations)
	if violations == 0 {
		fmt.Fprintln(out, "CERTIFIED: every stressed instance rendezvoused within its bound.")
		return true, nil
	}
	fmt.Fprintln(out, "VIOLATIONS FOUND: see witnesses above.")
	return false, nil
}

// certifyPairs runs the Theorem-1 certification: all size-2 overlapping
// pairs, all cyclic rotations, bound = word length.
func certifyPairs(out io.Writer, n int) bool {
	period := pairsched.WordLen(n)
	ok := true
	for a := 1; a <= n; a++ {
		for b := a + 1; b <= n; b++ {
			pa, err := pairsched.New(n, a, b)
			if err != nil {
				fmt.Fprintf(out, "  pair {%d,%d}: %v\n", a, b, err)
				return false
			}
			for c := 1; c <= n; c++ {
				for d := c + 1; d <= n; d++ {
					if a != c && a != d && b != c && b != d {
						continue
					}
					pb, err := pairsched.New(n, c, d)
					if err != nil {
						continue
					}
					// Compile once per pair; the offset sweep reuses the
					// hop tables through the block-evaluated scan.
					ca, cb := schedule.Compile(pa), schedule.Compile(pb)
					for off := 0; off < period; off++ {
						_, met := rendezvous.PairTTR(ca, cb, 0, off, period)
						if !met {
							fmt.Fprintf(out, "  THM1 violation: {%d,%d} vs {%d,%d} offset %d\n", a, b, c, d, off)
							ok = false
						}
					}
				}
			}
		}
	}
	fmt.Fprintf(out, "Theorem 1: all size-2 pairs × %d rotations checked\n", period)
	return ok
}

// certifySubsets checks every overlapping subset pair under the chosen
// algorithm, sweeping offsets with the given stride over the earlier
// agent's period.
func certifySubsets(out io.Writer, n int, alg string, stride, maxPairs int) (bool, int) {
	subsets := allSubsets(n)
	ok := true
	checks := 0
	pairsDone := 0
	for _, a := range subsets {
		for _, b := range subsets {
			if !overlap(a, b) {
				continue
			}
			if maxPairs > 0 && pairsDone >= maxPairs {
				return ok, checks
			}
			pairsDone++
			sa, bound, err := build(alg, n, a, len(b))
			if err != nil {
				fmt.Fprintf(out, "  build %v: %v\n", a, err)
				return false, checks
			}
			sb, _, err := build(alg, n, b, len(a))
			if err != nil {
				return false, checks
			}
			// One compile per subset pair, amortized over the whole
			// offset sweep (certification is offset-heavy by design).
			ca, cb := schedule.Compile(sa), schedule.Compile(sb)
			for off := 0; off < sa.Period(); off += stride {
				checks++
				_, met := rendezvous.PairTTR(ca, cb, 0, off, bound)
				if !met {
					fmt.Fprintf(out, "  violation: %s sets %v vs %v offset %d (bound %d)\n", alg, a, b, off, bound)
					ok = false
				}
			}
		}
	}
	return ok, checks
}

// build constructs the schedule and its certification bound (slots
// within which rendezvous must occur).
func build(alg string, n int, set []int, otherK int) (rendezvous.Schedule, int, error) {
	switch alg {
	case "ours":
		s, err := schedule.NewAsync(n, set)
		if err != nil {
			return nil, 0, err
		}
		inner := s.Inner().(*schedule.General)
		return s, schedule.SymmetricBlockLen*inner.RendezvousBound(otherK) + 2*schedule.SymmetricBlockLen, nil
	case "general":
		s, err := schedule.NewGeneral(n, set)
		if err != nil {
			return nil, 0, err
		}
		return s, s.RendezvousBound(otherK), nil
	case "crseq":
		s, err := rendezvous.NewCRSEQ(n, set)
		if err != nil {
			return nil, 0, err
		}
		return s, 2 * s.Period(), nil
	case "jumpstay":
		s, err := rendezvous.NewJumpStay(n, set)
		if err != nil {
			return nil, 0, err
		}
		return s, s.Period(), nil
	default:
		return nil, 0, fmt.Errorf("unknown algorithm %q", alg)
	}
}

func allSubsets(n int) [][]int {
	var out [][]int
	for mask := 1; mask < 1<<uint(n); mask++ {
		var s []int
		for c := 1; c <= n; c++ {
			if mask>>(uint(c)-1)&1 == 1 {
				s = append(s, c)
			}
		}
		out = append(out, s)
	}
	return out
}

func overlap(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
