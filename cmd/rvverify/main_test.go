package main

import (
	"strings"
	"testing"
)

func TestCertifyFlagshipN3(t *testing.T) {
	var sb strings.Builder
	ok, err := run([]string{"-n", "3", "-stride", "5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("flagship failed certification:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "CERTIFIED") {
		t.Fatalf("missing verdict:\n%s", sb.String())
	}
}

func TestCertifyGeneralN4(t *testing.T) {
	var sb strings.Builder
	ok, err := run([]string{"-n", "4", "-alg", "general", "-stride", "11"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("general schedule failed certification:\n%s", sb.String())
	}
}

// TestAuditCRSEQFindsViolation: the certifier must rediscover the
// DESIGN.md counterexample when pointed at deterministic CRSEQ.
func TestAuditCRSEQFindsViolation(t *testing.T) {
	var sb strings.Builder
	ok, err := run([]string{"-n", "4", "-alg", "crseq"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("expected CRSEQ audit to fail at n=4")
	}
	if !strings.Contains(sb.String(), "violation: crseq") {
		t.Fatalf("missing witness line:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if _, err := run([]string{"-n", "50"}, &sb); err == nil {
		t.Error("huge n: expected error")
	}
	if _, err := run([]string{"-stride", "0"}, &sb); err == nil {
		t.Error("zero stride: expected error")
	}
	if _, err := run([]string{"-n", "3", "-alg", "bogus"}, &sb); err == nil {
		// build error surfaces as a FAIL, not a hard error; accept either.
		if !strings.Contains(sb.String(), "unknown algorithm") {
			t.Error("bogus algorithm: expected failure output")
		}
	}
}

// TestStressCertifiesBoundedAlgs: the randomized property mode must
// pass the algorithms with a real guarantee and report its stage line.
func TestStressCertifiesBoundedAlgs(t *testing.T) {
	for _, alg := range []string{"ours", "general"} {
		var sb strings.Builder
		ok, err := run([]string{"-stress", "150", "-alg", alg, "-seed", "7"}, &sb)
		if err != nil {
			t.Fatalf("alg %s: %v", alg, err)
		}
		if !ok {
			t.Fatalf("alg %s failed stress:\n%s", alg, sb.String())
		}
		for _, want := range []string{"stressing " + alg, "150 randomized", "stress stage: PASS", "CERTIFIED"} {
			if !strings.Contains(sb.String(), want) {
				t.Fatalf("alg %s: output missing %q:\n%s", alg, want, sb.String())
			}
		}
	}
}

// TestStressDeterministic: a stress run is a pure function of (-alg,
// -stress, -seed) — two invocations must print byte-identical output.
func TestStressDeterministic(t *testing.T) {
	runOnce := func() string {
		var sb strings.Builder
		ok, err := run([]string{"-stress", "80", "-alg", "ours", "-seed", "42"}, &sb)
		if err != nil || !ok {
			t.Fatalf("stress run failed: ok=%v err=%v\n%s", ok, err, sb.String())
		}
		return sb.String()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("stress reruns diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestStressErrors(t *testing.T) {
	var sb strings.Builder
	if _, err := run([]string{"-stress", "-5"}, &sb); err == nil {
		t.Error("negative stress: expected error")
	}
	if _, err := run([]string{"-stress", "10", "-alg", "random"}, &sb); err == nil {
		t.Error("unbounded algorithm in stress mode: expected error")
	}
	if _, err := run([]string{"-stress", "10", "-alg", "bogus"}, &sb); err == nil {
		t.Error("unknown algorithm in stress mode: expected error")
	}
	if _, err := run([]string{"-bogusflag"}, &sb); err == nil {
		t.Error("unknown flag: expected parse error")
	}
}

// TestExhaustiveDeterministic: the exhaustive certification output is
// identical across runs (no map iteration or timing leaks).
func TestExhaustiveDeterministic(t *testing.T) {
	runOnce := func() string {
		var sb strings.Builder
		ok, err := run([]string{"-n", "3", "-stride", "7"}, &sb)
		if err != nil || !ok {
			t.Fatalf("run failed: ok=%v err=%v\n%s", ok, err, sb.String())
		}
		return sb.String()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("exhaustive reruns diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestMaxPairsCap(t *testing.T) {
	var sb strings.Builder
	ok, err := run([]string{"-n", "4", "-maxpairs", "3", "-stride", "17"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("capped run should pass:\n%s", sb.String())
	}
}
