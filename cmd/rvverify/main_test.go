package main

import (
	"strings"
	"testing"
)

func TestCertifyFlagshipN3(t *testing.T) {
	var sb strings.Builder
	ok, err := run([]string{"-n", "3", "-stride", "5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("flagship failed certification:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "CERTIFIED") {
		t.Fatalf("missing verdict:\n%s", sb.String())
	}
}

func TestCertifyGeneralN4(t *testing.T) {
	var sb strings.Builder
	ok, err := run([]string{"-n", "4", "-alg", "general", "-stride", "11"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("general schedule failed certification:\n%s", sb.String())
	}
}

// TestAuditCRSEQFindsViolation: the certifier must rediscover the
// DESIGN.md counterexample when pointed at deterministic CRSEQ.
func TestAuditCRSEQFindsViolation(t *testing.T) {
	var sb strings.Builder
	ok, err := run([]string{"-n", "4", "-alg", "crseq"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("expected CRSEQ audit to fail at n=4")
	}
	if !strings.Contains(sb.String(), "violation: crseq") {
		t.Fatalf("missing witness line:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if _, err := run([]string{"-n", "50"}, &sb); err == nil {
		t.Error("huge n: expected error")
	}
	if _, err := run([]string{"-stride", "0"}, &sb); err == nil {
		t.Error("zero stride: expected error")
	}
	if _, err := run([]string{"-n", "3", "-alg", "bogus"}, &sb); err == nil {
		// build error surfaces as a FAIL, not a hard error; accept either.
		if !strings.Contains(sb.String(), "unknown algorithm") {
			t.Error("bogus algorithm: expected failure output")
		}
	}
}

func TestMaxPairsCap(t *testing.T) {
	var sb strings.Builder
	ok, err := run([]string{"-n", "4", "-maxpairs", "3", "-stride", "17"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("capped run should pass:\n%s", sb.String())
	}
}
