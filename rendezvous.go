// Package rendezvous is a Go implementation of "Deterministic Blind
// Rendezvous in Cognitive Radio Networks" (Chen, Russell, Samanta,
// Sundaram — ICDCS 2014): deterministic channel-hopping schedules that
// guarantee any two radios with overlapping channel subsets of [n] meet
// on a common channel in O(|S_A|·|S_B|·log log n) slots under arbitrary
// wake offsets — and in O(1) slots when their subsets are identical —
// plus the prior-work baselines (CRSEQ, Jump-Stay), the §5 one-bit-
// beacon protocols, the §4 lower-bound explorers, the appendix one-round
// SDP approximation, and a slot-level simulator to evaluate them all.
//
// # Quick start
//
//	n := 1024                                  // channel universe [1..n]
//	a, _ := rendezvous.New(n, []int{3, 90, 512})
//	b, _ := rendezvous.New(n, []int{90, 700})
//	ttr, ok := rendezvous.PairTTR(a, b, 0, 17, 1_000_000)
//	// ok == true; ttr is the slot count until both radios hop channel 90
//
// Schedules are deterministic and anonymous: they depend only on the
// channel set and n, never on an identity, so any two devices running
// this code discover each other with zero coordination.
package rendezvous

import (
	"rendezvous/internal/scenario"
	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
)

// Schedule is a deterministic channel-hopping schedule σ : N → S ⊆ [n].
// Channel reports the 1-based channel hopped at slot t (t ≥ 0), Period a
// cycle length, and Channels a copy of the underlying channel set.
// Implementations are pure functions of t and safe for concurrent
// readers.
type Schedule = schedule.Schedule

// New returns the paper's flagship construction for the given channel
// subset of [1, n]: the Theorem-3 epoch schedule wrapped with the §3.2
// symmetric reduction. Two agents with overlapping sets rendezvous in
// O(|S_A|·|S_B|·log log n) slots regardless of wake offsets; agents with
// identical sets rendezvous in at most 6 slots.
func New(n int, channels []int) (Schedule, error) {
	return schedule.NewAsync(n, channels)
}

// NewGeneral returns the bare Theorem-3 schedule (no symmetric wrapper):
// asynchronous rendezvous in O(|S_A|·|S_B|·log log n) slots. Use New
// unless you are studying the construction itself.
func NewGeneral(n int, channels []int) (Schedule, error) {
	return schedule.NewGeneral(n, channels)
}

// NewSymmetric applies the §3.2 reduction to any schedule: identical
// channel sets then meet in O(1) slots at min(S), all other guarantees
// degrade by at most 12×.
func NewSymmetric(inner Schedule) Schedule {
	return schedule.NewSymmetric(inner)
}

// Phase describes one segment of a dynamic spectrum timeline: from local
// slot FromSlot the agent has access to exactly Channels.
type Phase = schedule.Phase

// NewDynamic returns a schedule for an agent whose available spectrum
// changes over time (incumbents arriving or leaving). Each phase runs
// the flagship construction for its set; rendezvous guarantees hold
// within each phase.
func NewDynamic(n int, phases []Phase) (Schedule, error) {
	return schedule.NewDynamic(n, phases)
}

// Agent is a simulation participant: a named schedule plus the global
// slot at which it wakes up and, optionally, a positive Leave slot at
// which it powers off (churn).
type Agent = simulator.Agent

// Meeting records the first rendezvous between two agents in a
// simulation run.
type Meeting = simulator.Meeting

// Result holds the outcome of a simulation run.
type Result = simulator.Result

// Engine is the slot-synchronous multi-agent simulator. Run performs
// the serial joint simulation; RunParallel produces the identical
// Result on a worker pool via an exact decomposition — pairwise scans
// for small fleets, a time-sharded joint scan (RunJointParallel) once
// the meetable-pair count is large. RunEnv and RunParallelEnv are the
// same runs under an Environment.
type Engine = simulator.Engine

// Environment models external spectrum dynamics (primary users, jammer
// sweeps): a rendezvous only counts at slots where the common channel
// is available. Implementations must be pure functions of (channel,
// slot) — that purity is what keeps Run and RunParallel identical.
type Environment = simulator.Environment

// Session is a reusable run context on an Engine (Engine.Session): it
// recycles the result arrays across runs, so re-running a fleet shape
// with new horizons or environments allocates ~nothing at steady state.
// The engine builds its hop tables once — borrowing from a process-wide
// cache shared with every other engine of equal shape — and Session
// re-runs then cost only the scan itself. Not safe for concurrent use;
// open one session per goroutine.
type Session = simulator.Session

// Scenario describes a network-scale workload: a fleet whose channel
// sets, wake offsets and churn are derived deterministically from a
// seed, plus environment dynamics (primary users, jammer). Build
// derives the fleet, Run executes it; the same Scenario value always
// yields the same Result at any worker count.
type Scenario = scenario.Scenario

// Churn configures fleet dynamics for a Scenario: staggered joins and
// mid-run leaves.
type Churn = scenario.Churn

// PrimaryUsers configures deterministic incumbent on/off activity for a
// Scenario.
type PrimaryUsers = scenario.PrimaryUsers

// Jammer configures a sweeping jammer for a Scenario: whole-universe
// sweeps, or barrage jamming of a fixed channel list.
type Jammer = scenario.Jammer

// Coverage summarizes fleet discovery after a scenario run: eligible
// pairs, met pairs, and the TTR profile.
type Coverage = scenario.Coverage

// Grid places a Scenario fleet on a square plane and bounds rendezvous
// to pairs within a contact radius; the zero value keeps every pair in
// range. Positions derive from the scenario seed like everything else.
type Grid = scenario.Grid

// ContactGraph is a gridded scenario's contact relation: per-agent
// neighbor lists, per-cell agent lists, and the edge count — the
// denominator of the sparse engine's candidate-reduction measurements.
type ContactGraph = scenario.ContactGraph

// ContactTopology places explicit agents on a cell grid for
// NewEngineContact; scenarios build theirs automatically via Grid.
type ContactTopology = simulator.ContactTopology

// Route identifies which evaluation strategy an engine run took (see
// Engine.LastRoute); every route computes the identical Result.
type Route = simulator.Route

// ScheduleBuilder constructs the schedule for one agent of a scenario
// fleet from its channel set; the agent index seeds randomized
// algorithms.
type ScheduleBuilder = scenario.Builder

// ScenarioBuilder returns the ScheduleBuilder for a named algorithm
// (ours, general, crseq, crseq-rand, jumpstay, random) over universe
// [1, n].
func ScenarioBuilder(alg string, n int, seed uint64) (ScheduleBuilder, error) {
	return scenario.BuilderFor(alg, n, seed)
}

// Summarize computes discovery Coverage for a finished scenario run.
func Summarize(res *Result, agents []Agent, horizon int) Coverage {
	return scenario.Summarize(res, agents, horizon)
}

// SummarizeContact is Summarize over a contact graph's edges —
// O(contact edges) instead of O(agents²), the only viable summary at
// network scale. A nil graph falls back to Summarize.
func SummarizeContact(res *Result, agents []Agent, horizon int, g *ContactGraph) Coverage {
	return scenario.SummarizeContact(res, agents, horizon, g)
}

// NewEngine validates agents (unique names, non-negative wakes) and
// returns a simulation engine.
func NewEngine(agents []Agent) (*Engine, error) {
	return simulator.NewEngine(agents)
}

// NewEngineContact is NewEngine under a contact topology: only pairs
// within the contact radius can rendezvous, pair state scales with
// contact edges instead of agents², and the joint scans route through
// the cell-filtered sparse scan. A nil topology is plain NewEngine.
func NewEngineContact(agents []Agent, topo *ContactTopology) (*Engine, error) {
	return simulator.NewEngineContact(agents, topo)
}

// PairTTR measures the time-to-rendezvous of two schedules: a wakes at
// wakeA, b at wakeB, and the returned count is in slots after the later
// wake. ok is false if they do not meet within horizon slots.
func PairTTR(a, b Schedule, wakeA, wakeB, horizon int) (ttr int, ok bool) {
	return simulator.PairTTR(a, b, wakeA, wakeB, horizon)
}

// AlignWake adapts a global-clock schedule (the beacon protocols, whose
// permutations are functions of absolute time) to the engine's
// local-clock convention; see NewBeaconFresh.
func AlignWake(inner Schedule, wake int) Schedule {
	return simulator.AlignWake(inner, wake)
}

// Compile unrolls a schedule into a flat one-period hop table so that
// repeated evaluation (offset sweeps, long simulations) costs an array
// load per slot. The table is verified against a second period before
// it is trusted; schedules whose period is too large to materialize, or
// only eventually valid (NewDynamic with several phases), are returned
// unchanged — compilation is always a transparent optimization, never a
// semantic change. The simulator applies it automatically; call it
// directly when driving schedules with your own evaluation loop.
func Compile(s Schedule) Schedule {
	return schedule.Compile(s)
}

// FillBlock fills dst[i] = s.Channel(start+i) for every i, using the
// schedule's native block evaluator when it has one and per-slot calls
// otherwise. Custom evaluation loops should prefer this over calling
// Channel slot by slot.
func FillBlock(s Schedule, dst []int, start int) {
	schedule.FillBlock(s, dst, start)
}
