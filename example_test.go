package rendezvous_test

import (
	"fmt"

	"rendezvous"
)

// Two radios with overlapping channel subsets are guaranteed to meet,
// whatever their wake offset.
func ExampleNew() {
	const n = 1024
	alice, _ := rendezvous.New(n, []int{3, 90, 512})
	bob, _ := rendezvous.New(n, []int{90, 700})

	ttr, ok := rendezvous.PairTTR(alice, bob, 0, 17, 1_000_000)
	fmt.Println(ok, alice.Channel(17+ttr))
	// Output: true 90
}

// Identical channel sets rendezvous in O(1) slots (§3.2): at most 6,
// on the set's smallest channel.
func ExampleNew_symmetric() {
	s, _ := rendezvous.New(4096, []int{1200, 1205, 1209})
	worst := 0
	for offset := 0; offset < 1000; offset++ {
		ttr, _ := rendezvous.PairTTR(s, s, 0, offset, 10)
		if ttr > worst {
			worst = ttr
		}
	}
	fmt.Println(worst <= 6)
	// Output: true
}

// The engine simulates whole fleets with arbitrary wake times.
func ExampleEngine() {
	const n = 64
	base, _ := rendezvous.New(n, []int{10, 20, 30})
	drone, _ := rendezvous.New(n, []int{20, 40})

	eng, _ := rendezvous.NewEngine([]rendezvous.Agent{
		{Name: "base", Sched: base, Wake: 0},
		{Name: "drone", Sched: drone, Wake: 2500},
	})
	res := eng.Run(1_000_000)
	m, ok := res.Meeting("base", "drone")
	fmt.Println(ok, m.Channel)
	// Output: true 20
}

// One-shot discovery (appendix): orient each agent's channel-pair edge
// to maximize pairs that meet in a single slot.
func ExampleSolveOneRound() {
	// A star: five agents all able to reach channel 1.
	g, _ := rendezvous.NewOneRoundGraph(6, [][2]int{
		{1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 6},
	})
	res, _ := rendezvous.SolveOneRound(g, rendezvous.OneRoundSDPOptions{Seed: 1})
	fmt.Println(res.InPairs) // all C(5,2) pairs meet at the hub
	// Output: 10
}
