package rendezvous

import "rendezvous/internal/seqcheck"

// CheckRotationClosure certifies the property a guaranteed-rendezvous
// schedule pair must have: at EVERY relative wake offset in [0, limit)
// the two schedules co-generate some common channel within one joint
// period. It reports the first failing offset otherwise — the audit that
// uncovered the CRSEQ counterexample in DESIGN.md. limit ≤ 0 scans one
// full joint period (can be slow for long-period schedules).
func CheckRotationClosure(a, b Schedule, limit int) (ok bool, failOffset int) {
	return seqcheck.RotationClosure(a, b, limit)
}

// CheckFullDiagonalCoverage certifies the stronger sequence property:
// every channel in the two schedules' intersection is co-generated at
// every offset in [0, limit) — sufficient for rendezvous no matter which
// single channel remains usable. On failure it returns a witness offset
// and channel.
func CheckFullDiagonalCoverage(a, b Schedule, limit int) (ok bool, failOffset, failChannel int) {
	return seqcheck.FullDiagonalCoverage(a, b, limit)
}

// ChannelOccupancy returns per-channel slot counts over one period of
// the schedule — the density Δ(h,σ;T)·T from the paper's Theorem-7
// lower-bound argument.
func ChannelOccupancy(s Schedule) map[int]int {
	return seqcheck.Occupancy(s)
}

// ChannelBalance returns the max/min occupancy ratio across the
// schedule's channels over one period (1 = perfectly fair usage). It
// reports an error if a declared channel is never hopped.
func ChannelBalance(s Schedule) (float64, error) {
	return seqcheck.BalanceRatio(s)
}
