package rendezvous

import "rendezvous/internal/beacon"

// BeaconSource is the shared one-bit-per-slot random beacon of §5. All
// agents that should rendezvous must be constructed from the same
// source value.
type BeaconSource = beacon.Source

// BeaconConfig tunes the beacon protocols; the zero value selects
// sensible defaults (degree-8 hashing, 2²² slot period).
type BeaconConfig = beacon.Config

// NewBeaconSource returns a deterministic beacon stream for a seed.
func NewBeaconSource(seed uint64) BeaconSource { return beacon.NewSource(seed) }

// NewBeaconFresh returns the simple §5 protocol: a fresh min-wise
// permutation seed every d·⌈log₂P⌉ beacon bits; rendezvous w.h.p. in
// O((|S_A|+|S_B|)·log n) slots.
//
// Beacon schedules are functions of the GLOBAL slot clock. When used
// with Engine, wrap them: Agent{Sched: AlignWake(p, w), Wake: w}.
func NewBeaconFresh(n int, channels []int, src BeaconSource, cfg BeaconConfig) (Schedule, error) {
	return beacon.NewFresh(n, channels, src, cfg)
}

// NewBeaconWalk returns the amplified §5 protocol: one seed from the
// first window, then O(1) beacon bits per redraw via an expander-style
// walk; rendezvous w.h.p. in O(|S_A|+|S_B|+log n) slots.
func NewBeaconWalk(n int, channels []int, src BeaconSource, cfg BeaconConfig) (Schedule, error) {
	return beacon.NewWalk(n, channels, src, cfg)
}
