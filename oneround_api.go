package rendezvous

import (
	"math/rand"

	"rendezvous/internal/oneround"
)

// OneRoundGraph is the appendix's "graphical" one-shot setting: channel
// vertices with one edge per agent (channel sets of size two). Orienting
// an edge is the agent's single-slot channel choice; two agents
// rendezvous iff their arcs share a head.
type OneRoundGraph = oneround.Graph

// Orientation assigns each agent edge a direction (+1 keeps the stored
// direction, −1 flips it).
type Orientation = oneround.Orientation

// OneRoundSDPOptions tunes the 0.439-approximation pipeline.
type OneRoundSDPOptions = oneround.SDPOptions

// OneRoundSDPResult reports the orientation found and its in-pair count.
type OneRoundSDPResult = oneround.SDPResult

// NewOneRoundGraph builds the agent/channel graph; parallel edges model
// distinct agents with the same channel pair.
func NewOneRoundGraph(vertices int, edges [][2]int) (*OneRoundGraph, error) {
	return oneround.NewGraph(vertices, edges)
}

// SolveOneRound runs the appendix pipeline — edge-vector SDP relaxation,
// hyperplane rounding, orientation flip — achieving at least 0.439 of
// the maximum number of simultaneously-rendezvousing pairs.
func SolveOneRound(g *OneRoundGraph, opts OneRoundSDPOptions) (OneRoundSDPResult, error) {
	return oneround.SolveOneRound(g, opts)
}

// BestRandomOrientation draws the appendix's 0.25-approximate random
// orientations and keeps the best of trials.
func BestRandomOrientation(g *OneRoundGraph, rng *rand.Rand, trials int) (Orientation, int) {
	return oneround.BestRandom(g, rng, trials)
}
