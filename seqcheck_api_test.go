package rendezvous_test

import (
	"testing"

	"rendezvous"
)

func TestCheckRotationClosureOnFlagship(t *testing.T) {
	a, err := rendezvous.NewGeneral(16, []int{2, 7, 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rendezvous.NewGeneral(16, []int{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	ok, off := rendezvous.CheckRotationClosure(a, b, 300)
	if !ok {
		t.Fatalf("flagship failed closure at offset %d", off)
	}
}

func TestCheckRotationClosureAuditsCRSEQ(t *testing.T) {
	// The public audit API must rediscover the DESIGN.md counterexample.
	a, err := rendezvous.NewCRSEQ(4, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rendezvous.NewCRSEQ(4, []int{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	ok, off := rendezvous.CheckRotationClosure(a, b, 0)
	if ok {
		t.Fatal("CRSEQ audit unexpectedly passed")
	}
	if off < 0 {
		t.Fatalf("bad witness offset %d", off)
	}
}

func TestCheckFullDiagonalCoverage(t *testing.T) {
	s, err := rendezvous.New(8, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	ok, _, _ := rendezvous.CheckFullDiagonalCoverage(s, s, 20)
	if !ok {
		t.Fatal("single-channel schedule must have full coverage")
	}
}

func TestChannelOccupancyAndBalance(t *testing.T) {
	s, err := rendezvous.NewGeneral(32, []int{4, 9, 17})
	if err != nil {
		t.Fatal(err)
	}
	occ := rendezvous.ChannelOccupancy(s)
	total := 0
	for ch, c := range occ {
		if ch != 4 && ch != 9 && ch != 17 {
			t.Fatalf("occupancy reports foreign channel %d", ch)
		}
		total += c
	}
	if total != s.Period() {
		t.Fatalf("occupancy sums to %d, want period %d", total, s.Period())
	}
	ratio, err := rendezvous.ChannelBalance(s)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1 {
		t.Fatalf("balance ratio %v < 1", ratio)
	}
}
