// Package simulator provides the slot-synchronous discrete-event engine
// used to evaluate every rendezvous algorithm in this repository: agents
// with arbitrary wake offsets hop channels according to their schedules,
// and the engine records pairwise first-rendezvous times.
//
// Time is a global slot counter t = 0, 1, 2, …. An agent with wake time
// w executes slot s = t − w of its schedule at global slot t ≥ w (the
// paper's asynchronous model: a common slot clock but adversarial wake
// offsets). Two agents rendezvous at the first global slot at which both
// are awake and hop the same channel.
package simulator

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rendezvous/internal/schedule"
)

// Agent is a named participant: a schedule plus a wake slot.
type Agent struct {
	Name  string
	Sched schedule.Schedule
	Wake  int
}

// Meeting records the first rendezvous between two agents.
type Meeting struct {
	A, B    string
	Slot    int // global slot of first rendezvous
	Channel int // channel they met on
	TTR     int // slots after both were awake: Slot − max(wake)
}

// Result holds the outcome of a simulation run.
type Result struct {
	Horizon  int
	meetings map[[2]string]Meeting
}

// Meeting returns the first meeting between the two named agents.
func (r *Result) Meeting(a, b string) (Meeting, bool) {
	m, ok := r.meetings[pairKey(a, b)]
	return m, ok
}

// Meetings returns all recorded meetings sorted by slot.
func (r *Result) Meetings() []Meeting {
	out := make([]Meeting, 0, len(r.meetings))
	for _, m := range r.meetings {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slot != out[j].Slot {
			return out[i].Slot < out[j].Slot
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// AllMet reports whether every pair of agents whose channel sets overlap
// has met.
func (r *Result) AllMet(agents []Agent) bool {
	for i := range agents {
		for j := i + 1; j < len(agents); j++ {
			if !setsIntersect(allChannels(agents[i].Sched), allChannels(agents[j].Sched)) {
				continue
			}
			if _, ok := r.Meeting(agents[i].Name, agents[j].Name); !ok {
				return false
			}
		}
	}
	return true
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// allChannels returns every channel s may ever hop: schedules with
// time-varying availability (schedule.Dynamic and wrappers over it)
// expose AllChannels; for all other schedules Channels() is complete.
// Overlap-based pruning must use this, never Channels() directly.
func allChannels(s schedule.Schedule) []int {
	if v, ok := s.(interface{ AllChannels() []int }); ok {
		return v.AllChannels()
	}
	return s.Channels()
}

func setsIntersect(a, b []int) bool {
	in := make(map[int]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	for _, y := range b {
		if in[y] {
			return true
		}
	}
	return false
}

// Engine runs multi-agent simulations.
type Engine struct {
	agents []Agent
}

// NewEngine validates the agents (unique non-empty names, non-negative
// wake slots) and returns an engine.
func NewEngine(agents []Agent) (*Engine, error) {
	if len(agents) < 2 {
		return nil, fmt.Errorf("simulator: need at least 2 agents, got %d", len(agents))
	}
	seen := make(map[string]bool, len(agents))
	for _, a := range agents {
		if a.Name == "" {
			return nil, fmt.Errorf("simulator: agent with empty name")
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("simulator: duplicate agent name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Wake < 0 {
			return nil, fmt.Errorf("simulator: agent %q has negative wake %d", a.Name, a.Wake)
		}
		if a.Sched == nil {
			return nil, fmt.Errorf("simulator: agent %q has nil schedule", a.Name)
		}
	}
	cp := make([]Agent, len(agents))
	copy(cp, agents)
	return &Engine{agents: cp}, nil
}

// Run advances global slots 0 … horizon−1 and records the first meeting
// of every agent pair that hops a common channel while awake.
func (e *Engine) Run(horizon int) *Result {
	res := &Result{Horizon: horizon, meetings: make(map[[2]string]Meeting)}
	occupants := make(map[int][]int) // channel -> agent indices, reused per slot
	for t := 0; t < horizon; t++ {
		for ch := range occupants {
			delete(occupants, ch)
		}
		for i, a := range e.agents {
			if t < a.Wake {
				continue
			}
			ch := a.Sched.Channel(t - a.Wake)
			occupants[ch] = append(occupants[ch], i)
		}
		for ch, idxs := range occupants {
			if len(idxs) < 2 {
				continue
			}
			for x := 0; x < len(idxs); x++ {
				for y := x + 1; y < len(idxs); y++ {
					ai, bj := e.agents[idxs[x]], e.agents[idxs[y]]
					key := pairKey(ai.Name, bj.Name)
					if _, done := res.meetings[key]; done {
						continue
					}
					both := ai.Wake
					if bj.Wake > both {
						both = bj.Wake
					}
					res.meetings[key] = Meeting{
						A: key[0], B: key[1], Slot: t, Channel: ch, TTR: t - both,
					}
				}
			}
		}
	}
	return res
}

// RunParallel computes the same Result as Run by decomposing the joint
// simulation into independent pairwise scans executed by a bounded
// worker pool (workers ≤ 0 means GOMAXPROCS). The decomposition is
// exact: every schedule is a pure function of its local slot, so the
// first meeting of a pair does not depend on any third agent, and the
// result is identical to Run at any worker count. Pairs whose complete
// hop sets (allChannels — sound for phase-varying schedules too) are
// disjoint can never meet and are skipped outright — on large fleets
// that prunes the quadratic pair space before any slot is simulated.
func (e *Engine) RunParallel(horizon, workers int) *Result {
	type pairIdx struct{ i, j int }
	var pairs []pairIdx
	for i := range e.agents {
		for j := i + 1; j < len(e.agents); j++ {
			if setsIntersect(allChannels(e.agents[i].Sched), allChannels(e.agents[j].Sched)) {
				pairs = append(pairs, pairIdx{i, j})
			}
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	found := make([]*Meeting, len(pairs))
	scan := func(p int) {
		a, b := e.agents[pairs[p].i], e.agents[pairs[p].j]
		start := a.Wake
		if b.Wake > start {
			start = b.Wake
		}
		for t := start; t < horizon; t++ {
			ca := a.Sched.Channel(t - a.Wake)
			if ca == b.Sched.Channel(t-b.Wake) {
				key := pairKey(a.Name, b.Name)
				found[p] = &Meeting{A: key[0], B: key[1], Slot: t, Channel: ca, TTR: t - start}
				return
			}
		}
	}
	if workers <= 1 {
		for p := range pairs {
			scan(p)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					p := int(next.Add(1)) - 1
					if p >= len(pairs) {
						return
					}
					scan(p)
				}
			}()
		}
		wg.Wait()
	}
	res := &Result{Horizon: horizon, meetings: make(map[[2]string]Meeting, len(pairs))}
	for _, m := range found {
		if m != nil {
			res.meetings[pairKey(m.A, m.B)] = *m
		}
	}
	return res
}

// PairTTR measures the time-to-rendezvous of two schedules directly:
// a wakes at wakeA, b at wakeB; the returned TTR counts slots after both
// are awake. ok is false if they do not meet within horizon slots
// (measured from the later wake).
func PairTTR(a, b schedule.Schedule, wakeA, wakeB, horizon int) (ttr int, ok bool) {
	start := wakeA
	if wakeB > start {
		start = wakeB
	}
	for s := 0; s < horizon; s++ {
		t := start + s
		if a.Channel(t-wakeA) == b.Channel(t-wakeB) {
			return s, true
		}
	}
	return 0, false
}
