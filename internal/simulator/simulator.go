// Package simulator provides the slot-synchronous discrete-event engine
// used to evaluate every rendezvous algorithm in this repository: agents
// with arbitrary wake offsets hop channels according to their schedules,
// and the engine records pairwise first-rendezvous times.
//
// Time is a global slot counter t = 0, 1, 2, …. An agent with wake time
// w executes slot s = t − w of its schedule at global slot t ≥ w (the
// paper's asynchronous model: a common slot clock but adversarial wake
// offsets). An agent with a positive Leave slot powers off at that slot
// and takes no further part (churn). Two agents rendezvous at the first
// global slot at which both are active and hop the same channel — and,
// when an Environment is supplied, the channel is available at that slot
// (no primary user or jammer on it).
//
// Internally the engine is integer-indexed: agents are dense ids in
// engine order, channel values are remapped to dense ids once at
// construction, met pairs live in a triangular bitset, and per-slot
// occupancy uses stamped flat slices — no map operations on any hot
// path. Result retains its public string API through an id↔name table,
// so callers are unaffected by the representation.
//
// All evaluators consume schedules in blocks (schedule.FillBlock /
// schedule.Compile) rather than one interface call per slot; the
// original per-slot paths are retained behind SetBlockEval as the
// regression oracle and produce identical results.
package simulator

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rendezvous/internal/schedule"
	"rendezvous/internal/tablecache"
)

// blockLen is the slot-count granularity of the block evaluators: long
// enough to amortize epoch and permutation lookups, short enough that a
// pair of buffers stays in L1 and early rendezvous does not overshoot
// by much useless work.
const blockLen = 256

// blockEval selects the block-evaluation fast path (the default). The
// per-slot paths remain as the reference implementation.
var blockEval atomic.Bool

func init() { blockEval.Store(true) }

// SetBlockEval toggles between block evaluation and the per-slot
// reference paths, returning the previous setting. It exists for
// equivalence regression tests and debugging; production callers never
// need it.
func SetBlockEval(on bool) (previous bool) {
	return blockEval.Swap(on)
}

// Agent is a named participant: a schedule plus an activity window.
type Agent struct {
	Name  string
	Sched schedule.Schedule
	Wake  int
	// Leave, when positive, is the global slot at which the agent powers
	// off: it is active for slots Wake ≤ t < Leave (churn). Zero means
	// the agent never leaves.
	Leave int
}

// active reports whether the agent participates at global slot t.
func (a Agent) active(t int) bool {
	return t >= a.Wake && (a.Leave == 0 || t < a.Leave)
}

// end returns the exclusive last slot the agent can act in, clamped to
// horizon.
func (a Agent) end(horizon int) int {
	if a.Leave > 0 && a.Leave < horizon {
		return a.Leave
	}
	return horizon
}

// Environment models external spectrum dynamics — primary-user activity,
// jammer sweeps, policy blackouts. Available reports whether channel ch
// can carry a rendezvous at global slot t: two agents hopping ch at an
// unavailable slot do not meet there. Implementations must be pure
// functions of (ch, t) and safe for concurrent readers; the engine
// consults them only at candidate meetings, never per slot.
type Environment interface {
	Available(ch, t int) bool
}

// Meeting records the first rendezvous between two agents.
type Meeting struct {
	A, B    string
	Slot    int // global slot of first rendezvous
	Channel int // channel they met on
	TTR     int // slots after both were awake: Slot − max(wake)
}

// Result holds the outcome of a simulation run. Meetings are stored in
// flat arrays indexed by the engine's pair space — triangular over all
// pairs for topology-free fleets, contact-edge CSR for large contact
// fleets — and the public accessors translate through the engine's
// id↔name table, so the string API is unchanged from the original
// map-based representation.
type Result struct {
	Horizon int

	names    []string       // agent id -> name, engine order
	byName   map[string]int // name -> agent id
	ps       *pairSpace     // pair (i<j) -> state slot, shared with the engine
	met      []uint64       // bitset over pair slots
	metCount int
	slot     []int // per pair slot, valid where met
	channel  []int
	ttr      []int
}

// newResult allocates a result sized for the engine's pair space; the
// name table and pair space are shared with the engine (read-only).
func (e *Engine) newResult(horizon int) *Result {
	slots := e.ps.slots
	return &Result{
		Horizon: horizon,
		names:   e.names,
		byName:  e.byName,
		ps:      e.ps,
		met:     make([]uint64, (slots+63)/64),
		slot:    make([]int, slots),
		channel: make([]int, slots),
		ttr:     make([]int, slots),
	}
}

// isMet reports whether pair slot p has a recorded meeting.
func (r *Result) isMet(p int) bool { return r.met[p>>6]&(1<<(p&63)) != 0 }

// record stores the first meeting of agents i < j (dense ids) at global
// slot t on channel ch; both is the later wake. Later calls for the same
// pair are ignored, preserving first-meeting semantics; pairs outside
// the contact topology are ignored outright.
func (r *Result) record(i, j, t, ch, both int) {
	r.recordAt(r.ps.index(i, j), t, ch, both)
}

// recordAt is record for callers that already hold the pair's slot.
func (r *Result) recordAt(p, t, ch, both int) {
	if p < 0 || r.isMet(p) {
		return
	}
	r.met[p>>6] |= 1 << (p & 63)
	r.metCount++
	r.slot[p] = t
	r.channel[p] = ch
	r.ttr[p] = t - both
}

// meetingAt materializes the Meeting recorded at pair slot p for agents
// (i<j), with A/B in name order as the original map keys were.
func (r *Result) meetingAt(p, i, j int) Meeting {
	a, b := r.names[i], r.names[j]
	if a > b {
		a, b = b, a
	}
	return Meeting{A: a, B: b, Slot: r.slot[p], Channel: r.channel[p], TTR: r.ttr[p]}
}

// Meeting returns the first meeting between the two named agents.
func (r *Result) Meeting(a, b string) (Meeting, bool) {
	i, okA := r.byName[a]
	j, okB := r.byName[b]
	if !okA || !okB || i == j {
		return Meeting{}, false
	}
	if i > j {
		i, j = j, i
	}
	p := r.ps.index(i, j)
	if p < 0 || !r.isMet(p) {
		return Meeting{}, false
	}
	return r.meetingAt(p, i, j), true
}

// MetCount returns the number of recorded meetings without
// materializing them.
func (r *Result) MetCount() int { return r.metCount }

// meetingLess is the canonical meeting order — by slot, then agent
// names — shared by Meetings and any future sorted view, so the order
// is defined in exactly one place.
func meetingLess(a, b Meeting) bool {
	if a.Slot != b.Slot {
		return a.Slot < b.Slot
	}
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// Meetings returns all recorded meetings sorted by slot.
func (r *Result) Meetings() []Meeting {
	out := make([]Meeting, 0, r.metCount)
	r.ps.forEach(func(p, i, j int) {
		if r.isMet(p) {
			out = append(out, r.meetingAt(p, i, j))
		}
	})
	sort.Slice(out, func(i, j int) bool { return meetingLess(out[i], out[j]) })
	return out
}

// AllMet reports whether every eligible pair of agents has met: pairs
// whose channel sets overlap and whose activity windows intersect
// within the run's horizon (under churn, a pair where one agent leaves
// before the other wakes can never meet and is not required; under a
// contact topology, out-of-range pairs are likewise not required).
func (r *Result) AllMet(agents []Agent) bool {
	sets := make([][]int, len(agents))
	for i := range agents {
		sets[i] = allChannels(agents[i].Sched)
	}
	for i := range agents {
		for j := i + 1; j < len(agents); j++ {
			if !sortedIntersect(sets[i], sets[j]) || !Coexist(agents[i], agents[j], r.Horizon) {
				continue
			}
			if !r.PairInRange(agents[i].Name, agents[j].Name) {
				continue
			}
			if _, ok := r.Meeting(agents[i].Name, agents[j].Name); !ok {
				return false
			}
		}
	}
	return true
}

// PairInRange reports whether the named pair is representable in the
// result's pair space — always true without a contact topology, the
// in-range relation with one. Names are resolved through the engine's
// table because contact engines renumber agents internally.
func (r *Result) PairInRange(a, b string) bool {
	i, okA := r.byName[a]
	j, okB := r.byName[b]
	if !okA || !okB {
		return false
	}
	if i > j {
		i, j = j, i
	}
	return r.ps.index(i, j) >= 0
}

// allChannels returns every channel s may ever hop, sorted ascending
// (schedule.AllChannels — sound for phase-varying schedules, and
// defensively re-sorted for contract-violating external schedules).
// Overlap-based pruning must use this, never Channels() directly.
func allChannels(s schedule.Schedule) []int {
	return schedule.AllChannels(s)
}

// Coexist reports whether both agents are active at some common slot
// below horizon — the activity-window half of pair eligibility, shared
// by the engine's pruning, Result.AllMet, and scenario coverage so the
// notion cannot drift between layers.
func Coexist(a, b Agent, horizon int) bool {
	return max(a.Wake, b.Wake) < min(a.end(horizon), b.end(horizon))
}

// SetsIntersect reports whether two ascending-sorted channel sets share
// an element — the hop-set half of pair eligibility (schedule.AllChannels
// guarantees the sortedness callers need).
func SetsIntersect(a, b []int) bool { return sortedIntersect(a, b) }

// sortedIntersect reports whether two ascending-sorted channel sets
// share an element (allChannels guarantees sortedness), so the O(N²)
// pair pruning needs no per-pair map building.
func sortedIntersect(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// directIndexLimit bounds the channel value up to which chanIndex uses a
// flat value→id slice (4 MiB of int32 at the limit); larger universes
// fall back to a map built once at engine construction.
const directIndexLimit = 1 << 20

// chanIndex maps raw channel values to dense ids 0 … count−1, built once
// at engine construction from the union of every agent's complete hop
// set. The hot loops then index flat occupancy slices of length count
// instead of hashing channel values every slot.
type chanIndex struct {
	direct []int32       // value -> id+1; nil when values exceed directIndexLimit
	table  map[int]int32 // fallback: value -> id+1
	count  int
}

// newChanIndex builds the index over the sorted union of hop sets.
func newChanIndex(union []int) chanIndex {
	x := chanIndex{count: len(union)}
	if len(union) == 0 {
		return x
	}
	if maxCh := union[len(union)-1]; maxCh < directIndexLimit {
		x.direct = make([]int32, maxCh+1)
		for id, ch := range union {
			x.direct[ch] = int32(id) + 1
		}
		return x
	}
	x.table = make(map[int]int32, len(union))
	for id, ch := range union {
		x.table[ch] = int32(id) + 1
	}
	return x
}

// id returns the dense id of ch. A schedule that hops a channel outside
// its declared complete hop set violates the Schedule contract (the
// conformance suite enforces it, and RunParallel's disjointness pruning
// already relies on it); the engine fails loudly instead of silently
// mis-recording such a meeting.
func (x *chanIndex) id(ch int) int {
	var v int32
	if x.direct != nil {
		if ch >= 0 && ch < len(x.direct) {
			v = x.direct[ch]
		}
	} else {
		v = x.table[ch]
	}
	if v == 0 {
		panic(fmt.Sprintf("simulator: schedule hopped channel %d outside its declared hop set (AllChannels contract)", ch))
	}
	return int(v) - 1
}

// Engine runs multi-agent simulations. Run and RunParallel are safe to
// call concurrently from multiple goroutines.
type Engine struct {
	agents  []Agent
	names   []string       // agent id -> name
	byName  map[string]int // name -> agent id
	rowBase []int          // triangular row offsets for pair indexing
	hopSets [][]int        // per-agent complete hop set, sorted
	chIdx   chanIndex
	union   []int // dense channel id -> raw value (sorted hop-set union)

	// topo is the contact topology (nil for topology-free fleets), ps
	// the pair-slot layout over it (see pairSpace), and lastRoute the
	// evaluation strategy of the most recent run (see LastRoute).
	topo      *topoState
	ps        *pairSpace
	lastRoute atomic.Int32

	// cal is the ski-rental crossover calibration state for fleets in
	// the pairwise/joint ambiguity band (see jointChoice).
	cal crossoverCal

	// compiled caches per-agent hop tables (schedule.Compile) built
	// lazily once a run's horizon justifies the one-time unroll cost;
	// dense caches their int32 dense-id remaps for the joint scans.
	// Both are borrowed from cache when the schedule has a cache key
	// (handles tracks the pins; Close releases them); mu guards all of
	// it so concurrent runs stay safe.
	mu       sync.Mutex
	compiled []schedule.Schedule
	dense    []*schedule.DenseTable
	cache    *tablecache.Cache
	handles  []tablecache.Handle
	uniKey   string // universe fingerprint for dense-table cache scoping
	ring     *tablecache.BlockRing

	// metSeedTmpl/metSeedFull cache the inverted scan's met-row
	// template for metSeedHorizon (see metSeed), metRowBase its
	// triangular row offsets, and meetableN the meetablePairs count
	// for meetableHorizon; also under mu.
	metSeedHorizon  int
	metSeedTmpl     []uint64
	metSeedFull     []uint64
	metRowBase      []int32
	meetableHorizon int
	meetableN       int
	meetableOK      bool
	// prefixDense holds horizon-prefix dense tables (see planFor) for
	// agents without compiled tables, keyed by prefixHorizon; also
	// under mu. Their cache pins live in prefixHandles, separate from
	// handles, because a horizon change discards the whole prefix set —
	// the old pins must be released right then, or a long-running
	// engine serving many horizons accumulates pins the cache can
	// never evict (see planFor).
	prefixDense   []*schedule.DenseTable
	prefixHorizon int
	prefixHandles []tablecache.Handle

	// Scratch pools recycle the per-run working state (occupancy index,
	// block buffers, pairwise found arrays) across runs: the sweeps that
	// drive experiments call Run/RunParallel in tight loops, and this
	// bookkeeping dominated their allocation profile.
	planPool   sync.Pool // *runPlan
	jointPool  sync.Pool // *jointScratch
	pairPool   sync.Pool // *pairScratch
	hitPool    sync.Pool // *[]hit32
	invPool    sync.Pool // *invertedScratch
	sparsePool sync.Pool // *sparseScratch
	seenPool   sync.Pool // *[]uint64 (sharded-scan seen bitsets)
	workerPool sync.Pool // *[][]hit32 (per-worker hit-array slots)
}

// NewEngine validates the agents (unique non-empty names, non-negative
// wake slots, leave after wake) and returns an engine.
func NewEngine(agents []Agent) (*Engine, error) {
	if len(agents) < 2 {
		return nil, fmt.Errorf("simulator: need at least 2 agents, got %d", len(agents))
	}
	n := len(agents)
	byName := make(map[string]int, n)
	names := make([]string, n)
	for i, a := range agents {
		if a.Name == "" {
			return nil, fmt.Errorf("simulator: agent with empty name")
		}
		if _, dup := byName[a.Name]; dup {
			return nil, fmt.Errorf("simulator: duplicate agent name %q", a.Name)
		}
		byName[a.Name] = i
		names[i] = a.Name
		if a.Wake < 0 {
			return nil, fmt.Errorf("simulator: agent %q has negative wake %d", a.Name, a.Wake)
		}
		if a.Sched == nil {
			return nil, fmt.Errorf("simulator: agent %q has nil schedule", a.Name)
		}
		if a.Leave != 0 && a.Leave <= a.Wake {
			return nil, fmt.Errorf("simulator: agent %q leaves at %d, not after wake %d", a.Name, a.Leave, a.Wake)
		}
	}
	cp := make([]Agent, n)
	copy(cp, agents)
	hopSets := make([][]int, n)
	for i := range cp {
		hopSets[i] = allChannels(cp[i].Sched)
	}
	union := unionSorted(hopSets)
	rowBase := make([]int, n)
	for i := 1; i < n; i++ {
		rowBase[i] = rowBase[i-1] + n - i
	}
	return &Engine{
		agents:   cp,
		names:    names,
		byName:   byName,
		rowBase:  rowBase,
		ps:       &pairSpace{n: n, slots: n * (n - 1) / 2, rowBase: rowBase},
		hopSets:  hopSets,
		chIdx:    newChanIndex(union),
		union:    union,
		compiled: make([]schedule.Schedule, n),
		dense:    make([]*schedule.DenseTable, n),
		cache:    currentTableCache(),
	}, nil
}

// unionSorted merges ascending-sorted sets (allChannels guarantees the
// ordering) into their sorted distinct union by a k-way merge over a
// min-heap of set cursors: O(total·log k) with no per-element map
// operations, where the previous map-based merge hashed every element
// of every set.
func unionSorted(sets [][]int) []int {
	type cursor struct{ set, pos int }
	head := func(c cursor) int { return sets[c.set][c.pos] }
	h := make([]cursor, 0, len(sets))
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if head(h[p]) <= head(h[i]) {
				return
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
	}
	siftDown := func() {
		i := 0
		for {
			m := i
			if l := 2*i + 1; l < len(h) && head(h[l]) < head(h[m]) {
				m = l
			}
			if r := 2*i + 2; r < len(h) && head(h[r]) < head(h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for s := range sets {
		if len(sets[s]) > 0 {
			h = append(h, cursor{set: s})
			siftUp(len(h) - 1)
		}
	}
	var out []int
	for len(h) > 0 {
		v := head(h[0])
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
		if c := h[0]; c.pos+1 < len(sets[c.set]) {
			h[0].pos++
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown()
	}
	return out
}

// schedFor returns the schedule evaluated for agent i over the given
// horizon: the cached compiled table when one exists, a freshly
// compiled one when the horizon spans at least two periods (so the
// unroll pays for itself), and the agent's own schedule otherwise.
// Compiled tables are verified equivalents, so results never depend on
// which representation a run used. Called once per agent per run (never
// in a hot loop), so the lock is uncontended noise.
func (e *Engine) schedFor(i, horizon int) schedule.Schedule {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.schedForLocked(i, horizon)
}

func (e *Engine) schedForLocked(i, horizon int) schedule.Schedule {
	if c := e.compiled[i]; c != nil {
		return c
	}
	s := e.agents[i].Sched
	if p := s.Period(); horizon >= 2*p {
		cs, h := e.cache.Compile(s)
		e.compiled[i] = cs
		e.pinLocked(h)
		return e.compiled[i]
	}
	return s
}

// id32 adapts chanIndex.id to the schedule package's dense remap
// signature.
func (e *Engine) id32(ch int) int32 { return int32(e.chIdx.id(ch)) }

// runPlan is the per-run snapshot of each agent's evaluation artifacts:
// the schedule to evaluate (compiled when worthwhile) and its dense-id
// hop table (nil for schedules without a materialized table, which take
// the remap-per-block fallback). Shared read-only by every worker of a
// run and recycled through planPool.
type runPlan struct {
	scheds []schedule.Schedule
	dense  []*schedule.DenseTable
	// ring is the rolling dense-block cache for agents still without any
	// dense table after the prefix attempt (nil when every agent has
	// one, or the block cache is disabled).
	ring *tablecache.BlockRing
}

// planFor builds the run plan for the given horizon, caching compiled
// and dense tables on the engine under mu. Schedules out of reach of
// CompileDense (period over twice the horizon) get a horizon-prefix
// table instead when the fleet fits prefixBudget: the evaluation cost
// every run pays per block collapses into a one-time materialization,
// which dominates the joint scans' profile once the detection work
// itself is cheap.
func (e *Engine) planFor(horizon int) *runPlan {
	p, _ := e.planPool.Get().(*runPlan)
	if p == nil {
		n := len(e.agents)
		p = &runPlan{scheds: make([]schedule.Schedule, n), dense: make([]*schedule.DenseTable, n)}
	}
	p.ring = nil
	e.mu.Lock()
	defer e.mu.Unlock()
	missing := 0
	for i := range e.agents {
		s := e.schedForLocked(i, horizon)
		p.scheds[i] = s
		if e.dense[i] == nil {
			if d, h, ok := e.cache.Dense(s, e.uniKeyLocked(), e.id32); ok {
				e.dense[i] = d
				e.pinLocked(h)
			}
		}
		p.dense[i] = e.dense[i]
		if p.dense[i] == nil {
			missing++
		}
	}
	if missing > 0 && missing*horizon*4 <= int(prefixBudget.Load()) {
		if e.prefixHorizon != horizon || e.prefixDense == nil {
			// The prefix set is horizon-keyed: discarding it must also
			// release its pins, or an engine alternating horizons pins a
			// fresh table set per horizon forever (the tables themselves
			// stay valid for any still-running readers — pins are
			// bookkeeping, not lifetime).
			e.releasePrefixPinsLocked()
			e.prefixDense = make([]*schedule.DenseTable, len(e.agents))
			e.prefixHorizon = horizon
		}
		var scratch []int
		for i := range e.agents {
			if p.dense[i] != nil {
				continue
			}
			if e.prefixDense[i] == nil {
				if scratch == nil {
					scratch = make([]int, blockLen)
				}
				d, h := e.cache.DensePrefix(p.scheds[i], e.uniKeyLocked(), horizon, e.id32, scratch)
				e.prefixDense[i] = d
				if h != (tablecache.Handle{}) {
					e.prefixHandles = append(e.prefixHandles, h)
				}
			}
			p.dense[i] = e.prefixDense[i]
		}
		missing = 0 // DensePrefix always materializes
	}
	if missing > 0 {
		// Some agents still re-evaluate and re-remap every block (beacons,
		// huge-period Random past the prefix budget): give the run the
		// engine's rolling block cache so repeated runs replay those
		// blocks instead of recomputing them.
		if e.ring == nil {
			if budget := blockCacheBudget.Load(); budget > 0 {
				blocks := int(budget / (4 * blockLen))
				e.ring = tablecache.NewBlockRing(blocks, blockLen)
			}
		}
		p.ring = e.ring
	}
	return p
}

// meetablePairs counts pairs that could ever meet within horizon: hop
// sets overlap and activity windows intersect. Once that many pairs are
// recorded no later slot can change the result, so the joint loops exit
// early (under an Environment some meetable pairs may stay unmet, which
// simply forfeits the early exit).
func (e *Engine) meetablePairs(horizon int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.meetableOK && e.meetableHorizon == horizon {
		return e.meetableN
	}
	count := 0
	if t := e.topo; t != nil {
		// Under a contact topology only edges can meet, so the count
		// walks O(contact edges) — the quadratic pair loop below would
		// alone blow the budget of a million-agent run.
		for i := range e.agents {
			for ei := t.fwdBase[i]; ei < t.fwdBase[i+1]; ei++ {
				if e.pairMeetable(i, int(t.fwdAdj[ei]), horizon) {
					count++
				}
			}
		}
	} else {
		for i := range e.agents {
			for j := i + 1; j < len(e.agents); j++ {
				if e.pairMeetable(i, j, horizon) {
					count++
				}
			}
		}
	}
	// Agents are immutable after NewEngine, so the count depends only on
	// the horizon; sweeps re-run the same horizon in tight loops.
	e.meetableHorizon, e.meetableN, e.meetableOK = horizon, count, true
	return count
}

// pairMeetable reports whether agents i and j share a channel, are
// both active at some slot below horizon, and (under a contact
// topology) are within contact range.
func (e *Engine) pairMeetable(i, j, horizon int) bool {
	if e.topo != nil && !e.topo.inRange2(i, j) {
		return false
	}
	return Coexist(e.agents[i], e.agents[j], horizon) && sortedIntersect(e.hopSets[i], e.hopSets[j])
}

// Run advances global slots 0 … horizon−1 and records the first meeting
// of every agent pair that hops a common channel while active.
func (e *Engine) Run(horizon int) *Result { return e.RunEnv(horizon, nil) }

// RunEnv is Run under an optional Environment: a pair only meets at
// slots where their common channel is available. A nil env means all
// channels are always available (identical to Run).
func (e *Engine) RunEnv(horizon int, env Environment) *Result {
	return e.runEnvInto(e.newResult(horizon), horizon, env, nil)
}

// runEnvInto is RunEnv writing into a caller-owned result (sessions
// pass their recycled one; the public entry points pass a fresh one).
// c, when non-nil, is the run's cooperative cancellation seam (see
// Canceler); every run path threads it down to the scan kernels.
func (e *Engine) runEnvInto(res *Result, horizon int, env Environment, c *Canceler) *Result {
	e.setRoute(RouteSerial)
	meetable := e.meetablePairs(horizon)
	if blockEval.Load() {
		e.runBlock(res, horizon, env, meetable, c)
	} else {
		e.runSlots(res, horizon, env, meetable, c)
	}
	return res
}

// occupancy is the per-slot channel→agents bookkeeping shared by the
// joint loops: stamped flat slices over dense channel ids, reused across
// slots with O(touched) reset instead of map churn.
type occupancy struct {
	stamp []int   // last slot key (t+1) the channel was touched
	occ   [][]int // agents on the channel at the stamped slot
}

func newOccupancy(channels int) *occupancy {
	return &occupancy{stamp: make([]int, channels), occ: make([][]int, channels)}
}

// reset clears the stamps so the index can be reused by a later run
// (whose slot keys would otherwise collide with stale entries).
func (o *occupancy) reset() {
	for i := range o.stamp {
		o.stamp[i] = 0
	}
}

// add registers agent i on dense channel d at slot key tk (t+1) and
// returns the agents already on d this slot (empty on first arrival).
func (o *occupancy) add(d, tk, i int) []int {
	if o.stamp[d] != tk {
		o.stamp[d] = tk
		o.occ[d] = o.occ[d][:0]
	}
	prev := o.occ[d]
	o.occ[d] = append(prev, i)
	return prev
}

// meet records agent i's meetings with every agent in prev on raw
// channel ch at slot t, honoring the environment.
func (e *Engine) meet(res *Result, env Environment, prev []int, i, ch, t int) {
	if env != nil && !env.Available(ch, t) {
		return
	}
	ai := &e.agents[i]
	for _, o := range prev {
		both := max(ai.Wake, e.agents[o].Wake)
		res.record(o, i, t, ch, both)
	}
}

// jointScratch is one joint-scan worker's private working state: the
// occupancy index, the per-agent dense-id block buffers (int32 — half
// the bytes of the former []int buffers), and the raw-channel scratch
// for schedules without a dense table. Recycled through jointPool.
type jointScratch struct {
	occ  *occupancy
	flat []int32   // backing store, n*blockLen
	bufs [][]int32 // per-agent views into flat
	raw  []int     // FillBlockDense fallback scratch, blockLen
}

func (e *Engine) getJointScratch() *jointScratch {
	sc, _ := e.jointPool.Get().(*jointScratch)
	if sc == nil {
		n := len(e.agents)
		sc = &jointScratch{
			occ:  newOccupancy(e.chIdx.count),
			flat: make([]int32, n*blockLen),
			bufs: make([][]int32, n),
			raw:  make([]int, blockLen),
		}
		for i := range sc.bufs {
			sc.bufs[i] = sc.flat[i*blockLen : (i+1)*blockLen]
		}
		return sc
	}
	sc.occ.reset()
	return sc
}

// fillBlockWindow materializes every active agent's dense-id channels
// for global slots [base, base+m) into sc.bufs, clamped to each agent's
// activity window exactly as the scan below will read them.
func (e *Engine) fillBlockWindow(p *runPlan, sc *jointScratch, base, m int) {
	for i, a := range e.agents {
		if a.Wake >= base+m || (a.Leave > 0 && a.Leave <= base) {
			continue // outside its activity window for the whole block
		}
		from := max(0, a.Wake-base)
		to := m
		if a.Leave > 0 && a.Leave < base+m {
			to = a.Leave - base
		}
		e.fillAgentBlock(p, sc, i, from, to, base)
	}
}

// fillAgentBlock fills agent i's dense ids for block offsets [from, to)
// at block base. Agents without any dense table consult the engine's
// rolling block cache first: a full block computed by an earlier run
// (or an earlier block sweep at the same local phase) is replayed with
// one copy instead of re-evaluating and re-remapping the schedule.
func (e *Engine) fillAgentBlock(p *runPlan, sc *jointScratch, i, from, to, base int) {
	dst := sc.bufs[i][from:to]
	start := base + from - e.agents[i].Wake
	if p.dense[i] == nil && p.ring != nil && from == 0 && to == blockLen {
		key := blockKey(i, start)
		if p.ring.Lookup(key, dst) {
			return
		}
		schedule.FillBlockDense(p.scheds[i], nil, dst, start, e.id32, sc.raw)
		p.ring.Insert(key, dst)
		return
	}
	schedule.FillBlockDense(p.scheds[i], p.dense[i], dst, start, e.id32, sc.raw)
}

// blockKey identifies a full cached block by (agent id, local start
// slot). Local starts stay far below 2⁴⁰ for any realistic horizon, so
// the two never collide within an engine's ring.
func blockKey(agent, start int) uint64 {
	return uint64(agent)<<40 | uint64(start)
}

// runBlock is the joint simulation consuming per-agent dense-id channel
// blocks: every agent's next blockLen slots are materialized in one
// FillBlockDense call, then the occupancy scan indexes flat slices by
// dense id directly — no per-slot value→id translation — and recovers
// the raw channel value from the id→value table only at candidate
// meetings. meetable is the caller's meetablePairs(horizon) count (the
// O(n²) scan is done once per run, whichever path consumes it).
func (e *Engine) runBlock(res *Result, horizon int, env Environment, meetable int, c *Canceler) {
	p := e.planFor(horizon)
	defer e.planPool.Put(p)
	sc := e.getJointScratch()
	defer e.jointPool.Put(sc)
	for base := 0; base < horizon; base += blockLen {
		if res.metCount == meetable || c.poll() {
			return // every meetable pair recorded (or the run was cancelled)
		}
		m := min(blockLen, horizon-base)
		e.fillBlockWindow(p, sc, base, m)
		for off := 0; off < m; off++ {
			t := base + off
			for i := range e.agents {
				if !e.agents[i].active(t) {
					continue
				}
				d := sc.bufs[i][off]
				if prev := sc.occ.add(int(d), t+1, i); len(prev) > 0 {
					e.meet(res, env, prev, i, e.union[d], t)
				}
			}
		}
	}
}

// runSlots is the original per-slot joint simulation, kept as the
// reference path (SetBlockEval(false)). It deliberately evaluates raw
// Sched.Channel instead of going through schedFor's compiled tables:
// the point of this path is to be the regression oracle for the block
// and compile layers, so it must exercise each schedule's own
// implementation, not the machinery under test.
func (e *Engine) runSlots(res *Result, horizon int, env Environment, meetable int, c *Canceler) {
	occ := newOccupancy(e.chIdx.count)
	for t := 0; t < horizon; t++ {
		if res.metCount == meetable {
			return // early exit mirrors runBlock: no later slot can matter
		}
		if t%blockLen == 0 && c.poll() {
			return // cancellation checked at the same block cadence as runBlock
		}
		for i := range e.agents {
			a := &e.agents[i]
			if !a.active(t) {
				continue
			}
			ch := a.Sched.Channel(t - a.Wake)
			if prev := occ.add(e.chIdx.id(ch), t+1, i); len(prev) > 0 {
				e.meet(res, env, prev, i, ch, t)
			}
		}
	}
}

// RunParallel computes the same Result as Run by decomposing the joint
// simulation into independent pairwise scans executed by a bounded
// worker pool (workers ≤ 0 means GOMAXPROCS). The decomposition is
// exact: every schedule is a pure function of its local slot and the
// Environment a pure function of (channel, slot), so the first meeting
// of a pair does not depend on any third agent, and the result is
// identical to Run at any worker count. Pairs whose complete hop sets
// (allChannels — sound for phase-varying schedules too) are disjoint, or
// whose activity windows never intersect, can never meet and are skipped
// outright — on large fleets that prunes the quadratic pair space before
// any slot is simulated.
func (e *Engine) RunParallel(horizon, workers int) *Result {
	return e.RunParallelEnv(horizon, workers, nil)
}

// pairScratch recycles the pairwise decomposition's working state
// (meetable-pair list and found array) across runs.
type pairScratch struct {
	pairs []pairRef
	found []pairHit
}

type pairRef struct{ i, j int }

// pairHit is pair p's first meeting: slot, channel, and whether one
// occurred.
type pairHit struct {
	slot, ch int
	ok       bool
}

// pairBufPool recycles the per-worker pairwise block-buffer pairs (also
// used by PairTTR's block scan, whose buffers would otherwise escape to
// the heap on every call).
var pairBufPool = sync.Pool{New: func() any { return new([2 * blockLen]int) }}

// RunParallelEnv is RunParallel under an optional Environment; see
// RunEnv for the availability semantics. Large fleets (more meetable
// pairs than the joint crossover — see SetJointCrossover) are routed
// through the time-sharded joint engine, which computes the identical
// Result.
func (e *Engine) RunParallelEnv(horizon, workers int, env Environment) *Result {
	return e.runParallelEnvInto(e.newResult(horizon), horizon, workers, env, nil)
}

// RunParallelEnvCancel is RunParallelEnv with a cooperative
// cancellation seam: when c fires, every worker stops at its next
// block-window boundary and the call returns a partial Result (see
// Canceler for the exact contract). A nil c is identical to
// RunParallelEnv.
func (e *Engine) RunParallelEnvCancel(horizon, workers int, env Environment, c *Canceler) *Result {
	return e.runParallelEnvInto(e.newResult(horizon), horizon, workers, env, c)
}

func (e *Engine) runParallelEnvInto(res *Result, horizon, workers int, env Environment, c *Canceler) *Result {
	useBlocks := blockEval.Load()
	if useBlocks {
		// Count before materializing the pair list: on the joint path the
		// quadratic list is never needed, and the count threads through so
		// the scan happens exactly once per run.
		meetable := e.meetablePairs(horizon)
		switch e.jointChoice(meetable) {
		case chooseJoint:
			return e.runJointParallelEnvInto(res, horizon, workers, env, meetable, c)
		case chooseJointProbe:
			start := time.Now()
			r := e.runJointParallelEnvInto(res, horizon, workers, env, meetable, c)
			if !c.Canceled() {
				// A truncated probe would settle the ski-rental bet with a
				// bogus (short) joint time; leave the bet open instead.
				e.cal.noteJoint(time.Since(start))
			}
			return r
		case choosePairwiseTimed:
			start := time.Now()
			r := e.runPairwiseEnvInto(res, horizon, workers, env, useBlocks, c)
			if !c.Canceled() {
				e.cal.notePairwise(time.Since(start))
			}
			return r
		}
	}
	return e.runPairwiseEnvInto(res, horizon, workers, env, useBlocks, c)
}

// runPairwiseEnvInto is the pairwise decomposition proper: one
// independent scan per meetable pair, executed by a bounded worker
// pool, folded into the caller-owned result.
func (e *Engine) runPairwiseEnvInto(res *Result, horizon, workers int, env Environment, useBlocks bool, c *Canceler) *Result {
	e.setRoute(RoutePairwise)
	sc, _ := e.pairPool.Get().(*pairScratch)
	if sc == nil {
		sc = &pairScratch{}
	}
	defer e.pairPool.Put(sc)
	sc.pairs = sc.pairs[:0]
	if t := e.topo; t != nil {
		// Only contact edges can meet; enumerating them keeps the list
		// build O(edges) where the pair loop below is O(agents²).
		for i := range e.agents {
			for ei := t.fwdBase[i]; ei < t.fwdBase[i+1]; ei++ {
				if j := int(t.fwdAdj[ei]); e.pairMeetable(i, j, horizon) {
					sc.pairs = append(sc.pairs, pairRef{i, j})
				}
			}
		}
	} else {
		for i := range e.agents {
			for j := i + 1; j < len(e.agents); j++ {
				if e.pairMeetable(i, j, horizon) {
					sc.pairs = append(sc.pairs, pairRef{i, j})
				}
			}
		}
	}
	pairs := sc.pairs
	var plan *runPlan
	if useBlocks {
		plan = e.planFor(horizon)
		defer e.planPool.Put(plan)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	// found[p] is pair p's first meeting. Workers write disjoint
	// elements, so no locking is needed; the serial fill below folds
	// them into the triangular Result.
	if cap(sc.found) < len(pairs) {
		sc.found = make([]pairHit, len(pairs))
	}
	found := sc.found[:len(pairs)]
	for p := range found {
		found[p] = pairHit{}
	}
	// scan locates pair p's first meeting; bufA/bufB are the worker's
	// reusable block buffers. Cancellation is polled once per block (the
	// per-slot reference path at the same cadence), so a cancelled pair
	// simply stays unmet — exactly the partial-Result contract.
	scan := func(p int, bufA, bufB []int) {
		a, b := e.agents[pairs[p].i], e.agents[pairs[p].j]
		start := max(a.Wake, b.Wake)
		end := min(a.end(horizon), b.end(horizon))
		if useBlocks {
			sa, sb := plan.scheds[pairs[p].i], plan.scheds[pairs[p].j]
			for base := start; base < end; base += blockLen {
				if c.poll() {
					return
				}
				m := min(blockLen, end-base)
				schedule.FillBlock(sa, bufA[:m], base-a.Wake)
				schedule.FillBlock(sb, bufB[:m], base-b.Wake)
				for x := 0; x < m; x++ {
					if bufA[x] == bufB[x] && (env == nil || env.Available(bufA[x], base+x)) {
						found[p] = pairHit{slot: base + x, ch: bufA[x], ok: true}
						return
					}
				}
			}
			return
		}
		for t := start; t < end; t++ {
			if (t-start)%blockLen == 0 && c.poll() {
				return
			}
			ca := a.Sched.Channel(t - a.Wake)
			if ca == b.Sched.Channel(t-b.Wake) && (env == nil || env.Available(ca, t)) {
				found[p] = pairHit{slot: t, ch: ca, ok: true}
				return
			}
		}
	}
	if workers <= 1 {
		buf := pairBufPool.Get().(*[2 * blockLen]int)
		for p := range pairs {
			if c.Canceled() {
				break
			}
			scan(p, buf[:blockLen], buf[blockLen:])
		}
		pairBufPool.Put(buf)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := pairBufPool.Get().(*[2 * blockLen]int)
				defer pairBufPool.Put(buf)
				for !c.Canceled() {
					p := int(next.Add(1)) - 1
					if p >= len(pairs) {
						return
					}
					scan(p, buf[:blockLen], buf[blockLen:])
				}
			}()
		}
		wg.Wait()
	}
	for p, h := range found {
		if h.ok {
			i, j := pairs[p].i, pairs[p].j
			res.record(i, j, h.slot, h.ch, max(e.agents[i].Wake, e.agents[j].Wake))
		}
	}
	return res
}

// PairTTR measures the time-to-rendezvous of two schedules directly:
// a wakes at wakeA, b at wakeB; the returned TTR counts slots after both
// are awake. ok is false if they do not meet within horizon slots
// (measured from the later wake).
func PairTTR(a, b schedule.Schedule, wakeA, wakeB, horizon int) (ttr int, ok bool) {
	if blockEval.Load() {
		return pairTTRBlock(a, b, wakeA, wakeB, horizon)
	}
	return pairTTRSlots(a, b, wakeA, wakeB, horizon)
}

// pairTTRBlock is the block-evaluated scan: both schedules emit
// blockLen-slot chunks into pooled buffers (passing them through the
// FillBlock interface forces them to the heap, so stack arrays here
// cost two allocations per call — measurable across offset sweeps) and
// the comparison loop runs over plain ints.
func pairTTRBlock(a, b schedule.Schedule, wakeA, wakeB, horizon int) (ttr int, ok bool) {
	start := wakeA
	if wakeB > start {
		start = wakeB
	}
	buf := pairBufPool.Get().(*[2 * blockLen]int)
	defer pairBufPool.Put(buf)
	bufA, bufB := buf[:blockLen], buf[blockLen:]
	for s := 0; s < horizon; s += blockLen {
		m := min(blockLen, horizon-s)
		schedule.FillBlock(a, bufA[:m], start+s-wakeA)
		schedule.FillBlock(b, bufB[:m], start+s-wakeB)
		for x := 0; x < m; x++ {
			if bufA[x] == bufB[x] {
				return s + x, true
			}
		}
	}
	return 0, false
}

// pairTTRSlots is the original per-slot scan, kept as the reference
// path (SetBlockEval(false)).
func pairTTRSlots(a, b schedule.Schedule, wakeA, wakeB, horizon int) (ttr int, ok bool) {
	start := wakeA
	if wakeB > start {
		start = wakeB
	}
	for s := 0; s < horizon; s++ {
		t := start + s
		if a.Channel(t-wakeA) == b.Channel(t-wakeB) {
			return s, true
		}
	}
	return 0, false
}
