// Package simulator provides the slot-synchronous discrete-event engine
// used to evaluate every rendezvous algorithm in this repository: agents
// with arbitrary wake offsets hop channels according to their schedules,
// and the engine records pairwise first-rendezvous times.
//
// Time is a global slot counter t = 0, 1, 2, …. An agent with wake time
// w executes slot s = t − w of its schedule at global slot t ≥ w (the
// paper's asynchronous model: a common slot clock but adversarial wake
// offsets). Two agents rendezvous at the first global slot at which both
// are awake and hop the same channel.
//
// All evaluators consume schedules in blocks (schedule.FillBlock /
// schedule.Compile) rather than one interface call per slot; the
// original per-slot paths are retained behind SetBlockEval as the
// regression oracle and produce identical results.
package simulator

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rendezvous/internal/schedule"
)

// blockLen is the slot-count granularity of the block evaluators: long
// enough to amortize epoch and permutation lookups, short enough that a
// pair of buffers stays in L1 and early rendezvous does not overshoot
// by much useless work.
const blockLen = 256

// blockEval selects the block-evaluation fast path (the default). The
// per-slot paths remain as the reference implementation.
var blockEval atomic.Bool

func init() { blockEval.Store(true) }

// SetBlockEval toggles between block evaluation and the per-slot
// reference paths, returning the previous setting. It exists for
// equivalence regression tests and debugging; production callers never
// need it.
func SetBlockEval(on bool) (previous bool) {
	return blockEval.Swap(on)
}

// Agent is a named participant: a schedule plus a wake slot.
type Agent struct {
	Name  string
	Sched schedule.Schedule
	Wake  int
}

// Meeting records the first rendezvous between two agents.
type Meeting struct {
	A, B    string
	Slot    int // global slot of first rendezvous
	Channel int // channel they met on
	TTR     int // slots after both were awake: Slot − max(wake)
}

// Result holds the outcome of a simulation run.
type Result struct {
	Horizon  int
	meetings map[[2]string]Meeting
}

// Meeting returns the first meeting between the two named agents.
func (r *Result) Meeting(a, b string) (Meeting, bool) {
	m, ok := r.meetings[pairKey(a, b)]
	return m, ok
}

// Meetings returns all recorded meetings sorted by slot.
func (r *Result) Meetings() []Meeting {
	out := make([]Meeting, 0, len(r.meetings))
	for _, m := range r.meetings {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slot != out[j].Slot {
			return out[i].Slot < out[j].Slot
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// AllMet reports whether every pair of agents whose channel sets overlap
// has met.
func (r *Result) AllMet(agents []Agent) bool {
	sets := make([][]int, len(agents))
	for i := range agents {
		sets[i] = allChannels(agents[i].Sched)
	}
	for i := range agents {
		for j := i + 1; j < len(agents); j++ {
			if !sortedIntersect(sets[i], sets[j]) {
				continue
			}
			if _, ok := r.Meeting(agents[i].Name, agents[j].Name); !ok {
				return false
			}
		}
	}
	return true
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// allChannels returns every channel s may ever hop, sorted ascending
// (schedule.AllChannels — sound for phase-varying schedules, and
// defensively re-sorted for contract-violating external schedules).
// Overlap-based pruning must use this, never Channels() directly.
func allChannels(s schedule.Schedule) []int {
	return schedule.AllChannels(s)
}

// sortedIntersect reports whether two ascending-sorted channel sets
// share an element (allChannels guarantees sortedness), so the O(N²)
// pair pruning needs no per-pair map building.
func sortedIntersect(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Engine runs multi-agent simulations. Run and RunParallel are safe to
// call concurrently from multiple goroutines.
type Engine struct {
	agents []Agent
	// compiled caches per-agent hop tables (schedule.Compile) built
	// lazily once a run's horizon justifies the one-time unroll cost;
	// mu guards it so concurrent runs stay safe.
	mu       sync.Mutex
	compiled []schedule.Schedule
}

// NewEngine validates the agents (unique non-empty names, non-negative
// wake slots) and returns an engine.
func NewEngine(agents []Agent) (*Engine, error) {
	if len(agents) < 2 {
		return nil, fmt.Errorf("simulator: need at least 2 agents, got %d", len(agents))
	}
	seen := make(map[string]bool, len(agents))
	for _, a := range agents {
		if a.Name == "" {
			return nil, fmt.Errorf("simulator: agent with empty name")
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("simulator: duplicate agent name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Wake < 0 {
			return nil, fmt.Errorf("simulator: agent %q has negative wake %d", a.Name, a.Wake)
		}
		if a.Sched == nil {
			return nil, fmt.Errorf("simulator: agent %q has nil schedule", a.Name)
		}
	}
	cp := make([]Agent, len(agents))
	copy(cp, agents)
	return &Engine{agents: cp, compiled: make([]schedule.Schedule, len(agents))}, nil
}

// schedFor returns the schedule evaluated for agent i over the given
// horizon: the cached compiled table when one exists, a freshly
// compiled one when the horizon spans at least two periods (so the
// unroll pays for itself), and the agent's own schedule otherwise.
// Compiled tables are verified equivalents, so results never depend on
// which representation a run used. Called once per agent per run (never
// in a hot loop), so the lock is uncontended noise.
func (e *Engine) schedFor(i, horizon int) schedule.Schedule {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c := e.compiled[i]; c != nil {
		return c
	}
	s := e.agents[i].Sched
	if p := s.Period(); horizon >= 2*p {
		e.compiled[i] = schedule.Compile(s)
		return e.compiled[i]
	}
	return s
}

// Run advances global slots 0 … horizon−1 and records the first meeting
// of every agent pair that hops a common channel while awake.
func (e *Engine) Run(horizon int) *Result {
	res := &Result{Horizon: horizon, meetings: make(map[[2]string]Meeting)}
	if blockEval.Load() {
		e.runBlock(res, horizon)
	} else {
		e.runSlots(res, horizon)
	}
	return res
}

// runBlock is the joint simulation consuming per-agent channel blocks:
// every agent's next blockLen slots are materialized in one FillBlock
// call, then the occupancy scan reads plain buffers.
func (e *Engine) runBlock(res *Result, horizon int) {
	n := len(e.agents)
	totalPairs := n * (n - 1) / 2
	scheds := make([]schedule.Schedule, n)
	for i := range e.agents {
		scheds[i] = e.schedFor(i, horizon)
	}
	flat := make([]int, n*blockLen)
	bufs := make([][]int, n)
	for i := range bufs {
		bufs[i] = flat[i*blockLen : (i+1)*blockLen]
	}
	occupants := make(map[int][]int) // channel -> agent indices, reused per slot
	for base := 0; base < horizon; base += blockLen {
		if len(res.meetings) == totalPairs {
			return // every pair recorded; no later slot can change the result
		}
		m := min(blockLen, horizon-base)
		for i, a := range e.agents {
			if a.Wake >= base+m {
				continue // asleep for the whole block
			}
			from := max(0, a.Wake-base)
			schedule.FillBlock(scheds[i], bufs[i][from:m], base+from-a.Wake)
		}
		for off := 0; off < m; off++ {
			t := base + off
			for ch := range occupants {
				delete(occupants, ch)
			}
			for i, a := range e.agents {
				if t < a.Wake {
					continue
				}
				ch := bufs[i][off]
				occupants[ch] = append(occupants[ch], i)
			}
			e.recordMeetings(res, occupants, t)
		}
	}
}

// runSlots is the original per-slot joint simulation, kept as the
// reference path (SetBlockEval(false)).
func (e *Engine) runSlots(res *Result, horizon int) {
	occupants := make(map[int][]int) // channel -> agent indices, reused per slot
	for t := 0; t < horizon; t++ {
		for ch := range occupants {
			delete(occupants, ch)
		}
		for i, a := range e.agents {
			if t < a.Wake {
				continue
			}
			ch := a.Sched.Channel(t - a.Wake)
			occupants[ch] = append(occupants[ch], i)
		}
		e.recordMeetings(res, occupants, t)
	}
}

// recordMeetings registers the first meeting of every not-yet-met pair
// sharing a channel at global slot t.
func (e *Engine) recordMeetings(res *Result, occupants map[int][]int, t int) {
	for ch, idxs := range occupants {
		if len(idxs) < 2 {
			continue
		}
		for x := 0; x < len(idxs); x++ {
			for y := x + 1; y < len(idxs); y++ {
				ai, bj := e.agents[idxs[x]], e.agents[idxs[y]]
				key := pairKey(ai.Name, bj.Name)
				if _, done := res.meetings[key]; done {
					continue
				}
				both := ai.Wake
				if bj.Wake > both {
					both = bj.Wake
				}
				res.meetings[key] = Meeting{
					A: key[0], B: key[1], Slot: t, Channel: ch, TTR: t - both,
				}
			}
		}
	}
}

// RunParallel computes the same Result as Run by decomposing the joint
// simulation into independent pairwise scans executed by a bounded
// worker pool (workers ≤ 0 means GOMAXPROCS). The decomposition is
// exact: every schedule is a pure function of its local slot, so the
// first meeting of a pair does not depend on any third agent, and the
// result is identical to Run at any worker count. Pairs whose complete
// hop sets (allChannels — sound for phase-varying schedules too) are
// disjoint can never meet and are skipped outright — on large fleets
// that prunes the quadratic pair space before any slot is simulated.
// Each agent's hop set is computed once, so pruning costs O(N²·k)
// comparisons rather than O(N²) map builds.
func (e *Engine) RunParallel(horizon, workers int) *Result {
	type pairIdx struct{ i, j int }
	sets := make([][]int, len(e.agents))
	for i := range e.agents {
		sets[i] = allChannels(e.agents[i].Sched)
	}
	var pairs []pairIdx
	for i := range e.agents {
		for j := i + 1; j < len(e.agents); j++ {
			if sortedIntersect(sets[i], sets[j]) {
				pairs = append(pairs, pairIdx{i, j})
			}
		}
	}
	useBlocks := blockEval.Load()
	scheds := make([]schedule.Schedule, len(e.agents))
	for i := range e.agents {
		if useBlocks {
			scheds[i] = e.schedFor(i, horizon)
		} else {
			scheds[i] = e.agents[i].Sched
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	found := make([]*Meeting, len(pairs))
	// scan locates pair p's first meeting; bufA/bufB are the worker's
	// reusable block buffers.
	scan := func(p int, bufA, bufB []int) {
		a, b := e.agents[pairs[p].i], e.agents[pairs[p].j]
		start := a.Wake
		if b.Wake > start {
			start = b.Wake
		}
		if useBlocks {
			sa, sb := scheds[pairs[p].i], scheds[pairs[p].j]
			for base := start; base < horizon; base += blockLen {
				m := min(blockLen, horizon-base)
				schedule.FillBlock(sa, bufA[:m], base-a.Wake)
				schedule.FillBlock(sb, bufB[:m], base-b.Wake)
				for x := 0; x < m; x++ {
					if bufA[x] == bufB[x] {
						key := pairKey(a.Name, b.Name)
						found[p] = &Meeting{A: key[0], B: key[1], Slot: base + x, Channel: bufA[x], TTR: base + x - start}
						return
					}
				}
			}
			return
		}
		for t := start; t < horizon; t++ {
			ca := a.Sched.Channel(t - a.Wake)
			if ca == b.Sched.Channel(t-b.Wake) {
				key := pairKey(a.Name, b.Name)
				found[p] = &Meeting{A: key[0], B: key[1], Slot: t, Channel: ca, TTR: t - start}
				return
			}
		}
	}
	if workers <= 1 {
		bufA, bufB := make([]int, blockLen), make([]int, blockLen)
		for p := range pairs {
			scan(p, bufA, bufB)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				bufA, bufB := make([]int, blockLen), make([]int, blockLen)
				for {
					p := int(next.Add(1)) - 1
					if p >= len(pairs) {
						return
					}
					scan(p, bufA, bufB)
				}
			}()
		}
		wg.Wait()
	}
	res := &Result{Horizon: horizon, meetings: make(map[[2]string]Meeting, len(pairs))}
	for _, m := range found {
		if m != nil {
			res.meetings[pairKey(m.A, m.B)] = *m
		}
	}
	return res
}

// PairTTR measures the time-to-rendezvous of two schedules directly:
// a wakes at wakeA, b at wakeB; the returned TTR counts slots after both
// are awake. ok is false if they do not meet within horizon slots
// (measured from the later wake).
func PairTTR(a, b schedule.Schedule, wakeA, wakeB, horizon int) (ttr int, ok bool) {
	if blockEval.Load() {
		return pairTTRBlock(a, b, wakeA, wakeB, horizon)
	}
	return pairTTRSlots(a, b, wakeA, wakeB, horizon)
}

// pairTTRBlock is the block-evaluated scan: both schedules emit
// blockLen-slot chunks into stack buffers and the comparison loop runs
// over plain ints.
func pairTTRBlock(a, b schedule.Schedule, wakeA, wakeB, horizon int) (ttr int, ok bool) {
	start := wakeA
	if wakeB > start {
		start = wakeB
	}
	var bufA, bufB [blockLen]int
	for s := 0; s < horizon; s += blockLen {
		m := min(blockLen, horizon-s)
		schedule.FillBlock(a, bufA[:m], start+s-wakeA)
		schedule.FillBlock(b, bufB[:m], start+s-wakeB)
		for x := 0; x < m; x++ {
			if bufA[x] == bufB[x] {
				return s + x, true
			}
		}
	}
	return 0, false
}

// pairTTRSlots is the original per-slot scan, kept as the reference
// path (SetBlockEval(false)).
func pairTTRSlots(a, b schedule.Schedule, wakeA, wakeB, horizon int) (ttr int, ok bool) {
	start := wakeA
	if wakeB > start {
		start = wakeB
	}
	for s := 0; s < horizon; s++ {
		t := start + s
		if a.Channel(t-wakeA) == b.Channel(t-wakeB) {
			return s, true
		}
	}
	return 0, false
}
