//go:build !race

package simulator

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
