package simulator

import (
	"math/rand"
	"testing"

	"rendezvous/internal/tablecache"
)

// cancelKernel describes one scan kernel's cancellation fixture: how to
// build an engine that routes to it and how to run a session on it.
type cancelKernel struct {
	name    string
	workers []int
	build   func(t *testing.T, rng *rand.Rand) (*Engine, func())
	run     func(s *Session, horizon, workers int) *Result
}

// cancelKernels covers all four scan kernels. Each build forces its
// kernel's routing (restored by the returned cleanup), so the tests pin
// the cancellation seam per kernel rather than whatever the crossover
// heuristics happen to pick for a small test fleet.
func cancelKernels() []cancelKernel {
	parallel := func(s *Session, horizon, workers int) *Result {
		return s.RunParallelEnv(horizon, workers, nil)
	}
	joint := func(s *Session, horizon, workers int) *Result {
		return s.RunJointParallelEnv(horizon, workers, nil)
	}
	return []cancelKernel{
		{
			name:    "pairwise",
			workers: []int{1, 3},
			build: func(t *testing.T, rng *rand.Rand) (*Engine, func()) {
				eng, err := NewEngine(jointTestFleet(t, rng, 10))
				if err != nil {
					t.Fatal(err)
				}
				prev := SetJointCrossover(1 << 30) // never joint: pin the pairwise kernel
				return eng, func() { SetJointCrossover(prev) }
			},
			run: parallel,
		},
		{
			name:    "sharded",
			workers: []int{2, 5},
			build: func(t *testing.T, rng *rand.Rand) (*Engine, func()) {
				eng, err := NewEngine(jointTestFleet(t, rng, 10))
				if err != nil {
					t.Fatal(err)
				}
				// 10 agents sit far below the inverted floor, so the joint
				// entry point routes to the occupancy scan (scanShard).
				return eng, func() {}
			},
			run: joint,
		},
		{
			name:    "inverted",
			workers: []int{2, 5},
			build: func(t *testing.T, rng *rand.Rand) (*Engine, func()) {
				eng, err := NewEngine(jointTestFleet(t, rng, 12))
				if err != nil {
					t.Fatal(err)
				}
				prev := SetInvertedFloor(0)
				return eng, func() { SetInvertedFloor(prev) }
			},
			run: joint,
		},
		{
			name:    "sparse",
			workers: []int{2, 5},
			build: func(t *testing.T, rng *rand.Rand) (*Engine, func()) {
				n := 24
				// The pair-state layout is fixed at construction, so the
				// floor drops first: CSR pair state routes to scanShardSparse.
				prev := SetSparseStateFloor(0)
				fleet := jointTestFleet(t, rng, n)
				eng, err := NewEngineContact(fleet, randomTopology(rng, n, 3, 3, 1.0))
				if err != nil {
					SetSparseStateFloor(prev)
					t.Fatal(err)
				}
				return eng, func() { SetSparseStateFloor(prev) }
			},
			run: joint,
		},
	}
}

// TestCancelMidRun pins the cancellation contract at window boundaries
// for every scan kernel: a cancel before the first window yields an
// empty result, a mid-scan cancel yields a subset of the uncancelled
// run's meetings (each recorded meeting byte-identical to the full
// run's for that pair), a budget past the last window is
// indistinguishable from no canceler at all — and after any of them, a
// Reset + re-run on the same session reproduces the fresh engine's
// result exactly.
func TestCancelMidRun(t *testing.T) {
	for _, k := range cancelKernels() {
		t.Run(k.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(97))
			eng, restore := k.build(t, rng)
			defer restore()
			const horizon = 4096
			fullRes := eng.RunEnv(horizon, nil)
			want := renderMeetings(fullRes)
			fullByPair := map[[2]string]Meeting{}
			for _, m := range fullRes.Meetings() {
				fullByPair[[2]string{m.A, m.B}] = m
			}
			for _, workers := range k.workers {
				sess := eng.Session()
				// Before the first window: the very first block check fires.
				canc := &Canceler{}
				canc.CancelAfterPolls(1)
				sess.SetCanceler(canc)
				if got := k.run(sess, horizon, workers); got.MetCount() != 0 {
					t.Fatalf("workers=%d: cancel before first window recorded %d meetings", workers, got.MetCount())
				}
				// Mid-scan, at several window boundaries.
				for _, polls := range []int64{2, 3, 5, 9} {
					canc = &Canceler{}
					canc.CancelAfterPolls(polls)
					sess.SetCanceler(canc)
					partial := k.run(sess, horizon, workers)
					if !canc.Canceled() {
						t.Fatalf("workers=%d polls=%d: canceler did not fire", workers, polls)
					}
					for _, m := range partial.Meetings() {
						if fullByPair[[2]string{m.A, m.B}] != m {
							t.Fatalf("workers=%d polls=%d: cancelled run recorded %+v, full run has %+v",
								workers, polls, m, fullByPair[[2]string{m.A, m.B}])
						}
					}
					// Reset + re-run must be byte-identical to a fresh engine.
					sess.SetCanceler(nil)
					sess.Reset()
					if got := renderMeetings(k.run(sess, horizon, workers)); got != want {
						t.Fatalf("workers=%d polls=%d: post-cancel re-run diverged:\n got %s\nwant %s",
							workers, polls, got, want)
					}
				}
				// Past the last window: never fires, result uncancelled.
				canc = &Canceler{}
				canc.CancelAfterPolls(1 << 40)
				sess.SetCanceler(canc)
				if got := renderMeetings(k.run(sess, horizon, workers)); got != want {
					t.Fatalf("workers=%d: unfired canceler changed the result:\n got %s\nwant %s", workers, got, want)
				}
				if canc.Canceled() {
					t.Fatalf("workers=%d: oversized poll budget fired", workers)
				}
			}
		})
	}
}

// TestCancelSerialRun covers the serial block and per-slot paths (RunEnv
// under a session), which share the same block-cadence poll discipline.
func TestCancelSerialRun(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	eng, err := NewEngine(jointTestFleet(t, rng, 8))
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 4096
	for _, blocks := range []bool{true, false} {
		prev := SetBlockEval(blocks)
		want := renderMeetings(eng.RunEnv(horizon, nil))
		sess := eng.Session()
		canc := &Canceler{}
		canc.CancelAfterPolls(3)
		sess.SetCanceler(canc)
		partial := sess.RunEnv(horizon, nil)
		// The serial scans advance strictly in time order, so a cancelled
		// run is an exact horizon prefix: every recorded meeting must
		// appear verbatim in the full run.
		full := map[[2]string]Meeting{}
		for _, m := range eng.RunEnv(horizon, nil).Meetings() {
			full[[2]string{m.A, m.B}] = m
		}
		for _, m := range partial.Meetings() {
			if full[[2]string{m.A, m.B}] != m {
				t.Fatalf("blocks=%v: cancelled serial run recorded %+v not in full run", blocks, m)
			}
		}
		sess.SetCanceler(nil)
		sess.Reset()
		if got := renderMeetings(sess.RunEnv(horizon, nil)); got != want {
			t.Fatalf("blocks=%v: post-cancel serial re-run diverged:\n got %s\nwant %s", blocks, got, want)
		}
		SetBlockEval(prev)
	}
}

// TestCancelLeavesNoPins pins the resource half of the contract: a
// cancelled run (any kernel) leaves the engine's cache pins exactly as
// trackable as an uncancelled one — Close releases every pin, and an
// isolated cache reports zero pinned entries afterwards.
func TestCancelLeavesNoPins(t *testing.T) {
	for _, k := range cancelKernels() {
		t.Run(k.name, func(t *testing.T) {
			cache := tablecache.New(32 << 20)
			prevCache := SetTableCache(cache)
			defer SetTableCache(prevCache)
			rng := rand.New(rand.NewSource(53))
			eng, restore := k.build(t, rng)
			defer restore()
			const horizon = 4096
			sess := eng.Session()
			for _, polls := range []int64{1, 4} {
				canc := &Canceler{}
				canc.CancelAfterPolls(polls)
				sess.SetCanceler(canc)
				k.run(sess, horizon, k.workers[len(k.workers)-1])
			}
			sess.Close()
			if st := cache.Stats(); st.Pinned != 0 || st.Refs != 0 {
				t.Fatalf("cancelled runs leaked pins: %+v", st)
			}
		})
	}
}
