package simulator

import (
	"math/rand"
	"testing"

	"rendezvous/internal/schedule"
)

// jointTestFleet draws a randomized fleet over the repository's
// schedule families with staggered wakes and churn, sized so runs stay
// cheap while still producing multi-window scans.
func jointTestFleet(t *testing.T, rng *rand.Rand, agents int) []Agent {
	t.Helper()
	const n = 12
	fleet := make([]Agent, agents)
	for i := range fleet {
		w := RandomOverlappingPair(rng, n, 1+rng.Intn(3), 1+rng.Intn(3))
		a := Agent{
			Name:  "a" + string(rune('0'+i/10)) + string(rune('0'+i%10)),
			Sched: mixedSchedule(t, rng, n, w.A),
			Wake:  rng.Intn(600),
		}
		if rng.Intn(3) == 0 {
			a.Leave = a.Wake + 1 + rng.Intn(1500)
		}
		fleet[i] = a
	}
	return fleet
}

// TestJointShardedPartitionInvariance pins the sharded scan's defining
// property directly: for any window width (any partition of the time
// axis into contiguous shards) and any worker count, runJointSharded
// reproduces the serial joint engine meeting for meeting.
func TestJointShardedPartitionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		fleet := jointTestFleet(t, rng, 5+rng.Intn(5))
		eng, err := NewEngine(fleet)
		if err != nil {
			t.Fatal(err)
		}
		horizon := 700 + rng.Intn(2400)
		var env Environment
		if trial%2 == 1 {
			env = evenSlotsBlocked{}
		}
		want := renderMeetings(eng.RunEnv(horizon, env))
		for _, workers := range []int{2, 3, 8} {
			for _, window := range []int{blockLen, 3 * blockLen, 16 * blockLen} {
				for _, kind := range []scanKind{scanOccupancy, scanInverted, scanInvertedWide} {
					res := eng.newResult(horizon)
					eng.runJointSharded(res, horizon, workers, window, env, eng.meetablePairs(horizon), kind, nil)
					if got := renderMeetings(res); got != want {
						t.Fatalf("trial %d workers=%d window=%d kind=%v diverged:\n got %s\nwant %s",
							trial, workers, window, kind, got, want)
					}
				}
			}
		}
	}
}

// TestRunJointParallelMatchesRun drives the public entry points across
// worker counts, environments, and both evaluation modes.
func TestRunJointParallelMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	fleet := jointTestFleet(t, rng, 9)
	eng, err := NewEngine(fleet)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 3000
	for _, env := range []Environment{nil, evenSlotsBlocked{}, channelBlocked(3)} {
		want := renderMeetings(eng.RunEnv(horizon, env))
		for _, workers := range []int{0, 1, 2, 5, 16} {
			if got := renderMeetings(eng.RunJointParallelEnv(horizon, workers, env)); got != want {
				t.Fatalf("env=%v workers=%d: got %s want %s", env, workers, got, want)
			}
		}
		prev := SetBlockEval(false)
		got := renderMeetings(eng.RunJointParallelEnv(horizon, 4, env))
		SetBlockEval(prev)
		if got != want {
			t.Fatalf("env=%v slots-mode fallback diverged: got %s want %s", env, got, want)
		}
	}
	if got := renderMeetings(eng.RunJointParallel(horizon, 3)); got != renderMeetings(eng.Run(horizon)) {
		t.Fatalf("RunJointParallel diverged from Run: %s", got)
	}
}

// TestRunJointParallelDegenerate covers the edges: zero/short horizons,
// fleets with nothing meetable, and repeated runs on one engine (the
// scratch pools must not leak state between runs).
func TestRunJointParallelDegenerate(t *testing.T) {
	a := mustCyclic(t, []int{1, 2})
	b := mustCyclic(t, []int{2, 1})
	c := mustCyclic(t, []int{5})
	eng, err := NewEngine([]Agent{
		{Name: "a", Sched: a}, {Name: "b", Sched: b}, {Name: "c", Sched: c, Wake: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.RunJointParallel(0, 4); got.MetCount() != 0 {
		t.Fatalf("zero horizon recorded meetings: %d", got.MetCount())
	}
	for run := 0; run < 4; run++ {
		for _, h := range []int{1, blockLen - 1, blockLen + 1, 2000} {
			want := renderMeetings(eng.Run(h))
			if got := renderMeetings(eng.RunJointParallel(h, 4)); got != want {
				t.Fatalf("run %d horizon %d: got %s want %s", run, h, got, want)
			}
		}
	}
	// A fleet whose only pairs are disjoint: nothing meetable at all.
	lone, err := NewEngine([]Agent{
		{Name: "x", Sched: mustCyclic(t, []int{1})},
		{Name: "y", Sched: mustCyclic(t, []int{2})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := lone.RunJointParallel(500, 4); got.MetCount() != 0 {
		t.Fatalf("disjoint fleet met: %d", got.MetCount())
	}
}

// TestRunParallelJointCrossover exercises RunParallelEnv's routing to
// the sharded joint engine: a fleet large enough to exceed the
// crossover band must still reproduce the serial joint result exactly
// (the crossover is a performance choice, never a semantic one).
func TestRunParallelJointCrossover(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const agents = 240 // ~28k pairs, well past autoCrossHi even after disjoint-set pruning
	fleet := make([]Agent, agents)
	for i := range fleet {
		seq := []int{1 + rng.Intn(6), 1 + rng.Intn(6), 1 + rng.Intn(6)}
		fleet[i] = Agent{
			Name:  "n" + string(rune('0'+i/100)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10)),
			Sched: mustCyclic(t, seq),
			Wake:  rng.Intn(64),
		}
	}
	eng, err := NewEngine(fleet)
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.meetablePairs(256); n <= autoCrossHi {
		t.Fatalf("fleet too small to cross over: %d pairs", n)
	}
	want := renderMeetings(eng.RunEnv(256, evenSlotsBlocked{}))
	for _, workers := range []int{1, 4} {
		if got := renderMeetings(eng.RunParallelEnv(256, workers, evenSlotsBlocked{})); got != want {
			t.Fatalf("workers=%d: crossover path diverged from serial joint run", workers)
		}
	}
}

// TestCompileDense pins the dense remap layer: a compiled schedule's
// dense table must reproduce id(Channel(t)) for every slot, including
// wrapped reads across the period boundary, and FillBlockDense must
// fall back to remap-per-block for schedules without a table.
func TestCompileDense(t *testing.T) {
	s := mustCyclic(t, []int{4, 9, 4, 2, 7})
	id := func(ch int) int32 { return int32(ch * 3) }
	c := schedule.Compile(s)
	d, ok := schedule.CompileDense(c, id)
	if !ok {
		t.Fatal("compiled schedule has no dense table")
	}
	if d.Len() != s.Period() {
		t.Fatalf("dense table length %d, want period %d", d.Len(), s.Period())
	}
	scratch := make([]int, 64)
	for _, start := range []int{0, 3, 4, 5, 13, 257} {
		var fromTable, fromFallback [64]int32
		schedule.FillBlockDense(c, d, fromTable[:], start, id, scratch)
		schedule.FillBlockDense(s, nil, fromFallback[:], start, id, scratch)
		for x := range fromTable {
			want := id(s.Channel(start + x))
			if fromTable[x] != want || fromFallback[x] != want {
				t.Fatalf("start %d slot %d: table %d fallback %d want %d",
					start, x, fromTable[x], fromFallback[x], want)
			}
		}
	}
	if _, ok := schedule.CompileDense(s, id); ok {
		t.Fatal("CompileDense accepted an uncompiled schedule")
	}
}
