package simulator

// Session re-runs one engine's fleet shape with a recycled Result, so a
// steady-state re-run (same fleet, any horizon/environment) performs
// ~zero allocations: the engine's pooled scratch — occupancy index,
// block buffers, hit arrays, posting index, seen bitsets, pair state —
// already survives across runs, and the session closes the last gap by
// reusing the O(pairs) result arrays too. This is the reuse layer sweep
// drivers and a long-running rvserve sit on: build the engine once,
// then run many.
//
// A session is NOT safe for concurrent use — each run rewrites the one
// held Result (individual runs still fan out over their own workers).
// Callers needing concurrent runs on one engine open one session per
// goroutine, or use the Engine methods directly (which allocate a fresh
// Result per run and stay fully concurrent).
//
// The Result returned by a session run is owned by the session: it is
// valid until the next run on the same session. Callers that need to
// keep results across runs copy what they need (Meetings materializes).
type Session struct {
	e    *Engine
	res  *Result
	canc *Canceler
}

// Session opens a reusable run context on the engine. Sessions are
// independent: an engine can serve many, and the engine's own Run
// methods remain usable alongside.
func (e *Engine) Session() *Session { return &Session{e: e} }

// Engine returns the session's engine.
func (s *Session) Engine() *Engine { return s.e }

// Reset clears the held result so the next run starts fresh. Runs reset
// implicitly; Reset exists so callers can drop meeting state eagerly
// (and as the explicit seam the session-reuse proptest oracle
// exercises).
func (s *Session) Reset() {
	if s.res != nil {
		s.res.reset(s.res.Horizon)
	}
}

// Close releases the engine's pins on shared cache tables (see
// Engine.Close). The session and engine remain usable; Close signals
// that the fleet's tables may be evicted when cold.
func (s *Session) Close() { s.e.Close() }

// SetCanceler installs the cooperative stop seam the session's next
// runs honor (see Canceler). A fired canceler stays fired, so callers
// reusing a session across jobs install a fresh one per job (or nil to
// make runs uncancellable again). Cancellation never compromises reuse:
// after a cancelled run, Reset (or simply the next run's implicit
// reset) restores the session to a state whose runs are byte-identical
// to a fresh engine's — the invariant the cancellation proptest clause
// enforces.
func (s *Session) SetCanceler(c *Canceler) { s.canc = c }

// result returns the held result, reset and sized for horizon,
// allocating it on first use.
func (s *Session) result(horizon int) *Result {
	if s.res == nil {
		s.res = s.e.newResult(horizon)
		return s.res
	}
	s.res.reset(horizon)
	return s.res
}

// reset rewinds a result for reuse: the met bitset and count are
// cleared; slot/channel/ttr stay dirty, which is sound because every
// reader guards on the met bit.
func (r *Result) reset(horizon int) {
	r.Horizon = horizon
	clear(r.met)
	r.metCount = 0
}

// Run is Engine.Run into the session's recycled result.
func (s *Session) Run(horizon int) *Result { return s.RunEnv(horizon, nil) }

// RunEnv is Engine.RunEnv into the session's recycled result.
func (s *Session) RunEnv(horizon int, env Environment) *Result {
	return s.e.runEnvInto(s.result(horizon), horizon, env, s.canc)
}

// RunParallel is Engine.RunParallel into the session's recycled result.
func (s *Session) RunParallel(horizon, workers int) *Result {
	return s.RunParallelEnv(horizon, workers, nil)
}

// RunParallelEnv is Engine.RunParallelEnv into the session's recycled
// result.
func (s *Session) RunParallelEnv(horizon, workers int, env Environment) *Result {
	return s.e.runParallelEnvInto(s.result(horizon), horizon, workers, env, s.canc)
}

// RunJointParallelEnv is Engine.RunJointParallelEnv into the session's
// recycled result.
func (s *Session) RunJointParallelEnv(horizon, workers int, env Environment) *Result {
	return s.e.runJointParallelEnvInto(s.result(horizon), horizon, workers, env, s.e.meetablePairs(horizon), s.canc)
}
