package simulator

import (
	"math/rand"

	"rendezvous/internal/schedule"
)

// TTRStats aggregates time-to-rendezvous measurements across a sweep of
// wake offsets.
type TTRStats struct {
	Samples  int
	Failures int // offsets with no rendezvous within the horizon
	Max      int
	Sum      int64
	WorstOff int // offset achieving Max
}

// Mean returns the average TTR over successful samples (0 when empty).
func (s TTRStats) Mean() float64 {
	n := s.Samples - s.Failures
	if n <= 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}

// SweepOffsets measures TTR for every offset in offsets: agent a wakes at
// slot 0 and agent b at slot delta. horizon bounds each search.
//
// The sweep compiles the pair's hop tables (schedule.Compile) adaptively
// rather than up front — a ski-rental: once the cumulative number of
// scanned slots exceeds the one-time cost of unrolling both schedules,
// the remaining offsets replay flat tables. Fast sweeps, where every
// offset rendezvouses almost immediately, never pay for tables they
// could not amortize; adversarial sweeps, where offsets scan deep into
// (or fully exhaust) the horizon, compile within the first few offsets
// and total at most twice the cost of the optimal choice. Compilation
// goes through the shared table cache, so repeated sweeps over the same
// pair pay the unroll once, ever. It never changes results (tables are
// verified equivalents), and the per-slot reference mode
// (SetBlockEval(false)) skips it entirely.
func SweepOffsets(a, b schedule.Schedule, offsets []int, horizon int) TTRStats {
	var st TTRStats
	compileAt := 2 * (a.Period() + b.Period()) // ≈ build + verify cost, in slot evaluations
	scanned := 0
	compiled := false
	for _, delta := range offsets {
		if !compiled && scanned >= compileAt && blockEval.Load() {
			// Through the shared table cache: repeated sweeps over the same
			// pair (chunked drivers, bench iterations) unroll once, ever.
			cache := currentTableCache()
			ca, ha := cache.Compile(a)
			cb, hb := cache.Compile(b)
			a, b = ca, cb
			defer ha.Release()
			defer hb.Release()
			compiled = true
		}
		st.Samples++
		ttr, ok := PairTTR(a, b, 0, delta, horizon)
		if !ok {
			st.Failures++
			scanned += horizon
			continue
		}
		scanned += ttr + 1
		st.Sum += int64(ttr)
		if ttr >= st.Max {
			st.Max = ttr
			st.WorstOff = delta
		}
	}
	return st
}

// ExhaustiveOffsets returns every offset in [0, period): for cyclic
// schedules the TTR at offset δ depends only on δ mod the earlier
// agent's period, so this sweep is a complete worst-case search.
func ExhaustiveOffsets(period int) []int {
	out := make([]int, period)
	for i := range out {
		out[i] = i
	}
	return out
}

// SampledOffsets returns count offsets: a dense prefix (small offsets
// stress epoch boundaries) plus uniformly random draws from [0, period).
func SampledOffsets(rng *rand.Rand, period, count int) []int {
	if count >= period {
		return ExhaustiveOffsets(period)
	}
	dense := count / 4
	out := make([]int, 0, count)
	for i := 0; i < dense; i++ {
		out = append(out, i%period)
	}
	for len(out) < count {
		out = append(out, rng.Intn(period))
	}
	return out
}

// MaxTTR runs an exhaustive sweep when the offset space is at most
// exhaustiveLimit and a sampled sweep otherwise, returning the worst
// observed TTR statistics. The relevant offset space is schedule a's
// period (a wakes first).
func MaxTTR(rng *rand.Rand, a, b schedule.Schedule, horizon, exhaustiveLimit, samples int) TTRStats {
	period := a.Period()
	if period <= exhaustiveLimit {
		return SweepOffsets(a, b, ExhaustiveOffsets(period), horizon)
	}
	return SweepOffsets(a, b, SampledOffsets(rng, period, samples), horizon)
}
