package simulator

import (
	"math"
	"math/bits"
	"sync/atomic"

	"rendezvous/internal/schedule"
)

// Inverted-index meeting engine.
//
// Every earlier engine walks the pair axis: the pairwise decomposition
// scans each pair over the horizon, and the joint occupancy scans walk
// a per-channel agent list for every arrival, checking a per-pair hit
// entry for each listed agent — O(candidate pairs) of random access
// into arrays that grow quadratically with the fleet. This engine is
// the transpose. For each slot inside a block-aligned window, agents
// are bucketed into per-dense-channel-id posting lists
// (schedule.PostingIndex, a two-pass counting gather). Each agent sits
// on exactly one channel per slot, so the groups partition the slot's
// arrivals and can be processed independently: walking a group in
// ascending id order, its members' 64-agent bitset words build up in
// registers, and each member detects its new meetings word-parallel:
//
//	cand = posting[w] &^ met[i][w]
//
// — the channel's earlier co-listeners AND-NOT the agents i has
// already met in this scan. Already-met pairs vanish from cand before
// any per-pair work happens, and whole 64-agent words vanish from the
// iteration once saturated: met rows are seeded with every unmeetable
// pair plus the diagonal and above (a triangular row never sees a
// later id), so a word goes all-ones exactly when everyone in it has
// been dealt with, and a per-agent full-word mask prunes it from every
// later arrival. The steady-state cost per slot is O(active agents)
// with a small constant: per-pair work is paid exactly once per
// meeting, and a slot's posting state lives entirely in registers and
// the L1-resident gather arrays — no per-arrival stamp checks or
// shared-words read-modify-writes survive from the pair-axis designs.
//
// The scan records into the same per-pair hit arrays the time-sharded
// merge consumes, and feeds the same shared seen-bitset, so it slots
// into runJointSharded as a drop-in alternative to scanShard — the
// window-partition argument for byte-identical Results at any worker
// count carries over unchanged. Environments apply as channel masks
// before intersection: at most one Available call per (channel, slot),
// made lazily when the channel's group first exposes a live candidate
// pair, after which a blocked channel's whole group is skipped.

// invertedFloor is the fleet size at which the joint scans switch to
// the inverted-index path. Below it the occupancy lists are so short
// that word bookkeeping costs more than it saves; above it the
// per-pair random access the posting intersection eliminates dominates
// the scan. It is atomic only so tests and calibration can repoint it;
// both paths compute byte-identical Results.
var invertedFloor atomic.Int64

// Calibrated on the K=4, 128-channel "ours" scenario family (horizon
// 8192, single worker): sharded wins at 128 agents (14.4ms vs 15.8ms),
// the two tie at 192 (23.2ms vs 22.9ms), and inverted pulls ahead from
// 224 up (29.0ms vs 25.4ms at 224, 1.4× at 256, 1.75× at 512). The
// crossover moves with channel count and occupancy, but the penalty
// for guessing one bucket wrong is a few percent either way, so a
// single measured constant beats a per-run model.
const defaultInvertedFloor = 192

func init() { invertedFloor.Store(defaultInvertedFloor) }

// SetInvertedFloor repoints the agent-count crossover above which the
// joint scans use the inverted-index engine, returning the previous
// floor. Like SetBlockEval it exists for equivalence tests and
// calibration; the crossover is purely a performance choice.
func SetInvertedFloor(agents int) (previous int) {
	return int(invertedFloor.Swap(int64(agents)))
}

// invertedWideBudget caps the per-worker met-template memory the wide
// posting scan may spend: the triangular template is O(agents²/128)
// words, which passes ~256 MB near 65k agents — past that the dense
// pair state is the real wall (that is what contact topologies are
// for) and the sharded occupancy scan is no worse.
const invertedWideBudget = 1 << 28

// wideMemberLimit caps the member universe the wide posting scan
// accepts: past it each member's summary walk (one segNZ word per 4,096
// members) stops being noise against the candidate work it prunes, and
// the met template blows the memory budget long before that anyway.
const wideMemberLimit = 64 * 64 * 64

// metTemplateBytes sizes the triangular met template at fleet size n
// without building it: rows total Σ(i>>6 + 1) words.
func metTemplateBytes(n int) int64 {
	q := int64(n) >> 6
	words := 64*q*(q-1)/2 + (int64(n)-q<<6)*q + int64(n)
	return words * 8
}

// scanKindFor picks the sharded scan for a run: the cell-filtered
// sparse scan whenever the pair state is contact-edge CSR, a posting
// scan for dense fleets at or above the inverted floor (the wide
// variant past the register-resident member cap, while the met
// template fits invertedWideBudget), and the occupancy scan otherwise.
// Per-slot reference mode and horizons whose slot keys overflow the
// int32 stamps force the occupancy path, whose serial fallbacks handle
// them.
func (e *Engine) scanKindFor(horizon int) scanKind {
	if !blockEval.Load() || horizon >= math.MaxInt32 {
		return scanOccupancy
	}
	if e.ps.rowBase == nil {
		return scanSparse
	}
	n := len(e.agents)
	if int64(n) < invertedFloor.Load() {
		return scanOccupancy
	}
	if n <= schedule.MaxPostingMembers {
		return scanInverted
	}
	if n <= wideMemberLimit && metTemplateBytes(n) <= invertedWideBudget {
		return scanInvertedWide
	}
	return scanOccupancy
}

// metBase returns the triangular met-row offsets: row i occupies
// met[metBase[i] : metBase[i+1]], covering posting words 0 … i>>6.
// Rows are triangular because a posting list at any instant holds only
// earlier-id arrivals, so row i never needs a word past its own.
// Cached on the engine (it depends only on the fleet size).
func (e *Engine) metBase() []int32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.metRowBase != nil {
		return e.metRowBase
	}
	n := len(e.agents)
	base := make([]int32, n+1)
	off := int32(0)
	for i := 0; i < n; i++ {
		base[i] = off
		off += int32(i>>6) + 1
	}
	base[n] = off
	e.metRowBase = base
	return base
}

// metSeed returns the met-row template the inverted scan starts from,
// and its full-word summary (rowFull), cached per horizon on the
// engine. Row i pre-marks the diagonal, the bits of its last word
// above i (ids that can never appear in a posting list i detects
// against), and every earlier agent j with which i can never meet
// within the horizon (disjoint hop sets, non-overlapping activity
// windows, or out of contact range). Seeding unmeetable pairs is what
// lets saturation pruning converge: a row word goes all-ones exactly
// when every agent in it has either met i or never can, at which point
// no arrival ever looks at it again. Fleets past the posting member
// cap get no full-word summary — rowFull packs one bit per row word,
// which only addresses rows up to 64 words — so the wide scan runs
// without saturation pruning.
func (e *Engine) metSeed(horizon int) (tmpl, full []uint64) {
	base := e.metBase()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.metSeedTmpl != nil && e.metSeedHorizon == horizon {
		return e.metSeedTmpl, e.metSeedFull
	}
	n := len(e.agents)
	wide := n > schedule.MaxPostingMembers
	tmpl = make([]uint64, base[n])
	full = make([]uint64, n)
	for i := 0; i < n; i++ {
		row := tmpl[base[i]:base[i+1]]
		iw := i >> 6
		row[iw] |= ^uint64(0) << (i & 63) // diagonal and above: never posted before i arrives
		for j := 0; j < i; j++ {
			if !e.pairMeetable(j, i, horizon) {
				row[j>>6] |= 1 << (j & 63)
			}
		}
		if wide {
			continue
		}
		for w := 0; w <= iw; w++ {
			if row[w] == ^uint64(0) {
				full[i] |= 1 << (w & 63)
			}
		}
	}
	e.metSeedHorizon, e.metSeedTmpl, e.metSeedFull = horizon, tmpl, full
	return tmpl, full
}

// invertedScratch is one worker's private inverted-index state: the
// posting gather, the per-agent met-rows mirroring its hit array with
// their full-word masks, and the per-agent activity clamps for the
// current block. Recycled through Engine.invPool.
type invertedScratch struct {
	post *schedule.PostingIndex
	// met holds triangular met-rows (see Engine.metBase): row i is the
	// bitset of earlier agents i has already met within this worker's
	// windows (or never can meet — see metSeed), the word-parallel
	// mirror of hits[p].s != 0. rowFull[i] marks i's saturated words.
	met     []uint64
	rowFull []uint64
	// from/to clamp each agent's activity to the current block:
	// active at offset x iff from[i] ≤ x < to[i].
	from, to []int32
	// ids is the slot-major transpose of the block buffers:
	// ids[off*n+i] is agent i's dense channel id at block offset off.
	ids []int32
	// pwWide/segWide replace scanGroup's register-resident posting
	// bitset for fleets past the member cap: ceil(n/64) posting words
	// with a 64-words-per-bit nonzero summary (see scanGroupWide). Nil
	// for fleets within the cap.
	pwWide, segWide []uint64
}

// getInvertedScratch returns a scratch seeded for a fresh scan: met
// rows copied from tmpl, full-word masks from full. The posting gather
// is self-cleaning (every slot ends in ResetSlot), so pooled reuse
// needs no posting reset; scanGroupWide likewise clears its posting
// words before returning.
func (e *Engine) getInvertedScratch(tmpl, full []uint64, wide bool) *invertedScratch {
	sc, _ := e.invPool.Get().(*invertedScratch)
	n := len(e.agents)
	if sc == nil {
		sc = &invertedScratch{
			post:    schedule.NewPostingIndexWide(e.chIdx.count, n),
			met:     make([]uint64, len(tmpl)),
			rowFull: make([]uint64, n),
			from:    make([]int32, n),
			to:      make([]int32, n),
			ids:     make([]int32, n*blockLen),
		}
	}
	if wide && sc.pwWide == nil {
		wpm := (n + 63) / 64
		sc.pwWide = make([]uint64, wpm)
		sc.segWide = make([]uint64, (wpm+63)/64)
	}
	copy(sc.met, tmpl)
	copy(sc.rowFull, full)
	return sc
}

// fillBlockWindowClamped is fillBlockWindow plus materialized activity
// clamps: from/to receive each agent's active offset range within
// [base, base+m) (empty range for agents inactive across the whole
// block), so the scan tests activity with two dense int32 compares
// instead of loading Agent structs per slot.
func (e *Engine) fillBlockWindowClamped(p *runPlan, sc *jointScratch, from, to []int32, base, m int) {
	for i := range e.agents {
		a := &e.agents[i]
		if a.Wake >= base+m || (a.Leave > 0 && a.Leave <= base) {
			from[i], to[i] = 0, 0
			continue
		}
		lo := max(0, a.Wake-base)
		hi := m
		if a.Leave > 0 && a.Leave < base+m {
			hi = a.Leave - base
		}
		from[i], to[i] = int32(lo), int32(hi)
		e.fillAgentBlock(p, sc, i, lo, hi, base)
	}
}

// transposeIDs rewrites the agent-major block buffers into the
// slot-major layout the scan consumes: dst[off*n+i] = bufs[i][off] for
// off in [0, m). The scan's inner loop walks agents within one slot,
// so slot-major turns its id loads into a sequential stream; done
// agent-major, those same loads touch one cache line per agent and
// evict each other long before their next offset is needed. 64×64
// tiling keeps the transpose's own working set L1-resident, paying the
// strided access pattern once per line instead of once per element.
// Buffer contents outside an agent's from/to clamp transpose as
// garbage and must stay guarded by the clamp on the read side.
func transposeIDs(dst []int32, bufs [][]int32, n, m int) {
	const tile = 64
	for ob := 0; ob < m; ob += tile {
		oe := min(ob+tile, m)
		for ib := 0; ib < n; ib += tile {
			ie := min(ib+tile, n)
			for off := ob; off < oe; off++ {
				row := dst[off*n : off*n+n]
				for i := ib; i < ie; i++ {
					row[i] = bufs[i][off]
				}
			}
		}
	}
}

// shardState is one worker's view of a sharded scan: its private hit
// array plus the run-wide environment and cancellation state. Bundling
// them keeps the scan entry points small enough that every argument
// travels in a register.
type shardState struct {
	hits      []hit32
	env       Environment
	seen      []uint64
	seenCount *atomic.Int64
	done      *atomic.Bool
	meetable  int64
	// solo marks a single-worker run: the seen bitset has no other
	// writers, so the scan may update it without atomics.
	solo bool
	// cancel is the run's cooperative stop seam, polled once per
	// 256-slot block at the top of each kernel's block loop (never
	// inside the //go:noinline group kernels — see the miscompilation
	// guards there). Nil on uncancellable runs.
	cancel *Canceler
}

// scanShardInverted is scanShard's inverted-index counterpart: it runs
// the posting-list scan over global slots [lo, hi), recording each
// pair's first hit within this worker's windows into st.hits and
// feeding the shared cancellation state. The hit array, seen-bitset,
// and ordering contract are identical to scanShard's, so the sharded
// merge consumes either scan's output interchangeably; the returned
// bool reports whether [lo, hi) was scanned to completion (false when
// st.cancel fired mid-window). wide selects scanGroupWide's heap
// bitsets over scanGroup's register array — a routing input (not
// derived from the fleet here) so tests can force the wide kernel on
// small fleets.
func (e *Engine) scanShardInverted(plan *runPlan, sc *jointScratch, isc *invertedScratch, st *shardState, lo, hi int, wide bool) bool {
	n := len(e.agents)
	rowBase := e.rowBase
	mbase := e.metRowBase[:n] // built by metSeed before workers spawn
	union := e.union
	ids := isc.ids
	// Reslicing to exactly n lets the compiler drop the bounds checks on
	// the per-agent loads in the inner loops.
	from, to := isc.from[:n], isc.to[:n]
	met, rowFull := isc.met, isc.rowFull[:n]
	post := isc.post
	hits := st.hits
	env := st.env
	seen := st.seen
	meetable := st.meetable
	solo := st.solo
	// pw is the current group's posting bitset: it never leaves the
	// stack because groups are processed to completion one at a time,
	// and scanGroup clears its own nonzero words before returning.
	// Fleets past the member cap use the heap-resident pwWide instead.
	var pw [schedule.MaxPostingMembers / 64]uint64
	gcx := groupScanCtx{
		rowBase: rowBase, mbase: mbase, union: union,
		met: met, rowFull: rowFull,
		hits: hits, env: env, seen: seen,
		st: st, meetable: meetable, solo: solo,
	}
	for base := lo; base < hi; base += blockLen {
		if st.cancel.poll() {
			return false
		}
		m := min(blockLen, hi-base)
		e.fillBlockWindowClamped(plan, sc, isc.from, isc.to, base, m)
		transposeIDs(ids, sc.bufs, n, m)
		for off := 0; off < m; off++ {
			t := base + off
			tk := int32(t) + 1
			off32 := int32(off)
			slotIDs := ids[off*n : off*n+n]
			// Counting gather: group this slot's arrivals by channel.
			// Visiting agents in ascending id twice keeps each group in
			// ascending id order, which the detection below relies on.
			for i := 0; i < n; i++ {
				if off32 >= from[i] && off32 < to[i] {
					post.Count(slotIDs[i])
				}
			}
			post.Place()
			for i := 0; i < n; i++ {
				if off32 >= from[i] && off32 < to[i] {
					post.Put(slotIDs[i], int32(i))
				}
			}
			for wi, b := range post.ChannelMask() {
				if b == 0 {
					continue
				}
				for ; b != 0; b &= b - 1 {
					c := int32(wi<<6 + bits.TrailingZeros64(b))
					g := post.Group(c)
					if len(g) < 2 {
						continue // a lone listener meets nobody
					}
					if wide {
						scanGroupWide(&gcx, isc.pwWide, isc.segWide, g, t, tk, int(c))
					} else {
						scanGroup(&gcx, &pw, g, t, tk, int(c))
					}
				}
			}
			post.ResetSlot()
		}
	}
	return true
}

// groupScanCtx carries the scan-invariant state one worker's
// scanGroup calls share. It lives on scanShardInverted's stack, built
// once per scan rather than once per group; met and rowFull alias the
// worker's scratch, so scanGroup's updates are visible to later groups.
type groupScanCtx struct {
	rowBase  []int
	mbase    []int32
	union    []int
	met      []uint64
	rowFull  []uint64
	hits     []hit32
	env      Environment
	seen     []uint64
	st       *shardState
	meetable int64
	solo     bool
}

// scanGroup intersects one channel group (dense id d, slot t) against
// the met matrix, recording each newly-met pair's first hit, and
// leaves pw cleared for the next group. Group members arrive in
// ascending agent id, so each member only intersects against
// earlier-id members and the triangular pair index needs no swap. The
// environment is consulted lazily, at most once per (channel, slot):
// only when the group first exposes a candidate pair not already met.
//
// Kept out of scanShardInverted — and out of its inliner's reach —
// deliberately: the combined function has repeatedly tripped optimizer
// wrong-code bugs in this toolchain (wild writes and dropped counter
// updates that vanish under -N or -race), and the split keeps each
// half small enough to stay on safe ground. Do not merge it back or
// grow either side without re-running the proptest soak.
//
//go:noinline
func scanGroup(cx *groupScanCtx, pw *[schedule.MaxPostingMembers / 64]uint64, g []int32, t int, tk int32, d int) {
	rowBase := cx.rowBase
	mbase := cx.mbase
	met := cx.met
	rowFull := cx.rowFull
	hits := cx.hits
	env := cx.env
	seen := cx.seen
	st := cx.st
	meetable := cx.meetable
	solo := cx.solo
	probed := env == nil
	var nz uint64
	for _, i32 := range g {
		i := int(i32)
		if cm := nz &^ rowFull[i]; cm != 0 {
			rb := int(mbase[i])
			blocked := false
			for s := cm; s != 0; s &= s - 1 {
				w := bits.TrailingZeros64(s) & 63
				cand := pw[w] &^ met[rb+w]
				if cand == 0 {
					continue
				}
				if !probed {
					probed = true
					if !env.Available(cx.union[d], t) {
						blocked = true
						break
					}
				}
				for cand != 0 {
					tz := bits.TrailingZeros64(cand)
					cand &= cand - 1
					o := w<<6 + tz
					p := rowBase[o] + i - o - 1
					hits[p] = hit32{s: tk, ch: int32(d)}
					met[rb+w] |= 1 << (tz & 63)
					if met[rb+w] == ^uint64(0) {
						rowFull[i] |= 1 << (w & 63)
					}
					if solo {
						if seen[p>>6]&(1<<(p&63)) == 0 {
							seen[p>>6] |= 1 << (p & 63)
							if st.seenCount.Add(1) == meetable {
								st.done.Store(true)
							}
						}
					} else if setSeenBit(seen, p) {
						if st.seenCount.Add(1) == meetable {
							st.done.Store(true)
						}
					}
				}
			}
			if blocked {
				break // channel masked out this slot: nobody in the group meets
			}
		}
		w := (uint(i32) >> 6) & 63
		pw[w] |= 1 << (uint(i32) & 63)
		nz |= 1 << w
	}
	for s := nz; s != 0; s &= s - 1 {
		pw[bits.TrailingZeros64(s)&63] = 0
	}
}

// scanGroupWide is scanGroup for fleets past schedule.MaxPostingMembers:
// the posting bitset lives in pw (ceil(members/64) heap words) instead
// of a register array, with nonzero words tracked by segNZ — one bit
// per posting word, walked segment by segment. There is no rowFull
// saturation pruning (a single summary word cannot address rows wider
// than 64 words); every nonzero posting word is ≤ the member's own
// word because groups arrive in ascending id, so met-row bounds still
// hold. Like scanGroup it leaves pw/segNZ cleared for the next group,
// and it is kept a separate //go:noinline function for the same
// optimizer-bug caution (see scanGroup). An earlier shape with a third
// summary level (one register word over segNZ) tripped exactly the
// wrong-code failure that comment warns about — a met-row load through
// a corrupted base register, crashing after its bounds check passed —
// so the walk here is deliberately flat and the hit recording lives in
// its own //go:noinline half (recordWideCands); do not merge them or
// deepen the nesting without re-running the proptest soak. The bug
// family was later isolated to the go1.24.0 atomic.OrUint64 intrinsic
// (see setSeenBit in joint.go); every scan kernel now routes its
// seen-bitset OR through that helper.
//
//go:noinline
func scanGroupWide(cx *groupScanCtx, pw, segNZ []uint64, g []int32, t int, tk int32, d int) {
	mbase := cx.mbase
	met := cx.met
	env := cx.env
	probed := env == nil
	for _, i32 := range g {
		i := int(i32)
		rb := int(mbase[i])
		blocked := false
		for s := 0; s < len(segNZ); s++ {
			for ss := segNZ[s]; ss != 0; ss &= ss - 1 {
				w := s<<6 + bits.TrailingZeros64(ss)
				cand := pw[w] &^ met[rb+w]
				if cand == 0 {
					continue
				}
				if !probed {
					probed = true
					if !env.Available(cx.union[d], t) {
						blocked = true
						break
					}
				}
				recordWideCands(cx, cand, w, i, rb, tk, d)
			}
			if blocked {
				break
			}
		}
		if blocked {
			break // channel masked out this slot: nobody in the group meets
		}
		w := uint(i32) >> 6
		pw[w] |= 1 << (uint(i32) & 63)
		segNZ[w>>6] |= 1 << (w & 63)
	}
	for s := 0; s < len(segNZ); s++ {
		for ss := segNZ[s]; ss != 0; ss &= ss - 1 {
			pw[s<<6+bits.TrailingZeros64(ss)] = 0
		}
		segNZ[s] = 0
	}
}

// recordWideCands records every candidate bit of one posting word as a
// first meeting of member i (posting word w, met-row base rb): the hit
// entry, the met-row bit, and the shared seen/cancellation state. The
// same per-pair bookkeeping as scanGroup's innermost loop, split out so
// scanGroupWide's walk stays on the toolchain's safe ground (see the
// optimizer-bug caution above).
//
//go:noinline
func recordWideCands(cx *groupScanCtx, cand uint64, w, i, rb int, tk int32, d int) {
	rowBase := cx.rowBase
	met := cx.met
	hits := cx.hits
	seen := cx.seen
	st := cx.st
	meetable := cx.meetable
	solo := cx.solo
	for cand != 0 {
		tz := bits.TrailingZeros64(cand)
		cand &= cand - 1
		o := w<<6 + tz
		p := rowBase[o] + i - o - 1
		hits[p] = hit32{s: tk, ch: int32(d)}
		met[rb+w] |= 1 << (tz & 63)
		if solo {
			if seen[p>>6]&(1<<(p&63)) == 0 {
				seen[p>>6] |= 1 << (p & 63)
				if st.seenCount.Add(1) == meetable {
					st.done.Store(true)
				}
			}
		} else if setSeenBit(seen, p) {
			if st.seenCount.Add(1) == meetable {
				st.done.Store(true)
			}
		}
	}
}
