package simulator

import (
	"fmt"
	"math/rand"
	"testing"

	"rendezvous/internal/baselines"
	"rendezvous/internal/schedule"
)

// mixedSchedule builds one of the repository's schedule families from a
// test RNG, so the equivalence tests cover native block evaluators,
// compiled tables, and wrappers alike.
func mixedSchedule(t *testing.T, rng *rand.Rand, n int, set []int) schedule.Schedule {
	t.Helper()
	var (
		s   schedule.Schedule
		err error
	)
	switch rng.Intn(5) {
	case 0:
		s, err = schedule.NewGeneral(n, set)
	case 1:
		s, err = schedule.NewAsync(n, set)
	case 2:
		s, err = baselines.NewCRSEQ(n, set)
	case 3:
		s, err = baselines.NewJumpStay(n, set)
	default:
		s, err = baselines.NewRandom(n, set, rng.Uint64(), 1<<14)
	}
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPairTTRBlockEquivalence sweeps randomized schedule pairs and wake
// offsets and requires the block-evaluated PairTTR to agree exactly
// with the per-slot reference scan.
func TestPairTTRBlockEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 32
	for trial := 0; trial < 40; trial++ {
		w := RandomOverlappingPair(rng, n, 1+rng.Intn(4), 1+rng.Intn(4))
		a := mixedSchedule(t, rng, n, w.A)
		b := mixedSchedule(t, rng, n, w.B)
		wakeA, wakeB := rng.Intn(1000), rng.Intn(1000)
		horizon := 1 + rng.Intn(100_000)

		prev := SetBlockEval(false)
		wantTTR, wantOK := PairTTR(a, b, wakeA, wakeB, horizon)
		SetBlockEval(true)
		gotTTR, gotOK := PairTTR(a, b, wakeA, wakeB, horizon)
		SetBlockEval(prev)

		if gotTTR != wantTTR || gotOK != wantOK {
			t.Fatalf("trial %d: block PairTTR = (%d,%v), per-slot = (%d,%v)",
				trial, gotTTR, gotOK, wantTTR, wantOK)
		}
	}
}

// TestEngineBlockEquivalence requires Run and RunParallel (at several
// worker counts) to produce identical meeting sets with block
// evaluation on and off, over randomized multi-agent fleets.
func TestEngineBlockEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n = 32
	for trial := 0; trial < 10; trial++ {
		agents := make([]Agent, 2+rng.Intn(5))
		for i := range agents {
			w := RandomOverlappingPair(rng, n, 1+rng.Intn(4), 1+rng.Intn(4))
			agents[i] = Agent{
				Name:  fmt.Sprintf("a%d", i),
				Sched: mixedSchedule(t, rng, n, w.A),
				Wake:  rng.Intn(500),
			}
		}
		horizon := 1 + rng.Intn(60_000)
		eng, err := NewEngine(agents)
		if err != nil {
			t.Fatal(err)
		}

		prev := SetBlockEval(false)
		want := renderMeetings(eng.Run(horizon))
		SetBlockEval(true)
		results := map[string]*Result{
			"Run":                  eng.Run(horizon),
			"RunParallel(1)":       eng.RunParallel(horizon, 1),
			"RunParallel(4)":       eng.RunParallel(horizon, 4),
			"RunParallel(default)": eng.RunParallel(horizon, 0),
		}
		SetBlockEval(prev)

		for name, res := range results {
			if got := renderMeetings(res); got != want {
				t.Fatalf("trial %d: %s diverged from per-slot Run:\nblock: %s\nslots: %s",
					trial, name, got, want)
			}
		}
	}
}

func renderMeetings(r *Result) string {
	out := ""
	for _, m := range r.Meetings() {
		out += fmt.Sprintf("%s-%s@%d ch%d ttr%d; ", m.A, m.B, m.Slot, m.Channel, m.TTR)
	}
	return out
}
