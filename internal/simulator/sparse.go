package simulator

import (
	"math/bits"

	"rendezvous/internal/schedule"
)

// Contact-sparse meeting scan.
//
// The inverted scan (inverted.go) made slot cost O(occupancy +
// meetings), but its per-pair state — met rows, triangular hit arrays —
// still grows O(agents²), and its group intersection considers every
// earlier co-channel listener a candidate. Under a contact topology
// almost none of them are: only in-range pairs can rendezvous, and the
// engine's cell-major renumbering (NewEngineContact) makes "in range"
// three contiguous id intervals — the 3×3 cell neighborhood rows of
// the agent's grid cell.
//
// This scan keeps the posting gather (agents bucket into per-channel
// groups, ascending id) and swaps the bitset intersection for interval
// intersection: each group member binary-searches its three
// neighborhood intervals inside the group's earlier members, walking
// exactly the in-range co-channel candidates — O(in-range occupancy),
// not O(occupancy²) and not O(all-pairs). Pair state is indexed by
// contact edge (pairSpace CSR), so hit arrays and the seen bitset are
// O(contact edges). It records into the same per-worker hit arrays and
// shared cancellation state as the other scans, so the time-sharded
// merge and its byte-identical-at-any-worker-count argument carry over
// unchanged.

// sparseScratch is one worker's private sparse-scan state: the wide
// posting gather, the per-agent activity clamps, and the slot-major id
// transpose. Unlike invertedScratch there are no met rows — pair state
// lives only in the O(edges) hit array. Recycled through
// Engine.sparsePool.
type sparseScratch struct {
	post     *schedule.PostingIndex
	from, to []int32
	ids      []int32 // slot-major transpose, n*blockLen
	cand     []int32 // per-group candidate-edge gather (see scanGroupSparse)
}

// getSparseScratch returns a pooled scratch; the posting gather is
// self-cleaning, so reuse needs no reset.
func (e *Engine) getSparseScratch() *sparseScratch {
	sc, _ := e.sparsePool.Get().(*sparseScratch)
	if sc == nil {
		n := len(e.agents)
		sc = &sparseScratch{
			post: schedule.NewPostingIndexWide(e.chIdx.count, n),
			from: make([]int32, n),
			to:   make([]int32, n),
			ids:  make([]int32, n*blockLen),
		}
	}
	return sc
}

// scanShardSparse is scanShard's contact-sparse counterpart: it runs
// the cell-filtered posting scan over global slots [lo, hi), recording
// each contact edge's first hit within this worker's windows into
// st.hits and feeding the shared cancellation state. The hit-array,
// seen-bitset, and ordering contracts match the other scans; the
// returned bool reports whether [lo, hi) was scanned to completion
// (false when st.cancel fired mid-window).
func (e *Engine) scanShardSparse(plan *runPlan, sc *jointScratch, ssc *sparseScratch, st *shardState, lo, hi int) bool {
	n := len(e.agents)
	from, to := ssc.from[:n], ssc.to[:n]
	post := ssc.post
	ids := ssc.ids
	gcx := sparseGroupCtx{
		topo: e.topo, union: e.union,
		hits: st.hits, env: st.env, seen: st.seen,
		st: st, meetable: st.meetable, solo: st.solo,
		cand: ssc.cand,
	}
	complete := true
	for base := lo; base < hi; base += blockLen {
		if st.cancel.poll() {
			complete = false
			break
		}
		m := min(blockLen, hi-base)
		e.fillBlockWindowClamped(plan, sc, from, to, base, m)
		transposeIDs(ids, sc.bufs, n, m)
		for off := 0; off < m; off++ {
			t := base + off
			tk := int32(t) + 1
			off32 := int32(off)
			slotIDs := ids[off*n : off*n+n]
			// Counting gather, ascending id twice so groups come out in
			// ascending id order — the interval search below relies on it.
			for i := 0; i < n; i++ {
				if off32 >= from[i] && off32 < to[i] {
					post.Count(slotIDs[i])
				}
			}
			post.Place()
			for i := 0; i < n; i++ {
				if off32 >= from[i] && off32 < to[i] {
					post.Put(slotIDs[i], int32(i))
				}
			}
			for wi, b := range post.ChannelMask() {
				if b == 0 {
					continue
				}
				for ; b != 0; b &= b - 1 {
					c := int32(wi<<6 + bits.TrailingZeros64(b))
					g := post.Group(c)
					if len(g) < 2 {
						continue // a lone listener meets nobody
					}
					scanGroupSparse(&gcx, g, t, tk, int(c))
				}
			}
			post.ResetSlot()
		}
	}
	ssc.cand = gcx.cand
	return complete
}

// sparseGroupCtx carries the scan-invariant state one worker's
// scanGroupSparse calls share, mirroring groupScanCtx.
type sparseGroupCtx struct {
	topo     *topoState
	union    []int
	hits     []hit32
	env      Environment
	seen     []uint64
	st       *shardState
	meetable int64
	solo     bool
	cand     []int32 // candidate-edge scratch, reused across groups
}

// lowerBound32 returns the first index in ascending-sorted a whose
// value is ≥ v.
func lowerBound32(a []int32, v int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// scanGroupSparse detects one channel group's in-range meetings (dense
// id d, slot t). For each member, the earlier co-channel listeners
// within contact range are exactly the earlier group members inside
// the member's 3×3 cell-neighborhood id intervals (ids are cell-major,
// so each neighborhood row is one contiguous interval): three binary
// searches, then a walk of just those candidates, each confirmed by
// the exact radius test and mapped to its contact-edge slot.
//
// MISCOMPILATION GUARD: with the go1.24.0 atomic.OrUint64 intrinsic
// inlined into the candidate walk, the compiler miscompiles this
// function — later candidates in a slot silently dropped, so first
// meetings are recorded a slot or more late; workers > 1 and
// optimized builds only (-N -l and -race are correct). Caught by
// TestPropContactEngines. The cancellation OR therefore goes through
// setSeenBit (a Load+CAS loop, joint.go), the recording is a separate
// //go:noinline half, and both must stay that way; re-run the
// proptest soak (PROPTEST_ITERS=1500) after any change here. The wide
// scan hit the same bug family (see scanGroupWide).
//
//go:noinline
func scanGroupSparse(cx *sparseGroupCtx, g []int32, t int, tk int32, d int) {
	topo := cx.topo
	hits := cx.hits
	cand := cx.cand[:0]
	cellsX, cellsY := topo.cellsX, topo.cellsY
	cellStart := topo.cellStart
	for gi := 1; gi < len(g); gi++ {
		i := int(g[gi])
		earlier := g[:gi]
		c := int(topo.cellOf[i])
		cx0, cy0 := c%cellsX, c/cellsX
		xLo, xHi := max(cx0-1, 0), min(cx0+1, cellsX-1)
		yHi := min(cy0+1, cellsY-1)
		for yy := max(cy0-1, 0); yy <= yHi; yy++ {
			rLo := cellStart[yy*cellsX+xLo]
			rHi := cellStart[yy*cellsX+xHi+1]
			if rLo == rHi {
				continue
			}
			for k := lowerBound32(earlier, rLo); k < len(earlier) && earlier[k] < rHi; k++ {
				j := int(earlier[k])
				if !topo.inRange2(j, i) {
					continue
				}
				p := topo.edgeOf(j, i)
				if p < 0 || hits[p].s != 0 {
					continue
				}
				cand = append(cand, int32(p))
			}
		}
	}
	cx.cand = cand
	if len(cand) == 0 {
		return
	}
	// The environment is consulted lazily — only when the group has an
	// unseen in-range candidate, at most once per (channel, slot). A
	// blocked channel abandons the whole group.
	if cx.env != nil && !cx.env.Available(cx.union[d], t) {
		return
	}
	recordSparseHits(cx, cand, tk, d)
}

// recordSparseHits records the gathered edges' first hits and feeds
// the shared cancellation state — scanGroupSparse's recording half,
// kept //go:noinline per the miscompilation guard above.
//
//go:noinline
func recordSparseHits(cx *sparseGroupCtx, cand []int32, tk int32, d int) {
	hits := cx.hits
	seen := cx.seen
	st := cx.st
	meetable := cx.meetable
	solo := cx.solo
	for _, p32 := range cand {
		p := int(p32)
		hits[p] = hit32{s: tk, ch: int32(d)}
		if solo {
			if seen[p>>6]&(1<<(p&63)) == 0 {
				seen[p>>6] |= 1 << (p & 63)
				if st.seenCount.Add(1) == meetable {
					st.done.Store(true)
				}
			}
		} else if setSeenBit(seen, p) {
			if st.seenCount.Add(1) == meetable {
				st.done.Store(true)
			}
		}
	}
}
