package simulator

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Contact topology: the spatial side of network scale.
//
// Every earlier engine is topology-free — any two agents hopping a
// common channel meet, so pair state (met bits, first-hit slots) is
// triangular over all n(n−1)/2 pairs and walks straight into an
// O(agents²) memory wall (≈4 TB of hit state at one million agents).
// A real cognitive radio network is spatially sparse: only in-range
// radios can rendezvous. ContactTopology captures that as a uniform
// grid of square cells with side equal to the contact radius, so an
// agent's potential partners all live in its 3×3 cell neighborhood and
// the exact in-range relation (Euclidean distance ≤ radius) is a CSR
// edge list of O(contact edges), not O(pairs).
//
// Engines built with a topology (NewEngineContact) reorder agents
// cell-major internally: each cell's agents occupy one contiguous id
// range, a 3×3 neighborhood is three contiguous id ranges (one per
// cell row), and the sparse scan turns "who in this channel group is
// in range of agent i" into three binary searches plus a walk of
// exactly the in-range co-channel members. Pair state is indexed by
// contact-edge id (CSR over forward neighbors) above a size threshold
// and by the classic triangular layout below it; both layouts produce
// byte-identical Results, so the threshold is purely a memory choice.

// ContactTopology places each agent of a fleet on a grid of square
// cells and bounds rendezvous to pairs within Radius of each other.
// Indices follow the agent slice handed to NewEngineContact. It is
// immutable after construction and safe to share across engines.
type ContactTopology struct {
	// CellsX, CellsY are the grid dimensions; an agent in grid cell
	// (x, y) has Cell[i] = y*CellsX + x.
	CellsX, CellsY int
	Cell           []int32
	// X, Y are the agent positions the exact radius test uses. Cell
	// membership must be consistent with them (cell side ≥ Radius), or
	// in-range pairs straddling a cell boundary are missed.
	X, Y []float32
	// Radius is the contact radius: pair (i, j) can rendezvous iff
	// their Euclidean distance is at most Radius.
	Radius float64
}

// validate checks the topology against a fleet size.
func (ct *ContactTopology) validate(n int) error {
	if ct.CellsX < 1 || ct.CellsY < 1 {
		return fmt.Errorf("simulator: contact grid %dx%d must be at least 1x1", ct.CellsX, ct.CellsY)
	}
	if ct.Radius <= 0 {
		return fmt.Errorf("simulator: contact radius %v must be positive", ct.Radius)
	}
	if len(ct.Cell) != n || len(ct.X) != n || len(ct.Y) != n {
		return fmt.Errorf("simulator: contact topology covers %d/%d/%d agents, fleet has %d",
			len(ct.Cell), len(ct.X), len(ct.Y), n)
	}
	cells := int32(ct.CellsX * ct.CellsY)
	for i, c := range ct.Cell {
		if c < 0 || c >= cells {
			return fmt.Errorf("simulator: agent %d in cell %d outside grid of %d cells", i, c, cells)
		}
	}
	return nil
}

// sparseStateFloor is the fleet size at which a contact engine switches
// its pair state from the dense triangular layout to contact-edge CSR.
// Below it the triangular arrays are small enough that CSR bookkeeping
// buys nothing; above it they grow O(agents²) while the edge state
// stays O(contact edges). Both layouts produce byte-identical Results;
// atomic only so tests can force either layout.
var sparseStateFloor atomic.Int64

const defaultSparseStateFloor = 4096

func init() { sparseStateFloor.Store(defaultSparseStateFloor) }

// SetSparseStateFloor repoints the fleet size above which contact
// engines use edge-indexed pair state, returning the previous floor.
// Like SetBlockEval it exists for equivalence tests; the layout is
// purely a memory/performance choice.
func SetSparseStateFloor(agents int) (previous int) {
	return int(sparseStateFloor.Swap(int64(agents)))
}

// topoState is the engine-resident contact structure, in engine
// (cell-major) agent order: a CSR of each cell's agents plus a CSR of
// each agent's forward (higher-id) in-range neighbors. The forward
// lists double as the sparse pair-state index: edge e of agent i is
// pair (i, fwdAdj[e]) with state slot e.
type topoState struct {
	cellsX, cellsY int
	radius2        float64
	cellOf         []int32 // engine id -> cell
	cellStart      []int32 // cell -> first engine id (ids are cell-contiguous), len cells+1
	x, y           []float32
	fwdBase        []int32 // engine id -> first forward-edge index, len n+1
	fwdAdj         []int32 // forward neighbor ids, ascending within each row
}

// edges returns the number of in-range pairs.
func (t *topoState) edges() int { return len(t.fwdAdj) }

// inRange2 is the exact radius test on engine ids.
func (t *topoState) inRange2(i, j int) bool {
	dx := float64(t.x[i] - t.x[j])
	dy := float64(t.y[i] - t.y[j])
	return dx*dx+dy*dy <= t.radius2
}

// edgeOf returns the forward-edge index of pair (i < j), or -1 when
// the pair is out of contact range.
func (t *topoState) edgeOf(i, j int) int {
	row := t.fwdAdj[t.fwdBase[i]:t.fwdBase[i+1]]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < int32(j) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo] == int32(j) {
		return int(t.fwdBase[i]) + lo
	}
	return -1
}

// pairSpace maps unordered agent pairs (i < j, engine ids) to dense
// pair-state slots. The dense layout is the classic triangular index
// over all pairs; the sparse layout admits only contact edges and
// indexes them by forward-edge id. Slot order is lexicographic in
// (i, j) under both layouts, which the sharded merge relies on.
type pairSpace struct {
	n     int
	slots int
	// rowBase selects the dense layout; nil means sparse. topo is set
	// whenever a contact topology applies — with rowBase it filters
	// out-of-range pairs to -1 while keeping triangular slots, without
	// it the forward-edge CSR is the slot index itself.
	rowBase []int
	topo    *topoState
}

// index returns the state slot of pair (i < j), or -1 when the pair
// cannot rendezvous under the contact topology (out of range).
func (ps *pairSpace) index(i, j int) int {
	if ps.rowBase != nil {
		if ps.topo != nil && !ps.topo.inRange2(i, j) {
			return -1
		}
		return ps.rowBase[i] + j - i - 1
	}
	return ps.topo.edgeOf(i, j)
}

// forEach visits every pair slot in slot order (lexicographic (i, j)).
func (ps *pairSpace) forEach(f func(p, i, j int)) {
	if ps.rowBase != nil {
		p := 0
		for i := 0; i < ps.n; i++ {
			for j := i + 1; j < ps.n; j++ {
				f(p, i, j)
				p++
			}
		}
		return
	}
	t := ps.topo
	for i := 0; i < ps.n; i++ {
		for e := t.fwdBase[i]; e < t.fwdBase[i+1]; e++ {
			f(int(e), i, int(t.fwdAdj[e]))
		}
	}
}

// Route identifies which evaluation strategy a run took. The choice is
// purely about speed and memory — every route computes the identical
// Result (the proptest oracles pin this) — but silent routing has
// burned us before (fleets over the posting cap quietly fell off the
// fast path), so the engine records its last decision for tests,
// benches, and calibration to observe.
type Route int32

const (
	// RouteNone: no run has completed on this engine yet.
	RouteNone Route = iota
	// RoutePairwise: independent per-pair scans over the horizon.
	RoutePairwise
	// RouteSerial: the serial joint occupancy scan (block or per-slot).
	RouteSerial
	// RouteSharded: the time-sharded joint occupancy scan.
	RouteSharded
	// RouteInverted: the posting-list scan with register-resident group
	// bitsets (fleets within schedule.MaxPostingMembers).
	RouteInverted
	// RouteInvertedWide: the posting-list scan with 64×64-word sharded
	// group bitsets (fleets past schedule.MaxPostingMembers).
	RouteInvertedWide
	// RouteSparse: the contact-topology cell-filtered posting scan.
	RouteSparse
)

// String names the route for test failures and logs.
func (r Route) String() string {
	switch r {
	case RouteNone:
		return "none"
	case RoutePairwise:
		return "pairwise"
	case RouteSerial:
		return "serial"
	case RouteSharded:
		return "sharded"
	case RouteInverted:
		return "inverted"
	case RouteInvertedWide:
		return "inverted-wide"
	case RouteSparse:
		return "sparse"
	}
	return fmt.Sprintf("route(%d)", int32(r))
}

// LastRoute reports the evaluation strategy of the engine's most
// recently started run (RouteNone before any run). Concurrent runs
// race benignly on the record: each stores its own decision.
func (e *Engine) LastRoute() Route { return Route(e.lastRoute.Load()) }

func (e *Engine) setRoute(r Route) { e.lastRoute.Store(int32(r)) }

// Edges returns the number of in-range contact pairs, or the full pair
// count n(n−1)/2 for a topology-free engine — the denominator of the
// candidate-reduction measurements.
func (e *Engine) Edges() int {
	if e.topo != nil {
		return e.topo.edges()
	}
	n := len(e.agents)
	return n * (n - 1) / 2
}

// NewEngineContact is NewEngine under a contact topology: only pairs
// within topo.Radius of each other can rendezvous, whatever channels
// they hop. Agents are reordered cell-major internally (the Result API
// is name-keyed, so callers never observe the permutation); pair state
// is triangular below SetSparseStateFloor and contact-edge CSR above
// it, and the joint scans route through the cell-filtered posting scan
// (RouteSparse), whose per-slot cost is O(active agents + in-range
// co-channel candidates) with pair state O(contact edges).
func NewEngineContact(agents []Agent, topo *ContactTopology) (*Engine, error) {
	if topo == nil {
		return NewEngine(agents)
	}
	if err := topo.validate(len(agents)); err != nil {
		return nil, err
	}
	// Cell-major permutation, stable by input index so construction is
	// deterministic in the caller's order.
	order := make([]int, len(agents))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return topo.Cell[order[a]] < topo.Cell[order[b]] })
	perm := make([]Agent, len(agents))
	for to, from := range order {
		perm[to] = agents[from]
	}
	e, err := NewEngine(perm)
	if err != nil {
		return nil, err
	}
	n := len(agents)
	cells := topo.CellsX * topo.CellsY
	t := &topoState{
		cellsX:    topo.CellsX,
		cellsY:    topo.CellsY,
		radius2:   topo.Radius * topo.Radius,
		cellOf:    make([]int32, n),
		cellStart: make([]int32, cells+1),
		x:         make([]float32, n),
		y:         make([]float32, n),
	}
	for to, from := range order {
		t.cellOf[to] = topo.Cell[from]
		t.x[to] = topo.X[from]
		t.y[to] = topo.Y[from]
	}
	// Cell CSR: ids are cell-sorted, so each cell is one contiguous run.
	for _, c := range t.cellOf {
		t.cellStart[c+1]++
	}
	for c := 0; c < cells; c++ {
		t.cellStart[c+1] += t.cellStart[c]
	}
	t.buildForwardEdges()
	e.topo = t
	if int64(n) >= sparseStateFloor.Load() {
		e.ps = &pairSpace{n: n, slots: t.edges(), topo: t}
	} else {
		e.ps.topo = t // triangular slots, but out-of-range pairs filtered
	}
	return e, nil
}

// buildForwardEdges materializes each agent's forward (higher-id)
// in-range neighbors by scanning the 3×3 cell neighborhood — the same
// three-row walk the sparse scan performs per slot, paid once here.
func (t *topoState) buildForwardEdges() {
	n := len(t.cellOf)
	t.fwdBase = make([]int32, n+1)
	var adj []int32
	for i := 0; i < n; i++ {
		t.fwdBase[i] = int32(len(adj))
		c := int(t.cellOf[i])
		cx, cy := c%t.cellsX, c/t.cellsX
		for dy := -1; dy <= 1; dy++ {
			yy := cy + dy
			if yy < 0 || yy >= t.cellsY {
				continue
			}
			xLo, xHi := max(cx-1, 0), min(cx+1, t.cellsX-1)
			lo := t.cellStart[yy*t.cellsX+xLo]
			hi := t.cellStart[yy*t.cellsX+xHi+1]
			for j := lo; j < hi; j++ {
				if int(j) > i && t.inRange2(i, int(j)) {
					adj = append(adj, j)
				}
			}
		}
		// Rows are visited in ascending cell order and cells hold
		// ascending ids, so each row's ids are ascending — but rows
		// interleave, so the full list still needs one sort.
		row := adj[t.fwdBase[i]:]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
	}
	t.fwdBase[n] = int32(len(adj))
	t.fwdAdj = adj
}
