package simulator

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Time-sharded joint engine.
//
// First rendezvous is a per-pair *minimum over time*: the earliest slot
// at which the pair co-hops an available channel. Minima decompose over
// any partition of the time axis, and every input to a slot's outcome —
// schedules, activity windows, Environment decisions — is a pure
// function of the slot. So the joint occupancy scan parallelizes by
// time: partition [0, horizon) into contiguous windows, scan each
// window independently into a private per-pair first-hit array, and
// take the per-pair minimum across windows. The decomposition is exact,
// which makes the Result byte-identical to Run at any worker count.
//
// Windows are dispatched in increasing time order, which preserves most
// of the serial engine's early-exit win: once every meetable pair has a
// recorded hit, every not-yet-started window lies strictly later than
// every window that produced those hits, so any meeting it could find
// would be at a later slot than an existing hit for its pair — skipping
// it cannot change any per-pair minimum. In-flight windows always run
// to completion under early exit (one of them may still hold a pair's
// true first meeting), so the early exit affects wall-clock only, never
// the Result. External cancellation (Canceler) is the one exception:
// it stops in-flight windows at their next block boundary too, trading
// completeness for latency — the merged Result is then a partial subset
// of the true first meetings, which is exactly the Canceler contract.

// hit32 is one worker's first observed meeting for a pair: s is the
// global slot + 1 (0 = no hit in this worker's windows) and ch the
// dense channel id. 8 bytes keeps the per-worker arrays compact at
// network scale (a 1024-agent fleet has ~524k pairs).
type hit32 struct {
	s, ch int32
}

// jointWindow picks the shard width for a horizon/worker pair: about
// four windows per worker for load balance, in whole blocks so the
// shard scans align with the block evaluators.
func jointWindow(horizon, workers int) int {
	win := (horizon + 4*workers - 1) / (4 * workers)
	win = (win + blockLen - 1) / blockLen * blockLen
	if win < blockLen {
		win = blockLen
	}
	return win
}

// RunJointParallel computes the same Result as Run by sharding the
// joint occupancy scan over contiguous time windows executed by a
// bounded worker pool (workers ≤ 0 means GOMAXPROCS). Results are
// byte-identical to Run at any worker count; see the package comment
// above for why the decomposition is exact.
func (e *Engine) RunJointParallel(horizon, workers int) *Result {
	return e.RunJointParallelEnv(horizon, workers, nil)
}

// RunJointParallelEnv is RunJointParallel under an optional
// Environment; see RunEnv for the availability semantics.
func (e *Engine) RunJointParallelEnv(horizon, workers int, env Environment) *Result {
	return e.runJointParallelEnvInto(e.newResult(horizon), horizon, workers, env, e.meetablePairs(horizon), nil)
}

// scanKind selects the sharded scan a run uses. All kinds honor the
// same hit-array/seen-bitset contracts, so routing is invisible in the
// Result; see scanKindFor for the gating.
type scanKind int

const (
	scanOccupancy    scanKind = iota // dense-id occupancy scan (scanShard)
	scanInverted                     // posting scan, register-resident group bitsets
	scanInvertedWide                 // posting scan, 64×64-word sharded group bitsets
	scanSparse                       // contact-topology cell-filtered posting scan
)

// route maps a scan kind to its reported Route.
func (k scanKind) route() Route {
	switch k {
	case scanInverted:
		return RouteInverted
	case scanInvertedWide:
		return RouteInvertedWide
	case scanSparse:
		return RouteSparse
	}
	return RouteSharded
}

// runJointParallelEnvInto is the shared body, writing into the
// caller-owned result; meetable is the caller's meetablePairs(horizon)
// count, so routing callers that already counted (RunParallelEnv's
// crossover test) never scan the pair space twice.
func (e *Engine) runJointParallelEnvInto(res *Result, horizon, workers int, env Environment, meetable int, c *Canceler) *Result {
	if horizon <= 0 {
		e.setRoute(RouteSerial)
		return res
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	window := jointWindow(horizon, workers)
	if workers > (horizon+window-1)/window {
		workers = (horizon + window - 1) / window
	}
	// Fleets at or above the inverted crossover take a posting-list
	// scan (even single-worker: the win is algorithmic, not parallel —
	// see inverted.go), and contact fleets with sparse pair state take
	// the cell-filtered scan. Otherwise, degenerate shapes (one worker,
	// one window, per-slot reference mode, or a horizon whose slots
	// overflow the int32 hit encoding) take the serial joint path,
	// which is the same computation.
	kind := e.scanKindFor(horizon)
	if kind == scanOccupancy && (workers <= 1 || horizon >= math.MaxInt32 || !blockEval.Load()) {
		e.setRoute(RouteSerial)
		if blockEval.Load() {
			e.runBlock(res, horizon, env, meetable, c)
		} else {
			e.runSlots(res, horizon, env, meetable, c)
		}
		return res
	}
	e.setRoute(kind.route())
	e.runJointSharded(res, horizon, workers, window, env, meetable, kind, c)
	return res
}

// getHits returns a zeroed per-pair hit array of length pairs from the
// engine's pool.
func (e *Engine) getHits(pairs int) []hit32 {
	hp, _ := e.hitPool.Get().(*[]hit32)
	if hp == nil || cap(*hp) < pairs {
		h := make([]hit32, pairs)
		return h
	}
	h := (*hp)[:pairs]
	clear(h)
	return h
}

// runJointSharded is the sharded scan proper. window must be a positive
// multiple of blockLen; it and the meetable count are parameters
// (rather than derived here) so tests can pin partition invariance
// directly. kind selects the scan a worker runs per window; every kind
// honors the identical hit-array and seen-bitset contracts over the
// engine's pair space, so the merge below is shared.
func (e *Engine) runJointSharded(res *Result, horizon, workers, window int, env Environment, meetableCount int, kind scanKind, c *Canceler) {
	pairs := e.ps.slots
	meetable := int64(meetableCount)
	if meetable == 0 {
		return
	}
	plan := e.planFor(horizon)
	defer e.planPool.Put(plan)
	windows := (horizon + window - 1) / window
	if workers > windows {
		workers = windows
	}
	// seen is the shared pair-has-a-hit-somewhere bitset driving
	// ordered-window cancellation; seenCount trips done when the last
	// meetable pair gets its first hit. Neither influences the Result —
	// the merge below recomputes exact minima from the per-worker
	// arrays.
	seen := e.getSeen(pairs)
	var tmpl, full []uint64
	if kind == scanInverted || kind == scanInvertedWide {
		tmpl, full = e.metSeed(horizon)
	}
	var seenCount atomic.Int64
	var done atomic.Bool
	var nextWin atomic.Int64
	// winOK tracks which windows were scanned to completion, but only on
	// cancellable runs: a cancelled worker can abandon a window mid-way
	// while a later window's hits already landed, and merging those later
	// hits unfiltered could record a non-first meeting. The merge below
	// clamps to the completed-window frontier instead, making a cancelled
	// run byte-identical to an uncancelled run over a block-aligned
	// horizon prefix. Uncancellable runs (c == nil, the common case) skip
	// the tracking entirely.
	var winOK []atomic.Bool
	if c != nil {
		winOK = make([]atomic.Bool, windows)
	}
	perWorker := e.getWorkerSets(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := e.getJointScratch()
			defer e.jointPool.Put(sc)
			hits := e.getHits(pairs)
			perWorker[w] = hits
			st := &shardState{hits: hits, env: env, seen: seen,
				seenCount: &seenCount, done: &done, meetable: meetable,
				solo: workers == 1, cancel: c}
			var isc *invertedScratch
			var ssc *sparseScratch
			switch kind {
			case scanInverted, scanInvertedWide:
				isc = e.getInvertedScratch(tmpl, full, kind == scanInvertedWide)
				defer e.invPool.Put(isc)
			case scanSparse:
				ssc = e.getSparseScratch()
				defer e.sparsePool.Put(ssc)
			}
			for !done.Load() && !c.Canceled() {
				wi := int(nextWin.Add(1)) - 1
				if wi >= windows {
					return
				}
				lo := wi * window
				hi := min(lo+window, horizon)
				var complete bool
				switch kind {
				case scanInverted, scanInvertedWide:
					complete = e.scanShardInverted(plan, sc, isc, st, lo, hi, kind == scanInvertedWide)
				case scanSparse:
					complete = e.scanShardSparse(plan, sc, ssc, st, lo, hi)
				default:
					complete = e.scanShard(plan, sc, st, lo, hi)
				}
				if winOK != nil && complete {
					winOK[wi].Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	// Serial merge: the per-pair minimum slot across workers. Each
	// worker processed its windows in increasing time order and kept
	// only its first hit per pair, so the minimum over workers is the
	// global first meeting. On a cancelled run the minimum is only
	// trustworthy up to the first incomplete window — a hit beyond that
	// frontier may not be its pair's first — so the merge discards
	// everything past it (unless done fired first, in which case every
	// meetable pair already holds its exact first hit).
	limit := int32(math.MaxInt32)
	if c.Canceled() && !done.Load() {
		frontier := windows
		for wi := range winOK {
			if !winOK[wi].Load() {
				frontier = wi
				break
			}
		}
		limit = int32(min(int64(frontier)*int64(window), int64(horizon))) + 1
	}
	e.ps.forEach(func(p, i, j int) {
		if seen[p>>6]&(1<<(p&63)) == 0 {
			return
		}
		best := hit32{}
		for w := range perWorker {
			if h := perWorker[w][p]; h.s != 0 && h.s < limit && (best.s == 0 || h.s < best.s) {
				best = h
			}
		}
		if best.s == 0 {
			return // the pair's only hits lie past the cancellation frontier
		}
		res.recordAt(p, int(best.s)-1, e.union[best.ch], max(e.agents[i].Wake, e.agents[j].Wake))
	})
	for w := range perWorker {
		h := perWorker[w]
		e.hitPool.Put(&h)
	}
	e.putWorkerSets(perWorker)
	e.putSeen(seen)
}

// getSeen returns a zeroed pairs-bit bitset from the engine's pool.
func (e *Engine) getSeen(pairs int) []uint64 {
	words := (pairs + 63) / 64
	sp, _ := e.seenPool.Get().(*[]uint64)
	if sp == nil || cap(*sp) < words {
		return make([]uint64, words)
	}
	s := (*sp)[:words]
	clear(s)
	return s
}

func (e *Engine) putSeen(s []uint64) { e.seenPool.Put(&s) }

// getWorkerSets returns a length-workers slice of per-worker hit-array
// slots (contents nil; workers fill them).
func (e *Engine) getWorkerSets(workers int) [][]hit32 {
	wp, _ := e.workerPool.Get().(*[][]hit32)
	if wp == nil || cap(*wp) < workers {
		return make([][]hit32, workers)
	}
	pw := (*wp)[:workers]
	clear(pw)
	return pw
}

func (e *Engine) putWorkerSets(pw [][]hit32) {
	clear(pw) // the hit arrays went back to hitPool; do not retain them here
	e.workerPool.Put(&pw)
}

// setSeenBit atomically sets pair p's bit in the shared seen bitset,
// reporting whether this call flipped it. Deliberately a Load+CAS loop
// rather than atomic.OrUint64: the go1.24.0 compiler miscompiles the
// Or intrinsic's enclosing scan kernels — later candidates in the same
// loop silently dropped, or call arguments corrupted — in optimized
// builds only (-N -l and -race builds are correct). Caught by
// TestPropContactEngines; see also the miscompilation guard on
// scanGroupSparse. Do not "simplify" this back to atomic.OrUint64
// without re-running the proptest soak.
func setSeenBit(seen []uint64, p int) bool {
	w, m := p>>6, uint64(1)<<(p&63)
	for {
		old := atomic.LoadUint64(&seen[w])
		if old&m != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(&seen[w], old, old|m) {
			return true
		}
	}
}

// scanShard runs the dense-id occupancy scan over global slots
// [lo, hi), recording each pair's first hit within this worker's
// windows into st.hits and feeding the shared completion and
// cancellation state. The returned bool reports whether [lo, hi) was
// scanned to completion (false when st.cancel fired mid-window).
func (e *Engine) scanShard(plan *runPlan, sc *jointScratch, st *shardState, lo, hi int) bool {
	topo := e.topo
	hits := st.hits
	env := st.env
	seen := st.seen
	seenCount := st.seenCount
	done := st.done
	meetable := st.meetable
	for base := lo; base < hi; base += blockLen {
		if st.cancel.poll() {
			return false
		}
		m := min(blockLen, hi-base)
		e.fillBlockWindow(plan, sc, base, m)
		for off := 0; off < m; off++ {
			t := base + off
			for i := range e.agents {
				if !e.agents[i].active(t) {
					continue
				}
				d := sc.bufs[i][off]
				prev := sc.occ.add(int(d), t+1, i)
				if len(prev) == 0 {
					continue
				}
				avail := env == nil // env consulted once per candidate channel-slot, lazily
				checked := env == nil
				for _, o := range prev {
					// Agents are visited in ascending id order within a slot,
					// so o < i and the triangular index needs no swap.
					p := e.rowBase[o] + i - o - 1
					if topo != nil {
						// Under a contact topology the pair space filters
						// out-of-range pairs (and, when sparse, renumbers
						// the slots), so the triangular shortcut is wrong.
						if p = e.ps.index(o, i); p < 0 {
							continue
						}
					}
					if hits[p].s != 0 {
						continue
					}
					if !checked {
						avail = env.Available(e.union[d], t)
						checked = true
					}
					if !avail {
						break
					}
					hits[p] = hit32{s: int32(t) + 1, ch: d}
					if setSeenBit(seen, p) {
						if seenCount.Add(1) == meetable {
							done.Store(true)
						}
					}
				}
			}
		}
	}
	return true
}
