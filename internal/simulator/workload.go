package simulator

import (
	"fmt"
	"math/rand"
	"sort"
)

// PairWorkload describes one asymmetric rendezvous scenario: two channel
// sets over a common universe.
type PairWorkload struct {
	N    int
	A, B []int
}

// RandomOverlappingPair draws a workload with |A| = ka, |B| = kb and at
// least one shared channel, uniformly at random. It panics if the sizes
// are infeasible for the universe (programmer error in experiment
// setup).
func RandomOverlappingPair(rng *rand.Rand, n, ka, kb int) PairWorkload {
	if ka < 1 || kb < 1 || ka > n || kb > n {
		panic(fmt.Sprintf("simulator: infeasible pair sizes ka=%d kb=%d for n=%d", ka, kb, n))
	}
	shared := 1 + rng.Intn(n)
	return PairWorkload{
		N: n,
		A: randomSetContaining(rng, n, ka, shared),
		B: randomSetContaining(rng, n, kb, shared),
	}
}

// RandomPairWithIntersection draws a workload whose channel sets share
// exactly m channels (m ≥ 1). It panics if infeasible: it needs
// ka + kb − m ≤ n.
func RandomPairWithIntersection(rng *rand.Rand, n, ka, kb, m int) PairWorkload {
	if m < 1 || m > ka || m > kb || ka+kb-m > n {
		panic(fmt.Sprintf("simulator: infeasible intersection m=%d (ka=%d kb=%d n=%d)", m, ka, kb, n))
	}
	perm := rng.Perm(n)
	shared := perm[:m]
	onlyA := perm[m : m+ka-m]
	onlyB := perm[m+ka-m : m+ka-m+kb-m]
	a := make([]int, 0, ka)
	b := make([]int, 0, kb)
	for _, c := range shared {
		a = append(a, c+1)
		b = append(b, c+1)
	}
	for _, c := range onlyA {
		a = append(a, c+1)
	}
	for _, c := range onlyB {
		b = append(b, c+1)
	}
	sort.Ints(a)
	sort.Ints(b)
	return PairWorkload{N: n, A: a, B: b}
}

// AdversarialPairs returns structured worst-case-flavored workloads for
// universe n: poset chains, shared extremes, nested sets, and singleton
// intersections at the universe edges. These stress the cases the
// paper's constructions treat separately (path vs shared-min vs
// shared-max).
func AdversarialPairs(n int) []PairWorkload {
	if n < 4 {
		panic(fmt.Sprintf("simulator: AdversarialPairs needs n ≥ 4, got %d", n))
	}
	mid := n / 2
	return []PairWorkload{
		{N: n, A: dedupe(1, 2), B: dedupe(2, 3)},                       // path, low channels
		{N: n, A: dedupe(n-2, n-1), B: dedupe(n-1, n)},                 // path, high channels
		{N: n, A: dedupe(1, n), B: dedupe(mid, n)},                     // shared max
		{N: n, A: dedupe(1, mid), B: dedupe(1, n)},                     // shared min
		{N: n, A: dedupe(1, mid, n), B: dedupe(1, mid, n)},             // identical
		{N: n, A: dedupe(1, 2, 3, mid), B: dedupe(mid, n-1, n)},        // singleton bridge
		{N: n, A: dedupe(mid), B: dedupe(1, mid, n)},                   // singleton set
		{N: n, A: firstK(n, min(8, n)), B: lastKWith(n, min(8, n), 1)}, // extremes sharing 1
	}
}

// dedupe sorts its arguments and removes duplicates (small structured
// sets collide for tiny universes, e.g. mid == 2 when n == 4).
func dedupe(cs ...int) []int {
	seen := make(map[int]bool, len(cs))
	var out []int
	for _, c := range cs {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// FullSet returns {1, …, n}.
func FullSet(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// randomSetContaining returns a uniformly random size-k subset of [n]
// containing the given channel.
func randomSetContaining(rng *rand.Rand, n, k, contains int) []int {
	set := map[int]bool{contains: true}
	for len(set) < k {
		set[1+rng.Intn(n)] = true
	}
	out := make([]int, 0, k)
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

func firstK(n, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// lastKWith returns the k largest channels of [n] plus channel extra.
func lastKWith(n, k, extra int) []int {
	set := map[int]bool{extra: true}
	for c := n; c > 0 && len(set) < k+1; c-- {
		set[c] = true
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
