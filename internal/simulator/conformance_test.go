package simulator_test

import (
	"testing"

	"rendezvous/internal/schedtest"
	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
)

// TestAlignedConformance runs the shared Schedule conformance suite
// against the AlignWake wrapper (the only schedule implementation this
// package defines), over both a plain schedule and a multi-phase
// Dynamic whose EventualPeriod marker must propagate.
func TestAlignedConformance(t *testing.T) {
	g, err := schedule.NewGeneral(32, []int{3, 17, 30})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("AlignWake(General)", func(t *testing.T) {
		schedtest.Conform(t, simulator.AlignWake(g, 17))
	})
	d, err := schedule.NewDynamic(32, []schedule.Phase{
		{FromSlot: 0, Channels: []int{1, 9, 30}},
		{FromSlot: 137, Channels: []int{9, 12}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("AlignWake(Dynamic)", func(t *testing.T) {
		schedtest.Conform(t, simulator.AlignWake(d, 5))
	})
	aligned := simulator.AlignWake(d, 5)
	if _, ok := schedule.Compile(aligned).(*schedule.Compiled); ok {
		t.Fatalf("Compile materialized an aligned multi-phase Dynamic")
	}
}
