package simulator

import "rendezvous/internal/schedule"

// AlignWake adapts a schedule that is a function of the GLOBAL slot
// clock (the beacon protocols of §5: every agent evaluates the same
// shared permutation at the same absolute slot) to the engine's
// local-clock convention. An agent created as
//
//	Agent{Sched: AlignWake(proto, w), Wake: w}
//
// executes proto.Channel(globalSlot) for every globalSlot ≥ w.
func AlignWake(inner schedule.Schedule, wake int) schedule.Schedule {
	return aligned{inner: inner, wake: wake}
}

type aligned struct {
	inner schedule.Schedule
	wake  int
}

func (a aligned) Channel(t int) int {
	schedule.CheckSlot(t)
	return a.inner.Channel(t + a.wake)
}

// ChannelBlock implements schedule.BlockEvaluator by shifting the block
// start onto the global clock.
func (a aligned) ChannelBlock(dst []int, start int) {
	schedule.CheckSlot(start)
	schedule.FillBlock(a.inner, dst, start+a.wake)
}

func (a aligned) Period() int     { return a.inner.Period() }
func (a aligned) Channels() []int { return a.inner.Channels() }

// AllChannels propagates the complete hop set of wrapped schedules
// whose channel availability varies over time (see schedule.Dynamic).
func (a aligned) AllChannels() []int { return schedule.AllChannels(a.inner) }

// PeriodIsEventual propagates the schedule.EventualPeriod marker so an
// aligned Dynamic is never compiled against its steady-state period.
func (a aligned) PeriodIsEventual() bool { return schedule.IsEventuallyPeriodic(a.inner) }
