package simulator

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pairwise/joint crossover calibration.
//
// RunParallelEnv has two exact decompositions to choose from: the
// pairwise scan (each meetable pair scanned independently, stopping at
// its own first meeting) and the time-sharded joint engine (occupancy
// or posting scans over the whole fleet at once). Both produce
// byte-identical Results, so the choice is purely a performance one —
// and the winner depends on fleet shape, channel count, environment
// hostility, and the host. A single hand-picked pair count (16,384,
// measured on one machine) mis-routes the band around it on any other.
//
// The scheme here is the same ski-rental bet SweepOffsets makes about
// compiling schedules: rent the incremental choice (pairwise, which
// wins when pairs are few) until the cumulative rent would have paid
// for finding out whether buying (the joint engine) is cheaper, then
// probe the joint path once and stick with whichever measured faster.
// Fleets clearly below the band always rent, fleets clearly above it
// always buy, and the decision is per-engine: the sweeps that dominate
// experiment workloads re-run the same engine shape in tight loops, so
// two rented runs plus one probe amortize to noise.

// jointCrossover, when positive, pins the meetable-pair count above
// which RunParallelEnv takes the joint engine — the pre-calibration
// behavior. Zero (the default) selects per-engine ski-rental
// calibration inside [autoCrossLo, autoCrossHi].
var jointCrossover atomic.Int64

// SetJointCrossover pins the pairwise→joint crossover to an explicit
// meetable-pair count, returning the previous setting (0 = automatic
// calibration). Explicit values bypass calibration entirely: a run
// goes joint iff its meetable-pair count exceeds the pin. Both paths
// compute byte-identical Results, so the knob is purely performance.
func SetJointCrossover(pairs int) (previous int) {
	return int(jointCrossover.Swap(int64(pairs)))
}

const (
	// autoCrossLo/Hi bound the calibration band: below lo the pairwise
	// scan wins on every host we have measured, above hi the joint
	// engine's O(agents)-per-slot scaling wins decisively. hi is the
	// old hand-picked constant, so fleets above it behave exactly as
	// before; the band is where the constant was a guess.
	autoCrossLo = 1 << 12
	autoCrossHi = 1 << 14
	// calRentRuns is how many banded runs rent the pairwise path (and
	// time it) before the engine buys one joint probe. Two rents give
	// the mean a second sample to smooth scheduler noise while keeping
	// the worst case — joint would have won — bounded at two runs of
	// regret, the classic ski-rental balance.
	calRentRuns = 2
)

// jointDecision is jointChoice's verdict for one run.
type jointDecision int

const (
	choosePairwise      jointDecision = iota // untimed pairwise run
	choosePairwiseTimed                      // pairwise, accumulate rent
	chooseJoint                              // untimed joint run
	chooseJointProbe                         // joint, settle the bet
)

// crossoverCal is one engine's calibration state. A mutex, not
// atomics: it is touched once per run, never per slot.
type crossoverCal struct {
	mu       sync.Mutex
	pairNS   int64 // cumulative rented pairwise wall time
	pairRuns int64
	prefer   jointDecision // sticky verdict; choosePairwise/chooseJoint once set
	decided  bool
}

// jointChoice picks the decomposition for a run with the given
// meetable-pair count.
func (e *Engine) jointChoice(meetable int) jointDecision {
	if pin := jointCrossover.Load(); pin > 0 {
		if int64(meetable) > pin {
			return chooseJoint
		}
		return choosePairwise
	}
	if meetable > autoCrossHi {
		return chooseJoint
	}
	if meetable < autoCrossLo {
		return choosePairwise
	}
	c := &e.cal
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.decided {
		return c.prefer
	}
	if c.pairRuns < calRentRuns {
		return choosePairwiseTimed
	}
	return chooseJointProbe
}

// notePairwise accumulates one rented pairwise run.
func (c *crossoverCal) notePairwise(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pairNS += int64(d)
	c.pairRuns++
}

// noteJoint settles the bet: the probe's wall time against the rented
// pairwise mean, verdict sticky for the engine's lifetime (fleet and
// horizon shape are fixed per engine in every sweep workload; a tie
// keeps pairwise, the incumbent).
func (c *crossoverCal) noteJoint(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.decided {
		return
	}
	c.decided = true
	if c.pairRuns > 0 && int64(d) < c.pairNS/c.pairRuns {
		c.prefer = chooseJoint
	} else {
		c.prefer = choosePairwise
	}
}
