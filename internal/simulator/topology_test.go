package simulator

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomTopology scatters n agents uniformly over a cellsX×cellsY grid
// of unit cells with the given contact radius (must be ≤ 1, the cell
// side, or neighborhood filtering would miss in-range pairs).
func randomTopology(rng *rand.Rand, n, cellsX, cellsY int, radius float64) *ContactTopology {
	ct := &ContactTopology{
		CellsX: cellsX, CellsY: cellsY,
		Cell: make([]int32, n), X: make([]float32, n), Y: make([]float32, n),
		Radius: radius,
	}
	for i := 0; i < n; i++ {
		x := rng.Float64() * float64(cellsX)
		y := rng.Float64() * float64(cellsY)
		ct.X[i], ct.Y[i] = float32(x), float32(y)
		ct.Cell[i] = int32(int(y)*cellsX + int(x))
	}
	return ct
}

// inRangeByName reports whether the topology places two input indices
// within contact range, recomputed from the raw positions so tests do
// not trust the engine's own geometry.
func inRange(ct *ContactTopology, i, j int) bool {
	dx := float64(ct.X[i]) - float64(ct.X[j])
	dy := float64(ct.Y[i]) - float64(ct.Y[j])
	return dx*dx+dy*dy <= ct.Radius*ct.Radius
}

func TestContactTopologyValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	fleet := jointTestFleet(t, rng, 4)
	good := randomTopology(rng, 4, 2, 2, 1)
	if _, err := NewEngineContact(fleet, good); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	bad := map[string]func(ct *ContactTopology){
		"zero-grid":     func(ct *ContactTopology) { ct.CellsX = 0 },
		"zero-radius":   func(ct *ContactTopology) { ct.Radius = 0 },
		"short-cells":   func(ct *ContactTopology) { ct.Cell = ct.Cell[:3] },
		"short-xs":      func(ct *ContactTopology) { ct.X = ct.X[:1] },
		"cell-range":    func(ct *ContactTopology) { ct.Cell[2] = 4 },
		"cell-negative": func(ct *ContactTopology) { ct.Cell[0] = -1 },
	}
	for name, mutate := range bad {
		ct := randomTopology(rand.New(rand.NewSource(71)), 4, 2, 2, 1)
		mutate(ct)
		if _, err := NewEngineContact(fleet, ct); err == nil {
			t.Errorf("%s: invalid topology accepted", name)
		}
	}
}

// TestNewEngineContactNilTopo pins the degenerate case: a nil topology
// is plain NewEngine — all pairs in range, full pair count.
func TestNewEngineContactNilTopo(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	fleet := jointTestFleet(t, rng, 7)
	eng, err := NewEngineContact(fleet, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := eng.Edges(), 7*6/2; got != want {
		t.Fatalf("nil-topology Edges() = %d, want %d", got, want)
	}
}

// TestEngineEdges checks the contact edge count against a brute-force
// O(n²) recount from the raw positions.
func TestEngineEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	fleet := jointTestFleet(t, rng, 40)
	ct := randomTopology(rng, 40, 6, 5, 0.9)
	eng, err := NewEngineContact(fleet, ct)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			if inRange(ct, i, j) {
				want++
			}
		}
	}
	if got := eng.Edges(); got != want {
		t.Fatalf("Edges() = %d, brute-force count = %d", got, want)
	}
}

// TestContactEngineMatchesFilteredDense is the contact engine's
// defining equivalence: against the classic all-pairs engine on the
// same fleet, a contact engine reports exactly the dense meetings of
// in-range pairs and nothing for out-of-range pairs — under both pair
// state layouts (triangular and contact-edge CSR), at several worker
// counts, with and without a hostile environment.
func TestContactEngineMatchesFilteredDense(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 3; trial++ {
		n := 30 + rng.Intn(20)
		fleet := jointTestFleet(t, rng, n)
		ct := randomTopology(rng, n, 5, 4, 0.8+rng.Float64()*0.2)
		dense, err := NewEngine(fleet)
		if err != nil {
			t.Fatal(err)
		}
		horizon := 900 + rng.Intn(1200)
		var env Environment
		if trial%2 == 1 {
			env = evenSlotsBlocked{}
		}
		denseRes := dense.RunEnv(horizon, env)
		var first string
		for _, floor := range []int{0, 1 << 30} { // CSR and triangular pair state
			prev := SetSparseStateFloor(floor)
			eng, err := NewEngineContact(fleet, ct)
			SetSparseStateFloor(prev)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 5} {
				res := eng.RunJointParallelEnv(horizon, workers, env)
				// Both layouts, every worker count: one rendering.
				if got := renderMeetings(res); first == "" {
					first = got
				} else if got != first {
					t.Fatalf("trial %d floor=%d workers=%d diverged across layouts:\n got %s\nwant %s",
						trial, floor, workers, got, first)
				}
				// And that rendering is the dense result filtered to
				// in-range pairs.
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						a, b := fleet[i].Name, fleet[j].Name
						dm, dok := denseRes.Meeting(a, b)
						cm, cok := res.Meeting(a, b)
						if !inRange(ct, i, j) {
							if cok {
								t.Fatalf("trial %d: out-of-range pair %s-%s met at %d", trial, a, b, cm.Slot)
							}
							continue
						}
						if dok != cok || (dok && dm != cm) {
							t.Fatalf("trial %d: in-range pair %s-%s dense=(%v,%v) contact=(%v,%v)",
								trial, a, b, dm, dok, cm, cok)
						}
					}
				}
			}
		}
	}
}

// TestSparseRouteObserved pins the routing observability: a contact
// engine with CSR pair state reports RouteSparse from the joint entry
// point, and the serial reference path reports RouteSerial.
func TestSparseRouteObserved(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	fleet := jointTestFleet(t, rng, 24)
	ct := randomTopology(rng, 24, 4, 3, 1)
	prev := SetSparseStateFloor(0)
	eng, err := NewEngineContact(fleet, ct)
	SetSparseStateFloor(prev)
	if err != nil {
		t.Fatal(err)
	}
	if r := eng.LastRoute(); r != RouteNone {
		t.Fatalf("fresh engine LastRoute = %v, want none", r)
	}
	eng.RunJointParallelEnv(800, 2, nil)
	if r := eng.LastRoute(); r != RouteSparse {
		t.Fatalf("joint run on CSR contact engine routed %v, want sparse", r)
	}
	eng.RunEnv(800, nil)
	if r := eng.LastRoute(); r != RouteSerial {
		t.Fatalf("serial run routed %v, want serial", r)
	}
}

// TestPostingCapBoundaryRouting is the regression test for the silent
// 4,096-agent cliff: a fleet exactly at schedule.MaxPostingMembers must
// route through the register-resident posting scan, and one agent past
// it must route through the wide scan — not silently fall back to the
// occupancy path — with the meeting set correct on both sides of the
// boundary.
func TestPostingCapBoundaryRouting(t *testing.T) {
	if testing.Short() {
		t.Skip("builds 4k-agent engines")
	}
	s := mustCyclic(t, []int{1, 2})
	for _, tc := range []struct {
		agents int
		want   Route
		kind   scanKind
	}{
		{4096, RouteInverted, scanInverted},
		{4097, RouteInvertedWide, scanInvertedWide},
	} {
		fleet := make([]Agent, tc.agents)
		for i := range fleet {
			fleet[i] = Agent{Name: fmt.Sprintf("a%05d", i), Sched: s}
		}
		eng, err := NewEngine(fleet)
		if err != nil {
			t.Fatal(err)
		}
		if k := eng.scanKindFor(64); k != tc.kind {
			t.Fatalf("agents=%d scanKindFor = %v, want %v", tc.agents, k, tc.kind)
		}
		res := eng.RunJointParallelEnv(64, 2, nil)
		if r := eng.LastRoute(); r != tc.want {
			t.Fatalf("agents=%d routed %v, want %v", tc.agents, r, tc.want)
		}
		// Identical constant schedules: every pair meets at its mutual
		// wake slot, so the meeting count is the full pair count.
		if got, want := res.MetCount(), tc.agents*(tc.agents-1)/2; got != want {
			t.Fatalf("agents=%d met %d pairs, want %d", tc.agents, got, want)
		}
	}
}

// TestContactPairSpaceIndex exercises the pair-space index/forEach
// contract directly on both layouts: forEach visits slots in ascending
// order, index agrees with forEach, and out-of-range pairs index to -1.
func TestContactPairSpaceIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	fleet := jointTestFleet(t, rng, 32)
	ct := randomTopology(rng, 32, 4, 4, 0.9)
	for _, floor := range []int{0, 1 << 30} {
		prev := SetSparseStateFloor(floor)
		eng, err := NewEngineContact(fleet, ct)
		SetSparseStateFloor(prev)
		if err != nil {
			t.Fatal(err)
		}
		ps := eng.ps
		last := -1
		slots := 0
		ps.forEach(func(p, i, j int) {
			if p <= last {
				t.Fatalf("floor=%d forEach out of order: %d after %d", floor, p, last)
			}
			last = p
			slots++
			// The triangular layout keeps slots for out-of-range pairs
			// (index filters them to -1); in-range pairs must agree.
			if got := ps.index(i, j); eng.topo.inRange2(i, j) && got != p {
				t.Fatalf("floor=%d index(%d,%d) = %d, forEach slot %d", floor, i, j, got, p)
			}
		})
		if floor == 0 {
			if slots != ps.slots || slots != eng.Edges() {
				t.Fatalf("CSR layout visited %d slots, ps.slots=%d edges=%d", slots, ps.slots, eng.Edges())
			}
		}
		// Out-of-range pairs (engine ids) must index to -1 under both
		// layouts.
		for i := 0; i < 32; i++ {
			for j := i + 1; j < 32; j++ {
				if !eng.topo.inRange2(i, j) {
					if p := ps.index(i, j); p != -1 {
						t.Fatalf("floor=%d out-of-range pair (%d,%d) indexed to %d", floor, i, j, p)
					}
				}
			}
		}
	}
}

// TestMeetablePairsContact checks the O(edges) meetable counting walk
// against the quadratic loop's answer on the same engine.
func TestMeetablePairsContact(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	fleet := jointTestFleet(t, rng, 36)
	ct := randomTopology(rng, 36, 5, 4, 1)
	eng, err := NewEngineContact(fleet, ct)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 1500
	want := 0
	for i := 0; i < 36; i++ {
		for j := i + 1; j < 36; j++ {
			if eng.pairMeetable(i, j, horizon) {
				want++
			}
		}
	}
	if got := eng.meetablePairs(horizon); got != want {
		t.Fatalf("meetablePairs = %d, quadratic recount = %d", got, want)
	}
	if eng.meetablePairs(horizon) != want {
		t.Fatal("cached meetablePairs diverged")
	}
}
