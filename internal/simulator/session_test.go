package simulator

import (
	"fmt"
	"reflect"
	"testing"

	"rendezvous/internal/tablecache"
)

// sessionFleet builds a fleet of small-period cyclic hoppers with
// overlapping channel sets — compilable schedules, so the first run
// pays table builds and every later run should ride the caches.
func sessionFleet(t *testing.T, agents int) []Agent {
	t.Helper()
	fleet := make([]Agent, agents)
	for i := range fleet {
		seq := []int{1 + i%7, 2 + (i*3)%11, 1 + (i*5)%13}
		fleet[i] = Agent{Name: fmt.Sprintf("s%02d", i), Sched: mustCyclic(t, seq)}
	}
	return fleet
}

// TestSessionSteadyStateAllocs pins the tentpole's amortization claim:
// once an engine and session are warm, a steady-state re-run allocates
// at most 1% of what a cold engine-per-run loop allocates — the result
// arrays, pair state, scratch pools and hop tables all survive.
func TestSessionSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations; the plain build enforces this gate")
	}
	agents := sessionFleet(t, 32)
	const horizon = 4096
	defer simRestoreCache(t)()

	var sink int
	firstRun := testing.AllocsPerRun(5, func() {
		// A fresh private cache per iteration keeps this the honest
		// cold path: every engine rebuilds its tables from nothing.
		SetTableCache(tablecache.New(tablecache.DefaultBudget))
		eng, err := NewEngine(agents)
		if err != nil {
			t.Fatal(err)
		}
		sink += eng.RunEnv(horizon, nil).MetCount()
		eng.Close()
	})

	SetTableCache(tablecache.New(tablecache.DefaultBudget))
	eng, err := NewEngine(agents)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sess := eng.Session()
	sink += sess.Run(horizon).MetCount() // warm tables, pools, result
	steady := testing.AllocsPerRun(20, func() {
		sess.Reset()
		sink += sess.Run(horizon).MetCount()
	})

	limit := firstRun / 100
	if limit < 1 {
		limit = 1
	}
	if steady > limit {
		t.Fatalf("steady-state session run allocates %.0f objects/op, want <= %.0f (1%% of first-run %.0f)",
			steady, limit, firstRun)
	}
	if sink == 0 {
		t.Fatal("fleet never met — the runs measured nothing")
	}
}

// TestSessionCacheBudgetIndependence is the budget-is-bookkeeping
// invariant: the same fleet run under a thrashing 1-byte cache, with
// caching disabled outright, and under a normal budget must produce
// identical meetings. Cached tables are immutable, so eviction pressure
// may only cost time, never change a result.
func TestSessionCacheBudgetIndependence(t *testing.T) {
	agents := sessionFleet(t, 24)
	const horizon = 4096
	defer simRestoreCache(t)()

	run := func(c *tablecache.Cache) []Meeting {
		SetTableCache(c)
		eng, err := NewEngine(agents)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		sess := eng.Session()
		defer sess.Close()
		return sess.Run(horizon).Meetings()
	}

	want := run(tablecache.New(tablecache.DefaultBudget))
	if len(want) == 0 {
		t.Fatal("fleet never met — budgets compared nothing")
	}
	for _, tc := range []struct {
		name  string
		cache *tablecache.Cache
	}{
		{"budget-1", tablecache.New(1)},
		{"disabled", nil},
	} {
		if got := run(tc.cache); !reflect.DeepEqual(want, got) {
			t.Errorf("%s: meetings diverge from normal-budget run (%d vs %d)", tc.name, len(got), len(want))
		}
	}
}

// prefixFleet builds agents whose cyclic periods exceed twice every
// horizon the test runs, so no schedule compiles and every run goes
// through the horizon-prefix table path — the one whose cache pins are
// horizon-keyed.
func prefixFleet(t *testing.T, agents, period int) []Agent {
	t.Helper()
	fleet := make([]Agent, agents)
	for i := range fleet {
		seq := make([]int, period)
		for s := range seq {
			seq[s] = 1 + (s*(i+2)+i)%17
		}
		fleet[i] = Agent{Name: fmt.Sprintf("p%02d", i), Sched: mustCyclic(t, seq)}
	}
	return fleet
}

// TestSessionShrinkThenGrowHorizon pins the Result.reset contract:
// reset clears only the met bitset and count, leaving slot/channel/ttr
// populated from the previous (possibly much longer) run, so every
// reader must guard on the met bit. A session run at a large horizon,
// then re-run at a small one, then grown again must agree exactly —
// meetings, met counts, and per-pair misses — with fresh single-use
// engines at each horizon. A reader that ever consulted a stale
// slot/channel/ttr entry (recorded beyond the shrunken horizon) would
// diverge here.
func TestSessionShrinkThenGrowHorizon(t *testing.T) {
	defer simRestoreCache(t)()
	agents := sessionFleet(t, 24)
	// Churn makes pair eligibility horizon-dependent, so the meetable
	// set itself changes as the horizon moves.
	for i := range agents {
		agents[i].Wake = (i * 37) % 600
		if i%3 == 0 {
			agents[i].Leave = agents[i].Wake + 900
		}
	}

	eng, err := NewEngine(agents)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sess := eng.Session()
	defer sess.Close()

	check := func(horizon int) {
		t.Helper()
		got := sess.Run(horizon)
		fresh, err := NewEngine(agents)
		if err != nil {
			t.Fatal(err)
		}
		defer fresh.Close()
		want := fresh.Run(horizon)
		if got.MetCount() != want.MetCount() {
			t.Fatalf("horizon %d: session met %d pairs, fresh engine %d", horizon, got.MetCount(), want.MetCount())
		}
		if !reflect.DeepEqual(got.Meetings(), want.Meetings()) {
			t.Fatalf("horizon %d: session meetings diverge from fresh engine", horizon)
		}
		// Per-pair misses: a stale met-adjacent entry would surface as a
		// phantom meeting for a pair the fresh run reports unmet.
		for i := range agents {
			for j := i + 1; j < len(agents); j++ {
				gm, gok := got.Meeting(agents[i].Name, agents[j].Name)
				wm, wok := want.Meeting(agents[i].Name, agents[j].Name)
				if gok != wok || gm != wm {
					t.Fatalf("horizon %d: pair %s-%s: session (%v,%v) vs fresh (%v,%v)",
						horizon, agents[i].Name, agents[j].Name, gm, gok, wm, wok)
				}
			}
		}
	}

	// Large first run populates slot/channel/ttr with late meetings;
	// the shrink must not resurrect any of them, and the grow must
	// rediscover them from scratch.
	for _, horizon := range []int{16384, 1024, 256, 4096, 16384} {
		check(horizon)
	}
}

// TestEngineCloseThenRunRepins pins Close's reuse contract: a run
// issued after Close may borrow fresh tables from the cache (here,
// prefix tables for a horizon the engine has not seen); those pins are
// re-tracked on the engine and the next Close releases them — no pin
// survives the last Close, at any call order.
func TestEngineCloseThenRunRepins(t *testing.T) {
	cache := tablecache.New(tablecache.DefaultBudget)
	prev := SetTableCache(cache)
	defer SetTableCache(prev)

	eng, err := NewEngine(prefixFleet(t, 6, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Run(512).MetCount() == 0 {
		t.Fatal("fleet never met — nothing exercised")
	}
	if s := cache.Stats(); s.Pinned == 0 {
		t.Fatalf("first run pinned nothing (stats %+v) — fleet does not exercise the cache", s)
	}
	eng.Close()
	if s := cache.Stats(); s.Pinned != 0 || s.Refs != 0 {
		t.Fatalf("pins survive Close: %+v", s)
	}

	// Run after Close at a new horizon: borrows and pins anew.
	eng.Run(768)
	if s := cache.Stats(); s.Pinned == 0 {
		t.Fatalf("run after Close did not re-track its pins: %+v", s)
	}
	eng.Close()
	if s := cache.Stats(); s.Pinned != 0 || s.Refs != 0 {
		t.Fatalf("re-tracked pins survive the second Close: %+v", s)
	}
}

// TestPrefixPinsReleasedOnHorizonChange pins the long-running-caller
// fix: the horizon-prefix table set is horizon-keyed, so an engine
// serving many horizons must release each discarded set's pins as it
// goes. Before the fix every horizon leaked its predecessor's pins
// until Close, growing the cache past any budget.
func TestPrefixPinsReleasedOnHorizonChange(t *testing.T) {
	cache := tablecache.New(tablecache.DefaultBudget)
	prev := SetTableCache(cache)
	defer SetTableCache(prev)

	const agents = 6
	eng, err := NewEngine(prefixFleet(t, agents, 5000))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sess := eng.Session()

	var after []int64
	for _, horizon := range []int{256, 512, 768, 1024, 1280, 1536} {
		sess.Run(horizon)
		after = append(after, cache.Stats().Refs)
	}
	// Every horizon pins exactly one prefix table per agent; discarding
	// a horizon's set must drop its pins, so the outstanding count stays
	// flat instead of climbing by `agents` per horizon.
	for i, refs := range after {
		if refs != after[0] {
			t.Fatalf("outstanding pins climbed across horizons: %v (leaked prefix pins)", after)
		}
		if i == 0 && refs != agents {
			t.Fatalf("first horizon pinned %d tables, want %d (one prefix table per agent)", refs, agents)
		}
	}
}

// simRestoreCache swaps the process cache out and returns a func
// restoring it, so cache-injecting tests cannot leak state.
func simRestoreCache(t *testing.T) func() {
	t.Helper()
	prev := SetTableCache(tablecache.New(tablecache.DefaultBudget))
	return func() { SetTableCache(prev) }
}
