package simulator

import (
	"fmt"
	"reflect"
	"testing"

	"rendezvous/internal/tablecache"
)

// sessionFleet builds a fleet of small-period cyclic hoppers with
// overlapping channel sets — compilable schedules, so the first run
// pays table builds and every later run should ride the caches.
func sessionFleet(t *testing.T, agents int) []Agent {
	t.Helper()
	fleet := make([]Agent, agents)
	for i := range fleet {
		seq := []int{1 + i%7, 2 + (i*3)%11, 1 + (i*5)%13}
		fleet[i] = Agent{Name: fmt.Sprintf("s%02d", i), Sched: mustCyclic(t, seq)}
	}
	return fleet
}

// TestSessionSteadyStateAllocs pins the tentpole's amortization claim:
// once an engine and session are warm, a steady-state re-run allocates
// at most 1% of what a cold engine-per-run loop allocates — the result
// arrays, pair state, scratch pools and hop tables all survive.
func TestSessionSteadyStateAllocs(t *testing.T) {
	agents := sessionFleet(t, 32)
	const horizon = 4096
	defer simRestoreCache(t)()

	var sink int
	firstRun := testing.AllocsPerRun(5, func() {
		// A fresh private cache per iteration keeps this the honest
		// cold path: every engine rebuilds its tables from nothing.
		SetTableCache(tablecache.New(tablecache.DefaultBudget))
		eng, err := NewEngine(agents)
		if err != nil {
			t.Fatal(err)
		}
		sink += eng.RunEnv(horizon, nil).MetCount()
		eng.Close()
	})

	SetTableCache(tablecache.New(tablecache.DefaultBudget))
	eng, err := NewEngine(agents)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sess := eng.Session()
	sink += sess.Run(horizon).MetCount() // warm tables, pools, result
	steady := testing.AllocsPerRun(20, func() {
		sess.Reset()
		sink += sess.Run(horizon).MetCount()
	})

	limit := firstRun / 100
	if limit < 1 {
		limit = 1
	}
	if steady > limit {
		t.Fatalf("steady-state session run allocates %.0f objects/op, want <= %.0f (1%% of first-run %.0f)",
			steady, limit, firstRun)
	}
	if sink == 0 {
		t.Fatal("fleet never met — the runs measured nothing")
	}
}

// TestSessionCacheBudgetIndependence is the budget-is-bookkeeping
// invariant: the same fleet run under a thrashing 1-byte cache, with
// caching disabled outright, and under a normal budget must produce
// identical meetings. Cached tables are immutable, so eviction pressure
// may only cost time, never change a result.
func TestSessionCacheBudgetIndependence(t *testing.T) {
	agents := sessionFleet(t, 24)
	const horizon = 4096
	defer simRestoreCache(t)()

	run := func(c *tablecache.Cache) []Meeting {
		SetTableCache(c)
		eng, err := NewEngine(agents)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		sess := eng.Session()
		defer sess.Close()
		return sess.Run(horizon).Meetings()
	}

	want := run(tablecache.New(tablecache.DefaultBudget))
	if len(want) == 0 {
		t.Fatal("fleet never met — budgets compared nothing")
	}
	for _, tc := range []struct {
		name  string
		cache *tablecache.Cache
	}{
		{"budget-1", tablecache.New(1)},
		{"disabled", nil},
	} {
		if got := run(tc.cache); !reflect.DeepEqual(want, got) {
			t.Errorf("%s: meetings diverge from normal-budget run (%d vs %d)", tc.name, len(got), len(want))
		}
	}
}

// simRestoreCache swaps the process cache out and returns a func
// restoring it, so cache-injecting tests cannot leak state.
func simRestoreCache(t *testing.T) func() {
	t.Helper()
	prev := SetTableCache(tablecache.New(tablecache.DefaultBudget))
	return func() { SetTableCache(prev) }
}
