package simulator

import "sync/atomic"

// Canceler is the cooperative stop seam for a run: fire Cancel from any
// goroutine and every scan kernel of the run observing it — pairwise,
// sharded joint, inverted, contact-sparse — stops at its next
// block-window boundary. The check discipline is exactly one poll per
// 256-slot block per worker (plus one per window claim), so an
// uncancelled run pays a handful of atomic loads per scan, nothing per
// slot.
//
// A cancelled run returns a partial Result: some subset of the true
// first meetings (every hit it did record is exact — kernels record
// only genuine first meetings — but pairs may be missing and, on
// multi-worker runs, which subset depends on scheduling). What is
// guaranteed, and what the cancellation proptest clause enforces, is
// the reuse contract: cancellation leaves every pooled scratch and
// cache pin in its normal end-of-run state, and a Session.Reset
// followed by a re-run is byte-identical to a fresh engine's run.
//
// A Canceler is one-shot: once fired it stays fired, and every run
// observing it stops immediately. Use a fresh Canceler per run (or per
// retry); the zero value is ready to use, and a nil *Canceler is valid
// everywhere and never fires.
type Canceler struct {
	flag atomic.Bool
	// armed/budget implement CancelAfterPolls, the deterministic
	// mid-scan trigger the white-box tests and the proptest clause use.
	armed  atomic.Bool
	budget atomic.Int64
}

// Cancel requests the stop. Safe from any goroutine, idempotent.
func (c *Canceler) Cancel() {
	if c != nil {
		c.flag.Store(true)
	}
}

// Canceled reports whether the stop has been requested. A cheap single
// atomic load — callers outside the kernels (window-claim loops, the
// serve layer's post-run status check) use this rather than poll so the
// CancelAfterPolls budget counts only block-boundary checks.
func (c *Canceler) Canceled() bool {
	return c != nil && c.flag.Load()
}

// CancelAfterPolls arms the canceler to fire on the n-th block-boundary
// check instead of an external event: n=1 fires at the first check
// (before any slot is scanned), huge n never fires. On single-worker
// runs the poll sequence is deterministic, which is how the white-box
// boundary tests and the proptest clause cancel at an exact window; on
// multi-worker runs the firing poll is scheduling-dependent, but every
// guarantee a cancelled run makes is independent of where it stopped.
func (c *Canceler) CancelAfterPolls(n int64) {
	c.budget.Store(n)
	c.armed.Store(true)
}

// poll is the per-block check the scan kernels make: true once the run
// should stop. Nil-safe so un-cancellable runs thread a nil receiver
// through the same code path.
func (c *Canceler) poll() bool {
	if c == nil {
		return false
	}
	if c.flag.Load() {
		return true
	}
	if c.armed.Load() && c.budget.Add(-1) <= 0 {
		c.flag.Store(true)
		return true
	}
	return false
}
