package simulator

import (
	"testing"

	"rendezvous/internal/schedule"
)

func TestAlignWakeShiftsClock(t *testing.T) {
	inner, err := schedule.NewCyclic([]int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	a := AlignWake(inner, 3)
	// Local slot 0 must see global slot 3.
	if got := a.Channel(0); got != 4 {
		t.Fatalf("Channel(0) = %d, want 4", got)
	}
	if got := a.Channel(1); got != 1 {
		t.Fatalf("Channel(1) = %d, want 1", got)
	}
	if a.Period() != inner.Period() {
		t.Errorf("Period = %d", a.Period())
	}
	chans := a.Channels()
	if len(chans) != 4 {
		t.Errorf("Channels = %v", chans)
	}
}

func TestAlignWakeInEngineEquivalence(t *testing.T) {
	// Two agents with the SAME global-clock schedule must meet the moment
	// both are awake, regardless of wake offsets, when aligned.
	global, err := schedule.NewCyclic([]int{5, 7, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine([]Agent{
		{Name: "early", Sched: AlignWake(global, 2), Wake: 2},
		{Name: "late", Sched: AlignWake(global, 9), Wake: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(20)
	m, ok := res.Meeting("early", "late")
	if !ok {
		t.Fatal("aligned agents did not meet")
	}
	if m.TTR != 0 {
		t.Fatalf("aligned identical global schedules must meet instantly, TTR = %d", m.TTR)
	}
}
