package simulator

import (
	"fmt"
	"math/rand"
	"testing"

	"rendezvous/internal/baselines"
	"rendezvous/internal/schedule"
)

func mustCyclic(t *testing.T, seq []int) schedule.Schedule {
	t.Helper()
	c, err := schedule.NewCyclic(seq)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPairTTRBasic(t *testing.T) {
	a := mustCyclic(t, []int{1, 2, 3})
	b := mustCyclic(t, []int{3, 3, 3})
	// a wakes at 0, b at 0: a hops 3 at slot 2.
	got, ok := PairTTR(a, b, 0, 0, 10)
	if !ok || got != 2 {
		t.Fatalf("PairTTR = %d,%v want 2,true", got, ok)
	}
	// b wakes at 1: global slot t, a plays t%3+..., b always 3.
	// t=1: a plays 2, t=2: a plays 3 -> TTR measured from slot 1 is 1.
	got, ok = PairTTR(a, b, 0, 1, 10)
	if !ok || got != 1 {
		t.Fatalf("PairTTR with offset = %d,%v want 1,true", got, ok)
	}
	// Disjoint channels never meet.
	c := mustCyclic(t, []int{9})
	if _, ok := PairTTR(a, c, 0, 0, 100); ok {
		t.Fatal("disjoint schedules met")
	}
}

func TestPairTTRSymmetricInWakeOrder(t *testing.T) {
	a := mustCyclic(t, []int{1, 2, 1, 4})
	b := mustCyclic(t, []int{4, 2})
	t1, ok1 := PairTTR(a, b, 0, 3, 50)
	t2, ok2 := PairTTR(b, a, 3, 0, 50)
	if ok1 != ok2 || t1 != t2 {
		t.Fatalf("PairTTR not symmetric: (%d,%v) vs (%d,%v)", t1, ok1, t2, ok2)
	}
}

func TestEngineMatchesPairTTR(t *testing.T) {
	// The multi-agent engine must agree with the direct pair scan.
	rng := rand.New(rand.NewSource(5))
	const n = 16
	for trial := 0; trial < 50; trial++ {
		w := RandomOverlappingPair(rng, n, 1+rng.Intn(4), 1+rng.Intn(4))
		sa, err := schedule.NewGeneral(n, w.A)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := schedule.NewGeneral(n, w.B)
		if err != nil {
			t.Fatal(err)
		}
		wakeA, wakeB := rng.Intn(50), rng.Intn(50)
		eng, err := NewEngine([]Agent{
			{Name: "a", Sched: sa, Wake: wakeA},
			{Name: "b", Sched: sb, Wake: wakeB},
		})
		if err != nil {
			t.Fatal(err)
		}
		horizon := 50 + sa.RendezvousBound(len(w.B))
		res := eng.Run(horizon)
		m, ok := res.Meeting("a", "b")
		want, wantOK := PairTTR(sa, sb, wakeA, wakeB, horizon)
		if ok != wantOK {
			t.Fatalf("engine ok=%v pair ok=%v for %+v", ok, wantOK, w)
		}
		if ok && m.TTR != want {
			t.Fatalf("engine TTR %d != pair TTR %d for %+v", m.TTR, want, w)
		}
	}
}

func TestEngineMultiAgent(t *testing.T) {
	// Three agents with a common channel: all pairs must meet, and the
	// meeting metadata must be consistent.
	const n = 8
	mk := func(set []int) schedule.Schedule {
		s, err := schedule.NewGeneral(n, set)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	agents := []Agent{
		{Name: "alice", Sched: mk([]int{1, 3, 5}), Wake: 0},
		{Name: "bob", Sched: mk([]int{3, 4}), Wake: 7},
		{Name: "carol", Sched: mk([]int{3, 8}), Wake: 13},
	}
	eng, err := NewEngine(agents)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(20000)
	if !res.AllMet(agents) {
		t.Fatal("not all overlapping pairs met")
	}
	for _, m := range res.Meetings() {
		if m.TTR < 0 || m.Slot < 0 {
			t.Fatalf("negative meeting data: %+v", m)
		}
		if m.A >= m.B {
			t.Fatalf("meeting keys unordered: %+v", m)
		}
	}
	if len(res.Meetings()) != 3 {
		t.Fatalf("expected 3 meetings, got %d", len(res.Meetings()))
	}
}

func TestEngineSleepersNeverMeet(t *testing.T) {
	a := mustCyclic(t, []int{1})
	b := mustCyclic(t, []int{1})
	eng, err := NewEngine([]Agent{
		{Name: "a", Sched: a, Wake: 0},
		{Name: "b", Sched: b, Wake: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(1000) // b never wakes inside the horizon
	if _, ok := res.Meeting("a", "b"); ok {
		t.Fatal("sleeping agent met someone")
	}
}

func TestEngineValidation(t *testing.T) {
	s := mustCyclic(t, []int{1})
	cases := map[string][]Agent{
		"too-few":    {{Name: "a", Sched: s}},
		"dup-name":   {{Name: "a", Sched: s}, {Name: "a", Sched: s}},
		"empty-name": {{Name: "", Sched: s}, {Name: "b", Sched: s}},
		"neg-wake":   {{Name: "a", Sched: s, Wake: -1}, {Name: "b", Sched: s}},
		"nil-sched":  {{Name: "a", Sched: nil}, {Name: "b", Sched: s}},
	}
	for name, agents := range cases {
		if _, err := NewEngine(agents); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSweepOffsetsStats(t *testing.T) {
	a := mustCyclic(t, []int{1, 2})
	b := mustCyclic(t, []int{2, 1})
	// offset 0: meet? a=1,b=2; slot1 a=2,b=1; never meet -> failure.
	// offset 1: b local s, a at s+1: s=0: a(1)=2, b(0)=2 meet at 0.
	st := SweepOffsets(a, b, []int{0, 1}, 10)
	if st.Samples != 2 || st.Failures != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Max != 0 || st.Mean() != 0 {
		t.Fatalf("unexpected max/mean: %+v", st)
	}
}

func TestMaxTTRExhaustiveVsSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 8
	a, err := schedule.NewGeneral(n, []int{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := schedule.NewGeneral(n, []int{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	horizon := a.RendezvousBound(2)
	ex := MaxTTR(rng, a, b, horizon, 1<<20, 0)
	if ex.Failures > 0 {
		t.Fatalf("exhaustive sweep saw failures: %+v", ex)
	}
	sam := MaxTTR(rng, a, b, horizon, 1, 200)
	if sam.Failures > 0 {
		t.Fatalf("sampled sweep saw failures: %+v", sam)
	}
	if sam.Max > ex.Max {
		t.Fatalf("sampled max %d exceeds exhaustive max %d", sam.Max, ex.Max)
	}
}

func TestRandomBaselineUnderSweep(t *testing.T) {
	// Integration: the random strawman meets eventually at every offset.
	a, err := baselines.NewRandom(16, []int{1, 2, 9}, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := baselines.NewRandom(16, []int{9, 12}, 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	st := SweepOffsets(a, b, ExhaustiveOffsets(500), 5000)
	if st.Failures > 0 {
		t.Fatalf("random baseline failed %d/%d offsets", st.Failures, st.Samples)
	}
}

func TestWorkloadGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(60)
		ka := 1 + rng.Intn(min(6, n))
		kb := 1 + rng.Intn(min(6, n))
		w := RandomOverlappingPair(rng, n, ka, kb)
		if len(w.A) != ka || len(w.B) != kb {
			t.Fatalf("sizes: %+v want ka=%d kb=%d", w, ka, kb)
		}
		if !sortedIntersect(w.A, w.B) {
			t.Fatalf("no overlap: %+v", w)
		}
		checkInRange(t, n, w.A)
		checkInRange(t, n, w.B)

		m := 1 + rng.Intn(min(ka, kb))
		if ka+kb-m <= n {
			w2 := RandomPairWithIntersection(rng, n, ka, kb, m)
			if got := intersectionSize(w2.A, w2.B); got != m {
				t.Fatalf("intersection %d, want %d: %+v", got, m, w2)
			}
		}
	}
}

func TestAdversarialPairsValid(t *testing.T) {
	for _, n := range []int{4, 8, 64, 1024} {
		for _, w := range AdversarialPairs(n) {
			if !sortedIntersect(w.A, w.B) {
				t.Fatalf("n=%d: adversarial pair does not overlap: %+v", n, w)
			}
			checkInRange(t, n, w.A)
			checkInRange(t, n, w.B)
		}
	}
}

func TestFullSet(t *testing.T) {
	got := FullSet(4)
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FullSet(4) = %v", got)
		}
	}
}

func checkInRange(t *testing.T, n int, set []int) {
	t.Helper()
	seen := map[int]bool{}
	for _, c := range set {
		if c < 1 || c > n {
			t.Fatalf("channel %d outside [1,%d]", c, n)
		}
		if seen[c] {
			t.Fatalf("duplicate channel %d in %v", c, set)
		}
		seen[c] = true
	}
}

func intersectionSize(a, b []int) int {
	in := map[int]bool{}
	for _, x := range a {
		in[x] = true
	}
	count := 0
	for _, y := range b {
		if in[y] {
			count++
		}
	}
	return count
}

// TestRunParallelMatchesRun: the pairwise decomposition must reproduce
// the joint simulation exactly, at every worker count.
func TestRunParallelMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var agents []Agent
	for i := 0; i < 6; i++ {
		w := RandomOverlappingPair(rng, 64, 3, 3)
		s, err := schedule.NewAsync(64, w.A)
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, Agent{Name: fmt.Sprintf("a%d", i), Sched: s, Wake: rng.Intn(300)})
	}
	// One agent disjoint from most others exercises the skip path.
	eng, err := NewEngine(agents)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 20_000
	want := eng.Run(horizon)
	for _, workers := range []int{0, 1, 2, 8} {
		got := eng.RunParallel(horizon, workers)
		if len(got.Meetings()) != len(want.Meetings()) {
			t.Fatalf("workers=%d: %d meetings, want %d", workers, len(got.Meetings()), len(want.Meetings()))
		}
		for _, m := range want.Meetings() {
			g, ok := got.Meeting(m.A, m.B)
			if !ok || g != m {
				t.Fatalf("workers=%d: meeting %v != %v (ok=%v)", workers, g, m, ok)
			}
		}
	}
}

// TestRunParallelDynamicSchedules: the disjoint-pair prune must use the
// complete hop set, not the steady-state Channels(). Two Dynamic agents
// share channel 5 only in their first phase; their final-phase sets are
// disjoint, so a Channels()-based prune would wrongly drop the pair.
func TestRunParallelDynamicSchedules(t *testing.T) {
	da, err := schedule.NewDynamic(8, []schedule.Phase{
		{FromSlot: 0, Channels: []int{5}},
		{FromSlot: 1000, Channels: []int{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := schedule.NewDynamic(8, []schedule.Phase{
		{FromSlot: 0, Channels: []int{5}},
		{FromSlot: 1000, Channels: []int{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine([]Agent{
		{Name: "a", Sched: da},
		{Name: "b", Sched: db},
	})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 2000
	want := eng.Run(horizon)
	if len(want.Meetings()) != 1 {
		t.Fatalf("joint engine should record the phase-0 meeting, got %d", len(want.Meetings()))
	}
	for _, workers := range []int{1, 4} {
		got := eng.RunParallel(horizon, workers)
		if len(got.Meetings()) != 1 {
			t.Fatalf("workers=%d: pairwise engine pruned a pair that meets in an early phase (%d meetings)",
				workers, len(got.Meetings()))
		}
		if got.Meetings()[0] != want.Meetings()[0] {
			t.Fatalf("workers=%d: meeting mismatch: %+v vs %+v", workers, got.Meetings()[0], want.Meetings()[0])
		}
	}
	// AllMet shares the prune helper and must consider the pair too.
	if !want.AllMet(eng.agents) {
		t.Error("AllMet should report the dynamic pair as met")
	}
}
