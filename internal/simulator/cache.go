package simulator

import (
	"strconv"
	"sync"
	"sync/atomic"

	"rendezvous/internal/tablecache"
)

// The engine side of the shared table cache (internal/tablecache).
// Every NewEngine captures the current process-wide cache; compiled hop
// tables, dense-id tables, and horizon prefix tables are then borrowed
// from it instead of rebuilt per engine, and Close returns the pins
// when the engine is done. Schedules without a cache key behave exactly
// as before — built locally, owned by the engine.

// tableCacheState holds the cache new engines capture. Initialized
// lazily to tablecache.Shared() so the env-var budget override is read
// exactly once, at first engine construction.
var tableCacheState struct {
	mu   sync.Mutex
	c    *tablecache.Cache
	init bool
}

func currentTableCache() *tablecache.Cache {
	tableCacheState.mu.Lock()
	defer tableCacheState.mu.Unlock()
	if !tableCacheState.init {
		tableCacheState.c = tablecache.Shared()
		tableCacheState.init = true
	}
	return tableCacheState.c
}

// SetTableCache replaces the cache captured by subsequent NewEngine
// calls, returning the previous one. A nil cache disables table sharing
// (every engine builds privately). Existing engines keep the cache they
// were built with. It exists for tests and benchmarks that need an
// isolated or disabled cache; production callers use the shared one.
func SetTableCache(c *tablecache.Cache) (previous *tablecache.Cache) {
	tableCacheState.mu.Lock()
	defer tableCacheState.mu.Unlock()
	if !tableCacheState.init {
		tableCacheState.c = tablecache.Shared()
		tableCacheState.init = true
	}
	previous = tableCacheState.c
	tableCacheState.c = c
	return previous
}

// TableCache returns the cache subsequent NewEngine calls capture (see
// SetTableCache); nil when table sharing is disabled. Long-running
// callers that report cache stats (rvserve) read it so their numbers
// describe the cache their engines actually use.
func TableCache() *tablecache.Cache {
	return currentTableCache()
}

// prefixBudget caps the memory the engine spends on horizon-prefix
// dense tables (schedule.DensePrefix) for schedules whose period is
// too long to compile: 4 bytes per agent per slot adds up at network
// scale, so fleets over the budget keep the regenerate-per-block
// fallback (softened by the rolling block cache below).
var prefixBudget atomic.Int64

// blockCacheBudget caps the per-engine rolling dense-block cache that
// backs agents with no dense table at all (beacons, huge-period Random
// past the prefix budget). Zero disables it.
var blockCacheBudget atomic.Int64

func init() {
	prefixBudget.Store(64 << 20)
	blockCacheBudget.Store(16 << 20)
}

// SetPrefixBudget sets the horizon-prefix table budget in bytes,
// returning the previous value. It exists for tests and benchmarks that
// need to force the no-table fallback paths.
func SetPrefixBudget(bytes int) (previous int) {
	return int(prefixBudget.Swap(int64(bytes)))
}

// SetBlockCacheBudget sets the rolling block cache budget in bytes (0
// disables), returning the previous value. Engines size their ring from
// the budget at first use.
func SetBlockCacheBudget(bytes int) (previous int) {
	return int(blockCacheBudget.Swap(int64(bytes)))
}

// pinLocked records a cache pin for Close to release. Zero handles
// (uncached artifacts) are dropped — releasing them is a no-op, so
// tracking them would only grow the slice. Caller holds e.mu.
func (e *Engine) pinLocked(h tablecache.Handle) {
	if h != (tablecache.Handle{}) {
		e.handles = append(e.handles, h)
	}
}

// uniKeyLocked returns the engine's universe fingerprint — an FNV-1a
// hash of the sorted hop-set union that scopes dense-table cache keys,
// since dense ids are positions in that union. Caller holds e.mu.
func (e *Engine) uniKeyLocked() string {
	if e.uniKey == "" {
		const (
			offset64 = 14695981039346656037
			prime64  = 1099511628211
		)
		h := uint64(offset64)
		for _, ch := range e.union {
			v := uint64(ch)
			for b := 0; b < 8; b++ {
				h ^= v & 0xff
				h *= prime64
				v >>= 8
			}
		}
		h ^= uint64(len(e.union))
		h *= prime64
		e.uniKey = strconv.FormatUint(h, 36)
	}
	return e.uniKey
}

// releasePrefixPinsLocked releases and forgets the pins backing the
// current horizon-prefix table set. Called when planFor discards the
// set on a horizon change, and by Close. Caller holds e.mu; Release
// only takes the cache's own lock, so the ordering (engine before
// cache) is consistent everywhere.
func (e *Engine) releasePrefixPinsLocked() {
	for _, h := range e.prefixHandles {
		h.Release()
	}
	e.prefixHandles = nil
}

// Close releases the engine's pins on shared cache entries, making them
// evictable. The engine itself remains fully usable — its compiled and
// dense slices keep their references, and any table the cache later
// evicts stays valid (entries are immutable). Close is idempotent, and
// a run issued after Close is not a misuse: any tables such a run
// borrows anew (e.g. prefix tables for a horizon the engine has not
// seen) are re-tracked on the engine, and a later Close releases them
// too — long-running callers may Close at any quiescent point without
// leaking pins (tablecache.Stats.Pinned is the observable).
func (e *Engine) Close() {
	e.mu.Lock()
	hs := e.handles
	e.handles = nil
	e.releasePrefixPinsLocked()
	e.mu.Unlock()
	for _, h := range hs {
		h.Release()
	}
}
