//go:build race

package simulator

// raceEnabled reports whether the race detector is compiled in; the
// steady-state allocation gate skips under it (the race runtime
// allocates on its own schedule, so AllocsPerRun counts are noise
// there — the plain-build run in `make cover` enforces the gate).
const raceEnabled = true
