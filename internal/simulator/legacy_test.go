package simulator

// The map-based joint engine this package shipped before the
// integer-indexed core: string pair keys, map[int][]int occupancy
// rebuilt every slot, no early exit beyond the all-pairs count. It is
// retained test-side as (a) the equivalence oracle for the refactor and
// (b) the baseline of the fleet-scaling benchmarks that pin the
// speedup.

import (
	"fmt"
	"math/rand"
	"testing"

	"rendezvous/internal/schedule"
)

// legacyRun reproduces the original Engine.Run (block mode) over the
// map-based representation.
func legacyRun(agents []Agent, horizon int) map[[2]string]Meeting {
	meetings := make(map[[2]string]Meeting)
	n := len(agents)
	totalPairs := n * (n - 1) / 2
	scheds := make([]schedule.Schedule, n)
	for i := range agents {
		s := agents[i].Sched
		if p := s.Period(); horizon >= 2*p {
			s = schedule.Compile(s)
		}
		scheds[i] = s
	}
	flat := make([]int, n*blockLen)
	bufs := make([][]int, n)
	for i := range bufs {
		bufs[i] = flat[i*blockLen : (i+1)*blockLen]
	}
	occupants := make(map[int][]int)
	for base := 0; base < horizon; base += blockLen {
		if len(meetings) == totalPairs {
			return meetings
		}
		m := min(blockLen, horizon-base)
		for i, a := range agents {
			if a.Wake >= base+m {
				continue
			}
			from := max(0, a.Wake-base)
			schedule.FillBlock(scheds[i], bufs[i][from:m], base+from-a.Wake)
		}
		for off := 0; off < m; off++ {
			t := base + off
			for ch := range occupants {
				delete(occupants, ch)
			}
			for i, a := range agents {
				if t < a.Wake {
					continue
				}
				occupants[bufs[i][off]] = append(occupants[bufs[i][off]], i)
			}
			for ch, idxs := range occupants {
				if len(idxs) < 2 {
					continue
				}
				for x := 0; x < len(idxs); x++ {
					for y := x + 1; y < len(idxs); y++ {
						ai, bj := agents[idxs[x]], agents[idxs[y]]
						key := legacyPairKey(ai.Name, bj.Name)
						if _, done := meetings[key]; done {
							continue
						}
						both := max(ai.Wake, bj.Wake)
						meetings[key] = Meeting{A: key[0], B: key[1], Slot: t, Channel: ch, TTR: t - both}
					}
				}
			}
		}
	}
	return meetings
}

func legacyPairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// benchFleet derives a deterministic fleet of the given size over the
// MULTI population model (n=128, k=4, hub channel).
func benchFleet(tb testing.TB, size int) []Agent {
	tb.Helper()
	rng := rand.New(rand.NewSource(3))
	const n = 128
	agents := make([]Agent, size)
	for i := range agents {
		w := RandomOverlappingPair(rng, n, 4, 4)
		s, err := schedule.NewAsync(n, w.A)
		if err != nil {
			tb.Fatal(err)
		}
		agents[i] = Agent{Name: fmt.Sprintf("a%d", i), Sched: s, Wake: rng.Intn(2000)}
	}
	return agents
}

// TestIndexedEngineMatchesLegacyMap pins the refactor: the integer-
// indexed core must reproduce the historical map-based engine meeting
// for meeting.
func TestIndexedEngineMatchesLegacyMap(t *testing.T) {
	agents := benchFleet(t, 24)
	const horizon = 30_000
	want := legacyRun(agents, horizon)
	eng, err := NewEngine(agents)
	if err != nil {
		t.Fatal(err)
	}
	got := eng.Run(horizon)
	if got.MetCount() != len(want) {
		t.Fatalf("indexed engine found %d meetings, legacy %d", got.MetCount(), len(want))
	}
	for key, m := range want {
		g, ok := got.Meeting(key[0], key[1])
		if !ok || g != m {
			t.Fatalf("pair %v: indexed %+v (ok=%v), legacy %+v", key, g, ok, m)
		}
	}
}

// BenchmarkEngineCore compares the integer-indexed joint engine against
// the historical map-based implementation on growing fleets. This is
// the acceptance benchmark for the fleet-core refactor: indexed must
// beat map from 64 agents up.
func BenchmarkEngineCore(b *testing.B) {
	for _, size := range []int{16, 64, 128} {
		agents := benchFleet(b, size)
		horizon := 20_000
		b.Run(fmt.Sprintf("fleet=%d/indexed", size), func(b *testing.B) {
			eng, err := NewEngine(agents)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := eng.Run(horizon)
				if res.MetCount() == 0 {
					b.Fatal("no meetings")
				}
			}
		})
		b.Run(fmt.Sprintf("fleet=%d/map", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(legacyRun(agents, horizon)) == 0 {
					b.Fatal("no meetings")
				}
			}
		})
	}
}
