package simulator

import (
	"math/rand"
	"testing"
)

// calibrationFleet builds a fleet whose every pair is meetable (shared
// channels, simultaneous wakes), so the meetable count is exactly
// n(n−1)/2 and tests can place it precisely relative to the
// calibration band.
func calibrationFleet(t *testing.T, rng *rand.Rand, agents int) []Agent {
	t.Helper()
	fleet := make([]Agent, agents)
	for i := range fleet {
		seq := []int{1 + rng.Intn(4), 1 + rng.Intn(4), 1 + rng.Intn(4)}
		fleet[i] = Agent{
			Name:  "c" + string(rune('0'+i/100)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10)),
			Sched: mustCyclic(t, seq),
		}
	}
	return fleet
}

// TestSetJointCrossoverPin pins the explicit override: a pinned
// crossover bypasses calibration entirely, routing joint iff the
// meetable count exceeds the pin, with byte-identical Results either
// way.
func TestSetJointCrossoverPin(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	fleet := calibrationFleet(t, rng, 24) // 276 meetable pairs
	eng, err := NewEngine(fleet)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 700
	want := renderMeetings(eng.RunEnv(horizon, nil))

	prev := SetJointCrossover(1)
	defer SetJointCrossover(prev)
	if got := renderMeetings(eng.RunParallelEnv(horizon, 2, nil)); got != want {
		t.Fatalf("pinned-low run diverged: got %s want %s", got, want)
	}
	if r := eng.LastRoute(); r == RoutePairwise || r == RouteNone {
		t.Fatalf("pin=1 with 276 meetable pairs routed %v, want a joint route", r)
	}

	SetJointCrossover(1 << 30)
	if got := renderMeetings(eng.RunParallelEnv(horizon, 2, nil)); got != want {
		t.Fatalf("pinned-high run diverged: got %s want %s", got, want)
	}
	if r := eng.LastRoute(); r != RoutePairwise {
		t.Fatalf("pin=1<<30 routed %v, want pairwise", r)
	}
}

// TestCrossoverCalibrationSequence drives a fleet whose meetable count
// lands inside [autoCrossLo, autoCrossHi] through the ski-rental
// sequence: calRentRuns timed pairwise rents, one joint probe, then a
// sticky verdict — with every run producing the identical Result
// (routing is performance-only).
func TestCrossoverCalibrationSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	fleet := calibrationFleet(t, rng, 128) // 8128 meetable pairs, inside the band
	eng, err := NewEngine(fleet)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 600
	if m := eng.meetablePairs(horizon); m <= autoCrossLo || m > autoCrossHi {
		t.Fatalf("fleet's %d meetable pairs missed the calibration band (%d, %d]", m, autoCrossLo, autoCrossHi)
	}
	if pin := SetJointCrossover(0); pin != 0 {
		defer SetJointCrossover(pin)
	}
	want := renderMeetings(eng.RunEnv(horizon, nil))
	routes := make([]Route, 0, 6)
	for run := 0; run < 6; run++ {
		if got := renderMeetings(eng.RunParallelEnv(horizon, 2, nil)); got != want {
			t.Fatalf("run %d diverged: got %s want %s", run, got, want)
		}
		routes = append(routes, eng.LastRoute())
	}
	for run := 0; run < calRentRuns; run++ {
		if routes[run] != RoutePairwise {
			t.Fatalf("rent run %d routed %v, want pairwise (routes %v)", run, routes[run], routes)
		}
	}
	// The probe takes the joint path; with 128 agents below the
	// inverted floor and multiple workers that is the sharded scan.
	if routes[calRentRuns] != RouteSharded {
		t.Fatalf("probe run routed %v, want sharded (routes %v)", routes[calRentRuns], routes)
	}
	// The verdict is timing-dependent, but it must be sticky: every run
	// after the probe takes the same path, one of the two candidates.
	verdict := routes[calRentRuns+1]
	if verdict != RoutePairwise && verdict != RouteSharded {
		t.Fatalf("post-probe run routed %v (routes %v)", verdict, routes)
	}
	for _, r := range routes[calRentRuns+1:] {
		if r != verdict {
			t.Fatalf("verdict did not stick: routes %v", routes)
		}
	}
}

// TestJointChoiceBandEdges pins the band boundaries: fleets strictly
// below autoCrossLo never calibrate (always pairwise) and fleets above
// autoCrossHi never calibrate (always joint).
func TestJointChoiceBandEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	eng, err := NewEngine(calibrationFleet(t, rng, 8))
	if err != nil {
		t.Fatal(err)
	}
	if pin := SetJointCrossover(0); pin != 0 {
		defer SetJointCrossover(pin)
	}
	if d := eng.jointChoice(autoCrossLo - 1); d != choosePairwise {
		t.Fatalf("below-band choice %v, want pairwise", d)
	}
	if d := eng.jointChoice(autoCrossHi + 1); d != chooseJoint {
		t.Fatalf("above-band choice %v, want joint", d)
	}
	if d := eng.jointChoice(autoCrossLo); d != choosePairwiseTimed {
		t.Fatalf("first banded choice %v, want timed pairwise", d)
	}
}
