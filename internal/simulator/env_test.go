package simulator

import (
	"testing"
)

// evenSlotsBlocked blocks every channel at even slots.
type evenSlotsBlocked struct{}

func (evenSlotsBlocked) Available(ch, t int) bool { return t%2 == 1 }

// channelBlocked blocks one channel at every slot.
type channelBlocked int

func (c channelBlocked) Available(ch, t int) bool { return ch != int(c) }

func TestLeaveValidation(t *testing.T) {
	s := mustCyclic(t, []int{1})
	for name, agents := range map[string][]Agent{
		"leave-before-wake": {{Name: "a", Sched: s, Wake: 10, Leave: 5}, {Name: "b", Sched: s}},
		"leave-at-wake":     {{Name: "a", Sched: s, Wake: 10, Leave: 10}, {Name: "b", Sched: s}},
		"negative-leave":    {{Name: "a", Sched: s, Leave: -3}, {Name: "b", Sched: s}},
	} {
		if _, err := NewEngine(agents); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := NewEngine([]Agent{
		{Name: "a", Sched: s, Wake: 3, Leave: 4}, {Name: "b", Sched: s},
	}); err != nil {
		t.Errorf("valid leave rejected: %v", err)
	}
}

// TestChurnLeaveSuppressesMeetings: an agent that powers off before a
// peer wakes can never meet it, on every engine path.
func TestChurnLeaveSuppressesMeetings(t *testing.T) {
	s := mustCyclic(t, []int{7})
	eng, err := NewEngine([]Agent{
		{Name: "early", Sched: s, Wake: 0, Leave: 10},
		{Name: "late", Sched: s, Wake: 20},
		{Name: "always", Sched: s, Wake: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	check := func(res *Result, label string) {
		t.Helper()
		if _, ok := res.Meeting("early", "late"); ok {
			t.Fatalf("%s: non-coexisting agents met", label)
		}
		m, ok := res.Meeting("early", "always")
		if !ok || m.Slot != 0 {
			t.Fatalf("%s: coexisting pair should meet at slot 0: %+v ok=%v", label, m, ok)
		}
		if m, ok := res.Meeting("late", "always"); !ok || m.Slot != 20 {
			t.Fatalf("%s: late pair should meet at wake: %+v ok=%v", label, m, ok)
		}
		// The early/late pair can never coexist, so it must not block
		// AllMet under churn.
		if !res.AllMet(eng.agents) {
			t.Fatalf("%s: AllMet must ignore pairs with disjoint activity windows", label)
		}
	}
	for _, block := range []bool{true, false} {
		prev := SetBlockEval(block)
		check(eng.Run(100), "joint")
		check(eng.RunParallel(100, 4), "pairwise")
		SetBlockEval(prev)
	}
}

// TestRunEnvNilMatchesRun: a nil environment is exactly the static run.
func TestRunEnvNilMatchesRun(t *testing.T) {
	a := mustCyclic(t, []int{1, 2, 3})
	b := mustCyclic(t, []int{3, 1, 2})
	eng, err := NewEngine([]Agent{
		{Name: "a", Sched: a}, {Name: "b", Sched: b, Wake: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := eng.Run(50).Meetings()
	got := eng.RunEnv(50, nil).Meetings()
	if len(want) != len(got) || (len(want) > 0 && want[0] != got[0]) {
		t.Fatalf("RunEnv(nil) diverged: %v vs %v", got, want)
	}
}

// TestEnvironmentDefersMeetings: an environment that blocks even slots
// must push first meetings to the first odd collision slot, identically
// on the joint and pairwise paths, and an environment blocking the only
// common channel must suppress them entirely.
func TestEnvironmentDefersMeetings(t *testing.T) {
	a := mustCyclic(t, []int{5})
	b := mustCyclic(t, []int{5})
	eng, err := NewEngine([]Agent{
		{Name: "a", Sched: a}, {Name: "b", Sched: b},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, block := range []bool{true, false} {
		prev := SetBlockEval(block)
		for label, res := range map[string]*Result{
			"joint":    eng.RunEnv(100, evenSlotsBlocked{}),
			"pairwise": eng.RunParallelEnv(100, 2, evenSlotsBlocked{}),
		} {
			m, ok := res.Meeting("a", "b")
			if !ok || m.Slot != 1 {
				t.Fatalf("block=%v %s: want first meeting at slot 1, got %+v ok=%v", block, label, m, ok)
			}
		}
		if res := eng.RunEnv(100, channelBlocked(5)); res.MetCount() != 0 {
			t.Fatalf("block=%v: blocked channel still met: %d", block, res.MetCount())
		}
		if res := eng.RunParallelEnv(100, 2, channelBlocked(5)); res.MetCount() != 0 {
			t.Fatalf("block=%v: blocked channel still met (pairwise): %d", block, res.MetCount())
		}
		SetBlockEval(prev)
	}
}

// TestMeetingUnknownNames: lookups for names outside the fleet must
// report no meeting instead of panicking.
func TestMeetingUnknownNames(t *testing.T) {
	s := mustCyclic(t, []int{1})
	eng, err := NewEngine([]Agent{{Name: "a", Sched: s}, {Name: "b", Sched: s}})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(10)
	if _, ok := res.Meeting("a", "zz"); ok {
		t.Fatal("unknown name reported a meeting")
	}
	if _, ok := res.Meeting("a", "a"); ok {
		t.Fatal("self pair reported a meeting")
	}
}

// TestThreeWayCollision: three agents on one channel in one slot record
// all three pairwise meetings.
func TestThreeWayCollision(t *testing.T) {
	s := mustCyclic(t, []int{4})
	eng, err := NewEngine([]Agent{
		{Name: "a", Sched: s}, {Name: "b", Sched: s}, {Name: "c", Sched: s},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(5)
	if res.MetCount() != 3 {
		t.Fatalf("want 3 meetings, got %d", res.MetCount())
	}
	for _, m := range res.Meetings() {
		if m.Slot != 0 || m.Channel != 4 {
			t.Fatalf("unexpected meeting %+v", m)
		}
	}
}
