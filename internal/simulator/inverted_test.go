package simulator

import (
	"math"
	"math/rand"
	"testing"
)

// TestInvertedWordBoundaryFleets pins the posting-word bookkeeping at
// fleet sizes straddling the 64-agent word boundaries: the last word
// partially filled, exactly full, and one agent spilling into a fresh
// word. Each size runs both posting kernels (the register-resident
// narrow scan and the heap-bitset wide scan) across worker counts and
// window widths against the serial block engine.
func TestInvertedWordBoundaryFleets(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, agents := range []int{63, 64, 65, 127, 130} {
		fleet := jointTestFleet(t, rng, agents)
		eng, err := NewEngine(fleet)
		if err != nil {
			t.Fatal(err)
		}
		const horizon = 1800
		for _, env := range []Environment{nil, evenSlotsBlocked{}} {
			want := renderMeetings(eng.RunEnv(horizon, env))
			for _, workers := range []int{1, 3} {
				for _, window := range []int{blockLen, 4 * blockLen} {
					for _, kind := range []scanKind{scanInverted, scanInvertedWide} {
						res := eng.newResult(horizon)
						eng.runJointSharded(res, horizon, workers, window, env, eng.meetablePairs(horizon), kind, nil)
						if got := renderMeetings(res); got != want {
							t.Fatalf("agents=%d env=%v workers=%d window=%d kind=%v diverged:\n got %s\nwant %s",
								agents, env, workers, window, kind, got, want)
						}
					}
				}
			}
		}
	}
}

// TestInvertedCrossoverBoundary drives the public joint entry point
// with the crossover floor placed below, at, above, and far above the
// fleet size: routing through either scan must be invisible in the
// Result.
func TestInvertedCrossoverBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	fleet := jointTestFleet(t, rng, 24)
	eng, err := NewEngine(fleet)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 2000
	for _, env := range []Environment{nil, evenSlotsBlocked{}} {
		want := renderMeetings(eng.RunEnv(horizon, env))
		for _, floor := range []int{0, len(fleet), len(fleet) + 1, 1 << 30} {
			prev := SetInvertedFloor(floor)
			got := renderMeetings(eng.RunJointParallelEnv(horizon, 4, env))
			SetInvertedFloor(prev)
			if got != want {
				t.Fatalf("env=%v floor=%d diverged:\n got %s\nwant %s", env, floor, got, want)
			}
		}
	}
}

// TestInvertedScratchReuse forces the inverted path on one engine
// across repeated runs and horizons: pooled posting indexes and met
// bitsets must not leak state between runs (the lazy-clear stamps
// restart from key 1 every run).
func TestInvertedScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	fleet := jointTestFleet(t, rng, 20)
	eng, err := NewEngine(fleet)
	if err != nil {
		t.Fatal(err)
	}
	prev := SetInvertedFloor(0)
	defer SetInvertedFloor(prev)
	for run := 0; run < 4; run++ {
		for _, h := range []int{1, blockLen - 1, blockLen + 1, 2500} {
			for _, env := range []Environment{nil, channelBlocked(3)} {
				want := renderMeetings(eng.RunEnv(h, env))
				if got := renderMeetings(eng.RunJointParallelEnv(h, 3, env)); got != want {
					t.Fatalf("run %d horizon %d env=%v: got %s want %s", run, h, env, got, want)
				}
			}
		}
	}
}

// TestScanKindGates pins the routing predicate itself: the floor
// comparison is inclusive, per-slot reference mode opts out, and
// horizons whose slot keys overflow the int32 stamps opt out.
func TestScanKindGates(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	eng, err := NewEngine(jointTestFleet(t, rng, 8))
	if err != nil {
		t.Fatal(err)
	}
	prev := SetInvertedFloor(8)
	defer SetInvertedFloor(prev)
	if k := eng.scanKindFor(1000); k != scanInverted {
		t.Fatalf("fleet at the floor must route inverted, got %v", k)
	}
	SetInvertedFloor(9)
	if k := eng.scanKindFor(1000); k != scanOccupancy {
		t.Fatalf("fleet below the floor must not route inverted, got %v", k)
	}
	SetInvertedFloor(0)
	if k := eng.scanKindFor(math.MaxInt32); k != scanOccupancy {
		t.Fatalf("int32-overflowing horizon must not route inverted, got %v", k)
	}
	pb := SetBlockEval(false)
	k := eng.scanKindFor(1000)
	SetBlockEval(pb)
	if k != scanOccupancy {
		t.Fatalf("per-slot reference mode must not route inverted, got %v", k)
	}
}
