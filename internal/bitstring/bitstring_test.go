package bitstring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	cases := []string{"", "0", "1", "01", "11010", "110001", "0100110"}
	for _, c := range cases {
		s, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c, err)
		}
		if got := s.String(); got != c {
			t.Errorf("Parse(%q).String() = %q", c, got)
		}
		if s.Len() != len(c) {
			t.Errorf("Parse(%q).Len() = %d, want %d", c, s.Len(), len(c))
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, c := range []string{"2", "01x", "abc", "0 1"} {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): expected error", c)
		}
	}
}

func TestFromUint(t *testing.T) {
	cases := []struct {
		v     uint64
		width int
		want  string
	}{
		{0, 0, ""},
		{0, 3, "000"},
		{1, 1, "1"},
		{5, 3, "101"},
		{5, 5, "00101"},
		{13, 4, "1101"},
	}
	for _, c := range cases {
		s, err := FromUint(c.v, c.width)
		if err != nil {
			t.Fatalf("FromUint(%d,%d): %v", c.v, c.width, err)
		}
		if got := s.String(); got != c.want {
			t.Errorf("FromUint(%d,%d) = %q, want %q", c.v, c.width, got, c.want)
		}
		back, err := s.Uint()
		if err != nil {
			t.Fatalf("Uint: %v", err)
		}
		if back != c.v {
			t.Errorf("round trip FromUint(%d,%d).Uint() = %d", c.v, c.width, back)
		}
	}
	if _, err := FromUint(8, 3); err == nil {
		t.Error("FromUint(8,3): expected overflow error")
	}
	if _, err := FromUint(1, 65); err == nil {
		t.Error("FromUint(1,65): expected width error")
	}
}

func TestBitAndSetBit(t *testing.T) {
	s := New(130) // crosses word boundaries
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.SetBit(i, 1)
		if s.Bit(i) != 1 {
			t.Errorf("bit %d not set", i)
		}
		s.SetBit(i, 0)
		if s.Bit(i) != 0 {
			t.Errorf("bit %d not cleared", i)
		}
	}
}

func TestConcat(t *testing.T) {
	a := MustParse("01")
	b := MustParse("110")
	c := MustParse("")
	if got := Concat(a, b, c, a).String(); got != "0111001" {
		t.Errorf("Concat = %q, want 0111001", got)
	}
	if got := Concat().Len(); got != 0 {
		t.Errorf("Concat() length = %d", got)
	}
}

func TestComplement(t *testing.T) {
	s := MustParse("0100110")
	if got := s.Complement().String(); got != "1011001" {
		t.Errorf("Complement = %q", got)
	}
	// Complement must not disturb packing padding.
	long := Ones(70)
	if w := long.Complement().Weight(); w != 0 {
		t.Errorf("Complement(1^70).Weight() = %d, want 0", w)
	}
}

func TestRotate(t *testing.T) {
	s := MustParse("0100110")
	cases := []struct {
		k    int
		want string
	}{
		{0, "0100110"},
		{1, "1001100"},
		{2, "0011001"},
		{7, "0100110"},
		{-1, "0010011"},
		{8, "1001100"},
	}
	for _, c := range cases {
		if got := s.Rotate(c.k).String(); got != c.want {
			t.Errorf("Rotate(%d) = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestGraphMatchesPaperFigure1(t *testing.T) {
	// Figure 1a: the graph of 11010.
	g := MustParse("11010").Graph()
	want := []int{0, 1, 2, 1, 2, 1}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("Graph(11010) = %v, want %v", g, want)
		}
	}
	// Figure 1b: 110001 is balanced.
	if !MustParse("110001").IsBalanced() {
		t.Error("110001 should be balanced")
	}
	if MustParse("11010").IsBalanced() {
		t.Error("11010 should not be balanced")
	}
}

func TestCatalanPredicates(t *testing.T) {
	cases := []struct {
		s                 string
		balanced, catalan bool
		strictlyCatalan   bool
	}{
		{"", true, true, false},
		{"10", true, true, true},
		{"01", true, false, false},
		{"1100", true, true, false},  // touches 0 in the middle? G: 1,2,1,0 — interior G(2)=2>0,G(3)=1>0 => strictly.
		{"1010", true, true, false},  // G: 1,0,1,0 — G(2)=0 interior => not strict
		{"110100", true, true, true}, // G: 1,2,1,2,1,0
		{"101010", true, true, false},
		{"111000", true, true, true},
		{"110001", true, false, false},
	}
	for _, c := range cases {
		s := MustParse(c.s)
		if got := s.IsBalanced(); got != c.balanced {
			t.Errorf("IsBalanced(%q) = %v", c.s, got)
		}
		if got := s.IsCatalan(); got != c.catalan {
			t.Errorf("IsCatalan(%q) = %v", c.s, got)
		}
	}
	// Fix up the strictness expectations explicitly.
	if !MustParse("1100").IsStrictlyCatalan() {
		t.Error("1100 should be strictly Catalan (graph 1,2,1,0)")
	}
	if MustParse("1010").IsStrictlyCatalan() {
		t.Error("1010 should not be strictly Catalan (graph hits 0 at interior)")
	}
	if !MustParse("110100").IsStrictlyCatalan() {
		t.Error("110100 should be strictly Catalan")
	}
}

func TestCatalanWrapInStrict(t *testing.T) {
	// Paper remark: if z is Catalan, 1∘z∘0 is strictly Catalan.
	for _, z := range []string{"", "10", "1100", "1010", "110010"} {
		s := MustParse(z)
		if !s.IsCatalan() {
			t.Fatalf("precondition: %q not Catalan", z)
		}
		wrapped := Concat(MustParse("1"), s, MustParse("0"))
		if !wrapped.IsStrictlyCatalan() {
			t.Errorf("1∘%s∘0 should be strictly Catalan", z)
		}
	}
}

func TestMaxMinPoints(t *testing.T) {
	// 1100: graph 0,1,2,1,0 over cyclic domain {0..3}: values 0,1,2,1.
	s := MustParse("1100")
	if pts := s.MaxPoints(); len(pts) != 1 || pts[0] != 2 {
		t.Errorf("MaxPoints(1100) = %v, want [2]", pts)
	}
	if pts := s.MinPoints(); len(pts) != 1 || pts[0] != 0 {
		t.Errorf("MinPoints(1100) = %v, want [0]", pts)
	}
	if !s.IsTMaximal(1) || !s.IsTMinimal(1) {
		t.Error("1100 should be 1-maximal and 1-minimal")
	}
	// 101010: cyclic graph values 0,1,0,1,0,1 -> 3 maxima, 3 minima.
	s = MustParse("101010")
	if !s.IsTMaximal(3) || !s.IsTMinimal(3) {
		t.Errorf("101010 max=%v min=%v", s.MaxPoints(), s.MinPoints())
	}
}

func TestExtremeCountsRotationInvariantForBalanced(t *testing.T) {
	// Paper: if z is t-maximal (t-minimal), so are all its shifts.
	f := func(v uint16, width uint8) bool {
		n := int(width%12) + 2
		if n%2 == 1 {
			n++
		}
		s := randomBalanced(rand.New(rand.NewSource(int64(v)*31+int64(width))), n)
		maxCount := len(s.MaxPoints())
		minCount := len(s.MinPoints())
		for k := 1; k < s.Len(); k++ {
			r := s.Rotate(k)
			if len(r.MaxPoints()) != maxCount || len(r.MinPoints()) != minCount {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStrictlyCatalanUniqueMinAtZero(t *testing.T) {
	// Paper: a strictly Catalan sequence is 1-minimal with minimum at 0,
	// and no nontrivial shift of it is strictly Catalan.
	for _, z := range []string{"10", "1100", "110100", "111000", "11011000"} {
		s := MustParse(z)
		if !s.IsStrictlyCatalan() {
			t.Fatalf("precondition: %q not strictly Catalan", z)
		}
		if pts := s.MinPoints(); len(pts) != 1 || pts[0] != 0 {
			t.Errorf("%q: MinPoints = %v, want [0]", z, s.MinPoints())
		}
		for k := 1; k < s.Len(); k++ {
			if s.Rotate(k).IsStrictlyCatalan() {
				t.Errorf("%q: rotation %d should not be strictly Catalan", z, k)
			}
		}
	}
}

func TestCatalanShift(t *testing.T) {
	f := func(v uint32, width uint8) bool {
		n := int(width%10)*2 + 2
		s := randomBalanced(rand.New(rand.NewSource(int64(v))), n)
		c := s.CatalanShift()
		return s.Rotate(c).IsCatalan()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCatalanShiftPanicsOnUnbalanced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustParse("1").CatalanShift()
}

func TestInsertAndSlice(t *testing.T) {
	s := MustParse("0011")
	if got := s.Insert(2, MustParse("1010")).String(); got != "00101011" {
		t.Errorf("Insert = %q", got)
	}
	if got := s.Insert(0, MustParse("1")).String(); got != "10011" {
		t.Errorf("Insert at 0 = %q", got)
	}
	if got := s.Insert(4, MustParse("1")).String(); got != "00111" {
		t.Errorf("Insert at end = %q", got)
	}
	if got := s.Slice(1, 3).String(); got != "01" {
		t.Errorf("Slice = %q", got)
	}
	if got := s.Slice(2, 2).Len(); got != 0 {
		t.Errorf("empty Slice length = %d", got)
	}
}

func TestRepeatOnesZeros(t *testing.T) {
	if got := MustParse("01").Repeat(3).String(); got != "010101" {
		t.Errorf("Repeat = %q", got)
	}
	if got := Ones(4).String(); got != "1111" {
		t.Errorf("Ones = %q", got)
	}
	if got := Zeros(3).String(); got != "000" {
		t.Errorf("Zeros = %q", got)
	}
}

func TestIsRotationOf(t *testing.T) {
	a := MustParse("0100110")
	if !a.IsRotationOf(a.Rotate(3)) {
		t.Error("rotation not detected")
	}
	if a.IsRotationOf(MustParse("0100111")) {
		t.Error("false rotation detected")
	}
	if !MustParse("").IsRotationOf(MustParse("")) {
		t.Error("empty strings are rotations of each other")
	}
}

func TestDiamondConditions(t *testing.T) {
	r := MustParse("0110")
	s := MustParse("1001")
	if !DiamondOne(r, s) {
		t.Error("0110 ♦₁ 1001 should hold")
	}
	if DiamondZero(r, s) {
		t.Error("0110 ♦₀ 1001 should fail (complements)")
	}
	if !DiamondZero(r, r) {
		t.Error("r ♦₀ r should hold for mixed strings")
	}
	if DiamondOne(r, r) {
		t.Error("r ♦₁ r should fail")
	}
}

func TestSymmetricPatternFromSection32(t *testing.T) {
	// Paper §3.2: 0100110 ◇₀ 010011 — any pair of rotations of 010011
	// realizes both (0,0) and (1,1).
	p := MustParse("010011")
	if !CircledZero(p, p) {
		t.Error("010011 ◇₀ 010011 should hold (the §3.2 pattern)")
	}
}

func TestBalancedDistinctImpliesDiamondOne(t *testing.T) {
	// Paper §3: distinct balanced strings of equal length satisfy ♦₁.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 2 * (1 + rng.Intn(8))
		a := randomBalanced(rng, n)
		b := randomBalanced(rng, n)
		if a.Equal(b) {
			continue
		}
		if !DiamondOne(a, b) {
			t.Fatalf("distinct balanced %s, %s should satisfy ♦₁", a, b)
		}
	}
}

func TestBalancedNonComplementImpliesDiamondZero(t *testing.T) {
	// Paper §3: balanced strings that are not complements satisfy ♦₀.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		n := 2 * (1 + rng.Intn(8))
		a := randomBalanced(rng, n)
		b := randomBalanced(rng, n)
		if a.Equal(b.Complement()) {
			continue
		}
		if !DiamondZero(a, b) {
			t.Fatalf("balanced non-complement %s, %s should satisfy ♦₀", a, b)
		}
	}
}

func TestWeightAcrossWords(t *testing.T) {
	s := New(200)
	for i := 0; i < 200; i += 3 {
		s.SetBit(i, 1)
	}
	if got, want := s.Weight(), 67; got != want {
		t.Errorf("Weight = %d, want %d", got, want)
	}
}

func TestUintErrorsOnLongStrings(t *testing.T) {
	if _, err := New(65).Uint(); err == nil {
		t.Error("expected error for 65-bit Uint")
	}
}

func TestPanicsOnBadIndex(t *testing.T) {
	s := New(4)
	for name, f := range map[string]func(){
		"Bit":    func() { s.Bit(4) },
		"SetBit": func() { s.SetBit(-1, 1) },
		"Insert": func() { s.Insert(5, New(1)) },
		"Slice":  func() { s.Slice(2, 1) },
		"Repeat": func() { s.Repeat(-1) },
		"New":    func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// randomBalanced returns a uniformly random balanced string of even
// length n (a random permutation of n/2 ones and n/2 zeros).
func randomBalanced(rng *rand.Rand, n int) String {
	if n%2 != 0 {
		panic("randomBalanced: odd length")
	}
	bits := make([]byte, n)
	for i := 0; i < n/2; i++ {
		bits[i] = 1
	}
	rng.Shuffle(n, func(i, j int) { bits[i], bits[j] = bits[j], bits[i] })
	s := New(n)
	for i, b := range bits {
		s.SetBit(i, b)
	}
	return s
}
