// Package bitstring implements fixed-length binary strings together with
// the prefix-sum "graph" machinery used by the blind-rendezvous
// constructions of Chen, Russell, Samanta and Sundaram (ICDCS 2014).
//
// A String is an immutable-by-convention sequence of bits s_0 s_1 … s_{ℓ-1}.
// Its graph G is the walk G(0)=0, G(k) = Σ_{i<k} (2·s_i − 1): each 1 is a
// step up, each 0 a step down (paper §3, Figure 1). The package provides
// the predicates the paper's Theorem 1 relies on — balanced, Catalan,
// strictly Catalan, and t-maximal/t-minimal — along with rotations,
// concatenation, complementation and insertion.
//
// For balanced strings the graph is a closed walk, so maxima and minima
// are counted over the cyclic domain {0, …, ℓ-1}; this is the convention
// under which "t-maximality is preserved by all shifts" (paper §3).
package bitstring

import (
	"fmt"
	"math/bits"
	"strings"
)

// String is a fixed-length binary string. The zero value is the empty
// string. Transform methods return new values and never mutate the
// receiver; SetBit is the only mutating method and is intended for
// builder-style construction before a value is shared.
type String struct {
	n     int
	words []uint64
}

// New returns an all-zero string of length n. It panics if n is negative.
func New(n int) String {
	if n < 0 {
		panic(fmt.Sprintf("bitstring: negative length %d", n))
	}
	return String{n: n, words: make([]uint64, (n+63)/64)}
}

// Parse converts a textual bit pattern such as "0100110" into a String.
// Every byte must be '0' or '1'.
func Parse(s string) (String, error) {
	b := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			// already zero
		case '1':
			b.SetBit(i, 1)
		default:
			return String{}, fmt.Errorf("bitstring: invalid character %q at index %d", s[i], i)
		}
	}
	return b, nil
}

// MustParse is Parse for known-good literals; it panics on error.
func MustParse(s string) String {
	b, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return b
}

// FromUint returns the canonical base-two encoding of v, zero-padded on
// the left to width bits (most significant bit first), matching the
// paper's x₂ notation. It reports an error if v does not fit in width
// bits.
func FromUint(v uint64, width int) (String, error) {
	if width < 0 || width > 64 {
		return String{}, fmt.Errorf("bitstring: width %d out of range [0,64]", width)
	}
	if width < 64 && v >= 1<<uint(width) {
		return String{}, fmt.Errorf("bitstring: value %d does not fit in %d bits", v, width)
	}
	b := New(width)
	for j := 0; j < width; j++ {
		if v>>uint(width-1-j)&1 == 1 {
			b.SetBit(j, 1)
		}
	}
	return b, nil
}

// MustFromUint is FromUint for arguments known to be in range.
func MustFromUint(v uint64, width int) String {
	b, err := FromUint(v, width)
	if err != nil {
		panic(err)
	}
	return b
}

// Len returns the number of bits in s.
func (s String) Len() int { return s.n }

// Bit returns bit i of s (0 or 1).
func (s String) Bit(i int) byte {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitstring: index %d out of range [0,%d)", i, s.n))
	}
	return byte(s.words[i/64] >> uint(i%64) & 1)
}

// SetBit sets bit i of s to b (0 or 1), mutating s in place.
func (s *String) SetBit(i int, b byte) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitstring: index %d out of range [0,%d)", i, s.n))
	}
	if b == 0 {
		s.words[i/64] &^= 1 << uint(i%64)
	} else {
		s.words[i/64] |= 1 << uint(i%64)
	}
}

// Clone returns an independent copy of s.
func (s String) Clone() String {
	out := String{n: s.n, words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	return out
}

// Equal reports whether s and t have the same length and bits.
func (s String) Equal(t String) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// String renders s as a pattern of '0' and '1' characters.
func (s String) String() string {
	var sb strings.Builder
	sb.Grow(s.n)
	for i := 0; i < s.n; i++ {
		sb.WriteByte('0' + s.Bit(i))
	}
	return sb.String()
}

// Uint interprets s (most significant bit first) as an unsigned integer.
// It reports an error if s is longer than 64 bits.
func (s String) Uint() (uint64, error) {
	if s.n > 64 {
		return 0, fmt.Errorf("bitstring: length %d exceeds 64 bits", s.n)
	}
	var v uint64
	for i := 0; i < s.n; i++ {
		v = v<<1 | uint64(s.Bit(i))
	}
	return v, nil
}

// Concat returns the concatenation of parts in order.
func Concat(parts ...String) String {
	total := 0
	for _, p := range parts {
		total += p.n
	}
	out := New(total)
	at := 0
	for _, p := range parts {
		for i := 0; i < p.n; i++ {
			out.SetBit(at+i, p.Bit(i))
		}
		at += p.n
	}
	return out
}

// Complement returns the coordinatewise negation of s (paper's x̄).
func (s String) Complement() String {
	out := s.Clone()
	for i := range out.words {
		out.words[i] = ^out.words[i]
	}
	// Clear bits beyond the logical length.
	if rem := out.n % 64; rem != 0 && len(out.words) > 0 {
		out.words[len(out.words)-1] &= 1<<uint(rem) - 1
	}
	return out
}

// Rotate returns the cyclic shift Sᵏ s with result bit j equal to
// s_{(j+k) mod ℓ}; k may be any integer (negative rotates the other way).
// The empty string rotates to itself.
func (s String) Rotate(k int) String {
	if s.n == 0 {
		return s
	}
	k %= s.n
	if k < 0 {
		k += s.n
	}
	out := New(s.n)
	for j := 0; j < s.n; j++ {
		out.SetBit(j, s.Bit((j+k)%s.n))
	}
	return out
}

// Weight returns the number of 1 bits in s (paper's wt).
func (s String) Weight() int {
	w := 0
	for _, word := range s.words {
		w += bits.OnesCount64(word)
	}
	return w
}

// Graph returns the walk G of s as a slice of length ℓ+1 with
// G[0] = 0 and G[k] = Σ_{i<k} (2·s_i − 1).
func (s String) Graph() []int {
	g := make([]int, s.n+1)
	for i := 0; i < s.n; i++ {
		step := -1
		if s.Bit(i) == 1 {
			step = 1
		}
		g[i+1] = g[i] + step
	}
	return g
}

// IsBalanced reports whether wt(s) = |s|/2 (equivalently G(ℓ) = 0).
// The empty string is balanced.
func (s String) IsBalanced() bool { return 2*s.Weight() == s.n }

// IsCatalan reports whether s is balanced and its graph never goes
// negative.
func (s String) IsCatalan() bool {
	if !s.IsBalanced() {
		return false
	}
	h := 0
	for i := 0; i < s.n; i++ {
		if s.Bit(i) == 1 {
			h++
		} else {
			h--
		}
		if h < 0 {
			return false
		}
	}
	return true
}

// IsStrictlyCatalan reports whether s is balanced and its graph is
// strictly positive at every interior point: G(i) > 0 for 0 < i < ℓ.
// Strings of length < 2 are not strictly Catalan.
func (s String) IsStrictlyCatalan() bool {
	if s.n < 2 || !s.IsBalanced() {
		return false
	}
	h := 0
	for i := 0; i < s.n-1; i++ {
		if s.Bit(i) == 1 {
			h++
		} else {
			h--
		}
		if h <= 0 {
			return false
		}
	}
	return true
}

// MaxPoints returns the indices i in the cyclic domain {0,…,ℓ-1} at which
// the graph attains its maximum over that domain. For balanced strings
// the count of such points is invariant under rotation.
func (s String) MaxPoints() []int { return s.extremePoints(true) }

// MinPoints is the minimum analogue of MaxPoints.
func (s String) MinPoints() []int { return s.extremePoints(false) }

func (s String) extremePoints(maximum bool) []int {
	if s.n == 0 {
		return nil
	}
	g := s.Graph()
	best := g[0]
	for i := 0; i < s.n; i++ {
		if maximum && g[i] > best || !maximum && g[i] < best {
			best = g[i]
		}
	}
	var pts []int
	for i := 0; i < s.n; i++ {
		if g[i] == best {
			pts = append(pts, i)
		}
	}
	return pts
}

// IsTMaximal reports whether exactly t points of the cyclic domain attain
// the graph's maximum (paper's t-maximality).
func (s String) IsTMaximal(t int) bool { return len(s.MaxPoints()) == t }

// IsTMinimal reports whether exactly t points of the cyclic domain attain
// the graph's minimum.
func (s String) IsTMinimal(t int) bool { return len(s.MinPoints()) == t }

// Insert returns the string obtained by inserting t between positions
// pos-1 and pos of s (0 ≤ pos ≤ ℓ).
func (s String) Insert(pos int, t String) String {
	if pos < 0 || pos > s.n {
		panic(fmt.Sprintf("bitstring: insert position %d out of range [0,%d]", pos, s.n))
	}
	return Concat(s.Slice(0, pos), t, s.Slice(pos, s.n))
}

// Slice returns the substring s_i … s_{j-1}.
func (s String) Slice(i, j int) String {
	if i < 0 || j < i || j > s.n {
		panic(fmt.Sprintf("bitstring: slice bounds [%d,%d) out of range [0,%d]", i, j, s.n))
	}
	out := New(j - i)
	for k := i; k < j; k++ {
		out.SetBit(k-i, s.Bit(k))
	}
	return out
}

// Repeat returns s concatenated with itself count times. Repeat(0) is the
// empty string.
func (s String) Repeat(count int) String {
	if count < 0 {
		panic(fmt.Sprintf("bitstring: negative repeat count %d", count))
	}
	parts := make([]String, count)
	for i := range parts {
		parts[i] = s
	}
	return Concat(parts...)
}

// Ones returns a string of n 1-bits.
func Ones(n int) String {
	s := New(n)
	for i := 0; i < n; i++ {
		s.SetBit(i, 1)
	}
	return s
}

// Zeros returns a string of n 0-bits. It is New with a name that reads
// well next to Ones.
func Zeros(n int) String { return New(n) }

// CatalanShift returns the smallest c such that Rotate(c) is Catalan.
// The receiver must be balanced; CatalanShift panics otherwise. (This is
// the cycle-lemma rotation used by the paper's U construction.)
func (s String) CatalanShift() int {
	if !s.IsBalanced() {
		panic("bitstring: CatalanShift requires a balanced string")
	}
	if s.n == 0 {
		return 0
	}
	g := s.Graph()
	min, at := g[0], 0
	for i := 1; i < s.n; i++ {
		if g[i] < min {
			min, at = g[i], i
		}
	}
	return at
}

// IsRotationOf reports whether s equals some rotation of t.
func (s String) IsRotationOf(t String) bool {
	if s.n != t.n {
		return false
	}
	for k := 0; k < s.n; k++ {
		if s.Equal(t.Rotate(k)) {
			return true
		}
	}
	return s.n == 0
}

// CoOccurrence describes which of the four simultaneous bit pairs occur
// when two equal-length strings are read in lockstep.
type CoOccurrence struct {
	ZeroZero bool // some index t with r_t = 0 and s_t = 0
	ZeroOne  bool // some index t with r_t = 0 and s_t = 1
	OneZero  bool // some index t with r_t = 1 and s_t = 0
	OneOne   bool // some index t with r_t = 1 and s_t = 1
}

// CoOccurrences scans r and s in lockstep and reports which bit pairs
// (r_t, s_t) are realized. The strings must have equal length.
func CoOccurrences(r, s String) CoOccurrence {
	if r.n != s.n {
		panic(fmt.Sprintf("bitstring: length mismatch %d vs %d", r.n, s.n))
	}
	var c CoOccurrence
	for t := 0; t < r.n; t++ {
		switch {
		case r.Bit(t) == 0 && s.Bit(t) == 0:
			c.ZeroZero = true
		case r.Bit(t) == 0 && s.Bit(t) == 1:
			c.ZeroOne = true
		case r.Bit(t) == 1 && s.Bit(t) == 0:
			c.OneZero = true
		default:
			c.OneOne = true
		}
	}
	return c
}

// DiamondOne reports the paper's r ♦₁ s condition: both (0,1) and (1,0)
// occur in lockstep.
func DiamondOne(r, s String) bool {
	c := CoOccurrences(r, s)
	return c.ZeroOne && c.OneZero
}

// DiamondZero reports the paper's r ♦₀ s condition: both (0,0) and (1,1)
// occur in lockstep.
func DiamondZero(r, s String) bool {
	c := CoOccurrences(r, s)
	return c.ZeroZero && c.OneOne
}

// CircledOne reports the paper's r ◇₁ s condition: Sⁱr ♦₁ Sʲs for every
// pair of rotations i, j. Because ♦ conditions depend only on the relative
// rotation, the scan is over a single rotation index.
func CircledOne(r, s String) bool {
	for k := 0; k < max(1, s.n); k++ {
		if !DiamondOne(r, s.Rotate(k)) {
			return false
		}
	}
	return true
}

// CircledZero reports the paper's r ◇₀ s condition: Sⁱr ♦₀ Sʲs for every
// pair of rotations i, j.
func CircledZero(r, s String) bool {
	for k := 0; k < max(1, s.n); k++ {
		if !DiamondZero(r, s.Rotate(k)) {
			return false
		}
	}
	return true
}
