// Package stats provides the small set of descriptive statistics and
// log-scale fitting helpers the benchmark harness uses to turn raw
// time-to-rendezvous samples into the series reported in EXPERIMENTS.md.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of non-negative measurements.
type Summary struct {
	N           int
	Min, Max    float64
	Mean        float64
	P50, P90    float64
	P99         float64
	StandardDev float64
}

// Summarize computes a Summary. It returns the zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var sum, sq float64
	for _, x := range sorted {
		sum += x
		sq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:           len(sorted),
		Min:         sorted[0],
		Max:         sorted[len(sorted)-1],
		Mean:        mean,
		P50:         Percentile(sorted, 0.50),
		P90:         Percentile(sorted, 0.90),
		P99:         Percentile(sorted, 0.99),
		StandardDev: math.Sqrt(variance),
	}
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of an ascending-sorted
// sample using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FitPowerLaw fits y ≈ c·xᵉ by least squares on log-log scale and
// returns the exponent e and constant c. All inputs must be positive;
// it reports an error otherwise or when fewer than two points are given.
// The exponent is the diagnostic the experiment harness uses to verify
// growth shapes (≈2 for O(n²) baselines, ≈3 for O(n³), ≈0 for O(1)).
func FitPowerLaw(xs, ys []float64) (exponent, constant float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: need ≥2 paired points, got %d/%d", len(xs), len(ys))
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, fmt.Errorf("stats: power-law fit needs positive data, got (%g,%g)", xs[i], ys[i])
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: degenerate x values")
	}
	exponent = (n*sxy - sx*sy) / den
	constant = math.Exp((sy - exponent*sx) / n)
	return exponent, constant, nil
}

// GrowthRatios returns y[i+1]/y[i]; flat sequences (O(1) growth) have
// ratios near 1 and quadratic ones near (x[i+1]/x[i])².
func GrowthRatios(ys []float64) []float64 {
	if len(ys) < 2 {
		return nil
	}
	out := make([]float64, len(ys)-1)
	for i := range out {
		if ys[i] == 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = ys[i+1] / ys[i]
	}
	return out
}
