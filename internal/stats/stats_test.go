package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 3 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P50 != 3 {
		t.Errorf("p50 = %v", s.P50)
	}
	if math.Abs(s.StandardDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %v", s.StandardDev)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestFitPowerLawExact(t *testing.T) {
	// y = 3·x²
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	e, c, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-2) > 1e-9 || math.Abs(c-3) > 1e-9 {
		t.Errorf("fit = (%v, %v), want (2, 3)", e, c)
	}
}

func TestFitPowerLawProperty(t *testing.T) {
	f := func(e8 int8, c8 uint8) bool {
		e := float64(e8%4) / 2.0 // exponents in (−2, 2)
		c := 1 + float64(c8%50)
		xs := []float64{2, 4, 8, 16, 32, 64}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = c * math.Pow(x, e)
		}
		ge, gc, err := FitPowerLaw(xs, ys)
		return err == nil && math.Abs(ge-e) < 1e-6 && math.Abs(gc-c)/c < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, _, err := FitPowerLaw([]float64{1}, []float64{1}); err == nil {
		t.Error("single point: expected error")
	}
	if _, _, err := FitPowerLaw([]float64{1, 2}, []float64{0, 2}); err == nil {
		t.Error("non-positive y: expected error")
	}
	if _, _, err := FitPowerLaw([]float64{2, 2}, []float64{1, 2}); err == nil {
		t.Error("degenerate x: expected error")
	}
}

func TestGrowthRatios(t *testing.T) {
	got := GrowthRatios([]float64{1, 2, 8})
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("ratios = %v", got)
	}
	if GrowthRatios([]float64{5}) != nil {
		t.Error("single element should give nil")
	}
	inf := GrowthRatios([]float64{0, 3})
	if !math.IsInf(inf[0], 1) {
		t.Error("division by zero should give +Inf")
	}
}
