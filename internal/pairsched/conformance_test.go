package pairsched_test

import (
	"testing"

	"rendezvous/internal/pairsched"
	"rendezvous/internal/schedtest"
)

// TestConformance runs the shared Schedule conformance suite against
// the Theorem-1 pair schedules across universe sizes (distinct Ramsey
// palettes and word lengths).
func TestConformance(t *testing.T) {
	for _, tc := range []struct {
		n, a, b int
	}{
		{4, 2, 3},
		{64, 1, 64},
		{1 << 12, 90, 700},
	} {
		p, err := pairsched.New(tc.n, tc.a, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(p.Word().String()[:min(8, p.Word().Len())], func(t *testing.T) {
			schedtest.Conform(t, p)
		})
	}
}
