package pairsched

import (
	"testing"

	"rendezvous/internal/bitstring"
)

// overlap enumerates the relationship between two overlapping size-two
// sets for test reporting.
func sharedChannel(a0, a1, b0, b1 int) (int, bool) {
	for _, x := range []int{a0, a1} {
		for _, y := range []int{b0, b1} {
			if x == y {
				return x, true
			}
		}
	}
	return 0, false
}

// TestSyncWordRendezvous exhaustively verifies the synchronous model for
// small n: any two overlapping pairs, started at the same slot, hop a
// common channel within SyncWordLen(n) slots.
func TestSyncWordRendezvous(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 16, 33} {
		wordLen := SyncWordLen(n)
		// Precompute all pair words.
		words := make(map[[2]int]bitstring.String)
		for a := 1; a <= n; a++ {
			for b := a + 1; b <= n; b++ {
				w, err := SyncWord(n, a, b)
				if err != nil {
					t.Fatalf("SyncWord(%d,%d,%d): %v", n, a, b, err)
				}
				if w.Len() != wordLen {
					t.Fatalf("n=%d: |C| = %d, want %d", n, w.Len(), wordLen)
				}
				words[[2]int{a, b}] = w
			}
		}
		for pa, wa := range words {
			for pb, wb := range words {
				c, ok := sharedChannel(pa[0], pa[1], pb[0], pb[1])
				if !ok {
					continue
				}
				found := false
				for s := 0; s < wordLen && !found; s++ {
					chA := pa[0]
					if wa.Bit(s) == 1 {
						chA = pa[1]
					}
					chB := pb[0]
					if wb.Bit(s) == 1 {
						chB = pb[1]
					}
					found = chA == chB
				}
				if !found {
					t.Fatalf("n=%d: pairs %v and %v (shared %d) never meet synchronously", n, pa, pb, c)
				}
			}
		}
	}
}

// TestAsyncPairRendezvousExhaustive is the heart of Theorem 1: for every
// pair of overlapping size-two subsets of [n] and EVERY relative cyclic
// offset, the two agents meet within one word length.
func TestAsyncPairRendezvousExhaustive(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 16, 24} {
		period := WordLen(n)
		var pairs []*Pair
		for a := 1; a <= n; a++ {
			for b := a + 1; b <= n; b++ {
				p, err := New(n, a, b)
				if err != nil {
					t.Fatal(err)
				}
				if p.Period() != period {
					t.Fatalf("n=%d: period %d, want %d", n, p.Period(), period)
				}
				pairs = append(pairs, p)
			}
		}
		for _, pa := range pairs {
			for _, pb := range pairs {
				ca := pa.Channels()
				cb := pb.Channels()
				if _, ok := sharedChannel(ca[0], ca[1], cb[0], cb[1]); !ok {
					continue
				}
				// All relative offsets matter only modulo the period.
				for off := 0; off < period; off++ {
					found := false
					for s := 0; s < period && !found; s++ {
						found = pa.Channel(s) == pb.Channel(s+off)
					}
					if !found {
						t.Fatalf("n=%d: pairs %v and %v never meet at offset %d", n, ca, cb, off)
					}
				}
			}
		}
	}
}

// TestAsyncLargeNSampled spot-checks large universes where exhaustive
// enumeration is infeasible: adversarial pair patterns (chains, shared
// min, shared max, identical) across every offset.
func TestAsyncLargeNSampled(t *testing.T) {
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20} {
		period := WordLen(n)
		cases := [][4]int{
			{1, 2, 2, 3},             // path at small channels
			{n - 2, n - 1, n - 1, n}, // path at large channels
			{1, n, n, n - 1},         // path through extremes
			{5, n, 5, n / 2},         // shared min
			{n / 2, n, n - 1, n},     // shared max
			{7, 9, 7, 9},             // identical sets
			{1, 2, 1, 2},
		}
		for _, c := range cases {
			pa, err := New(n, c[0], c[1])
			if err != nil {
				t.Fatal(err)
			}
			pb, err := New(n, c[2], c[3])
			if err != nil {
				t.Fatal(err)
			}
			for off := 0; off < period; off++ {
				found := false
				for s := 0; s < period && !found; s++ {
					found = pa.Channel(s) == pb.Channel(s+off)
				}
				if !found {
					t.Fatalf("n=%d: pairs %v/%v no rendezvous at offset %d", n, c[:2], c[2:], off)
				}
			}
		}
	}
}

// TestWordLenIsLogLog pins the headline growth rate: the asynchronous
// word length for n = 2^2^j grows linearly in j (log log n), and is tiny
// even for astronomically large universes.
func TestWordLenIsLogLog(t *testing.T) {
	prev := 0
	for _, n := range []int{4, 16, 256, 65536, 1 << 32} {
		l := WordLen(n)
		if l <= 0 {
			t.Fatalf("WordLen(%d) = %d", n, l)
		}
		if l < prev {
			t.Fatalf("WordLen not monotone at n=%d", n)
		}
		prev = l
	}
	if l := WordLen(1 << 62); l > 64 {
		t.Errorf("WordLen(2^62) = %d; expected O(log log n) ≤ 64", l)
	}
}

func TestNewRejectsBadPairs(t *testing.T) {
	if _, err := New(8, 3, 3); err == nil {
		t.Error("equal channels: expected error")
	}
	if _, err := New(8, 0, 3); err == nil {
		t.Error("channel 0: expected error")
	}
	if _, err := New(8, 1, 9); err == nil {
		t.Error("channel > n: expected error")
	}
}

func TestWordForColor(t *testing.T) {
	n := 100
	w, err := Word(n, 17, 49)
	if err != nil {
		t.Fatal(err)
	}
	// 17 = 10001₂, 49 = 110001₂; highest bit in 49∖17 is bit 5.
	wc, err := WordForColor(5, n)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Equal(wc) {
		t.Error("Word and WordForColor disagree")
	}
	if _, err := WordForColor(99, n); err == nil {
		t.Error("out-of-palette color: expected error")
	}
}

func TestChannelMapping(t *testing.T) {
	p, err := New(16, 9, 4) // order-insensitive constructor
	if err != nil {
		t.Fatal(err)
	}
	cs := p.Channels()
	if cs[0] != 4 || cs[1] != 9 {
		t.Fatalf("Channels() = %v, want [4 9]", cs)
	}
	w := p.Word()
	for s := 0; s < 3*p.Period(); s++ {
		want := 4
		if w.Bit(s%w.Len()) == 1 {
			want = 9
		}
		if got := p.Channel(s); got != want {
			t.Fatalf("Channel(%d) = %d, want %d", s, got, want)
		}
	}
	if p.Universe() != 16 {
		t.Errorf("Universe() = %d", p.Universe())
	}
}
