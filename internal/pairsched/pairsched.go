// Package pairsched implements Theorem 1 of Chen et al. (ICDCS 2014):
// channel-hopping schedules for agents whose channel sets have size two,
// guaranteeing rendezvous in O(log log n) slots.
//
// A size-two set {α < β} is treated as a directed edge of the linear
// poset Lₙ and assigned the color x = χ(α,β) of the 2-Ramsey coloring
// (package ramsey). The schedule is then a binary word interpreted as
// "0 ⇒ hop α, 1 ⇒ hop β":
//
//   - synchronous model: the word C(x) = 01 ∘ x ∘ x̄, replayed cyclically
//     (rendezvous is guaranteed inside the first period when both agents
//     start at slot 0). The paper also sketches a leaner
//     C(x) = 01 ∘ x ∘ wt(x)₂; as stated that variant admits pairs with
//     wt(x)=0, wt(y)=1 whose words never realize the (1,0) tuple (e.g.
//     n=4, sets {2,3} and {3,4}), so this package uses the first,
//     provably correct mapping — see DESIGN.md;
//   - asynchronous model: the cyclic word R(x) from package catalan,
//     whose balanced/strictly-Catalan/2-maximal structure guarantees the
//     lockstep conditions ◇₀ and ◇₁ under every pair of rotations.
//
// Word lengths depend only on n, never on the particular pair — the
// epoch construction of Theorem 3 requires this.
package pairsched

import (
	"fmt"
	"math/bits"

	"rendezvous/internal/bitstring"
	"rendezvous/internal/catalan"
	"rendezvous/internal/ramsey"
)

// checkSlot mirrors schedule.CheckSlot (package schedule imports this
// package, so the helper cannot be shared without a cycle): schedules
// are defined on t ≥ 0 only and panic with the repository-wide message.
func checkSlot(t int) {
	if t < 0 {
		panic(fmt.Sprintf("schedule: negative slot %d", t))
	}
}

// ColorWidth returns the fixed number of bits used to encode a 2-Ramsey
// color for universe size n.
func ColorWidth(n int) int {
	p := ramsey.PaletteSize(n)
	if p <= 1 {
		return 1
	}
	return bits.Len(uint(p - 1))
}

// colorBits returns the fixed-width encoding of the pair's color.
func colorBits(n, a, b int) (bitstring.String, error) {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	c, err := ramsey.Color(lo, hi, n)
	if err != nil {
		return bitstring.String{}, err
	}
	return bitstring.MustFromUint(uint64(c), ColorWidth(n)), nil
}

// SyncWordLen returns |SyncWord| for universe size n: 2 + 2w where
// w = ColorWidth(n). This is the paper's O(log log n) synchronous
// rendezvous bound.
func SyncWordLen(n int) int { return 2 + 2*ColorWidth(n) }

// SyncWord returns the synchronous schedule word C(x) = 01 ∘ x ∘ x̄ for
// the pair {a,b} ⊆ [n]: the 01 prefix realizes (0,0) and (1,1) against
// every other word, and for x ≠ y some coordinate of the bodies plus its
// complement realizes both (0,1) and (1,0).
func SyncWord(n, a, b int) (bitstring.String, error) {
	x, err := colorBits(n, a, b)
	if err != nil {
		return bitstring.String{}, err
	}
	return bitstring.Concat(bitstring.MustParse("01"), x, x.Complement()), nil
}

// WordLen returns |Word| for universe size n: the length of the
// asynchronous cyclic word R(x). It grows as O(log log n).
func WordLen(n int) int { return catalan.EncodeLen(ColorWidth(n)) }

// Word returns the asynchronous cyclic schedule word R(χ(a,b)₂) for the
// pair {a,b} ⊆ [n].
func Word(n, a, b int) (bitstring.String, error) {
	x, err := colorBits(n, a, b)
	if err != nil {
		return bitstring.String{}, err
	}
	return catalan.Encode(x), nil
}

// WordForColor returns R(x₂) for an explicit palette color; Theorem 3
// uses this to precompute the words for all colors of a universe once.
func WordForColor(color, n int) (bitstring.String, error) {
	if color < 0 || color >= ramsey.PaletteSize(n) {
		return bitstring.String{}, fmt.Errorf("pairsched: color %d outside palette [0,%d)", color, ramsey.PaletteSize(n))
	}
	return catalan.Encode(bitstring.MustFromUint(uint64(color), ColorWidth(n))), nil
}

// Pair is the asynchronous Theorem-1 schedule for a channel set of size
// two. It implements the Schedule contract used across this repository
// (Channel, Period, Channels).
type Pair struct {
	n      int
	lo, hi int
	word   bitstring.String
}

// New constructs the asynchronous pair schedule for {a,b} ⊆ [n], a ≠ b.
func New(n, a, b int) (*Pair, error) {
	if a == b {
		return nil, fmt.Errorf("pairsched: channels must be distinct, got {%d,%d}", a, b)
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	word, err := Word(n, lo, hi)
	if err != nil {
		return nil, err
	}
	return &Pair{n: n, lo: lo, hi: hi, word: word}, nil
}

// Channel returns the channel hopped at slot t ≥ 0.
func (p *Pair) Channel(t int) int {
	checkSlot(t)
	if p.word.Bit(t%p.word.Len()) == 0 {
		return p.lo
	}
	return p.hi
}

// ChannelBlock implements schedule.BlockEvaluator by streaming the
// cyclic word.
func (p *Pair) ChannelBlock(dst []int, start int) {
	checkSlot(start)
	l := p.word.Len()
	within := start % l
	for i := range dst {
		if p.word.Bit(within) == 0 {
			dst[i] = p.lo
		} else {
			dst[i] = p.hi
		}
		if within++; within == l {
			within = 0
		}
	}
}

// Period returns the cyclic period of the schedule, |R| = O(log log n).
func (p *Pair) Period() int { return p.word.Len() }

// Channels returns the two channels as a fresh slice {lo, hi}.
func (p *Pair) Channels() []int { return []int{p.lo, p.hi} }

// Word returns the underlying cyclic word (a copy is unnecessary:
// bitstring.String transforms never mutate).
func (p *Pair) Word() bitstring.String { return p.word }

// Universe returns the n this pair schedule was built for.
func (p *Pair) Universe() int { return p.n }
