package scenario

import (
	"sync"

	"rendezvous/internal/simulator"
)

// Fleet is a scenario's realized run state, opened once and reused
// across many runs: the derived agents and environment plus the engine
// built over them. This is the seam long-running callers (rvserve's
// worker session pools) sit on — Scenario.Run opens a Fleet, runs once
// and closes it, while a server opens one Fleet per distinct fleet
// shape and drives many horizons through sessions on its engine.
//
// A Fleet is as concurrent-safe as its engine: Engine methods may run
// concurrently, but a Session opened on it is single-goroutine (see
// simulator.Session).
type Fleet struct {
	Agents []simulator.Agent
	// Env carries the scenario's spectrum dynamics (nil for static
	// spectrum); it is horizon-independent and shared by every run.
	Env simulator.Environment
	Eng *simulator.Engine

	sc        Scenario
	graphOnce sync.Once
	graph     *ContactGraph
}

// Open derives the fleet and builds its engine for reuse. The caller
// owns the Fleet and must Close it when done so the engine's table
// pins return to the shared cache.
func (sc Scenario) Open(build Builder) (*Fleet, error) {
	agents, env, err := sc.Build(build)
	if err != nil {
		return nil, err
	}
	eng, err := simulator.NewEngineContact(agents, sc.contactTopology())
	if err != nil {
		return nil, err
	}
	return &Fleet{Agents: agents, Env: env, Eng: eng, sc: sc}, nil
}

// Graph returns the contact relation for gridded scenarios (nil
// otherwise), built lazily on first use — one-shot callers that never
// summarize (Scenario.Run) skip the adjacency build entirely. The
// engine renumbers its copy of the topology internally; the graph
// indexes agents in build order, exactly as Scenario.ContactGraph
// derives it.
func (f *Fleet) Graph() *ContactGraph {
	f.graphOnce.Do(func() {
		if ct := f.sc.contactTopology(); ct != nil {
			f.graph = newContactGraph(ct)
		}
	})
	return f.graph
}

// Summarize computes discovery coverage for a run of this fleet,
// walking contact edges when gridded and all pairs otherwise.
func (f *Fleet) Summarize(res *simulator.Result, horizon int) Coverage {
	return SummarizeContact(res, f.Agents, horizon, f.Graph())
}

// Close releases the engine's pins on shared cache tables (see
// simulator.Engine.Close). The fleet remains usable; Close signals its
// tables may be evicted when cold.
func (f *Fleet) Close() { f.Eng.Close() }
