package scenario

import (
	"fmt"
	"math"

	"rendezvous/internal/baselines"
	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
)

// environment implements simulator.Environment for a scenario's
// primary-user and jammer dynamics. Available is a pure function of
// (ch, t): primary-user activity is windowed (each PU is ON for a fixed
// contiguous stretch of every window, positioned per window by a
// SplitMix64 draw), and the jammer position is arithmetic on t. That
// random-access purity is what keeps joint and pairwise runs identical.
type environment struct {
	seed uint64

	// Primary users: puByChan[ch] lists the PU process ids camped on ch.
	puByChan map[int][]int
	window   int
	onSlots  int

	// Jammer sweep.
	jamDwell  int
	jamStride int
	jamChans  []int // cyclic target list; empty means the whole universe
	n         int
}

var _ simulator.Environment = (*environment)(nil)

// environment derives the Environment for the scenario, or nil when it
// has no spectrum dynamics.
func (sc Scenario) environment() simulator.Environment {
	hasPU := sc.PU.Count > 0 && sc.PU.OnFrac > 0
	hasJam := sc.Jammer.Dwell > 0
	if !hasPU && !hasJam {
		return nil
	}
	env := &environment{seed: sc.Seed, n: sc.N}
	if hasPU {
		env.window = sc.PU.Window
		// Round half-up so OnFrac=1 saturates the window and tiny
		// fractions still produce at least the rounded slot count.
		env.onSlots = int(math.Round(sc.PU.OnFrac * float64(sc.PU.Window)))
		env.puByChan = make(map[int][]int)
		for p := 0; p < sc.PU.Count; p++ {
			ch := 1 + int(uint64(mix(sc.Seed, streamPUChan, p))%uint64(sc.N))
			env.puByChan[ch] = append(env.puByChan[ch], p)
		}
	}
	if hasJam {
		env.jamDwell = sc.Jammer.Dwell
		env.jamStride = sc.Jammer.Stride
		if env.jamStride == 0 {
			env.jamStride = 1
		}
		if len(sc.Jammer.Channels) > 0 {
			env.jamChans, _ = schedule.ValidateChannels(sc.N, sc.Jammer.Channels)
		}
	}
	return env
}

// Available implements simulator.Environment.
func (e *environment) Available(ch, t int) bool {
	if e.jamDwell > 0 && ch == e.jammedAt(t) {
		return false
	}
	for _, p := range e.puByChan[ch] {
		if e.puActive(p, t) {
			return false
		}
	}
	return true
}

// jammedAt returns the channel the sweeping jammer occupies at slot t.
func (e *environment) jammedAt(t int) int {
	step := t / e.jamDwell
	if len(e.jamChans) > 0 {
		return e.jamChans[(step*e.jamStride)%len(e.jamChans)]
	}
	return 1 + (step*e.jamStride)%e.n
}

// puActive reports whether PU process p occupies its channel at slot t:
// within window w = t/window it is ON for onSlots contiguous slots
// starting at a position drawn from the (seed, p, w) stream.
func (e *environment) puActive(p, t int) bool {
	if e.onSlots <= 0 {
		return false
	}
	if e.onSlots >= e.window {
		return true
	}
	w := t / e.window
	h := uint64(mix(e.seed, streamPUOn, p)) + uint64(w)*0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	start := int(h % uint64(e.window-e.onSlots+1))
	off := t % e.window
	return off >= start && off < start+e.onSlots
}

// Coverage summarizes fleet discovery: how many set-overlapping,
// lifetime-overlapping pairs exist, how many met, and the TTR profile of
// the meetings.
type Coverage struct {
	Agents        int
	EligiblePairs int // hop sets overlap and activity windows intersect
	MetPairs      int
	MeanTTR       float64 // over met pairs; 0 when none met
	LastSlot      int     // latest first-meeting slot among met pairs
}

// MetFrac returns the fraction of eligible pairs that met (1 when there
// are no eligible pairs — nothing was missed).
func (c Coverage) MetFrac() float64 {
	if c.EligiblePairs == 0 {
		return 1
	}
	return float64(c.MetPairs) / float64(c.EligiblePairs)
}

// Summarize computes Coverage for a finished run. Eligibility mirrors
// the engine's pair pruning: complete hop sets intersect, both
// activity windows overlap below the horizon, and — for contact runs —
// the pair is within contact range. The loop is all-pairs; scenarios
// with a Grid should prefer SummarizeContact, which walks only the
// contact edges.
func Summarize(res *simulator.Result, agents []simulator.Agent, horizon int) Coverage {
	cov := Coverage{Agents: len(agents)}
	sets := make([][]int, len(agents))
	for i := range agents {
		sets[i] = schedule.AllChannels(agents[i].Sched)
	}
	var sum int64
	for i := range agents {
		for j := i + 1; j < len(agents); j++ {
			if !simulator.Coexist(agents[i], agents[j], horizon) || !simulator.SetsIntersect(sets[i], sets[j]) {
				continue
			}
			if !res.PairInRange(agents[i].Name, agents[j].Name) {
				continue
			}
			cov.EligiblePairs++
			m, ok := res.Meeting(agents[i].Name, agents[j].Name)
			if !ok {
				continue
			}
			cov.MetPairs++
			sum += int64(m.TTR)
			if m.Slot > cov.LastSlot {
				cov.LastSlot = m.Slot
			}
		}
	}
	if cov.MetPairs > 0 {
		cov.MeanTTR = float64(sum) / float64(cov.MetPairs)
	}
	return cov
}

// baselineBuilder maps the baseline algorithm names onto their
// constructors, deriving per-agent seeds for the randomized ones.
func baselineBuilder(alg string, n int, seed uint64) (Builder, error) {
	switch alg {
	case "crseq":
		return func(set []int, _ int) (schedule.Schedule, error) {
			return baselines.NewCRSEQ(n, set)
		}, nil
	case "crseq-rand":
		return func(set []int, a int) (schedule.Schedule, error) {
			return baselines.NewCRSEQRandomized(n, set, uint64(mix(seed, streamAlg, a)))
		}, nil
	case "jumpstay":
		return func(set []int, _ int) (schedule.Schedule, error) {
			return baselines.NewJumpStay(n, set)
		}, nil
	case "random":
		return func(set []int, a int) (schedule.Schedule, error) {
			return baselines.NewRandom(n, set, uint64(mix(seed, streamAlg, a)), 1<<22)
		}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown algorithm %q (want ours, general, crseq, crseq-rand, jumpstay, random)", alg)
	}
}
