package scenario

import (
	"reflect"
	"testing"

	"rendezvous/internal/simulator"
)

// testScenario is a small fleet with every dynamic enabled: staggered
// wakes, mid-run leaves, primary users, and a sweeping jammer.
func testScenario() Scenario {
	return Scenario{
		Name:    "test",
		N:       64,
		Agents:  12,
		K:       4,
		Seed:    42,
		Horizon: 1 << 13,
		Churn:   Churn{WakeSpread: 500, LeaveFrac: 0.3, MinLife: 1000, MaxLife: 4000},
		PU:      PrimaryUsers{Count: 6, Window: 256, OnFrac: 0.5},
		Jammer:  Jammer{Dwell: 64},
	}
}

func TestValidate(t *testing.T) {
	if err := testScenario().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	mut := func(f func(*Scenario)) Scenario {
		sc := testScenario()
		f(&sc)
		return sc
	}
	bad := map[string]Scenario{
		"n":            mut(func(s *Scenario) { s.N = 0 }),
		"agents":       mut(func(s *Scenario) { s.Agents = 1 }),
		"horizon":      mut(func(s *Scenario) { s.Horizon = 0 }),
		"k-zero":       mut(func(s *Scenario) { s.K = 0 }),
		"k-over":       mut(func(s *Scenario) { s.K = 65 }),
		"block":        mut(func(s *Scenario) { s.Block = []int{0} }),
		"wake-spread":  mut(func(s *Scenario) { s.Churn.WakeSpread = -1 }),
		"leave-frac":   mut(func(s *Scenario) { s.Churn.LeaveFrac = 1.5 }),
		"lifetimes":    mut(func(s *Scenario) { s.Churn.MinLife = 0 }),
		"pu-window":    mut(func(s *Scenario) { s.PU.Window = 1 }),
		"pu-frac":      mut(func(s *Scenario) { s.PU.OnFrac = -0.1 }),
		"jam-dwell":    mut(func(s *Scenario) { s.Jammer.Dwell = -5 }),
		"jam-channels": mut(func(s *Scenario) { s.Jammer.Channels = []int{99} }),
	}
	for name, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestBuilderForUnknown(t *testing.T) {
	if _, err := BuilderFor("nope", 16, 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestBuildDeterministic: the same Scenario value must derive the same
// fleet — names, channel sets, wakes, leaves — every time.
func TestBuildDeterministic(t *testing.T) {
	sc := testScenario()
	build, err := BuilderFor("ours", sc.N, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	a1, _, err := sc.Build(build)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := sc.Build(build)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != sc.Agents {
		t.Fatalf("built %d agents, want %d", len(a1), sc.Agents)
	}
	for i := range a1 {
		if a1[i].Name != a2[i].Name || a1[i].Wake != a2[i].Wake || a1[i].Leave != a2[i].Leave {
			t.Fatalf("agent %d differs across builds: %+v vs %+v", i, a1[i], a2[i])
		}
		if !reflect.DeepEqual(a1[i].Sched.Channels(), a2[i].Sched.Channels()) {
			t.Fatalf("agent %d channel sets differ: %v vs %v",
				i, a1[i].Sched.Channels(), a2[i].Sched.Channels())
		}
	}
}

// TestEnvironmentPure: Available must be a pure random-access function
// of (ch, t) — repeated and out-of-order queries agree.
func TestEnvironmentPure(t *testing.T) {
	sc := testScenario()
	env := sc.environment()
	if env == nil {
		t.Fatal("scenario with PU and jammer produced nil environment")
	}
	type q struct{ ch, t int }
	first := map[q]bool{}
	for ch := 1; ch <= sc.N; ch += 7 {
		for tt := 0; tt < 2048; tt += 137 {
			first[q{ch, tt}] = env.Available(ch, tt)
		}
	}
	// Replay in a different order, twice.
	for round := 0; round < 2; round++ {
		for k, want := range first {
			if got := env.Available(k.ch, k.t); got != want {
				t.Fatalf("Available(%d,%d) flipped: %v then %v", k.ch, k.t, want, got)
			}
		}
	}
}

// TestRunMatchesJointUnderDynamics is the scenario-level equivalence
// regression: under churn + primary users + jammer, the joint engine
// (RunEnv) and the pairwise decomposition (RunParallelEnv) must agree
// meeting-for-meeting at every worker count, on both the block and the
// per-slot reference paths.
func TestRunMatchesJointUnderDynamics(t *testing.T) {
	sc := testScenario()
	build, err := BuilderFor("ours", sc.N, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	agents, env, err := sc.Build(build)
	if err != nil {
		t.Fatal(err)
	}
	if env == nil {
		t.Fatal("expected a live environment")
	}
	eng, err := simulator.NewEngine(agents)
	if err != nil {
		t.Fatal(err)
	}
	for _, block := range []bool{true, false} {
		prev := simulator.SetBlockEval(block)
		want := eng.RunEnv(sc.Horizon, env)
		for _, workers := range []int{1, 4} {
			got := eng.RunParallelEnv(sc.Horizon, workers, env)
			if got.MetCount() != want.MetCount() {
				t.Fatalf("block=%v workers=%d: %d meetings, joint %d",
					block, workers, got.MetCount(), want.MetCount())
			}
			for _, m := range want.Meetings() {
				g, ok := got.Meeting(m.A, m.B)
				if !ok || g != m {
					t.Fatalf("block=%v workers=%d: meeting %v != %v (ok=%v)", block, workers, g, m, ok)
				}
			}
		}
		simulator.SetBlockEval(prev)
	}
}

// TestEnvironmentBlocksMeetings: a jammer camped on the only common
// channel must suppress rendezvous entirely; removing it restores the
// meetings.
func TestEnvironmentBlocksMeetings(t *testing.T) {
	base := Scenario{
		N: 16, Agents: 4, Block: []int{5}, Seed: 9, Horizon: 4096,
	}
	build, err := BuilderFor("ours", base.N, base.Seed)
	if err != nil {
		t.Fatal(err)
	}
	res, agents, err := base.Run(build, 1)
	if err != nil {
		t.Fatal(err)
	}
	cov := Summarize(res, agents, base.Horizon)
	if cov.MetPairs != cov.EligiblePairs || cov.MetPairs == 0 {
		t.Fatalf("calm single-channel coalition should fully meet: %+v", cov)
	}

	jammed := base
	jammed.Jammer = Jammer{Dwell: 8, Channels: []int{5}}
	res, agents, err = jammed.Run(build, 1)
	if err != nil {
		t.Fatal(err)
	}
	cov = Summarize(res, agents, jammed.Horizon)
	if cov.MetPairs != 0 {
		t.Fatalf("jammer on the only channel should block all meetings: %+v", cov)
	}
	if cov.MetFrac() != 0 {
		t.Fatalf("MetFrac = %v with 0/%d met", cov.MetFrac(), cov.EligiblePairs)
	}
}

// TestSummarizeEligibility: pairs whose lifetimes never overlap are not
// eligible, so full coverage is still reportable under churn.
func TestSummarizeEligibility(t *testing.T) {
	sc := testScenario()
	build, err := BuilderFor("ours", sc.N, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	res, agents, err := sc.Run(build, 0)
	if err != nil {
		t.Fatal(err)
	}
	cov := Summarize(res, agents, sc.Horizon)
	if cov.Agents != sc.Agents {
		t.Fatalf("coverage agents %d, want %d", cov.Agents, sc.Agents)
	}
	if cov.MetPairs > cov.EligiblePairs {
		t.Fatalf("met %d > eligible %d", cov.MetPairs, cov.EligiblePairs)
	}
	if cov.LastSlot >= sc.Horizon {
		t.Fatalf("LastSlot %d outside horizon %d", cov.LastSlot, sc.Horizon)
	}
	if f := cov.MetFrac(); f < 0 || f > 1 {
		t.Fatalf("MetFrac %v outside [0,1]", f)
	}
}
