// Package scenario turns the pairwise simulator into a network-scale
// scenario engine: it derives whole fleets (channel sets, wake times,
// churn) and deterministic environment dynamics (primary-user on/off
// processes, jammer sweeps) from a single seed, and runs them through
// simulator.Engine.
//
// Everything is a pure function of the Scenario value: channel sets,
// wake and leave slots, and every Environment decision are derived from
// Seed via SplitMix64 streams (sweep.DeriveSeed), with no sequential RNG
// state. In particular Environment.Available(ch, t) is random-access
// pure, which is what lets both of the engine's parallel decompositions
// (the pairwise scan and the time-sharded joint scan behind
// RunParallelEnv) reproduce the joint simulation exactly at any worker
// count — the determinism invariant every experiment in this repository
// is built on.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
	"rendezvous/internal/sweep"
)

// Derivation stream tags: each class of random decision mixes its own
// tag into the seed so no two draws share a stream.
const (
	streamHub    = 101
	streamAgent  = 202
	streamPUChan = 303
	streamPUOn   = 305
	streamAlg    = 404
	streamPos    = 505
)

// mix derives a sub-seed from the scenario seed and a stream tag plus
// index, chaining the SplitMix64 finalizer.
func mix(seed uint64, stream, index int) int64 {
	return sweep.DeriveSeed(sweep.DeriveSeed(int64(seed), stream), index)
}

// Churn configures fleet dynamics: staggered joins and mid-run leaves.
type Churn struct {
	// WakeSpread staggers joins: wake slots are drawn uniformly from
	// [0, WakeSpread]. Zero means everyone wakes at slot 0.
	WakeSpread int
	// LeaveFrac is the probability that an agent powers off before the
	// horizon (its simulator.Agent gets a positive Leave slot).
	LeaveFrac float64
	// MinLife and MaxLife bound how many slots a leaving agent stays
	// active after waking. Required (≥ 1, MinLife ≤ MaxLife) when
	// LeaveFrac > 0.
	MinLife, MaxLife int
}

// PrimaryUsers configures incumbent activity: Count independent on/off
// processes, each camped on one channel of the universe. Process p is ON
// for a contiguous OnFrac-fraction of every Window-slot window, at a
// per-window position derived from the scenario seed — a deterministic,
// random-access stand-in for the usual exponential on/off PU model.
type PrimaryUsers struct {
	Count  int
	Window int     // slots per activity window; required (≥ 2) when Count > 0
	OnFrac float64 // fraction of each window the PU occupies its channel, in [0,1]
}

// Jammer configures a sweeping wide-band jammer: it camps Dwell slots on
// a channel, then steps Stride channels (default 1). With Channels set
// it sweeps that list cyclically (barrage jamming of a known block);
// otherwise it sweeps the whole universe [1, N].
type Jammer struct {
	Dwell    int
	Stride   int
	Channels []int
}

// Scenario describes a network-scale workload: a fleet whose channel
// sets, wake offsets and churn are derived from Seed, plus environment
// dynamics. The zero values of Churn/PrimaryUsers/Jammer disable the
// respective dynamics, leaving a static fleet over static spectrum.
type Scenario struct {
	Name    string // optional label, reported by String
	N       int    // channel universe [1, N]
	Agents  int    // fleet size
	K       int    // channels per agent (ignored when Block is set)
	Block   []int  // optional: every agent uses exactly this channel set (coalition case)
	Seed    uint64
	Horizon int

	Churn  Churn
	PU     PrimaryUsers
	Jammer Jammer
	// Grid places the fleet on a plane and bounds rendezvous to
	// in-range pairs (see Grid); the zero value keeps every pair in
	// range, exactly the pre-contact behavior.
	Grid Grid
}

// String renders the scenario parameters on one line.
func (sc Scenario) String() string {
	name := sc.Name
	if name == "" {
		name = "scenario"
	}
	base := fmt.Sprintf("%s: n=%d agents=%d", name, sc.N, sc.Agents)
	if len(sc.Block) > 0 {
		base += fmt.Sprintf(" block=%v", sc.Block)
	} else {
		base += fmt.Sprintf(" k=%d", sc.K)
	}
	base += fmt.Sprintf(" seed=%d horizon=%d", sc.Seed, sc.Horizon)
	if sc.Churn.WakeSpread > 0 || sc.Churn.LeaveFrac > 0 {
		base += fmt.Sprintf(" churn{spread=%d leave=%.2f}", sc.Churn.WakeSpread, sc.Churn.LeaveFrac)
	}
	if sc.PU.Count > 0 {
		base += fmt.Sprintf(" pu{count=%d window=%d on=%.2f}", sc.PU.Count, sc.PU.Window, sc.PU.OnFrac)
	}
	if sc.Jammer.Dwell > 0 {
		base += fmt.Sprintf(" jammer{dwell=%d}", sc.Jammer.Dwell)
	}
	if sc.Grid.enabled() {
		base += fmt.Sprintf(" grid{side=%g radius=%g}", sc.Grid.Side, sc.Grid.Radius)
	}
	return base
}

// Validate checks the scenario parameters and returns the first
// problem found.
func (sc Scenario) Validate() error {
	if sc.N < 1 {
		return fmt.Errorf("scenario: universe size N=%d must be positive", sc.N)
	}
	if sc.Agents < 2 {
		return fmt.Errorf("scenario: need at least 2 agents, got %d", sc.Agents)
	}
	if sc.Horizon < 1 {
		return fmt.Errorf("scenario: horizon %d must be positive", sc.Horizon)
	}
	if len(sc.Block) > 0 {
		if _, err := schedule.ValidateChannels(sc.N, sc.Block); err != nil {
			return fmt.Errorf("scenario: block: %w", err)
		}
	} else if sc.K < 1 || sc.K > sc.N {
		return fmt.Errorf("scenario: K=%d must be in [1, N=%d]", sc.K, sc.N)
	}
	if sc.Churn.WakeSpread < 0 {
		return fmt.Errorf("scenario: churn wake spread %d must be non-negative", sc.Churn.WakeSpread)
	}
	if sc.Churn.LeaveFrac < 0 || sc.Churn.LeaveFrac > 1 {
		return fmt.Errorf("scenario: churn leave fraction %v must be in [0,1]", sc.Churn.LeaveFrac)
	}
	if sc.Churn.LeaveFrac > 0 && (sc.Churn.MinLife < 1 || sc.Churn.MaxLife < sc.Churn.MinLife) {
		return fmt.Errorf("scenario: churn lifetimes [%d,%d] need 1 ≤ min ≤ max when LeaveFrac > 0",
			sc.Churn.MinLife, sc.Churn.MaxLife)
	}
	if sc.PU.Count < 0 {
		return fmt.Errorf("scenario: PU count %d must be non-negative", sc.PU.Count)
	}
	if sc.PU.Count > 0 {
		if sc.PU.Window < 2 {
			return fmt.Errorf("scenario: PU window %d must be ≥ 2", sc.PU.Window)
		}
		if sc.PU.OnFrac < 0 || sc.PU.OnFrac > 1 {
			return fmt.Errorf("scenario: PU on-fraction %v must be in [0,1]", sc.PU.OnFrac)
		}
	}
	if sc.Jammer.Dwell < 0 || sc.Jammer.Stride < 0 {
		return fmt.Errorf("scenario: jammer dwell/stride must be non-negative")
	}
	if len(sc.Jammer.Channels) > 0 {
		if _, err := schedule.ValidateChannels(sc.N, sc.Jammer.Channels); err != nil {
			return fmt.Errorf("scenario: jammer channels: %w", err)
		}
	}
	if err := sc.Grid.validate(); err != nil {
		return err
	}
	return nil
}

// Builder constructs the schedule for one agent from its channel set.
// The agent index lets randomized algorithms derive per-agent seeds.
type Builder func(set []int, agent int) (schedule.Schedule, error)

// Build derives the fleet and environment from the scenario seed. The
// same Scenario value always produces the same agents and the same
// environment decisions, whatever machine or worker count runs them.
// The returned environment is nil when the scenario has no spectrum
// dynamics (engine runs then take the plain static-spectrum path).
func (sc Scenario) Build(build Builder) ([]simulator.Agent, simulator.Environment, error) {
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}
	if build == nil {
		return nil, nil, fmt.Errorf("scenario: nil schedule builder")
	}
	// Population model (matches the MULTI experiment): everyone shares a
	// hub channel with probability 1/2, plus random extras — connected
	// enough that most pairs are meetable, sparse enough to exercise the
	// engine's disjoint-pair pruning. A fixed Block overrides all of it.
	hubRng := rand.New(rand.NewSource(mix(sc.Seed, streamHub, 0)))
	hub := 1 + hubRng.Intn(sc.N)
	agents := make([]simulator.Agent, sc.Agents)
	for a := range agents {
		rng := rand.New(rand.NewSource(mix(sc.Seed, streamAgent, a)))
		var set []int
		if len(sc.Block) > 0 {
			set, _ = schedule.ValidateChannels(sc.N, sc.Block)
		} else if rng.Intn(2) == 0 {
			set = randomSetContaining(rng, sc.N, sc.K, hub)
		} else {
			set = randomSetContaining(rng, sc.N, sc.K, 1+rng.Intn(sc.N))
		}
		wake := 0
		if sc.Churn.WakeSpread > 0 {
			wake = rng.Intn(sc.Churn.WakeSpread + 1)
		}
		leave := 0
		if sc.Churn.LeaveFrac > 0 && rng.Float64() < sc.Churn.LeaveFrac {
			life := sc.Churn.MinLife + rng.Intn(sc.Churn.MaxLife-sc.Churn.MinLife+1)
			leave = wake + life
		}
		s, err := build(set, a)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: agent %d (set %v): %w", a, set, err)
		}
		agents[a] = simulator.Agent{Name: agentName(a), Sched: s, Wake: wake, Leave: leave}
	}
	return agents, sc.environment(), nil
}

// agentName is the canonical fleet naming: a0, a1, … in build order.
func agentName(a int) string { return fmt.Sprintf("a%d", a) }

// Run builds the fleet and runs it with the given worker count (≤ 0
// means GOMAXPROCS). The engine picks its decomposition by fleet size —
// the pairwise scan for small fleets, the time-sharded joint scan once
// the meetable-pair count crosses over, the contact-sparse scan when
// the scenario has a Grid — and all of them are exact, so the result
// is byte-identical at any worker count either way.
func (sc Scenario) Run(build Builder, workers int) (*simulator.Result, []simulator.Agent, error) {
	fl, err := sc.Open(build)
	if err != nil {
		return nil, nil, err
	}
	// Close after the run: the engine borrowed its hop tables from the
	// shared cache, and releasing the pins lets the cache cycle them —
	// the next Run of an equal-shaped scenario gets them back as hits.
	defer fl.Close()
	return fl.Eng.RunParallelEnv(sc.Horizon, workers, fl.Env), fl.Agents, nil
}

// randomSetContaining returns a random size-k subset of [n] containing
// the given channel, sorted ascending.
func randomSetContaining(rng *rand.Rand, n, k, contains int) []int {
	set := map[int]bool{contains: true}
	for len(set) < k {
		set[1+rng.Intn(n)] = true
	}
	out := make([]int, 0, k)
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// BuilderFor returns the schedule builder for a named algorithm over
// universe [1, n]: ours (the paper's flagship), general (no §3.2
// wrapper), crseq, crseq-rand, jumpstay, random. Randomized algorithms
// derive per-agent seeds from seed.
func BuilderFor(alg string, n int, seed uint64) (Builder, error) {
	switch alg {
	case "ours":
		return func(set []int, _ int) (schedule.Schedule, error) {
			return schedule.NewAsync(n, set)
		}, nil
	case "general":
		return func(set []int, _ int) (schedule.Schedule, error) {
			return schedule.NewGeneral(n, set)
		}, nil
	default:
		return baselineBuilder(alg, n, seed)
	}
}
