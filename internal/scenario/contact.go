package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
)

// Contact geometry: the spatial side of a scenario.
//
// A Grid places the fleet on a Side×Side plane, uniformly at random
// per agent from the scenario seed (stream streamPos — positions are
// as deterministic as channel sets and churn), and bounds rendezvous
// to pairs within Radius of each other. The plane is partitioned into
// square cells of side ≥ Radius, so every in-range pair lives in
// adjacent cells and the engine's cell-filtered sparse scan applies.
// The zero Grid disables contacts entirely: the scenario is the
// classic all-pairs workload and nothing downstream changes.

// Grid configures the contact geometry of a scenario. The zero value
// disables it (every pair in range, the pre-contact behavior).
type Grid struct {
	// Side is the edge length of the square deployment area; agents are
	// placed uniformly at random over it. Zero disables the grid.
	Side float64
	// Radius is the contact radius: only pairs at Euclidean distance
	// ≤ Radius can rendezvous. Required in (0, Side] when Side > 0.
	Radius float64
}

// enabled reports whether the scenario has contact geometry.
func (g Grid) enabled() bool { return g.Side > 0 }

// cells returns the grid dimension per axis: the largest cell count
// whose cell side Side/cells still covers Radius, so a 3×3 cell
// neighborhood always contains the full contact disc.
func (g Grid) cells() int {
	c := int(g.Side / g.Radius)
	if c < 1 {
		c = 1
	}
	return c
}

// validate checks the grid parameters.
func (g Grid) validate() error {
	if !g.enabled() {
		if g.Radius != 0 {
			return fmt.Errorf("scenario: grid radius %v without a side (set Grid.Side)", g.Radius)
		}
		return nil
	}
	if g.Radius <= 0 || g.Radius > g.Side {
		return fmt.Errorf("scenario: grid radius %v must be in (0, side=%v]", g.Radius, g.Side)
	}
	return nil
}

// contactTopology derives the fleet's positions and cell assignment
// from the scenario seed, or nil when the grid is disabled. Cells are
// computed from the stored float32 coordinates (the ones the engine's
// exact radius test reads), so cell membership is always consistent
// with the positions.
func (sc Scenario) contactTopology() *simulator.ContactTopology {
	if !sc.Grid.enabled() {
		return nil
	}
	cells := sc.Grid.cells()
	cellSide := sc.Grid.Side / float64(cells)
	ct := &simulator.ContactTopology{
		CellsX: cells, CellsY: cells,
		Cell:   make([]int32, sc.Agents),
		X:      make([]float32, sc.Agents),
		Y:      make([]float32, sc.Agents),
		Radius: sc.Grid.Radius,
	}
	for a := 0; a < sc.Agents; a++ {
		rng := rand.New(rand.NewSource(mix(sc.Seed, streamPos, a)))
		x := float32(rng.Float64() * sc.Grid.Side)
		y := float32(rng.Float64() * sc.Grid.Side)
		ct.X[a], ct.Y[a] = x, y
		ct.Cell[a] = int32(cellIndex(y, cellSide, cells)*cells + cellIndex(x, cellSide, cells))
	}
	return ct
}

// cellIndex maps a stored coordinate to its cell along one axis,
// clamped so float32 rounding at the far edge cannot escape the grid.
func cellIndex(v float32, cellSide float64, cells int) int {
	c := int(float64(v) / cellSide)
	if c >= cells {
		c = cells - 1
	}
	if c > 0 && float64(v) < float64(c)*cellSide {
		c-- // division rounded up across a cell boundary
	}
	return c
}

// ContactGraph is the scenario's contact relation in build (input)
// order: per-agent neighbor lists, per-cell agent lists, and the raw
// topology the engine consumes. It is immutable after construction.
type ContactGraph struct {
	topo     *simulator.ContactTopology
	adjBase  []int32 // agent -> first neighbor index, len agents+1
	adj      []int32 // neighbor agent ids, ascending within each row
	cellBase []int32 // cell -> first member index, len cells+1
	cellIDs  []int32 // cell members in ascending agent id order
}

// ContactGraph derives the scenario's contact graph, or (nil, nil)
// when the grid is disabled. The same Scenario value always yields the
// same graph; positions come from the streamPos stream of Seed exactly
// as Run's engine sees them.
func (sc Scenario) ContactGraph() (*ContactGraph, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	ct := sc.contactTopology()
	if ct == nil {
		return nil, nil
	}
	return newContactGraph(ct), nil
}

// newContactGraph builds the adjacency and cell CSRs from a topology.
func newContactGraph(ct *simulator.ContactTopology) *ContactGraph {
	n := len(ct.Cell)
	cells := ct.CellsX * ct.CellsY
	g := &ContactGraph{
		topo:     ct,
		cellBase: make([]int32, cells+1),
		cellIDs:  make([]int32, n),
	}
	for _, c := range ct.Cell {
		g.cellBase[c+1]++
	}
	for c := 0; c < cells; c++ {
		g.cellBase[c+1] += g.cellBase[c]
	}
	fill := make([]int32, cells)
	copy(fill, g.cellBase[:cells])
	for i := 0; i < n; i++ { // ascending i keeps each cell's members sorted
		c := ct.Cell[i]
		g.cellIDs[fill[c]] = int32(i)
		fill[c]++
	}
	// Adjacency over the 3×3 neighborhood: count, prefix-sum, fill —
	// no per-row reallocation at fleet scale.
	deg := make([]int32, n)
	g.eachNeighbor(func(i, j int32) { deg[i]++ })
	g.adjBase = make([]int32, n+1)
	for i := 0; i < n; i++ {
		g.adjBase[i+1] = g.adjBase[i] + deg[i]
	}
	g.adj = make([]int32, g.adjBase[n])
	pos := make([]int32, n)
	copy(pos, g.adjBase[:n])
	g.eachNeighbor(func(i, j int32) {
		g.adj[pos[i]] = j
		pos[i]++
	})
	for i := 0; i < n; i++ { // cell rows interleave; each row needs one sort
		row := g.adj[g.adjBase[i]:g.adjBase[i+1]]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
	}
	return g
}

// eachNeighbor invokes f(i, j) for every ordered in-range pair i ≠ j,
// by walking each agent's 3×3 cell neighborhood.
func (g *ContactGraph) eachNeighbor(f func(i, j int32)) {
	ct := g.topo
	for i := 0; i < len(ct.Cell); i++ {
		c := int(ct.Cell[i])
		cx, cy := c%ct.CellsX, c/ct.CellsX
		for dy := -1; dy <= 1; dy++ {
			yy := cy + dy
			if yy < 0 || yy >= ct.CellsY {
				continue
			}
			xLo, xHi := max(cx-1, 0), min(cx+1, ct.CellsX-1)
			lo := g.cellBase[yy*ct.CellsX+xLo]
			hi := g.cellBase[yy*ct.CellsX+xHi+1]
			for m := lo; m < hi; m++ {
				if j := g.cellIDs[m]; int(j) != i && g.InRange(i, int(j)) {
					f(int32(i), j)
				}
			}
		}
	}
}

// Agents returns the number of agents in the graph.
func (g *ContactGraph) Agents() int { return len(g.topo.Cell) }

// Contacts returns agent i's in-range neighbors in ascending agent id
// order. The slice aliases the graph; callers must not modify it.
func (g *ContactGraph) Contacts(i int) []int32 {
	return g.adj[g.adjBase[i]:g.adjBase[i+1]]
}

// InRange reports whether agents i and j are within contact radius,
// with the same float32 arithmetic the engine's radius test uses.
func (g *ContactGraph) InRange(i, j int) bool {
	ct := g.topo
	dx := float64(ct.X[i] - ct.X[j])
	dy := float64(ct.Y[i] - ct.Y[j])
	return dx*dx+dy*dy <= ct.Radius*ct.Radius
}

// Edges returns the number of unordered in-range pairs.
func (g *ContactGraph) Edges() int { return len(g.adj) / 2 }

// Cells returns the grid dimensions (CellsX, CellsY).
func (g *ContactGraph) Cells() (int, int) { return g.topo.CellsX, g.topo.CellsY }

// CellAgents returns the agents placed in grid cell c (row-major cell
// id), in ascending agent id order. The slice aliases the graph.
func (g *ContactGraph) CellAgents(c int) []int32 {
	return g.cellIDs[g.cellBase[c]:g.cellBase[c+1]]
}

// Topology returns the engine-consumable topology backing the graph.
func (g *ContactGraph) Topology() *simulator.ContactTopology { return g.topo }

// SummarizeContact computes Coverage by walking the contact graph's
// edges — O(contact edges) where Summarize's all-pairs loop is
// O(agents²), which is the difference between milliseconds and hours
// at 100k+ agents. With a nil graph it falls back to Summarize.
func SummarizeContact(res *simulator.Result, agents []simulator.Agent, horizon int, g *ContactGraph) Coverage {
	if g == nil {
		return Summarize(res, agents, horizon)
	}
	cov := Coverage{Agents: len(agents)}
	sets := make([][]int, len(agents))
	for i := range agents {
		sets[i] = schedule.AllChannels(agents[i].Sched)
	}
	var sum int64
	for i := range agents {
		for _, j32 := range g.Contacts(i) {
			j := int(j32)
			if j < i {
				continue // each unordered edge once
			}
			if !simulator.Coexist(agents[i], agents[j], horizon) || !simulator.SetsIntersect(sets[i], sets[j]) {
				continue
			}
			cov.EligiblePairs++
			m, ok := res.Meeting(agents[i].Name, agents[j].Name)
			if !ok {
				continue
			}
			cov.MetPairs++
			sum += int64(m.TTR)
			if m.Slot > cov.LastSlot {
				cov.LastSlot = m.Slot
			}
		}
	}
	if cov.MetPairs > 0 {
		cov.MeanTTR = float64(sum) / float64(cov.MetPairs)
	}
	return cov
}
