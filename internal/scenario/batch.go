package scenario

import (
	"fmt"

	"rendezvous/internal/simulator"
	"rendezvous/internal/sweep"
)

// Batched scenario submission: many (fleet, horizon) jobs through one
// worker pool, all sharing the process-wide table cache. Experiment
// drivers (NETWORK, NETWORK-SPARSE) and CLI sweeps submit their whole
// grid here instead of looping Run serially; a future rvserve queues
// requests into the same shape. This package owns the API (rather than
// internal/sweep) because sweep must stay import-cycle-free below both
// scenario and simulator.

// RunJob is one unit of batched work: a scenario plus the builder that
// realizes its algorithm, run at the given engine worker count (≤ 0
// means GOMAXPROCS; batch callers usually want 0 for the per-job
// default or 1 when the batch itself saturates the cores).
type RunJob struct {
	Sc      Scenario
	Build   Builder
	Workers int
}

// RunOut is the outcome of one RunJob, index-aligned with the submitted
// slice.
type RunOut struct {
	Res    *simulator.Result
	Agents []simulator.Agent
	Err    error
}

// RunMany executes every job through r's worker pool and returns the
// outcomes in submission order. Each job is independent (scenarios are
// pure functions of their seeds) and every engine borrows from the
// shared table cache, so jobs with equal fleet shapes build their hop
// tables once across the whole batch. Determinism is unchanged: job
// outputs do not depend on scheduling, so the result slice is
// byte-stable at any r.Workers.
func RunMany(r sweep.Runner, jobs []RunJob) []RunOut {
	return sweep.Map(r, len(jobs), func(i int) RunOut {
		if jobs[i].Build == nil {
			// Callers batch-deriving jobs leave failed derivations empty.
			return RunOut{Err: fmt.Errorf("scenario: job %d has no builder", i)}
		}
		res, agents, err := jobs[i].Sc.Run(jobs[i].Build, jobs[i].Workers)
		return RunOut{Res: res, Agents: agents, Err: err}
	})
}
