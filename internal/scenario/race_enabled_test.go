//go:build race

package scenario

// raceEnabled reports whether the race detector is compiled in; the
// 100k-agent smoke run skips under it (5-20× slowdown blows the CI
// smoke budget without adding coverage the small fleets lack).
const raceEnabled = true
