package scenario

import (
	"math"
	"strings"
	"testing"
	"time"

	"rendezvous/internal/simulator"
)

// gridScenario is the shared contact-test workload: small enough to
// brute-force, large enough that the grid has interior cells.
func gridScenario(agents int) Scenario {
	return Scenario{
		Name: "grid-test", N: 16, Agents: agents, K: 3, Seed: 11, Horizon: 4000,
		Grid: Grid{Side: 8, Radius: 1.5},
	}
}

func TestGridValidate(t *testing.T) {
	for name, mutate := range map[string]func(*Scenario){
		"radius-zero":      func(sc *Scenario) { sc.Grid.Radius = 0 },
		"radius-negative":  func(sc *Scenario) { sc.Grid.Radius = -1 },
		"radius-over-side": func(sc *Scenario) { sc.Grid.Radius = 9 },
		"radius-no-side":   func(sc *Scenario) { sc.Grid = Grid{Radius: 1} },
	} {
		sc := gridScenario(16)
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: invalid grid accepted (%+v)", name, sc.Grid)
		}
	}
	sc := gridScenario(16)
	if err := sc.Validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	if !strings.Contains(sc.String(), "grid{side=8 radius=1.5}") {
		t.Fatalf("String() missing grid config: %s", sc)
	}
	if s := (Scenario{Name: "plain", N: 4, Agents: 2, K: 1, Horizon: 10}).String(); strings.Contains(s, "grid") {
		t.Fatalf("grid-free String() mentions grid: %s", s)
	}
}

// TestContactGraphDeterministic pins position derivation: the graph is
// a pure function of the Scenario value.
func TestContactGraphDeterministic(t *testing.T) {
	sc := gridScenario(80)
	g1, err := sc.ContactGraph()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := sc.ContactGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g1.Edges() != g2.Edges() || g1.Agents() != g2.Agents() {
		t.Fatalf("graph not deterministic: %d/%d edges, %d/%d agents",
			g1.Edges(), g2.Edges(), g1.Agents(), g2.Agents())
	}
	for i := 0; i < g1.Agents(); i++ {
		a, b := g1.Contacts(i), g2.Contacts(i)
		if len(a) != len(b) {
			t.Fatalf("agent %d degree %d vs %d", i, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("agent %d neighbor %d: %d vs %d", i, k, a[k], b[k])
			}
		}
	}
	if g, err := (Scenario{N: 4, Agents: 4, K: 2, Seed: 1, Horizon: 100}).ContactGraph(); err != nil || g != nil {
		t.Fatalf("grid-free scenario ContactGraph = (%v, %v), want (nil, nil)", g, err)
	}
}

// TestContactGraphBruteForce checks the neighbor lists, edge count and
// cell partition against an all-pairs recount from the raw positions.
func TestContactGraphBruteForce(t *testing.T) {
	sc := gridScenario(120)
	g, err := sc.ContactGraph()
	if err != nil {
		t.Fatal(err)
	}
	n := g.Agents()
	edges := 0
	for i := 0; i < n; i++ {
		row := g.Contacts(i)
		for k := 1; k < len(row); k++ {
			if row[k-1] >= row[k] {
				t.Fatalf("agent %d neighbors not ascending: %v", i, row)
			}
		}
		want := make([]int32, 0, len(row))
		for j := 0; j < n; j++ {
			if j != i && g.InRange(i, j) {
				want = append(want, int32(j))
			}
		}
		if len(row) != len(want) {
			t.Fatalf("agent %d has %d neighbors, brute force %d", i, len(row), len(want))
		}
		for k := range row {
			if row[k] != want[k] {
				t.Fatalf("agent %d neighbors %v, brute force %v", i, row, want)
			}
		}
		edges += len(row)
	}
	if g.Edges() != edges/2 {
		t.Fatalf("Edges() = %d, directed recount/2 = %d", g.Edges(), edges/2)
	}
	cx, cy := g.Cells()
	seen := make([]bool, n)
	for c := 0; c < cx*cy; c++ {
		for _, a := range g.CellAgents(c) {
			if seen[a] {
				t.Fatalf("agent %d in two cells", a)
			}
			seen[a] = true
			if g.Topology().Cell[a] != int32(c) {
				t.Fatalf("agent %d listed in cell %d, topology says %d", a, c, g.Topology().Cell[a])
			}
		}
	}
	for a, ok := range seen {
		if !ok {
			t.Fatalf("agent %d in no cell", a)
		}
	}
}

// TestScenarioRunGrid is the scenario-level equivalence: a gridded run
// reports exactly the grid-free run's meetings for in-range pairs and
// nothing for out-of-range pairs, and both Coverage paths agree on it.
func TestScenarioRunGrid(t *testing.T) {
	sc := gridScenario(64)
	sc.Churn = Churn{WakeSpread: 300, LeaveFrac: 0.2, MinLife: 1500, MaxLife: 4000}
	sc.PU = PrimaryUsers{Count: 3, Window: 256, OnFrac: 0.5}
	build, err := BuilderFor("ours", sc.N, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.ContactGraph()
	if err != nil {
		t.Fatal(err)
	}
	res, agents, err := sc.Run(build, 2)
	if err != nil {
		t.Fatal(err)
	}
	dense := sc
	dense.Grid = Grid{}
	denseRes, _, err := dense.Run(build, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range agents {
		for j := i + 1; j < len(agents); j++ {
			dm, dok := denseRes.Meeting(agents[i].Name, agents[j].Name)
			cm, cok := res.Meeting(agents[i].Name, agents[j].Name)
			if !g.InRange(i, j) {
				if cok {
					t.Fatalf("out-of-range pair %s-%s met at %d", agents[i].Name, agents[j].Name, cm.Slot)
				}
				continue
			}
			if dok != cok || (dok && dm != cm) {
				t.Fatalf("in-range pair %s-%s: dense (%v,%v) vs grid (%v,%v)",
					agents[i].Name, agents[j].Name, dm, dok, cm, cok)
			}
		}
	}
	covAll := Summarize(res, agents, sc.Horizon)
	covEdge := SummarizeContact(res, agents, sc.Horizon, g)
	if covAll != covEdge {
		t.Fatalf("Summarize %+v != SummarizeContact %+v", covAll, covEdge)
	}
	if covEdge.MetPairs == 0 {
		t.Fatal("gridded run met no pairs — geometry or routing is broken")
	}
	if covNil := SummarizeContact(res, agents, sc.Horizon, nil); covNil != covAll {
		t.Fatalf("nil-graph SummarizeContact %+v != Summarize %+v", covNil, covAll)
	}
}

// TestSparseFleet100k is the network-scale smoke run: a 100,000-agent
// contact fleet, built and simulated end to end inside the CI smoke
// budget — feasible at all only because every pair structure involved
// (graph, engine state, summary) is O(contact edges), never
// O(agents²). It also pins the routing: a fleet this size must take
// the contact-sparse scan, not any dense path.
func TestSparseFleet100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-agent fleet; skipped in -short")
	}
	if raceEnabled {
		t.Skip("100k-agent fleet; skipped under the race detector")
	}
	const fleet = 100_000
	sc := Scenario{
		Name: "smoke-100k", N: 128, Agents: fleet, K: 4, Seed: 3, Horizon: 512,
		PU:   PrimaryUsers{Count: 8, Window: 256, OnFrac: 0.5},
		Grid: Grid{Side: math.Sqrt(fleet), Radius: 2.26},
	}
	build, err := BuilderFor("ours", sc.N, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	agents, env, err := sc.Build(build)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := simulator.NewEngineContact(agents, sc.contactTopology())
	if err != nil {
		t.Fatal(err)
	}
	res := eng.RunParallelEnv(sc.Horizon, 0, env)
	if r := eng.LastRoute(); r != simulator.RouteSparse {
		t.Fatalf("100k-agent contact fleet routed %v, want sparse", r)
	}
	g, err := sc.ContactGraph()
	if err != nil {
		t.Fatal(err)
	}
	cov := SummarizeContact(res, agents, sc.Horizon, g)
	t.Logf("100k fleet: %d edges, %d eligible, %d met (%.1f%%), built+run+summarized in %v",
		g.Edges(), cov.EligiblePairs, cov.MetPairs, 100*cov.MetFrac(), time.Since(start))
	// Constant-density geometry: mean degree ≈ π·r² ≈ 16, so the edge
	// count must land near fleet·8 — and the candidate space must be
	// orders of magnitude below the 5·10⁹ all-pairs count.
	if g.Edges() < fleet*4 || g.Edges() > fleet*16 {
		t.Fatalf("edge count %d outside the plausible band for mean degree 16", g.Edges())
	}
	if cov.MetPairs == 0 {
		t.Fatal("no pair met — the sparse scan found nothing")
	}
	if eng.Edges() != g.Edges() {
		t.Fatalf("engine sees %d edges, graph %d", eng.Edges(), g.Edges())
	}
}
