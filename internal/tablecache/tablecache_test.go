package tablecache

import (
	"fmt"
	"testing"

	"rendezvous/internal/schedule"
)

func mustCyclic(t *testing.T, seq []int) *schedule.Cyclic {
	t.Helper()
	c, err := schedule.NewCyclic(seq)
	if err != nil {
		t.Fatalf("NewCyclic(%v): %v", seq, err)
	}
	return c
}

func seq(base, n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = base + i
	}
	return xs
}

func TestCompileSharesTables(t *testing.T) {
	c := New(1 << 20)
	a := mustCyclic(t, seq(1, 16))
	b := mustCyclic(t, seq(1, 16)) // distinct value, equal parameters

	ca, ha := c.Compile(a)
	cb, hb := c.Compile(b)
	defer ha.Release()
	defer hb.Release()

	if ca != cb {
		t.Fatalf("equal-parameter schedules got distinct compiled tables")
	}
	if _, ok := ca.(*schedule.Compiled); !ok {
		t.Fatalf("Compile returned %T, want *schedule.Compiled", ca)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats after shared compile = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	for slot := 0; slot < 40; slot++ {
		if got, want := ca.Channel(slot), a.Channel(slot); got != want {
			t.Fatalf("cached table: channel(%d) = %d, want %d", slot, got, want)
		}
	}
}

// TestStatsPinned pins the pin-leak observables: Pinned counts entries
// with outstanding pins, Refs the pins themselves, and both return to
// zero once every handle is released — the invariant rvserve's drain
// asserts after closing its engines.
func TestStatsPinned(t *testing.T) {
	c := New(1 << 20)
	a := mustCyclic(t, seq(1, 16))
	b := mustCyclic(t, seq(30, 16))

	_, ha := c.Compile(a)
	_, hb1 := c.Compile(b)
	_, hb2 := c.Compile(b) // second pin on the same entry

	if st := c.Stats(); st.Pinned != 2 || st.Refs != 3 {
		t.Fatalf("with 3 pins over 2 entries, stats = %+v", st)
	}
	hb1.Release()
	if st := c.Stats(); st.Pinned != 2 || st.Refs != 2 {
		t.Fatalf("after one release, stats = %+v", st)
	}
	hb2.Release()
	ha.Release()
	st := c.Stats()
	if st.Pinned != 0 || st.Refs != 0 {
		t.Fatalf("pins survive full release: %+v", st)
	}
	if st.Entries != 2 {
		t.Fatalf("unpinned entries under budget were dropped: %+v", st)
	}
}

func TestNilCachePassesThrough(t *testing.T) {
	var c *Cache
	s := mustCyclic(t, seq(1, 8))
	cs, h := c.Compile(s)
	h.Release() // zero handle must be a no-op
	if _, ok := cs.(*schedule.Compiled); !ok {
		t.Fatalf("nil cache Compile returned %T, want *schedule.Compiled", cs)
	}
	if got := c.Stats(); got != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", got)
	}
}

func TestUnkeyedSchedulePassesThrough(t *testing.T) {
	c := New(1 << 20)
	// A raw func-backed schedule has no CacheKey.
	s := scheduleFunc{}
	cs, h := c.Compile(s)
	h.Release()
	if _, ok := cs.(*schedule.Compiled); !ok {
		t.Fatalf("unkeyed Compile returned %T, want *schedule.Compiled", cs)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("unkeyed schedule was cached: %+v", st)
	}
}

// scheduleFunc is a minimal keyless schedule: constant channel 3.
type scheduleFunc struct{}

func (scheduleFunc) Channel(t int) int { return 3 }
func (scheduleFunc) Period() int       { return 4 }
func (scheduleFunc) Channels() []int   { return []int{3} }

// TestEvictionUnderPressure is the cache-eviction-under-pressure check:
// a budget far below one table forces every unpinned entry out, counts
// evictions, and the returned tables stay correct throughout.
func TestEvictionUnderPressure(t *testing.T) {
	c := New(1) // 1 byte: nothing unpinned survives
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			s := mustCyclic(t, seq(10*i+1, 8))
			cs, h := c.Compile(s)
			for slot := 0; slot < 16; slot++ {
				if got, want := cs.Channel(slot), s.Channel(slot); got != want {
					t.Fatalf("round %d sched %d: channel(%d) = %d, want %d", round, i, slot, got, want)
				}
			}
			// Pinned entries may hold the cache over budget...
			if st := c.Stats(); st.Entries == 0 {
				t.Fatalf("pinned entry evicted: %+v", st)
			}
			h.Release()
		}
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("over-budget cache retained entries after release: %+v", st)
	}
	if st.Evictions < 12 {
		t.Fatalf("evictions = %d, want >= 12 (every release past budget evicts)", st.Evictions)
	}
	if st.Hits != 0 {
		t.Fatalf("hits = %d, want 0 (budget 1 can never retain)", st.Hits)
	}
}

func TestLRUEvictsColdestFirst(t *testing.T) {
	// Each 8-slot Cyclic compiles to an 8-entry table = 64 bytes;
	// budget fits exactly two.
	c := New(128)
	a := mustCyclic(t, seq(1, 8))
	b := mustCyclic(t, seq(21, 8))
	d := mustCyclic(t, seq(41, 8))

	_, ha := c.Compile(a)
	_, hb := c.Compile(b)
	ha.Release()
	hb.Release()
	// Touch a so b is coldest, then insert d to force one eviction.
	_, ha = c.Compile(a)
	ha.Release()
	_, hd := c.Compile(d)
	hd.Release()

	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want exactly 1 eviction / 2 entries", st)
	}
	_, ha = c.Compile(a)
	ha.Release()
	if st := c.Stats(); st.Hits != 2 {
		t.Fatalf("a was evicted instead of b: %+v", st)
	}
}

func TestDenseScopesByUniverse(t *testing.T) {
	c := New(1 << 20)
	s := mustCyclic(t, seq(1, 8))
	cs, h := c.Compile(s)
	defer h.Release()
	ident := func(ch int) int32 { return int32(ch) }
	shift := func(ch int) int32 { return int32(ch + 100) }

	d1, h1, ok1 := c.Dense(cs, "uniA", ident)
	d2, h2, ok2 := c.Dense(cs, "uniA", ident)
	d3, h3, ok3 := c.Dense(cs, "uniB", shift)
	defer h1.Release()
	defer h2.Release()
	defer h3.Release()
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("Dense ok = %v %v %v, want all true", ok1, ok2, ok3)
	}
	if d1 != d2 {
		t.Fatalf("same scope returned distinct dense tables")
	}
	if d1 == d3 {
		t.Fatalf("different scopes shared a dense table")
	}
	if _, _, ok := c.Dense(s, "uniA", ident); ok {
		t.Fatalf("Dense accepted an uncompiled schedule")
	}
}

func TestDensePrefixScopesBySlots(t *testing.T) {
	c := New(1 << 20)
	s := mustCyclic(t, seq(1, 8))
	ident := func(ch int) int32 { return int32(ch) }
	scratch := make([]int, 256)

	p1, h1 := c.DensePrefix(s, "uni", 512, ident, scratch)
	p2, h2 := c.DensePrefix(s, "uni", 512, ident, scratch)
	p3, h3 := c.DensePrefix(s, "uni", 1024, ident, scratch)
	defer h1.Release()
	defer h2.Release()
	defer h3.Release()
	if p1 != p2 {
		t.Fatalf("same (scope, slots) returned distinct prefix tables")
	}
	if p1 == p3 {
		t.Fatalf("different horizons shared a prefix table")
	}
	if p1.Len() != 512 || p3.Len() != 1024 {
		t.Fatalf("prefix lengths = %d, %d; want 512, 1024", p1.Len(), p3.Len())
	}
}

func TestConcurrentCompile(t *testing.T) {
	c := New(1 << 20)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			var err error
			for i := 0; i < 50 && err == nil; i++ {
				s := mustCyclicErr(seq(10*(i%5)+1, 8))
				cs, h := c.Compile(s)
				if got, want := cs.Channel(3), s.Channel(3); got != want {
					err = fmt.Errorf("channel(3) = %d, want %d", got, want)
				}
				h.Release()
			}
			done <- err
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Entries != 5 {
		t.Fatalf("entries = %d, want 5", st.Entries)
	}
}

func mustCyclicErr(seq []int) *schedule.Cyclic {
	c, err := schedule.NewCyclic(seq)
	if err != nil {
		panic(err)
	}
	return c
}

func TestBlockRing(t *testing.T) {
	before := BlockStats()
	r := NewBlockRing(2, 4)
	blk := func(v int32) []int32 { return []int32{v, v + 1, v + 2, v + 3} }
	dst := make([]int32, 4)

	if r.Lookup(1, dst) {
		t.Fatalf("lookup hit on empty ring")
	}
	r.Insert(1, blk(10))
	r.Insert(2, blk(20))
	if !r.Lookup(1, dst) || dst[0] != 10 || dst[3] != 13 {
		t.Fatalf("block 1 = %v, want [10 11 12 13]", dst)
	}
	r.Insert(2, blk(99)) // duplicate key: ignored
	if !r.Lookup(2, dst) || dst[0] != 20 {
		t.Fatalf("duplicate insert replaced block 2: %v", dst)
	}
	r.Insert(3, blk(30)) // displaces key 1 (FIFO)
	if r.Lookup(1, dst) {
		t.Fatalf("oldest block survived FIFO eviction")
	}
	if !r.Lookup(3, dst) || dst[0] != 30 {
		t.Fatalf("block 3 = %v, want [30 31 32 33]", dst)
	}
	r.Insert(4, blk(40)[:3]) // partial block: never cached
	if r.Lookup(4, dst) {
		t.Fatalf("partial block was cached")
	}

	after := BlockStats()
	if hits := after.Hits - before.Hits; hits != 3 {
		t.Fatalf("ring hits = %d, want 3", hits)
	}
	if ev := after.Evictions - before.Evictions; ev != 1 {
		t.Fatalf("ring evictions = %d, want 1", ev)
	}
	if r.Blocks() != 2 {
		t.Fatalf("Blocks() = %d, want 2", r.Blocks())
	}
}

func TestBlockRingMinimumCapacity(t *testing.T) {
	r := NewBlockRing(0, 4)
	if r.Blocks() != 1 {
		t.Fatalf("Blocks() = %d, want 1", r.Blocks())
	}
}
