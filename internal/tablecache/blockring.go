package tablecache

import (
	"sync"
	"sync/atomic"
)

// BlockRing is the rolling dense-block cache for schedules with no
// materialized table at all — beacons and huge-period Random schedules
// that fall past both the compile cap and the prefix budget and would
// otherwise re-evaluate and re-remap every 256-slot block on every run.
// It keeps the most-recent-N full blocks of dense channel ids in a
// fixed flat buffer, FIFO-evicted, keyed by (agent, block start). The
// win is across repeated runs over one engine (sessions, sweeps): run k
// replays the blocks run k−1 computed.
type BlockRing struct {
	mu       sync.Mutex
	blockLen int
	index    map[uint64]int32 // key -> slot
	keys     []uint64         // slot -> key, valid where used
	used     []bool
	data     []int32 // blocks*blockLen, slot-major
	next     int     // FIFO cursor
}

// Process-wide counters, aggregated across every ring; engines come and
// go with their rings, so per-ring stats would vanish with them.
var blockHits, blockMisses, blockEvictions atomic.Int64

// BlockStats returns the process-wide rolling block-cache counters
// (Entries and Bytes are per-ring notions and stay zero here).
func BlockStats() Stats {
	return Stats{
		Hits:      blockHits.Load(),
		Misses:    blockMisses.Load(),
		Evictions: blockEvictions.Load(),
	}
}

// NewBlockRing builds a ring holding up to blocks full blockLen-slot
// blocks (at least one).
func NewBlockRing(blocks, blockLen int) *BlockRing {
	if blocks < 1 {
		blocks = 1
	}
	return &BlockRing{
		blockLen: blockLen,
		index:    make(map[uint64]int32, blocks),
		keys:     make([]uint64, blocks),
		used:     make([]bool, blocks),
		data:     make([]int32, blocks*blockLen),
	}
}

// Blocks returns the ring's capacity in blocks.
func (r *BlockRing) Blocks() int { return len(r.keys) }

// Lookup copies the cached block for key into dst (len blockLen) and
// reports whether it was present.
func (r *BlockRing) Lookup(key uint64, dst []int32) bool {
	r.mu.Lock()
	slot, ok := r.index[key]
	if ok {
		off := int(slot) * r.blockLen
		copy(dst, r.data[off:off+r.blockLen])
	}
	r.mu.Unlock()
	if ok {
		blockHits.Add(1)
	} else {
		blockMisses.Add(1)
	}
	return ok
}

// Insert caches a full block under key, displacing the oldest resident
// block. Partial blocks and duplicate keys (two workers computing the
// same block concurrently) are ignored.
func (r *BlockRing) Insert(key uint64, src []int32) {
	if len(src) != r.blockLen {
		return
	}
	r.mu.Lock()
	if _, dup := r.index[key]; dup {
		r.mu.Unlock()
		return
	}
	slot := r.next
	if r.used[slot] {
		delete(r.index, r.keys[slot])
		blockEvictions.Add(1)
	}
	r.keys[slot] = key
	r.used[slot] = true
	copy(r.data[slot*r.blockLen:(slot+1)*r.blockLen], src)
	r.index[key] = int32(slot)
	if r.next++; r.next == len(r.keys) {
		r.next = 0
	}
	r.mu.Unlock()
}
