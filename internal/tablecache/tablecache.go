// Package tablecache is the shared compiled-table cache behind the
// simulator's reuse layer: an LRU of immutable schedule evaluation
// artifacts — verified hop tables (schedule.Compile), dense-id tables
// (schedule.CompileDense), and horizon prefix tables
// (schedule.DensePrefix) — keyed by the schedule's canonical parameters
// (schedule.KeyOf) plus, for dense tables, the owning engine's channel
// universe fingerprint. Sweep drivers, repeated scenario runs, and a
// future rvserve daemon all build a given table once and share it.
//
// Entries are ref-counted: a lookup or insert pins the entry and hands
// back a Handle; Handle.Release unpins it. Eviction walks the LRU tail
// and only drops unpinned entries, so the cache may transiently exceed
// its byte budget while pinned. Pinning is bookkeeping, not a
// correctness mechanism — entries are immutable, so even an evicted
// table held by a live engine stays valid; eviction only costs a
// rebuild on the next miss. That is what makes correctness independent
// of the budget (CI proves it by running the golden suite at a 1-byte
// budget).
package tablecache

import (
	"os"
	"strconv"
	"sync"

	"rendezvous/internal/schedule"
)

// Stats is a point-in-time snapshot of cache effectiveness counters.
// Pinned and Refs expose pin leaks: a long-running caller that borrows
// tables and never releases them (a missing Engine.Close, or handles
// dropped on the floor) shows up as Pinned > 0 while idle, and pinned
// entries can never be evicted — the cache grows past its budget
// without bound. rvserve surfaces these on /v1/stats and its drain
// path asserts Pinned == 0 after the last engine closes.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
	Pinned    int   // entries with at least one outstanding pin
	Refs      int64 // total outstanding pins across all entries
}

type entry struct {
	key        string
	val        any
	bytes      int64
	refs       int
	prev, next *entry
}

// Cache is the LRU itself. A nil *Cache is valid and disables caching:
// every method computes the requested artifact directly and returns a
// zero Handle.
type Cache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	table  map[string]*entry
	head   *entry // most recently used
	tail   *entry // least recently used

	hits, misses, evictions int64
}

// New builds a cache with the given byte budget. Budgets below the size
// of a single table still work — every insert is immediately evicted on
// release, degrading to compute-per-use.
func New(budget int64) *Cache {
	return &Cache{budget: budget, table: make(map[string]*entry)}
}

// DefaultBudget is the shared cache's byte budget unless BudgetEnv
// overrides it.
const DefaultBudget = 256 << 20

// BudgetEnv names the environment variable overriding the shared
// cache's byte budget in bytes (read once, at first use). CI's
// golden-thrash job sets it to 1 to prove results are budget-independent
// under worst-case eviction pressure.
const BudgetEnv = "RV_TABLECACHE_BUDGET"

var (
	sharedOnce  sync.Once
	sharedCache *Cache
)

// Shared returns the process-wide cache every engine uses by default.
func Shared() *Cache {
	sharedOnce.Do(func() {
		budget := int64(DefaultBudget)
		if v := os.Getenv(BudgetEnv); v != "" {
			if n, err := strconv.ParseInt(v, 10, 64); err == nil && n >= 0 {
				budget = n
			}
		}
		sharedCache = New(budget)
	})
	return sharedCache
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.table),
		Bytes:     c.bytes,
	}
	for e := c.head; e != nil; e = e.next {
		if e.refs > 0 {
			s.Pinned++
			s.Refs += int64(e.refs)
		}
	}
	return s
}

// Handle pins one cache entry against eviction. The zero Handle is
// valid and releases nothing. Release each handle at most once; the
// engine's Close does this for every table it borrowed.
type Handle struct {
	c *Cache
	e *entry
}

// Release unpins the entry, making it evictable once no other holder
// remains.
func (h Handle) Release() {
	if h.c == nil {
		return
	}
	h.c.mu.Lock()
	if h.e.refs > 0 {
		h.e.refs--
	}
	if h.c.bytes > h.c.budget {
		h.c.evictLocked()
	}
	h.c.mu.Unlock()
}

// Compile is schedule.Compile through the cache: every caller whose
// schedule has a cache key shares one verified hop table per key.
// Schedules without a key, already-compiled schedules, and compile
// refusals (period over the cap, verification mismatch) pass through
// uncached.
func (c *Cache) Compile(s schedule.Schedule) (schedule.Schedule, Handle) {
	if _, done := s.(*schedule.Compiled); done || c == nil {
		return schedule.Compile(s), Handle{}
	}
	key, ok := schedule.KeyOf(s)
	if !ok {
		return schedule.Compile(s), Handle{}
	}
	key = "c|" + key
	if v, h, ok := c.get(key); ok {
		return v.(schedule.Schedule), h
	}
	cs := schedule.Compile(s)
	cc, compiled := cs.(*schedule.Compiled)
	if !compiled {
		return cs, Handle{}
	}
	v, h := c.put(key, cs, 8*int64(cc.Period()))
	return v.(schedule.Schedule), h
}

// Dense is schedule.CompileDense through the cache. scope is the
// caller's universe fingerprint: dense ids are positions in the
// engine's sorted channel union, so a table is only shareable between
// engines with identical unions.
func (c *Cache) Dense(s schedule.Schedule, scope string, id func(ch int) int32) (*schedule.DenseTable, Handle, bool) {
	if _, compiled := s.(*schedule.Compiled); !compiled {
		return nil, Handle{}, false
	}
	if c == nil {
		d, ok := schedule.CompileDense(s, id)
		return d, Handle{}, ok
	}
	key, ok := schedule.KeyOf(s)
	if !ok {
		d, ok2 := schedule.CompileDense(s, id)
		return d, Handle{}, ok2
	}
	key = "d|" + scope + "|" + key
	if v, h, ok := c.get(key); ok {
		return v.(*schedule.DenseTable), h, true
	}
	d, ok2 := schedule.CompileDense(s, id)
	if !ok2 {
		return nil, Handle{}, false
	}
	v, h := c.put(key, d, 4*int64(d.Len()))
	return v.(*schedule.DenseTable), h, true
}

// DensePrefix is schedule.DensePrefix through the cache, keyed by
// (scope, slots, schedule key). This is the big win for repeated
// scenario runs: prefix tables are O(agents × horizon) to build, and a
// re-run of the same fleet shape gets them all back for free.
func (c *Cache) DensePrefix(s schedule.Schedule, scope string, slots int, id func(ch int) int32, scratch []int) (*schedule.DenseTable, Handle) {
	if c == nil {
		return schedule.DensePrefix(s, slots, id, scratch), Handle{}
	}
	key, ok := schedule.KeyOf(s)
	if !ok {
		return schedule.DensePrefix(s, slots, id, scratch), Handle{}
	}
	key = "p|" + scope + "|" + strconv.Itoa(slots) + "|" + key
	if v, h, ok := c.get(key); ok {
		return v.(*schedule.DenseTable), h
	}
	d := schedule.DensePrefix(s, slots, id, scratch)
	v, h := c.put(key, d, 4*int64(d.Len()))
	return v.(*schedule.DenseTable), h
}

// get pins and returns the entry under key, if present.
func (c *Cache) get(key string) (any, Handle, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.table[key]
	if !ok {
		c.misses++
		return nil, Handle{}, false
	}
	c.hits++
	e.refs++
	c.unlink(e)
	c.pushFront(e)
	return e.val, Handle{c: c, e: e}, true
}

// put inserts val under key pinned, evicting cold entries past the
// budget. If another goroutine inserted the same key first, its value
// wins (the tables are interchangeable) and val is dropped.
func (c *Cache) put(key string, val any, bytes int64) (any, Handle) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.table[key]; ok {
		e.refs++
		c.unlink(e)
		c.pushFront(e)
		return e.val, Handle{c: c, e: e}
	}
	e := &entry{key: key, val: val, bytes: bytes, refs: 1}
	c.table[key] = e
	c.pushFront(e)
	c.bytes += bytes
	c.evictLocked()
	return val, Handle{c: c, e: e}
}

// evictLocked walks from the LRU tail dropping unpinned entries until
// the budget is met. Pinned entries are skipped, not blocked on.
func (c *Cache) evictLocked() {
	for e := c.tail; c.bytes > c.budget && e != nil; {
		prev := e.prev
		if e.refs == 0 {
			c.unlink(e)
			delete(c.table, e.key)
			c.bytes -= e.bytes
			c.evictions++
		}
		e = prev
	}
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
