package proptest

import (
	"fmt"
	"math/rand"
	"sort"

	"rendezvous/internal/schedule"
)

// SchedCase is one generated single-schedule instance, the unit the
// ChannelBlock ≡ Channel and Compile(s) ≡ s oracles run over.
type SchedCase struct {
	Alg  string
	N    int
	Set  []int
	Seed int64
}

// String implements Case.
func (c SchedCase) String() string {
	return fmt.Sprintf("schedule alg=%s n=%d set=%s seed=%d", c.Alg, c.N, joinInts(c.Set), c.Seed)
}

// GenSchedCase draws a schedule instance from algs.
func GenSchedCase(rng *rand.Rand, algs []string) SchedCase {
	n := GenUniverse(rng)
	w := GenSetSize(rng, n)
	set := make([]int, 0, w)
	seen := map[int]bool{}
	for len(set) < w {
		ch := 1 + rng.Intn(n)
		if !seen[ch] {
			seen[ch] = true
			set = append(set, ch)
		}
	}
	return SchedCase{Alg: algs[rng.Intn(len(algs))], N: n, Set: sortedCopy(set), Seed: rng.Int63()}
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

// Build constructs the schedule.
func (c SchedCase) Build() (schedule.Schedule, error) {
	return BuildSchedule(c.Alg, c.N, c.Set, c.Seed)
}

// probeWindows yields (start, length) windows straddling the places
// implementations chunk their work: slot 0, word/epoch boundaries (via
// odd primes), the period boundary, and deep slots.
func probeWindows(rng *rand.Rand, period int) [][2]int {
	windows := [][2]int{
		{0, 1}, {0, 257}, {1, 64},
		{period - 1, 130}, {2*period - 3, 7},
	}
	for i := 0; i < 6; i++ {
		windows = append(windows, [2]int{rng.Intn(3*period + 1), 1 + rng.Intn(300)})
	}
	return windows
}

// CheckBlockEquiv is the ChannelBlock ≡ Channel oracle: FillBlock must
// reproduce per-slot evaluation over every probe window.
func CheckBlockEquiv(c SchedCase) error {
	s, err := c.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	return BlockEquivErr(s, c.Seed)
}

// BlockEquivErr probes ChannelBlock ≡ Channel on a concrete schedule
// (the workhorse behind CheckBlockEquiv, also pointed at deliberately
// sabotaged schedules by the shrinker self-test).
func BlockEquivErr(s schedule.Schedule, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]int, 300)
	for _, w := range probeWindows(rng, s.Period()) {
		start, l := w[0], min(w[1], len(buf))
		if start < 0 {
			continue
		}
		dst := buf[:l]
		for i := range dst {
			dst[i] = -1
		}
		schedule.FillBlock(s, dst, start)
		for i := range dst {
			if want := s.Channel(start + i); dst[i] != want {
				return fmt.Errorf("ChannelBlock(start=%d, len=%d)[%d] = %d, want Channel(%d) = %d",
					start, l, i, dst[i], start+i, want)
			}
		}
	}
	return nil
}

// CheckCompileEquiv is the Compile(s) ≡ s oracle: compiling must yield
// an evaluation-equivalent schedule, refuse eventually-periodic inputs,
// and preserve the period when it does materialize a table.
func CheckCompileEquiv(c SchedCase) error {
	s, err := c.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	compiled := schedule.CompileCap(s, 1<<16)
	if compiled == nil {
		return fmt.Errorf("Compile returned nil")
	}
	if _, isTable := compiled.(*schedule.Compiled); isTable {
		if schedule.IsEventuallyPeriodic(s) {
			return fmt.Errorf("Compile materialized a table for an eventually-periodic schedule")
		}
		if compiled.Period() != s.Period() {
			return fmt.Errorf("compiled period %d, want %d", compiled.Period(), s.Period())
		}
	}
	rng := rand.New(rand.NewSource(c.Seed ^ 0x5ca1ab1e))
	p := s.Period()
	for i := 0; i < 40; i++ {
		t := rng.Intn(2*min(p, 1<<16) + 64)
		if got, want := compiled.Channel(t), s.Channel(t); got != want {
			return fmt.Errorf("compiled Channel(%d) = %d, want %d", t, got, want)
		}
	}
	return nil
}

// ShrinkSched reduces a failing schedule case: fewer channels, then a
// smaller universe.
func ShrinkSched(c SchedCase, fails func(SchedCase) bool) SchedCase {
	for improved := true; improved; {
		improved = false
		for i := 0; i < len(c.Set) && len(c.Set) > 1; i++ {
			cand := c
			cand.Set = append(append([]int(nil), c.Set[:i]...), c.Set[i+1:]...)
			if fails(cand) {
				c, improved = cand, true
				break
			}
		}
		if m := maxInt(c.Set); m < c.N {
			for _, n := range []int{m, (c.N + m) / 2} {
				if n >= c.N || n < 2 {
					continue
				}
				cand := c
				cand.N = n
				if fails(cand) {
					c, improved = cand, true
					break
				}
			}
		}
	}
	return c
}
