package proptest

import (
	"fmt"
	"math/rand"
	"sort"

	"rendezvous/internal/baselines"
	"rendezvous/internal/beacon"
	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
)

// BoundedAlgs are the algorithms with a deterministic rendezvous
// guarantee this package asserts as a paper-bound oracle: the flagship
// (§3.2-wrapped) construction and the bare Theorem-3 schedule.
var BoundedAlgs = []string{"ours", "general"}

// MetaAlgs is the roster the metamorphic oracles draw from: every
// schedule family in the repository, guaranteed or not — block
// evaluation, compilation, and engine equivalence must hold for all of
// them.
var MetaAlgs = []string{
	"ours", "general", "crseq", "crseq-rand", "jumpstay", "random",
	"sweep", "cyclic", "constant", "dynamic", "beacon-fresh", "beacon-walk",
}

// randomPeriod caps the advertised period of the randomized baseline in
// generated instances so Compile materializes it (the default 1<<22
// period deliberately exceeds the compile cap).
const randomPeriod = 1 << 12

// BuildSchedule constructs one schedule of the named family over
// channel set within universe [n]. seed feeds the randomized families;
// deterministic ones ignore it. The wrapper families (dynamic) derive
// their extra structure from seed too, so a (alg, n, set, seed) tuple
// always rebuilds the identical schedule.
func BuildSchedule(alg string, n int, set []int, seed int64) (schedule.Schedule, error) {
	switch alg {
	case "ours":
		return schedule.NewAsync(n, set)
	case "general":
		return schedule.NewGeneral(n, set)
	case "crseq":
		return baselines.NewCRSEQ(n, set)
	case "crseq-rand":
		return baselines.NewCRSEQRandomized(n, set, uint64(seed))
	case "jumpstay":
		return baselines.NewJumpStay(n, set)
	case "random":
		return baselines.NewRandom(n, set, uint64(seed), randomPeriod)
	case "sweep":
		return baselines.NewSweep(n, set)
	case "constant":
		return schedule.NewConstant(set[0]), nil
	case "cyclic":
		// A pseudorandom walk over the set, length 1–64, touching every
		// channel at least once so Channels() matches the intended set.
		rng := rand.New(rand.NewSource(seed))
		seq := append([]int(nil), set...)
		target := 1 + rng.Intn(64)
		for len(seq) < target {
			seq = append(seq, set[rng.Intn(len(set))])
		}
		rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
		return schedule.NewCyclic(seq)
	case "dynamic":
		// 1–3 phases: the set shrinks or grows at seed-derived boundaries
		// (the motivating cognitive-radio dynamics). Phase sets all keep
		// set[0] so AllChannels stays overlapping with the base set.
		rng := rand.New(rand.NewSource(seed))
		phases := []schedule.Phase{{FromSlot: 0, Channels: set}}
		from := 0
		for p := 1 + rng.Intn(2); p > 0; p-- {
			from += 1 + rng.Intn(4096)
			phases = append(phases, schedule.Phase{FromSlot: from, Channels: subsetWith(rng, set, set[0])})
		}
		return schedule.NewDynamic(n, phases)
	case "beacon-fresh":
		return beacon.NewFresh(n, set, beacon.NewSource(uint64(seed)), beacon.Config{Period: randomPeriod})
	case "beacon-walk":
		return beacon.NewWalk(n, set, beacon.NewSource(uint64(seed)), beacon.Config{Period: randomPeriod})
	default:
		return nil, fmt.Errorf("proptest: unknown algorithm %q", alg)
	}
}

// subsetWith returns a random non-empty subset of set containing keep.
func subsetWith(rng *rand.Rand, set []int, keep int) []int {
	out := []int{keep}
	for _, c := range set {
		if c != keep && rng.Intn(2) == 0 {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// GenUniverse draws a universe size biased toward the small values
// where structural edge cases live (k ≈ n, shared extremes), with an
// occasional medium one.
func GenUniverse(rng *rand.Rand) int {
	switch rng.Intn(4) {
	case 0:
		return 2 + rng.Intn(4) // 2–5: degenerate constructions
	case 1:
		return 6 + rng.Intn(11) // 6–16
	case 2:
		return 17 + rng.Intn(48) // 17–64
	default:
		return 65 + rng.Intn(192) // 65–256: multi-word Ramsey palettes
	}
}

// GenSetSize draws a channel-set size for universe n, biased small
// (the paper's regime: |S| ≪ n) but occasionally the full universe.
func GenSetSize(rng *rand.Rand, n int) int {
	k := 1 + rng.Intn(min(n, 8))
	if rng.Intn(16) == 0 {
		k = n
	}
	return k
}

// GenOverlappingSets draws two channel sets over [n] guaranteed to
// share a channel: mostly random overlapping pairs, sometimes one of
// the structured adversarial shapes, sometimes identical sets (the
// symmetric case the §3.2 wrapper exists for).
func GenOverlappingSets(rng *rand.Rand, n int) (a, b []int) {
	switch {
	case n >= 4 && rng.Intn(8) == 0:
		adv := simulator.AdversarialPairs(n)
		w := adv[rng.Intn(len(adv))]
		return w.A, w.B
	case rng.Intn(4) == 0:
		k := GenSetSize(rng, n)
		w := simulator.RandomOverlappingPair(rng, n, k, k)
		return w.A, w.A // identical sets (symmetric case)
	default:
		w := simulator.RandomOverlappingPair(rng, n, GenSetSize(rng, n), GenSetSize(rng, n))
		return w.A, w.B
	}
}
