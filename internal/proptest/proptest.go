// Package proptest is the deterministic property-based verification
// subsystem behind the repository's correctness claims. The paper's
// value is a *guaranteed* rendezvous bound, so the reproduction
// machine-checks that guarantee — and the equivalence of every fast
// path to its reference implementation — over randomized instances
// instead of a handful of hand-picked tables.
//
// Everything is seed-driven: each property iteration derives a private
// RNG from (base seed, iteration) through the SplitMix64 finalizer
// (sweep.DeriveSeed), so any failure replays from a single integer. On
// failure the harness shrinks the instance to a minimal counterexample
// (fewer channels, smaller offset, fewer agents, no dynamics) and
// prints a one-line repro command.
//
// The package hosts four kinds of oracle:
//
//   - metamorphic: channel relabeling, common time-shift, and
//     agent-permutation invariance must leave meeting structure
//     unchanged; ChannelBlock ≡ Channel; Compile(s) ≡ s;
//   - engine equivalence: the integer-indexed block engine, the
//     per-slot reference path, and the pairwise parallel decomposition
//     must agree with an independent brute-force oracle engine under
//     random scenarios with churn, primary users, and jammers;
//   - paper bounds: every generated symmetric/asymmetric pair must
//     rendezvous within its theoretical TTR upper bound;
//   - scenario determinism: fleet derivation and environment decisions
//     are pure functions of the seed at any worker count.
//
// Native fuzz targets (FuzzCompile, FuzzBlockEquivalence,
// FuzzEngineVsLegacy, FuzzScenarioEnv) drive the same properties from
// go's coverage-guided fuzzer with committed seed corpora, and
// `rvverify -stress` drives them from the command line.
package proptest

import (
	"math/rand"
	"os"
	"strconv"

	"rendezvous/internal/sweep"
)

// ReplayEnv names the environment variable that replays a single
// failing iteration: set it to the seed printed in a failure message
// and re-run the same test.
const ReplayEnv = "PROPTEST_SEED"

// ItersEnv scales every ForAll loop (e.g. a nightly job may crank it);
// unset means each call site's default.
const ItersEnv = "PROPTEST_ITERS"

// T is the subset of *testing.T the harness needs. An interface (like
// schedtest.T) so the shrinker self-tests can observe failures without
// aborting the real test run.
type T interface {
	Helper()
	Name() string
	Logf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Case is a generated property instance: it must describe itself well
// enough that a failure message alone reconstructs the scenario.
type Case interface {
	// String renders the instance parameters on one line.
	String() string
}

// Iters returns the iteration count for a property: def, unless
// ItersEnv overrides it.
func Iters(def int) int {
	if v := os.Getenv(ItersEnv); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// SeedRNG returns the private RNG of one property iteration: a
// math/rand stream seeded from (base, iteration) via the SplitMix64
// finalizer, so iterations never share state and any one of them
// reruns in isolation.
func SeedRNG(base int64, iter int) *rand.Rand {
	return rand.New(rand.NewSource(sweep.DeriveSeed(base, iter)))
}

// DefaultSeed is the base seed every TestProp uses; the fuzz targets
// and rvverify -stress explore beyond it.
const DefaultSeed = 1

// ForAll runs check over iters cases generated from per-iteration
// RNGs. On the first failure it shrinks the case with shrink (passing
// the "still fails?" predicate), logs the original and minimal
// counterexamples, and fails the test with a one-line replay command.
//
// If ReplayEnv is set, only that iteration runs — the exact replay of
// a previously printed failure.
func ForAll[C Case](t T, iters int, gen func(rng *rand.Rand) C, check func(C) error, shrink func(C, func(C) bool) C) {
	t.Helper()
	base := int64(DefaultSeed)
	from, to := 0, Iters(iters)
	if v := os.Getenv(ReplayEnv); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("proptest: bad %s=%q: %v", ReplayEnv, v, err)
		}
		from, to = n, n+1
	}
	for i := from; i < to; i++ {
		c := gen(SeedRNG(base, i))
		err := check(c)
		if err == nil {
			continue
		}
		min := c
		if shrink != nil {
			min = shrink(c, func(c2 C) bool { return check(c2) != nil })
		}
		minErr := check(min)
		if minErr == nil { // defensive: a shrinker must never "fix" the case
			min, minErr = c, err
		}
		t.Logf("proptest: iteration %d failed: %v\n  original: %s", i, err, c)
		t.Fatalf("minimal counterexample: %s\n  failure: %v\n  replay: %s=%d go test -run '%s' ./internal/proptest",
			min, minErr, ReplayEnv, i, t.Name())
	}
}
