package proptest

import (
	"fmt"
	"math/rand"

	"rendezvous/internal/scenario"
	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
)

// FleetCase is one generated network-scale instance: a full Scenario
// (fleet derivation plus churn/PU/jammer dynamics, all seed-derived)
// and the algorithm building each agent's schedule.
type FleetCase struct {
	Alg string
	Sc  scenario.Scenario
}

// String implements Case.
func (c FleetCase) String() string {
	return fmt.Sprintf("alg=%s %s", c.Alg, c.Sc)
}

// FleetAlgs is the roster scenario fleets draw from (the algorithms
// scenario.BuilderFor supports).
var FleetAlgs = []string{"ours", "general", "crseq", "crseq-rand", "jumpstay", "random"}

// GenFleetCase draws a small scenario — the brute-force oracle engine
// is O(agents²·horizon), so instances stay deliberately tiny while the
// dynamics space (churn, primary users, jammer, all combinations) is
// explored broadly.
func GenFleetCase(rng *rand.Rand) FleetCase {
	horizon := 512 + rng.Intn(3584)
	sc := scenario.Scenario{
		Name:    "prop",
		N:       4 + rng.Intn(29),
		Agents:  3 + rng.Intn(8),
		Seed:    rng.Uint64(),
		Horizon: horizon,
	}
	sc.K = 1 + rng.Intn(min(4, sc.N))
	if rng.Intn(2) == 0 {
		sc.Churn = scenario.Churn{
			WakeSpread: rng.Intn(horizon / 2),
			LeaveFrac:  rng.Float64(),
			MinLife:    1 + rng.Intn(horizon/4),
			MaxLife:    horizon/4 + rng.Intn(horizon),
		}
	}
	if rng.Intn(2) == 0 {
		sc.PU = scenario.PrimaryUsers{
			Count:  1 + rng.Intn(4),
			Window: 8 + rng.Intn(120),
			OnFrac: rng.Float64(),
		}
	}
	if rng.Intn(3) == 0 {
		sc.Jammer = scenario.Jammer{Dwell: 1 + rng.Intn(64), Stride: rng.Intn(3)}
	}
	if rng.Intn(3) == 0 {
		sc.Grid = genGrid(rng)
	}
	return FleetCase{Alg: FleetAlgs[rng.Intn(len(FleetAlgs))], Sc: sc}
}

// genGrid draws a contact grid a few radii across: small enough that
// the fleet stays connected often, large enough that most draws have
// several cells and a mix of in-range and out-of-range pairs.
func genGrid(rng *rand.Rand) scenario.Grid {
	side := 2 + rng.Float64()*4
	return scenario.Grid{Side: side, Radius: side * (0.25 + rng.Float64()*0.5)}
}

// GenContactFleetCase is GenFleetCase with a contact grid always
// present, so the contact-sparse clauses are exercised every iteration
// rather than on the one-in-three draw.
func GenContactFleetCase(rng *rand.Rand) FleetCase {
	c := GenFleetCase(rng)
	if c.Sc.Grid == (scenario.Grid{}) {
		c.Sc.Grid = genGrid(rng)
	}
	return c
}

// Build derives the fleet and environment.
func (c FleetCase) Build() ([]simulator.Agent, simulator.Environment, error) {
	build, err := scenario.BuilderFor(c.Alg, c.Sc.N, c.Sc.Seed)
	if err != nil {
		return nil, nil, err
	}
	return c.Sc.Build(build)
}

// CheckFleetEngines is the engine-equivalence oracle: the block-
// evaluated joint engine, the per-slot reference path, the pairwise
// parallel decomposition, and the time-sharded joint engine must all
// reproduce the brute-force oracle meeting for meeting, under whatever
// dynamics the scenario has. The sharded path runs at several worker
// counts because each count induces a different window partition of the
// time axis — partition invariance is exactly the property its exact-
// decomposition argument rests on. When the scenario carries a contact
// grid, the contact-sparse engine must additionally reproduce the
// oracle restricted to in-range pairs, under both pair-state layouts.
func CheckFleetEngines(c FleetCase) error {
	agents, env, err := c.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	want := ReferenceRun(agents, c.Sc.Horizon, env)
	eng, err := simulator.NewEngine(agents)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	if err := sameMeetings(want, ResultMeetings(eng.RunEnv(c.Sc.Horizon, env))); err != nil {
		return fmt.Errorf("block engine vs oracle: %w", err)
	}
	prev := simulator.SetBlockEval(false)
	slots := eng.RunEnv(c.Sc.Horizon, env)
	simulator.SetBlockEval(prev)
	if err := sameMeetings(want, ResultMeetings(slots)); err != nil {
		return fmt.Errorf("per-slot engine vs oracle: %w", err)
	}
	if err := sameMeetings(want, ResultMeetings(eng.RunParallelEnv(c.Sc.Horizon, 3, env))); err != nil {
		return fmt.Errorf("pairwise parallel engine vs oracle: %w", err)
	}
	for _, workers := range []int{2, 5} {
		if err := sameMeetings(want, ResultMeetings(eng.RunJointParallelEnv(c.Sc.Horizon, workers, env))); err != nil {
			return fmt.Errorf("time-sharded joint engine (workers=%d) vs oracle: %w", workers, err)
		}
	}
	// Session reuse: re-running through a Session recycles the result
	// arrays and every pooled scratch buffer from the runs above. The
	// recycled state must be invisible — each re-run, at each
	// partition-inducing worker count, must still reproduce the oracle
	// meeting for meeting.
	sess := eng.Session()
	for _, workers := range []int{2, 5} {
		sess.Reset()
		if err := sameMeetings(want, ResultMeetings(sess.RunJointParallelEnv(c.Sc.Horizon, workers, env))); err != nil {
			sess.Close()
			return fmt.Errorf("session re-run (workers=%d) vs oracle: %w", workers, err)
		}
	}
	sess.Close()
	// The inverted-index scan never engages on oracle-sized fleets (they
	// sit far below the crossover floor), so force it: every generated
	// dynamics combination must agree with the oracle through the
	// posting-list path too, at the same partition-inducing worker
	// counts.
	prevFloor := simulator.SetInvertedFloor(0)
	defer simulator.SetInvertedFloor(prevFloor)
	for _, workers := range []int{2, 5} {
		if err := sameMeetings(want, ResultMeetings(eng.RunJointParallelEnv(c.Sc.Horizon, workers, env))); err != nil {
			return fmt.Errorf("inverted-index joint engine (workers=%d) vs oracle: %w", workers, err)
		}
	}
	simulator.SetInvertedFloor(prevFloor)
	if err := checkCancelledRerun(c, eng, env, want); err != nil {
		return err
	}
	return checkContactEngine(c, agents, env, want)
}

// checkCancelledRerun is the cancellation clause: cancel a session run
// at a seed-derived block window, then re-run on the very same session.
// The cancelled run may only record meetings the oracle has —
// byte-identical per pair, the partial-prefix contract — and the re-run
// must reproduce the oracle exactly, proving a cancelled run leaves the
// session, every pooled scratch buffer, and the cache-pin bookkeeping
// in the same reusable state as a completed one.
func checkCancelledRerun(c FleetCase, eng *simulator.Engine, env simulator.Environment, want map[[2]string]simulator.Meeting) error {
	sess := eng.Session()
	defer sess.Close()
	for _, workers := range []int{2, 5} {
		canc := &simulator.Canceler{}
		canc.CancelAfterPolls(1 + int64(c.Sc.Seed%7))
		sess.SetCanceler(canc)
		partial := ResultMeetings(sess.RunJointParallelEnv(c.Sc.Horizon, workers, env))
		for key, m := range partial {
			if w, ok := want[key]; !ok || w != m {
				return fmt.Errorf("cancelled run (workers=%d) recorded %v=%+v, oracle has %+v", workers, key, m, want[key])
			}
		}
		sess.SetCanceler(nil)
		sess.Reset()
		if err := sameMeetings(want, ResultMeetings(sess.RunJointParallelEnv(c.Sc.Horizon, workers, env))); err != nil {
			return fmt.Errorf("post-cancel session re-run (workers=%d) vs oracle: %w", workers, err)
		}
	}
	return nil
}

// checkContactEngine is the contact-sparse clause of CheckFleetEngines:
// for gridded scenarios the contact engine must reproduce the
// brute-force oracle filtered to in-range pairs — exactly those, no
// others — under both pair-state layouts (dense triangular with topo
// filter, and contact-edge CSR), serially and at the partition-inducing
// worker counts.
func checkContactEngine(c FleetCase, agents []simulator.Agent, env simulator.Environment, want map[[2]string]simulator.Meeting) error {
	graph, err := c.Sc.ContactGraph()
	if err != nil {
		return fmt.Errorf("contact graph: %w", err)
	}
	if graph == nil {
		return nil
	}
	// sc.Build returns agents in derivation order, the same order the
	// graph indexes positions by — so agents[i] sits at graph node i.
	idx := make(map[string]int, len(agents))
	for i, a := range agents {
		idx[a.Name] = i
	}
	filtered := make(map[[2]string]simulator.Meeting, len(want))
	for key, m := range want {
		if graph.InRange(idx[key[0]], idx[key[1]]) {
			filtered[key] = m
		}
	}
	for _, floor := range []int{0, 1 << 30} {
		prev := simulator.SetSparseStateFloor(floor)
		ceng, cerr := simulator.NewEngineContact(agents, graph.Topology())
		simulator.SetSparseStateFloor(prev)
		if cerr != nil {
			return fmt.Errorf("contact engine (floor=%d): %w", floor, cerr)
		}
		if err := sameMeetings(filtered, ResultMeetings(ceng.RunEnv(c.Sc.Horizon, env))); err != nil {
			return fmt.Errorf("contact engine (floor=%d) vs in-range oracle: %w", floor, err)
		}
		for _, workers := range []int{2, 5} {
			if err := sameMeetings(filtered, ResultMeetings(ceng.RunJointParallelEnv(c.Sc.Horizon, workers, env))); err != nil {
				return fmt.Errorf("contact engine (floor=%d, workers=%d) vs in-range oracle: %w", floor, workers, err)
			}
		}
		// Cancellation under both pair-state layouts: the CSR layout
		// (floor=0) routes the sparse kernel, the triangular layout the
		// occupancy/inverted kernels, and both must honor the
		// cancelled-prefix + clean-re-run contract.
		if err := checkCancelledRerun(c, ceng, env, filtered); err != nil {
			return fmt.Errorf("contact engine (floor=%d): %w", floor, err)
		}
	}
	return nil
}

// CheckFleetPermutation is the agent-permutation metamorphic oracle:
// shuffling the order agents are handed to the engine must not change
// any meeting (names, slots, channels, TTRs).
func CheckFleetPermutation(c FleetCase) error {
	agents, env, err := c.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	perm := append([]simulator.Agent(nil), agents...)
	rng := rand.New(rand.NewSource(int64(c.Sc.Seed)))
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	a, err := runMeetings(agents, c.Sc.Horizon, env)
	if err != nil {
		return err
	}
	b, err := runMeetings(perm, c.Sc.Horizon, env)
	if err != nil {
		return err
	}
	if err := sameMeetings(a, b); err != nil {
		return fmt.Errorf("agent permutation changed meetings: %w", err)
	}
	return nil
}

// CheckFleetRelabel is the channel-relabeling metamorphic oracle:
// applying a common injective relabeling π to every agent's hop
// sequence (and translating environment decisions through π⁻¹) must
// leave meeting structure unchanged — same pairs, same slots, same
// TTRs, channels mapped by π.
func CheckFleetRelabel(c FleetCase) error {
	agents, env, err := c.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	pi, inv := relabeling(agents, int64(c.Sc.Seed))
	relabeled := make([]simulator.Agent, len(agents))
	for i, a := range agents {
		a.Sched = NewRelabeled(a.Sched, pi)
		relabeled[i] = a
	}
	var renv simulator.Environment
	if env != nil {
		renv = relabeledEnv{inner: env, inv: inv}
	}
	want, err := runMeetings(agents, c.Sc.Horizon, env)
	if err != nil {
		return err
	}
	got, err := runMeetings(relabeled, c.Sc.Horizon, renv)
	if err != nil {
		return err
	}
	if len(want) != len(got) {
		return fmt.Errorf("relabeling changed meeting count: %d → %d", len(want), len(got))
	}
	for key, m := range want {
		g, ok := got[key]
		if !ok {
			return fmt.Errorf("relabeling lost meeting %v", key)
		}
		if g.Slot != m.Slot || g.TTR != m.TTR || g.Channel != pi[m.Channel] {
			return fmt.Errorf("relabeling changed meeting %v: %+v → %+v (want channel %d)", key, m, g, pi[m.Channel])
		}
	}
	return nil
}

// relabeling builds a seed-derived injective map π over the union of
// the fleet's complete hop sets (into a shuffled, sparse value range,
// exercising the engine's dense remap), plus its inverse.
func relabeling(agents []simulator.Agent, seed int64) (pi, inv map[int]int) {
	seen := map[int]bool{}
	var union []int
	for _, a := range agents {
		for _, c := range schedule.AllChannels(a.Sched) {
			if !seen[c] {
				seen[c] = true
				union = append(union, c)
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	targets := rng.Perm(3 * (len(union) + 1))
	pi = make(map[int]int, len(union))
	inv = make(map[int]int, len(union))
	for i, c := range union {
		v := 1 + targets[i] // sparse positive values, order-scrambling
		pi[c] = v
		inv[v] = c
	}
	return pi, inv
}

// CheckFleetTimeShift is the common-time-shift metamorphic oracle:
// waking the whole fleet d slots later (and delaying the environment
// by d) shifts every meeting slot by exactly d and changes nothing
// else.
func CheckFleetTimeShift(c FleetCase) error {
	agents, env, err := c.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	const d = 97
	shifted := make([]simulator.Agent, len(agents))
	for i, a := range agents {
		a.Wake += d
		if a.Leave > 0 {
			a.Leave += d
		}
		shifted[i] = a
	}
	var senv simulator.Environment
	if env != nil {
		senv = shiftedEnv{inner: env, d: d}
	}
	want, err := runMeetings(agents, c.Sc.Horizon, env)
	if err != nil {
		return err
	}
	got, err := runMeetings(shifted, c.Sc.Horizon+d, senv)
	if err != nil {
		return err
	}
	if len(want) != len(got) {
		return fmt.Errorf("time shift changed meeting count: %d → %d", len(want), len(got))
	}
	for key, m := range want {
		g, ok := got[key]
		if !ok {
			return fmt.Errorf("time shift lost meeting %v", key)
		}
		if g.Slot != m.Slot+d || g.TTR != m.TTR || g.Channel != m.Channel {
			return fmt.Errorf("time shift by %d changed meeting %v: %+v → %+v", d, key, m, g)
		}
	}
	return nil
}

// CheckScenarioDeterminism asserts the scenario layer's core contract:
// Build is a pure function of the Scenario value, the environment is
// random-access pure, and joint and pairwise runs agree at any worker
// count.
func CheckScenarioDeterminism(c FleetCase) error {
	a1, env1, err := c.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	a2, env2, err := c.Build()
	if err != nil {
		return fmt.Errorf("rebuild: %w", err)
	}
	if len(a1) != len(a2) {
		return fmt.Errorf("rebuild changed fleet size: %d → %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].Name != a2[i].Name || a1[i].Wake != a2[i].Wake || a1[i].Leave != a2[i].Leave ||
			!sameSet(a1[i].Sched.Channels(), a2[i].Sched.Channels()) {
			return fmt.Errorf("rebuild changed agent %d: %+v vs %+v", i, a1[i], a2[i])
		}
	}
	if (env1 == nil) != (env2 == nil) {
		return fmt.Errorf("rebuild changed environment presence")
	}
	if env1 != nil {
		// Random-access purity: probe a scattered grid twice, in two
		// different orders; decisions must agree call for call.
		rng := rand.New(rand.NewSource(int64(c.Sc.Seed)))
		type probe struct{ ch, t int }
		probes := make([]probe, 64)
		for i := range probes {
			probes[i] = probe{ch: 1 + rng.Intn(c.Sc.N), t: rng.Intn(c.Sc.Horizon)}
		}
		first := make([]bool, len(probes))
		for i, p := range probes {
			first[i] = env1.Available(p.ch, p.t)
		}
		for i := len(probes) - 1; i >= 0; i-- {
			if env2.Available(probes[i].ch, probes[i].t) != first[i] {
				return fmt.Errorf("environment impure at (ch=%d, t=%d)", probes[i].ch, probes[i].t)
			}
		}
	}
	eng, err := simulator.NewEngine(a1)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	serial := ResultMeetings(eng.RunParallelEnv(c.Sc.Horizon, 1, env1))
	wide := ResultMeetings(eng.RunParallelEnv(c.Sc.Horizon, 8, env1))
	if err := sameMeetings(serial, wide); err != nil {
		return fmt.Errorf("worker count changed result: %w", err)
	}
	return nil
}

// runMeetings runs agents on a fresh engine (joint block path) and
// returns the canonical meeting map.
func runMeetings(agents []simulator.Agent, horizon int, env simulator.Environment) (map[[2]string]simulator.Meeting, error) {
	eng, err := simulator.NewEngine(agents)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return ResultMeetings(eng.RunEnv(horizon, env)), nil
}

// sameMeetings compares two meeting maps and describes the first
// divergence.
func sameMeetings(want, got map[[2]string]simulator.Meeting) error {
	if len(want) != len(got) {
		return fmt.Errorf("meeting count %d vs %d", len(want), len(got))
	}
	for key, m := range want {
		g, ok := got[key]
		if !ok {
			return fmt.Errorf("missing meeting %v (want %+v)", key, m)
		}
		if g != m {
			return fmt.Errorf("meeting %v: %+v vs %+v", key, m, g)
		}
	}
	return nil
}

// ShrinkFleet greedily reduces a failing fleet case while fails keeps
// failing: fewer agents, dynamics zeroed one subsystem at a time, the
// contact grid dropped, shorter horizon, smaller channel sets, smaller
// universe.
func ShrinkFleet(c FleetCase, fails func(FleetCase) bool) FleetCase {
	for improved := true; improved; {
		improved = false
		if c.Sc.Agents > 2 {
			cand := c
			cand.Sc.Agents--
			if fails(cand) {
				c, improved = cand, true
				continue
			}
		}
		if c.Sc.Churn != (scenario.Churn{}) {
			cand := c
			cand.Sc.Churn = scenario.Churn{}
			if fails(cand) {
				c, improved = cand, true
			}
		}
		if c.Sc.PU != (scenario.PrimaryUsers{}) {
			cand := c
			cand.Sc.PU = scenario.PrimaryUsers{}
			if fails(cand) {
				c, improved = cand, true
			}
		}
		if c.Sc.Jammer.Dwell != 0 || c.Sc.Jammer.Stride != 0 || len(c.Sc.Jammer.Channels) > 0 {
			cand := c
			cand.Sc.Jammer = scenario.Jammer{}
			if fails(cand) {
				c, improved = cand, true
			}
		}
		if c.Sc.Grid != (scenario.Grid{}) {
			// Drop the cells: a failure that survives without the contact
			// grid is a plain engine bug, not a topology one.
			cand := c
			cand.Sc.Grid = scenario.Grid{}
			if fails(cand) {
				c, improved = cand, true
			}
		}
		if h := c.Sc.Horizon / 2; h >= 64 {
			cand := c
			cand.Sc.Horizon = h
			if fails(cand) {
				c, improved = cand, true
			}
		}
		if c.Sc.K > 1 {
			cand := c
			cand.Sc.K--
			if fails(cand) {
				c, improved = cand, true
			}
		}
		if n := c.Sc.N / 2; n >= c.Sc.K && n >= 2 {
			cand := c
			cand.Sc.N = n
			if fails(cand) {
				c, improved = cand, true
			}
		}
	}
	return c
}
