package proptest

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rendezvous/internal/schedule"
)

// This file proves the harness bites: a deliberately injected schedule
// bug must be caught by the oracles, shrunk to a minimal counterexample,
// and replayable from the printed seed. If these tests fail, the
// property suite is decorative.

// recorder implements T, capturing failures instead of aborting the
// real test run. Fatalf panics with abortRun to mimic testing.T's
// FailNow control flow.
type recorder struct {
	name   string
	failed bool
	fatal  string
	logs   []string
}

type abortRun struct{}

func (r *recorder) Helper()                 {}
func (r *recorder) Name() string            { return r.name }
func (r *recorder) Logf(f string, a ...any) { r.logs = append(r.logs, fmt.Sprintf(f, a...)) }
func (r *recorder) Fatalf(f string, a ...any) {
	r.failed = true
	r.fatal = fmt.Sprintf(f, a...)
	panic(abortRun{})
}

// runRecorded runs fn, swallowing the recorder's abort panic.
func runRecorded(fn func()) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(abortRun); !ok {
				panic(p)
			}
		}
	}()
	fn()
}

// buggyBlock sabotages a schedule's block path only: ChannelBlock
// reports the lowest channel wherever the true channel is the highest
// — the shape of a real epoch-boundary or remap-table bug, invisible
// to per-slot evaluation and to single-channel sets.
type buggyBlock struct {
	schedule.Schedule
}

func (b buggyBlock) ChannelBlock(dst []int, start int) {
	schedule.FillBlock(b.Schedule, dst, start)
	chans := b.Schedule.Channels()
	lo, hi := chans[0], chans[len(chans)-1]
	for i := range dst {
		if dst[i] == hi {
			dst[i] = lo
		}
	}
}

// buggedBlockCheck builds the case's schedule with the block-path bug
// injected and runs the real ChannelBlock ≡ Channel oracle against it.
func buggedBlockCheck(c SchedCase) error {
	s, err := c.Build()
	if err != nil {
		return nil // construction failures are not the injected bug
	}
	return BlockEquivErr(buggyBlock{s}, c.Seed)
}

// TestInjectedBlockBugCaughtAndShrunk: the oracle must detect the
// sabotage, and ShrinkSched must reduce the counterexample to the
// minimal shape — exactly two channels (one channel makes the bug
// invisible) in the smallest universe containing them.
func TestInjectedBlockBugCaughtAndShrunk(t *testing.T) {
	fails := func(c SchedCase) bool { return buggedBlockCheck(c) != nil }
	caught := 0
	for i := 0; i < 40; i++ {
		c := GenSchedCase(SeedRNG(DefaultSeed, i), []string{"ours", "general", "cyclic"})
		if !fails(c) {
			continue // e.g. a single-channel set: the bug cannot show
		}
		caught++
		min := ShrinkSched(c, fails)
		if !fails(min) {
			t.Fatalf("shrinker 'fixed' the case: %s", min)
		}
		if len(min.Set) != 2 {
			t.Fatalf("minimal counterexample has %d channels, want 2: %s (from %s)", len(min.Set), min, c)
		}
		if m := maxInt(min.Set); min.N != m {
			t.Fatalf("minimal universe %d not shrunk to max channel %d: %s", min.N, m, min)
		}
	}
	if caught < 10 {
		t.Fatalf("injected bug caught only %d/40 times — generators too narrow", caught)
	}
}

// TestForAllReportsAndReplays: ForAll must fail on the injected bug
// with a minimal counterexample and a seed-replay command, and setting
// PROPTEST_SEED to the printed iteration must reproduce the identical
// failure.
func TestForAllReportsAndReplays(t *testing.T) {
	gen := func(rng *rand.Rand) SchedCase {
		return GenSchedCase(rng, []string{"ours", "general", "cyclic"})
	}
	rec := &recorder{name: t.Name()}
	runRecorded(func() { ForAll[SchedCase](rec, 40, gen, buggedBlockCheck, ShrinkSched) })
	if !rec.failed {
		t.Fatal("ForAll did not catch the injected bug")
	}
	for _, want := range []string{"minimal counterexample", ReplayEnv + "=", "go test -run"} {
		if !strings.Contains(rec.fatal, want) {
			t.Fatalf("failure message missing %q:\n%s", want, rec.fatal)
		}
	}
	// Parse the printed iteration and replay exactly that seed.
	var iter int
	idx := strings.Index(rec.fatal, ReplayEnv+"=")
	if _, err := fmt.Sscanf(rec.fatal[idx:], ReplayEnv+"=%d", &iter); err != nil {
		t.Fatalf("cannot parse replay seed from:\n%s", rec.fatal)
	}
	t.Setenv(ReplayEnv, fmt.Sprint(iter))
	replay := &recorder{name: t.Name()}
	runRecorded(func() { ForAll[SchedCase](replay, 40, gen, buggedBlockCheck, ShrinkSched) })
	if !replay.failed {
		t.Fatalf("replay with %s=%d did not reproduce the failure", ReplayEnv, iter)
	}
	if replay.fatal != rec.fatal {
		t.Fatalf("replay produced a different failure:\n--- first ---\n%s\n--- replay ---\n%s", replay.fatal, rec.fatal)
	}
}

// TestShrinkPairSyntheticPredicate pins the pair shrinker's mechanics
// on a transparent predicate: failing iff |A| ≥ 2 and Off ≥ 5 must
// bottom out at exactly |A| = 2, |B| = 1, Off = 5, N = max channel.
func TestShrinkPairSyntheticPredicate(t *testing.T) {
	fails := func(c PairCase) bool {
		return len(c.A) >= 2 && c.Off >= 5 && overlap(c.A, c.B)
	}
	start := PairCase{Alg: "ours", N: 64, A: []int{3, 9, 17, 40}, B: []int{9, 17, 22}, Off: 7919}
	if !fails(start) {
		t.Fatal("synthetic predicate should fail the starting case")
	}
	min := ShrinkPair(start, fails)
	if len(min.A) != 2 || len(min.B) != 1 || min.Off != 5 {
		t.Fatalf("minimal = %+v, want |A|=2 |B|=1 Off=5", min)
	}
	if want := maxInt(min.A, min.B); min.N != want {
		t.Fatalf("minimal N = %d, want %d", min.N, want)
	}
	if !overlap(min.A, min.B) {
		t.Fatalf("shrinker broke the overlap invariant: %+v", min)
	}
}
