package proptest

import (
	"sort"

	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
)

// ReferenceRun is the brute-force oracle engine: a literal transcription
// of the model in the simulator's package doc, sharing none of the
// engine's machinery. No blocks, no compiled tables, no occupancy
// index, no pair pruning, no early exit — every slot, every pair, raw
// Sched.Channel. O(agents² · horizon), so callers keep instances small.
//
// The legacy map-based engine retired by the fleet-core refactor lives
// on test-side in internal/simulator; this oracle is deliberately even
// simpler, so the property and fuzz layers check the production engine
// against an implementation with no shared history.
func ReferenceRun(agents []simulator.Agent, horizon int, env simulator.Environment) map[[2]string]simulator.Meeting {
	met := make(map[[2]string]simulator.Meeting)
	for t := 0; t < horizon; t++ {
		for i := range agents {
			for j := i + 1; j < len(agents); j++ {
				a, b := agents[i], agents[j]
				if !activeAt(a, t) || !activeAt(b, t) {
					continue
				}
				ch := a.Sched.Channel(t - a.Wake)
				if ch != b.Sched.Channel(t-b.Wake) {
					continue
				}
				if env != nil && !env.Available(ch, t) {
					continue
				}
				key := nameKey(a.Name, b.Name)
				if _, done := met[key]; done {
					continue
				}
				both := max(a.Wake, b.Wake)
				met[key] = simulator.Meeting{A: key[0], B: key[1], Slot: t, Channel: ch, TTR: t - both}
			}
		}
	}
	return met
}

func activeAt(a simulator.Agent, t int) bool {
	return t >= a.Wake && (a.Leave == 0 || t < a.Leave)
}

func nameKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// ResultMeetings flattens an engine Result into the oracle's map shape
// for comparison.
func ResultMeetings(res *simulator.Result) map[[2]string]simulator.Meeting {
	out := make(map[[2]string]simulator.Meeting, res.MetCount())
	for _, m := range res.Meetings() {
		out[nameKey(m.A, m.B)] = m
	}
	return out
}

// Relabeled wraps a schedule with an injective channel relabeling π:
// Channel(t) = π(inner.Channel(t)). Meeting *structure* (who meets
// whom, at which slot) is invariant under a common relabeling of every
// agent's schedule — the engine-level metamorphic oracle that pins the
// channel-index remapping and occupancy layers.
type Relabeled struct {
	inner schedule.Schedule
	pi    map[int]int
}

var _ schedule.Schedule = (*Relabeled)(nil)
var _ schedule.BlockEvaluator = (*Relabeled)(nil)

// NewRelabeled wraps inner with relabeling pi, which must be injective
// on the inner schedule's complete hop set.
func NewRelabeled(inner schedule.Schedule, pi map[int]int) *Relabeled {
	return &Relabeled{inner: inner, pi: pi}
}

// Channel implements Schedule.
func (r *Relabeled) Channel(t int) int { return r.pi[r.inner.Channel(t)] }

// ChannelBlock implements BlockEvaluator.
func (r *Relabeled) ChannelBlock(dst []int, start int) {
	schedule.FillBlock(r.inner, dst, start)
	for i := range dst {
		dst[i] = r.pi[dst[i]]
	}
}

// Period implements Schedule.
func (r *Relabeled) Period() int { return r.inner.Period() }

// Channels implements Schedule.
func (r *Relabeled) Channels() []int { return r.mapSet(r.inner.Channels()) }

// AllChannels propagates the relabeled complete hop set.
func (r *Relabeled) AllChannels() []int { return r.mapSet(schedule.AllChannels(r.inner)) }

// PeriodIsEventual propagates the EventualPeriod marker.
func (r *Relabeled) PeriodIsEventual() bool { return schedule.IsEventuallyPeriodic(r.inner) }

func (r *Relabeled) mapSet(in []int) []int {
	out := make([]int, len(in))
	for i, c := range in {
		out[i] = r.pi[c]
	}
	sort.Ints(out)
	return out
}

// relabeledEnv translates environment decisions back through the
// relabeling: channel π(c) in the relabeled run is available exactly
// when c is in the original.
type relabeledEnv struct {
	inner simulator.Environment
	inv   map[int]int
}

// Available implements simulator.Environment.
func (e relabeledEnv) Available(ch, t int) bool {
	c, ok := e.inv[ch]
	if !ok {
		return true // channel no agent hops; decision is irrelevant
	}
	return e.inner.Available(c, t)
}

// shiftedEnv delays environment decisions by d slots: slot t of the
// shifted run corresponds to slot t−d of the original, so a fleet whose
// wakes are all shifted by d sees the same availability pattern.
type shiftedEnv struct {
	inner simulator.Environment
	d     int
}

// Available implements simulator.Environment.
func (e shiftedEnv) Available(ch, t int) bool {
	if t < e.d {
		return true // before the shifted origin no agent is awake
	}
	return e.inner.Available(ch, t-e.d)
}
