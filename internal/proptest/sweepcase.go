package proptest

import (
	"fmt"
	"math/rand"

	"rendezvous/internal/simulator"
	"rendezvous/internal/sweep"
)

// SweepCase is one generated offset-sweep instance: a schedule pair
// (any family) plus the offset list and horizon handed to
// SweepOffsets. It backs the sweep layer's metamorphic oracle:
// chunk-partition invariance.
type SweepCase struct {
	Pair    PairCase
	Offsets []int
	Horizon int
}

// String implements Case.
func (c SweepCase) String() string {
	return fmt.Sprintf("sweep offsets=%d horizon=%d %s", len(c.Offsets), c.Horizon, c.Pair)
}

// GenSweepCase draws a sweep instance: offsets mix the small values
// where ties and epoch boundaries live with period-scale draws, and the
// horizon is short enough that some offsets fail (exercising the
// Failures/Max tie-break bookkeeping MergeTTR must replicate).
func GenSweepCase(rng *rand.Rand) SweepCase {
	c := SweepCase{
		Pair:    GenPairCase(rng, MetaAlgs),
		Horizon: 64 + rng.Intn(4096),
	}
	count := 1 + rng.Intn(160)
	c.Offsets = make([]int, count)
	for i := range c.Offsets {
		switch rng.Intn(3) {
		case 0:
			c.Offsets[i] = rng.Intn(16)
		case 1:
			c.Offsets[i] = rng.Intn(512)
		default:
			c.Offsets[i] = rng.Intn(1 << 15)
		}
	}
	return c
}

// CheckSweepPartition is the chunk-partition invariance oracle:
// folding SweepOffsets over ANY contiguous chunking of the offsets with
// MergeTTR must reproduce the serial sweep exactly — same Samples,
// Failures, Sum, Max, and WorstOff tie-break — and the parallel
// sweep.SweepOffsets must agree at any worker count. This is the
// contract that makes every experiment report independent of chunk
// geometry and worker scheduling.
func CheckSweepPartition(c SweepCase) error {
	sa, sb, _, err := c.Pair.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	want := simulator.SweepOffsets(sa, sb, c.Offsets, c.Horizon)
	// Chunk shapes derived from the case seed so the check is a pure
	// function of the instance.
	shapeRNG := rand.New(rand.NewSource(c.Pair.Seed))
	shapes := [][]int{chunkSizes(len(c.Offsets), 1), chunkSizes(len(c.Offsets), 7)}
	random := []int{}
	for left := len(c.Offsets); left > 0; {
		n := 1 + shapeRNG.Intn(left)
		random = append(random, n)
		left -= n
	}
	shapes = append(shapes, random, []int{len(c.Offsets)})
	for _, shape := range shapes {
		var acc simulator.TTRStats
		lo := 0
		for _, n := range shape {
			acc = sweep.MergeTTR(acc, simulator.SweepOffsets(sa, sb, c.Offsets[lo:lo+n], c.Horizon))
			lo += n
		}
		if acc != want {
			return fmt.Errorf("chunking %v diverged: %+v, serial %+v", shape, acc, want)
		}
	}
	for _, workers := range []int{1, 2, 5} {
		got := sweep.SweepOffsets(sweep.Runner{Workers: workers}, sa, sb, c.Offsets, c.Horizon)
		if got != want {
			return fmt.Errorf("workers=%d diverged: %+v, serial %+v", workers, got, want)
		}
	}
	return nil
}

// chunkSizes partitions n items into uniform chunks of the given size.
func chunkSizes(n, size int) []int {
	var out []int
	for ; n > size; n -= size {
		out = append(out, size)
	}
	if n > 0 {
		out = append(out, n)
	}
	return out
}

// ShrinkSweep greedily reduces a failing sweep case: fewer offsets
// (halves, then single drops), a shorter horizon, then the pair
// shrinker's own reductions.
func ShrinkSweep(c SweepCase, fails func(SweepCase) bool) SweepCase {
	for improved := true; improved; {
		improved = false
		for _, cut := range [][]int{c.Offsets[:len(c.Offsets)/2], c.Offsets[len(c.Offsets)/2:]} {
			if len(cut) == 0 || len(cut) == len(c.Offsets) {
				continue
			}
			cand := c
			cand.Offsets = cut
			if fails(cand) {
				c, improved = cand, true
				break
			}
		}
		if !improved && len(c.Offsets) > 1 {
			for i := range c.Offsets {
				cand := c
				cand.Offsets = append(append([]int(nil), c.Offsets[:i]...), c.Offsets[i+1:]...)
				if fails(cand) {
					c, improved = cand, true
					break
				}
			}
		}
		if h := c.Horizon / 2; h >= 16 {
			cand := c
			cand.Horizon = h
			if fails(cand) {
				c, improved = cand, true
			}
		}
		pair := ShrinkPair(c.Pair, func(p PairCase) bool {
			cand := c
			cand.Pair = p
			return fails(cand)
		})
		if pair.String() != c.Pair.String() {
			c.Pair, improved = pair, true
		}
	}
	return c
}
