package proptest

import (
	"math/rand"
	"testing"

	"rendezvous/internal/sweep"
)

// Native fuzz targets over the property oracles: go's coverage-guided
// fuzzer mutates (seed, shape) tuples, the generators turn them into
// structured instances, and the same checkers that back the TestProp
// suite decide pass/fail. Each target has a committed seed corpus under
// testdata/fuzz/<Target>/ and runs as a time-boxed smoke job in CI
// (`make fuzz-smoke`); crashers the fuzzer discovers land in the same
// directory and are uploaded as CI artifacts.
//
// Shapes are folded through sweep.DeriveSeed so a mutated byte anywhere
// reshapes the whole instance — the fuzzer explores instance space, not
// just a 64-bit seed line.

// fuzzRNG derives the instance RNG from the fuzzer's raw inputs,
// chaining both halves of shape through the finalizer so every bit of
// both words changes the stream.
func fuzzRNG(seed, shape uint64) *rand.Rand {
	mixed := sweep.DeriveSeed(int64(seed), int(uint32(shape)))
	return rand.New(rand.NewSource(sweep.DeriveSeed(mixed, int(shape>>32))))
}

// FuzzCompile: Compile(s) ≡ s for fuzzer-chosen schedule instances,
// including the eventual-period refusal and period preservation.
func FuzzCompile(f *testing.F) {
	for i := uint64(0); i < 4; i++ {
		f.Add(i, i*37)
	}
	f.Fuzz(func(t *testing.T, seed, shape uint64) {
		c := GenSchedCase(fuzzRNG(seed, shape), MetaAlgs)
		if err := CheckCompileEquiv(c); err != nil {
			t.Fatalf("%s: %v\n  minimal: %s", c, err,
				ShrinkSched(c, func(c2 SchedCase) bool { return CheckCompileEquiv(c2) != nil }))
		}
	})
}

// FuzzBlockEquivalence: ChannelBlock ≡ Channel for fuzzer-chosen
// schedule instances over boundary-straddling probe windows.
func FuzzBlockEquivalence(f *testing.F) {
	for i := uint64(0); i < 4; i++ {
		f.Add(i, i*101)
	}
	f.Fuzz(func(t *testing.T, seed, shape uint64) {
		c := GenSchedCase(fuzzRNG(seed, shape), MetaAlgs)
		if err := CheckBlockEquiv(c); err != nil {
			t.Fatalf("%s: %v\n  minimal: %s", c, err,
				ShrinkSched(c, func(c2 SchedCase) bool { return CheckBlockEquiv(c2) != nil }))
		}
	})
}

// FuzzEngineVsLegacy: the production engine paths (block joint,
// per-slot joint, pairwise parallel) reproduce the brute-force legacy
// oracle meeting for meeting on fuzzer-chosen scenarios with churn,
// primary users, and jammers.
func FuzzEngineVsLegacy(f *testing.F) {
	for i := uint64(0); i < 3; i++ {
		f.Add(i, i*59)
	}
	f.Fuzz(func(t *testing.T, seed, shape uint64) {
		c := GenFleetCase(fuzzRNG(seed, shape))
		if err := CheckFleetEngines(c); err != nil {
			t.Fatalf("%s: %v\n  minimal: %s", c, err,
				ShrinkFleet(c, func(c2 FleetCase) bool { return CheckFleetEngines(c2) != nil }))
		}
	})
}

// FuzzScenarioEnv: scenario fleet derivation and environment decisions
// are pure functions of the seed (random-access, order-independent),
// and worker count never changes a result.
func FuzzScenarioEnv(f *testing.F) {
	for i := uint64(0); i < 3; i++ {
		f.Add(i, i*211)
	}
	f.Fuzz(func(t *testing.T, seed, shape uint64) {
		c := GenFleetCase(fuzzRNG(seed, shape))
		if err := CheckScenarioDeterminism(c); err != nil {
			t.Fatalf("%s: %v\n  minimal: %s", c, err,
				ShrinkFleet(c, func(c2 FleetCase) bool { return CheckScenarioDeterminism(c2) != nil }))
		}
	})
}
