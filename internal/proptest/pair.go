package proptest

import (
	"fmt"
	"math/rand"
	"strings"

	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
)

// PairCase is one generated two-agent instance: an algorithm, a
// universe, two overlapping channel sets, and agent B's wake offset
// (A wakes at slot 0). Seed feeds randomized schedule families.
type PairCase struct {
	Alg  string
	N    int
	A, B []int
	Off  int
	Seed int64
}

// String implements Case. For the deterministic algorithms rvsim
// builds identically (the rvverify roster) it renders a ready-to-run
// rvsim command; the other families (randomized or proptest-local
// constructions that rvsim seeds differently or does not know) get a
// plain parameter dump instead of a command that would silently
// rebuild a different schedule.
func (c PairCase) String() string {
	switch c.Alg {
	case "ours", "general", "crseq", "jumpstay":
		return fmt.Sprintf("rvsim -n %d -alg %s -agent a=%s -agent b=%s@%d",
			c.N, c.Alg, joinInts(c.A), joinInts(c.B), c.Off)
	}
	return fmt.Sprintf("pair alg=%s n=%d a=%s b=%s off=%d seed=%d",
		c.Alg, c.N, joinInts(c.A), joinInts(c.B), c.Off, c.Seed)
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}

// GenPairCase draws a pair instance whose algorithm comes from algs.
// The offset is shaped toward small values (where boundary cases live)
// with an occasional huge draw to cross period boundaries.
func GenPairCase(rng *rand.Rand, algs []string) PairCase {
	n := GenUniverse(rng)
	a, b := GenOverlappingSets(rng, n)
	c := PairCase{
		Alg:  algs[rng.Intn(len(algs))],
		N:    n,
		A:    a,
		B:    b,
		Seed: rng.Int63(),
	}
	switch rng.Intn(4) {
	case 0:
		c.Off = rng.Intn(64)
	case 1:
		c.Off = rng.Intn(4096)
	default:
		c.Off = rng.Intn(1 << 17)
	}
	return c
}

// Build constructs both schedules and the analytic TTR bound (in slots
// after both agents are awake) within which the pair must rendezvous.
// bound is 0 for families with no deterministic guarantee.
func (c PairCase) Build() (sa, sb schedule.Schedule, bound int, err error) {
	sa, err = BuildSchedule(c.Alg, c.N, c.A, c.Seed)
	if err != nil {
		return nil, nil, 0, err
	}
	sb, err = BuildSchedule(c.Alg, c.N, c.B, c.Seed+1)
	if err != nil {
		return nil, nil, 0, err
	}
	switch c.Alg {
	case "ours":
		inner := sa.(*schedule.Symmetric).Inner().(*schedule.General)
		if sameSet(c.A, c.B) {
			// §3.2: identical sets hit (c0, c0) within the first whole
			// overlapping 12-slot block — two blocks after both awake.
			bound = 2 * schedule.SymmetricBlockLen
		} else {
			bound = schedule.SymmetricBlockLen*inner.RendezvousBound(len(c.B)) + 2*schedule.SymmetricBlockLen
		}
	case "general":
		bound = sa.(*schedule.General).RendezvousBound(len(c.B))
	case "crseq":
		// The claimed CRSEQ guarantee (audited, not trusted: deterministic
		// CRSEQ is known to miss — rvverify rediscovers the counterexample).
		bound = 2 * max(sa.Period(), sb.Period())
	case "jumpstay":
		bound = max(sa.Period(), sb.Period())
	}
	return sa, sb, bound, nil
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckPairBound is the paper-bound oracle: the pair must rendezvous
// within its analytic bound at the generated wake offset.
func CheckPairBound(c PairCase) error {
	sa, sb, bound, err := c.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	if bound <= 0 {
		return fmt.Errorf("algorithm %q has no deterministic bound to assert", c.Alg)
	}
	ttr, ok := simulator.PairTTR(sa, sb, 0, c.Off, bound)
	if !ok {
		return fmt.Errorf("no rendezvous within bound %d slots", bound)
	}
	if ttr >= bound {
		return fmt.Errorf("TTR %d ≥ bound %d", ttr, bound)
	}
	return nil
}

// CheckPairTimeShift is the common-time-shift metamorphic oracle:
// waking both agents d slots later must not change the TTR (schedules
// run on local clocks; only the relative offset matters).
func CheckPairTimeShift(c PairCase) error {
	sa, sb, _, err := c.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	const horizon = 1 << 16
	ttr0, ok0 := simulator.PairTTR(sa, sb, 0, c.Off, horizon)
	for _, d := range []int{1, 7, 4096} {
		ttrD, okD := simulator.PairTTR(sa, sb, d, c.Off+d, horizon)
		if ok0 != okD || ttr0 != ttrD {
			return fmt.Errorf("shift by %d changed TTR: (%d,%v) → (%d,%v)", d, ttr0, ok0, ttrD, okD)
		}
	}
	return nil
}

// ShrinkPair greedily reduces a failing pair case while fails keeps
// reporting failure: drop channels from either set (preserving an
// overlap), pull the offset toward 0, and shrink the universe to the
// smallest that still contains both sets. The result is a local
// minimum: no single remaining reduction step still fails.
func ShrinkPair(c PairCase, fails func(PairCase) bool) PairCase {
	for improved := true; improved; {
		improved = false
		// Try dropping each channel of each set.
		for _, set := range []int{0, 1} {
			cur := c.A
			if set == 1 {
				cur = c.B
			}
			for i := 0; i < len(cur); i++ {
				if len(cur) == 1 {
					break
				}
				smaller := append(append([]int(nil), cur[:i]...), cur[i+1:]...)
				cand := c
				if set == 0 {
					cand.A = smaller
				} else {
					cand.B = smaller
				}
				if !overlap(cand.A, cand.B) {
					continue
				}
				if fails(cand) {
					c, improved = cand, true
					break
				}
			}
		}
		// Pull the offset toward zero: halving first, then decrement.
		for _, off := range []int{0, c.Off / 2, c.Off - 1} {
			if off < 0 || off >= c.Off {
				continue
			}
			cand := c
			cand.Off = off
			if fails(cand) {
				c, improved = cand, true
				break
			}
		}
		// Shrink the universe toward the largest channel in use.
		if m := maxInt(c.A, c.B); m < c.N && m >= 2 {
			for _, n := range []int{m, (c.N + m) / 2} {
				if n >= c.N || n < m || n < 2 {
					continue
				}
				cand := c
				cand.N = n
				if fails(cand) {
					c, improved = cand, true
					break
				}
			}
		}
	}
	return c
}

func overlap(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

func maxInt(sets ...[]int) int {
	m := 2
	for _, s := range sets {
		for _, v := range s {
			if v > m {
				m = v
			}
		}
	}
	return m
}
