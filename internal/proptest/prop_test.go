package proptest

import (
	"math/rand"
	"testing"
)

// All TestProp tests are deterministic: iteration i derives its RNG
// from (DefaultSeed, i) alone, so a CI failure replays locally with
// the printed PROPTEST_SEED command. PROPTEST_ITERS cranks the counts
// for a deep soak.

// TestPropPairBound is the paper-bound oracle for the flagship and the
// bare Theorem-3 construction: every generated overlapping pair —
// identical sets included — must rendezvous within its analytic TTR
// bound at every generated wake offset.
func TestPropPairBound(t *testing.T) {
	ForAll(t, Iters(120),
		func(rng *rand.Rand) PairCase { return GenPairCase(rng, BoundedAlgs) },
		CheckPairBound, ShrinkPair)
}

// TestPropPairSymmetricO1 pins the §3.2 claim specifically: identical
// sets meet within two 12-slot blocks, whatever the offset and set.
func TestPropPairSymmetricO1(t *testing.T) {
	ForAll(t, Iters(80),
		func(rng *rand.Rand) PairCase {
			c := GenPairCase(rng, []string{"ours"})
			c.B = append([]int(nil), c.A...)
			return c
		},
		CheckPairBound, ShrinkPair)
}

// TestPropPairTimeShift: a common wake shift never changes a pair's
// TTR, for every schedule family in the repository.
func TestPropPairTimeShift(t *testing.T) {
	ForAll(t, Iters(60),
		func(rng *rand.Rand) PairCase { return GenPairCase(rng, MetaAlgs) },
		CheckPairTimeShift, ShrinkPair)
}

// TestPropBlockEquivalence: ChannelBlock ≡ Channel for every family,
// over windows straddling period and implementation boundaries.
func TestPropBlockEquivalence(t *testing.T) {
	ForAll(t, Iters(150),
		func(rng *rand.Rand) SchedCase { return GenSchedCase(rng, MetaAlgs) },
		CheckBlockEquiv, ShrinkSched)
}

// TestPropCompileEquivalence: Compile(s) ≡ s for every family, with
// the eventual-period refusal and period preservation.
func TestPropCompileEquivalence(t *testing.T) {
	ForAll(t, Iters(150),
		func(rng *rand.Rand) SchedCase { return GenSchedCase(rng, MetaAlgs) },
		CheckCompileEquiv, ShrinkSched)
}

// TestPropEngineVsOracle: block, per-slot, and pairwise-parallel
// engine paths reproduce the brute-force oracle under random scenarios
// with churn, primary users, and jammers.
func TestPropEngineVsOracle(t *testing.T) {
	ForAll(t, Iters(40), GenFleetCase, CheckFleetEngines, ShrinkFleet)
}

// TestPropContactEngines: same oracle check with a contact grid on
// every draw, so the contact-sparse clause (both pair-state layouts,
// in-range-filtered reference) runs each iteration rather than on the
// generator's one-in-three grid draw.
func TestPropContactEngines(t *testing.T) {
	ForAll(t, Iters(30), GenContactFleetCase, CheckFleetEngines, ShrinkFleet)
}

// TestPropAgentPermutation: engine results are invariant under the
// order agents are supplied.
func TestPropAgentPermutation(t *testing.T) {
	ForAll(t, Iters(30), GenFleetCase, CheckFleetPermutation, ShrinkFleet)
}

// TestPropChannelRelabel: meeting structure is invariant under a
// common injective channel relabeling.
func TestPropChannelRelabel(t *testing.T) {
	ForAll(t, Iters(30), GenFleetCase, CheckFleetRelabel, ShrinkFleet)
}

// TestPropFleetTimeShift: waking the whole fleet later shifts meeting
// slots and nothing else.
func TestPropFleetTimeShift(t *testing.T) {
	ForAll(t, Iters(30), GenFleetCase, CheckFleetTimeShift, ShrinkFleet)
}

// TestPropSweepPartition: SweepOffsets folded over any contiguous
// chunking of its offsets via MergeTTR equals the serial sweep exactly
// (including the Max/WorstOff tie-break), and the parallel sweep agrees
// at any worker count.
func TestPropSweepPartition(t *testing.T) {
	ForAll(t, Iters(60), GenSweepCase, CheckSweepPartition, ShrinkSweep)
}

// TestPropScenarioDeterminism: fleet derivation and environment
// decisions are pure functions of the seed, and worker count never
// changes a result.
func TestPropScenarioDeterminism(t *testing.T) {
	ForAll(t, Iters(40), GenFleetCase, CheckScenarioDeterminism, ShrinkFleet)
}
