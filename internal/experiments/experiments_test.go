package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quickCfg keeps the full suite runnable inside the unit-test budget.
var quickCfg = Config{Quick: true, Seed: 1}

func TestAllReportsRender(t *testing.T) {
	for _, rep := range All(quickCfg) {
		if rep.ID == "" || rep.Title == "" {
			t.Fatalf("report missing identity: %+v", rep)
		}
		out := rep.String()
		if !strings.Contains(out, rep.ID) {
			t.Errorf("%s: rendering lacks ID", rep.ID)
		}
		if len(rep.Rows) == 0 {
			t.Errorf("%s: no data rows", rep.ID)
		}
		for _, row := range rep.Rows {
			if len(row) != len(rep.Header) {
				t.Errorf("%s: row width %d != header width %d", rep.ID, len(row), len(rep.Header))
			}
		}
	}
}

func cellInt(t *testing.T, rep *Report, row, col int) int {
	t.Helper()
	v, err := strconv.Atoi(rep.Rows[row][col])
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not an int", rep.ID, row, col, rep.Rows[row][col])
	}
	return v
}

// TestTable1AsymmetricShape checks the Table-1 guarantee shapes: our
// bound is flat in n at fixed k while the baselines' guarantees blow up
// polynomially, and the measured maxima respect our analytic bound.
func TestTable1AsymmetricShape(t *testing.T) {
	rep := Table1Asymmetric(quickCfg)
	first, last := 0, len(rep.Rows)-1
	oursBoundFirst := cellInt(t, rep, first, 1)
	oursBoundLast := cellInt(t, rep, last, 1)
	if oursBoundLast > 2*oursBoundFirst {
		t.Errorf("ours' guarantee grew %d → %d across the n sweep; expected near-flat",
			oursBoundFirst, oursBoundLast)
	}
	for r := range rep.Rows {
		bound := cellInt(t, rep, r, 1)
		measured := cellInt(t, rep, r, 2)
		if measured > bound {
			t.Errorf("row %d: measured ours TTR %d exceeds analytic bound %d", r, measured, bound)
		}
	}
	// Jump-Stay's n³ guarantee overtakes ours within even the quick
	// sweep (n=32: 3·37²·36 ≈ 148k slots).
	if ours, js := cellInt(t, rep, last, 1), cellInt(t, rep, last, 6); ours >= js {
		t.Errorf("ours' guarantee (%d) should beat Jump-Stay's (%d) at the largest n", ours, js)
	}
	// Baseline guarantees must grow superlinearly across the sweep.
	if c0, c1 := cellInt(t, rep, first, 3), cellInt(t, rep, last, 3); c1 < 4*c0 {
		t.Errorf("CRSEQ guarantee grew only %d → %d; expected ≈ n²", c0, c1)
	}
}

// TestTable1SymmetricShape: the wrapped construction meets in ≤ 6 slots
// at every n while baselines grow.
func TestTable1SymmetricShape(t *testing.T) {
	rep := Table1Symmetric(quickCfg)
	for r := range rep.Rows {
		if got := cellInt(t, rep, r, 1); got > 6 {
			t.Errorf("row %d: ours symmetric TTR %d > 6", r, got)
		}
	}
	last := len(rep.Rows) - 1
	if cellInt(t, rep, last, 2) <= 6 && cellInt(t, rep, last, 3) <= 6 {
		t.Error("baselines implausibly flat — measurement broken?")
	}
}

// TestTheorem1Shape: the measured worst TTR never exceeds the word
// length (the proof's guarantee), and the word length stays ≤ 64 even
// at n = 2^20.
func TestTheorem1Shape(t *testing.T) {
	rep := Theorem1(quickCfg)
	for r := range rep.Rows {
		bound := cellInt(t, rep, r, 1)
		worst := cellInt(t, rep, r, 2)
		if worst > bound {
			t.Errorf("row %d: worst TTR %d exceeds |R| = %d", r, worst, bound)
		}
		if bound > 64 {
			t.Errorf("row %d: |R| = %d implausibly large", r, bound)
		}
	}
}

// TestTheorem3WithinBound: measured TTR respects the analytic bound in
// the k sweep.
func TestTheorem3WithinBound(t *testing.T) {
	rep := Theorem3(quickCfg)
	for r := range rep.Rows {
		if rep.Rows[r][0] != "k=|A|=|B|" {
			continue
		}
		worst := cellInt(t, rep, r, 2)
		bound := cellInt(t, rep, r, 3)
		if bound > 0 && worst > bound {
			t.Errorf("row %d: TTR %d exceeds bound %d", r, worst, bound)
		}
	}
}

func TestSymmetricWrapperReport(t *testing.T) {
	rep := SymmetricWrapper(quickCfg)
	for r := range rep.Rows {
		if got := cellInt(t, rep, r, 1); got > 6 {
			t.Errorf("row %d: symmetric TTR %d > 6", r, got)
		}
	}
}

func TestLowerBoundRamseyReport(t *testing.T) {
	rep := LowerBoundRamsey(quickCfg)
	for r := range rep.Rows {
		if rep.Rows[r][3] != "false" {
			t.Errorf("row %d: construction contains a monochromatic path", r)
		}
	}
}

func TestOneRoundReportRatios(t *testing.T) {
	rep := OneRound(quickCfg)
	for r := range rep.Rows {
		ratio, err := strconv.ParseFloat(rep.Rows[r][5], 64)
		if err != nil {
			t.Fatalf("row %d: ratio %q", r, rep.Rows[r][5])
		}
		if ratio < 0.439 {
			t.Errorf("row %d (%s): SDP ratio %.3f below guarantee", r, rep.Rows[r][0], ratio)
		}
	}
}

// TestMultiAgentCompletion: the flagship must complete network
// discovery within the horizon and beat Jump-Stay's completion time.
func TestMultiAgentCompletion(t *testing.T) {
	rep := MultiAgent(quickCfg)
	for r := range rep.Rows {
		ours := cellInt(t, rep, r, 1)
		if ours >= 1<<19 {
			t.Errorf("row %d: flagship did not complete discovery", r)
		}
	}
}
