package experiments

import (
	"fmt"
	"math/rand"

	"rendezvous/internal/asciiplot"
	"rendezvous/internal/bitstring"
	"rendezvous/internal/catalan"
	"rendezvous/internal/pairsched"
	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
	"rendezvous/internal/stats"
	"rendezvous/internal/sweep"
)

// Figures regenerates the paper's three construction figures as ASCII
// walks: Figure 1 (graphs and balanced strings), Figure 2 (strictly
// Catalan sequences and a shift), Figure 3 (the 2-maximality
// transformation).
func Figures(Config) *Report {
	rep := &Report{
		ID:     "F1-F3",
		Title:  "Figures 1–3: sequence walks",
		Header: []string{"figure", "property", "sequence"},
	}
	f1a := "11010"
	f1b := "110001"
	strictly := bitstring.MustParse("1101011000") // strictly Catalan example
	shifted := strictly.Rotate(3)
	twoMax := catalan.MakeTwoMaximal(strictly)

	add := func(fig, prop string, s bitstring.String) {
		rep.Rows = append(rep.Rows, []string{fig, prop, s.String()})
	}
	add("1a", "graph of a sequence", bitstring.MustParse(f1a))
	add("1b", fmt.Sprintf("balanced=%v", bitstring.MustParse(f1b).IsBalanced()), bitstring.MustParse(f1b))
	add("2a", fmt.Sprintf("strictlyCatalan=%v", strictly.IsStrictlyCatalan()), strictly)
	add("2b", fmt.Sprintf("shifted; strictlyCatalan=%v (must be false)", shifted.IsStrictlyCatalan()), shifted)
	add("3a", fmt.Sprintf("maxPoints=%d", len(strictly.MaxPoints())), strictly)
	add("3b", fmt.Sprintf("after M: 2-maximal=%v", twoMax.IsTMaximal(2)), twoMax)

	rep.Notes = append(rep.Notes,
		asciiplot.Walk("Figure 1a", f1a),
		asciiplot.Walk("Figure 1b (balanced)", f1b),
		asciiplot.Walk("Figure 2a (strictly Catalan)", strictly.String()),
		asciiplot.Walk("Figure 2b (shifted copy)", shifted.String()),
		asciiplot.Walk("Figure 3a (one maximum marked by peak)", strictly.String()),
		asciiplot.Walk("Figure 3b (after inserting 1010: two maxima)", twoMax.String()),
	)
	return rep
}

// Theorem1 measures the pair-schedule guarantee: the exact worst TTR
// over adversarial size-two pairs and ALL cyclic offsets, against the
// word length |R| = O(log log n). The sweep is fully deterministic, so
// the engine fans out over (n, adversarial pair) with no per-job RNG.
func Theorem1(cfg Config) *Report {
	ns := []int{4, 16, 256, 1 << 12, 1 << 16, 1 << 20}
	if cfg.Quick {
		ns = []int{4, 16, 256, 1 << 12}
	}
	rep := &Report{
		ID:     "THM1",
		Title:  "Theorem 1: size-two sets — worst TTR over all offsets vs |R(n)|",
		Header: []string{"n", "|R| (bound)", "worst TTR", "log2log2(n)"},
	}
	r := cfg.runner(300)
	for _, n := range ns {
		period := pairsched.WordLen(n)
		pairs := simulator.AdversarialPairs(n)
		maxima := sweep.Map(r, len(pairs), func(i int) int {
			w := pairs[i]
			if len(w.A) != 2 || len(w.B) != 2 {
				return 0
			}
			pa, err := pairsched.New(n, w.A[0], w.A[1])
			if err != nil {
				return 0
			}
			pb, err := pairsched.New(n, w.B[0], w.B[1])
			if err != nil {
				return 0
			}
			st := simulator.SweepOffsets(pa, pb, simulator.ExhaustiveOffsets(period), period+1)
			return st.Max
		})
		worst := 0
		for _, m := range maxima {
			worst = maxInt(worst, m)
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(n), itoa(period), itoa(worst), ftoa(log2log2(n)),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: Ra(n,2) = O(log log n); the bound column must track the last column linearly.")
	return rep
}

func log2log2(n int) float64 {
	l := 0.0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	ll := 0.0
	for v := int(l); v > 1; v >>= 1 {
		ll++
	}
	return ll
}

// Theorem3 measures the general-schedule guarantee two ways: TTR vs the
// product |A||B| at fixed n (expected linear), and TTR vs n at fixed
// |A| = |B| (expected near-flat, the log log factor). Workloads are
// drawn serially; the per-pair sweeps run on the engine.
func Theorem3(cfg Config) *Report {
	n0 := 1024
	ks := []int{1, 2, 4, 8, 16}
	pairs, offsets := 5, 8
	if cfg.Quick {
		ks = []int{1, 2, 4}
		pairs, offsets = 3, 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	rep := &Report{
		ID:     "THM3",
		Title:  "Theorem 3: general sets — max TTR vs |A||B| (n=1024) and vs n (k=4)",
		Header: []string{"sweep", "value", "max TTR", "analytic bound"},
	}
	type thmJob struct {
		n, k int
		w    simulator.PairWorkload
	}
	type thmCell struct {
		ok         bool
		max, bound int
	}
	measure := func(stream int64, jobs []thmJob) []thmCell {
		return sweep.MapRNG(cfg.runner(stream), len(jobs), func(i int, jrng *rand.Rand) thmCell {
			j := jobs[i]
			sa, err := schedule.NewGeneral(j.n, j.w.A)
			if err != nil {
				return thmCell{}
			}
			sb, err := schedule.NewGeneral(j.n, j.w.B)
			if err != nil {
				return thmCell{}
			}
			bound := sa.RendezvousBound(j.k)
			st := simulator.SweepOffsets(sa, sb,
				simulator.SampledOffsets(jrng, sa.Period(), offsets), bound+1)
			return thmCell{ok: true, max: st.Max, bound: bound}
		})
	}
	reduce := func(cells []thmCell) (worst, bound int) {
		for _, c := range cells {
			if !c.ok {
				continue
			}
			worst = maxInt(worst, c.max)
			bound = c.bound
		}
		return
	}

	var kJobs []thmJob
	for _, k := range ks {
		for p := 0; p < pairs; p++ {
			kJobs = append(kJobs, thmJob{n0, k, simulator.RandomOverlappingPair(rng, n0, k, k)})
		}
	}
	kCells := measure(400, kJobs)
	var xs, ys []float64
	for ki, k := range ks {
		worst, bound := reduce(kCells[ki*pairs : (ki+1)*pairs])
		rep.Rows = append(rep.Rows, []string{"k=|A|=|B|", itoa(k), itoa(worst), itoa(bound)})
		if k >= 2 {
			// k = 1 pairs often meet instantly (constant schedules) and
			// would skew the log-log fit.
			xs = append(xs, float64(k*k))
			ys = append(ys, float64(worst+1))
		}
	}
	if e, _, err := stats.FitPowerLaw(xs, ys); err == nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("fit (k≥2): maxTTR ~ (|A||B|)^%.2f (paper: linear ⇒ exponent ≈ 1)", e))
	}

	nsSweep := []int{64, 1024, 1 << 16}
	const k = 4
	var nJobs []thmJob
	for _, n := range nsSweep {
		for p := 0; p < pairs; p++ {
			nJobs = append(nJobs, thmJob{n, k, simulator.RandomOverlappingPair(rng, n, k, k)})
		}
	}
	nCells := measure(450, nJobs)
	for ni, n := range nsSweep {
		worst, bound := reduce(nCells[ni*pairs : (ni+1)*pairs])
		rep.Rows = append(rep.Rows, []string{"n (k=4)", itoa(n), itoa(worst), itoa(bound)})
	}
	rep.Notes = append(rep.Notes,
		"paper: O(|A||B| log log n) — linear in the product, log log (near-flat) in n.")
	return rep
}

// SymmetricWrapper measures §3.2: the O(1) symmetric meeting time and
// the ≤12× asymmetric overhead of the wrapper. One sweep-engine job per
// universe size.
func SymmetricWrapper(cfg Config) *Report {
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	ns := []int{16, 256, 1 << 12, 1 << 16}
	if cfg.Quick {
		ns = ns[:2]
	}
	rep := &Report{
		ID:     "SYM",
		Title:  "§3.2 wrapper: symmetric TTR (must be ≤ 6) and asymmetric blowup",
		Header: []string{"n", "sym max TTR", "inner asym max", "wrapped asym max", "blowup"},
	}
	const k = 4
	sets := make([]simulator.PairWorkload, len(ns))
	for i, n := range ns {
		sets[i] = simulator.RandomOverlappingPair(rng, n, k, k)
	}
	type symRow struct {
		ok                        bool
		symMax, innerMax, wrapMax int
	}
	rows := sweep.MapRNG(cfg.runner(500), len(ns), func(i int, jrng *rand.Rand) symRow {
		n, set := ns[i], sets[i]
		inner, err := schedule.NewGeneral(n, set.A)
		if err != nil {
			return symRow{}
		}
		innerB, err := schedule.NewGeneral(n, set.B)
		if err != nil {
			return symRow{}
		}
		wrapped := schedule.NewSymmetric(inner)
		wrappedB := schedule.NewSymmetric(innerB)

		symStats := simulator.SweepOffsets(wrapped, wrapped, simulator.ExhaustiveOffsets(200), 10)
		innerStats := simulator.SweepOffsets(inner, innerB,
			simulator.SampledOffsets(jrng, inner.Period(), 10), inner.RendezvousBound(k)+1)
		wrapStats := simulator.SweepOffsets(wrapped, wrappedB,
			simulator.SampledOffsets(jrng, wrapped.Period(), 10), 12*inner.RendezvousBound(k)+24)
		return symRow{ok: true, symMax: symStats.Max, innerMax: innerStats.Max, wrapMax: wrapStats.Max}
	})
	for i, n := range ns {
		r := rows[i]
		if !r.ok {
			continue
		}
		blowup := "n/a"
		if r.innerMax > 0 {
			blowup = fmt.Sprintf("%.1fx", float64(r.wrapMax)/float64(r.innerMax))
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(n), itoa(r.symMax), itoa(r.innerMax), itoa(r.wrapMax), blowup,
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: symmetric O(1); wrapper costs ≤ 12× on asymmetric pairs.",
		"blowup estimates are noisy (inner and wrapped maxima come from different sampled offsets);",
		"the analytic factor is exactly 12 plus an O(1) boundary term.")
	return rep
}
