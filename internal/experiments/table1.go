package experiments

import (
	"fmt"
	"math/rand"

	"rendezvous/internal/asciiplot"
	"rendezvous/internal/baselines"
	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
	"rendezvous/internal/stats"
	"rendezvous/internal/sweep"
)

// Table1Asymmetric regenerates the asymmetric column of Table 1.
//
// Table 1 compares worst-case GUARANTEES, so the primary columns are the
// analytic bounds: ours O(|A||B|·log log n) (flat in n at fixed k),
// CRSEQ P(3P−1) = Θ(n²), Jump-Stay 3P²(P−1) = Θ(n³). Measured columns
// give the empirical worst case over sampled wake offsets for pairs with
// |A| = |B| = 4 sharing one channel — they must respect the bounds, and
// they surface an honest reproduction finding: with deterministic index
// remapping CRSEQ can FAIL outright (DESIGN.md), while with small
// channel subsets the oblivious baselines behave quasi-randomly and are
// often fast on average despite their weak guarantees. The crossover
// note reports where our guarantee overtakes each baseline's.
//
// The expensive per-pair measurements run on the sweep engine: pair
// workloads are drawn serially from the master stream, then each pair is
// measured by a job whose offset sampling uses an RNG derived from
// (seed, job index) alone, so the report is identical at any Workers.
func Table1Asymmetric(cfg Config) *Report {
	ns := []int{8, 16, 32, 64, 128}
	pairsPerN, offsetsPerPair := 6, 24
	if cfg.Quick {
		ns = []int{8, 16, 32}
		pairsPerN, offsetsPerPair = 3, 8
	}
	const k = 4
	rep := &Report{
		ID:    "T1-asym",
		Title: "Table 1, asymmetric: guarantees and measured worst TTR (|A|=|B|=4, |A∩B|=1)",
		Header: []string{"n", "ours bound", "ours max", "crseq bound", "crseq max", "crseq fails",
			"js bound", "js max", "random mean"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	type pairJob struct {
		n, kk, p int
		w        simulator.PairWorkload
	}
	var jobs []pairJob
	for _, n := range ns {
		kk := min(k, n/2)
		if kk < 1 {
			kk = 1
		}
		for p := 0; p < pairsPerN; p++ {
			jobs = append(jobs, pairJob{n, kk, p, simulator.RandomPairWithIntersection(rng, n, kk, kk, 1)})
		}
	}

	type pairCell struct {
		oursOK           bool
		oursB, oursMax   int
		crseqOK          bool
		crseqB, crseqMax int
		crseqFails       int
		jsOK             bool
		jsB, jsMax       int
		randomOK         bool
		randomMean       float64
	}
	cells := sweep.MapRNG(cfg.runner(100), len(jobs), func(i int, jrng *rand.Rand) pairCell {
		j := jobs[i]
		var c pairCell

		ga, err1 := schedule.NewGeneral(j.n, j.w.A)
		gb, err2 := schedule.NewGeneral(j.n, j.w.B)
		if err1 != nil || err2 != nil {
			return c
		}
		c.oursOK = true
		c.oursB = ga.RendezvousBound(j.kk)
		st := simulator.SweepOffsets(ga, gb,
			simulator.SampledOffsets(jrng, ga.Period(), offsetsPerPair), c.oursB+1)
		c.oursMax = st.Max

		ca, err1 := baselines.NewCRSEQ(j.n, j.w.A)
		cb, err2 := baselines.NewCRSEQ(j.n, j.w.B)
		if err1 == nil && err2 == nil {
			c.crseqOK = true
			c.crseqB = ca.Period()
			st = simulator.SweepOffsets(ca, cb,
				simulator.SampledOffsets(jrng, ca.Period(), offsetsPerPair), 4*c.crseqB)
			c.crseqMax = st.Max
			c.crseqFails = st.Failures
		}

		ja, err1 := baselines.NewJumpStay(j.n, j.w.A)
		jb, err2 := baselines.NewJumpStay(j.n, j.w.B)
		if err1 == nil && err2 == nil {
			c.jsOK = true
			c.jsB = ja.Period()
			st = simulator.SweepOffsets(ja, jb,
				simulator.SampledOffsets(jrng, ja.Period(), offsetsPerPair), c.jsB)
			c.jsMax = st.Max
		}

		ra, err1 := baselines.NewRandom(j.n, j.w.A, uint64(cfg.Seed)+uint64(j.p)*2+1, 1<<22)
		rb, err2 := baselines.NewRandom(j.n, j.w.B, uint64(cfg.Seed)+uint64(j.p)*2+2, 1<<22)
		if err1 == nil && err2 == nil {
			c.randomOK = true
			st = simulator.SweepOffsets(ra, rb,
				simulator.SampledOffsets(jrng, 1<<16, offsetsPerPair), 1<<18)
			c.randomMean = st.Mean()
		}
		return c
	})

	var xs, oursBound, crseqBound, jsBound []float64
	for ni, n := range ns {
		var oursB, oursMax, crseqB, crseqMax, crseqFails, jsB, jsMax int
		var randomSum float64
		var randomN int
		for _, c := range cells[ni*pairsPerN : (ni+1)*pairsPerN] {
			if c.oursOK {
				oursB = c.oursB
				oursMax = maxInt(oursMax, c.oursMax)
			}
			if c.crseqOK {
				crseqB = c.crseqB
				crseqMax = maxInt(crseqMax, c.crseqMax)
				crseqFails += c.crseqFails
			}
			if c.jsOK {
				jsB = c.jsB
				jsMax = maxInt(jsMax, c.jsMax)
			}
			if c.randomOK {
				randomSum += c.randomMean
				randomN++
			}
		}
		randomMean := 0.0
		if randomN > 0 {
			randomMean = randomSum / float64(randomN)
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(n), itoa(oursB), itoa(oursMax), itoa(crseqB), itoa(crseqMax),
			itoa(crseqFails), itoa(jsB), itoa(jsMax), ftoa(randomMean),
		})
		xs = append(xs, float64(n))
		oursBound = append(oursBound, float64(oursB))
		crseqBound = append(crseqBound, float64(crseqB))
		jsBound = append(jsBound, float64(jsB))
	}
	// Fixed order: ranging over a map here would shuffle the notes
	// between runs and break byte-identical reports.
	for _, fit := range []struct {
		name string
		ys   []float64
	}{{"ours", oursBound}, {"crseq", crseqBound}, {"jumpstay", jsBound}} {
		if e, _, err := stats.FitPowerLaw(xs, fit.ys); err == nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("guarantee fit: %-8s bound ~ n^%.2f", fit.name, e))
		}
	}
	rep.Notes = append(rep.Notes, asciiplot.Lines("guarantee bounds vs n", 56, 12, []asciiplot.Series{
		{Label: "ours", X: xs, Y: oursBound},
		{Label: "crseq", X: xs, Y: crseqBound},
		{Label: "jumpstay", X: xs, Y: jsBound},
	}))
	rep.Notes = append(rep.Notes, crossoverNote("crseq", xs, oursBound, crseqBound))
	rep.Notes = append(rep.Notes, crossoverNote("jumpstay", xs, oursBound, jsBound))
	rep.Notes = append(rep.Notes,
		"paper: ours O(|A||B| loglog n) — flat in n at fixed k; CRSEQ Θ(n²); Jump-Stay Θ(n³).",
		"crseq fails counts offsets with NO rendezvous under deterministic index remap (see DESIGN.md).",
		"measured maxima are over sampled offsets; with small subsets the remapped baselines behave",
		"quasi-randomly, so their measured averages can be small even though their guarantees are weak.")
	return rep
}

// crossoverNote reports the first n at which our guarantee beats the
// baseline's.
func crossoverNote(name string, xs, ours, base []float64) string {
	for i := range xs {
		if ours[i] < base[i] {
			return fmt.Sprintf("crossover: ours' guarantee beats %s's from n = %.0f onward", name, xs[i])
		}
	}
	return fmt.Sprintf("crossover: ours' guarantee does not overtake %s's within this sweep (grows with n²/n³; extend -exp t1-asym sweep)", name)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table1Symmetric regenerates the symmetric column: both agents hold the
// identical full channel set [n]. Here measurements are undistorted by
// remapping, so measured maxima are the primary data. Expected shapes:
// ours O(1) (≤ 6 slots), Jump-Stay O(n), CRSEQ O(n²). Each (n,
// algorithm) cell is one sweep-engine job with its own derived RNG.
func Table1Symmetric(cfg Config) *Report {
	ns := []int{8, 16, 32, 64, 128, 256}
	offsets := 40
	if cfg.Quick {
		ns = []int{8, 16, 32}
		offsets = 12
	}
	order := []string{"ours", "crseq", "jumpstay"}
	rep := &Report{
		ID:     "T1-sym",
		Title:  "Table 1, symmetric column: max TTR, identical full sets",
		Header: append([]string{"n"}, order...),
	}
	build := func(name string, n int, full []int) (schedule.Schedule, error) {
		switch name {
		case "ours":
			return schedule.NewAsync(n, full)
		case "crseq":
			return baselines.NewCRSEQ(n, full)
		default:
			return baselines.NewJumpStay(n, full)
		}
	}
	type symCell struct {
		ok  bool
		max int
	}
	cells := sweep.MapRNG(cfg.runner(200), len(ns)*len(order), func(i int, jrng *rand.Rand) symCell {
		n := ns[i/len(order)]
		name := order[i%len(order)]
		s, err := build(name, n, simulator.FullSet(n))
		if err != nil {
			return symCell{}
		}
		horizon := 4 * s.Period()
		offs := simulator.SampledOffsets(jrng, s.Period(), offsets)
		st := simulator.SweepOffsets(s, s, offs, horizon)
		return symCell{ok: true, max: st.Max}
	})
	curves := map[string][]float64{}
	for ni, n := range ns {
		row := []string{itoa(n)}
		for ai, name := range order {
			c := cells[ni*len(order)+ai]
			if !c.ok {
				row = append(row, "err")
				continue
			}
			row = append(row, itoa(c.max))
			curves[name] = append(curves[name], float64(c.max+1))
		}
		rep.Rows = append(rep.Rows, row)
	}
	xs := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
	}
	var series []asciiplot.Series
	for _, name := range order {
		if len(curves[name]) == len(xs) {
			if e, _, err := stats.FitPowerLaw(xs, curves[name]); err == nil {
				rep.Notes = append(rep.Notes, fmt.Sprintf("fit: %-8s maxTTR ~ n^%.2f", name, e))
			}
			series = append(series, asciiplot.Series{Label: name, X: xs, Y: curves[name]})
		}
	}
	rep.Notes = append(rep.Notes, asciiplot.Lines("symmetric max TTR vs n", 56, 12, series))
	rep.Notes = append(rep.Notes,
		"paper: ours O(1) (≤6 slots via §3.2); Jump-Stay O(n); CRSEQ O(n²).")
	return rep
}
