package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"rendezvous/internal/baselines"
	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
	"rendezvous/internal/sweep"
)

// MultiAgent measures network-wide discovery: N agents with random
// overlapping channel sets and random wake times run until EVERY
// overlapping pair has rendezvoused. The paper analyzes pairwise
// guarantees; because its schedules are anonymous and deterministic the
// pairwise bound extends to fleets for free (any pair meets within its
// own bound of the later wake), and this experiment shows the resulting
// completion times against the baselines. Each (fleet size, trial) is
// one engine job that derives its whole population — hub channel, sets,
// wake times — from its private RNG, then runs all four algorithms.
func MultiAgent(cfg Config) *Report {
	agentCounts := []int{4, 8, 16}
	trials := 5
	if cfg.Quick {
		agentCounts = agentCounts[:2]
		trials = 2
	}
	const (
		n = 128
		k = 4
	)
	rep := &Report{
		ID:     "MULTI",
		Title:  "Network discovery: slots until every overlapping pair has met (n=128, k=4)",
		Header: []string{"agents", "ours", "crseq-rand", "jumpstay", "random"},
	}
	builders := map[string]func(set []int, i int) (schedule.Schedule, error){
		"ours": func(set []int, _ int) (schedule.Schedule, error) {
			return schedule.NewAsync(n, set)
		},
		"crseq-rand": func(set []int, i int) (schedule.Schedule, error) {
			return baselines.NewCRSEQRandomized(n, set, uint64(cfg.Seed)+uint64(i))
		},
		"jumpstay": func(set []int, _ int) (schedule.Schedule, error) {
			return baselines.NewJumpStay(n, set)
		},
		"random": func(set []int, i int) (schedule.Schedule, error) {
			return baselines.NewRandom(n, set, uint64(cfg.Seed)+uint64(i)*13+7, 1<<22)
		},
	}
	order := []string{"ours", "crseq-rand", "jumpstay", "random"}
	completions := sweep.MapRNG(cfg.runner(1000), len(agentCounts)*trials, func(i int, jrng *rand.Rand) map[string]int {
		agents := agentCounts[i/trials]
		// A connected-ish population: everyone shares one hub channel
		// with probability ~1/2, plus random extras.
		hub := 1 + jrng.Intn(n)
		sets := make([][]int, agents)
		wakes := make([]int, agents)
		for a := range sets {
			if jrng.Intn(2) == 0 {
				sets[a] = randomSetContaining(jrng, n, k, hub)
			} else {
				sets[a] = randomSetContaining(jrng, n, k, 1+jrng.Intn(n))
			}
			wakes[a] = jrng.Intn(2000)
		}
		done := map[string]int{}
		for _, name := range order {
			specs := make([]simulator.Agent, agents)
			bad := false
			for a := range sets {
				s, err := builders[name](sets[a], a)
				if err != nil {
					bad = true
					break
				}
				specs[a] = simulator.Agent{Name: fmt.Sprintf("a%d", a), Sched: s, Wake: wakes[a]}
			}
			if bad {
				continue
			}
			eng, err := simulator.NewEngine(specs)
			if err != nil {
				continue
			}
			res := eng.Run(1 << 19)
			done[name] = completionSlot(res, specs)
		}
		return done
	})
	for ci, agents := range agentCounts {
		worst := map[string]int{}
		for _, done := range completions[ci*trials : (ci+1)*trials] {
			for name, slot := range done {
				if slot > worst[name] {
					worst[name] = slot
				}
			}
		}
		row := []string{itoa(agents)}
		for _, name := range order {
			row = append(row, itoa(worst[name]))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"completion = last first-meeting slot across all overlapping pairs (horizon 2^19; 2^19 means incomplete).",
		"anonymous deterministic schedules give fleets pairwise guarantees for free — no coordination state.")
	return rep
}

// completionSlot returns the slot of the last first-meeting among
// overlapping pairs, or the horizon if some pair never met.
func completionSlot(res *simulator.Result, agents []simulator.Agent) int {
	latest := 0
	for i := range agents {
		for j := i + 1; j < len(agents); j++ {
			if !channelsOverlap(agents[i].Sched.Channels(), agents[j].Sched.Channels()) {
				continue
			}
			m, ok := res.Meeting(agents[i].Name, agents[j].Name)
			if !ok {
				return res.Horizon
			}
			if m.Slot > latest {
				latest = m.Slot
			}
		}
	}
	return latest
}

func channelsOverlap(a, b []int) bool {
	in := make(map[int]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	for _, y := range b {
		if in[y] {
			return true
		}
	}
	return false
}

// randomSetContaining returns a random size-k subset of [n] containing
// the given channel.
func randomSetContaining(rng *rand.Rand, n, k, contains int) []int {
	set := map[int]bool{contains: true}
	for len(set) < k {
		set[1+rng.Intn(n)] = true
	}
	out := make([]int, 0, k)
	for c := range set {
		out = append(out, c)
	}
	// Sorted so the report never depends on map iteration order.
	sort.Ints(out)
	return out
}
