package experiments

import (
	"fmt"
	"math/rand"

	"rendezvous/internal/baselines"
	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
)

// MultiAgent measures network-wide discovery: N agents with random
// overlapping channel sets and random wake times run until EVERY
// overlapping pair has rendezvoused. The paper analyzes pairwise
// guarantees; because its schedules are anonymous and deterministic the
// pairwise bound extends to fleets for free (any pair meets within its
// own bound of the later wake), and this experiment shows the resulting
// completion times against the baselines.
func MultiAgent(cfg Config) *Report {
	agentCounts := []int{4, 8, 16}
	trials := 5
	if cfg.Quick {
		agentCounts = agentCounts[:2]
		trials = 2
	}
	const (
		n = 128
		k = 4
	)
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	rep := &Report{
		ID:     "MULTI",
		Title:  "Network discovery: slots until every overlapping pair has met (n=128, k=4)",
		Header: []string{"agents", "ours", "crseq-rand", "jumpstay", "random"},
	}
	builders := map[string]func(set []int, i int) (schedule.Schedule, error){
		"ours": func(set []int, _ int) (schedule.Schedule, error) {
			return schedule.NewAsync(n, set)
		},
		"crseq-rand": func(set []int, i int) (schedule.Schedule, error) {
			return baselines.NewCRSEQRandomized(n, set, uint64(cfg.Seed)+uint64(i))
		},
		"jumpstay": func(set []int, _ int) (schedule.Schedule, error) {
			return baselines.NewJumpStay(n, set)
		},
		"random": func(set []int, i int) (schedule.Schedule, error) {
			return baselines.NewRandom(n, set, uint64(cfg.Seed)+uint64(i)*13+7, 1<<22)
		},
	}
	order := []string{"ours", "crseq-rand", "jumpstay", "random"}
	for _, agents := range agentCounts {
		worst := map[string]int{}
		for trial := 0; trial < trials; trial++ {
			// A connected-ish population: everyone shares one hub channel
			// with probability ~1/2, plus random extras.
			hub := 1 + rng.Intn(n)
			sets := make([][]int, agents)
			wakes := make([]int, agents)
			for i := range sets {
				if rng.Intn(2) == 0 {
					sets[i] = randomSetContaining(rng, n, k, hub)
				} else {
					sets[i] = randomSetContaining(rng, n, k, 1+rng.Intn(n))
				}
				wakes[i] = rng.Intn(2000)
			}
			for _, name := range order {
				specs := make([]simulator.Agent, agents)
				bad := false
				for i := range sets {
					s, err := builders[name](sets[i], i)
					if err != nil {
						bad = true
						break
					}
					specs[i] = simulator.Agent{Name: fmt.Sprintf("a%d", i), Sched: s, Wake: wakes[i]}
				}
				if bad {
					continue
				}
				eng, err := simulator.NewEngine(specs)
				if err != nil {
					continue
				}
				res := eng.Run(1 << 19)
				done := completionSlot(res, specs)
				if done > worst[name] {
					worst[name] = done
				}
			}
		}
		row := []string{itoa(agents)}
		for _, name := range order {
			row = append(row, itoa(worst[name]))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"completion = last first-meeting slot across all overlapping pairs (horizon 2^19; 2^19 means incomplete).",
		"anonymous deterministic schedules give fleets pairwise guarantees for free — no coordination state.")
	return rep
}

// completionSlot returns the slot of the last first-meeting among
// overlapping pairs, or the horizon if some pair never met.
func completionSlot(res *simulator.Result, agents []simulator.Agent) int {
	latest := 0
	for i := range agents {
		for j := i + 1; j < len(agents); j++ {
			if !channelsOverlap(agents[i].Sched.Channels(), agents[j].Sched.Channels()) {
				continue
			}
			m, ok := res.Meeting(agents[i].Name, agents[j].Name)
			if !ok {
				return res.Horizon
			}
			if m.Slot > latest {
				latest = m.Slot
			}
		}
	}
	return latest
}

func channelsOverlap(a, b []int) bool {
	in := make(map[int]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	for _, y := range b {
		if in[y] {
			return true
		}
	}
	return false
}

// randomSetContaining returns a random size-k subset of [n] containing
// the given channel.
func randomSetContaining(rng *rand.Rand, n, k, contains int) []int {
	set := map[int]bool{contains: true}
	for len(set) < k {
		set[1+rng.Intn(n)] = true
	}
	out := make([]int, 0, k)
	for c := range set {
		out = append(out, c)
	}
	return out
}
