package experiments

import (
	"fmt"
	"math"

	"rendezvous/internal/scenario"
	"rendezvous/internal/sweep"
)

// NetworkSparse measures fleet discovery once the network has geometry:
// the NETWORK workload (churn, primary users, the same builders) placed
// on a √agents × √agents plane with a fixed contact radius, so agent
// density — and with it the mean contact degree, ≈ π·r² ≈ 16 — is
// constant as the fleet grows. The all-pairs candidate space grows
// O(agents²) while the contact-edge space grows O(agents): the reduce
// column is that ratio, the quantity that lets the engine's sparse scan
// (pair state and per-slot candidates both O(contact edges)) hold slot
// throughput roughly flat where the dense engines hit the quadratic
// wall. The 4,096-agent full-scale row crosses schedule's posting-group
// cap, so it also exercises the wide-scan routing next to the sparse
// one.
//
// Every fleet is a scenario derived purely from the seed (positions
// included, stream 505), each (fleet, algorithm) cell is one sweep job,
// and the sparse engine's decompositions are exact — the report is
// byte-identical at any worker count.
func NetworkSparse(cfg Config) *Report {
	fleets := []int{1024, 4096}
	horizon := 1 << 14
	if cfg.Quick {
		fleets = []int{64, 256}
		horizon = 1 << 12
	}
	const (
		n      = 128
		k      = 4
		radius = 2.26 // mean degree ≈ π·r² ≈ 16 at unit density
	)
	algs := []string{"ours", "jumpstay"}
	rep := &Report{
		ID: "NETWORK-SPARSE",
		Title: fmt.Sprintf("Fleet discovery on a contact graph (n=%d, k=%d, radius=%.2f, horizon=%d)",
			n, k, radius, horizon),
		Header: []string{
			"agents", "alg", "pairs", "edges", "reduce", "eligible", "met", "met%", "mean-ttr",
		},
	}
	// Same batched shape as NETWORK: derive the grid serially, submit it
	// through scenario.RunMany (shared table cache, one worker pool),
	// summarize in submission order.
	total := len(fleets) * len(algs)
	type cellMeta struct {
		fleet int
		alg   string
		err   error
	}
	metas := make([]cellMeta, total)
	jobs := make([]scenario.RunJob, total)
	scs := make([]scenario.Scenario, total)
	for job := 0; job < total; job++ {
		fleet := fleets[job/len(algs)]
		alg := algs[job%len(algs)]
		sc := scenario.Scenario{
			Name:    "network-sparse",
			N:       n,
			Agents:  fleet,
			K:       k,
			Seed:    uint64(sweep.DeriveSeed(cfg.Seed+1200, job/len(algs))),
			Horizon: horizon,
			Churn: scenario.Churn{
				WakeSpread: 2000,
				LeaveFrac:  0.25,
				MinLife:    horizon / 4,
				MaxLife:    horizon,
			},
			PU:   scenario.PrimaryUsers{Count: 8, Window: 1024, OnFrac: 0.5},
			Grid: scenario.Grid{Side: math.Sqrt(float64(fleet)), Radius: radius},
		}
		metas[job] = cellMeta{fleet: fleet, alg: alg}
		scs[job] = sc
		build, err := scenario.BuilderFor(alg, n, sc.Seed+uint64(job%len(algs)))
		if err != nil {
			metas[job].err = err
			continue
		}
		jobs[job] = scenario.RunJob{Sc: sc, Build: build}
	}
	outs := scenario.RunMany(cfg.runner(1200), jobs)
	for job, out := range outs {
		c := metas[job]
		if c.err == nil {
			c.err = out.Err
		}
		var graph *scenario.ContactGraph
		if c.err == nil {
			var err error
			// ContactGraph is a pure function of the scenario — O(agents)
			// with the cell grid — so rebuilding it here, outside the
			// batch, costs noise.
			graph, err = scs[job].ContactGraph()
			c.err = err
		}
		if c.err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s @ %d agents failed: %v", c.alg, c.fleet, c.err))
			continue
		}
		// SummarizeContact walks the O(agents) contact edges; the
		// all-pairs Summarize would be the very O(agents²) loop this
		// experiment exists to retire.
		cov := scenario.SummarizeContact(out.Res, out.Agents, horizon, graph)
		pairs := c.fleet * (c.fleet - 1) / 2
		reduce := "-"
		if edges := graph.Edges(); edges > 0 {
			reduce = fmt.Sprintf("%.0fx", float64(pairs)/float64(edges))
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(c.fleet),
			c.alg,
			itoa(pairs),
			itoa(graph.Edges()),
			reduce,
			itoa(cov.EligiblePairs),
			itoa(cov.MetPairs),
			fmt.Sprintf("%.1f", 100*cov.MetFrac()),
			fmt.Sprintf("%.0f", cov.MeanTTR),
		})
	}
	rep.Notes = append(rep.Notes,
		"pairs = all agent pairs; edges = pairs within contact radius; reduce = pairs/edges, the candidate-space shrink the sparse engine scans.",
		"positions are uniform over a √agents-side square (constant density), derived from the seed like churn and spectrum dynamics.",
		"eligible = contact edges whose channel sets overlap and lifetimes intersect; met counts their first rendezvous within range.")
	return rep
}
