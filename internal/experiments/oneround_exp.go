package experiments

import (
	"fmt"
	"math/rand"

	"rendezvous/internal/oneround"
	"rendezvous/internal/sweep"
)

// OneRound regenerates the appendix comparison: exact optimum (brute
// force), best-of-64 random orientation (the 0.25 baseline), and the
// SDP + hyperplane-rounding pipeline (the 0.439 approximation) on a zoo
// of small agent graphs. The graphs are drawn serially; each graph's
// brute-force + SDP solve is one engine job (the dominant cost here).
func OneRound(cfg Config) *Report {
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	rep := &Report{
		ID:     "ONERD",
		Title:  "Appendix: one-round graphical rendezvous — in-pairs achieved",
		Header: []string{"graph", "edges", "OPT", "random(best64)", "SDP", "SDP/OPT"},
	}
	type namedGraph struct {
		name string
		g    *oneround.Graph
	}
	var graphs []namedGraph
	if g, err := oneround.Star(6); err == nil {
		graphs = append(graphs, namedGraph{"star-6", g})
	}
	if g, err := oneround.Cycle(8); err == nil {
		graphs = append(graphs, namedGraph{"cycle-8", g})
	}
	if g, err := oneround.NewGraph(2, [][2]int{{1, 2}, {1, 2}, {1, 2}, {1, 2}}); err == nil {
		graphs = append(graphs, namedGraph{"parallel-4", g})
	}
	erCount := 3
	if cfg.Quick {
		erCount = 1
	}
	for i := 0; i < erCount; i++ {
		g, err := oneround.ErdosRenyi(rng, 7, 0.45)
		if err != nil || g.NumEdges() > 16 {
			continue
		}
		graphs = append(graphs, namedGraph{fmt.Sprintf("er-7-%d", i), g})
	}
	type solveCell struct {
		ok            bool
		opt, rnd, sdp int
		ratio         float64
	}
	cells := sweep.MapRNG(cfg.runner(900), len(graphs), func(i int, jrng *rand.Rand) solveCell {
		g := graphs[i].g
		opt, _, err := g.OptimalInPairs()
		if err != nil {
			return solveCell{}
		}
		_, rnd := oneround.BestRandom(g, jrng, 64)
		res, err := oneround.SolveOneRound(g, oneround.SDPOptions{Seed: cfg.Seed})
		if err != nil {
			return solveCell{}
		}
		ratio := 1.0
		if opt > 0 {
			ratio = float64(res.InPairs) / float64(opt)
		}
		return solveCell{ok: true, opt: opt, rnd: rnd, sdp: res.InPairs, ratio: ratio}
	})
	worstRatio := 1.0
	for i, ng := range graphs {
		c := cells[i]
		if !c.ok {
			continue
		}
		if c.ratio < worstRatio {
			worstRatio = c.ratio
		}
		rep.Rows = append(rep.Rows, []string{
			ng.name, itoa(ng.g.NumEdges()), itoa(c.opt), itoa(c.rnd), itoa(c.sdp),
			fmt.Sprintf("%.3f", c.ratio),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("worst SDP/OPT ratio observed: %.3f (paper guarantees ≥ 0.439; rounding typically lands ≈ 1).", worstRatio),
		"random orientation guarantees 0.25 in expectation; best-of-64 reported.")
	return rep
}
