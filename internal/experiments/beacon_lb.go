package experiments

import (
	"fmt"
	"math/rand"

	"rendezvous/internal/beacon"
	"rendezvous/internal/lowerbound"
	"rendezvous/internal/pairsched"
	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
	"rendezvous/internal/stats"
)

// Beacon compares §5's two protocols against the deterministic flagship:
// mean and p90 TTR as functions of n (fixed k) and of k (fixed n). The
// shapes to reproduce: fresh ≈ (k+ℓ)·log n, walk ≈ k+ℓ+log n — and both
// beat the deterministic Ω(kℓ) once sets are large.
func Beacon(cfg Config) *Report {
	trials := 60
	ns := []int{256, 1 << 12, 1 << 16}
	ksAtBigN := []int{2, 4, 8, 16}
	if cfg.Quick {
		trials = 15
		ns = ns[:2]
		ksAtBigN = ksAtBigN[:3]
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	rep := &Report{
		ID:     "BEACON",
		Title:  "§5 one-bit beacon: TTR vs n (k=4) and vs k (n=4096)",
		Header: []string{"sweep", "value", "fresh mean", "fresh p90", "walk mean", "walk p90", "det mean"},
	}
	measure := func(n, k int) (freshT, walkT, detT []float64) {
		for trial := 0; trial < trials; trial++ {
			src := beacon.NewSource(uint64(cfg.Seed) + uint64(trial)*7919)
			w := simulator.RandomOverlappingPair(rng, n, k, k)
			fa, err1 := beacon.NewFresh(n, w.A, src, beacon.Config{})
			fb, err2 := beacon.NewFresh(n, w.B, src, beacon.Config{})
			wa, err3 := beacon.NewWalk(n, w.A, src, beacon.Config{})
			wb, err4 := beacon.NewWalk(n, w.B, src, beacon.Config{})
			da, err5 := schedule.NewAsync(n, w.A)
			db, err6 := schedule.NewAsync(n, w.B)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil || err6 != nil {
				continue
			}
			horizon := 1 << 20
			wake := rng.Intn(200)
			// Beacon protocols run on the global clock.
			if t, ok := simulator.PairTTR(simulator.AlignWake(fa, 0), simulator.AlignWake(fb, wake), 0, wake, horizon); ok {
				freshT = append(freshT, float64(t))
			}
			if t, ok := simulator.PairTTR(simulator.AlignWake(wa, 0), simulator.AlignWake(wb, wake), 0, wake, horizon); ok {
				walkT = append(walkT, float64(t))
			}
			if t, ok := simulator.PairTTR(da, db, 0, wake, horizon); ok {
				detT = append(detT, float64(t))
			}
		}
		return
	}
	addRow := func(sweep string, val int, fr, wa, de []float64) {
		fs, ws, ds := stats.Summarize(fr), stats.Summarize(wa), stats.Summarize(de)
		rep.Rows = append(rep.Rows, []string{
			sweep, itoa(val),
			ftoa(fs.Mean), ftoa(fs.P90), ftoa(ws.Mean), ftoa(ws.P90), ftoa(ds.Mean),
		})
	}
	for _, n := range ns {
		fr, wa, de := measure(n, 4)
		addRow("n (k=4)", n, fr, wa, de)
	}
	for _, k := range ksAtBigN {
		fr, wa, de := measure(1<<12, k)
		addRow("k (n=4096)", k, fr, wa, de)
	}
	rep.Notes = append(rep.Notes,
		"paper: fresh O((k+ℓ)log n); walk O(k+ℓ+log n) — walk's n-dependence must flatten;",
		"deterministic asynchronous rendezvous is Ω(kℓ) (Theorem 7), so the beacon wins as k grows.")
	return rep
}

// LowerBoundRamsey regenerates the Theorem-4 evidence: exact optimal
// synchronous word lengths for tiny universes (ground truth from
// exhaustive search), a failure witness for an undersized family, and
// path-freeness of the paper's construction.
func LowerBoundRamsey(cfg Config) *Report {
	rep := &Report{
		ID:     "LB-RAMSEY",
		Title:  "Theorem 4 evidence: exact Rs-opt(n,2), failure witnesses, path-freeness",
		Header: []string{"n", "Rs-opt(n,2)", "construction len", "mono path in construction?"},
	}
	maxN := 4
	for n := 2; n <= maxN; n++ {
		opt, ok, err := lowerbound.MinSyncWordLength(n, 5)
		optStr := "?"
		if err == nil && ok {
			optStr = itoa(opt)
		}
		fam := func(a, b int) string {
			w, ferr := pairsched.SyncWord(n, a, b)
			if ferr != nil {
				return ""
			}
			return w.String()
		}
		_, _, _, found := lowerbound.FindMonochromaticPath(n, fam)
		rep.Rows = append(rep.Rows, []string{
			itoa(n), optStr, itoa(pairsched.SyncWordLen(n)), fmt.Sprintf("%v", found),
		})
	}
	// Failure witness: a single-word family on a larger universe.
	a, b, c, found := lowerbound.FindMonochromaticPath(64, func(int, int) string { return "0110" })
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("constant family on n=64: monochromatic path found=%v at (%d<%d<%d) — rendezvous impossible for that pair.", found, a, b, c),
		"paper: any m-coloring of K_n has a monochromatic triangle once n ≥ e·m!; Rs grows as Ω(log log n).")
	// Path-freeness of the asynchronous words too.
	for _, n := range []int{64, 256} {
		fam := func(x, y int) string {
			w, err := pairsched.Word(n, x, y)
			if err != nil {
				return ""
			}
			return w.String()
		}
		_, _, _, bad := lowerbound.FindMonochromaticPath(n, fam)
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("async word family path-free at n=%d: %v", n, !bad))
	}
	return rep
}

// LowerBoundAsync instantiates the Theorem-7 density argument on the
// flagship schedules: the meeting-pair count for the shared channel must
// cover all wake offsets, which forces TTR = Ω(kℓ); our measured TTR
// sits between kℓ and the O(kℓ log log n) bound.
func LowerBoundAsync(cfg Config) *Report {
	rng := rand.New(rand.NewSource(cfg.Seed + 6))
	rep := &Report{
		ID:     "LB-ASYNC",
		Title:  "Theorem 7: density certificate on the flagship schedules (|A∩B|=1)",
		Header: []string{"n", "k=ℓ", "kℓ (lower bd)", "measured max TTR", "bound O(kℓ·loglog)", "|P| ≥ R−r?"},
	}
	ns := []int{64, 256}
	ks := []int{2, 4, 8}
	if cfg.Quick {
		ns = ns[:1]
		ks = ks[:2]
	}
	for _, n := range ns {
		for _, k := range ks {
			w := simulator.RandomPairWithIntersection(rng, n, k, k, 1)
			sa, err := schedule.NewGeneral(n, w.A)
			if err != nil {
				continue
			}
			sb, err := schedule.NewGeneral(n, w.B)
			if err != nil {
				continue
			}
			shared := sharedChannel(w.A, w.B)
			bound := sa.RendezvousBound(k)
			st := simulator.SweepOffsets(sa, sb,
				simulator.SampledOffsets(rng, sa.Period(), 16), bound+1)
			r := bound
			R := 4 * r
			pairs := lowerbound.MeetingPairs(sa, sb, shared, R, r)
			rep.Rows = append(rep.Rows, []string{
				itoa(n), itoa(k), itoa(k * k), itoa(st.Max), itoa(bound),
				fmt.Sprintf("%v (%d ≥ %d)", pairs >= R-r, pairs, R-r),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: Ra ≥ kℓ for singleton intersections; measured TTR must lie in [Ω(kℓ), O(kℓ·loglog n)].")
	return rep
}

func sharedChannel(a, b []int) int {
	in := map[int]bool{}
	for _, x := range a {
		in[x] = true
	}
	for _, y := range b {
		if in[y] {
			return y
		}
	}
	return 0
}
