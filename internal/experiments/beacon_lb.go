package experiments

import (
	"fmt"
	"math/rand"

	"rendezvous/internal/beacon"
	"rendezvous/internal/lowerbound"
	"rendezvous/internal/pairsched"
	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
	"rendezvous/internal/stats"
	"rendezvous/internal/sweep"
)

// Beacon compares §5's two protocols against the deterministic flagship:
// mean and p90 TTR as functions of n (fixed k) and of k (fixed n). The
// shapes to reproduce: fresh ≈ (k+ℓ)·log n, walk ≈ k+ℓ+log n — and both
// beat the deterministic Ω(kℓ) once sets are large. Every (sweep point,
// trial) is one engine job: the workload, wake offset, and beacon stream
// are all functions of (seed, point, trial), never of execution order.
func Beacon(cfg Config) *Report {
	trials := 60
	ns := []int{256, 1 << 12, 1 << 16}
	ksAtBigN := []int{2, 4, 8, 16}
	if cfg.Quick {
		trials = 15
		ns = ns[:2]
		ksAtBigN = ksAtBigN[:3]
	}
	rep := &Report{
		ID:     "BEACON",
		Title:  "§5 one-bit beacon: TTR vs n (k=4) and vs k (n=4096)",
		Header: []string{"sweep", "value", "fresh mean", "fresh p90", "walk mean", "walk p90", "det mean"},
	}
	type point struct {
		sweep string
		n, k  int
		val   int // the swept variable reported in the row
	}
	var points []point
	for _, n := range ns {
		points = append(points, point{"n (k=4)", n, 4, n})
	}
	for _, k := range ksAtBigN {
		points = append(points, point{"k (n=4096)", 1 << 12, k, k})
	}
	type trialCell struct {
		freshOK, walkOK, detOK bool
		fresh, walk, det       float64
	}
	cells := sweep.MapRNG(cfg.runner(600), len(points)*trials, func(i int, jrng *rand.Rand) trialCell {
		pt := points[i/trials]
		trial := i % trials
		var c trialCell
		src := beacon.NewSource(uint64(cfg.Seed) + uint64(trial)*7919)
		w := simulator.RandomOverlappingPair(jrng, pt.n, pt.k, pt.k)
		fa, err1 := beacon.NewFresh(pt.n, w.A, src, beacon.Config{})
		fb, err2 := beacon.NewFresh(pt.n, w.B, src, beacon.Config{})
		wa, err3 := beacon.NewWalk(pt.n, w.A, src, beacon.Config{})
		wb, err4 := beacon.NewWalk(pt.n, w.B, src, beacon.Config{})
		da, err5 := schedule.NewAsync(pt.n, w.A)
		db, err6 := schedule.NewAsync(pt.n, w.B)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil || err6 != nil {
			return c
		}
		horizon := 1 << 20
		wake := jrng.Intn(200)
		// Beacon protocols run on the global clock.
		if t, ok := simulator.PairTTR(simulator.AlignWake(fa, 0), simulator.AlignWake(fb, wake), 0, wake, horizon); ok {
			c.freshOK, c.fresh = true, float64(t)
		}
		if t, ok := simulator.PairTTR(simulator.AlignWake(wa, 0), simulator.AlignWake(wb, wake), 0, wake, horizon); ok {
			c.walkOK, c.walk = true, float64(t)
		}
		if t, ok := simulator.PairTTR(da, db, 0, wake, horizon); ok {
			c.detOK, c.det = true, float64(t)
		}
		return c
	})
	for pi, pt := range points {
		var fr, wa, de []float64
		for _, c := range cells[pi*trials : (pi+1)*trials] {
			if c.freshOK {
				fr = append(fr, c.fresh)
			}
			if c.walkOK {
				wa = append(wa, c.walk)
			}
			if c.detOK {
				de = append(de, c.det)
			}
		}
		fs, ws, ds := stats.Summarize(fr), stats.Summarize(wa), stats.Summarize(de)
		rep.Rows = append(rep.Rows, []string{
			pt.sweep, itoa(pt.val),
			ftoa(fs.Mean), ftoa(fs.P90), ftoa(ws.Mean), ftoa(ws.P90), ftoa(ds.Mean),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: fresh O((k+ℓ)log n); walk O(k+ℓ+log n) — walk's n-dependence must flatten;",
		"deterministic asynchronous rendezvous is Ω(kℓ) (Theorem 7), so the beacon wins as k grows.")
	return rep
}

// LowerBoundRamsey regenerates the Theorem-4 evidence: exact optimal
// synchronous word lengths for tiny universes (ground truth from
// exhaustive search), a failure witness for an undersized family, and
// path-freeness of the paper's construction. The exhaustive searches
// for the per-n rows run as parallel engine jobs.
func LowerBoundRamsey(cfg Config) *Report {
	rep := &Report{
		ID:     "LB-RAMSEY",
		Title:  "Theorem 4 evidence: exact Rs-opt(n,2), failure witnesses, path-freeness",
		Header: []string{"n", "Rs-opt(n,2)", "construction len", "mono path in construction?"},
	}
	ns := []int{2, 3, 4}
	rep.Rows = sweep.Map(cfg.runner(700), len(ns), func(i int) []string {
		n := ns[i]
		opt, ok, err := lowerbound.MinSyncWordLength(n, 5)
		optStr := "?"
		if err == nil && ok {
			optStr = itoa(opt)
		}
		fam := func(a, b int) string {
			w, ferr := pairsched.SyncWord(n, a, b)
			if ferr != nil {
				return ""
			}
			return w.String()
		}
		_, _, _, found := lowerbound.FindMonochromaticPath(n, fam)
		return []string{itoa(n), optStr, itoa(pairsched.SyncWordLen(n)), fmt.Sprintf("%v", found)}
	})
	// Failure witness: a single-word family on a larger universe.
	a, b, c, found := lowerbound.FindMonochromaticPath(64, func(int, int) string { return "0110" })
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("constant family on n=64: monochromatic path found=%v at (%d<%d<%d) — rendezvous impossible for that pair.", found, a, b, c),
		"paper: any m-coloring of K_n has a monochromatic triangle once n ≥ e·m!; Rs grows as Ω(log log n).")
	// Path-freeness of the asynchronous words too.
	asyncNs := []int{64, 256}
	rep.Notes = append(rep.Notes, sweep.Map(cfg.runner(750), len(asyncNs), func(i int) string {
		n := asyncNs[i]
		fam := func(x, y int) string {
			w, err := pairsched.Word(n, x, y)
			if err != nil {
				return ""
			}
			return w.String()
		}
		_, _, _, bad := lowerbound.FindMonochromaticPath(n, fam)
		return fmt.Sprintf("async word family path-free at n=%d: %v", n, !bad)
	})...)
	return rep
}

// LowerBoundAsync instantiates the Theorem-7 density argument on the
// flagship schedules: the meeting-pair count for the shared channel must
// cover all wake offsets, which forces TTR = Ω(kℓ); our measured TTR
// sits between kℓ and the O(kℓ log log n) bound. One engine job per
// (n, k) cell.
func LowerBoundAsync(cfg Config) *Report {
	rng := rand.New(rand.NewSource(cfg.Seed + 6))
	rep := &Report{
		ID:     "LB-ASYNC",
		Title:  "Theorem 7: density certificate on the flagship schedules (|A∩B|=1)",
		Header: []string{"n", "k=ℓ", "kℓ (lower bd)", "measured max TTR", "bound O(kℓ·loglog)", "|P| ≥ R−r?"},
	}
	ns := []int{64, 256}
	ks := []int{2, 4, 8}
	if cfg.Quick {
		ns = ns[:1]
		ks = ks[:2]
	}
	type lbJob struct {
		n, k int
		w    simulator.PairWorkload
	}
	var jobs []lbJob
	for _, n := range ns {
		for _, k := range ks {
			jobs = append(jobs, lbJob{n, k, simulator.RandomPairWithIntersection(rng, n, k, k, 1)})
		}
	}
	rows := sweep.MapRNG(cfg.runner(800), len(jobs), func(i int, jrng *rand.Rand) []string {
		j := jobs[i]
		sa, err := schedule.NewGeneral(j.n, j.w.A)
		if err != nil {
			return nil
		}
		sb, err := schedule.NewGeneral(j.n, j.w.B)
		if err != nil {
			return nil
		}
		shared := sharedChannel(j.w.A, j.w.B)
		bound := sa.RendezvousBound(j.k)
		st := simulator.SweepOffsets(sa, sb,
			simulator.SampledOffsets(jrng, sa.Period(), 16), bound+1)
		r := bound
		R := 4 * r
		pairs := lowerbound.MeetingPairs(sa, sb, shared, R, r)
		return []string{
			itoa(j.n), itoa(j.k), itoa(j.k * j.k), itoa(st.Max), itoa(bound),
			fmt.Sprintf("%v (%d ≥ %d)", pairs >= R-r, pairs, R-r),
		}
	})
	for _, row := range rows {
		if row != nil {
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: Ra ≥ kℓ for singleton intersections; measured TTR must lie in [Ω(kℓ), O(kℓ·loglog n)].")
	return rep
}

func sharedChannel(a, b []int) int {
	in := map[int]bool{}
	for _, x := range a {
		in[x] = true
	}
	for _, y := range b {
		if in[y] {
			return y
		}
	}
	return 0
}
