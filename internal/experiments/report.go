// Package experiments regenerates every evaluation artifact of Chen et
// al. (ICDCS 2014) on the simulator: the two columns of Table 1, the
// per-theorem scaling experiments, the §5 beacon comparison, the §4
// lower-bound certificates, and the appendix one-round approximation.
// Each experiment is a pure function from a Config to a Report;
// cmd/rvbench prints them and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"

	"rendezvous/internal/sweep"
)

// Config tunes experiment scale. Quick shrinks sweeps to CI size.
// Workers bounds the sweep engine's worker pool (≤0 means GOMAXPROCS);
// every experiment is byte-identical at any worker count for a fixed
// Seed — see internal/sweep.
type Config struct {
	Quick   bool
	Seed    int64
	Workers int
}

// runner returns the sweep engine for one parallel phase. stream
// namespaces the per-job RNG derivation so distinct phases of one
// experiment (or distinct experiments) never share job streams.
func (c Config) runner(stream int64) sweep.Runner {
	return sweep.Runner{Workers: c.Workers, Seed: c.Seed + stream}
}

// Report is a rendered experiment: a titled table plus free-form notes
// (fit exponents, verdicts, ASCII charts).
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// All runs every experiment in DESIGN.md's index order.
func All(cfg Config) []*Report {
	return []*Report{
		Table1Asymmetric(cfg),
		Table1Symmetric(cfg),
		Figures(cfg),
		Theorem1(cfg),
		Theorem3(cfg),
		SymmetricWrapper(cfg),
		Beacon(cfg),
		LowerBoundRamsey(cfg),
		LowerBoundAsync(cfg),
		OneRound(cfg),
		MultiAgent(cfg),
		Network(cfg),
		NetworkSparse(cfg),
	}
}

func ftoa(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
