package experiments

import (
	"testing"

	"rendezvous/internal/simulator"
)

// TestBlockEvalEquivalence is the end-to-end regression for the block
// evaluation layer: every experiment driver must render a byte-identical
// report whether the simulator consumes schedules in compiled blocks
// (the default) or through the original per-slot paths. A failure means
// some ChannelBlock or compiled table diverged from its Channel.
//
// The test toggles a process-wide switch, so it must not run in
// parallel with other tests (the parallel determinism tests are held
// until sequential tests finish, so ordering is safe).
func TestBlockEvalEquivalence(t *testing.T) {
	drivers := []struct {
		name string
		f    func(Config) *Report
	}{
		{"Table1Asymmetric", Table1Asymmetric},
		{"Table1Symmetric", Table1Symmetric},
		{"Theorem1", Theorem1},
		{"Theorem3", Theorem3},
		{"SymmetricWrapper", SymmetricWrapper},
		{"LowerBoundRamsey", LowerBoundRamsey},
		{"LowerBoundAsync", LowerBoundAsync},
		{"OneRound", OneRound},
		{"MultiAgent", MultiAgent},
		{"Network", Network},
		{"Beacon", Beacon},
	}
	cfg := Config{Quick: true, Seed: 7, Workers: 4}
	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			prev := simulator.SetBlockEval(false)
			perSlot := d.f(cfg).String()
			simulator.SetBlockEval(true)
			block := d.f(cfg).String()
			simulator.SetBlockEval(prev)
			if block != perSlot {
				t.Errorf("block and per-slot reports diverged:\n--- per-slot ---\n%s\n--- block ---\n%s",
					perSlot, block)
			}
		})
	}
}
