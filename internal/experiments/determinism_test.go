package experiments

import "testing"

// TestReportsDeterministicAcrossWorkers guards the sweep engine's core
// invariant end-to-end: every ported experiment renders byte-identical
// reports at Workers=1 and Workers=8 under the same seed. A failure
// here means some job observed another job's RNG stream or a reduction
// ran out of index order.
func TestReportsDeterministicAcrossWorkers(t *testing.T) {
	drivers := []struct {
		name string
		f    func(Config) *Report
	}{
		{"Table1Asymmetric", Table1Asymmetric},
		{"Table1Symmetric", Table1Symmetric},
		{"Theorem1", Theorem1},
		{"Theorem3", Theorem3},
		{"SymmetricWrapper", SymmetricWrapper},
		{"LowerBoundRamsey", LowerBoundRamsey},
		{"LowerBoundAsync", LowerBoundAsync},
		{"OneRound", OneRound},
		{"MultiAgent", MultiAgent},
		{"Network", Network},
		{"Beacon", Beacon},
	}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			serial := d.f(Config{Quick: true, Seed: 7, Workers: 1}).String()
			parallel := d.f(Config{Quick: true, Seed: 7, Workers: 8}).String()
			if serial != parallel {
				t.Errorf("Workers=1 and Workers=8 reports diverged:\n--- serial ---\n%s\n--- parallel ---\n%s",
					serial, parallel)
			}
		})
	}
}

// TestReportsDeterministicRerun: two runs at the same worker count must
// also agree (catches map-iteration leaks into rendered output).
func TestReportsDeterministicRerun(t *testing.T) {
	cfg := Config{Quick: true, Seed: 5, Workers: 4}
	a := Table1Asymmetric(cfg).String()
	b := Table1Asymmetric(cfg).String()
	if a != b {
		t.Errorf("same-config reruns diverged:\n%s\nvs\n%s", a, b)
	}
}
