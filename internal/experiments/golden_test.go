package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden-report corpus: every experiment driver's rendered report,
// at the CI-sized quick scale and the canonical seed, is committed
// under testdata/golden/ and enforced byte for byte. The repository's
// "byte-identical reports" claims are thereby checked by diff against
// a committed artifact instead of being re-derived pairwise per test.
//
// Regenerate after an intentional output change with
//
//	make golden            # or: go test ./internal/experiments -run TestGoldenReports -update
//
// and review the diff like any other code change.

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenConfig is the corpus's pinned configuration. Workers is
// deliberately left at the default (one per CPU): report bytes are
// independent of worker count — that invariant is itself enforced by
// TestReportsDeterministicAcrossWorkers, and any violation would show
// up here as machine-dependent goldens.
var goldenConfig = Config{Quick: true, Seed: 1}

// goldenName maps a report ID to its corpus filename.
func goldenName(id string) string {
	clean := strings.ToLower(id)
	clean = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, clean)
	return filepath.Join("testdata", "golden", clean+".golden")
}

func TestGoldenReports(t *testing.T) {
	reports := All(goldenConfig)
	if len(reports) == 0 {
		t.Fatal("All returned no reports")
	}
	seen := map[string]bool{}
	for _, rep := range reports {
		path := goldenName(rep.ID)
		if seen[path] {
			t.Fatalf("duplicate golden filename %s (report ID %q)", path, rep.ID)
		}
		seen[path] = true
		got := rep.String()
		if *update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden for report %q: %v\n(run `make golden` and commit the result)", rep.ID, err)
		}
		if got != string(want) {
			t.Errorf("report %q diverged from %s:\n--- got ---\n%s\n--- want ---\n%s\n(if intentional, run `make golden`)",
				rep.ID, path, got, want)
		}
	}
	// The corpus must not accumulate stale files for retired reports.
	entries, err := filepath.Glob(filepath.Join("testdata", "golden", "*.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !seen[e] {
			t.Errorf("stale golden file %s has no generating report (delete it)", e)
		}
	}
}
