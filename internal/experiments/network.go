package experiments

import (
	"fmt"

	"rendezvous/internal/scenario"
	"rendezvous/internal/sweep"
)

// Network measures fleet-scale discovery under environment dynamics:
// fleets up to 1k+ agents with staggered wakes, mid-run churn (a quarter
// of the fleet powers off), and primary users occupying channels half
// the time, for ours vs. the baselines. The paper's schedules are
// anonymous and deterministic, so the pairwise guarantee extends to
// fleets of any size with zero coordination state; this experiment
// shows what survives once the environment is hostile as well.
//
// Every fleet is a scenario derived purely from the seed (all four
// algorithms run the identical population and spectrum dynamics), and
// each (fleet, algorithm) cell is one job on the sweep engine. Within a
// cell the engine picks its own decomposition — the pairwise scan for
// small fleets, the time-sharded joint engine once the pair count
// crosses over (the full-scale 1024-agent fleets) — and both are exact,
// so the report is byte-identical at any worker count inside or outside
// the cell.
func Network(cfg Config) *Report {
	fleets := []int{64, 256, 1024}
	horizon := 1 << 15
	if cfg.Quick {
		fleets = []int{16, 48}
		horizon = 1 << 12
	}
	const (
		n = 128
		k = 4
	)
	algs := []string{"ours", "crseq-rand", "jumpstay", "random"}
	rep := &Report{
		ID:    "NETWORK",
		Title: fmt.Sprintf("Fleet discovery under churn + primary users (n=%d, k=%d, horizon=%d)", n, k, horizon),
		Header: []string{
			"agents", "alg", "pairs", "met", "met%", "mean-ttr",
		},
	}
	// Derive the whole (fleet, algorithm) grid serially — scenarios are
	// pure functions of the seed, so this is cheap — then submit it as
	// one batch: every cell engine borrows from the shared table cache,
	// and the pool parallelizes across cells exactly as sweep.Map did.
	total := len(fleets) * len(algs)
	type cellMeta struct {
		fleet int
		alg   string
		err   error
	}
	metas := make([]cellMeta, total)
	jobs := make([]scenario.RunJob, total)
	for job := 0; job < total; job++ {
		fleet := fleets[job/len(algs)]
		alg := algs[job%len(algs)]
		sc := scenario.Scenario{
			Name:    "network",
			N:       n,
			Agents:  fleet,
			K:       k,
			Seed:    uint64(sweep.DeriveSeed(cfg.Seed+1100, job/len(algs))),
			Horizon: horizon,
			Churn: scenario.Churn{
				WakeSpread: 2000,
				LeaveFrac:  0.25,
				MinLife:    horizon / 4,
				MaxLife:    horizon,
			},
			PU: scenario.PrimaryUsers{Count: 8, Window: 1024, OnFrac: 0.5},
		}
		metas[job] = cellMeta{fleet: fleet, alg: alg}
		// The fleet seed is shared across algorithms (same population,
		// same spectrum dynamics); only the schedule builder differs.
		build, err := scenario.BuilderFor(alg, n, sc.Seed+uint64(job%len(algs)))
		if err != nil {
			metas[job].err = err
			continue
		}
		// Workers = 0: the engine parallelizes inside the cell (the batch
		// pool already runs cells concurrently; the scheduler shares the
		// cores). Exactness of both engine decompositions keeps the report
		// byte-identical whatever the worker counts.
		jobs[job] = scenario.RunJob{Sc: sc, Build: build}
	}
	outs := scenario.RunMany(cfg.runner(1100), jobs)
	for job, out := range outs {
		c := metas[job]
		if c.err == nil {
			c.err = out.Err
		}
		if c.err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s @ %d agents failed: %v", c.alg, c.fleet, c.err))
			continue
		}
		cov := scenario.Summarize(out.Res, out.Agents, horizon)
		rep.Rows = append(rep.Rows, []string{
			itoa(c.fleet),
			c.alg,
			itoa(cov.EligiblePairs),
			itoa(cov.MetPairs),
			fmt.Sprintf("%.1f", 100*cov.MetFrac()),
			fmt.Sprintf("%.0f", cov.MeanTTR),
		})
	}
	rep.Notes = append(rep.Notes,
		"pairs = set-overlapping pairs whose activity windows intersect; met counts their first rendezvous.",
		"same seed ⇒ same fleet and spectrum dynamics for every algorithm; churn: 25% of agents power off mid-run.",
		"primary users: 8 incumbents each occupying a channel 50% of every 1024-slot window; meetings there do not count.")
	return rep
}
