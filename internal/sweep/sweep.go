// Package sweep is the deterministic parallel execution engine behind
// every experiment sweep in this repository. It runs an index space of
// independent jobs on a bounded worker pool and guarantees that results
// are byte-identical regardless of the worker count or OS scheduling:
//
//   - results land in a slice indexed by job number, never in arrival
//     order;
//   - randomized jobs draw from an RNG derived purely from (Seed, job
//     index) via a SplitMix64 finalizer, so no job observes another
//     job's consumption of a shared stream;
//   - reductions over job results happen serially in index order.
//
// Experiment drivers therefore split into a cheap serial phase (drawing
// workloads from a master RNG) and an expensive parallel phase (the
// measurement sweeps), and the report they produce is a pure function
// of the seed alone.
package sweep

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
)

// Runner bounds and seeds a parallel sweep. The zero value runs with
// GOMAXPROCS workers and seed 0.
type Runner struct {
	Workers int   // worker goroutines; ≤0 means runtime.GOMAXPROCS(0)
	Seed    int64 // base seed for per-job RNG derivation in MapRNG
}

// workerCount clamps the pool size to the job count so tiny sweeps do
// not pay goroutine overhead.
func (r Runner) workerCount(jobs int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DeriveSeed mixes a base seed with a job index through the SplitMix64
// finalizer, yielding statistically independent per-job streams. Jobs
// seeded this way never contend for (or perturb) a shared RNG, which is
// what makes sweeps reproducible across worker counts.
func DeriveSeed(seed int64, job int) int64 {
	z := uint64(seed) + (uint64(job)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Map evaluates fn(0) … fn(n−1) on the runner's worker pool and returns
// the results in index order. fn must not depend on evaluation order.
func Map[T any](r Runner, n int, fn func(job int) T) []T {
	out := make([]T, n)
	w := r.workerCount(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// MapRNG is Map for randomized jobs: each job receives a private RNG
// seeded from (r.Seed, job) only. Two calls with equal seeds and job
// counts produce identical results at any worker count.
func MapRNG[T any](r Runner, n int, fn func(job int, rng *rand.Rand) T) []T {
	return Map(r, n, func(i int) T {
		return fn(i, rand.New(rand.NewSource(DeriveSeed(r.Seed, i))))
	})
}

// sweepChunk is the offset-count granularity at which SweepOffsets
// splits work. Fixed (not worker-derived) so the partition is stable,
// though MergeTTR makes the result partition-independent anyway.
const sweepChunk = 64

// SweepOffsets is the parallel counterpart of simulator.SweepOffsets:
// it partitions the offsets into contiguous chunks, sweeps the chunks
// on the worker pool, and merges the per-chunk statistics in index
// order. The result equals the serial sweep exactly, including the
// WorstOff tie-break (the last offset attaining the maximum wins).
func SweepOffsets(r Runner, a, b schedule.Schedule, offsets []int, horizon int) simulator.TTRStats {
	// Each chunk runs simulator.SweepOffsets, whose adaptive (ski-
	// rental) compilation decides per chunk whether unrolling the pair's
	// hop tables pays off; a worker therefore never inherits another
	// chunk's compile cost, and results stay byte-identical at any
	// worker count because compiled tables are verified equivalents.
	if len(offsets) <= sweepChunk || r.workerCount(len(offsets)) == 1 {
		return simulator.SweepOffsets(a, b, offsets, horizon)
	}
	chunks := (len(offsets) + sweepChunk - 1) / sweepChunk
	parts := Map(r, chunks, func(c int) simulator.TTRStats {
		lo := c * sweepChunk
		hi := lo + sweepChunk
		if hi > len(offsets) {
			hi = len(offsets)
		}
		return simulator.SweepOffsets(a, b, offsets[lo:hi], horizon)
	})
	var st simulator.TTRStats
	for _, p := range parts {
		st = MergeTTR(st, p)
	}
	return st
}

// MergeTTR folds chunk statistics into an accumulator, replicating the
// serial sweep's semantics: Max/WorstOff only move on a successful
// sample whose TTR is ≥ the running maximum, so later chunks win ties
// exactly as later offsets do serially.
func MergeTTR(acc, chunk simulator.TTRStats) simulator.TTRStats {
	acc.Samples += chunk.Samples
	acc.Failures += chunk.Failures
	acc.Sum += chunk.Sum
	if chunk.Samples-chunk.Failures > 0 && chunk.Max >= acc.Max {
		acc.Max = chunk.Max
		acc.WorstOff = chunk.WorstOff
	}
	return acc
}
