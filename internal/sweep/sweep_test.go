package sweep

import (
	"math/rand"
	"reflect"
	"testing"

	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
)

func TestMapOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		r := Runner{Workers: workers}
		got := Map(r, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: index %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	if got := Map(Runner{Workers: 4}, 0, func(int) int { return 1 }); len(got) != 0 {
		t.Fatalf("expected empty result, got %v", got)
	}
}

// TestMapRNGWorkerIndependence is the engine's core invariant: the same
// seed produces identical results at every worker count.
func TestMapRNGWorkerIndependence(t *testing.T) {
	run := func(workers int) []int {
		r := Runner{Workers: workers, Seed: 42}
		return MapRNG(r, 64, func(i int, rng *rand.Rand) int {
			return rng.Intn(1 << 20)
		})
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8, 32} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from serial run", workers)
		}
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(0); seed < 4; seed++ {
		for job := 0; job < 256; job++ {
			s := DeriveSeed(seed, job)
			if seen[s] {
				t.Fatalf("collision at seed=%d job=%d", seed, job)
			}
			seen[s] = true
			if s2 := DeriveSeed(seed, job); s2 != s {
				t.Fatalf("DeriveSeed not deterministic at seed=%d job=%d", seed, job)
			}
		}
	}
}

// TestSweepOffsetsMatchesSerial checks the parallel offset sweep is
// byte-identical to simulator.SweepOffsets on real schedules, including
// the WorstOff tie-break.
func TestSweepOffsetsMatchesSerial(t *testing.T) {
	a, err := schedule.NewAsync(64, []int{3, 17, 40})
	if err != nil {
		t.Fatal(err)
	}
	b, err := schedule.NewAsync(64, []int{17, 59})
	if err != nil {
		t.Fatal(err)
	}
	offsets := make([]int, 500)
	rng := rand.New(rand.NewSource(7))
	for i := range offsets {
		offsets[i] = rng.Intn(a.Period())
	}
	want := simulator.SweepOffsets(a, b, offsets, 1<<16)
	for _, workers := range []int{1, 2, 4, 8} {
		got := SweepOffsets(Runner{Workers: workers}, a, b, offsets, 1<<16)
		if got != want {
			t.Fatalf("workers=%d: %+v != serial %+v", workers, got, want)
		}
	}
}

// TestMergeTTRFailureChunks: a chunk with only failures must not steal
// WorstOff from an earlier successful chunk.
func TestMergeTTRFailureChunks(t *testing.T) {
	success := simulator.TTRStats{Samples: 3, Failures: 0, Max: 9, Sum: 15, WorstOff: 2}
	failures := simulator.TTRStats{Samples: 2, Failures: 2}
	got := MergeTTR(success, failures)
	if got.Max != 9 || got.WorstOff != 2 {
		t.Fatalf("failure chunk overwrote max: %+v", got)
	}
	if got.Samples != 5 || got.Failures != 2 || got.Sum != 15 {
		t.Fatalf("counts not accumulated: %+v", got)
	}
}
