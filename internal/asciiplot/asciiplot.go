// Package asciiplot renders the two kinds of plots this repository
// regenerates from the paper in a terminal: the walk "graphs" of binary
// sequences (Figures 1–3) and log-log line charts of measured rendezvous
// times (the Table-1 experiments).
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Walk renders the graph G_z of a binary sequence in the style of the
// paper's Figures 1–3: the x axis is positions 0…|z|, the y axis the
// walk height, with '/' for an up-step, '\' for a down-step.
func Walk(title, bits string) string {
	steps := make([]int, 0, len(bits))
	heights := []int{0}
	h := 0
	for _, b := range bits {
		step := -1
		if b == '1' {
			step = 1
		}
		steps = append(steps, step)
		h += step
		heights = append(heights, h)
	}
	minH, maxH := 0, 0
	for _, v := range heights {
		if v < minH {
			minH = v
		}
		if v > maxH {
			maxH = v
		}
	}
	rows := maxH - minH + 1
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(bits)+2))
	}
	// Row 0 is the top (maxH); map height v to row maxH−v.
	for i, step := range steps {
		var glyph byte
		var lvl int
		if step == 1 {
			glyph = '/'
			lvl = heights[i+1] // the level the up-step reaches
		} else {
			glyph = '\\'
			lvl = heights[i] // the level the down-step leaves
		}
		grid[maxH-lvl][i+1] = glyph
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (sequence %s)\n", title, bits)
	for r, row := range grid {
		level := maxH - r
		marker := "  "
		if level == 0 {
			marker = "0 "
		}
		sb.WriteString(marker)
		sb.Write(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Series is one labeled line of a Lines chart.
type Series struct {
	Label string
	X, Y  []float64
}

// Lines renders series on a log-log scatter grid of the given size.
// Points from series i are drawn with the i-th marker character.
func Lines(title string, width, height int, series []Series) string {
	markers := "ox+*#@%&"
	var minX, maxX, minY, maxY float64
	first := true
	for _, s := range series {
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				continue
			}
			if first {
				minX, maxX, minY, maxY = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if first {
		return title + "\n(no positive data)\n"
	}
	lx0, lx1 := math.Log(minX), math.Log(maxX)
	ly0, ly1 := math.Log(minY), math.Log(maxY)
	if lx1 == lx0 {
		lx1 = lx0 + 1
	}
	if ly1 == ly0 {
		ly1 = ly0 + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				continue
			}
			col := int(math.Round((math.Log(s.X[i]) - lx0) / (lx1 - lx0) * float64(width-1)))
			row := height - 1 - int(math.Round((math.Log(s.Y[i])-ly0)/(ly1-ly0)*float64(height-1)))
			grid[row][col] = m
		}
	}
	var sb strings.Builder
	sb.WriteString(title + "  [log-log]\n")
	for _, row := range grid {
		sb.WriteString("| ")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("+" + strings.Repeat("-", width+1) + "\n")
	fmt.Fprintf(&sb, "x: %.3g … %.3g   y: %.3g … %.3g\n", minX, maxX, minY, maxY)
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c = %s\n", markers[si%len(markers)], s.Label)
	}
	return sb.String()
}
