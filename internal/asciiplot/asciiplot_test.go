package asciiplot

import (
	"strings"
	"testing"
)

func TestWalkFigure1a(t *testing.T) {
	// The paper's Figure 1a sequence.
	out := Walk("Figure 1a", "11010")
	if !strings.Contains(out, "11010") {
		t.Error("missing sequence in caption")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Heights 0..2 → 3 grid rows plus caption.
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	ups := strings.Count(out, "/")
	downs := strings.Count(out, "\\")
	if ups != 3 || downs != 2 {
		t.Errorf("ups=%d downs=%d, want 3/2:\n%s", ups, downs, out)
	}
	// The zero axis marker must be present.
	if !strings.Contains(out, "0 ") {
		t.Error("missing zero-level marker")
	}
}

func TestWalkNegativeExcursion(t *testing.T) {
	out := Walk("dip", "0011")
	if strings.Count(out, "\\") != 2 || strings.Count(out, "/") != 2 {
		t.Errorf("unexpected glyph counts:\n%s", out)
	}
}

func TestLinesBasic(t *testing.T) {
	out := Lines("ttr", 40, 10, []Series{
		{Label: "ours", X: []float64{2, 4, 8}, Y: []float64{3, 3, 4}},
		{Label: "crseq", X: []float64{2, 4, 8}, Y: []float64{12, 48, 200}},
	})
	if !strings.Contains(out, "ours") || !strings.Contains(out, "crseq") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatalf("missing markers:\n%s", out)
	}
	if !strings.Contains(out, "log-log") {
		t.Error("missing scale note")
	}
}

func TestLinesEmpty(t *testing.T) {
	out := Lines("empty", 10, 5, []Series{{Label: "none"}})
	if !strings.Contains(out, "no positive data") {
		t.Fatalf("expected empty-data notice:\n%s", out)
	}
}
