package beacon

import (
	"fmt"

	"rendezvous/internal/schedule"
)

// Fresh is the simple §5 protocol: every W = d·⌈log₂P⌉ slots the agents
// read the last full window of beacon bits as a new permutation seed.
// During the initial warm-up window (no complete window yet) agents park
// on their smallest channel.
type Fresh struct {
	f family
}

var _ schedule.Schedule = (*Fresh)(nil)

// NewFresh builds the fresh-seed beacon protocol over the given channel
// set. Agents that should rendezvous must share the same Source.
func NewFresh(n int, channels []int, src Source, cfg Config) (*Fresh, error) {
	f, err := newFamily(n, channels, src, cfg)
	if err != nil {
		return nil, err
	}
	return &Fresh{f: f}, nil
}

// Warmup returns the number of slots before the first permutation draw:
// the paper's d·log n bit cost.
func (fr *Fresh) Warmup() int { return fr.f.seedBits() }

// freshSeedMix separates the per-epoch seed derivation shared by the
// per-slot and block paths.
const freshSeedMix = 0x632be59bd9b4e019

// Channel implements schedule.Schedule.
func (fr *Fresh) Channel(t int) int {
	schedule.CheckSlot(t)
	t %= fr.f.period
	w := fr.f.seedBits()
	if t < w {
		return fr.f.set[0]
	}
	epoch := t / w // epoch ≥ 1; bits of window epoch−1 are complete
	seed := fr.f.src.window((epoch-1)*w, min(w, 64))
	coeffs := make([]uint64, fr.f.degree)
	fr.f.coeffs(seed^uint64(epoch)*freshSeedMix, coeffs)
	return fr.f.argmin(coeffs)
}

// ChannelBlock implements schedule.BlockEvaluator. The hopped channel
// is constant within a seed window, so the block path draws one
// permutation (and runs one argmin) per W-slot window instead of per
// slot, reusing a single coefficient buffer.
func (fr *Fresh) ChannelBlock(dst []int, start int) {
	schedule.CheckSlot(start)
	w := fr.f.seedBits()
	coeffs := make([]uint64, fr.f.degree)
	for filled := 0; filled < len(dst); {
		t := (start + filled) % fr.f.period
		var span, ch int
		if t < w {
			span = w - t
			ch = fr.f.set[0]
		} else {
			epoch := t / w
			span = (epoch+1)*w - t
			seed := fr.f.src.window((epoch-1)*w, min(w, 64))
			fr.f.coeffs(seed^uint64(epoch)*freshSeedMix, coeffs)
			ch = fr.f.argmin(coeffs)
		}
		// A window straddling the period boundary wraps back to warm-up.
		span = min(span, fr.f.period-t)
		span = min(span, len(dst)-filled)
		for x := 0; x < span; x++ {
			dst[filled+x] = ch
		}
		filled += span
	}
}

// Period implements schedule.Schedule.
func (fr *Fresh) Period() int { return fr.f.period }

// Channels implements schedule.Schedule.
func (fr *Fresh) Channels() []int { return fr.f.channelsCopy() }

// walkStepBits is the number of beacon bits consumed per expander step
// (degree-4 graph): the paper's "O(1) bits per subsequent element".
const walkStepBits = 2

// walkGenerators are four invertible affine maps on Z_2^64 (odd
// multipliers); the step indexed by two beacon bits applies one of them.
var walkGenerators = [4]struct{ mul, add uint64 }{
	{0x9e3779b97f4a7c15, 0x7f4a7c159e3779b9},
	{0xbf58476d1ce4e5b9, 0x94d049bb133111eb},
	{0xd6e8feb86659fd93, 0x2545f4914f6cdd1d},
	{0xa0761d6478bd642f, 0xe7037ed1a0b428db},
}

// Walk is the amplified §5 protocol: one seed from the first window,
// then a new permutation every walkStepBits slots by stepping a walk on
// an expander-style graph over the seed space. Total bit cost to
// rendezvous: O(log n) + O(1) per draw — the paper's
// O(|S_i|+|S_j|+log n).
type Walk struct {
	f      family
	states []uint64 // state after each step, precomputed for purity
}

var _ schedule.Schedule = (*Walk)(nil)

// NewWalk builds the expander-walk beacon protocol. The walk states are
// precomputed up to cfg.Period so that Channel stays a pure function.
func NewWalk(n int, channels []int, src Source, cfg Config) (*Walk, error) {
	f, err := newFamily(n, channels, src, cfg)
	if err != nil {
		return nil, err
	}
	w := f.seedBits()
	steps := (f.period-w)/walkStepBits + 2
	if steps < 1 {
		return nil, fmt.Errorf("beacon: period %d shorter than warm-up %d", f.period, w)
	}
	states := make([]uint64, steps)
	states[0] = splitmix64(f.src.window(0, min(w, 64)))
	for i := 1; i < steps; i++ {
		g := f.src.window(w+(i-1)*walkStepBits, walkStepBits)
		gen := walkGenerators[g&3]
		states[i] = states[i-1]*gen.mul + gen.add
	}
	return &Walk{f: f, states: states}, nil
}

// Warmup returns the number of slots before the first permutation draw.
func (wk *Walk) Warmup() int { return wk.f.seedBits() }

// Channel implements schedule.Schedule.
func (wk *Walk) Channel(t int) int {
	schedule.CheckSlot(t)
	t %= wk.f.period
	w := wk.f.seedBits()
	if t < w {
		return wk.f.set[0]
	}
	step := (t - w) / walkStepBits
	coeffs := make([]uint64, wk.f.degree)
	wk.f.coeffs(wk.states[step], coeffs)
	return wk.f.argmin(coeffs)
}

// ChannelBlock implements schedule.BlockEvaluator: one permutation draw
// per walk step (walkStepBits slots) with a reused coefficient buffer.
func (wk *Walk) ChannelBlock(dst []int, start int) {
	schedule.CheckSlot(start)
	w := wk.f.seedBits()
	coeffs := make([]uint64, wk.f.degree)
	for filled := 0; filled < len(dst); {
		t := (start + filled) % wk.f.period
		var span, ch int
		if t < w {
			span = w - t
			ch = wk.f.set[0]
		} else {
			step := (t - w) / walkStepBits
			span = w + (step+1)*walkStepBits - t
			wk.f.coeffs(wk.states[step], coeffs)
			ch = wk.f.argmin(coeffs)
		}
		span = min(span, wk.f.period-t)
		span = min(span, len(dst)-filled)
		for x := 0; x < span; x++ {
			dst[filled+x] = ch
		}
		filled += span
	}
}

// Period implements schedule.Schedule.
func (wk *Walk) Period() int { return wk.f.period }

// Channels implements schedule.Schedule.
func (wk *Walk) Channels() []int { return wk.f.channelsCopy() }
