package beacon

import (
	"math/rand"
	"sort"
	"testing"

	"rendezvous/internal/schedule"
)

// globalTTR measures slots-to-rendezvous under the beacon model's global
// clock: both protocols are functions of absolute slots, an agent simply
// starts listening at its wake slot.
func globalTTR(a, b schedule.Schedule, wakeA, wakeB, horizon int) (int, bool) {
	start := wakeA
	if wakeB > start {
		start = wakeB
	}
	for s := 0; s < horizon; s++ {
		if a.Channel(start+s) == b.Channel(start+s) {
			return s, true
		}
	}
	return 0, false
}

func TestSourceIsDeterministicAndBalanced(t *testing.T) {
	src := NewSource(1)
	ones := 0
	const total = 20000
	for i := 0; i < total; i++ {
		b := src.Bit(i)
		if b != src.Bit(i) {
			t.Fatal("Bit not deterministic")
		}
		if b > 1 {
			t.Fatalf("Bit(%d) = %d", i, b)
		}
		ones += int(b)
	}
	// A fair coin lands in [0.48, 0.52]·total except with vanishing
	// probability.
	if ones < total*48/100 || ones > total*52/100 {
		t.Errorf("beacon bias: %d ones out of %d", ones, total)
	}
	if NewSource(1).Bit(7) != src.Bit(7) {
		t.Error("same seed must give same stream")
	}
	if NewSource(2).window(0, 64) == src.window(0, 64) {
		t.Error("different seeds should give different streams")
	}
}

// TestMinWiseCapture verifies the ε-min-wise property the protocol needs
// (Definition 1 with ε = 1/2): over many fresh permutations, each
// channel of a set is the argmin with frequency ≥ (1−ε)/|set|.
func TestMinWiseCapture(t *testing.T) {
	const n = 64
	set := []int{3, 17, 21, 40, 41, 64}
	fr, err := NewFresh(n, set, NewSource(5), Config{})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	const draws = 4000
	w := fr.Warmup()
	for e := 1; e <= draws; e++ {
		counts[fr.Channel(e*w)]++
	}
	for _, ch := range set {
		freq := float64(counts[ch]) / draws
		if lower := 0.5 / float64(len(set)); freq < lower {
			t.Errorf("channel %d captured the minimum with frequency %.4f < %.4f", ch, freq, lower)
		}
	}
}

// TestFreshRendezvous: two agents sharing a beacon meet quickly — within
// a few multiples of (k+ℓ) permutation draws — at every wake offset
// tried.
func TestFreshRendezvous(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 128
	src := NewSource(99)
	for trial := 0; trial < 25; trial++ {
		a, b := overlappingSets(rng, n, 2+rng.Intn(6), 2+rng.Intn(6))
		fa, err := NewFresh(n, a, src, Config{})
		if err != nil {
			t.Fatal(err)
		}
		fb, err := NewFresh(n, b, src, Config{})
		if err != nil {
			t.Fatal(err)
		}
		// 40·(k+ℓ) draws gives failure probability well under 1e-6.
		horizon := fa.Warmup() * 40 * (len(a) + len(b))
		wakeA, wakeB := rng.Intn(1000), rng.Intn(1000)
		if _, ok := globalTTR(fa, fb, wakeA, wakeB, horizon); !ok {
			t.Fatalf("fresh protocol failed: sets %v/%v wakes %d/%d", a, b, wakeA, wakeB)
		}
	}
}

// TestWalkRendezvous mirrors TestFreshRendezvous for the expander-walk
// protocol, with its much smaller horizon: warm-up + O(k+ℓ) draws.
func TestWalkRendezvous(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 128
	src := NewSource(77)
	for trial := 0; trial < 25; trial++ {
		a, b := overlappingSets(rng, n, 2+rng.Intn(6), 2+rng.Intn(6))
		wa, err := NewWalk(n, a, src, Config{})
		if err != nil {
			t.Fatal(err)
		}
		wb, err := NewWalk(n, b, src, Config{})
		if err != nil {
			t.Fatal(err)
		}
		horizon := wa.Warmup() + 200*(len(a)+len(b))
		wakeA, wakeB := rng.Intn(500), rng.Intn(500)
		if _, ok := globalTTR(wa, wb, wakeA, wakeB, horizon); !ok {
			t.Fatalf("walk protocol failed: sets %v/%v wakes %d/%d", a, b, wakeA, wakeB)
		}
	}
}

// TestWalkBeatsFreshForLargeN is the §5 headline shape: for large n the
// walk protocol's mean TTR is far below the fresh protocol's, because it
// pays the log n bit cost once rather than per draw.
func TestWalkBeatsFreshForLargeN(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 1 << 16
	const trials = 30
	var sumFresh, sumWalk float64
	for trial := 0; trial < trials; trial++ {
		src := NewSource(uint64(trial) * 101)
		a, b := overlappingSets(rng, n, 4, 4)
		fa, _ := NewFresh(n, a, src, Config{})
		fb, _ := NewFresh(n, b, src, Config{})
		wa, err := NewWalk(n, a, src, Config{})
		if err != nil {
			t.Fatal(err)
		}
		wb, err := NewWalk(n, b, src, Config{})
		if err != nil {
			t.Fatal(err)
		}
		horizon := fa.Warmup() * 400
		tf, okF := globalTTR(fa, fb, 0, 0, horizon)
		tw, okW := globalTTR(wa, wb, 0, 0, horizon)
		if !okF || !okW {
			t.Fatalf("trial %d: protocols failed (fresh %v walk %v)", trial, okF, okW)
		}
		sumFresh += float64(tf)
		sumWalk += float64(tw)
	}
	if sumWalk >= sumFresh {
		t.Errorf("walk (%.1f mean) should beat fresh (%.1f mean) at n=2^16",
			sumWalk/trials, sumFresh/trials)
	}
}

// TestIdenticalSetsAgree: two agents with the same set always hop the
// same channel once both are past warm-up — the beacon protocol is a
// common deterministic function of the stream.
func TestIdenticalSetsAgree(t *testing.T) {
	set := []int{2, 9, 33}
	src := NewSource(3)
	a, err := NewWalk(64, set, src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWalk(64, set, src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for s := a.Warmup(); s < a.Warmup()+500; s++ {
		if a.Channel(s) != b.Channel(s) {
			t.Fatalf("identical sets diverged at slot %d", s)
		}
	}
}

func TestProtocolsStayInSet(t *testing.T) {
	set := []int{5, 12, 31}
	inSet := map[int]bool{5: true, 12: true, 31: true}
	src := NewSource(21)
	fr, err := NewFresh(32, set, src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wk, err := NewWalk(32, set, src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5000; s++ {
		if !inSet[fr.Channel(s)] {
			t.Fatalf("fresh: Channel(%d) = %d outside set", s, fr.Channel(s))
		}
		if !inSet[wk.Channel(s)] {
			t.Fatalf("walk: Channel(%d) = %d outside set", s, wk.Channel(s))
		}
	}
	got := fr.Channels()
	sort.Ints(got)
	if len(got) != 3 || got[0] != 5 || got[2] != 31 {
		t.Errorf("Channels() = %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	src := NewSource(1)
	if _, err := NewFresh(8, []int{1}, src, Config{Degree: 1}); err == nil {
		t.Error("degree 1: expected error")
	}
	if _, err := NewFresh(8, []int{1}, src, Config{Period: -1}); err == nil {
		t.Error("negative period: expected error")
	}
	if _, err := NewWalk(8, []int{1}, src, Config{Period: 10}); err == nil {
		t.Error("period below warm-up: expected error")
	}
	if _, err := NewFresh(8, []int{9}, src, Config{}); err == nil {
		t.Error("out-of-range channel: expected error")
	}
}

func TestWarmupParksOnMinChannel(t *testing.T) {
	set := []int{7, 3, 19}
	fr, err := NewFresh(32, set, NewSource(2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < fr.Warmup(); s++ {
		if fr.Channel(s) != 3 {
			t.Fatalf("warm-up slot %d hopped %d, want 3", s, fr.Channel(s))
		}
	}
}

// overlappingSets draws two random sets with at least one common
// channel.
func overlappingSets(rng *rand.Rand, n, ka, kb int) ([]int, []int) {
	shared := 1 + rng.Intn(n)
	mk := func(k int) []int {
		set := map[int]bool{shared: true}
		for len(set) < k {
			set[1+rng.Intn(n)] = true
		}
		out := make([]int, 0, k)
		for c := range set {
			out = append(out, c)
		}
		sort.Ints(out)
		return out
	}
	return mk(ka), mk(kb)
}

// TestMinWiseCaptureDegreeAblation justifies the default hash degree:
// even degree 2 (pairwise independence) gives every channel a fair shot
// at the minimum with ε well under the paper's 1/2 requirement, and
// higher degrees only sharpen it. This is the empirical backing for the
// Indyk-family substitution recorded in DESIGN.md.
func TestMinWiseCaptureDegreeAblation(t *testing.T) {
	const n = 64
	set := []int{3, 17, 21, 40, 41, 64}
	for _, degree := range []int{2, 4, 8, 12} {
		fr, err := NewFresh(n, set, NewSource(31), Config{Degree: degree})
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[int]int)
		const draws = 3000
		w := fr.Warmup()
		for e := 1; e <= draws; e++ {
			counts[fr.Channel(e*w)]++
		}
		for _, ch := range set {
			freq := float64(counts[ch]) / draws
			if lower := 0.5 / float64(len(set)); freq < lower {
				t.Errorf("degree %d: channel %d captured with frequency %.4f < %.4f",
					degree, ch, freq, lower)
			}
		}
	}
}
