// Package beacon implements §5 of Chen et al. (ICDCS 2014): rendezvous
// with a one-bit random beacon. The environment broadcasts one common
// random bit per slot; agents derive a shared pseudo-permutation πₜ of
// the channel universe from the bit stream and hop on
// argmin_{a ∈ S} πₜ(a). Because every agent evaluates the same πₜ,
// overlapping sets collide as soon as some shared channel is the common
// argmin — probability ≥ (1−ε)/|S_i ∪ S_j| per fresh draw under an
// ε-min-wise family — breaking the deterministic Ω(|S_i||S_j|) barrier.
//
// Two protocols are provided, matching the paper's two constructions:
//
//   - Fresh: a brand-new permutation seed every d·⌈log₂P⌉ beacon bits
//     (disjoint windows → independent draws); rendezvous w.h.p. in
//     O((|S_i|+|S_j|)·log n) slots.
//   - Walk: one seed from the first window, then a constant number of
//     beacon bits per redraw via a walk on an expander-style graph over
//     the seed space; rendezvous w.h.p. in O(|S_i|+|S_j|+log n) slots.
//
// Substitutions versus the paper (recorded in DESIGN.md): Indyk's
// ε-min-wise family is realized as a degree-d polynomial hash over a
// prime field (Indyk's construction is itself built from O(log 1/ε)-wise
// independence), and the explicit expander is a degree-4 affine Cayley
// graph over Z_2^64. The properties the protocols need — min capture
// probability and per-step randomness at O(1) bits — are verified
// empirically by this package's tests.
package beacon

import (
	"fmt"
	"math/bits"

	"rendezvous/internal/primes"
	"rendezvous/internal/schedule"
)

// Source is the shared beacon: a deterministic, seedable stream of
// uniform bits, one per slot. All agents in a simulation must share the
// same Source value for the protocol to be meaningful.
type Source struct {
	seed uint64
}

// NewSource returns a beacon stream for the given seed.
func NewSource(seed uint64) Source { return Source{seed: seed} }

// Bit returns beacon bit i (i ≥ 0).
func (s Source) Bit(i int) byte {
	return byte(splitmix64(s.seed^(0xbeac0+uint64(i))) & 1)
}

// window packs bits [from, from+count) into a uint64 (count ≤ 64),
// most significant bit first.
func (s Source) window(from, count int) uint64 {
	var v uint64
	for i := 0; i < count; i++ {
		v = v<<1 | uint64(s.Bit(from+i))
	}
	return v
}

// Config tunes the beacon protocols.
type Config struct {
	// Degree is the independence degree d of the polynomial hash family
	// (Indyk needs O(log 1/ε)-wise; the default 8 comfortably exceeds
	// ε = 1/2). Zero selects the default.
	Degree int
	// Period is the cycle length reported to the Schedule contract (the
	// protocols are effectively aperiodic; Channel wraps at Period).
	// Zero selects 1<<22.
	Period int
}

func (c Config) withDefaults() Config {
	if c.Degree == 0 {
		c.Degree = 8
	}
	if c.Period == 0 {
		c.Period = 1 << 22
	}
	return c
}

// family is the shared machinery: a degree-d polynomial hash over F_p
// with p the smallest prime > n.
type family struct {
	n         int
	set       []int
	src       Source
	degree    int
	prime     uint64
	fieldBits int
	period    int
}

func newFamily(n int, channels []int, src Source, cfg Config) (family, error) {
	sorted, err := schedule.ValidateChannels(n, channels)
	if err != nil {
		return family{}, err
	}
	cfg = cfg.withDefaults()
	if cfg.Degree < 2 {
		return family{}, fmt.Errorf("beacon: degree must be ≥ 2, got %d", cfg.Degree)
	}
	if cfg.Period < 1 {
		return family{}, fmt.Errorf("beacon: period must be positive, got %d", cfg.Period)
	}
	p := primes.NextAtLeast(n + 1)
	return family{
		n:         n,
		set:       sorted,
		src:       src,
		degree:    cfg.Degree,
		prime:     uint64(p),
		fieldBits: bits.Len(uint(p)),
		period:    cfg.Period,
	}, nil
}

// seedBits is the number of beacon bits needed for one fresh seed:
// the paper's d·log n.
func (f family) seedBits() int { return f.degree * f.fieldBits }

// coeffs derives the d polynomial coefficients from a 64-bit seed.
func (f family) coeffs(seed uint64, out []uint64) {
	for i := range out {
		out[i] = splitmix64(seed+uint64(i)*0x9e3779b97f4a7c15) % f.prime
	}
}

// argmin returns the channel of the set minimizing the polynomial hash,
// breaking ties toward the smaller channel.
func (f family) argmin(coeffs []uint64) int {
	best := f.set[0]
	bestVal := f.eval(coeffs, uint64(f.set[0]))
	for _, ch := range f.set[1:] {
		if v := f.eval(coeffs, uint64(ch)); v < bestVal {
			best, bestVal = ch, v
		}
	}
	return best
}

// eval computes the polynomial at x by Horner's rule. Operands stay
// below 2³² for any realistic universe, so the products fit in uint64.
func (f family) eval(coeffs []uint64, x uint64) uint64 {
	var acc uint64
	for _, c := range coeffs {
		acc = (acc*x + c) % f.prime
	}
	return acc
}

// channelsCopy implements the Channels method shared by both protocols.
func (f family) channelsCopy() []int {
	out := make([]int, len(f.set))
	copy(out, f.set)
	return out
}

// splitmix64 is the SplitMix64 mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
