package beacon_test

import (
	"testing"

	"rendezvous/internal/beacon"
	"rendezvous/internal/schedtest"
	"rendezvous/internal/schedule"
)

// TestConformance runs the shared Schedule conformance suite against
// both beacon protocols. The small configured Period makes the suite's
// boundary probes cross the period wrap (where a seed window straddles
// the cycle and falls back to warm-up).
func TestConformance(t *testing.T) {
	src := beacon.NewSource(42)
	cfg := beacon.Config{Period: 1 << 11}
	cases := map[string]func(t *testing.T) (schedule.Schedule, error){
		"Fresh": func(t *testing.T) (schedule.Schedule, error) {
			return beacon.NewFresh(64, []int{3, 17, 40}, src, cfg)
		},
		"FreshDefaultPeriod": func(t *testing.T) (schedule.Schedule, error) {
			return beacon.NewFresh(64, []int{3, 17, 40}, src, beacon.Config{})
		},
		"Walk": func(t *testing.T) (schedule.Schedule, error) {
			return beacon.NewWalk(64, []int{3, 17, 40}, src, cfg)
		},
		"WalkDefaultPeriod": func(t *testing.T) (schedule.Schedule, error) {
			return beacon.NewWalk(64, []int{3, 17, 40}, src, beacon.Config{})
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, err := build(t)
			if err != nil {
				t.Fatal(err)
			}
			schedtest.Conform(t, s)
		})
	}
}
