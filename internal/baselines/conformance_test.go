package baselines_test

import (
	"testing"

	"rendezvous/internal/baselines"
	"rendezvous/internal/schedtest"
	"rendezvous/internal/schedule"
)

// TestConformance runs the shared Schedule conformance suite against
// every baseline scheme, at a prime-adjacent universe size to stress
// the P > n remapping paths.
func TestConformance(t *testing.T) {
	const n = 13
	set := []int{2, 5, 11}
	cases := map[string]func(t *testing.T) (schedule.Schedule, error){
		"CRSEQ": func(t *testing.T) (schedule.Schedule, error) {
			return baselines.NewCRSEQ(n, set)
		},
		"CRSEQRandomized": func(t *testing.T) (schedule.Schedule, error) {
			return baselines.NewCRSEQRandomized(n, set, 99)
		},
		"CRSEQSymmetric": func(t *testing.T) (schedule.Schedule, error) {
			return baselines.NewCRSEQSymmetric(n, set)
		},
		"JumpStay": func(t *testing.T) (schedule.Schedule, error) {
			return baselines.NewJumpStay(n, set)
		},
		"Random": func(t *testing.T) (schedule.Schedule, error) {
			return baselines.NewRandom(n, set, 7, 997)
		},
		"Sweep": func(t *testing.T) (schedule.Schedule, error) {
			return baselines.NewSweep(n, set)
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, err := build(t)
			if err != nil {
				t.Fatal(err)
			}
			schedtest.Conform(t, s)
		})
	}
}
