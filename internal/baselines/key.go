package baselines

import (
	"strconv"

	"rendezvous/internal/schedule"
)

// Cache keys (schedule.CacheKeyer) for the baseline schedules. Each one
// is a pure function of its construction parameters, so the canonical
// parameter encoding below is a sound identity for the shared table
// cache: equal keys guarantee slot-for-slot equal hop sequences. Derived
// fields (primes, remap tables) are omitted — they follow from n + set.

// CacheKey implements schedule.CacheKeyer. The randomized variant folds
// in its flag and seed; the deterministic one is (n, set) alone.
func (c *CRSEQ) CacheKey() (string, bool) {
	k := "crseq|" + strconv.Itoa(c.n) + schedule.KeyInts(c.set)
	if c.randomize {
		k += "|r" + strconv.FormatUint(c.seed, 36)
	}
	return k, true
}

// CacheKey implements schedule.CacheKeyer.
func (j *JumpStay) CacheKey() (string, bool) {
	return "js|" + strconv.Itoa(j.n) + schedule.KeyInts(j.set), true
}

// CacheKey implements schedule.CacheKeyer: a Random schedule is pure in
// (seed, period, set) — distinct agents use distinct seeds, so keys
// collide exactly when the hop sequences do.
func (r *Random) CacheKey() (string, bool) {
	return "rand|" + strconv.FormatUint(r.seed, 36) + "|" + strconv.Itoa(r.period) + schedule.KeyInts(r.set), true
}

// CacheKey implements schedule.CacheKeyer.
func (s *Sweep) CacheKey() (string, bool) {
	return "sweep|" + strconv.Itoa(s.n) + schedule.KeyInts(s.set), true
}
