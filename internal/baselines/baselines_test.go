package baselines

import (
	"math/rand"
	"testing"

	"rendezvous/internal/primes"
	"rendezvous/internal/schedule"
)

func ttr(a, b schedule.Schedule, delta, horizon int) (int, bool) {
	for s := 0; s < horizon; s++ {
		if a.Channel(s+delta) == b.Channel(s) {
			return s, true
		}
	}
	return 0, false
}

func subsetsOf(n int) [][]int {
	var out [][]int
	for mask := 1; mask < 1<<uint(n); mask++ {
		var s []int
		for c := 1; c <= n; c++ {
			if mask>>(uint(c)-1)&1 == 1 {
				s = append(s, c)
			}
		}
		out = append(out, s)
	}
	return out
}

func intersects(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// TestCRSEQAsymmetricRendezvousExhaustive sweeps all overlapping subset
// pairs and all offsets for the universes where deterministic CRSEQ
// does hold exhaustively (n = 4 is the documented exception, pinned by
// TestCRSEQCounterexample below).
func TestCRSEQAsymmetricRendezvousExhaustive(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		subsets := subsetsOf(n)
		scheds := make([]*CRSEQ, len(subsets))
		for i, s := range subsets {
			c, err := NewCRSEQ(n, s)
			if err != nil {
				t.Fatal(err)
			}
			scheds[i] = c
		}
		for i, a := range subsets {
			for j, b := range subsets {
				if !intersects(a, b) {
					continue
				}
				for delta := 0; delta < scheds[i].Period(); delta++ {
					if _, ok := ttr(scheds[i], scheds[j], delta, scheds[i].Period()); !ok {
						t.Fatalf("n=%d sets %v/%v: CRSEQ missed at offset %d", n, a, b, delta)
					}
				}
			}
		}
	}
}

// TestCRSEQCounterexample pins the reproduction finding from DESIGN.md:
// deterministic index-remapped CRSEQ has NO asymmetric guarantee — the
// sets {2,4} and {1,3,4} at n=4, wake offset 35, never rendezvous.
func TestCRSEQCounterexample(t *testing.T) {
	a, err := NewCRSEQ(4, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCRSEQ(4, []int{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ttr(a, b, 35, 10*a.Period()); ok {
		t.Fatal("counterexample vanished: CRSEQ {2,4}/{1,3,4} offset 35 now meets — did the sequence change?")
	}
}

// TestCRSEQRandomizedFixesCounterexample shows the pseudo-random remap
// restores rendezvous on the exact counterexample pair.
func TestCRSEQRandomizedFixesCounterexample(t *testing.T) {
	a, err := NewCRSEQRandomized(4, []int{2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCRSEQRandomized(4, []int{1, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ttr(a, b, 35, 10*a.Period())
	if !ok {
		t.Fatal("randomized CRSEQ failed to meet on the counterexample pair")
	}
	if got > 2*a.Period() {
		t.Errorf("randomized CRSEQ unexpectedly slow: %d slots", got)
	}
}

// TestCRSEQSymmetricFullSet checks the Table-1 symmetric role: identical
// full channel sets always meet within one period.
func TestCRSEQSymmetricFullSet(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		full := make([]int, n)
		for i := range full {
			full[i] = i + 1
		}
		c, err := NewCRSEQ(n, full)
		if err != nil {
			t.Fatal(err)
		}
		for delta := 0; delta < c.Period(); delta++ {
			if _, ok := ttr(c, c, delta, c.Period()); !ok {
				t.Fatalf("n=%d: symmetric CRSEQ missed at offset %d", n, delta)
			}
		}
	}
}

// TestJumpStayAsymmetricRendezvousExhaustive: with P the smallest prime
// strictly greater than n, jump-stay meets for every overlapping subset
// pair and every offset (exhaustive for n ≤ 4).
func TestJumpStayAsymmetricRendezvousExhaustive(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		subsets := subsetsOf(n)
		scheds := make([]*JumpStay, len(subsets))
		for i, s := range subsets {
			j, err := NewJumpStay(n, s)
			if err != nil {
				t.Fatal(err)
			}
			scheds[i] = j
		}
		for i, a := range subsets {
			for j, b := range subsets {
				if !intersects(a, b) {
					continue
				}
				for delta := 0; delta < scheds[i].Period(); delta++ {
					if _, ok := ttr(scheds[i], scheds[j], delta, scheds[i].Period()); !ok {
						t.Fatalf("n=%d sets %v/%v: jump-stay missed at offset %d", n, a, b, delta)
					}
				}
			}
		}
	}
}

// TestJumpStaySymmetricLinear verifies the Table-1 symmetric column for
// JS: identical full sets meet in O(P) slots (we allow 6P).
func TestJumpStaySymmetricLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{5, 8, 13, 16} {
		full := make([]int, n)
		for i := range full {
			full[i] = i + 1
		}
		js, err := NewJumpStay(n, full)
		if err != nil {
			t.Fatal(err)
		}
		lim := 6 * primes.NextAtLeast(n+1)
		for trial := 0; trial < 50; trial++ {
			delta := rng.Intn(js.Period())
			got, ok := ttr(js, js, delta, js.Period())
			if !ok {
				t.Fatalf("n=%d: symmetric JS missed at offset %d", n, delta)
			}
			if got > lim {
				t.Fatalf("n=%d offset %d: symmetric JS TTR %d > %d", n, delta, got, lim)
			}
		}
	}
}

func TestRandomEventuallyMeets(t *testing.T) {
	const n = 32
	a, err := NewRandom(n, []int{1, 5, 9, 12}, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandom(n, []int{9, 20, 31}, 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Expected TTR ≈ k·ℓ = 12; give it 100× slack.
	if _, ok := ttr(a, b, 17, 1200); !ok {
		t.Error("random schedules failed to meet within 100× expectation")
	}
}

func TestRandomIsPure(t *testing.T) {
	r, err := NewRandom(8, []int{2, 4, 6}, 99, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 500; s++ {
		if r.Channel(s) != r.Channel(s) {
			t.Fatal("Channel not deterministic")
		}
	}
}

func TestSweepSynchronousBound(t *testing.T) {
	// Rs(n,k) ≤ n: with zero offset any two overlapping sets meet within
	// n slots.
	const n = 12
	subsets := [][]int{{1, 3}, {3, 7, 9}, {2, 3}, {1, 2, 3, 4, 5}, {12}, {3, 12}}
	for _, a := range subsets {
		sa, err := NewSweep(n, a)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range subsets {
			if !intersects(a, b) {
				continue
			}
			sb, err := NewSweep(n, b)
			if err != nil {
				t.Fatal(err)
			}
			got, ok := ttr(sa, sb, 0, n)
			if !ok {
				t.Fatalf("sweep: %v/%v no synchronous rendezvous within n", a, b)
			}
			if got >= n {
				t.Fatalf("sweep TTR %d ≥ n", got)
			}
		}
	}
}

func TestCRSEQSymmetricWrapperConstantTime(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		set := []int{1, n / 2, n}
		w, err := NewCRSEQSymmetric(n, set)
		if err != nil {
			t.Fatal(err)
		}
		for delta := 0; delta < 100; delta++ {
			got, ok := ttr(w, w, delta, 7)
			if !ok || got > 6 {
				t.Fatalf("n=%d offset %d: wrapped CRSEQ symmetric TTR not O(1)", n, delta)
			}
		}
	}
}

func TestSchedulesStayInSet(t *testing.T) {
	n := 16
	set := []int{2, 7, 11}
	inSet := map[int]bool{2: true, 7: true, 11: true}
	builders := map[string]func() (schedule.Schedule, error){
		"crseq": func() (schedule.Schedule, error) { return NewCRSEQ(n, set) },
		"crseq-rand": func() (schedule.Schedule, error) {
			return NewCRSEQRandomized(n, set, 11)
		},
		"jumpstay": func() (schedule.Schedule, error) { return NewJumpStay(n, set) },
		"random":   func() (schedule.Schedule, error) { return NewRandom(n, set, 5, 4096) },
		"sweep":    func() (schedule.Schedule, error) { return NewSweep(n, set) },
	}
	for name, build := range builders {
		s, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		limit := s.Period()
		if limit > 5000 {
			limit = 5000
		}
		for slot := 0; slot < limit; slot++ {
			if !inSet[s.Channel(slot)] {
				t.Fatalf("%s: Channel(%d) = %d outside set", name, slot, s.Channel(slot))
			}
		}
		if got := s.Channels(); len(got) != 3 || got[0] != 2 || got[2] != 11 {
			t.Fatalf("%s: Channels() = %v", name, got)
		}
	}
}

func TestPeriodsMatchTableOneShapes(t *testing.T) {
	// The baseline periods are the O(n²) / O(n³) guarantees of Table 1.
	for _, n := range []int{10, 100, 1000} {
		c, err := NewCRSEQ(n, []int{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		p := primes.NextAtLeast(n + 1)
		if c.Period() != p*(3*p-1) {
			t.Errorf("n=%d: CRSEQ period %d, want P(3P−1)", n, c.Period())
		}
		js, err := NewJumpStay(n, []int{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if js.Period() != 3*p*p*(p-1) {
			t.Errorf("n=%d: JS period %d, want 3P²(P−1)", n, js.Period())
		}
	}
}

func TestConstructorsRejectBadInput(t *testing.T) {
	for name, f := range map[string]func() error{
		"crseq-empty":    func() error { _, err := NewCRSEQ(4, nil); return err },
		"jumpstay-range": func() error { _, err := NewJumpStay(4, []int{5}); return err },
		"random-period":  func() error { _, err := NewRandom(4, []int{1}, 0, 0); return err },
		"sweep-dup":      func() error { _, err := NewSweep(4, []int{1, 1}); return err },
	} {
		if f() == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
