package knuth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rendezvous/internal/bitstring"
)

func TestEncodeIsBalanced(t *testing.T) {
	f := func(v uint64, width uint8) bool {
		n := int(width % 16)
		v &= (1 << uint(n)) - 1
		x := bitstring.MustFromUint(v, n)
		return Encode(x).IsBalanced()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodedLenMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 40; n++ {
		for trial := 0; trial < 20; trial++ {
			x := randomString(rng, n)
			if got, want := Encode(x).Len(), EncodedLen(n); got != want {
				t.Fatalf("len(Encode(x)) = %d, want EncodedLen(%d) = %d for x=%v", got, n, want, x)
			}
		}
	}
}

func TestRoundTripExhaustiveSmall(t *testing.T) {
	for n := 0; n <= 12; n++ {
		limit := 1 << uint(n)
		for v := 0; v < limit; v++ {
			x := bitstring.MustFromUint(uint64(v), n)
			y := Encode(x)
			back, err := Decode(y, n)
			if err != nil {
				t.Fatalf("Decode(Encode(%v)): %v", x, err)
			}
			if !back.Equal(x) {
				t.Fatalf("round trip failed: %v -> %v -> %v", x, y, back)
			}
		}
	}
}

func TestInjectiveExhaustiveSmall(t *testing.T) {
	for n := 1; n <= 10; n++ {
		seen := make(map[string]uint64)
		limit := uint64(1) << uint(n)
		for v := uint64(0); v < limit; v++ {
			y := Encode(bitstring.MustFromUint(v, n)).String()
			if prev, dup := seen[y]; dup {
				t.Fatalf("n=%d: Encode(%d) = Encode(%d) = %s", n, v, prev, y)
			}
			seen[y] = v
		}
	}
}

func TestRoundTripOddLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 5, 7, 13, 21, 33} {
		for trial := 0; trial < 50; trial++ {
			x := randomString(rng, n)
			back, err := Decode(Encode(x), n)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if !back.Equal(x) {
				t.Fatalf("n=%d: round trip failed for %v", n, x)
			}
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	x := bitstring.MustParse("1011")
	y := Encode(x)

	if _, err := Decode(y, 5); err == nil {
		t.Error("wrong claimed length: expected error")
	}

	// Corrupt the self-complementary suffix.
	bad := y.Clone()
	bad.SetBit(y.Len()-1, 1-y.Bit(y.Len()-1))
	if _, err := Decode(bad, 4); err == nil {
		t.Error("corrupt suffix: expected error")
	}

	if _, err := Decode(bitstring.Zeros(3), 0); err == nil {
		t.Error("length-0 input with wrong encoding size: expected error")
	}
}

func TestDecodeRejectsBadPad(t *testing.T) {
	// For odd n the pad bit must be 0 after un-complementing; build an
	// encoding claiming pivot 0 with a 1 in the pad position.
	n := 3
	m := 4
	w := suffixIndexWidth(m)
	body := bitstring.MustParse("0111") // pad bit (index 3) = 1
	idx := bitstring.MustFromUint(0, w)
	y := bitstring.Concat(body, idx, idx.Complement())
	if _, err := Decode(y, n); err == nil {
		t.Error("expected pad-bit error")
	}
}

func randomString(rng *rand.Rand, n int) bitstring.String {
	s := bitstring.New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			s.SetBit(i, 1)
		}
	}
	return s
}
