// Package knuth implements a Knuth-style balanced encoding: an injective
// map K from binary strings to balanced binary strings (equal numbers of
// 0s and 1s) whose output length depends only on the input length.
//
// The scheme is Knuth's serial algorithm ("Efficient balanced codes",
// IEEE Trans. IT 1986): complementing the first i bits of a string x
// changes the weight by ±1 as i steps from 0 to |x|, and the weights at
// the two endpoints, wt(x) and |x|−wt(x), straddle |x|/2, so some prefix
// length i yields an exactly balanced string. The index i is appended in
// a self-balanced suffix i₂ ∘ ¬i₂ (the paper's leaner suffix shaves a
// log♯ factor off the suffix; the difference is a constant factor of the
// O(log log n) schedule length and is recorded in DESIGN.md §3.1).
//
// Inputs of odd length are first padded with a single 0 so the target
// weight |x|/2 is integral; the pad is removed by Decode.
package knuth

import (
	"fmt"
	"math/bits"

	"rendezvous/internal/bitstring"
)

// suffixIndexWidth returns the number of bits used to encode the pivot
// index for a padded input of (even) length m; the pivot ranges over
// [0, m], so bitlen(m) bits suffice, with a floor of 1 so the suffix is
// never empty.
func suffixIndexWidth(m int) int {
	w := bits.Len(uint(m))
	if w == 0 {
		w = 1
	}
	return w
}

// EncodedLen returns |Encode(x)| for any input of length n: the padded
// length plus twice the pivot-index width. Output length is a function
// of input length alone, which the rendezvous constructions rely on.
func EncodedLen(n int) int {
	m := n + n%2
	return m + 2*suffixIndexWidth(m)
}

// Encode returns the balanced encoding of x.
func Encode(x bitstring.String) bitstring.String {
	padded := x
	if x.Len()%2 != 0 {
		padded = bitstring.Concat(x, bitstring.Zeros(1))
	}
	m := padded.Len()
	target := m / 2

	// Walk i upward until the prefix-complemented string is balanced.
	weight := padded.Weight()
	pivot := -1
	if weight == target {
		pivot = 0
	}
	w := weight
	for i := 1; i <= m && pivot < 0; i++ {
		if padded.Bit(i-1) == 1 {
			w-- // complementing a 1 lowers the weight
		} else {
			w++
		}
		if w == target {
			pivot = i
		}
	}
	if pivot < 0 {
		// Unreachable: w sweeps from wt to m−wt in ±1 steps and target
		// lies between them.
		panic(fmt.Sprintf("knuth: no balancing pivot for %v", x))
	}

	body := complementPrefix(padded, pivot)
	idx := bitstring.MustFromUint(uint64(pivot), suffixIndexWidth(m))
	return bitstring.Concat(body, idx, idx.Complement())
}

// Decode inverts Encode given the original (pre-padding) input length n.
// It reports an error if y is malformed.
func Decode(y bitstring.String, n int) (bitstring.String, error) {
	m := n + n%2
	w := suffixIndexWidth(m)
	if y.Len() != m+2*w {
		return bitstring.String{}, fmt.Errorf("knuth: encoded length %d, want %d for input length %d", y.Len(), m+2*w, n)
	}
	idx := y.Slice(m, m+w)
	if !idx.Complement().Equal(y.Slice(m+w, m+2*w)) {
		return bitstring.String{}, fmt.Errorf("knuth: corrupt pivot suffix in %v", y)
	}
	pivotU, err := idx.Uint()
	if err != nil {
		return bitstring.String{}, fmt.Errorf("knuth: pivot decode: %w", err)
	}
	pivot := int(pivotU)
	if pivot > m {
		return bitstring.String{}, fmt.Errorf("knuth: pivot %d exceeds body length %d", pivot, m)
	}
	padded := complementPrefix(y.Slice(0, m), pivot)
	if n%2 != 0 && padded.Bit(m-1) != 0 {
		return bitstring.String{}, fmt.Errorf("knuth: nonzero pad bit in %v", y)
	}
	return padded.Slice(0, n), nil
}

func complementPrefix(s bitstring.String, i int) bitstring.String {
	out := s.Clone()
	for j := 0; j < i; j++ {
		out.SetBit(j, 1-s.Bit(j))
	}
	return out
}
