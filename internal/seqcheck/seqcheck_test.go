package seqcheck

import (
	"testing"

	"rendezvous/internal/baselines"
	"rendezvous/internal/schedule"
	"rendezvous/internal/simulator"
)

func mustCyclic(t *testing.T, seq []int) schedule.Schedule {
	t.Helper()
	c, err := schedule.NewCyclic(seq)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCheckDiagonalBasic(t *testing.T) {
	a := mustCyclic(t, []int{1, 2})
	rep := CheckDiagonal(a, a, 0)
	if len(rep.Covered) != 2 || len(rep.Missing) != 0 || !rep.AnyCover {
		t.Fatalf("shift 0: %+v", rep)
	}
	// Shift 1 of the alternating sequence never matches itself.
	rep = CheckDiagonal(a, a, 1)
	if rep.AnyCover || len(rep.Missing) != 2 {
		t.Fatalf("shift 1: %+v", rep)
	}
}

func TestRotationClosureAlternatingFails(t *testing.T) {
	a := mustCyclic(t, []int{1, 2})
	ok, shift := RotationClosure(a, a, 0)
	if ok || shift != 1 {
		t.Fatalf("alternating sequence should fail closure at shift 1, got ok=%v shift=%d", ok, shift)
	}
}

func TestRotationClosureFlagshipHolds(t *testing.T) {
	// The Theorem-3 schedule must co-generate at every shift against any
	// overlapping peer (that is its rendezvous guarantee).
	n := 16
	a, err := schedule.NewGeneral(n, []int{2, 7, 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := schedule.NewGeneral(n, []int{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	ok, shift := RotationClosure(a, b, 500)
	if !ok {
		t.Fatalf("flagship closure failed at shift %d", shift)
	}
}

// TestCRSEQCounterexampleViaSeqcheck re-derives the DESIGN.md CRSEQ
// finding with the generic analyzer: rotation closure fails for the
// pinned pair.
func TestCRSEQCounterexampleViaSeqcheck(t *testing.T) {
	a, err := baselines.NewCRSEQ(4, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := baselines.NewCRSEQ(4, []int{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	ok, shift := RotationClosure(a, b, 0)
	if ok {
		t.Fatal("expected a closure failure for the CRSEQ counterexample pair")
	}
	if shift != 35 {
		t.Logf("note: first failing shift now %d (35 in DESIGN.md)", shift)
	}
}

func TestFullDiagonalCoverage(t *testing.T) {
	// A constant schedule trivially covers its single channel at every
	// shift.
	c := schedule.NewConstant(3)
	ok, _, _ := FullDiagonalCoverage(c, c, 10)
	if !ok {
		t.Fatal("constant schedule should have full coverage")
	}
	// The CRSEQ full-set sequence misses a channel at some shift for
	// n = 4 and n = 7 (the structural observation behind the remap
	// counterexample), while n = 5 and 6 happen to be fully covered —
	// coverage depends on how the prime P > n wraps, which is exactly
	// why a per-instance certifier is useful.
	for n, wantOK := range map[int]bool{4: false, 5: true, 6: true, 7: false} {
		cr, err := baselines.NewCRSEQ(n, simulator.FullSet(n))
		if err != nil {
			t.Fatal(err)
		}
		ok, shift, ch := FullDiagonalCoverage(cr, cr, 0)
		if ok != wantOK {
			t.Fatalf("n=%d: coverage = %v (witness shift=%d ch=%d), want %v", n, ok, shift, ch, wantOK)
		}
	}
}

func TestOccupancyAndBalance(t *testing.T) {
	c := mustCyclic(t, []int{1, 1, 2, 1})
	occ := Occupancy(c)
	if occ[1] != 3 || occ[2] != 1 {
		t.Fatalf("occupancy = %v", occ)
	}
	ratio, err := BalanceRatio(c)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 3 {
		t.Fatalf("ratio = %v, want 3", ratio)
	}
}

func TestBalanceRatioFlagshipFair(t *testing.T) {
	g, err := schedule.NewGeneral(32, []int{4, 9, 17, 25, 31})
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := BalanceRatio(g)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch indices are drawn via two primes in [k,3k]; the fallback to
	// a_0 skews usage by at most a small constant factor.
	if ratio > 6 {
		t.Fatalf("flagship occupancy unexpectedly unfair: ratio %.2f", ratio)
	}
}

func TestBalanceRatioErrors(t *testing.T) {
	// A Dynamic schedule's final phase may exclude channels present in
	// Channels() of an inner phase; simulate via a cyclic schedule that
	// simply never uses a declared channel by constructing a custom stub.
	if _, err := BalanceRatio(stub{}); err == nil {
		t.Fatal("expected error for never-hopped channel")
	}
}

type stub struct{}

func (stub) Channel(int) int { return 1 }
func (stub) Period() int     { return 4 }
func (stub) Channels() []int { return []int{1, 2} }
