// Package seqcheck analyzes channel-hopping schedules as combinatorial
// sequences: rotation closure, diagonal channel coverage, and channel
// occupancy balance. These are the properties that oblivious-sequence
// guarantees (CRSEQ, Jump-Stay, DRDS) rest on, and the tools here are
// what surfaced the CRSEQ remapping counterexample recorded in
// DESIGN.md. They are exposed as a library so downstream users can
// certify their own sequences before deployment.
package seqcheck

import (
	"fmt"

	"rendezvous/internal/schedule"
)

// DiagonalReport describes, for one cyclic shift δ of a schedule against
// itself (or another schedule), which channels are ever co-generated:
// slots t with a(t+δ) = b(t) = c.
type DiagonalReport struct {
	Shift    int
	Covered  []int // channels co-generated at this shift, ascending
	Missing  []int // channels in the intersection never co-generated
	AnyCover bool  // at least one co-generation slot exists
}

// CheckDiagonal scans one full period and reports co-generation at the
// given shift. Channels considered are the intersection of the two
// schedules' channel sets.
func CheckDiagonal(a, b schedule.Schedule, shift int) DiagonalReport {
	period := lcm(a.Period(), b.Period())
	want := intersect(a.Channels(), b.Channels())
	covered := make(map[int]bool)
	for t := 0; t < period; t++ {
		if ca := a.Channel(t + shift); ca == b.Channel(t) {
			covered[ca] = true
		}
	}
	rep := DiagonalReport{Shift: shift}
	for _, c := range want {
		if covered[c] {
			rep.Covered = append(rep.Covered, c)
		} else {
			rep.Missing = append(rep.Missing, c)
		}
	}
	rep.AnyCover = len(covered) > 0
	return rep
}

// RotationClosure reports whether, for EVERY cyclic shift in [0, limit),
// the two schedules co-generate at least one common channel — the
// property that makes an oblivious sequence a guaranteed-rendezvous
// sequence. It returns the first failing shift when the property does
// not hold. limit ≤ 0 means one full joint period (use with care: the
// scan is O(limit · period)).
func RotationClosure(a, b schedule.Schedule, limit int) (ok bool, failShift int) {
	period := lcm(a.Period(), b.Period())
	if limit <= 0 {
		limit = period
	}
	for shift := 0; shift < limit; shift++ {
		found := false
		for t := 0; t < period && !found; t++ {
			found = a.Channel(t+shift) == b.Channel(t)
		}
		if !found {
			return false, shift
		}
	}
	return true, 0
}

// FullDiagonalCoverage reports whether every channel of the two
// schedules' intersection is co-generated at every shift in [0, limit) —
// the strongest sequence property (sufficient for rendezvous no matter
// which single channel the adversary leaves in the intersection). It
// returns a witness (shift, channel) on failure.
func FullDiagonalCoverage(a, b schedule.Schedule, limit int) (ok bool, failShift, failChannel int) {
	period := lcm(a.Period(), b.Period())
	if limit <= 0 {
		limit = period
	}
	for shift := 0; shift < limit; shift++ {
		rep := CheckDiagonal(a, b, shift)
		if len(rep.Missing) > 0 {
			return false, shift, rep.Missing[0]
		}
	}
	return true, 0, 0
}

// Occupancy returns the per-channel slot counts over one full period of
// the schedule — the quantity Δ(h,σ;T)·T from Theorem 7's density
// argument.
func Occupancy(s schedule.Schedule) map[int]int {
	counts := make(map[int]int)
	period := s.Period()
	for t := 0; t < period; t++ {
		counts[s.Channel(t)]++
	}
	return counts
}

// BalanceRatio returns max/min occupancy across the schedule's channels
// over one period. A ratio of 1 means perfectly fair channel usage;
// Theorem 7's bound is tightest against balanced schedules. It reports
// an error if some declared channel is never hopped.
func BalanceRatio(s schedule.Schedule) (float64, error) {
	counts := Occupancy(s)
	minC, maxC := -1, 0
	for _, ch := range s.Channels() {
		c := counts[ch]
		if c == 0 {
			return 0, fmt.Errorf("seqcheck: channel %d never hopped in one period", ch)
		}
		if minC < 0 || c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if minC <= 0 {
		return 0, fmt.Errorf("seqcheck: schedule has no channels")
	}
	return float64(maxC) / float64(minC), nil
}

func intersect(a, b []int) []int {
	in := make(map[int]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	var out []int
	for _, y := range b {
		if in[y] {
			out = append(out, y)
		}
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// lcm saturates at 1<<30 to keep scans bounded for schedules with huge
// or mismatched periods.
func lcm(a, b int) int {
	g := gcd(a, b)
	if g == 0 {
		return 1
	}
	l := a / g * b
	if l <= 0 || l > 1<<30 {
		return 1 << 30
	}
	return l
}
