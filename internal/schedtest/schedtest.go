// Package schedtest is the shared conformance suite for the Schedule
// contract. Every schedule implementation in this repository — package
// schedule's constructions, the baselines, the beacon protocols, the
// pair schedules, and the simulator's wrappers — runs Conform from its
// own tests, so the contract (purity, period validity, the negative-
// slot panic, and ChannelBlock ≡ Channel) is enforced uniformly instead
// of re-asserted ad hoc per package.
package schedtest

import (
	"sort"

	"rendezvous/internal/schedule"
)

// T is the subset of *testing.T the suite needs. An interface so the
// suite can test itself: schedtest's own tests run Conform against
// deliberately broken schedules with a failure recorder in place of a
// real *testing.T, proving every clause actually bites.
//
// Fatalf must stop execution (like *testing.T's), either by FailNow
// semantics or by panicking; Conform assumes it does not return.
type T interface {
	Helper()
	Fatalf(format string, args ...any)
}

// maxProbe bounds how far past interesting boundaries the suite probes,
// keeping the cost independent of the schedule's period.
const maxProbe = 1 << 11

// sampleSlots returns the probe slots for a schedule of period p: a
// dense prefix, both sides of the period boundary, and the start of the
// second period (which a correct Period must replay exactly).
func sampleSlots(p int) []int {
	var out []int
	for t := 0; t < min(p+65, maxProbe); t++ {
		out = append(out, t)
	}
	for _, t := range []int{p - 2, p - 1, p, p + 1, p + 63, 2*p - 1, 2 * p, 2*p + 1} {
		if t >= 0 {
			out = append(out, t)
		}
	}
	return out
}

// Conform runs the full conformance suite against s. It asserts:
//
//   - Period() is positive;
//   - Channels() is non-empty, sorted, duplicate-free (and a subset of
//     AllChannels when the schedule exposes one);
//   - purity: repeated Channel calls at the same slot agree;
//   - every hopped channel belongs to the complete hop set;
//   - Period validity: Channel(t+P) = Channel(t), unless the schedule
//     declares its period eventually valid (EventualPeriod);
//   - ChannelBlock ≡ Channel slot-for-slot over windows straddling
//     every boundary the implementation cares about;
//   - Channel(-1) and FillBlock at a negative start panic;
//   - Compile(s) evaluates identically to s.
func Conform(t T, s schedule.Schedule) {
	t.Helper()
	p := s.Period()
	if p <= 0 {
		t.Fatalf("Period() = %d, want positive", p)
	}
	checkChannelSets(t, s)
	hopSet := completeHopSet(s)

	slots := sampleSlots(p)
	want := make(map[int]int, len(slots))
	for _, tt := range slots {
		c := s.Channel(tt)
		if c2 := s.Channel(tt); c2 != c {
			t.Fatalf("impure: Channel(%d) = %d then %d", tt, c, c2)
		}
		if !hopSet[c] {
			t.Fatalf("Channel(%d) = %d, not in hop set %v", tt, c, sortedKeys(hopSet))
		}
		want[tt] = c
	}
	if !schedule.IsEventuallyPeriodic(s) {
		for _, tt := range slots {
			if got := s.Channel(tt + p); got != want[tt] {
				t.Fatalf("period violation: Channel(%d+%d) = %d, Channel(%d) = %d", tt, p, got, tt, want[tt])
			}
		}
	}

	checkBlocks(t, s, p)
	checkNegativeSlots(t, s)
	checkCompile(t, s, p)
}

// checkChannelSets validates Channels/AllChannels shape invariants.
func checkChannelSets(t T, s schedule.Schedule) {
	t.Helper()
	chans := s.Channels()
	if len(chans) == 0 {
		t.Fatalf("Channels() is empty")
	}
	if !sort.IntsAreSorted(chans) {
		t.Fatalf("Channels() not sorted: %v", chans)
	}
	for i := 1; i < len(chans); i++ {
		if chans[i] == chans[i-1] {
			t.Fatalf("Channels() has duplicate %d: %v", chans[i], chans)
		}
	}
	if v, ok := s.(interface{ AllChannels() []int }); ok {
		all := v.AllChannels()
		if !sort.IntsAreSorted(all) {
			t.Fatalf("AllChannels() not sorted: %v", all)
		}
		in := make(map[int]bool, len(all))
		for _, c := range all {
			in[c] = true
		}
		for _, c := range chans {
			if !in[c] {
				t.Fatalf("Channels() element %d missing from AllChannels() %v", c, all)
			}
		}
	}
}

// completeHopSet returns the set of channels s may ever hop.
func completeHopSet(s schedule.Schedule) map[int]bool {
	chans := schedule.AllChannels(s)
	set := make(map[int]bool, len(chans))
	for _, c := range chans {
		set[c] = true
	}
	return set
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// checkBlocks asserts ChannelBlock ≡ Channel over windows chosen to
// straddle period and implementation boundaries (words, epochs, seed
// windows, segments), plus degenerate lengths.
func checkBlocks(t T, s schedule.Schedule, p int) {
	t.Helper()
	starts := []int{0, 1, 7, 11, p - 1, p, p + 3, 2*p - 1}
	lengths := []int{1, 2, 3, 13, 63, 64, 65, 256, 300}
	buf := make([]int, 300)
	for _, start := range starts {
		if start < 0 {
			continue
		}
		for _, l := range lengths {
			dst := buf[:l]
			for i := range dst {
				dst[i] = -1
			}
			schedule.FillBlock(s, dst, start)
			for i := range dst {
				if want := s.Channel(start + i); dst[i] != want {
					t.Fatalf("ChannelBlock(len=%d, start=%d)[%d] = %d, want Channel(%d) = %d",
						l, start, i, dst[i], start+i, want)
				}
			}
		}
	}
	// Zero-length blocks are a no-op at any start, including one that
	// would otherwise panic.
	schedule.FillBlock(s, nil, 0)
	schedule.FillBlock(s, buf[:0], -1)
}

// checkNegativeSlots asserts the uniform negative-slot contract. The
// block probe goes to the implementation's own ChannelBlock when it has
// one — FillBlock's entry guard would otherwise mask an implementation
// that tolerates negative starts (a gap this suite's self-test caught).
func checkNegativeSlots(t T, s schedule.Schedule) {
	t.Helper()
	if !panics(func() { s.Channel(-1) }) {
		t.Fatalf("Channel(-1) did not panic")
	}
	if b, ok := s.(schedule.BlockEvaluator); ok {
		if !panics(func() { b.ChannelBlock(make([]int, 4), -3) }) {
			t.Fatalf("ChannelBlock(start=-3) did not panic")
		}
	}
	if !panics(func() { schedule.FillBlock(s, make([]int, 4), -3) }) {
		t.Fatalf("FillBlock(start=-3) did not panic")
	}
}

func panics(f func()) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	f()
	return false
}

// checkCompile asserts that Compile yields an evaluation-equivalent
// schedule (whether or not it produced a table).
func checkCompile(t T, s schedule.Schedule, p int) {
	t.Helper()
	c := schedule.CompileCap(s, maxProbe) // small cap keeps the suite cheap
	if c == nil {
		t.Fatalf("Compile returned nil")
	}
	if _, isTable := c.(*schedule.Compiled); isTable {
		if schedule.IsEventuallyPeriodic(s) {
			t.Fatalf("Compile materialized a table for an eventually-periodic schedule")
		}
		if c.Period() != p {
			t.Fatalf("compiled Period() = %d, want %d", c.Period(), p)
		}
	}
	for _, tt := range sampleSlots(p) {
		if got, want := c.Channel(tt), s.Channel(tt); got != want {
			t.Fatalf("compiled Channel(%d) = %d, want %d", tt, got, want)
		}
	}
}
