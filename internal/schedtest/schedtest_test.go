package schedtest

import (
	"fmt"
	"strings"
	"testing"

	"rendezvous/internal/schedule"
)

// The suite's own test: Conform must FAIL each deliberately broken
// schedule below, with a message naming the violated clause. A
// conformance suite that cannot reject a broken implementation is
// decorative; this file proves each clause bites.

// recorder implements T, capturing the first Fatalf instead of
// aborting the test binary. Fatalf panics with abortConform to mimic
// FailNow's control flow (Conform assumes Fatalf does not return).
type recorder struct {
	failed bool
	msg    string
}

type abortConform struct{}

func (r *recorder) Helper() {}
func (r *recorder) Fatalf(format string, args ...any) {
	r.failed = true
	r.msg = fmt.Sprintf(format, args...)
	panic(abortConform{})
}

// conformFailure runs Conform against s and returns the recorded
// failure message ("" if the suite passed the schedule).
func conformFailure(s schedule.Schedule) string {
	rec := &recorder{}
	func() {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(abortConform); !ok {
					panic(p)
				}
			}
		}()
		Conform(rec, s)
	}()
	return rec.msg
}

// base returns a healthy two-channel cycle for the saboteurs to wrap.
func base(t *testing.T) *schedule.Cyclic {
	t.Helper()
	c, err := schedule.NewCyclic([]int{3, 7, 3, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// broken wraps a healthy schedule and lets each test override exactly
// one behavior. The zero overrides delegate everything.
type broken struct {
	schedule.Schedule
	channel  func(inner schedule.Schedule, t int) int
	channels func(inner schedule.Schedule) []int
	period   func(inner schedule.Schedule) int
	block    func(inner schedule.Schedule, dst []int, start int)
}

func (b *broken) Channel(t int) int {
	if b.channel != nil {
		return b.channel(b.Schedule, t)
	}
	return b.Schedule.Channel(t)
}

func (b *broken) Channels() []int {
	if b.channels != nil {
		return b.channels(b.Schedule)
	}
	return b.Schedule.Channels()
}

func (b *broken) Period() int {
	if b.period != nil {
		return b.period(b.Schedule)
	}
	return b.Schedule.Period()
}

func (b *broken) ChannelBlock(dst []int, start int) {
	if b.block != nil {
		b.block(b.Schedule, dst, start)
		return
	}
	schedule.FillBlock(b.Schedule, dst, start)
}

// withAll adds a lying AllChannels on top of broken.
type withAll struct {
	*broken
	all []int
}

func (w withAll) AllChannels() []int { return append([]int(nil), w.all...) }

func TestConformAcceptsHealthySchedule(t *testing.T) {
	if msg := conformFailure(base(t)); msg != "" {
		t.Fatalf("healthy schedule rejected: %s", msg)
	}
	if msg := conformFailure(&broken{Schedule: base(t)}); msg != "" {
		t.Fatalf("transparent wrapper rejected: %s", msg)
	}
}

// TestConformRejectsEachBrokenClause: one saboteur per conformance
// clause; every one must be rejected with a message naming its clause.
func TestConformRejectsEachBrokenClause(t *testing.T) {
	cases := []struct {
		name    string
		build   func() schedule.Schedule
		wantMsg string // substring the failure must contain
	}{
		{
			name: "non-positive period",
			build: func() schedule.Schedule {
				return &broken{Schedule: base(t), period: func(schedule.Schedule) int { return 0 }}
			},
			wantMsg: "want positive",
		},
		{
			name: "empty channel set",
			build: func() schedule.Schedule {
				return &broken{Schedule: base(t), channels: func(schedule.Schedule) []int { return nil }}
			},
			wantMsg: "empty",
		},
		{
			name: "unsorted channel set",
			build: func() schedule.Schedule {
				return &broken{Schedule: base(t), channels: func(schedule.Schedule) []int { return []int{7, 3} }}
			},
			wantMsg: "not sorted",
		},
		{
			name: "duplicate channels",
			build: func() schedule.Schedule {
				return &broken{Schedule: base(t), channels: func(schedule.Schedule) []int { return []int{3, 3, 7} }}
			},
			wantMsg: "duplicate",
		},
		{
			name: "impure channel",
			build: func() schedule.Schedule {
				calls := 0
				return &broken{Schedule: base(t), channel: func(inner schedule.Schedule, tt int) int {
					if tt < 0 {
						return inner.Channel(tt)
					}
					calls++
					if calls%2 == 0 && tt == 3 {
						return 7
					}
					return inner.Channel(tt)
				}}
			},
			wantMsg: "impure",
		},
		{
			name: "hop outside declared set",
			build: func() schedule.Schedule {
				return &broken{Schedule: base(t), channel: func(inner schedule.Schedule, tt int) int {
					if tt == 2 {
						return 99
					}
					return inner.Channel(tt)
				}}
			},
			wantMsg: "not in hop set",
		},
		{
			name: "period violation",
			build: func() schedule.Schedule {
				return &broken{Schedule: base(t), channel: func(inner schedule.Schedule, tt int) int {
					if tt >= 5 { // inner period is 5: second cycle diverges
						return 3
					}
					return inner.Channel(tt)
				}}
			},
			wantMsg: "period violation",
		},
		{
			name: "block path diverges from per-slot",
			build: func() schedule.Schedule {
				return &broken{Schedule: base(t), block: func(inner schedule.Schedule, dst []int, start int) {
					schedule.FillBlock(inner, dst, start)
					for i := range dst {
						if (start+i)%11 == 10 {
							dst[i] = 3
						}
					}
				}}
			},
			wantMsg: "want Channel",
		},
		{
			name: "negative slot not rejected",
			build: func() schedule.Schedule {
				return &broken{Schedule: base(t), channel: func(inner schedule.Schedule, tt int) int {
					if tt < 0 {
						return 3 // silently tolerates the contract violation
					}
					return inner.Channel(tt)
				}}
			},
			wantMsg: "Channel(-1) did not panic",
		},
		{
			name: "negative block start not rejected",
			build: func() schedule.Schedule {
				return &broken{Schedule: base(t), block: func(inner schedule.Schedule, dst []int, start int) {
					if start < 0 {
						for i := range dst {
							dst[i] = 3
						}
						return
					}
					schedule.FillBlock(inner, dst, start)
				}}
			},
			wantMsg: "ChannelBlock(start=-3) did not panic",
		},
		{
			name: "AllChannels missing a hopped channel",
			build: func() schedule.Schedule {
				return withAll{broken: &broken{Schedule: base(t)}, all: []int{3}}
			},
			wantMsg: "missing from AllChannels",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			msg := conformFailure(c.build())
			if msg == "" {
				t.Fatalf("Conform accepted the broken schedule")
			}
			if !strings.Contains(msg, c.wantMsg) {
				t.Fatalf("failure message %q does not name the clause (want substring %q)", msg, c.wantMsg)
			}
		})
	}
}
