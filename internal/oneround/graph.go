// Package oneround implements the appendix of Chen et al. (ICDCS 2014):
// maximizing the number of agent pairs that rendezvous in a single
// round, in the "graphical" case where every channel set has size two.
//
// Agents are edges over channel vertices; an agent's one-shot decision
// orients its edge toward the channel it hops. Two agents rendezvous iff
// their arcs point at a common head — an "in-pair". The package provides
// the 0.25-approximate random orientation, an exact brute-force optimum
// for small instances, and the paper's 0.439-approximation: a
// Goemans-Williamson-style semidefinite relaxation over edge vectors,
// solved with a Burer–Monteiro low-rank ascent (DESIGN.md records this
// solver substitution) and rounded with random hyperplanes plus the
// orientation-flip trick.
package oneround

import (
	"fmt"
	"math/rand"
)

// Graph is a multigraph of channel vertices (1-based) and agent edges.
// Parallel edges are allowed: distinct agents may hold the same channel
// pair. Self-loops are not (a size-two set has distinct channels).
type Graph struct {
	vertices int
	edges    [][2]int
}

// NewGraph validates and builds a graph. Edge endpoints must lie in
// [1, vertices] and differ.
func NewGraph(vertices int, edges [][2]int) (*Graph, error) {
	if vertices < 1 {
		return nil, fmt.Errorf("oneround: need at least one vertex, got %d", vertices)
	}
	cp := make([][2]int, len(edges))
	for i, e := range edges {
		if e[0] < 1 || e[0] > vertices || e[1] < 1 || e[1] > vertices {
			return nil, fmt.Errorf("oneround: edge %d endpoints %v outside [1,%d]", i, e, vertices)
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("oneround: edge %d is a self-loop at %d", i, e[0])
		}
		cp[i] = e
	}
	return &Graph{vertices: vertices, edges: cp}, nil
}

// Vertices returns the number of channel vertices.
func (g *Graph) Vertices() int { return g.vertices }

// Edges returns a copy of the edge list.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, len(g.edges))
	copy(out, g.edges)
	return out
}

// NumEdges returns the number of agents.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Orientation assigns each edge a direction: +1 keeps the stored
// direction (head = e[1]), −1 flips it (head = e[0]).
type Orientation []int8

// head returns the vertex edge e points to under o.
func (g *Graph) head(e int, o Orientation) int {
	if o[e] >= 0 {
		return g.edges[e][1]
	}
	return g.edges[e][0]
}

// InPairs counts unordered pairs of agents that rendezvous: pairs of
// edges with a common head. Equivalently Σ_v C(indeg(v), 2).
func (g *Graph) InPairs(o Orientation) int {
	if len(o) != len(g.edges) {
		panic(fmt.Sprintf("oneround: orientation size %d, want %d", len(o), len(g.edges)))
	}
	indeg := make([]int, g.vertices+1)
	for e := range g.edges {
		indeg[g.head(e, o)]++
	}
	total := 0
	for _, d := range indeg {
		total += d * (d - 1) / 2
	}
	return total
}

// Flip returns the orientation with every edge reversed.
func (o Orientation) Flip() Orientation {
	out := make(Orientation, len(o))
	for i, v := range o {
		out[i] = -v
	}
	return out
}

// RandomOrientation orients each edge independently at random: the
// appendix's 0.25-approximation (each incident pair points inward with
// probability 1/4).
func RandomOrientation(g *Graph, rng *rand.Rand) Orientation {
	o := make(Orientation, g.NumEdges())
	for i := range o {
		if rng.Intn(2) == 0 {
			o[i] = 1
		} else {
			o[i] = -1
		}
	}
	return o
}

// BestRandom draws trials random orientations and returns the best.
func BestRandom(g *Graph, rng *rand.Rand, trials int) (Orientation, int) {
	var best Orientation
	bestVal := -1
	for i := 0; i < trials; i++ {
		o := RandomOrientation(g, rng)
		if v := g.InPairs(o); v > bestVal {
			best, bestVal = o, v
		}
	}
	return best, bestVal
}

// OptimalInPairs exhaustively searches all 2^m orientations; it reports
// an error above 24 edges (16M orientations) to protect callers.
func (g *Graph) OptimalInPairs() (int, Orientation, error) {
	m := g.NumEdges()
	if m > 24 {
		return 0, nil, fmt.Errorf("oneround: brute force limited to 24 edges, got %d", m)
	}
	bestVal := -1
	var best Orientation
	o := make(Orientation, m)
	for mask := 0; mask < 1<<uint(m); mask++ {
		for e := 0; e < m; e++ {
			if mask>>uint(e)&1 == 0 {
				o[e] = 1
			} else {
				o[e] = -1
			}
		}
		if v := g.InPairs(o); v > bestVal {
			bestVal = v
			best = append(Orientation(nil), o...)
		}
	}
	return bestVal, best, nil
}

// IncidentPairs returns the unordered pairs of edges sharing at least
// one vertex, along with the sign sgn(e,f) of the appendix's SDP: +1
// when, under the stored orientations, the two edges form an in-pair or
// out-pair at a shared vertex, −1 for a cross-pair. Parallel edges
// (sharing both vertices) contribute one entry per shared vertex, which
// makes the relaxation count their in-pair and out-pair just as the
// objective Σ_v C(indeg,2) + Σ_v C(outdeg,2) does.
func (g *Graph) IncidentPairs() []IncidentPair {
	var out []IncidentPair
	for e := 0; e < len(g.edges); e++ {
		for f := e + 1; f < len(g.edges); f++ {
			for _, w := range sharedVertices(g.edges[e], g.edges[f]) {
				sign := headSign(g.edges[e], w) * headSign(g.edges[f], w)
				out = append(out, IncidentPair{E: e, F: f, Sign: float64(sign)})
			}
		}
	}
	return out
}

// IncidentPair is one term of the SDP objective.
type IncidentPair struct {
	E, F int
	Sign float64
}

func sharedVertices(a, b [2]int) []int {
	var out []int
	for _, x := range a {
		if x == b[0] || x == b[1] {
			out = append(out, x)
		}
	}
	return out
}

// headSign is +1 if the stored direction of e points at w, −1 otherwise.
func headSign(e [2]int, w int) int {
	if e[1] == w {
		return 1
	}
	return -1
}
