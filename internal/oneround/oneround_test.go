package oneround

import (
	"math/rand"
	"testing"
)

func mustGraph(t *testing.T, v int, edges [][2]int) *Graph {
	t.Helper()
	g, err := NewGraph(v, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestInPairsCounting(t *testing.T) {
	// Star with 3 leaves: edges all stored pointing at the hub (vertex 1).
	g := mustGraph(t, 4, [][2]int{{2, 1}, {3, 1}, {4, 1}})
	all := Orientation{1, 1, 1}
	if got := g.InPairs(all); got != 3 {
		t.Errorf("all-in star InPairs = %d, want 3", got)
	}
	if got := g.InPairs(all.Flip()); got != 0 {
		t.Errorf("all-out star InPairs = %d, want 0", got)
	}
	mixed := Orientation{1, 1, -1}
	if got := g.InPairs(mixed); got != 1 {
		t.Errorf("mixed star InPairs = %d, want 1", got)
	}
}

func TestInPairsParallelEdges(t *testing.T) {
	// Two agents with the same channel pair rendezvous iff they point the
	// same way.
	g := mustGraph(t, 2, [][2]int{{1, 2}, {1, 2}})
	if got := g.InPairs(Orientation{1, 1}); got != 1 {
		t.Errorf("aligned parallel edges InPairs = %d, want 1", got)
	}
	if got := g.InPairs(Orientation{1, -1}); got != 0 {
		t.Errorf("opposed parallel edges InPairs = %d, want 0", got)
	}
}

func TestOptimalInPairsSmall(t *testing.T) {
	// Triangle: one vertex can receive 2 arcs -> 1 in-pair is optimal.
	tri := mustGraph(t, 3, [][2]int{{1, 2}, {2, 3}, {3, 1}})
	opt, o, err := tri.OptimalInPairs()
	if err != nil {
		t.Fatal(err)
	}
	if opt != 1 {
		t.Errorf("triangle OPT = %d, want 1", opt)
	}
	if tri.InPairs(o) != opt {
		t.Error("returned orientation does not achieve OPT")
	}

	// Star K_{1,4}: all arcs to the hub -> C(4,2) = 6.
	star, err := Star(4)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err = star.OptimalInPairs()
	if err != nil {
		t.Fatal(err)
	}
	if opt != 6 {
		t.Errorf("star OPT = %d, want 6", opt)
	}
}

func TestOptimalRejectsLargeGraphs(t *testing.T) {
	edges := make([][2]int, 25)
	for i := range edges {
		edges[i] = [2]int{1, 2}
	}
	g := mustGraph(t, 2, edges)
	if _, _, err := g.OptimalInPairs(); err == nil {
		t.Error("expected brute-force size error")
	}
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(0, nil); err == nil {
		t.Error("zero vertices: expected error")
	}
	if _, err := NewGraph(3, [][2]int{{1, 4}}); err == nil {
		t.Error("endpoint out of range: expected error")
	}
	if _, err := NewGraph(3, [][2]int{{2, 2}}); err == nil {
		t.Error("self-loop: expected error")
	}
}

// TestSDPBeatsApproximationGuarantee verifies the 0.439 bound (and in
// practice near-optimality) of the SDP pipeline against brute force on a
// zoo of small graphs.
func TestSDPBeatsApproximationGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	graphs := []*Graph{
		mustGraph(t, 3, [][2]int{{1, 2}, {2, 3}, {3, 1}}),
		mustGraph(t, 2, [][2]int{{1, 2}, {1, 2}, {1, 2}}),
		mustGraph(t, 5, [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 1}, {1, 3}, {2, 4}}),
	}
	if s, err := Star(6); err == nil {
		graphs = append(graphs, s)
	} else {
		t.Fatal(err)
	}
	if c, err := Cycle(6); err == nil {
		graphs = append(graphs, c)
	} else {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		g, err := ErdosRenyi(rng, 6, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() <= 14 {
			graphs = append(graphs, g)
		}
	}
	for gi, g := range graphs {
		opt, _, err := g.OptimalInPairs()
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		res, err := SolveOneRound(g, SDPOptions{Seed: int64(gi)})
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		if g.InPairs(res.Orientation) != res.InPairs {
			t.Fatalf("graph %d: reported InPairs inconsistent", gi)
		}
		if float64(res.InPairs) < 0.439*float64(opt) {
			t.Errorf("graph %d (m=%d): SDP got %d < 0.439·OPT (OPT=%d)", gi, g.NumEdges(), res.InPairs, opt)
		}
	}
}

// TestRandomOrientationQuarterBound: the best of 64 random orientations
// reaches 0.25·OPT on every test graph (its expectation is 0.25 of ALL
// incident pairs ≥ 0.25·OPT).
func TestRandomOrientationQuarterBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		g, err := ErdosRenyi(rng, 6, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() > 14 {
			continue
		}
		opt, _, err := g.OptimalInPairs()
		if err != nil {
			t.Fatal(err)
		}
		_, best := BestRandom(g, rng, 64)
		if float64(best) < 0.25*float64(opt) {
			t.Errorf("best-of-64 random %d < 0.25·OPT (OPT=%d)", best, opt)
		}
	}
}

func TestSDPOnStarFindsAllIn(t *testing.T) {
	// The star is the case where random orientation is weakest
	// (E[random] = k(k−1)/8) while the optimum k(k−1)/2 is reachable by
	// pointing everything at the hub; the SDP pipeline must find it.
	star, err := Star(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveOneRound(star, SDPOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 * 7 / 2; res.InPairs != want {
		t.Errorf("star InPairs = %d, want %d", res.InPairs, want)
	}
}

func TestSolveOneRoundErrors(t *testing.T) {
	g := mustGraph(t, 2, nil)
	if _, err := SolveOneRound(g, SDPOptions{}); err == nil {
		t.Error("no edges: expected error")
	}
}

func TestIncidentPairsSigns(t *testing.T) {
	// Path 1→2→3 stored as (1,2),(2,3): at shared vertex 2, edge 0 points
	// in (+1) and edge 1 points out (−1): a cross pair, sign −1.
	g := mustGraph(t, 3, [][2]int{{1, 2}, {2, 3}})
	pairs := g.IncidentPairs()
	if len(pairs) != 1 || pairs[0].Sign != -1 {
		t.Fatalf("pairs = %+v, want one cross pair", pairs)
	}
	// Two edges stored pointing at the shared vertex: in/in, sign +1.
	g = mustGraph(t, 3, [][2]int{{1, 2}, {3, 2}})
	pairs = g.IncidentPairs()
	if len(pairs) != 1 || pairs[0].Sign != 1 {
		t.Fatalf("pairs = %+v, want one aligned pair", pairs)
	}
	// Parallel edges: two shared vertices, both signs +1 when stored
	// identically.
	g = mustGraph(t, 2, [][2]int{{1, 2}, {1, 2}})
	pairs = g.IncidentPairs()
	if len(pairs) != 2 || pairs[0].Sign != 1 || pairs[1].Sign != 1 {
		t.Fatalf("parallel pairs = %+v", pairs)
	}
}

func TestGraphAccessors(t *testing.T) {
	g := mustGraph(t, 3, [][2]int{{1, 2}})
	if g.Vertices() != 3 || g.NumEdges() != 1 {
		t.Error("accessor mismatch")
	}
	e := g.Edges()
	e[0][0] = 99
	if g.Edges()[0][0] == 99 {
		t.Error("Edges leaked internal state")
	}
}
