package oneround

import (
	"fmt"
	"math"
	"math/rand"
)

// SDPOptions tunes the Burer–Monteiro solver and the rounding stage.
// The zero value selects sensible defaults.
type SDPOptions struct {
	Rank       int // vector dimension r (0 → min(12, ⌈√(2m)⌉+1))
	Iterations int // gradient ascent steps (0 → 600)
	Restarts   int // random restarts of the ascent (0 → 3)
	Rounds     int // random hyperplanes tried during rounding (0 → 64)
	Seed       int64
}

func (o SDPOptions) withDefaults(m int) SDPOptions {
	if o.Rank == 0 {
		r := int(math.Ceil(math.Sqrt(float64(2*m)))) + 1
		if r > 12 {
			r = 12
		}
		if r < 3 {
			r = 3
		}
		o.Rank = r
	}
	if o.Iterations == 0 {
		o.Iterations = 600
	}
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	if o.Rounds == 0 {
		o.Rounds = 64
	}
	return o
}

// SDPResult reports the outcome of the 0.439-approximation pipeline.
type SDPResult struct {
	Orientation Orientation
	InPairs     int
	// RelaxationValue is the achieved value of the SDP objective
	// Σ (1 + sgn·⟨x_e,x_f⟩)/2 (in-pairs + out-pairs relaxation); it lower
	// bounds the true SDP optimum and, at convergence, closely tracks
	// max(in+out), which is at least the maximum number of in-pairs.
	RelaxationValue float64
}

// SolveOneRound runs the appendix pipeline: solve the edge-vector SDP by
// projected gradient ascent, round with random hyperplanes, evaluate
// both the rounded orientation and its flip, and return the best
// orientation found.
func SolveOneRound(g *Graph, opts SDPOptions) (SDPResult, error) {
	m := g.NumEdges()
	if m == 0 {
		return SDPResult{}, fmt.Errorf("oneround: graph has no edges")
	}
	opts = opts.withDefaults(m)
	pairs := g.IncidentPairs()
	rng := rand.New(rand.NewSource(opts.Seed))

	bestVecs := make([][]float64, 0)
	bestObj := math.Inf(-1)
	for restart := 0; restart < opts.Restarts; restart++ {
		vecs := randomUnitVectors(rng, m, opts.Rank)
		ascend(vecs, pairs, opts.Iterations)
		if obj := dotObjective(vecs, pairs); obj > bestObj {
			bestObj = obj
			bestVecs = vecs
		}
	}

	res := SDPResult{RelaxationValue: float64(len(pairs))/2 + bestObj/2}
	bestIn := -1
	for round := 0; round < opts.Rounds; round++ {
		o := roundHyperplane(bestVecs, rng)
		for _, cand := range []Orientation{o, o.Flip()} {
			if v := g.InPairs(cand); v > bestIn {
				bestIn = v
				res.Orientation = append(Orientation(nil), cand...)
			}
		}
	}
	res.InPairs = bestIn
	return res, nil
}

// randomUnitVectors draws m unit vectors in R^rank.
func randomUnitVectors(rng *rand.Rand, m, rank int) [][]float64 {
	vecs := make([][]float64, m)
	for i := range vecs {
		v := make([]float64, rank)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		normalize(v)
		vecs[i] = v
	}
	return vecs
}

// ascend maximizes Σ sgn_ef·⟨x_e,x_f⟩ over unit vectors by projected
// gradient ascent with a diminishing step size.
func ascend(vecs [][]float64, pairs []IncidentPair, iters int) {
	if len(vecs) == 0 {
		return
	}
	rank := len(vecs[0])
	grads := make([][]float64, len(vecs))
	for i := range grads {
		grads[i] = make([]float64, rank)
	}
	for it := 0; it < iters; it++ {
		for i := range grads {
			for j := range grads[i] {
				grads[i][j] = 0
			}
		}
		for _, p := range pairs {
			for j := 0; j < rank; j++ {
				grads[p.E][j] += p.Sign * vecs[p.F][j]
				grads[p.F][j] += p.Sign * vecs[p.E][j]
			}
		}
		step := 0.5 / (1 + float64(it)/40)
		for i := range vecs {
			for j := 0; j < rank; j++ {
				vecs[i][j] += step * grads[i][j]
			}
			normalize(vecs[i])
		}
	}
}

func dotObjective(vecs [][]float64, pairs []IncidentPair) float64 {
	var sum float64
	for _, p := range pairs {
		sum += p.Sign * dot(vecs[p.E], vecs[p.F])
	}
	return sum
}

// roundHyperplane projects each vector onto a random Gaussian direction
// and keeps or flips the edge by the sign of the projection.
func roundHyperplane(vecs [][]float64, rng *rand.Rand) Orientation {
	if len(vecs) == 0 {
		return nil
	}
	dir := make([]float64, len(vecs[0]))
	for j := range dir {
		dir[j] = rng.NormFloat64()
	}
	o := make(Orientation, len(vecs))
	for i, v := range vecs {
		if dot(v, dir) >= 0 {
			o[i] = 1
		} else {
			o[i] = -1
		}
	}
	return o
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func normalize(v []float64) {
	n := math.Sqrt(dot(v, v))
	if n == 0 {
		v[0] = 1
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// ErdosRenyi draws a G(v, p) instance (each possible edge independently
// with probability p) for workload generation.
func ErdosRenyi(rng *rand.Rand, vertices int, p float64) (*Graph, error) {
	var edges [][2]int
	for u := 1; u <= vertices; u++ {
		for v := u + 1; v <= vertices; v++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	if len(edges) == 0 {
		edges = append(edges, [2]int{1, 2})
	}
	return NewGraph(vertices, edges)
}

// Star returns the star graph K_{1,k}: the worst case for random
// orientation (all pairs share the hub).
func Star(k int) (*Graph, error) {
	edges := make([][2]int, k)
	for i := range edges {
		edges[i] = [2]int{1, i + 2}
	}
	return NewGraph(k+1, edges)
}

// Cycle returns the cycle graph C_k.
func Cycle(k int) (*Graph, error) {
	if k < 3 {
		return nil, fmt.Errorf("oneround: cycle needs ≥3 vertices, got %d", k)
	}
	edges := make([][2]int, k)
	for i := 0; i < k; i++ {
		edges[i] = [2]int{i + 1, (i+1)%k + 1}
	}
	return NewGraph(k, edges)
}
