package catalan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rendezvous/internal/bitstring"
	"rendezvous/internal/knuth"
)

func TestCatalanizeProducesCatalan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		z := randomBalanced(rng, 2*(1+rng.Intn(10)))
		u := Catalanize(z)
		if !u.IsCatalan() {
			t.Fatalf("Catalanize(%v) = %v not Catalan", z, u)
		}
		if u.Len() != CatalanizeLen(z.Len()) {
			t.Fatalf("CatalanizeLen mismatch: got %d want %d", u.Len(), CatalanizeLen(z.Len()))
		}
	}
}

func TestCatalanizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		z := randomBalanced(rng, 2*(1+rng.Intn(10)))
		back, err := Decatalanize(Catalanize(z), z.Len())
		if err != nil {
			t.Fatalf("Decatalanize: %v", err)
		}
		if !back.Equal(z) {
			t.Fatalf("round trip failed: %v -> %v", z, back)
		}
	}
}

func TestCatalanizePanicsOnUnbalanced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Catalanize(bitstring.MustParse("10100"))
}

func TestDecatalanizeRejectsMalformed(t *testing.T) {
	z := bitstring.MustParse("1100")
	u := Catalanize(z)
	if _, err := Decatalanize(u, 6); err == nil {
		t.Error("wrong length: expected error")
	}
	bad := u.Clone()
	bad.SetBit(z.Len(), 0) // break the 1-run
	if _, err := Decatalanize(bad, z.Len()); err == nil {
		t.Error("broken 1-run: expected error")
	}
}

func TestMakeTwoMaximal(t *testing.T) {
	for _, c := range []string{"10", "1100", "110100", "111000", "1101010010"} {
		z := bitstring.MustParse(c)
		w := MakeTwoMaximal(z)
		if !w.IsTMaximal(2) {
			t.Errorf("MakeTwoMaximal(%s) = %s: not 2-maximal", c, w)
		}
		back, err := UndoTwoMaximal(w)
		if err != nil {
			t.Fatalf("UndoTwoMaximal(%s): %v", w, err)
		}
		if !back.Equal(z) {
			t.Errorf("round trip failed: %s -> %s -> %s", c, w, back)
		}
	}
}

func TestMakeTwoMaximalEmpty(t *testing.T) {
	w := MakeTwoMaximal(bitstring.New(0))
	back, err := UndoTwoMaximal(w)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("expected empty string, got %v", back)
	}
}

func TestUndoTwoMaximalRejects(t *testing.T) {
	// 10 and 1100 are 1-maximal, 101010 is 3-maximal, and 0011 has its
	// single maximum at position 0; none is in the image of M.
	for _, c := range []string{"10", "1100", "101010", "0011"} {
		if _, err := UndoTwoMaximal(bitstring.MustParse(c)); err == nil {
			t.Errorf("UndoTwoMaximal(%s): expected error", c)
		}
	}
}

// TestEncodeInvariants verifies the three structural properties Theorem 1
// needs from R, exhaustively over all inputs of length ≤ 8.
func TestEncodeInvariants(t *testing.T) {
	for n := 0; n <= 8; n++ {
		wantLen := EncodeLen(n)
		for v := uint64(0); v < 1<<uint(n); v++ {
			x := bitstring.MustFromUint(v, n)
			r := Encode(x)
			if r.Len() != wantLen {
				t.Fatalf("len(R(%v)) = %d, want %d", x, r.Len(), wantLen)
			}
			if !r.IsBalanced() {
				t.Fatalf("R(%v) = %v not balanced", x, r)
			}
			if !r.IsStrictlyCatalan() {
				t.Fatalf("R(%v) = %v not strictly Catalan", x, r)
			}
			if !r.IsTMaximal(2) {
				t.Fatalf("R(%v) = %v not 2-maximal", x, r)
			}
		}
	}
}

func TestEncodeRoundTripAndInjectivity(t *testing.T) {
	for n := 0; n <= 8; n++ {
		seen := make(map[string]uint64)
		for v := uint64(0); v < 1<<uint(n); v++ {
			x := bitstring.MustFromUint(v, n)
			r := Encode(x)
			if prev, dup := seen[r.String()]; dup {
				t.Fatalf("n=%d: R(%d) = R(%d)", n, v, prev)
			}
			seen[r.String()] = v
			back, err := Decode(r, n)
			if err != nil {
				t.Fatalf("Decode(R(%v)): %v", x, err)
			}
			if !back.Equal(x) {
				t.Fatalf("round trip failed for %v", x)
			}
		}
	}
}

// TestCircledConditions verifies the paper's condition (6): for all x, y
// of common length, R(x) ◇₀ R(y) always holds, and R(x) ◇₁ R(y) holds
// whenever x ≠ y. This is exactly what makes the cyclic pair schedules
// correct under arbitrary wake offsets.
func TestCircledConditions(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6} {
		images := make([]bitstring.String, 1<<uint(n))
		for v := range images {
			images[v] = Encode(bitstring.MustFromUint(uint64(v), n))
		}
		for i, ri := range images {
			for j, rj := range images {
				if !bitstring.CircledZero(ri, rj) {
					t.Fatalf("n=%d: R(%d) ◇₀ R(%d) fails", n, i, j)
				}
				if i != j && !bitstring.CircledOne(ri, rj) {
					t.Fatalf("n=%d: R(%d) ◇₁ R(%d) fails", n, i, j)
				}
			}
		}
	}
}

func TestNoRotationCollisions(t *testing.T) {
	// Distinct inputs must not map to rotations of each other: this is
	// what strict Catalan-ness plus injectivity buys.
	n := 6
	var images []bitstring.String
	for v := uint64(0); v < 1<<uint(n); v++ {
		images = append(images, Encode(bitstring.MustFromUint(v, n)))
	}
	for i := range images {
		for j := i + 1; j < len(images); j++ {
			if images[i].IsRotationOf(images[j]) {
				t.Fatalf("R(%d) is a rotation of R(%d)", i, j)
			}
		}
	}
}

func TestEncodeLenGrowth(t *testing.T) {
	// |R(x)| = |x| + O(log |x|): sanity-check the paper's
	// |R(z)| ≤ |z| + 4·log♯|z| + 16 shape with our constants
	// (|R| ≤ |z| + c·log(|z|) + c′ for moderate c, c′).
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		got := EncodeLen(n)
		bound := n + 8*bitlen(n) + 40
		if got > bound {
			t.Errorf("EncodeLen(%d) = %d exceeds %d", n, got, bound)
		}
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	if _, err := Decode(bitstring.Zeros(7), 4); err == nil {
		t.Error("expected length error")
	}
}

func TestEncodeQuickProperty(t *testing.T) {
	f := func(v uint16) bool {
		x := bitstring.MustFromUint(uint64(v), 16)
		r := Encode(x)
		back, err := Decode(r, 16)
		return err == nil && back.Equal(x) &&
			r.IsBalanced() && r.IsStrictlyCatalan() && r.IsTMaximal(2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKnuthInterop(t *testing.T) {
	// Catalanize is always applied to Knuth images inside Encode; check
	// the composition explicitly for a few sizes.
	for n := 0; n <= 10; n++ {
		k := knuth.Encode(bitstring.Zeros(n))
		if !k.IsBalanced() {
			t.Fatalf("knuth.Encode(0^%d) not balanced", n)
		}
		u := Catalanize(k)
		if !u.IsCatalan() {
			t.Fatalf("Catalanize(knuth.Encode(0^%d)) not Catalan", n)
		}
	}
}

func bitlen(n int) int {
	l := 0
	for n > 0 {
		l++
		n >>= 1
	}
	return l
}

func randomBalanced(rng *rand.Rand, n int) bitstring.String {
	bits := make([]byte, n)
	for i := 0; i < n/2; i++ {
		bits[i] = 1
	}
	rng.Shuffle(n, func(i, j int) { bits[i], bits[j] = bits[j], bits[i] })
	s := bitstring.New(n)
	for i, b := range bits {
		s.SetBit(i, b)
	}
	return s
}
