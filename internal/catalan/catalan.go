// Package catalan implements the string transformations behind Theorem 1
// of Chen et al. (ICDCS 2014): the Catalanization U, the 2-maximality
// transform M, and the composite asynchronous encoding
//
//	R(x) = M(1 ∘ U(K(x)) ∘ 0),
//
// where K is the balanced encoding from package knuth. R is injective and
// every image is balanced, strictly Catalan and 2-maximal; those three
// properties make the induced cyclic pair schedules rendezvous under
// every pair of rotations (paper §3, conditions ◇₀ and ◇₁).
//
// All output lengths depend only on input lengths, which the epoch
// construction of Theorem 3 requires (every agent's epoch must have the
// same duration).
package catalan

import (
	"fmt"
	"math/bits"

	"rendezvous/internal/bitstring"
	"rendezvous/internal/knuth"
)

// shiftWidth returns the fixed bit width used to record the Catalan
// rotation of a balanced string of length n (the rotation lies in
// [0, n), encoded in max(1, bitlen(n−1)) bits).
func shiftWidth(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// CatalanizeLen returns |Catalanize(z)| for balanced inputs of length n.
func CatalanizeLen(n int) int {
	return n + 2*knuth.EncodedLen(shiftWidth(n))
}

// Catalanize implements the paper's U: given a balanced string z it
// returns the Catalan string
//
//	U(z) = (S^c z) ∘ 1^{λ/2} ∘ K(c₂) ∘ 0^{λ/2},
//
// where c is a rotation making S^c z Catalan and λ = |K(c₂)|. The shift
// is encoded inside the output, so U is injective; the output is balanced
// and Catalan. Catalanize panics if z is not balanced (programmer error:
// it is only ever applied to images of K).
func Catalanize(z bitstring.String) bitstring.String {
	if !z.IsBalanced() {
		panic(fmt.Sprintf("catalan: Catalanize requires balanced input, got %v", z))
	}
	c := z.CatalanShift()
	cBits := bitstring.MustFromUint(uint64(c), shiftWidth(z.Len()))
	kc := knuth.Encode(cBits)
	half := kc.Len() / 2
	return bitstring.Concat(z.Rotate(c), bitstring.Ones(half), kc, bitstring.Zeros(half))
}

// Decatalanize inverts Catalanize given the original input length n.
func Decatalanize(u bitstring.String, n int) (bitstring.String, error) {
	w := shiftWidth(n)
	lambda := knuth.EncodedLen(w)
	if u.Len() != n+2*lambda {
		return bitstring.String{}, fmt.Errorf("catalan: encoded length %d, want %d for input length %d", u.Len(), n+2*lambda, n)
	}
	half := lambda / 2
	for i := 0; i < half; i++ {
		if u.Bit(n+i) != 1 {
			return bitstring.String{}, fmt.Errorf("catalan: missing 1-run at offset %d", n+i)
		}
		if u.Bit(n+half+lambda+i) != 0 {
			return bitstring.String{}, fmt.Errorf("catalan: missing 0-run at offset %d", n+half+lambda+i)
		}
	}
	cBits, err := knuth.Decode(u.Slice(n+half, n+half+lambda), w)
	if err != nil {
		return bitstring.String{}, fmt.Errorf("catalan: shift suffix: %w", err)
	}
	cU, err := cBits.Uint()
	if err != nil {
		return bitstring.String{}, err
	}
	if n > 0 && int(cU) >= n {
		return bitstring.String{}, fmt.Errorf("catalan: rotation %d out of range [0,%d)", cU, n)
	}
	return u.Slice(0, n).Rotate(-int(cU)), nil
}

// twoMaxBlock is the string inserted at a maximal point to make the walk
// 2-maximal (paper Figure 3).
var twoMaxBlock = bitstring.MustParse("1010")

// MakeTwoMaximal implements the paper's M: it inserts 1010 at the first
// maximal point of the walk, producing a 2-maximal string. The transform
// preserves balance and strict Catalan-ness and is invertible.
func MakeTwoMaximal(z bitstring.String) bitstring.String {
	pts := z.MaxPoints()
	if len(pts) == 0 {
		// Only the empty string has no max points; 1010 alone is its image.
		return twoMaxBlock
	}
	return z.Insert(pts[0], twoMaxBlock)
}

// UndoTwoMaximal inverts MakeTwoMaximal. It reports an error if w is not
// in the image of the transform.
func UndoTwoMaximal(w bitstring.String) (bitstring.String, error) {
	pts := w.MaxPoints()
	if len(pts) != 2 || pts[1] != pts[0]+2 || pts[0] == 0 {
		return bitstring.String{}, fmt.Errorf("catalan: %v is not 2-maximal with adjacent peaks", w)
	}
	at := pts[0] - 1
	if !w.Slice(at, at+4).Equal(twoMaxBlock) {
		return bitstring.String{}, fmt.Errorf("catalan: no 1010 block at %d in %v", at, w)
	}
	return bitstring.Concat(w.Slice(0, at), w.Slice(at+4, w.Len())), nil
}

// EncodeLen returns |Encode(x)| for inputs of length n.
func EncodeLen(n int) int {
	kLen := knuth.EncodedLen(n)
	return CatalanizeLen(kLen) + 2 + twoMaxBlock.Len()
}

// Encode is the paper's R: an injective map whose images are balanced,
// strictly Catalan and 2-maximal, with |R(x)| = |x| + O(log |x|).
func Encode(x bitstring.String) bitstring.String {
	u := Catalanize(knuth.Encode(x))
	s := bitstring.Concat(bitstring.Ones(1), u, bitstring.Zeros(1))
	return MakeTwoMaximal(s)
}

// Decode inverts Encode given the original input length n.
func Decode(r bitstring.String, n int) (bitstring.String, error) {
	if r.Len() != EncodeLen(n) {
		return bitstring.String{}, fmt.Errorf("catalan: encoded length %d, want %d for input length %d", r.Len(), EncodeLen(n), n)
	}
	s, err := UndoTwoMaximal(r)
	if err != nil {
		return bitstring.String{}, err
	}
	if s.Len() < 2 || s.Bit(0) != 1 || s.Bit(s.Len()-1) != 0 {
		return bitstring.String{}, fmt.Errorf("catalan: missing strictness frame in %v", s)
	}
	u := s.Slice(1, s.Len()-1)
	z, err := Decatalanize(u, knuth.EncodedLen(n))
	if err != nil {
		return bitstring.String{}, err
	}
	return knuth.Decode(z, n)
}
