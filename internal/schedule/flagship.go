package schedule

// NewAsync returns the paper's flagship construction: the Theorem-3
// general schedule wrapped with the §3.2 symmetric reduction. Any two
// agents with overlapping channel sets rendezvous asynchronously in
// O(|A|·|B|·log log n) slots, and agents with identical sets rendezvous
// in O(1) slots (at the set's smallest channel).
func NewAsync(n int, channels []int) (*Symmetric, error) {
	g, err := NewGeneral(n, channels)
	if err != nil {
		return nil, err
	}
	return NewSymmetric(g), nil
}
