package schedule

import (
	"fmt"
	"sort"
)

// CheckSlot enforces the repository-wide slot contract: schedules are
// defined on t ≥ 0 only, and every implementation panics on a negative
// slot with this message. Callers that translate between clocks (wake
// offsets, phase boundaries) must do their own clamping before calling
// Channel or ChannelBlock.
func CheckSlot(t int) {
	if t < 0 {
		panic(fmt.Sprintf("schedule: negative slot %d", t))
	}
}

// BlockEvaluator is the optional fast-path contract next to Schedule
// (analogous to the optional AllChannels method): ChannelBlock fills
// dst[i] = Channel(start+i) for every i in one call, letting an
// implementation amortize per-slot work — epoch lookups, permutation
// draws, interface dispatch — over a whole block. Implementations must
// produce exactly the channels Channel would, and, like Channel, must
// stay pure and safe for concurrent readers.
type BlockEvaluator interface {
	ChannelBlock(dst []int, start int)
}

// FillBlock fills dst[i] = s.Channel(start+i), using the schedule's
// native ChannelBlock when it implements BlockEvaluator and falling back
// to per-slot evaluation otherwise. It is the single entry point the
// simulator hot loops use, so every schedule benefits from whichever
// path it can offer.
func FillBlock(s Schedule, dst []int, start int) {
	if len(dst) == 0 {
		return
	}
	CheckSlot(start)
	if b, ok := s.(BlockEvaluator); ok {
		b.ChannelBlock(dst, start)
		return
	}
	for i := range dst {
		dst[i] = s.Channel(start + i)
	}
}

// EventualPeriod marks schedules whose Period is only eventually valid:
// Channel(t+p) = Channel(t) is guaranteed from some slot onward but not
// from t = 0 (Dynamic's transitional phases, and any wrapper around
// such a schedule). Compile refuses these — a one-period hop table
// would silently misreport the transient prefix.
type EventualPeriod interface {
	PeriodIsEventual() bool
}

// IsEventuallyPeriodic reports whether s declares its period only
// eventually valid. Wrappers propagate the marker by delegating to
// this on their inner schedule, so the rule lives in exactly one place.
func IsEventuallyPeriodic(s Schedule) bool {
	e, ok := s.(EventualPeriod)
	return ok && e.PeriodIsEventual()
}

// AllChannels returns the complete hop set of s, sorted ascending: the
// optional AllChannels method when the schedule's availability varies
// over time (Dynamic and wrappers over it), Channels() otherwise.
// Overlap-based pruning must use this, never Channels() directly. The
// result is re-sorted defensively if an implementation outside this
// repository violates the sorted-set contract, so set comparisons by
// merge scan stay sound.
func AllChannels(s Schedule) []int {
	var out []int
	if v, ok := s.(interface{ AllChannels() []int }); ok {
		out = v.AllChannels()
	} else {
		out = s.Channels()
	}
	if !sort.IntsAreSorted(out) {
		out = append([]int(nil), out...)
		sort.Ints(out)
	}
	return out
}

// DefaultCompileCap is the largest period, in slots, that Compile will
// materialize: 1<<20 slots is an 8 MiB table, comfortably amortized by
// the offset sweeps and long-horizon runs that want compiled schedules,
// while huge-period schedules (Random and the beacon protocols report
// 1<<22 by default, Jump-Stay grows as n³) transparently keep their
// native evaluation paths.
const DefaultCompileCap = 1 << 20

// Compiled is a schedule unrolled into a flat hop table covering one
// full period. Channel is an array load; ChannelBlock is a wrapped
// copy. The wrapped schedule is retained for Channels/AllChannels and
// for callers that want to inspect what was compiled.
type Compiled struct {
	inner Schedule
	table []int
}

var _ Schedule = (*Compiled)(nil)
var _ BlockEvaluator = (*Compiled)(nil)

// Channel implements Schedule.
func (c *Compiled) Channel(t int) int {
	CheckSlot(t)
	return c.table[t%len(c.table)]
}

// ChannelBlock implements BlockEvaluator by copying from the hop table.
func (c *Compiled) ChannelBlock(dst []int, start int) {
	CheckSlot(start)
	p := len(c.table)
	off := start % p
	for len(dst) > 0 {
		n := copy(dst, c.table[off:])
		dst = dst[n:]
		off = 0
	}
}

// Period implements Schedule.
func (c *Compiled) Period() int { return len(c.table) }

// Channels implements Schedule.
func (c *Compiled) Channels() []int { return c.inner.Channels() }

// AllChannels propagates the complete hop set of the wrapped schedule.
func (c *Compiled) AllChannels() []int { return AllChannels(c.inner) }

// Inner returns the schedule the table was compiled from.
func (c *Compiled) Inner() Schedule { return c.inner }

// Compile is CompileCap with DefaultCompileCap.
func Compile(s Schedule) Schedule { return CompileCap(s, DefaultCompileCap) }

// CompileCap materializes one period of s into a Compiled hop table,
// or returns s unchanged when a table would be unsound or too large:
//
//   - s is already compiled;
//   - s declares an eventually-valid period (EventualPeriod — Dynamic
//     with more than one phase, or a wrapper over one);
//   - Period() exceeds maxSlots;
//   - the materialized table fails verification against a second period
//     (defense in depth: a schedule whose Period contract is broken
//     falls back to its own evaluation instead of silently diverging).
//
// The fallback is transparent: callers treat the result as an ordinary
// Schedule either way, and FillBlock picks the best available path.
func CompileCap(s Schedule, maxSlots int) Schedule {
	if _, ok := s.(*Compiled); ok {
		return s
	}
	if IsEventuallyPeriodic(s) {
		return s
	}
	p := s.Period()
	if p <= 0 || p > maxSlots {
		return s
	}
	table := make([]int, p)
	FillBlock(s, table, 0)
	// Verify the advertised period before trusting the table: compare a
	// second full period chunk-wise against the first.
	const chunk = 4096
	buf := make([]int, min(chunk, p))
	for off := 0; off < p; off += len(buf) {
		n := min(len(buf), p-off)
		FillBlock(s, buf[:n], p+off)
		for i := 0; i < n; i++ {
			if buf[i] != table[off+i] {
				return s
			}
		}
	}
	return &Compiled{inner: s, table: table}
}
