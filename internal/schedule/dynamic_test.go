package schedule

import "testing"

func TestDynamicPhaseSwitching(t *testing.T) {
	d, err := NewDynamic(16, []Phase{
		{FromSlot: 0, Channels: []int{1, 2, 3}},
		{FromSlot: 100, Channels: []int{7, 9}},
		{FromSlot: 200, Channels: []int{9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := func(c int, set []int) bool {
		for _, x := range set {
			if x == c {
				return true
			}
		}
		return false
	}
	for s := 0; s < 100; s++ {
		if !in(d.Channel(s), []int{1, 2, 3}) {
			t.Fatalf("slot %d hopped %d outside phase-0 set", s, d.Channel(s))
		}
	}
	for s := 100; s < 200; s++ {
		if !in(d.Channel(s), []int{7, 9}) {
			t.Fatalf("slot %d hopped %d outside phase-1 set", s, d.Channel(s))
		}
	}
	for s := 200; s < 300; s++ {
		if d.Channel(s) != 9 {
			t.Fatalf("slot %d hopped %d, want 9", s, d.Channel(s))
		}
	}
	if d.NumPhases() != 3 {
		t.Errorf("NumPhases = %d", d.NumPhases())
	}
	if got := d.Channels(); len(got) != 1 || got[0] != 9 {
		t.Errorf("final Channels = %v", got)
	}
	if got := d.ChannelsAt(150); len(got) != 2 || got[0] != 7 {
		t.Errorf("ChannelsAt(150) = %v", got)
	}
}

// TestDynamicRendezvousAfterChannelLoss is the failure-injection story:
// an incumbent takes channels away mid-run; two agents that re-plan on
// their remaining sets still rendezvous, provided the sets still
// overlap.
func TestDynamicRendezvousAfterChannelLoss(t *testing.T) {
	const n = 32
	const change = 500
	a, err := NewDynamic(n, []Phase{
		{FromSlot: 0, Channels: []int{1, 5, 9, 13}},
		{FromSlot: change, Channels: []int{5, 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDynamic(n, []Phase{
		{FromSlot: 0, Channels: []int{9, 21, 30}},
		{FromSlot: change, Channels: []int{9, 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Measure rendezvous restricted to slots after the change: both
	// agents woke simultaneously, so phases align.
	inner := mustGeneralBound(t, n, []int{5, 9}, 2)
	found := false
	for s := change; s < change+12*inner+24 && !found; s++ {
		found = a.Channel(s) == b.Channel(s)
	}
	if !found {
		t.Fatal("no rendezvous after channel loss within the post-change bound")
	}
}

func mustGeneralBound(t *testing.T, n int, set []int, otherK int) int {
	t.Helper()
	g, err := NewGeneral(n, set)
	if err != nil {
		t.Fatal(err)
	}
	return g.RendezvousBound(otherK)
}

func TestDynamicValidation(t *testing.T) {
	if _, err := NewDynamic(8, nil); err == nil {
		t.Error("no phases: expected error")
	}
	if _, err := NewDynamic(8, []Phase{{FromSlot: 5, Channels: []int{1}}}); err == nil {
		t.Error("first phase not at 0: expected error")
	}
	if _, err := NewDynamic(8, []Phase{
		{FromSlot: 0, Channels: []int{1}},
		{FromSlot: 0, Channels: []int{2}},
	}); err == nil {
		t.Error("non-increasing phases: expected error")
	}
	if _, err := NewDynamic(8, []Phase{{FromSlot: 0, Channels: []int{99}}}); err == nil {
		t.Error("bad channels: expected error")
	}
}

func TestDynamicDoesNotAliasCallerSlice(t *testing.T) {
	set := []int{3, 1}
	d, err := NewDynamic(8, []Phase{{FromSlot: 0, Channels: set}})
	if err != nil {
		t.Fatal(err)
	}
	set[0] = 7
	if got := d.Channels(); got[0] != 1 || got[1] != 3 {
		t.Errorf("Channels = %v, want [1 3]", got)
	}
}
