package schedule

import (
	"testing"
)

// ttr returns the number of slots after the later agent wakes until the
// two schedules first hop a common channel, given that a woke delta
// slots earlier than b. ok is false if no rendezvous occurs within
// horizon slots.
func ttr(a, b Schedule, delta, horizon int) (int, bool) {
	for s := 0; s < horizon; s++ {
		if a.Channel(s+delta) == b.Channel(s) {
			return s, true
		}
	}
	return 0, false
}

func TestConstant(t *testing.T) {
	c := NewConstant(7)
	for _, slot := range []int{0, 1, 100} {
		if c.Channel(slot) != 7 {
			t.Fatalf("Channel(%d) = %d", slot, c.Channel(slot))
		}
	}
	if c.Period() != 1 {
		t.Errorf("Period = %d", c.Period())
	}
	if ch := c.Channels(); len(ch) != 1 || ch[0] != 7 {
		t.Errorf("Channels = %v", ch)
	}
}

func TestCyclic(t *testing.T) {
	c, err := NewCyclic([]int{3, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 1, 3, 2, 3, 1, 3, 2}
	for i, w := range want {
		if got := c.Channel(i); got != w {
			t.Fatalf("Channel(%d) = %d, want %d", i, got, w)
		}
	}
	if c.Period() != 4 {
		t.Errorf("Period = %d", c.Period())
	}
	chans := c.Channels()
	if len(chans) != 3 || chans[0] != 1 || chans[1] != 2 || chans[2] != 3 {
		t.Errorf("Channels = %v", chans)
	}
	// The returned slice must be a copy.
	chans[0] = 99
	if c.Channels()[0] == 99 {
		t.Error("Channels leaked internal state")
	}
	if _, err := NewCyclic(nil); err == nil {
		t.Error("empty cycle: expected error")
	}
}

func TestValidateChannels(t *testing.T) {
	if _, err := ValidateChannels(0, []int{1}); err == nil {
		t.Error("n=0: expected error")
	}
	if _, err := ValidateChannels(5, nil); err == nil {
		t.Error("empty set: expected error")
	}
	if _, err := ValidateChannels(5, []int{2, 2}); err == nil {
		t.Error("duplicates: expected error")
	}
	if _, err := ValidateChannels(5, []int{0, 3}); err == nil {
		t.Error("channel 0: expected error")
	}
	if _, err := ValidateChannels(5, []int{3, 6}); err == nil {
		t.Error("channel > n: expected error")
	}
	got, err := ValidateChannels(9, []int{5, 2, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 9 {
		t.Errorf("sorted = %v", got)
	}
}
