package schedule

import "math/bits"

// The posting-list layer of the dense-id pipeline: an inverted index
// over dense channel ids, rebuilt one time slot at a time. Where
// dense.go turns schedules into flat int32 id streams, PostingIndex
// groups one slot of those streams by channel — the posting list of
// members (agents, in the simulator's use) listening on each channel —
// via a two-pass counting gather: Count every member's channel, Place
// the per-channel group offsets, then Put each member into its group.
// Members are presented in visit order within a group (the simulator
// visits ascending), which is the contract first-meeting detection
// relies on: a member only ever intersects against earlier-id members
// of its own group.
//
// The index holds member ids, not bitsets: groups are disjoint (a
// member listens on exactly one channel per slot), so the consumer can
// materialize each group's 64-member bitset words in registers while
// walking it, rather than paying per-member read-modify-writes into a
// shared words array. Which channels have members is itself a bitset
// (ChannelMask), kept by an unconditional OR in Count — no
// first-arrival branch on the hot path — and ResetSlot clears in
// O(touched channels), so a slot in which most channels are silent
// costs nothing for them.

// PostingIndex gathers one slot's members into per-channel posting
// lists. It is sized once for a (channels, members) universe and reused
// across slots and runs; it is not safe for concurrent use (each
// worker owns one).
type PostingIndex struct {
	cnt  []int32  // per-channel member count for the slot being built
	pos  []int32  // per-channel write cursor into out (end offset after Put)
	mask []uint64 // bitset of channels with ≥ 1 member this slot
	out  []int32  // members grouped by channel, caller's visit order within each
	wpm  int
}

// MaxPostingMembers is the largest member universe a PostingIndex
// supports: one 64-bit summary word indexes at most 64 posting words.
const MaxPostingMembers = 64 * 64

// NewPostingIndex returns an index over the given universe sizes.
// members must not exceed MaxPostingMembers; consumers that intersect
// groups through a single register-resident 64-word bitset rely on
// that bound. Use NewPostingIndexWide for larger member universes.
func NewPostingIndex(channels, members int) *PostingIndex {
	if members > MaxPostingMembers {
		panic("schedule: PostingIndex member universe exceeds MaxPostingMembers (use NewPostingIndexWide)")
	}
	return NewPostingIndexWide(channels, members)
}

// NewPostingIndexWide is NewPostingIndex without the member cap: the
// gather itself is O(members) whatever the universe size — the cap
// exists only for consumers that mirror a group as one fixed 64-word
// bitset. Consumers of a wide index must shard their group bitsets
// (64×64-word segments) or walk member ids directly.
func NewPostingIndexWide(channels, members int) *PostingIndex {
	wpm := (members + 63) / 64
	if wpm == 0 {
		wpm = 1
	}
	return &PostingIndex{
		cnt:  make([]int32, channels),
		pos:  make([]int32, channels),
		mask: make([]uint64, (channels+63)/64),
		out:  make([]int32, members),
		wpm:  wpm,
	}
}

// WordsPerSet returns the number of 64-bit words needed to hold one
// group as a member bitset.
func (p *PostingIndex) WordsPerSet() int { return p.wpm }

// Count notes one member listening on channel ch (counting pass; call
// once per member, before Place). Branch-free: the channel mask is
// kept by an unconditional OR.
func (p *PostingIndex) Count(ch int32) {
	p.cnt[ch]++
	p.mask[ch>>6] |= 1 << (ch & 63)
}

// Place seals the counting pass, assigning each touched channel's
// group a contiguous region of the member array.
func (p *PostingIndex) Place() {
	s := int32(0)
	for wi, b := range p.mask {
		for ; b != 0; b &= b - 1 {
			c := wi<<6 + bits.TrailingZeros64(b)
			p.pos[c] = s
			s += p.cnt[c]
		}
	}
}

// Put appends member m to channel ch's group (placement pass; visit
// members in the same order as Count so groups keep that order).
func (p *PostingIndex) Put(ch, m int32) {
	p.out[p.pos[ch]] = m
	p.pos[ch]++
}

// ChannelMask returns the bitset of channels with at least one member
// this slot: bit c of word c>>6. Valid until ResetSlot; the slice
// aliases the index.
func (p *PostingIndex) ChannelMask() []uint64 { return p.mask }

// Group returns channel ch's members in visit order. Valid after every
// Put, until ResetSlot; the slice aliases the index.
func (p *PostingIndex) Group(ch int32) []int32 {
	end := p.pos[ch]
	return p.out[end-p.cnt[ch] : end]
}

// ResetSlot forgets the current slot's groups in O(touched channels),
// readying the index for the next Count pass.
func (p *PostingIndex) ResetSlot() {
	for wi, b := range p.mask {
		if b == 0 {
			continue
		}
		for ; b != 0; b &= b - 1 {
			p.cnt[wi<<6+bits.TrailingZeros64(b)] = 0
		}
		p.mask[wi] = 0
	}
}
