package schedule_test

import (
	"testing"

	"rendezvous/internal/schedtest"
	"rendezvous/internal/schedule"
)

// TestConformance runs the shared Schedule conformance suite against
// every construction in this package, including compiled tables and
// the flagship wrapper stack.
func TestConformance(t *testing.T) {
	cases := map[string]func(t *testing.T) schedule.Schedule{
		"Constant": func(t *testing.T) schedule.Schedule {
			return schedule.NewConstant(3)
		},
		"Cyclic": func(t *testing.T) schedule.Schedule {
			c, err := schedule.NewCyclic([]int{2, 5, 2, 9, 1})
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
		"General": func(t *testing.T) schedule.Schedule {
			g, err := schedule.NewGeneral(64, []int{3, 17, 40, 63})
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"GeneralSingleton": func(t *testing.T) schedule.Schedule {
			g, err := schedule.NewGeneral(16, []int{7})
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"Symmetric(General)": func(t *testing.T) schedule.Schedule {
			s, err := schedule.NewAsync(64, []int{3, 17, 40})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"Symmetric(Cyclic)": func(t *testing.T) schedule.Schedule {
			c, err := schedule.NewCyclic([]int{4, 1, 4, 2})
			if err != nil {
				t.Fatal(err)
			}
			return schedule.NewSymmetric(c)
		},
		"DynamicSinglePhase": func(t *testing.T) schedule.Schedule {
			d, err := schedule.NewDynamic(32, []schedule.Phase{
				{FromSlot: 0, Channels: []int{1, 9, 30}},
			})
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"DynamicMultiPhase": func(t *testing.T) schedule.Schedule {
			d, err := schedule.NewDynamic(32, []schedule.Phase{
				{FromSlot: 0, Channels: []int{1, 9, 30}},
				{FromSlot: 137, Channels: []int{9, 12}},
				{FromSlot: 1000, Channels: []int{2, 9, 12, 31}},
			})
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"Symmetric(DynamicMultiPhase)": func(t *testing.T) schedule.Schedule {
			d, err := schedule.NewDynamic(32, []schedule.Phase{
				{FromSlot: 0, Channels: []int{1, 9, 30}},
				{FromSlot: 137, Channels: []int{9, 12}},
			})
			if err != nil {
				t.Fatal(err)
			}
			return schedule.NewSymmetric(d)
		},
		"Compiled(General)": func(t *testing.T) schedule.Schedule {
			g, err := schedule.NewGeneral(16, []int{2, 7, 11})
			if err != nil {
				t.Fatal(err)
			}
			c := schedule.Compile(g)
			if _, ok := c.(*schedule.Compiled); !ok {
				t.Fatalf("Compile did not materialize a table for period %d", g.Period())
			}
			return c
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			schedtest.Conform(t, build(t))
		})
	}
}

// TestCompileRefusals pins the compile fallback rules: eventually
// periodic schedules and periods beyond the cap must pass through
// unchanged.
func TestCompileRefusals(t *testing.T) {
	d, err := schedule.NewDynamic(32, []schedule.Phase{
		{FromSlot: 0, Channels: []int{1, 9}},
		{FromSlot: 50, Channels: []int{9, 12}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := schedule.Compile(d); c != schedule.Schedule(d) {
		t.Fatalf("Compile materialized a multi-phase Dynamic (transitional prefix would be lost)")
	}
	if c := schedule.Compile(schedule.NewSymmetric(d)); c.(*schedule.Symmetric) == nil || c == nil {
		t.Fatalf("unexpected nil")
	} else if _, ok := c.(*schedule.Compiled); ok {
		t.Fatalf("Compile materialized a wrapper over a multi-phase Dynamic")
	}
	g, err := schedule.NewGeneral(64, []int{3, 17, 40, 63})
	if err != nil {
		t.Fatal(err)
	}
	if c := schedule.CompileCap(g, g.Period()-1); c != schedule.Schedule(g) {
		t.Fatalf("CompileCap ignored the size cap")
	}
	// Compile is idempotent: compiling a compiled schedule is a no-op.
	c1 := schedule.Compile(g)
	if c2 := schedule.Compile(c1); c2 != c1 {
		t.Fatalf("Compile of a Compiled schedule rebuilt the table")
	}
}
