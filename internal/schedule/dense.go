package schedule

// The dense-id variant of the block layer: the simulator remaps raw
// channel values to dense ids 0 … count−1 once per engine (from the
// union of every agent's hop set), and the hot loops then consume
// int32 id blocks — flat occupancy indexing with no per-slot value→id
// translation, and half the buffer bytes of []int. The raw channel
// value is recovered from the id→value table only at the rare
// candidate meeting.

// DenseTable is one full period of a compiled schedule remapped to
// dense int32 channel ids. Like Compiled it is immutable after
// construction and safe for concurrent readers.
type DenseTable struct {
	table []int32
	// prefix marks a table built by DensePrefix: it covers only slots
	// [0, len(table)), not a full period, so wraparound reads are a
	// caller bug rather than a cheap modulo.
	prefix bool
}

// CompileDense remaps a compiled schedule's hop table through id,
// yielding a dense-id table. ok is false when s carries no materialized
// hop table (CompileCap fell back to the schedule's own evaluation —
// eventual period, period over the cap, or failed verification); such
// schedules keep the FillBlockDense fallback path. id is applied once
// per table slot at build time, so a schedule that violates its
// AllChannels contract still fails loudly (the id func panics), just at
// construction instead of mid-scan.
func CompileDense(s Schedule, id func(ch int) int32) (d *DenseTable, ok bool) {
	c, isCompiled := s.(*Compiled)
	if !isCompiled {
		return nil, false
	}
	out := make([]int32, len(c.table))
	for i, ch := range c.table {
		out[i] = id(ch)
	}
	return &DenseTable{table: out}, true
}

// DensePrefix materializes dense ids for schedule-local slots
// [0, slots) of an arbitrary schedule — the horizon-bounded complement
// of CompileDense for schedules whose period is too long to compile.
// Evaluation cost is paid once at build time; every later FillBlock is
// a straight copy. The caller owns the memory trade (4 bytes per slot)
// and must not read at or past slots.
func DensePrefix(s Schedule, slots int, id func(ch int) int32, scratch []int) *DenseTable {
	out := make([]int32, slots)
	for base := 0; base < slots; base += len(scratch) {
		m := min(len(scratch), slots-base)
		raw := scratch[:m]
		FillBlock(s, raw, base)
		for i, ch := range raw {
			out[base+i] = id(ch)
		}
	}
	return &DenseTable{table: out, prefix: true}
}

// Len returns the slots covered by the table: one period for
// CompileDense tables, the materialized prefix for DensePrefix ones.
func (d *DenseTable) Len() int { return len(d.table) }

// FillBlock fills dst[i] with the dense id of slot start+i: a wrapped
// copy of the period table, mirroring Compiled.ChannelBlock. Prefix
// tables do not wrap; reading past their coverage panics.
func (d *DenseTable) FillBlock(dst []int32, start int) {
	CheckSlot(start)
	if d.prefix {
		copy(dst, d.table[start:start+len(dst)])
		return
	}
	p := len(d.table)
	off := start % p
	for len(dst) > 0 {
		n := copy(dst, d.table[off:])
		dst = dst[n:]
		off = 0
	}
}

// FillBlockDense fills dst[i] = id(s.Channel(start+i)): straight copies
// from d when the schedule has a dense table, otherwise a FillBlock into
// scratch followed by a remap pass (scratch must hold at least len(dst)
// ints). It is the dense counterpart of FillBlock and the single entry
// point the simulator's dense hot loops use.
func FillBlockDense(s Schedule, d *DenseTable, dst []int32, start int, id func(ch int) int32, scratch []int) {
	if len(dst) == 0 {
		return
	}
	CheckSlot(start)
	if d != nil {
		d.FillBlock(dst, start)
		return
	}
	raw := scratch[:len(dst)]
	FillBlock(s, raw, start)
	for i, ch := range raw {
		dst[i] = id(ch)
	}
}
