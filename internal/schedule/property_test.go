package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestGeneralPropertyInvariants drives the Theorem-3 constructor with
// randomized universes and channel sets and checks the structural
// invariants every schedule must satisfy: channels stay inside the set,
// the period is honored, and construction is deterministic in the set
// (anonymity).
func TestGeneralPropertyInvariants(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%120) + 2
		k := int(kRaw%8) + 1
		if k > n {
			k = n
		}
		set := make(map[int]bool)
		for len(set) < k {
			set[1+rng.Intn(n)] = true
		}
		channels := make([]int, 0, k)
		for c := range set {
			channels = append(channels, c)
		}
		g, err := NewGeneral(n, channels)
		if err != nil {
			return false
		}
		// Shuffled input must yield the identical schedule.
		shuffled := append([]int(nil), channels...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		g2, err := NewGeneral(n, shuffled)
		if err != nil {
			return false
		}
		period := g.Period()
		for trial := 0; trial < 50; trial++ {
			s := rng.Intn(3 * period)
			ch := g.Channel(s)
			if !set[ch] {
				return false
			}
			if g.Channel(s+period) != ch {
				return false
			}
			if g2.Channel(s) != ch {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSymmetricPropertyInvariants mirrors the invariants through the
// §3.2 wrapper, additionally checking the pattern structure: the wrapped
// schedule hops min(S) on pattern-zero positions.
func TestSymmetricPropertyInvariants(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 2
		k := int(kRaw%5) + 1
		if k > n {
			k = n
		}
		set := make(map[int]bool)
		for len(set) < k {
			set[1+rng.Intn(n)] = true
		}
		channels := make([]int, 0, k)
		minCh := n + 1
		for c := range set {
			channels = append(channels, c)
			if c < minCh {
				minCh = c
			}
		}
		w, err := NewAsync(n, channels)
		if err != nil {
			return false
		}
		if w.MinChannel() != minCh {
			return false
		}
		zeroPos := map[int]bool{0: true, 2: true, 3: true} // pattern 010011
		for trial := 0; trial < 60; trial++ {
			s := rng.Intn(2 * w.Period())
			ch := w.Channel(s)
			if !set[ch] {
				return false
			}
			if zeroPos[s%6] && ch != minCh {
				return false
			}
			if w.Channel(s+w.Period()) != ch {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPairRendezvousProperty draws random overlapping pairs at random
// universes and random offsets and asserts rendezvous within the
// Theorem-3 bound — a randomized companion to the exhaustive small-n
// tests.
func TestPairRendezvousProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(2000)
		shared := 1 + rng.Intn(n)
		mk := func() []int {
			k := 1 + rng.Intn(6)
			set := map[int]bool{shared: true}
			for len(set) < k {
				set[1+rng.Intn(n)] = true
			}
			out := make([]int, 0, k)
			for c := range set {
				out = append(out, c)
			}
			return out
		}
		a, b := mk(), mk()
		ga, err := NewGeneral(n, a)
		if err != nil {
			return false
		}
		gb, err := NewGeneral(n, b)
		if err != nil {
			return false
		}
		bound := ga.RendezvousBound(len(b))
		delta := rng.Intn(2 * ga.Period())
		_, ok := ttr(ga, gb, delta, bound+1)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
