package schedule

import (
	"math/rand"
	"testing"
)

// TestSymmetricConstantTimeRendezvous is the §3.2 headline: two agents
// with IDENTICAL sets meet within 6 slots — one traversal of the 010011
// pattern — regardless of wake offset, set, or universe size.
func TestSymmetricConstantTimeRendezvous(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{2, 8, 64, 1024, 1 << 16} {
		for trial := 0; trial < 10; trial++ {
			k := 1 + rng.Intn(min(8, n))
			set := randomSetWith(rng, n, k, 1+rng.Intn(n))
			w, err := NewAsync(n, set)
			if err != nil {
				t.Fatal(err)
			}
			for _, delta := range []int{0, 1, 2, 3, 5, 6, 7, 11, 12, 13, 100, 12345} {
				got, ok := ttr(w, w, delta, 7)
				if !ok {
					t.Fatalf("n=%d set %v: symmetric rendezvous missed at offset %d", n, set, delta)
				}
				if got > 6 {
					t.Fatalf("n=%d set %v offset %d: TTR %d > 6", n, set, delta, got)
				}
			}
		}
	}
}

// TestSymmetricMeetsAtMinChannel checks the §3.2 mechanism: identical
// sets rendezvous specifically at min(S).
func TestSymmetricMeetsAtMinChannel(t *testing.T) {
	w, err := NewAsync(32, []int{9, 17, 4, 28})
	if err != nil {
		t.Fatal(err)
	}
	if w.MinChannel() != 4 {
		t.Fatalf("MinChannel = %d, want 4", w.MinChannel())
	}
	for delta := 0; delta < 48; delta++ {
		met := false
		for s := 0; s < 7 && !met; s++ {
			if w.Channel(s+delta) == w.Channel(s) && w.Channel(s) == 4 {
				met = true
			}
		}
		if !met {
			t.Fatalf("offset %d: no (min,min) meeting within 6 slots", delta)
		}
	}
}

// TestSymmetricPreservesAsymmetricGuarantee verifies the ≤12× blowup:
// wrapped schedules of overlapping-but-different sets still meet within
// 12·(inner bound) + 2 blocks.
func TestSymmetricPreservesAsymmetricGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const n = 64
	for trial := 0; trial < 30; trial++ {
		shared := 1 + rng.Intn(n)
		a := randomSetWith(rng, n, 1+rng.Intn(6), shared)
		b := randomSetWith(rng, n, 1+rng.Intn(6), shared)
		wa, err := NewAsync(n, a)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := NewAsync(n, b)
		if err != nil {
			t.Fatal(err)
		}
		inner := wa.Inner().(*General)
		bound := SymmetricBlockLen*inner.RendezvousBound(len(b)) + 2*SymmetricBlockLen
		delta := rng.Intn(wa.Period())
		if _, ok := ttr(wa, wb, delta, bound); !ok {
			t.Fatalf("sets %v/%v offset %d: no rendezvous within %d slots", a, b, delta, bound)
		}
	}
}

// TestSymmetricExhaustiveTinyUniverse sweeps every subset pair and every
// offset for n = 3 under the wrapper, mirroring the Theorem-3 exhaustive
// test but through §3.2.
func TestSymmetricExhaustiveTinyUniverse(t *testing.T) {
	const n = 3
	subsets := subsetsOf(n)
	wrapped := make([]*Symmetric, len(subsets))
	for i, s := range subsets {
		w, err := NewAsync(n, s)
		if err != nil {
			t.Fatal(err)
		}
		wrapped[i] = w
	}
	for i, a := range subsets {
		for j, b := range subsets {
			if !intersects(a, b) {
				continue
			}
			inner := wrapped[i].Inner().(*General)
			bound := SymmetricBlockLen*inner.RendezvousBound(len(b)) + 2*SymmetricBlockLen
			for delta := 0; delta < wrapped[i].Period(); delta += 5 {
				if _, ok := ttr(wrapped[i], wrapped[j], delta, bound); !ok {
					t.Fatalf("sets %v/%v: no rendezvous at offset %d", a, b, delta)
				}
			}
		}
	}
}

func TestSymmetricStructure(t *testing.T) {
	inner := NewConstant(5)
	w := NewSymmetric(inner)
	if w.Period() != SymmetricBlockLen {
		t.Errorf("Period = %d", w.Period())
	}
	// Pattern for c0 = c1 = 5 is constant 5.
	for s := 0; s < 24; s++ {
		if w.Channel(s) != 5 {
			t.Fatalf("Channel(%d) = %d", s, w.Channel(s))
		}
	}
	cyc, err := NewCyclic([]int{2, 9})
	if err != nil {
		t.Fatal(err)
	}
	w = NewSymmetric(cyc)
	// Inner slot 0 calls for channel 2 → block (2,2,2,2,2,2)×2 with c0=2;
	// inner slot 1 calls for 9 → block (2,9,2,2,9,9)×2.
	want := []int{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 9, 2, 2, 9, 9, 2, 9, 2, 2, 9, 9}
	for s, c := range want {
		if got := w.Channel(s); got != c {
			t.Fatalf("Channel(%d) = %d, want %d", s, got, c)
		}
	}
}
