// Package schedule defines the channel-hopping schedule abstraction used
// throughout this repository and implements the paper's primary
// contribution: the Theorem-3 general n-schedule with asynchronous
// rendezvous time O(|A|·|B|·log log n), plus the §3.2 wrapper that makes
// symmetric rendezvous O(1).
//
// A Schedule is a total function from slot numbers to channels. All
// schedules here are cyclic; Period reports the cycle length so tests
// and the simulator can bound their searches.
package schedule

import (
	"fmt"
	"sort"
)

// Schedule is a deterministic channel-hopping schedule σ : N → S ⊆ [n].
// Implementations must be pure: Channel(t) depends only on t (never on
// call history), so schedules are safe for concurrent readers.
//
// Schedules are defined on t ≥ 0 only; every implementation in this
// repository panics on a negative slot via CheckSlot. Implementations
// may additionally provide the optional fast paths ChannelBlock
// (BlockEvaluator) and AllChannels; callers reach them through
// FillBlock and type assertions, never by extending this interface.
type Schedule interface {
	// Channel returns the 1-based channel hopped at slot t. It panics
	// if t < 0 (see CheckSlot).
	Channel(t int) int
	// Period returns a positive p with Channel(t+p) = Channel(t) for all t.
	Period() int
	// Channels returns a copy of the channel set the schedule draws
	// from, sorted ascending without duplicates (the conformance suite
	// in internal/schedtest enforces this; set comparisons throughout
	// the repository rely on it).
	Channels() []int
}

// Constant hops a single channel forever. It is the degenerate epoch
// schedule of Theorem 3 and the trivial schedule for |S| = 1.
type Constant struct {
	ch int
}

// NewConstant returns the schedule that hops ch at every slot.
func NewConstant(ch int) Constant { return Constant{ch: ch} }

// Channel implements Schedule.
func (c Constant) Channel(t int) int {
	CheckSlot(t)
	return c.ch
}

// ChannelBlock implements BlockEvaluator.
func (c Constant) ChannelBlock(dst []int, start int) {
	CheckSlot(start)
	for i := range dst {
		dst[i] = c.ch
	}
}

// Period implements Schedule.
func (c Constant) Period() int { return 1 }

// Channels implements Schedule.
func (c Constant) Channels() []int { return []int{c.ch} }

// Cyclic replays an explicit finite sequence of channels forever.
type Cyclic struct {
	seq   []int
	chans []int
}

// NewCyclic returns a schedule cycling through seq. The sequence must be
// non-empty; it is copied.
func NewCyclic(seq []int) (*Cyclic, error) {
	if len(seq) == 0 {
		return nil, fmt.Errorf("schedule: empty cycle")
	}
	cp := make([]int, len(seq))
	copy(cp, seq)
	return &Cyclic{seq: cp, chans: distinctSorted(cp)}, nil
}

// Channel implements Schedule.
func (c *Cyclic) Channel(t int) int {
	CheckSlot(t)
	return c.seq[t%len(c.seq)]
}

// ChannelBlock implements BlockEvaluator: a wrapped copy of the cycle.
func (c *Cyclic) ChannelBlock(dst []int, start int) {
	CheckSlot(start)
	off := start % len(c.seq)
	for len(dst) > 0 {
		n := copy(dst, c.seq[off:])
		dst = dst[n:]
		off = 0
	}
}

// Period implements Schedule.
func (c *Cyclic) Period() int { return len(c.seq) }

// Channels implements Schedule.
func (c *Cyclic) Channels() []int {
	out := make([]int, len(c.chans))
	copy(out, c.chans)
	return out
}

// distinctSorted returns the sorted distinct values of xs.
func distinctSorted(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// ValidateChannels checks that channels is a non-empty set of distinct
// values within [1, n] and returns the sorted set.
func ValidateChannels(n int, channels []int) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("schedule: universe size %d must be positive", n)
	}
	if len(channels) == 0 {
		return nil, fmt.Errorf("schedule: empty channel set")
	}
	sorted := distinctSorted(channels)
	if len(sorted) != len(channels) {
		return nil, fmt.Errorf("schedule: duplicate channels in %v", channels)
	}
	if sorted[0] < 1 || sorted[len(sorted)-1] > n {
		return nil, fmt.Errorf("schedule: channels %v outside [1,%d]", channels, n)
	}
	return sorted, nil
}
