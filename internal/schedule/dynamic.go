package schedule

import (
	"fmt"
	"sort"
)

// Phase is one segment of a Dynamic schedule: from slot FromSlot
// (inclusive, in the agent's local clock) the agent has access to
// exactly Channels.
type Phase struct {
	FromSlot int
	Channels []int
}

// Dynamic models spectrum dynamics — the motivating reality of cognitive
// radio: an incumbent appears and a channel set shrinks, or sensing
// frees new channels. Each phase runs the flagship construction for its
// channel set, restarted at the phase boundary; every guarantee holds
// within a phase (rendezvous clocks restart at phase boundaries, which
// is unavoidable: schedules may depend only on the current set).
//
// Period reports the steady-state period of the final phase; slots
// before the final phase are transitional and do not repeat. Offset
// sweeps should therefore treat Dynamic schedules with explicit
// horizons.
type Dynamic struct {
	phases []Phase
	scheds []Schedule
}

var _ Schedule = (*Dynamic)(nil)

// NewDynamic builds a dynamic schedule over universe [n]. Phases must be
// non-empty, start at slot 0, and have strictly increasing FromSlot.
func NewDynamic(n int, phases []Phase) (*Dynamic, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("schedule: dynamic needs at least one phase")
	}
	if phases[0].FromSlot != 0 {
		return nil, fmt.Errorf("schedule: first phase must start at slot 0, got %d", phases[0].FromSlot)
	}
	d := &Dynamic{}
	for i, ph := range phases {
		if i > 0 && ph.FromSlot <= phases[i-1].FromSlot {
			return nil, fmt.Errorf("schedule: phase %d start %d not after %d", i, ph.FromSlot, phases[i-1].FromSlot)
		}
		s, err := NewAsync(n, ph.Channels)
		if err != nil {
			return nil, fmt.Errorf("schedule: phase %d: %w", i, err)
		}
		cp := Phase{FromSlot: ph.FromSlot, Channels: append([]int(nil), ph.Channels...)}
		sort.Ints(cp.Channels)
		d.phases = append(d.phases, cp)
		d.scheds = append(d.scheds, s)
	}
	return d, nil
}

// phaseAt returns the index of the phase covering local slot t.
func (d *Dynamic) phaseAt(t int) int {
	i := sort.Search(len(d.phases), func(i int) bool { return d.phases[i].FromSlot > t })
	return i - 1
}

// Channel implements Schedule.
func (d *Dynamic) Channel(t int) int {
	CheckSlot(t)
	i := d.phaseAt(t)
	return d.scheds[i].Channel(t - d.phases[i].FromSlot)
}

// ChannelBlock implements BlockEvaluator: each phase's schedule fills
// its own span of the block (on the phase-local clock), chunked at
// phase boundaries.
func (d *Dynamic) ChannelBlock(dst []int, start int) {
	CheckSlot(start)
	for filled := 0; filled < len(dst); {
		t := start + filled
		i := d.phaseAt(t)
		n := len(dst) - filled
		if i+1 < len(d.phases) {
			n = min(n, d.phases[i+1].FromSlot-t)
		}
		FillBlock(d.scheds[i], dst[filled:filled+n], t-d.phases[i].FromSlot)
		filled += n
	}
}

// Period implements Schedule in the steady-state sense documented on
// Dynamic.
func (d *Dynamic) Period() int { return d.scheds[len(d.scheds)-1].Period() }

// PeriodIsEventual implements EventualPeriod: with more than one phase
// the transitional prefix does not repeat, so the advertised period is
// only valid from the final phase onward and the schedule must not be
// compiled into a one-period table.
func (d *Dynamic) PeriodIsEventual() bool { return len(d.phases) > 1 }

// Channels implements Schedule: the channel set of the final phase.
func (d *Dynamic) Channels() []int {
	return append([]int(nil), d.phases[len(d.phases)-1].Channels...)
}

// ChannelsAt returns the channel set in effect at local slot t.
func (d *Dynamic) ChannelsAt(t int) []int {
	return append([]int(nil), d.phases[d.phaseAt(t)].Channels...)
}

// AllChannels returns the union of every phase's channel set — the
// complete set of channels this schedule may ever hop. Channels()
// deliberately reports only the steady-state (final) phase, so
// overlap tests that must be sound across the whole timeline (the
// simulator's pair pruning) consult this instead.
func (d *Dynamic) AllChannels() []int {
	seen := map[int]bool{}
	var out []int
	for _, ph := range d.phases {
		for _, c := range ph.Channels {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Ints(out)
	return out
}

// NumPhases returns the number of phases.
func (d *Dynamic) NumPhases() int { return len(d.phases) }
