package schedule

import "sync"

// The §3.2 reduction: any schedule Σ that guarantees rendezvous for all
// pairs of sets can be transformed into one that additionally guarantees
// O(1) rendezvous for identical sets, at a 12× cost for everyone else.
//
// When the inner schedule calls for channel c1, the wrapped schedule
// performs the 12-slot block (c0 c1 c0 c0 c1 c1)² with c0 = min(S). The
// bit pattern 010011 satisfies 010011 ◇₀ 010011 — any two rotations
// realize simultaneous (0,0) and (1,1) — so two agents with the same set
// hit (c0, c0) within the first overlapping block (O(1) slots), while
// any rendezvous slot of the inner schedules maps to a (c1, c1) hit
// inside the corresponding overlapping blocks.

// symmetricPattern is the §3.2 access pattern: 0 ⇒ hop min(S), 1 ⇒ hop
// the channel the inner schedule called for.
var symmetricPattern = [6]byte{0, 1, 0, 0, 1, 1}

// SymmetricBlockLen is the length of the wrapped block emitted for each
// inner slot (the 6-slot pattern repeated twice).
const SymmetricBlockLen = 12

// Symmetric wraps an inner schedule with the §3.2 pattern.
type Symmetric struct {
	inner Schedule
	c0    int
}

var _ Schedule = (*Symmetric)(nil)

// NewSymmetric wraps inner with the §3.2 min-channel pattern.
func NewSymmetric(inner Schedule) *Symmetric {
	chans := inner.Channels()
	c0 := chans[0]
	for _, c := range chans[1:] {
		if c < c0 {
			c0 = c
		}
	}
	return &Symmetric{inner: inner, c0: c0}
}

// Channel implements Schedule.
func (s *Symmetric) Channel(t int) int {
	CheckSlot(t)
	if symmetricPattern[t%SymmetricBlockLen%6] == 0 {
		return s.c0
	}
	return s.inner.Channel(t / SymmetricBlockLen)
}

// innerBufPool recycles the wrapper's inner-slot buffers: handing a
// stack array to FillBlock's interface call forces it to the heap, and
// the joint engine calls ChannelBlock once per agent per block — tens
// of thousands of times per fleet run.
var innerBufPool = sync.Pool{New: func() any { return new([32]int) }}

// ChannelBlock implements BlockEvaluator: the inner schedule is
// evaluated in blocks of its own (one inner slot per 12 outer slots)
// and each inner channel is expanded through the §3.2 pattern, so the
// wrapper adds no per-slot inner calls.
func (s *Symmetric) ChannelBlock(dst []int, start int) {
	CheckSlot(start)
	bp := innerBufPool.Get().(*[32]int)
	defer innerBufPool.Put(bp)
	ibuf := bp[:]
	for filled := 0; filled < len(dst); {
		t := start + filled
		innerStart := t / SymmetricBlockLen
		innerEnd := (start + len(dst) - 1) / SymmetricBlockLen
		m := min(innerEnd-innerStart+1, len(ibuf))
		FillBlock(s.inner, ibuf[:m], innerStart)
		// Expand the m inner slots we have; stop at dst's end.
		for ; filled < len(dst); filled++ {
			t = start + filled
			in := t / SymmetricBlockLen
			if in >= innerStart+m {
				break
			}
			if symmetricPattern[t%SymmetricBlockLen%6] == 0 {
				dst[filled] = s.c0
			} else {
				dst[filled] = ibuf[in-innerStart]
			}
		}
	}
}

// Period implements Schedule.
func (s *Symmetric) Period() int { return SymmetricBlockLen * s.inner.Period() }

// Channels implements Schedule.
func (s *Symmetric) Channels() []int { return s.inner.Channels() }

// AllChannels propagates the complete hop set of wrapped schedules
// whose channel availability varies over time (see Dynamic).
func (s *Symmetric) AllChannels() []int { return AllChannels(s.inner) }

// PeriodIsEventual propagates the EventualPeriod marker of wrapped
// schedules whose period is only eventually valid (see Dynamic).
func (s *Symmetric) PeriodIsEventual() bool { return IsEventuallyPeriodic(s.inner) }

// MinChannel returns c0 = min(S), the channel symmetric pairs meet on.
func (s *Symmetric) MinChannel() int { return s.c0 }

// Inner returns the wrapped schedule.
func (s *Symmetric) Inner() Schedule { return s.inner }
