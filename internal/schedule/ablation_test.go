package schedule

import (
	"testing"

	"rendezvous/internal/bitstring"
	"rendezvous/internal/catalan"
	"rendezvous/internal/knuth"
	"rendezvous/internal/pairsched"
	"rendezvous/internal/ramsey"
)

// Ablation tests: remove one ingredient of the construction and verify
// the failure mode the paper designs against. DESIGN.md's experiment
// index points here for the "why is each piece needed" story.

// TestAblationNaiveSymmetricPattern replaces the §3.2 pattern 010011
// with the naive alternation 01. The naive pattern's rotation by one is
// its own complement, so two identical agents at odd offset NEVER hop
// their min channel simultaneously — symmetric O(1) rendezvous breaks.
func TestAblationNaiveSymmetricPattern(t *testing.T) {
	naive := bitstring.MustParse("01")
	if bitstring.DiamondZero(naive, naive.Rotate(1)) {
		t.Fatal("01 vs its rotation should fail ♦₀ (it is its own complement)")
	}
	// The paper's pattern survives every rotation.
	paper := bitstring.MustParse("010011")
	if !bitstring.CircledZero(paper, paper) {
		t.Fatal("010011 must satisfy ◇₀ against itself")
	}

	// End-to-end: a naive wrapper meets only when the 01 phases align.
	inner := NewConstant(5)
	naiveChannel := func(c0 int, t int) int {
		if t%2 == 0 {
			return c0
		}
		return inner.Channel(t / 2)
	}
	// Identical sets {3,5}, c0 = 3, offset 1: slots where A hops 3 are
	// even+1 = odd for B — never simultaneous; they do meet on c1 = 5
	// at the complementary slots, but only because the inner schedule is
	// constant. With c1 varying, odd offsets lose both alignments half
	// the time; the paper's 010011 pattern rules this out structurally.
	meetOnMin := false
	for s := 0; s < 100; s++ {
		if naiveChannel(3, s+1) == 3 && naiveChannel(3, s) == 3 {
			meetOnMin = true
		}
	}
	if meetOnMin {
		t.Fatal("naive pattern unexpectedly aligned (0,0) at odd offset")
	}
}

// TestAblationConstantColoring removes the 2-Ramsey coloring: all pairs
// share one word. Path-forming pairs then need the lockstep tuple (1,0),
// which identical words at aligned offset can never realize — the exact
// failure Lemma 2 exists to prevent.
func TestAblationConstantColoring(t *testing.T) {
	n := 16
	word, err := pairsched.WordForColor(0, n) // everyone uses color 0
	if err != nil {
		t.Fatal(err)
	}
	// Pair A = {1,2}, B = {2,3}: shared channel 2 is A's max, B's min.
	// Rendezvous at aligned offset needs a slot with (bitA, bitB) = (1,0);
	// identical words make bitA = bitB always.
	for s := 0; s < 10*word.Len(); s++ {
		bit := word.Bit(s % word.Len())
		chA := 1
		if bit == 1 {
			chA = 2
		}
		chB := 2
		if bit == 1 {
			chB = 3
		}
		if chA == chB {
			t.Fatalf("constant coloring should never rendezvous a path pair at offset 0 (slot %d)", s)
		}
	}
	// Sanity: with the real coloring the same pair does meet at offset 0.
	pa, err := pairsched.New(n, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := pairsched.New(n, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	met := false
	for s := 0; s < pa.Period() && !met; s++ {
		met = pa.Channel(s) == pb.Channel(s)
	}
	if !met {
		t.Fatal("real coloring failed on the path pair")
	}
}

// TestAblationMinimalCatalanWord shows the failure mode 2-maximality
// guards against, on the smallest possible word: 10 is balanced and
// strictly Catalan, yet its rotation by one is its own complement, so a
// pair playing it never realizes (0,0)/(1,1) at odd offsets. The full
// R(x) images avoid this because a 2-maximal string can never equal a
// rotated complement of a (1-minimal) strictly Catalan string.
func TestAblationMinimalCatalanWord(t *testing.T) {
	w := bitstring.MustParse("10")
	if !w.IsStrictlyCatalan() {
		t.Fatal("precondition: 10 is strictly Catalan")
	}
	if bitstring.DiamondZero(w, w.Rotate(1)) {
		t.Fatal("10 vs rotation must fail ♦₀ — the hazard M removes")
	}
	// The shipped words are immune at every tested universe size.
	for _, n := range []int{16, 1 << 12, 1 << 20} {
		width := pairsched.ColorWidth(n)
		for c := 0; c < ramsey.PaletteSize(n); c++ {
			x := bitstring.MustFromUint(uint64(c), width)
			r := catalan.Encode(x)
			for i := 0; i < r.Len(); i++ {
				if !bitstring.DiamondZero(r, r.Rotate(i)) {
					t.Fatalf("n=%d color %d rot %d: shipped word failed ♦₀", n, c, i)
				}
			}
		}
	}
}

// TestAblationWithoutMStillSoundHere is a characterization test for an
// honest reproduction finding: dropping M (the 2-maximality insert)
// does NOT produce an observable failure for any palette word at the
// universe sizes below — the U-stage padding already breaks all
// complement-rotation collisions. M remains in the construction because
// the paper's proof needs it in general; this test documents that its
// necessity is not visible at practical sizes (see DESIGN.md).
func TestAblationWithoutMStillSoundHere(t *testing.T) {
	for _, n := range []int{16, 256, 1 << 16} {
		width := pairsched.ColorWidth(n)
		var words []bitstring.String
		for c := 0; c < ramsey.PaletteSize(n); c++ {
			x := bitstring.MustFromUint(uint64(c), width)
			words = append(words, bitstring.Concat(
				bitstring.Ones(1), catalan.Catalanize(knuth.Encode(x)), bitstring.Zeros(1)))
		}
		for xi, wx := range words {
			for yi, wy := range words {
				for i := 0; i < wx.Len(); i++ {
					if !bitstring.DiamondZero(wx, wy.Rotate(i)) {
						t.Fatalf("n=%d: ◇₀ failure without M (colors %d,%d): update DESIGN.md — M is load-bearing here", n, xi, yi)
					}
					if xi != yi && !bitstring.DiamondOne(wx, wy.Rotate(i)) {
						t.Fatalf("n=%d: ◇₁ failure without M (colors %d,%d)", n, xi, yi)
					}
				}
			}
		}
	}
}
