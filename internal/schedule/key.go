package schedule

import (
	"strconv"
)

// Cache keys: a schedule's identity as a pure function.
//
// Every schedule in this repository is a deterministic function of its
// construction parameters, so two values built from equal parameters
// emit identical hop sequences forever. CacheKey canonicalizes those
// parameters into a short string, which is what lets the shared table
// cache (internal/tablecache) recognize "the same schedule" across
// engines, runs, and processes-worth of sweep jobs and hand every
// caller one compiled table instead of rebuilding it per engine.
//
// The contract is strict: two schedules may share a key ONLY if their
// Channel functions are extensionally equal (same channel at every
// slot). Schedules that cannot promise that — Dynamic timelines, the
// beacon protocols (whose permutations depend on an external source),
// any wrapper over an unkeyed schedule — simply do not implement the
// interface, and KeyOf reports ok=false; such schedules are still fully
// usable, they just never share cached tables.

// CacheKeyer is the optional identity contract next to Schedule
// (analogous to BlockEvaluator): CacheKey returns a canonical encoding
// of the schedule's construction parameters, with ok=false when the
// schedule cannot guarantee extensional equality for equal keys.
type CacheKeyer interface {
	CacheKey() (key string, ok bool)
}

// KeyOf returns the schedule's cache key when it implements CacheKeyer
// (directly or by delegation) and ok=false otherwise. The key spaces of
// distinct schedule types never collide: every implementation prefixes
// its type tag.
func KeyOf(s Schedule) (string, bool) {
	k, ok := s.(CacheKeyer)
	if !ok {
		return "", false
	}
	return k.CacheKey()
}

// KeyInts renders an int slice into a compact canonical form for cache
// keys ("|3.90.512"); exported so schedule implementations outside this
// package (internal/baselines) build keys the same way.
func KeyInts(xs []int) string {
	b := make([]byte, 0, 4*len(xs)+1)
	b = append(b, '|')
	for i, x := range xs {
		if i > 0 {
			b = append(b, '.')
		}
		b = strconv.AppendInt(b, int64(x), 10)
	}
	return string(b)
}

// CacheKey implements CacheKeyer: a Constant is its channel.
func (c Constant) CacheKey() (string, bool) {
	return "const|" + strconv.Itoa(c.ch), true
}

// CacheKey implements CacheKeyer. The full sequence identifies a
// Cyclic, but sequences can be long, so the key carries its length and
// an FNV-1a fingerprint instead of the literal values.
func (c *Cyclic) CacheKey() (string, bool) {
	return "cyc|" + strconv.Itoa(len(c.seq)) + "|" + strconv.FormatUint(fnvInts(c.seq), 36), true
}

// CacheKey implements CacheKeyer: a General schedule is determined by
// its universe and channel set (primes and words are derived).
func (g *General) CacheKey() (string, bool) {
	return "gen|" + strconv.Itoa(g.n) + KeyInts(g.channels), true
}

// CacheKey implements CacheKeyer by delegation: the §3.2 wrapper is a
// pure function of its inner schedule (c0 is derived), so it is keyed
// iff the inner schedule is.
func (s *Symmetric) CacheKey() (string, bool) {
	inner, ok := KeyOf(s.inner)
	if !ok {
		return "", false
	}
	return "sym(" + inner + ")", true
}

// CacheKey implements CacheKeyer by delegation: a compiled table is a
// verified equivalent of its inner schedule, so it shares the inner
// key — which is exactly what lets a dense-table lookup hit whether the
// compiled wrapper came from the cache or was built locally.
func (c *Compiled) CacheKey() (string, bool) {
	return KeyOf(c.inner)
}

// fnvInts is FNV-1a over the little-endian bytes of each value — a
// stable 64-bit fingerprint for int-slice key components.
func fnvInts(xs []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, x := range xs {
		v := uint64(x)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}
