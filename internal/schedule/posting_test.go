package schedule

import (
	"math/bits"
	"testing"
)

// gather drives one full slot through the two-pass protocol: Count
// every (channel, member) pair in order, Place, then Put in the same
// order. assign[i] is member i's channel, with -1 meaning absent.
func gather(p *PostingIndex, assign []int32) {
	for _, ch := range assign {
		if ch >= 0 {
			p.Count(ch)
		}
	}
	p.Place()
	for m, ch := range assign {
		if ch >= 0 {
			p.Put(ch, int32(m))
		}
	}
}

// touched decodes ChannelMask into an ascending channel list.
func touched(p *PostingIndex) []int32 {
	var out []int32
	for wi, b := range p.ChannelMask() {
		for ; b != 0; b &= b - 1 {
			out = append(out, int32(wi<<6+bits.TrailingZeros64(b)))
		}
	}
	return out
}

func wantGroups(t *testing.T, p *PostingIndex, want map[int32][]int32) {
	t.Helper()
	tc := touched(p)
	if len(tc) != len(want) {
		t.Fatalf("touched channels %v, want those of %v", tc, want)
	}
	for _, ch := range tc {
		ms, ok := want[ch]
		if !ok {
			t.Fatalf("unexpected touched channel %d (want %v)", ch, want)
		}
		got := p.Group(ch)
		if len(got) != len(ms) {
			t.Fatalf("ch %d: got %v want %v", ch, got, ms)
		}
		for i := range ms {
			if got[i] != ms[i] {
				t.Fatalf("ch %d: got %v want %v", ch, got, ms)
			}
		}
	}
}

func TestPostingIndexRoundTrip(t *testing.T) {
	p := NewPostingIndex(4, 130)
	if got := p.WordsPerSet(); got != 3 {
		t.Fatalf("WordsPerSet() = %d, want 3 for 130 members", got)
	}
	// Channel assignment spanning member word boundaries, visited in
	// member order as the simulator does: groups must come back in that
	// order.
	assign := make([]int32, 130)
	for i := range assign {
		assign[i] = -1
	}
	for _, m := range []int{0, 63, 64, 65, 127, 128, 129} {
		assign[m] = 0
	}
	assign[5] = 2
	assign[66] = 3
	gather(p, assign)
	wantGroups(t, p, map[int32][]int32{
		0: {0, 63, 64, 65, 127, 128, 129},
		2: {5},
		3: {66},
	})
}

// TestPostingIndexResetSlot pins slot reuse: after ResetSlot the index
// accepts a fresh gather whose groups show no trace of the previous
// slot, including on channels only the previous slot touched.
func TestPostingIndexResetSlot(t *testing.T) {
	p := NewPostingIndex(3, 200)
	gather(p, []int32{0, 0, 1, -1, 0})
	wantGroups(t, p, map[int32][]int32{0: {0, 1, 4}, 1: {2}})
	p.ResetSlot()
	if tc := touched(p); len(tc) != 0 {
		t.Fatalf("touched channels after ResetSlot: %v", tc)
	}
	gather(p, []int32{2, -1, 2})
	wantGroups(t, p, map[int32][]int32{2: {0, 2}})
	p.ResetSlot()
	// A slot may be empty; the protocol must still cycle.
	gather(p, []int32{-1, -1, -1})
	if tc := touched(p); len(tc) != 0 {
		t.Fatalf("empty slot touched channels: %v", tc)
	}
}

// TestPostingIndexMaskBoundary pins the channel mask across its own
// word boundary: channels 63, 64, and 127 in a 130-channel universe
// must land in the right mask words and group correctly.
func TestPostingIndexMaskBoundary(t *testing.T) {
	p := NewPostingIndex(130, 6)
	gather(p, []int32{63, 64, 127, 63, 129, 0})
	wantGroups(t, p, map[int32][]int32{
		0:   {5},
		63:  {0, 3},
		64:  {1},
		127: {2},
		129: {4},
	})
	p.ResetSlot()
	if tc := touched(p); len(tc) != 0 {
		t.Fatalf("touched channels after ResetSlot: %v", tc)
	}
}

// TestPostingIndexTinyUniverse covers the wpm floor: zero members
// still reports one word per set so bitset consumers never size an
// empty buffer.
func TestPostingIndexTinyUniverse(t *testing.T) {
	p := NewPostingIndex(1, 0)
	if p.WordsPerSet() != 1 {
		t.Fatalf("WordsPerSet() = %d, want floor of 1", p.WordsPerSet())
	}
	gather(p, nil)
	if tc := touched(p); len(tc) != 0 {
		t.Fatalf("empty universe touched channels: %v", tc)
	}
}
