package schedule

import (
	"math/rand"
	"testing"
)

// subsetsOf enumerates all non-empty subsets of {1..n} as sorted slices.
func subsetsOf(n int) [][]int {
	var out [][]int
	for mask := 1; mask < 1<<uint(n); mask++ {
		var s []int
		for c := 1; c <= n; c++ {
			if mask>>(uint(c)-1)&1 == 1 {
				s = append(s, c)
			}
		}
		out = append(out, s)
	}
	return out
}

func intersects(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// TestGeneralRendezvousExhaustiveN4 is the core Theorem-3 correctness
// test: for n = 4, EVERY pair of overlapping subsets and EVERY wake
// offset (offsets matter only modulo the earlier agent's period) meets
// within the analytical bound.
func TestGeneralRendezvousExhaustiveN4(t *testing.T) {
	const n = 4
	subsets := subsetsOf(n)
	scheds := make([]*General, len(subsets))
	for i, s := range subsets {
		g, err := NewGeneral(n, s)
		if err != nil {
			t.Fatal(err)
		}
		scheds[i] = g
	}
	for i, a := range subsets {
		ga := scheds[i]
		for j, b := range subsets {
			if !intersects(a, b) {
				continue
			}
			gb := scheds[j]
			bound := ga.RendezvousBound(len(b))
			for delta := 0; delta < ga.Period(); delta++ {
				if _, ok := ttr(ga, gb, delta, bound); !ok {
					t.Fatalf("sets %v and %v: no rendezvous at offset %d within %d slots", a, b, delta, bound)
				}
			}
		}
	}
}

// TestGeneralRendezvousSampledN6 samples offsets for n = 6 where the
// offset space is too large for an exhaustive sweep.
func TestGeneralRendezvousSampledN6(t *testing.T) {
	const n = 6
	rng := rand.New(rand.NewSource(42))
	subsets := subsetsOf(n)
	scheds := make(map[int]*General)
	for i, s := range subsets {
		g, err := NewGeneral(n, s)
		if err != nil {
			t.Fatal(err)
		}
		scheds[i] = g
	}
	for i, a := range subsets {
		ga := scheds[i]
		for j, b := range subsets {
			if !intersects(a, b) {
				continue
			}
			gb := scheds[j]
			bound := ga.RendezvousBound(len(b))
			// Dense small offsets (epoch boundaries are the tricky part)
			// plus random large ones across the period.
			offsets := make([]int, 0, 96)
			for d := 0; d < 64; d++ {
				offsets = append(offsets, d)
			}
			for r := 0; r < 32; r++ {
				offsets = append(offsets, rng.Intn(ga.Period()))
			}
			for _, delta := range offsets {
				if _, ok := ttr(ga, gb, delta, bound); !ok {
					t.Fatalf("sets %v and %v: no rendezvous at offset %d within %d slots", a, b, delta, bound)
				}
			}
		}
	}
}

// TestGeneralRendezvousLargeN spot-checks realistic universes with
// randomized overlapping sets and offsets against the analytical bound.
func TestGeneralRendezvousLargeN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{64, 256, 1024} {
		for trial := 0; trial < 40; trial++ {
			ka := 1 + rng.Intn(8)
			kb := 1 + rng.Intn(8)
			shared := 1 + rng.Intn(n)
			a := randomSetWith(rng, n, ka, shared)
			b := randomSetWith(rng, n, kb, shared)
			ga, err := NewGeneral(n, a)
			if err != nil {
				t.Fatal(err)
			}
			gb, err := NewGeneral(n, b)
			if err != nil {
				t.Fatal(err)
			}
			bound := ga.RendezvousBound(len(b))
			delta := rng.Intn(ga.Period())
			got, ok := ttr(ga, gb, delta, bound)
			if !ok {
				t.Fatalf("n=%d sets %v/%v offset %d: no rendezvous within %d", n, a, b, delta, bound)
			}
			if got > bound {
				t.Fatalf("TTR %d exceeds bound %d", got, bound)
			}
		}
	}
}

// TestGeneralSelfRendezvous verifies that two agents with the SAME set
// still meet under every offset (the helpful pair may come from a single
// agent's two distinct primes).
func TestGeneralSelfRendezvous(t *testing.T) {
	for _, tc := range []struct {
		n   int
		set []int
	}{
		{4, []int{1, 2, 3}},
		{8, []int{2, 5, 7, 8}},
		{16, []int{1, 4, 9, 13, 16}},
	} {
		g, err := NewGeneral(tc.n, tc.set)
		if err != nil {
			t.Fatal(err)
		}
		bound := g.RendezvousBound(len(tc.set))
		for delta := 0; delta < g.Period(); delta += 7 {
			if _, ok := ttr(g, g, delta, bound); !ok {
				t.Fatalf("n=%d %v: self rendezvous failed at offset %d", tc.n, tc.set, delta)
			}
		}
	}
}

func TestGeneralStructure(t *testing.T) {
	g, err := NewGeneral(32, []int{3, 7, 19, 31})
	if err != nil {
		t.Fatal(err)
	}
	p, q := g.Primes()
	if p >= q || p < 4 || q > 12 {
		t.Errorf("Primes() = (%d,%d), want two distinct primes in [4,12]", p, q)
	}
	if g.Period() != p*q*g.EpochLen() {
		t.Errorf("Period = %d, want %d", g.Period(), p*q*g.EpochLen())
	}
	if g.Universe() != 32 {
		t.Errorf("Universe = %d", g.Universe())
	}
	chans := g.Channels()
	if len(chans) != 4 || chans[0] != 3 || chans[3] != 31 {
		t.Errorf("Channels = %v", chans)
	}
	// Every hopped channel must belong to the set.
	inSet := map[int]bool{3: true, 7: true, 19: true, 31: true}
	for s := 0; s < g.Period(); s++ {
		if !inSet[g.Channel(s)] {
			t.Fatalf("Channel(%d) = %d outside the set", s, g.Channel(s))
		}
	}
}

func TestGeneralDeterministic(t *testing.T) {
	a, err := NewGeneral(50, []int{4, 8, 15, 16, 23, 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGeneral(50, []int{42, 23, 16, 15, 8, 4}) // anonymity: order must not matter
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < a.Period(); s++ {
		if a.Channel(s) != b.Channel(s) {
			t.Fatalf("schedules diverge at slot %d", s)
		}
	}
}

func TestGeneralSingleChannel(t *testing.T) {
	g, err := NewGeneral(10, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.Period()+5; s++ {
		if g.Channel(s) != 6 {
			t.Fatalf("Channel(%d) = %d, want 6", s, g.Channel(s))
		}
	}
}

func TestGeneralRejectsBadInput(t *testing.T) {
	if _, err := NewGeneral(4, nil); err == nil {
		t.Error("empty set: expected error")
	}
	if _, err := NewGeneral(4, []int{5}); err == nil {
		t.Error("out of range: expected error")
	}
	if _, err := NewGeneral(4, []int{2, 2}); err == nil {
		t.Error("duplicates: expected error")
	}
}

func TestGeneralNegativeSlotPanics(t *testing.T) {
	g, err := NewGeneral(4, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.Channel(-1)
}

// randomSetWith returns a random size-k subset of [n] that contains the
// given shared channel.
func randomSetWith(rng *rand.Rand, n, k, shared int) []int {
	set := map[int]bool{shared: true}
	for len(set) < k {
		set[1+rng.Intn(n)] = true
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	return out
}
