package schedule

import (
	"fmt"
	"sync"

	"rendezvous/internal/bitstring"
	"rendezvous/internal/pairsched"
	"rendezvous/internal/primes"
	"rendezvous/internal/ramsey"
)

// General is the Theorem-3 schedule: the paper's primary contribution.
//
// For a channel set A = {a_0 < … < a_{k-1}} ⊆ [n] it picks the two
// smallest distinct primes p < q in [k, 3k] and runs a sequence of
// epochs. Epoch r plays the Theorem-1 asynchronous word for the channel
// pair {a_{r mod p}, a_{r mod q}} (an index ≥ k falls back to a_0; equal
// channels degenerate to a constant epoch). To survive arbitrary wake
// offsets each epoch repeats its word twice, so an epoch lasts 2L slots
// where L = pairsched.WordLen(n).
//
// For any two overlapping sets A, B there is a "helpful" pair of distinct
// primes (p from A's pair, q from B's); the Chinese Remainder Theorem
// yields an epoch index r ≤ p·q at which A's pair and B's pair both
// contain a common channel while their doubled epochs overlap in at
// least L slots, and the ◇ conditions of the pair words finish the job.
// Total: O(|A|·|B|·log log n) slots.
type General struct {
	n        int
	channels []int // sorted ascending
	p, q     int
	wordLen  int
	words    []bitstring.String // per 2-Ramsey color, precomputed
}

var _ Schedule = (*General)(nil)

// NewGeneral builds the Theorem-3 schedule for the given channel set
// within universe [n].
func NewGeneral(n int, channels []int) (*General, error) {
	sorted, err := ValidateChannels(n, channels)
	if err != nil {
		return nil, err
	}
	k := len(sorted)
	p, q, err := primes.TwoIn(k)
	if err != nil {
		return nil, fmt.Errorf("schedule: selecting primes for k=%d: %w", k, err)
	}
	words, err := wordPalette(n)
	if err != nil {
		return nil, err
	}
	return &General{
		n:        n,
		channels: sorted,
		p:        p,
		q:        q,
		wordLen:  pairsched.WordLen(n),
		words:    words,
	}, nil
}

// palCache caches the per-universe Ramsey word palette. The words are
// pure functions of (color, n) and immutable once built, so every
// General over the same universe shares one palette; rebuilding it per
// schedule dominated NewGeneral's construction cost in sweeps that
// measure many pairs over a handful of universes.
var palCache sync.Map // universe n -> []bitstring.String

// wordPalette returns the shared per-color word table for universe n.
func wordPalette(n int) ([]bitstring.String, error) {
	if v, ok := palCache.Load(n); ok {
		return v.([]bitstring.String), nil
	}
	words := make([]bitstring.String, ramsey.PaletteSize(n))
	for c := range words {
		w, err := pairsched.WordForColor(c, n)
		if err != nil {
			return nil, err
		}
		words[c] = w
	}
	v, _ := palCache.LoadOrStore(n, words)
	return v.([]bitstring.String), nil
}

// EpochLen returns the duration of one (doubled) epoch in slots: 2L.
func (g *General) EpochLen() int { return 2 * g.wordLen }

// Primes returns the two epoch primes (p < q) chosen for this set.
func (g *General) Primes() (p, q int) { return g.p, g.q }

// Channel implements Schedule.
func (g *General) Channel(t int) int {
	CheckSlot(t)
	epoch := t / g.EpochLen()
	within := t % g.EpochLen() % g.wordLen
	lo, hi := g.epochPair(epoch)
	if lo == hi {
		return lo
	}
	color := ramsey.MustColor(lo, hi, g.n)
	if g.words[color].Bit(within) == 0 {
		return lo
	}
	return hi
}

// ChannelBlock implements BlockEvaluator by emitting whole (doubled)
// epochs at a time: the epoch pair and its Ramsey-word color are
// resolved once per epoch instead of once per slot, and the word bits
// are streamed across both word repetitions.
func (g *General) ChannelBlock(dst []int, start int) {
	CheckSlot(start)
	el := g.EpochLen()
	for filled := 0; filled < len(dst); {
		t := start + filled
		epoch := t / el
		n := min((epoch+1)*el-t, len(dst)-filled)
		seg := dst[filled : filled+n]
		lo, hi := g.epochPair(epoch)
		if lo == hi {
			for i := range seg {
				seg[i] = lo
			}
		} else {
			word := g.words[ramsey.MustColor(lo, hi, g.n)]
			within := t % el % g.wordLen
			for i := range seg {
				if word.Bit(within) == 0 {
					seg[i] = lo
				} else {
					seg[i] = hi
				}
				if within++; within == g.wordLen {
					within = 0
				}
			}
		}
		filled += n
	}
}

// epochPair returns the (sorted) channel pair scheduled in the given
// epoch.
func (g *General) epochPair(epoch int) (lo, hi int) {
	k := len(g.channels)
	i := epoch % g.p
	j := epoch % g.q
	if i >= k {
		i = 0
	}
	if j >= k {
		j = 0
	}
	a, b := g.channels[i], g.channels[j]
	if a > b {
		a, b = b, a
	}
	return a, b
}

// Period implements Schedule: the epoch pattern repeats every p·q epochs.
func (g *General) Period() int { return g.p * g.q * g.EpochLen() }

// Channels implements Schedule.
func (g *General) Channels() []int {
	out := make([]int, len(g.channels))
	copy(out, g.channels)
	return out
}

// Universe returns the universe size n the schedule was built for.
func (g *General) Universe() int { return g.n }

// RendezvousBound returns the worst-case asynchronous rendezvous bound,
// in slots, between this schedule and one built (with the same n) for a
// set of size otherK: epochs through one full CRT cycle of the largest
// helpful prime pair, plus two boundary epochs. Tests and the benchmark
// harness assert measured TTRs against this.
func (g *General) RendezvousBound(otherK int) int {
	_, qOther, err := primes.TwoIn(otherK)
	if err != nil {
		return 0
	}
	return (g.q*qOther + 2) * g.EpochLen()
}
