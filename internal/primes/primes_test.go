package primes

import (
	"testing"
	"testing/quick"
)

func TestIsPrime(t *testing.T) {
	known := map[int]bool{
		-7: false, 0: false, 1: false, 2: true, 3: true, 4: false,
		5: true, 9: false, 25: false, 97: true, 91: false, 7919: true,
		7921: false, // 89²
	}
	for n, want := range known {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestInRange(t *testing.T) {
	got := InRange(10, 30)
	want := []int{11, 13, 17, 19, 23, 29}
	if len(got) != len(want) {
		t.Fatalf("InRange(10,30) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("InRange(10,30) = %v, want %v", got, want)
		}
	}
	if out := InRange(24, 28); out != nil {
		t.Errorf("InRange(24,28) = %v, want empty", out)
	}
}

func TestNextAtLeast(t *testing.T) {
	cases := map[int]int{0: 2, 2: 2, 3: 3, 4: 5, 14: 17, 100: 101}
	for n, want := range cases {
		if got := NextAtLeast(n); got != want {
			t.Errorf("NextAtLeast(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTwoInAllSmallK(t *testing.T) {
	// Theorem 3 needs two distinct primes in [k,3k] for every channel-set
	// size k; check every k a realistic schedule could see.
	for k := 1; k <= 5000; k++ {
		p, q, err := TwoIn(k)
		if err != nil {
			t.Fatalf("TwoIn(%d): %v", k, err)
		}
		if !(k <= p && p < q && q <= 3*k) {
			t.Fatalf("TwoIn(%d) = (%d,%d) outside [k,3k]", k, p, q)
		}
		if !IsPrime(p) || !IsPrime(q) {
			t.Fatalf("TwoIn(%d) = (%d,%d): not prime", k, p, q)
		}
	}
}

func TestTwoInRejectsNonPositive(t *testing.T) {
	if _, _, err := TwoIn(0); err == nil {
		t.Error("TwoIn(0): expected error")
	}
}

func TestCRTSmall(t *testing.T) {
	r, err := CRT(2, 3, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r != 8 {
		t.Errorf("CRT(2 mod 3, 3 mod 5) = %d, want 8", r)
	}
}

func TestCRTProperty(t *testing.T) {
	pairs := [][2]int{{2, 3}, {3, 5}, {5, 7}, {7, 11}, {11, 13}, {3, 7}, {5, 11}}
	f := func(a, b int16) bool {
		for _, pq := range pairs {
			p, q := pq[0], pq[1]
			r, err := CRT(int(a), p, int(b), q)
			if err != nil {
				return false
			}
			if r < 0 || r >= p*q {
				return false
			}
			am, bm := int(a)%p, int(b)%q
			if am < 0 {
				am += p
			}
			if bm < 0 {
				bm += q
			}
			if r%p != am || r%q != bm {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCRTErrors(t *testing.T) {
	if _, err := CRT(1, 4, 1, 6); err == nil {
		t.Error("CRT with non-coprime moduli: expected error")
	}
	if _, err := CRT(1, 0, 1, 3); err == nil {
		t.Error("CRT with zero modulus: expected error")
	}
}
