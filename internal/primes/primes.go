// Package primes provides the small amount of number theory the
// Theorem-3 schedule of Chen et al. (ICDCS 2014) depends on: primality,
// prime enumeration in an interval, the two-primes-in-[k,3k] selection,
// and a Chinese-remainder solver for coprime moduli.
package primes

import "fmt"

// IsPrime reports whether n is prime using deterministic trial division;
// the schedules only ever test values up to a few times the channel-set
// size, so trial division is ample.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// InRange returns all primes p with lo ≤ p ≤ hi in increasing order.
func InRange(lo, hi int) []int {
	var out []int
	for p := lo; p <= hi; p++ {
		if IsPrime(p) {
			out = append(out, p)
		}
	}
	return out
}

// NextAtLeast returns the smallest prime ≥ n (n ≥ 0).
func NextAtLeast(n int) int {
	if n < 2 {
		return 2
	}
	for p := n; ; p++ {
		if IsPrime(p) {
			return p
		}
	}
}

// TwoIn returns the two smallest distinct primes p < q in [k, 3k].
// Theorem 3 relies on the fact that this interval always contains at
// least two primes for k ≥ 1 (a Bertrand-type bound: there is a prime in
// (k, 2k] and another in (2k−1, 4k−2] ∩ [k, 3k]); the function verifies
// this at runtime and reports an error if the interval is deficient.
func TwoIn(k int) (p, q int, err error) {
	if k < 1 {
		return 0, 0, fmt.Errorf("primes: k must be positive, got %d", k)
	}
	found := make([]int, 0, 2)
	for v := k; v <= 3*k && len(found) < 2; v++ {
		if IsPrime(v) {
			found = append(found, v)
		}
	}
	if len(found) < 2 {
		return 0, 0, fmt.Errorf("primes: fewer than two primes in [%d,%d]", k, 3*k)
	}
	return found[0], found[1], nil
}

// CRT returns the smallest non-negative r with r ≡ a (mod p) and
// r ≡ b (mod q). The moduli must be positive and coprime (in the
// schedules they are distinct primes).
func CRT(a, p, b, q int) (int, error) {
	if p <= 0 || q <= 0 {
		return 0, fmt.Errorf("primes: moduli must be positive, got %d, %d", p, q)
	}
	if g, _, _ := extendedGCD(p, q); g != 1 {
		return 0, fmt.Errorf("primes: moduli %d and %d are not coprime", p, q)
	}
	a = mod(a, p)
	b = mod(b, q)
	// r = a + p·t with t ≡ (b−a)·p⁻¹ (mod q).
	_, pInv, _ := extendedGCD(p, q)
	t := mod((b-a)*mod(pInv, q), q)
	return a + p*t, nil
}

// extendedGCD returns g = gcd(a, b) along with x, y such that
// a·x + b·y = g.
func extendedGCD(a, b int) (g, x, y int) {
	if b == 0 {
		return a, 1, 0
	}
	g, x1, y1 := extendedGCD(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

func mod(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}
