package lowerbound

import (
	"testing"

	"rendezvous/internal/schedule"
)

func generalFamily(n int) Family {
	return func(channels []int) (schedule.Schedule, error) {
		return schedule.NewGeneral(n, channels)
	}
}

func TestTheorem6MinUniverse(t *testing.T) {
	// k=2, α=2: blocks must exceed (k−1)·C(3,1) = 3 ⇒ 4 blocks ⇒ n = 8.
	if got := Theorem6MinUniverse(2, 2); got != 8 {
		t.Errorf("Theorem6MinUniverse(2,2) = %d, want 8", got)
	}
	// k=2, α=1: C(1,0) = 1 ⇒ 2 blocks ⇒ n = 4.
	if got := Theorem6MinUniverse(2, 1); got != 4 {
		t.Errorf("Theorem6MinUniverse(2,1) = %d, want 4", got)
	}
}

func TestBinomial(t *testing.T) {
	cases := [][3]int{{3, 1, 3}, {5, 2, 10}, {7, 0, 1}, {4, 4, 1}, {4, 5, 0}, {6, 3, 20}}
	for _, c := range cases {
		if got := binomial(c[0], c[1]); got != c[2] {
			t.Errorf("C(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

// TestTheorem6WitnessAgainstFlagship runs the paper's Theorem-6
// construction against our own schedule family: it must produce a
// concrete overlapping pair that misses rendezvous within αk−1 slots —
// demonstrating the Ω(αk) synchronous lower bound is real, and that our
// O(kℓ·loglog n) schedule does not magically beat it.
func TestTheorem6WitnessAgainstFlagship(t *testing.T) {
	for _, tc := range []struct{ n, k, alpha int }{
		{8, 2, 2},
		{16, 2, 2},
		{30, 3, 1},
	} {
		w, err := Theorem6Witness(tc.n, tc.k, tc.alpha, generalFamily(tc.n))
		if err != nil {
			t.Fatalf("n=%d k=%d α=%d: %v", tc.n, tc.k, tc.alpha, err)
		}
		if len(w.SHat) != tc.k {
			t.Fatalf("witness set size %d, want %d", len(w.SHat), tc.k)
		}
		if w.Slots != tc.alpha*tc.k-1 {
			t.Fatalf("witness horizon %d, want %d", w.Slots, tc.alpha*tc.k-1)
		}
		// Independently confirm the miss.
		fam := generalFamily(tc.n)
		a, err := fam(w.SHat)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fam(w.Partner)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < w.Slots; s++ {
			if a.Channel(s) == b.Channel(s) {
				t.Fatalf("witness pair %v/%v actually met at slot %d", w.SHat, w.Partner, s)
			}
		}
		// The shared channel must really be shared.
		if !containsInt(w.SHat, w.Shared) || !containsInt(w.Partner, w.Shared) {
			t.Fatalf("witness shared channel %d not common to %v and %v", w.Shared, w.SHat, w.Partner)
		}
	}
}

func TestTheorem6WitnessErrors(t *testing.T) {
	if _, err := Theorem6Witness(4, 2, 2, generalFamily(4)); err == nil {
		t.Error("universe below threshold: expected error")
	}
	if _, err := Theorem6Witness(8, 1, 1, generalFamily(8)); err == nil {
		t.Error("k=1: expected error")
	}
	if _, err := Theorem6Witness(8, 2, 3, generalFamily(8)); err == nil {
		t.Error("α>k: expected error")
	}
	broken := func([]int) (schedule.Schedule, error) {
		return schedule.NewConstant(99), nil // hops outside every set
	}
	if _, err := Theorem6Witness(8, 2, 2, broken); err == nil {
		t.Error("family hopping outside its set: expected error")
	}
}
