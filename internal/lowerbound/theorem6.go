package lowerbound

import (
	"fmt"
	"sort"

	"rendezvous/internal/schedule"
)

// Theorem 6 of the paper proves Rs(n,k) ≥ αk by a pigeonhole
// construction: partition the universe into disjoint k-sets, find in
// each a channel hopped fewer than α times during the first αk−1 slots,
// collect the (padded) slot-sets A_i of those rare channels, find k
// partition blocks sharing the same A, and observe that the schedule of
// the set assembled from their rare channels cannot meet all k blocks
// inside A. This file makes the argument executable against any concrete
// schedule family.

// Family builds the family's schedule for a channel set (the paper's
// Σ = (σ_S); anonymity means the function is the family).
type Family func(channels []int) (schedule.Schedule, error)

// T6Witness is the output of the Theorem-6 construction: a set and a
// partner block that provably cannot rendezvous within Slots slots in
// the synchronous model, under the audited family.
type T6Witness struct {
	SHat    []int // the assembled set of rare channels
	Partner []int // the partition block it fails against
	Shared  int   // their unique common channel
	Slots   int   // the αk−1 horizon the pair misses
}

// Theorem6MinUniverse returns the smallest universe size the pigeonhole
// needs for parameters (k, α): n/k > (k−1)·C(αk−1, α−1) blocks.
func Theorem6MinUniverse(k, alpha int) int {
	return k * ((k-1)*binomial(alpha*k-1, alpha-1) + 1)
}

func binomial(n, r int) int {
	if r < 0 || r > n {
		return 0
	}
	if r > n-r {
		r = n - r
	}
	out := 1
	for i := 0; i < r; i++ {
		out = out * (n - i) / (i + 1)
	}
	return out
}

// Theorem6Witness runs the constructive lower-bound argument against a
// schedule family and returns a pair of overlapping sets that do not
// rendezvous synchronously within αk−1 slots. For any valid family such
// a pair must exist once n ≥ Theorem6MinUniverse(k, α); an error is
// returned when the universe is too small or the family errors.
func Theorem6Witness(n, k, alpha int, fam Family) (*T6Witness, error) {
	if k < 2 || alpha < 1 || alpha > k {
		return nil, fmt.Errorf("lowerbound: need 2 ≤ k and 1 ≤ α ≤ k, got k=%d α=%d", k, alpha)
	}
	if min := Theorem6MinUniverse(k, alpha); n < min {
		return nil, fmt.Errorf("lowerbound: theorem 6 needs n ≥ %d for k=%d α=%d, got %d", min, k, alpha, n)
	}
	T := alpha*k - 1

	// Partition [n] into ⌊n/k⌋ disjoint blocks of size k.
	type blockInfo struct {
		set  []int
		rare int   // channel appearing < α times in the first T slots
		a    []int // padded slot-set A_i (size α−1... at least the rare slots)
	}
	var blocks []blockInfo
	for b := 0; b+k <= n; b += k {
		set := make([]int, k)
		for i := range set {
			set[i] = b + i + 1
		}
		s, err := fam(set)
		if err != nil {
			return nil, fmt.Errorf("lowerbound: family on %v: %w", set, err)
		}
		counts := make(map[int][]int)
		for t := 0; t < T; t++ {
			ch := s.Channel(t)
			counts[ch] = append(counts[ch], t)
		}
		rare, slots := 0, []int(nil)
		for _, ch := range set {
			if len(counts[ch]) < alpha {
				rare, slots = ch, counts[ch]
				break
			}
		}
		if rare == 0 {
			// Impossible: k channels in T = αk−1 slots cannot all appear
			// α times. Defensive against a broken family.
			return nil, fmt.Errorf("lowerbound: no rare channel in block %v — family hops outside its set?", set)
		}
		// Pad the slot set to exactly α−1 slots deterministically.
		pad := append([]int(nil), slots...)
		for t := 0; t < T && len(pad) < alpha-1; t++ {
			if !containsInt(pad, t) {
				pad = append(pad, t)
			}
		}
		sort.Ints(pad)
		blocks = append(blocks, blockInfo{set: set, rare: rare, a: pad})
	}

	// Group blocks by their padded slot-set.
	groups := make(map[string][]int)
	for i, b := range blocks {
		key := fmt.Sprint(b.a)
		groups[key] = append(groups[key], i)
	}
	for _, idxs := range groups {
		if len(idxs) < k {
			continue
		}
		idxs = idxs[:k]
		sHat := make([]int, 0, k)
		for _, i := range idxs {
			sHat = append(sHat, blocks[i].rare)
		}
		sort.Ints(sHat)
		sigmaHat, err := fam(sHat)
		if err != nil {
			return nil, fmt.Errorf("lowerbound: family on assembled set %v: %w", sHat, err)
		}
		// One of the k blocks must be missed within T slots.
		for _, i := range idxs {
			partner, err := fam(blocks[i].set)
			if err != nil {
				return nil, err
			}
			met := false
			for t := 0; t < T && !met; t++ {
				met = sigmaHat.Channel(t) == partner.Channel(t)
			}
			if !met {
				return &T6Witness{
					SHat:    sHat,
					Partner: append([]int(nil), blocks[i].set...),
					Shared:  blocks[i].rare,
					Slots:   T,
				}, nil
			}
		}
		// All k blocks met inside A — contradicts |A| = α−1 < k unless
		// some rendezvous happened outside the rare slots via another
		// shared channel; disjoint blocks make that impossible, so:
		return nil, fmt.Errorf("lowerbound: pigeonhole group met all partners — argument violated, family is inconsistent")
	}
	return nil, fmt.Errorf("lowerbound: no k blocks shared a slot-set (unexpected at n=%d)", n)
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
