package lowerbound

import (
	"testing"

	"rendezvous/internal/schedule"
)

func TestCorollary5EmbeddingStructure(t *testing.T) {
	e, err := NewCorollary5Embedding(20, 4) // m = 6, blocks of size 2
	if err != nil {
		t.Fatal(err)
	}
	if e.M != 6 {
		t.Fatalf("m = %d, want 6", e.M)
	}
	x, err := e.Extend(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 4 {
		t.Fatalf("|X| = %d, want k = 4", len(x))
	}
	has := map[int]bool{}
	for _, c := range x {
		if c < 1 || c > 20 {
			t.Fatalf("channel %d outside universe", c)
		}
		if has[c] {
			t.Fatalf("duplicate channel %d in %v", c, x)
		}
		has[c] = true
	}
	if !has[2] || !has[5] {
		t.Fatalf("extension %v lost its base pair", x)
	}
}

// TestCorollary5Intersections verifies the key structural property for
// several (n, k): extended sets of overlapping distinct pairs intersect
// exactly in the base intersection.
func TestCorollary5Intersections(t *testing.T) {
	for _, tc := range [][2]int{{20, 4}, {15, 3}, {36, 5}, {14, 3}} {
		e, err := NewCorollary5Embedding(tc[0], tc[1])
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc[0], tc[1], err)
		}
		if err := e.VerifyIntersections(); err != nil {
			t.Fatalf("n=%d k=%d: %v", tc[0], tc[1], err)
		}
	}
}

// TestCorollary5PullbackRendezvous runs the reduction end to end: the
// pulled-back 2-set schedules derived from our (n,k)-family must still
// rendezvous pairwise — their meetings are exactly the meetings of the
// extended sets, so the (m,2) rendezvous time lower-bounds the (n,k)
// one, which is how the paper transfers Ω(log log n) upward.
func TestCorollary5PullbackRendezvous(t *testing.T) {
	const n, k = 20, 4
	e, err := NewCorollary5Embedding(n, k)
	if err != nil {
		t.Fatal(err)
	}
	fam := func(channels []int) (schedule.Schedule, error) {
		return schedule.NewGeneral(n, channels)
	}
	// Pull back all pairs over A = {1..m} and check pairwise synchronous
	// rendezvous for overlapping pairs within the generous (n,k) bound.
	g, err := schedule.NewGeneral(n, []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	bound := g.RendezvousBound(k)
	type pb struct {
		i, j int
		s    schedule.Schedule
	}
	var pulled []pb
	for i := 1; i <= e.M; i++ {
		for j := i + 1; j <= e.M; j++ {
			s, err := e.Pullback(fam, i, j)
			if err != nil {
				t.Fatal(err)
			}
			pulled = append(pulled, pb{i, j, s})
		}
	}
	for _, a := range pulled {
		for _, b := range pulled {
			shared := intersectSorted([]int{a.i, a.j}, []int{b.i, b.j})
			if len(shared) == 0 {
				continue
			}
			met := false
			for s := 0; s < bound && !met; s++ {
				ca, cb := a.s.Channel(s), b.s.Channel(s)
				met = ca == cb && containsInt(shared, ca)
			}
			if !met {
				t.Fatalf("pulled-back pair {%d,%d}/{%d,%d} missed rendezvous on %v within %d slots",
					a.i, a.j, b.i, b.j, shared, bound)
			}
		}
	}
}

func TestCorollary5Errors(t *testing.T) {
	if _, err := NewCorollary5Embedding(10, 2); err == nil {
		t.Error("k=2: expected error")
	}
	if _, err := NewCorollary5Embedding(3, 4); err == nil {
		t.Error("tiny universe: expected error")
	}
	e, err := NewCorollary5Embedding(20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Extend(3, 3); err == nil {
		t.Error("i=j: expected error")
	}
	if _, err := e.Extend(0, 2); err == nil {
		t.Error("i=0: expected error")
	}
	if _, err := e.Extend(1, 99); err == nil {
		t.Error("j>m: expected error")
	}
}
