package lowerbound

import (
	"fmt"
	"sort"

	"rendezvous/internal/schedule"
)

// Corollary 5 of the paper lifts the Ω(log log n) bound from size-2 sets
// to size-k sets by an embedding: split [n] into A = {1..m} and disjoint
// blocks B_1…B_m of size k−2, and extend each 2-set {i,j} ⊆ A to
//
//	X_{i,j} = {i, j} ∪ B_{(i+j) mod m}.
//
// The block index (i+j) mod m makes any two distinct overlapping 2-sets
// pick different blocks, so X_{i,j} ∩ X_{i',j'} = {i,j} ∩ {i',j'}: a
// rendezvous between the extended sets must happen on the original
// 2-set intersection, and any (n,k)-schedule therefore embeds an
// (m,2)-schedule with no better rendezvous time. This file implements
// the embedding so the reduction can be executed and checked.

// Corollary5Embedding holds the extended family for parameters (n, k).
type Corollary5Embedding struct {
	N, K, M int
	blocks  [][]int // B_1..B_m, each of size k−2
}

// NewCorollary5Embedding splits [n] for sets of size k. It requires
// k ≥ 3 (k = 2 is the base case) and n ≥ m(k−1) with m = ⌊n/(k−1)⌋ ≥ 2.
func NewCorollary5Embedding(n, k int) (*Corollary5Embedding, error) {
	if k < 3 {
		return nil, fmt.Errorf("lowerbound: corollary 5 embedding needs k ≥ 3, got %d", k)
	}
	m := n / (k - 1)
	if m < 2 {
		return nil, fmt.Errorf("lowerbound: universe %d too small for k=%d (need m ≥ 2)", n, k)
	}
	e := &Corollary5Embedding{N: n, K: k, M: m}
	at := m + 1 // blocks live above A = {1..m}
	for b := 0; b < m; b++ {
		block := make([]int, k-2)
		for i := range block {
			block[i] = at
			at++
		}
		e.blocks = append(e.blocks, block)
	}
	return e, nil
}

// Extend returns X_{i,j} for a 2-set {i,j} ⊆ {1..m}, sorted.
func (e *Corollary5Embedding) Extend(i, j int) ([]int, error) {
	if !(1 <= i && i < j && j <= e.M) {
		return nil, fmt.Errorf("lowerbound: need 1 ≤ i < j ≤ %d, got (%d,%d)", e.M, i, j)
	}
	out := append([]int{i, j}, e.blocks[(i+j)%e.M]...)
	sort.Ints(out)
	return out, nil
}

// VerifyIntersections checks the structural property the proof needs on
// the whole family: for all overlapping-but-distinct 2-sets, the
// extended sets intersect exactly in the 2-set intersection. It returns
// the first violating quadruple, if any.
func (e *Corollary5Embedding) VerifyIntersections() error {
	for i := 1; i <= e.M; i++ {
		for j := i + 1; j <= e.M; j++ {
			xij, err := e.Extend(i, j)
			if err != nil {
				return err
			}
			for p := 1; p <= e.M; p++ {
				for q := p + 1; q <= e.M; q++ {
					if i == p && j == q {
						continue
					}
					base := intersectSorted([]int{i, j}, []int{p, q})
					if len(base) == 0 {
						continue
					}
					xpq, err := e.Extend(p, q)
					if err != nil {
						return err
					}
					got := intersectSorted(xij, xpq)
					if !equalInts(got, base) {
						return fmt.Errorf("lowerbound: X_{%d,%d} ∩ X_{%d,%d} = %v, want %v", i, j, p, q, got, base)
					}
				}
			}
		}
	}
	return nil
}

// Pullback restricts an (n,k)-schedule for X_{i,j} to a schedule for
// {i,j} exactly as the proof does: references to channels outside {i,j}
// are replaced by min(i,j). The result is a valid 2-set schedule whose
// rendezvous with other pulled-back schedules can only happen where the
// extended schedules rendezvoused.
func (e *Corollary5Embedding) Pullback(fam Family, i, j int) (schedule.Schedule, error) {
	x, err := e.Extend(i, j)
	if err != nil {
		return nil, err
	}
	s, err := fam(x)
	if err != nil {
		return nil, err
	}
	return pulledBack{inner: s, lo: i, hi: j}, nil
}

type pulledBack struct {
	inner schedule.Schedule
	lo    int
	hi    int
}

func (p pulledBack) Channel(t int) int {
	if c := p.inner.Channel(t); c == p.hi {
		return p.hi
	}
	return p.lo
}

func (p pulledBack) Period() int     { return p.inner.Period() }
func (p pulledBack) Channels() []int { return []int{p.lo, p.hi} }

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
