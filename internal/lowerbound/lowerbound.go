// Package lowerbound provides executable counterparts to §4 of Chen et
// al. (ICDCS 2014). The paper's lower bounds are existential (Ramsey
// theory and the probabilistic method); this package makes them
// *checkable* on concrete instances:
//
//   - FindMonochromaticPath is the witness extractor behind Theorem 4:
//     a monochromatic directed path (i<j<k with identical schedule words
//     on (i,j) and (j,k)) certifies that a synchronous (n,2)-schedule
//     family cannot guarantee rendezvous.
//   - MinSyncWordLength computes, by exhaustive backtracking over all
//     word families, the exact optimal synchronous rendezvous time for
//     size-two sets on tiny universes — the quantity Rs(n,2) that
//     Theorem 4 bounds below by Ω(log log n).
//   - ChannelDensity and MeetingPairs instantiate the density counting
//     argument of Theorem 7 (the asynchronous Ω(|A||B|) bound) on
//     concrete schedules.
package lowerbound

import (
	"fmt"

	"rendezvous/internal/schedule"
)

// WordFamily assigns a binary schedule word to every size-two set
// {a < b} of the universe: the synchronous model of Theorem 4, where a
// word bit 0 hops the smaller channel and 1 the larger.
type WordFamily func(a, b int) string

// FindMonochromaticPath scans all directed paths a<b<c and returns the
// first whose two edges carry identical words. Such a path is a
// rendezvous-failure certificate: the sets {a,b} and {b,c} share only b,
// which one schedule hops exactly when the other does not.
func FindMonochromaticPath(n int, fam WordFamily) (a, b, c int, found bool) {
	for b = 2; b < n; b++ {
		// Index words of edges ending at b to find a matching edge
		// starting at b without quadratic re-scans.
		into := make(map[string]int)
		for a = 1; a < b; a++ {
			into[fam(a, b)] = a
		}
		for c = b + 1; c <= n; c++ {
			if a, ok := into[fam(b, c)]; ok {
				return a, b, c, true
			}
		}
	}
	return 0, 0, 0, false
}

// pairConstraint captures what two distinct overlapping edges need from
// their words at some common slot.
type pairConstraint struct {
	e1, e2 int  // edge indices
	b1, b2 byte // required simultaneous bits
}

// MinSyncWordLength returns the smallest T ≤ maxT for which a
// synchronous (n,2)-word family of length T exists that guarantees
// rendezvous for every overlapping pair, or ok=false if no T ≤ maxT
// works. It is exponential in both n and T — the point is exactness on
// tiny universes (n ≤ 4, maxT ≤ 4), giving ground truth to compare the
// constructive upper bound against.
func MinSyncWordLength(n, maxT int) (int, bool, error) {
	if n < 2 {
		return 0, false, fmt.Errorf("lowerbound: need n ≥ 2, got %d", n)
	}
	if m := n * (n - 1) / 2; m > 10 {
		return 0, false, fmt.Errorf("lowerbound: %d edges is beyond the exact search (max 10)", m)
	}
	type edge struct{ a, b int }
	var edges []edge
	idx := make(map[[2]int]int)
	for a := 1; a <= n; a++ {
		for b := a + 1; b <= n; b++ {
			idx[[2]int{a, b}] = len(edges)
			edges = append(edges, edge{a, b})
		}
	}
	var constraints []pairConstraint
	for i, e := range edges {
		for j := i + 1; j < len(edges); j++ {
			f := edges[j]
			switch {
			case e.a == f.a && e.b == f.b:
				// identical — impossible for i<j
			case e.b == f.a:
				// path e.a < e.b = f.a < f.b: shared channel is e's max,
				// f's min.
				constraints = append(constraints, pairConstraint{i, j, 1, 0})
			case f.b == e.a:
				constraints = append(constraints, pairConstraint{j, i, 1, 0})
			case e.a == f.a:
				constraints = append(constraints, pairConstraint{i, j, 0, 0})
			case e.b == f.b:
				constraints = append(constraints, pairConstraint{i, j, 1, 1})
			}
		}
	}
	// Group constraints by the later edge so backtracking can check each
	// new assignment against all earlier ones.
	byLater := make([][]pairConstraint, len(edges))
	for _, c := range constraints {
		later := c.e1
		if c.e2 > later {
			later = c.e2
		}
		byLater[later] = append(byLater[later], c)
	}
	for t := 1; t <= maxT; t++ {
		words := make([]uint32, len(edges))
		if assign(0, t, words, byLater) {
			return t, true, nil
		}
	}
	return 0, false, nil
}

// assign tries every word of length t for edge e, checking constraints
// against already-assigned edges, and recurses.
func assign(e, t int, words []uint32, byLater [][]pairConstraint) bool {
	if e == len(words) {
		return true
	}
	for w := uint32(0); w < 1<<uint(t); w++ {
		words[e] = w
		ok := true
		for _, c := range byLater[e] {
			if !satisfied(c, t, words) {
				ok = false
				break
			}
		}
		if ok && assign(e+1, t, words, byLater) {
			return true
		}
	}
	return false
}

func satisfied(c pairConstraint, t int, words []uint32) bool {
	w1, w2 := words[c.e1], words[c.e2]
	for s := 0; s < t; s++ {
		if byte(w1>>uint(s)&1) == c.b1 && byte(w2>>uint(s)&1) == c.b2 {
			return true
		}
	}
	return false
}

// ChannelDensity is the paper's ∆(h, σ; T): the fraction of the first T
// slots at which schedule σ hops channel h.
func ChannelDensity(s schedule.Schedule, h, T int) float64 {
	if T <= 0 {
		return 0
	}
	count := 0
	for t := 0; t < T; t++ {
		if s.Channel(t) == h {
			count++
		}
	}
	return float64(count) / float64(T)
}

// MeetingPairs counts the paper's set P from the proof of Theorem 7:
// pairs (x, y) with x ∈ [0,R), y ∈ [0,r), x ≥ y, at which both schedules
// hop channel h. Each element of P covers exactly one wake offset, so
// |P| ≥ R − r is necessary for guaranteed rendezvous in r slots — the
// inequality that forces r ≥ (1 − r/R)·kℓ.
func MeetingPairs(a, b schedule.Schedule, h, R, r int) int {
	bHits := make([]int, 0, r)
	for y := 0; y < r; y++ {
		if b.Channel(y) == h {
			bHits = append(bHits, y)
		}
	}
	count := 0
	for x := 0; x < R; x++ {
		if a.Channel(x) != h {
			continue
		}
		for _, y := range bHits {
			if x >= y {
				count++
			}
		}
	}
	return count
}
