package lowerbound

import (
	"testing"

	"rendezvous/internal/pairsched"
	"rendezvous/internal/schedule"
)

func TestFindMonochromaticPathOnConstantFamily(t *testing.T) {
	// A family giving every edge the same word fails immediately.
	fam := func(a, b int) string { return "0101" }
	i, j, k, found := FindMonochromaticPath(8, fam)
	if !found {
		t.Fatal("constant family must contain a monochromatic path")
	}
	if !(1 <= i && i < j && j < k && k <= 8) {
		t.Fatalf("bad witness (%d,%d,%d)", i, j, k)
	}
}

func TestFindMonochromaticPathOnPaperFamily(t *testing.T) {
	// The Lemma-2 colored family must be path-free: this is exactly why
	// the Theorem-1 schedules work.
	for _, n := range []int{4, 16, 64, 200} {
		fam := func(a, b int) string {
			w, err := pairsched.SyncWord(n, a, b)
			if err != nil {
				t.Fatalf("SyncWord(%d,%d): %v", a, b, err)
			}
			return w.String()
		}
		if i, j, k, found := FindMonochromaticPath(n, fam); found {
			t.Fatalf("n=%d: paper family has monochromatic path (%d,%d,%d)", n, i, j, k)
		}
	}
}

func TestFindMonochromaticPathNoFalsePositive(t *testing.T) {
	// A family with all-distinct words on a tiny universe has no path.
	words := map[[2]int]string{
		{1, 2}: "00", {1, 3}: "01", {2, 3}: "10",
	}
	fam := func(a, b int) string { return words[[2]int{a, b}] }
	if _, _, _, found := FindMonochromaticPath(3, fam); found {
		t.Fatal("distinct-word family flagged incorrectly")
	}
}

// TestMinSyncWordLengthGroundTruth pins the exact optimum for tiny
// universes. These values are ground truth produced by exhaustive
// search; the paper's construction gives an upper bound a constant
// factor above them, and Theorem 4 says they must eventually grow like
// log log n.
func TestMinSyncWordLengthGroundTruth(t *testing.T) {
	got2, ok, err := MinSyncWordLength(2, 3)
	if err != nil || !ok {
		t.Fatalf("n=2: %v ok=%v", err, ok)
	}
	if got2 != 1 {
		t.Errorf("Rs-opt(2,2) = %d, want 1 (single pair meets at slot 0)", got2)
	}
	got3, ok, err := MinSyncWordLength(3, 4)
	if err != nil || !ok {
		t.Fatalf("n=3: %v ok=%v", err, ok)
	}
	if got3 < 2 || got3 > 3 {
		t.Errorf("Rs-opt(3,2) = %d, expected 2 or 3", got3)
	}
	got4, ok, err := MinSyncWordLength(4, 4)
	if err != nil {
		t.Fatalf("n=4: %v", err)
	}
	if ok && got4 < got3 {
		t.Errorf("optimum decreased: Rs-opt(4,2)=%d < Rs-opt(3,2)=%d", got4, got3)
	}
	t.Logf("exact optima: Rs(2,2)=%d Rs(3,2)=%d Rs(4,2)=%d(ok=%v)", got2, got3, got4, ok)
}

func TestMinSyncWordLengthUpperBoundConsistency(t *testing.T) {
	// The constructive C-word family is feasible at length SyncWordLen(n),
	// so the exact optimum can never exceed it.
	n := 4
	opt, ok, err := MinSyncWordLength(n, pairsched.SyncWordLen(n))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("no family up to the constructive length %d — construction refuted?", pairsched.SyncWordLen(n))
	}
	if opt > pairsched.SyncWordLen(n) {
		t.Fatalf("optimum %d exceeds constructive bound %d", opt, pairsched.SyncWordLen(n))
	}
}

func TestMinSyncWordLengthErrors(t *testing.T) {
	if _, _, err := MinSyncWordLength(1, 3); err == nil {
		t.Error("n=1: expected error")
	}
	if _, _, err := MinSyncWordLength(6, 2); err == nil {
		t.Error("15 edges: expected size error")
	}
}

func TestChannelDensity(t *testing.T) {
	c, err := schedule.NewCyclic([]int{1, 2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ChannelDensity(c, 1, 4); got != 0.75 {
		t.Errorf("density = %v, want 0.75", got)
	}
	if got := ChannelDensity(c, 2, 8); got != 0.25 {
		t.Errorf("density = %v, want 0.25", got)
	}
	if ChannelDensity(c, 1, 0) != 0 {
		t.Error("T=0 density should be 0")
	}
}

// TestDensityExpectationFairShare verifies the premise of Theorem 7's
// counting on our schedules: over a full period, a k-channel General
// schedule gives each channel roughly its fair share 1/k of slots
// (within a factor ~3 — the epochs visit channels via two primes in
// [k, 3k]).
func TestDensityExpectationFairShare(t *testing.T) {
	set := []int{2, 5, 9, 11, 14}
	g, err := schedule.NewGeneral(16, set)
	if err != nil {
		t.Fatal(err)
	}
	T := g.Period()
	total := 0.0
	for _, ch := range set {
		d := ChannelDensity(g, ch, T)
		total += d
		if d == 0 {
			t.Errorf("channel %d never hopped", ch)
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("densities sum to %v, want 1", total)
	}
}

// TestMeetingPairsBoundsRendezvous instantiates the Theorem-7 argument:
// for guaranteed rendezvous within r slots, the meeting-pair count for
// the unique shared channel must cover all R−r wake offsets.
func TestMeetingPairsBoundsRendezvous(t *testing.T) {
	n := 16
	a, err := schedule.NewGeneral(n, []int{3, 7, 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := schedule.NewGeneral(n, []int{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	r := a.RendezvousBound(2)
	R := 4 * r
	got := MeetingPairs(a, b, 7, R, r)
	if got < R-r {
		t.Errorf("meeting pairs %d < R−r = %d: rendezvous in r slots would be impossible", got, R-r)
	}
}

func TestMeetingPairsCounting(t *testing.T) {
	a, err := schedule.NewCyclic([]int{1, 2}) // hops 1 at even slots
	if err != nil {
		t.Fatal(err)
	}
	b, err := schedule.NewCyclic([]int{1}) // always 1
	if err != nil {
		t.Fatal(err)
	}
	// R=4, r=2: a hits 1 at x ∈ {0,2}; b at y ∈ {0,1}; pairs with x ≥ y:
	// (0,0), (2,0), (2,1) = 3.
	if got := MeetingPairs(a, b, 1, 4, 2); got != 3 {
		t.Errorf("MeetingPairs = %d, want 3", got)
	}
}
