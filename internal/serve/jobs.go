package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rendezvous/internal/scenario"
	"rendezvous/internal/simulator"
	"rendezvous/internal/tablecache"
)

// The job manager: a bounded queue in front of a fixed worker pool,
// where each worker goroutine owns a private pool of engine sessions
// keyed by fleet shape. Sessions are documented not concurrent-safe
// (simulator.Session), so worker-goroutine ownership is the
// correctness boundary: a session is only ever driven by the worker
// that opened it, while the engines underneath still share every hop
// table through the process-wide table cache. Job results are pure
// functions of the job spec — scenarios derive everything from their
// seeds — so the same spec returns byte-identical result JSON at any
// worker count, on any queue schedule.

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
	// StatusAborted marks a job that was still queued when the drain
	// deadline passed: reported, never silently dropped.
	StatusAborted JobStatus = "aborted"
)

// JobSpec is one simulation request: a scenario (the fleet, its
// dynamics, and the horizon — everything derived from Scenario.Seed)
// plus the algorithm to build schedules with. JSON field names are the
// Go names (e.g. {"Alg":"ours","Scenario":{"N":64,...}}).
type JobSpec struct {
	// Alg names the schedule builder: ours, general, crseq,
	// crseq-rand, jumpstay, random. Defaults to ours.
	Alg      string
	Scenario scenario.Scenario
	// EngineWorkers bounds the engine's per-run worker count. Results
	// are byte-identical at every value (the engine's decompositions
	// are exact), so this is purely a resource knob; it defaults to 1
	// because the job pool itself saturates the cores.
	EngineWorkers int
	// IncludeMeetings adds the first MaxMeetings meetings (canonical
	// slot-then-name order) to the result.
	IncludeMeetings bool
}

// MaxMeetings caps the meetings list in a job result.
const MaxMeetings = 1000

// normalize applies spec defaults in place. Submit normalizes before
// hashing, so specs differing only in elided defaults are the same job.
func (s *JobSpec) normalize() {
	if s.Alg == "" {
		s.Alg = "ours"
	}
	if s.EngineWorkers <= 0 {
		s.EngineWorkers = 1
	}
}

// validate rejects specs the workers could not run.
func (s *JobSpec) validate() error {
	if err := s.Scenario.Validate(); err != nil {
		return err
	}
	if _, err := scenario.BuilderFor(s.Alg, s.Scenario.N, s.Scenario.Seed); err != nil {
		return err
	}
	return nil
}

// id derives the job's identity from the normalized spec: an FNV-1a
// hash of its canonical JSON. Identity is content, not arrival — an
// identical resubmission lands on the same job (idempotent POST), and
// ids are reproducible across server restarts and worker counts,
// which is what keeps the API byte-deterministic under load.
func (s JobSpec) id() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Marshal of these plain structs cannot fail; keep the
		// signature infallible.
		panic(fmt.Sprintf("serve: marshal job spec: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("j%016x", h.Sum64())
}

// fleetKey identifies the reusable fleet shape behind a spec: every
// field except the horizon and per-request knobs. Fleet derivation and
// environment dynamics are horizon-independent, so jobs that differ
// only in horizon share one engine and session — exactly the reuse
// path the session layer was built for.
func (s JobSpec) fleetKey() string {
	s.Scenario.Horizon = 0
	s.EngineWorkers = 0
	s.IncludeMeetings = false
	return s.id()
}

// JobResult is the deterministic outcome of a completed job. Every
// field is a pure function of the spec; no timing, routing, or cache
// state leaks in.
type JobResult struct {
	Coverage scenario.Coverage
	MetFrac  float64
	// Meetings holds the first MaxMeetings meetings in canonical order
	// when the spec asked for them; Truncated reports whether the run
	// recorded more.
	Meetings  []simulator.Meeting `json:",omitempty"`
	Truncated bool                `json:",omitempty"`
}

// Job is one tracked simulation request.
type Job struct {
	ID   string
	Spec JobSpec

	mu     sync.Mutex
	status JobStatus
	err    string
	result *JobResult
	done   chan struct{}
}

// Snapshot returns the job's current status, error, and result. The
// result pointer is shared; callers must not mutate it.
func (j *Job) Snapshot() (JobStatus, string, *JobResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.err, j.result
}

// Wait blocks until the job reaches a terminal status.
func (j *Job) Wait() { <-j.done }

func (j *Job) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.mu.Unlock()
}

func (j *Job) finish(status JobStatus, res *JobResult, err error) {
	j.mu.Lock()
	j.status = status
	j.result = res
	if err != nil {
		j.err = err.Error()
	}
	j.mu.Unlock()
	close(j.done)
}

// Config parameterizes a Manager (and the Server wrapping it).
type Config struct {
	// Workers is the job worker pool size; ≤ 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of jobs queued behind the workers;
	// ≤ 0 means 1024. A full queue rejects submissions (503).
	QueueDepth int
	// SessionsPerWorker caps each worker's session pool; ≤ 0 means 8.
	// The coldest fleet is closed and evicted past the cap.
	SessionsPerWorker int
	// Cache is the table cache reported by stats and drain; nil means
	// the cache engines currently capture (simulator.TableCache). It
	// must be the cache engines actually use, or the pin numbers
	// describe the wrong cache (tests swapping caches via
	// simulator.SetTableCache pass the same cache here).
	Cache *tablecache.Cache
	// MaxScheduleSlots bounds the hop-table length /v1/schedule
	// returns; ≤ 0 means 65536.
	MaxScheduleSlots int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.SessionsPerWorker <= 0 {
		c.SessionsPerWorker = 8
	}
	if c.Cache == nil {
		c.Cache = simulator.TableCache()
	}
	if c.MaxScheduleSlots <= 0 {
		c.MaxScheduleSlots = 65536
	}
	return c
}

// Manager runs jobs through its worker pool.
type Manager struct {
	cfg   Config
	queue chan *Job

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool

	// lateAbort flips when the drain deadline passes: workers then
	// mark still-queued jobs aborted instead of running them.
	lateAbort atomic.Bool
	wg        sync.WaitGroup

	sessionsOpened atomic.Int64
	sessionsReused atomic.Int64
}

// NewManager starts the worker pool.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:   cfg,
		queue: make(chan *Job, cfg.QueueDepth),
		jobs:  make(map[string]*Job),
	}
	m.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go m.worker()
	}
	return m
}

// ErrQueueFull rejects submissions when the queue is at capacity.
var ErrQueueFull = fmt.Errorf("serve: job queue full")

// ErrDraining rejects submissions after Drain began.
var ErrDraining = fmt.Errorf("serve: draining, not accepting jobs")

// Submit validates and enqueues a job, returning the tracked Job and
// whether this call created it. Resubmitting an identical spec returns
// the existing job in whatever state it is (idempotent by content).
func (m *Manager) Submit(spec JobSpec) (job *Job, created bool, err error) {
	spec.normalize()
	if err := spec.validate(); err != nil {
		return nil, false, err
	}
	id := spec.id()
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		return j, false, nil
	}
	if m.closed {
		return nil, false, ErrDraining
	}
	j := &Job{ID: id, Spec: spec, status: StatusQueued, done: make(chan struct{})}
	select {
	case m.queue <- j:
	default:
		return nil, false, ErrQueueFull
	}
	m.jobs[id] = j
	return j, true, nil
}

// Job returns the tracked job with the given id.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// worker drains the queue, owning a private session pool. The pool is
// closed (engines released) when the worker exits, so after Drain no
// worker holds a cache pin.
func (m *Manager) worker() {
	defer m.wg.Done()
	pool := newSessionPool(m.cfg.SessionsPerWorker)
	defer pool.close()
	for j := range m.queue {
		if m.lateAbort.Load() {
			j.finish(StatusAborted, nil, fmt.Errorf("drain deadline passed before the job started"))
			continue
		}
		m.runJob(pool, j)
	}
}

// runJob executes one job on the worker's session pool. A panic
// (schedule-contract violation in a hostile spec) fails the job rather
// than the daemon.
func (m *Manager) runJob(pool *sessionPool, j *Job) {
	j.setRunning()
	defer func() {
		if r := recover(); r != nil {
			j.finish(StatusFailed, nil, fmt.Errorf("job panicked: %v", r))
		}
	}()
	sc := j.Spec.Scenario
	key := j.Spec.fleetKey()
	fs := pool.get(key)
	if fs == nil {
		build, err := scenario.BuilderFor(j.Spec.Alg, sc.N, sc.Seed)
		if err != nil {
			j.finish(StatusFailed, nil, err)
			return
		}
		fl, err := sc.Open(build)
		if err != nil {
			j.finish(StatusFailed, nil, err)
			return
		}
		fs = &fleetSession{fl: fl, sess: fl.Eng.Session()}
		if evicted := pool.put(key, fs); evicted != nil {
			evicted.fl.Close()
		}
		m.sessionsOpened.Add(1)
	} else {
		m.sessionsReused.Add(1)
	}
	res := fs.sess.RunParallelEnv(sc.Horizon, j.Spec.EngineWorkers, fs.fl.Env)
	cov := fs.fl.Summarize(res, sc.Horizon)
	out := &JobResult{Coverage: cov, MetFrac: cov.MetFrac()}
	if j.Spec.IncludeMeetings {
		ms := res.Meetings()
		if len(ms) > MaxMeetings {
			ms = ms[:MaxMeetings]
			out.Truncated = true
		}
		out.Meetings = ms
	}
	j.finish(StatusDone, out, nil)
}

// fleetSession is one worker's reusable run state for a fleet shape.
type fleetSession struct {
	fl   *scenario.Fleet
	sess *simulator.Session
	last int64 // pool LRU clock
}

// sessionPool is a worker-private LRU of fleet sessions. No locking:
// exactly one goroutine touches it.
type sessionPool struct {
	cap     int
	clock   int64
	entries map[string]*fleetSession
}

func newSessionPool(cap int) *sessionPool {
	return &sessionPool{cap: cap, entries: make(map[string]*fleetSession)}
}

func (p *sessionPool) get(key string) *fleetSession {
	fs := p.entries[key]
	if fs != nil {
		p.clock++
		fs.last = p.clock
	}
	return fs
}

// put inserts a session, returning the evicted coldest entry when the
// pool is over capacity (caller closes its fleet).
func (p *sessionPool) put(key string, fs *fleetSession) (evicted *fleetSession) {
	p.clock++
	fs.last = p.clock
	p.entries[key] = fs
	if len(p.entries) <= p.cap {
		return nil
	}
	coldKey := ""
	for k, e := range p.entries {
		if coldKey == "" || e.last < p.entries[coldKey].last {
			coldKey = k
		}
	}
	evicted = p.entries[coldKey]
	delete(p.entries, coldKey)
	return evicted
}

// close releases every pooled fleet's cache pins.
func (p *sessionPool) close() {
	for k, fs := range p.entries {
		fs.fl.Close()
		delete(p.entries, k)
	}
}

// DrainReport summarizes a completed drain.
type DrainReport struct {
	Done    int
	Failed  int
	Aborted int
	// Pinned is the cache's outstanding-pin entry count after every
	// worker released its engines; nonzero means a pin leak.
	Pinned int
}

// Drain stops accepting jobs, lets in-flight jobs finish, and gives
// queued jobs until the timeout to start; past it, still-queued jobs
// are marked aborted (reported, never dropped). It blocks until every
// worker has exited and released its session pool, then snapshots the
// cache's pin count — zero, unless something leaked. Drain is
// idempotent; a zero timeout aborts all still-queued jobs immediately.
func (m *Manager) Drain(timeout time.Duration) DrainReport {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()
	var timer *time.Timer
	if timeout > 0 {
		timer = time.AfterFunc(timeout, func() { m.lateAbort.Store(true) })
	} else {
		m.lateAbort.Store(true)
	}
	m.wg.Wait()
	if timer != nil {
		timer.Stop()
	}
	rep := DrainReport{}
	m.mu.Lock()
	for _, j := range m.jobs {
		switch status, _, _ := j.Snapshot(); status {
		case StatusDone:
			rep.Done++
		case StatusFailed:
			rep.Failed++
		case StatusAborted:
			rep.Aborted++
		}
	}
	m.mu.Unlock()
	rep.Pinned = m.cfg.Cache.Stats().Pinned
	return rep
}

// JobCounts is the per-status job census for stats.
type JobCounts struct {
	Queued, Running, Done, Failed, Aborted int
}

// ManagerStats is the manager's point-in-time observability snapshot.
type ManagerStats struct {
	Workers        int
	QueueDepth     int
	QueueCapacity  int
	Jobs           JobCounts
	SessionsOpened int64
	SessionsReused int64
}

// Stats snapshots the manager.
func (m *Manager) Stats() ManagerStats {
	st := ManagerStats{
		Workers:        m.cfg.Workers,
		QueueDepth:     len(m.queue),
		QueueCapacity:  m.cfg.QueueDepth,
		SessionsOpened: m.sessionsOpened.Load(),
		SessionsReused: m.sessionsReused.Load(),
	}
	m.mu.Lock()
	for _, j := range m.jobs {
		switch status, _, _ := j.Snapshot(); status {
		case StatusQueued:
			st.Jobs.Queued++
		case StatusRunning:
			st.Jobs.Running++
		case StatusDone:
			st.Jobs.Done++
		case StatusFailed:
			st.Jobs.Failed++
		case StatusAborted:
			st.Jobs.Aborted++
		}
	}
	m.mu.Unlock()
	return st
}
