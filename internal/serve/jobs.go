package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rendezvous/internal/scenario"
	"rendezvous/internal/simulator"
	"rendezvous/internal/tablecache"
)

// The job manager: a bounded queue in front of a fixed worker pool,
// where each worker goroutine owns a private pool of engine sessions
// keyed by fleet shape. Sessions are documented not concurrent-safe
// (simulator.Session), so worker-goroutine ownership is the
// correctness boundary: a session is only ever driven by the worker
// that opened it, while the engines underneath still share every hop
// table through the process-wide table cache. Job results are pure
// functions of the job spec — scenarios derive everything from their
// seeds — so the same spec returns byte-identical result JSON at any
// worker count, on any queue schedule.

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
	// StatusAborted marks a job that was still queued when the drain
	// deadline passed: reported, never silently dropped.
	StatusAborted JobStatus = "aborted"
	// StatusCanceled marks a job stopped by DELETE /v1/jobs/{id} or its
	// per-job deadline: the engine run halts at its next block-window
	// boundary (simulator.Canceler) and the partial result is discarded.
	StatusCanceled JobStatus = "canceled"
)

// terminalStatus reports whether a status is final.
func terminalStatus(s JobStatus) bool {
	switch s {
	case StatusDone, StatusFailed, StatusAborted, StatusCanceled:
		return true
	}
	return false
}

// JobSpec is one simulation request: a scenario (the fleet, its
// dynamics, and the horizon — everything derived from Scenario.Seed)
// plus the algorithm to build schedules with. JSON field names are the
// Go names (e.g. {"Alg":"ours","Scenario":{"N":64,...}}).
type JobSpec struct {
	// Alg names the schedule builder: ours, general, crseq,
	// crseq-rand, jumpstay, random. Defaults to ours.
	Alg      string
	Scenario scenario.Scenario
	// EngineWorkers bounds the engine's per-run worker count. Results
	// are byte-identical at every value (the engine's decompositions
	// are exact), so this is purely a resource knob; it defaults to 1
	// because the job pool itself saturates the cores.
	EngineWorkers int
	// IncludeMeetings adds the first MaxMeetings meetings (canonical
	// slot-then-name order) to the result.
	IncludeMeetings bool
	// TimeoutMs is the per-job deadline in milliseconds; 0 inherits the
	// server's Config.JobTimeout. A job past its deadline is canceled at
	// the engine's next block-window boundary and reported canceled —
	// the deadline never yields a partial result. omitempty keeps job
	// ids stable for specs that never set it.
	TimeoutMs int `json:",omitempty"`
}

// MaxMeetings caps the meetings list in a job result.
const MaxMeetings = 1000

// normalize applies spec defaults in place. Submit normalizes before
// hashing, so specs differing only in elided defaults are the same job.
func (s *JobSpec) normalize() {
	if s.Alg == "" {
		s.Alg = "ours"
	}
	if s.EngineWorkers <= 0 {
		s.EngineWorkers = 1
	}
}

// validate rejects specs the workers could not run.
func (s *JobSpec) validate() error {
	if err := s.Scenario.Validate(); err != nil {
		return err
	}
	if _, err := scenario.BuilderFor(s.Alg, s.Scenario.N, s.Scenario.Seed); err != nil {
		return err
	}
	return nil
}

// id derives the job's identity from the normalized spec: an FNV-1a
// hash of its canonical JSON. Identity is content, not arrival — an
// identical resubmission lands on the same job (idempotent POST), and
// ids are reproducible across server restarts and worker counts,
// which is what keeps the API byte-deterministic under load.
func (s JobSpec) id() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Marshal of these plain structs cannot fail; keep the
		// signature infallible.
		panic(fmt.Sprintf("serve: marshal job spec: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("j%016x", h.Sum64())
}

// fleetKey identifies the reusable fleet shape behind a spec: every
// field except the horizon and per-request knobs. Fleet derivation and
// environment dynamics are horizon-independent, so jobs that differ
// only in horizon share one engine and session — exactly the reuse
// path the session layer was built for.
func (s JobSpec) fleetKey() string {
	s.Scenario.Horizon = 0
	s.EngineWorkers = 0
	s.IncludeMeetings = false
	s.TimeoutMs = 0
	return s.id()
}

// JobResult is the deterministic outcome of a completed job. Every
// field is a pure function of the spec; no timing, routing, or cache
// state leaks in.
type JobResult struct {
	Coverage scenario.Coverage
	MetFrac  float64
	// Meetings holds the first MaxMeetings meetings in canonical order
	// when the spec asked for them; Truncated reports whether the run
	// recorded more.
	Meetings  []simulator.Meeting `json:",omitempty"`
	Truncated bool                `json:",omitempty"`
}

// Job is one tracked simulation request.
type Job struct {
	ID   string
	Spec JobSpec

	// fleet is the spec's fleetKey, cached for quota bookkeeping.
	fleet string
	// canc is the job's cancellation seam into the engine: DELETE and
	// the deadline timer fire it, the worker installs it on the session
	// before running. Always non-nil for jobs created by Submit.
	canc *simulator.Canceler
	// deadlined records that the canceler was fired by the deadline
	// timer (vs an explicit DELETE), for the error message.
	deadlined atomic.Bool

	mu     sync.Mutex
	status JobStatus
	err    string
	result *JobResult
	doneAt time.Time // when a terminal status landed; TTL eviction clock
	done   chan struct{}
}

// Snapshot returns the job's current status, error, and result. The
// result pointer is shared; callers must not mutate it.
func (j *Job) Snapshot() (JobStatus, string, *JobResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.err, j.result
}

// Wait blocks until the job reaches a terminal status.
func (j *Job) Wait() { <-j.done }

// CancelEngine fires the job's engine-level canceler without settling
// its status: a run in flight stops at its next block-window boundary
// and the worker reports the job canceled. The chaos harness injects
// cancellations through this; clients use Manager.Cancel (DELETE).
func (j *Job) CancelEngine() { j.canc.Cancel() }

// setRunning claims the job for a worker. It fails when the job was
// canceled while still queued: the worker then just skips it.
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	return true
}

// finish moves the job to a terminal status, reporting whether this
// call made the transition. Terminal states are sticky: a worker
// completing a run races DELETE's immediate cancel, and whichever
// lands first wins while the loser becomes a no-op (close(done) must
// fire exactly once).
func (j *Job) finish(status JobStatus, res *JobResult, err error) bool {
	j.mu.Lock()
	if terminalStatus(j.status) {
		j.mu.Unlock()
		return false
	}
	j.status = status
	j.result = res
	if err != nil {
		j.err = err.Error()
	}
	j.doneAt = time.Now()
	j.mu.Unlock()
	close(j.done)
	return true
}

// expired reports whether the job has sat in a terminal status for at
// least ttl as of now.
func (j *Job) expired(now time.Time, ttl time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return terminalStatus(j.status) && now.Sub(j.doneAt) >= ttl
}

// timeout resolves the job's effective deadline: the spec's TimeoutMs
// when set, else the server default (0 = none).
func (j *Job) timeout(def time.Duration) time.Duration {
	if j.Spec.TimeoutMs > 0 {
		return time.Duration(j.Spec.TimeoutMs) * time.Millisecond
	}
	return def
}

// Config parameterizes a Manager (and the Server wrapping it).
type Config struct {
	// Workers is the job worker pool size; ≤ 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of jobs queued behind the workers;
	// ≤ 0 means 1024. A full queue rejects submissions (503).
	QueueDepth int
	// SessionsPerWorker caps each worker's session pool; ≤ 0 means 8.
	// The coldest fleet is closed and evicted past the cap.
	SessionsPerWorker int
	// Cache is the table cache reported by stats and drain; nil means
	// the cache engines currently capture (simulator.TableCache). It
	// must be the cache engines actually use, or the pin numbers
	// describe the wrong cache (tests swapping caches via
	// simulator.SetTableCache pass the same cache here).
	Cache *tablecache.Cache
	// MaxScheduleSlots bounds the hop-table length /v1/schedule
	// returns; ≤ 0 means 65536.
	MaxScheduleSlots int
	// JobTTL bounds how long a terminal job stays queryable before the
	// sweeper evicts it from the jobs map (the map otherwise grows
	// forever under sustained load). 0 means 15 minutes; negative
	// disables eviction. Live (queued/running) jobs are never evicted.
	JobTTL time.Duration
	// JobTimeout is the default per-job deadline; 0 means none.
	// JobSpec.TimeoutMs overrides it per job.
	JobTimeout time.Duration
	// MaxPerFleet caps the live (queued or running) jobs per fleet
	// shape, so one misbehaving client hammering a single expensive
	// fleet cannot monopolize the queue; ≤ 0 means unlimited.
	MaxPerFleet int
	// PreRun, when set, runs on the worker goroutine immediately after
	// a job is claimed and before it executes. It is the deterministic
	// fault-injection seam the chaos tests use (stalls, panics,
	// cancellations); leave nil in production.
	PreRun func(*Job)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.SessionsPerWorker <= 0 {
		c.SessionsPerWorker = 8
	}
	if c.Cache == nil {
		c.Cache = simulator.TableCache()
	}
	if c.MaxScheduleSlots <= 0 {
		c.MaxScheduleSlots = 65536
	}
	if c.JobTTL == 0 {
		c.JobTTL = 15 * time.Minute
	}
	return c
}

// Manager runs jobs through its worker pool.
type Manager struct {
	cfg   Config
	queue chan *Job

	mu          sync.Mutex
	jobs        map[string]*Job
	fleetActive map[string]int // live (non-terminal) jobs per fleet shape
	closed      bool

	// lateAbort flips when the drain deadline passes: workers then
	// mark still-queued jobs aborted instead of running them.
	lateAbort atomic.Bool
	wg        sync.WaitGroup
	stopSweep chan struct{}
	sweepDone chan struct{}

	sessionsOpened atomic.Int64
	sessionsReused atomic.Int64
	jobsEvicted    atomic.Int64
	quotaRejected  atomic.Int64
	shed           atomic.Int64
}

// NewManager starts the worker pool.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:         cfg,
		queue:       make(chan *Job, cfg.QueueDepth),
		jobs:        make(map[string]*Job),
		fleetActive: make(map[string]int),
		stopSweep:   make(chan struct{}),
		sweepDone:   make(chan struct{}),
	}
	m.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go m.worker()
	}
	if cfg.JobTTL > 0 {
		go m.sweeper()
	} else {
		close(m.sweepDone)
	}
	return m
}

// ErrQueueFull rejects submissions when the queue is at capacity.
var ErrQueueFull = fmt.Errorf("serve: job queue full")

// ErrDraining rejects submissions after Drain began.
var ErrDraining = fmt.Errorf("serve: draining, not accepting jobs")

// ErrQuotaExceeded rejects submissions past the per-fleet-shape cap.
var ErrQuotaExceeded = fmt.Errorf("serve: per-fleet job quota exceeded")

// errCanceled is the error recorded for explicitly canceled jobs.
var errCanceled = fmt.Errorf("job canceled")

// Submit validates and enqueues a job, returning the tracked Job and
// whether this call created it. Resubmitting an identical spec returns
// the existing job in whatever state it is (idempotent by content).
func (m *Manager) Submit(spec JobSpec) (job *Job, created bool, err error) {
	spec.normalize()
	if err := spec.validate(); err != nil {
		return nil, false, err
	}
	id := spec.id()
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		return j, false, nil
	}
	if m.closed {
		return nil, false, ErrDraining
	}
	fleet := spec.fleetKey()
	if m.cfg.MaxPerFleet > 0 && m.fleetActive[fleet] >= m.cfg.MaxPerFleet {
		m.quotaRejected.Add(1)
		return nil, false, ErrQuotaExceeded
	}
	j := &Job{
		ID: id, Spec: spec, fleet: fleet,
		canc:   &simulator.Canceler{},
		status: StatusQueued, done: make(chan struct{}),
	}
	select {
	case m.queue <- j:
	default:
		m.shed.Add(1)
		return nil, false, ErrQueueFull
	}
	m.jobs[id] = j
	m.fleetActive[fleet]++
	return j, true, nil
}

// finishJob moves a job to a terminal status and, when this call made
// the transition, releases its slot in the per-fleet quota. Every
// finish in the manager goes through here so the quota cannot leak.
func (m *Manager) finishJob(j *Job, status JobStatus, res *JobResult, err error) {
	if !j.finish(status, res, err) {
		return
	}
	m.mu.Lock()
	if m.fleetActive[j.fleet]--; m.fleetActive[j.fleet] <= 0 {
		delete(m.fleetActive, j.fleet)
	}
	m.mu.Unlock()
}

// Cancel stops the job with the given id. A queued job is finished
// canceled on the spot (the worker that later dequeues it skips it); a
// running job has its canceler fired, stopping the engine at its next
// block-window boundary; a job already terminal is evicted from the
// jobs map instead (manual DELETE doubles as eviction). The returned
// job reflects the post-cancel state.
func (m *Manager) Cancel(id string) (*Job, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	if status, _, _ := j.Snapshot(); terminalStatus(status) {
		m.mu.Lock()
		if _, still := m.jobs[id]; still {
			delete(m.jobs, id)
			m.jobsEvicted.Add(1)
		}
		m.mu.Unlock()
		return j, true
	}
	// Fire the engine seam first so a running job stops promptly, then
	// settle the status; if the worker's own finish wins the race the
	// job completes normally and this finish is a no-op.
	j.canc.Cancel()
	m.finishJob(j, StatusCanceled, nil, errCanceled)
	return j, true
}

// sweeper evicts expired terminal jobs every quarter-TTL until Drain.
func (m *Manager) sweeper() {
	defer close(m.sweepDone)
	tick := m.cfg.JobTTL / 4
	if tick < 100*time.Millisecond {
		tick = 100 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.stopSweep:
			return
		case now := <-t.C:
			m.evictExpired(now)
		}
	}
}

// evictExpired removes terminal jobs older than the TTL as of now,
// returning how many it evicted. Split from the sweeper goroutine so
// tests can drive the clock directly.
func (m *Manager) evictExpired(now time.Time) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for id, j := range m.jobs {
		if j.expired(now, m.cfg.JobTTL) {
			delete(m.jobs, id)
			n++
		}
	}
	m.jobsEvicted.Add(int64(n))
	return n
}

// Job returns the tracked job with the given id.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// worker drains the queue, owning a private session pool. The pool is
// closed (engines released) when the worker exits, so after Drain no
// worker holds a cache pin.
func (m *Manager) worker() {
	defer m.wg.Done()
	pool := newSessionPool(m.cfg.SessionsPerWorker)
	defer pool.close()
	for j := range m.queue {
		if m.lateAbort.Load() {
			m.finishJob(j, StatusAborted, nil, fmt.Errorf("drain deadline passed before the job started"))
			continue
		}
		m.runJob(pool, j)
	}
}

// runJob executes one job on the worker's session pool. A panic
// (schedule-contract violation in a hostile spec, or one injected by
// the chaos hook) fails the job rather than the daemon.
func (m *Manager) runJob(pool *sessionPool, j *Job) {
	if !j.setRunning() {
		// Canceled while queued: the cancel already settled the status.
		return
	}
	var fs *fleetSession
	defer func() {
		if r := recover(); r != nil {
			if fs != nil {
				// The pooled session outlives this job; never leave a
				// fired canceler installed for the next one.
				fs.sess.SetCanceler(nil)
			}
			m.finishJob(j, StatusFailed, nil, fmt.Errorf("job panicked: %v", r))
		}
	}()
	if hook := m.cfg.PreRun; hook != nil {
		hook(j)
	}
	if d := j.timeout(m.cfg.JobTimeout); d > 0 {
		timer := time.AfterFunc(d, func() {
			j.deadlined.Store(true)
			j.canc.Cancel()
		})
		defer timer.Stop()
	}
	sc := j.Spec.Scenario
	fs = pool.get(j.fleet)
	if fs == nil {
		build, err := scenario.BuilderFor(j.Spec.Alg, sc.N, sc.Seed)
		if err != nil {
			m.finishJob(j, StatusFailed, nil, err)
			return
		}
		fl, err := sc.Open(build)
		if err != nil {
			m.finishJob(j, StatusFailed, nil, err)
			return
		}
		fs = &fleetSession{fl: fl, sess: fl.Eng.Session()}
		if evicted := pool.put(j.fleet, fs); evicted != nil {
			evicted.fl.Close()
		}
		m.sessionsOpened.Add(1)
	} else {
		m.sessionsReused.Add(1)
	}
	fs.sess.SetCanceler(j.canc)
	res := fs.sess.RunParallelEnv(sc.Horizon, j.Spec.EngineWorkers, fs.fl.Env)
	fs.sess.SetCanceler(nil)
	if j.canc.Canceled() {
		// Drop the partial run state so the pooled session's next job
		// starts from a clean Result.
		fs.sess.Reset()
		why := errCanceled
		if j.deadlined.Load() {
			why = fmt.Errorf("job deadline exceeded after %v", j.timeout(m.cfg.JobTimeout))
		}
		m.finishJob(j, StatusCanceled, nil, why)
		return
	}
	cov := fs.fl.Summarize(res, sc.Horizon)
	out := &JobResult{Coverage: cov, MetFrac: cov.MetFrac()}
	if j.Spec.IncludeMeetings {
		ms := res.Meetings()
		if len(ms) > MaxMeetings {
			ms = ms[:MaxMeetings]
			out.Truncated = true
		}
		out.Meetings = ms
	}
	m.finishJob(j, StatusDone, out, nil)
}

// fleetSession is one worker's reusable run state for a fleet shape.
type fleetSession struct {
	fl   *scenario.Fleet
	sess *simulator.Session
	last int64 // pool LRU clock
}

// sessionPool is a worker-private LRU of fleet sessions. No locking:
// exactly one goroutine touches it.
type sessionPool struct {
	cap     int
	clock   int64
	entries map[string]*fleetSession
}

func newSessionPool(cap int) *sessionPool {
	return &sessionPool{cap: cap, entries: make(map[string]*fleetSession)}
}

func (p *sessionPool) get(key string) *fleetSession {
	fs := p.entries[key]
	if fs != nil {
		p.clock++
		fs.last = p.clock
	}
	return fs
}

// put inserts a session, returning the evicted coldest entry when the
// pool is over capacity (caller closes its fleet).
func (p *sessionPool) put(key string, fs *fleetSession) (evicted *fleetSession) {
	p.clock++
	fs.last = p.clock
	p.entries[key] = fs
	if len(p.entries) <= p.cap {
		return nil
	}
	coldKey := ""
	for k, e := range p.entries {
		if coldKey == "" || e.last < p.entries[coldKey].last {
			coldKey = k
		}
	}
	evicted = p.entries[coldKey]
	delete(p.entries, coldKey)
	return evicted
}

// close releases every pooled fleet's cache pins.
func (p *sessionPool) close() {
	for k, fs := range p.entries {
		fs.fl.Close()
		delete(p.entries, k)
	}
}

// DrainReport summarizes a completed drain.
type DrainReport struct {
	Done     int
	Failed   int
	Aborted  int
	Canceled int
	// Pinned is the cache's outstanding-pin entry count after every
	// worker released its engines; nonzero means a pin leak.
	Pinned int
}

// Drain stops accepting jobs, lets in-flight jobs finish, and gives
// queued jobs until the timeout to start; past it, still-queued jobs
// are marked aborted (reported, never dropped). It blocks until every
// worker has exited and released its session pool, then snapshots the
// cache's pin count — zero, unless something leaked. Drain is
// idempotent; a zero timeout aborts all still-queued jobs immediately.
func (m *Manager) Drain(timeout time.Duration) DrainReport {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
		close(m.stopSweep)
	}
	m.mu.Unlock()
	<-m.sweepDone
	var timer *time.Timer
	if timeout > 0 {
		timer = time.AfterFunc(timeout, func() { m.lateAbort.Store(true) })
	} else {
		m.lateAbort.Store(true)
	}
	m.wg.Wait()
	if timer != nil {
		timer.Stop()
	}
	rep := DrainReport{}
	m.mu.Lock()
	for _, j := range m.jobs {
		switch status, _, _ := j.Snapshot(); status {
		case StatusDone:
			rep.Done++
		case StatusFailed:
			rep.Failed++
		case StatusAborted:
			rep.Aborted++
		case StatusCanceled:
			rep.Canceled++
		}
	}
	m.mu.Unlock()
	rep.Pinned = m.cfg.Cache.Stats().Pinned
	return rep
}

// JobCounts is the per-status job census for stats.
type JobCounts struct {
	Queued, Running, Done, Failed, Aborted, Canceled int
}

// ManagerStats is the manager's point-in-time observability snapshot.
type ManagerStats struct {
	Workers        int
	QueueDepth     int
	QueueCapacity  int
	Jobs           JobCounts
	SessionsOpened int64
	SessionsReused int64
	// JobsEvicted counts terminal jobs removed from the jobs map (TTL
	// sweeps and manual DELETEs of finished jobs).
	JobsEvicted int64
	// QuotaRejected counts submissions refused by the per-fleet quota.
	QuotaRejected int64
	// Shed counts submissions refused because the queue was full.
	Shed int64
}

// Stats snapshots the manager.
func (m *Manager) Stats() ManagerStats {
	st := ManagerStats{
		Workers:        m.cfg.Workers,
		QueueDepth:     len(m.queue),
		QueueCapacity:  m.cfg.QueueDepth,
		SessionsOpened: m.sessionsOpened.Load(),
		SessionsReused: m.sessionsReused.Load(),
		JobsEvicted:    m.jobsEvicted.Load(),
		QuotaRejected:  m.quotaRejected.Load(),
		Shed:           m.shed.Load(),
	}
	m.mu.Lock()
	for _, j := range m.jobs {
		switch status, _, _ := j.Snapshot(); status {
		case StatusQueued:
			st.Jobs.Queued++
		case StatusRunning:
			st.Jobs.Running++
		case StatusDone:
			st.Jobs.Done++
		case StatusFailed:
			st.Jobs.Failed++
		case StatusAborted:
			st.Jobs.Aborted++
		case StatusCanceled:
			st.Jobs.Canceled++
		}
	}
	m.mu.Unlock()
	return st
}
