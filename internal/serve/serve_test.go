package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rendezvous/internal/scenario"
	"rendezvous/internal/simulator"
	"rendezvous/internal/tablecache"
)

// withIsolatedCache swaps the process table cache for a private one so
// pin/hit assertions see only this test's traffic, and returns it. The
// Config handed to managers must carry the same cache.
func withIsolatedCache(t *testing.T) *tablecache.Cache {
	t.Helper()
	c := tablecache.New(32 << 20)
	prev := simulator.SetTableCache(c)
	t.Cleanup(func() { simulator.SetTableCache(prev) })
	return c
}

func testSpec(seed uint64, horizon int) JobSpec {
	return JobSpec{
		Alg: "ours",
		Scenario: scenario.Scenario{
			N: 12, Agents: 8, K: 4, Seed: seed, Horizon: horizon,
			Churn: scenario.Churn{WakeSpread: 64},
		},
		IncludeMeetings: true,
	}
}

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read %s response: %v", path, err)
	}
	return resp.StatusCode, buf.Bytes()
}

func getBody(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read %s response: %v", path, err)
	}
	return resp.StatusCode, buf.Bytes()
}

func TestScheduleEndpoint(t *testing.T) {
	withIsolatedCache(t)
	srv := NewServer(Config{Workers: 1})
	defer srv.Drain(time.Second)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := `{"Alg":"ours","N":8,"Channels":[2,5,7],"Slots":32}`
	code, body := postJSON(t, ts, "/v1/schedule", req)
	if code != http.StatusOK {
		t.Fatalf("schedule status = %d, body %s", code, body)
	}
	var resp ScheduleResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Period <= 0 || len(resp.Hops) != 32 {
		t.Fatalf("bad schedule response: %+v", resp)
	}
	for i, ch := range resp.Hops {
		if ch != 2 && ch != 5 && ch != 7 {
			t.Fatalf("hop %d = %d, outside the channel set", i, ch)
		}
	}
	// Byte-determinism: the same request replays to the same bytes.
	_, body2 := postJSON(t, ts, "/v1/schedule", req)
	if !bytes.Equal(body, body2) {
		t.Fatalf("schedule response not byte-stable:\n%s\n%s", body, body2)
	}

	for _, bad := range []string{
		`{"N":0,"Channels":[1]}`,                    // bad universe
		`{"Alg":"nope","N":8,"Channels":[1]}`,       // unknown algorithm
		`{"N":8,"Channels":[1],"Slots":-1}`,         // negative slots
		`{"N":8,"Channels":[1],"Slots":1000000000}`, // over MaxScheduleSlots
		`{"N":8,"Channels":[9]}`,                    // channel outside universe
		`{"N":8,"Channels":[1],"Bogus":true}`,       // unknown field
		`{`,                                         // malformed JSON
	} {
		if code, body := postJSON(t, ts, "/v1/schedule", bad); code != http.StatusBadRequest {
			t.Errorf("schedule(%s) status = %d (%s), want 400", bad, code, body)
		}
	}
}

func TestJobLifecycleHTTP(t *testing.T) {
	withIsolatedCache(t)
	srv := NewServer(Config{Workers: 2})
	defer srv.Drain(time.Second)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec, _ := json.Marshal(testSpec(41, 4096))
	code, body := postJSON(t, ts, "/v1/jobs", string(spec))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %s", code, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("unmarshal submit: %v", err)
	}
	job, ok := srv.Manager().Job(sub.ID)
	if !ok {
		t.Fatalf("submitted job %q not tracked", sub.ID)
	}
	job.Wait()

	code, body = getBody(t, ts, "/v1/jobs/"+sub.ID)
	if code != http.StatusOK {
		t.Fatalf("get job status = %d", code)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("unmarshal job: %v", err)
	}
	if jr.Status != StatusDone || jr.Result == nil {
		t.Fatalf("job response = %+v, want done with result", jr)
	}
	if jr.Result.Coverage.EligiblePairs == 0 || jr.Result.MetFrac <= 0 {
		t.Fatalf("degenerate result: %+v", jr.Result)
	}
	if len(jr.Result.Meetings) == 0 {
		t.Fatalf("IncludeMeetings spec returned no meetings")
	}

	// Idempotent resubmission: same spec, same job, 200 not 202.
	code, body = postJSON(t, ts, "/v1/jobs", string(spec))
	if code != http.StatusOK {
		t.Fatalf("resubmit status = %d, body %s", code, body)
	}
	var sub2 SubmitResponse
	if err := json.Unmarshal(body, &sub2); err != nil {
		t.Fatalf("unmarshal resubmit: %v", err)
	}
	if sub2.ID != sub.ID || sub2.Status != StatusDone {
		t.Fatalf("resubmit = %+v, want same id %q done", sub2, sub.ID)
	}

	if code, _ := getBody(t, ts, "/v1/jobs/jdeadbeefdeadbeef"); code != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", code)
	}
	if code, body := postJSON(t, ts, "/v1/jobs", `{"Scenario":{"N":0}}`); code != http.StatusBadRequest {
		t.Fatalf("invalid spec status = %d (%s), want 400", code, body)
	}
}

// TestJobResultByteIdentical is the acceptance check: the same job spec
// produces byte-identical response JSON on a 1-worker and an 8-worker
// server, fresh or session-reused, with any engine worker count.
func TestJobResultByteIdentical(t *testing.T) {
	withIsolatedCache(t)
	specs := []JobSpec{
		testSpec(1, 4096), testSpec(2, 4096), testSpec(1, 1024), testSpec(1, 8192),
	}
	specs[3].EngineWorkers = 4 // resource knob; must not change bytes

	bodies := make(map[int][][]byte) // worker count -> per-spec body
	for _, workers := range []int{1, 8} {
		srv := NewServer(Config{Workers: workers})
		ts := httptest.NewServer(srv.Handler())
		for _, spec := range specs {
			b, _ := json.Marshal(spec)
			code, body := postJSON(t, ts, "/v1/jobs", string(b))
			if code != http.StatusAccepted {
				t.Fatalf("workers=%d submit status = %d, body %s", workers, code, body)
			}
			var sub SubmitResponse
			if err := json.Unmarshal(body, &sub); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			job, _ := srv.Manager().Job(sub.ID)
			job.Wait()
			_, jb := getBody(t, ts, "/v1/jobs/"+sub.ID)
			bodies[workers] = append(bodies[workers], jb)
		}
		ts.Close()
		if rep := srv.Drain(time.Second); rep.Pinned != 0 {
			t.Fatalf("workers=%d drain left %d pinned entries", workers, rep.Pinned)
		}
	}
	for i := range specs {
		if !bytes.Equal(bodies[1][i], bodies[8][i]) {
			t.Errorf("spec %d differs between worker counts:\n w1: %s\n w8: %s",
				i, bodies[1][i], bodies[8][i])
		}
	}
	// EngineWorkers=4 and EngineWorkers=1 are distinct jobs (distinct
	// ids) over the same scenario: their Results must match exactly.
	var a, b JobResponse
	if err := json.Unmarshal(bodies[1][3], &a); err != nil {
		t.Fatal(err)
	}
	spec1 := specs[3]
	spec1.EngineWorkers = 1
	srv := NewServer(Config{Workers: 1})
	defer srv.Drain(time.Second)
	job, _, err := srv.Manager().Submit(spec1)
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()
	_, _, res := job.Snapshot()
	ra, _ := json.Marshal(a.Result)
	rb, _ := json.Marshal(res)
	if !bytes.Equal(ra, rb) {
		b.Result = res
		t.Fatalf("EngineWorkers changed the result:\n 4: %s\n 1: %s", ra, rb)
	}
}

// TestSessionReuseSingleWorker pins the pool arithmetic: 24 jobs over 3
// fleet shapes on one worker open exactly 3 sessions and reuse 21, and
// the reused runs match fresh single-shot runs byte for byte.
func TestSessionReuseSingleWorker(t *testing.T) {
	cache := withIsolatedCache(t)
	mgr := NewManager(Config{Workers: 1, Cache: cache})
	t.Cleanup(func() { mgr.Drain(time.Minute) })
	var jobs []*Job
	for h := 0; h < 8; h++ {
		for seed := uint64(1); seed <= 3; seed++ {
			// Shrink then grow: exercises Result.reset at both ends.
			horizon := []int{4096, 512, 2048, 1024, 8192, 256, 3072, 16384}[h]
			job, created, err := mgr.Submit(testSpec(seed, horizon))
			if err != nil || !created {
				t.Fatalf("submit(seed=%d h=%d): created=%v err=%v", seed, horizon, created, err)
			}
			jobs = append(jobs, job)
		}
	}
	for _, j := range jobs {
		j.Wait()
	}
	st := mgr.Stats()
	if st.SessionsOpened != 3 || st.SessionsReused != 21 {
		t.Fatalf("sessions opened/reused = %d/%d, want 3/21", st.SessionsOpened, st.SessionsReused)
	}

	// Every pooled result must equal a fresh manager's (no session
	// carry-over between horizons).
	fresh := NewManager(Config{Workers: 4, Cache: cache})
	t.Cleanup(func() { fresh.Drain(time.Minute) })
	for _, j := range jobs {
		fj, _, err := fresh.Submit(j.Spec)
		if err != nil {
			t.Fatal(err)
		}
		fj.Wait()
		_, _, got := j.Snapshot()
		_, _, want := fj.Snapshot()
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if !bytes.Equal(gb, wb) {
			t.Fatalf("job %s (h=%d): pooled result differs from fresh:\n%s\n%s",
				j.ID, j.Spec.Scenario.Horizon, gb, wb)
		}
	}
	if rep := mgr.Drain(time.Minute); rep.Done != 24 || rep.Aborted != 0 {
		t.Fatalf("drain report = %+v, want 24 done", rep)
	}
	if rep := fresh.Drain(time.Minute); rep.Pinned != 0 {
		t.Fatalf("pins survive drain: %+v", rep)
	}
	if st := cache.Stats(); st.Pinned != 0 || st.Refs != 0 {
		t.Fatalf("cache pins after both drains: %+v", st)
	}
}

// TestManagerConcurrentSubmitters is the race-mode pool test: several
// goroutines hammer Submit with overlapping specs while 8 workers drain
// the queue through their private session pools.
func TestManagerConcurrentSubmitters(t *testing.T) {
	cache := withIsolatedCache(t)
	mgr := NewManager(Config{Workers: 8, QueueDepth: 512, Cache: cache})
	t.Cleanup(func() { mgr.Drain(time.Minute) })
	const submitters = 4
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				spec := testSpec(uint64(1+i%3), 256*(1+i%5))
				job, _, err := mgr.Submit(spec)
				if err != nil {
					errs <- fmt.Errorf("submit %d: %w", i, err)
					return
				}
				job.Wait()
				if status, msg, res := job.Snapshot(); status != StatusDone || res == nil {
					errs <- fmt.Errorf("job %s: status %s (%s)", job.ID, status, msg)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All submitters raced over 15 distinct specs; idempotency means 15
	// tracked jobs, every one done.
	st := mgr.Stats()
	if st.Jobs.Done != 15 || st.Jobs.Failed != 0 {
		t.Fatalf("job census = %+v, want 15 done", st.Jobs)
	}
	rep := mgr.Drain(time.Second)
	if rep.Done != 15 || rep.Aborted != 0 || rep.Pinned != 0 {
		t.Fatalf("drain report = %+v, want 15 done, 0 aborted, 0 pinned", rep)
	}
}

// drainSpec is slow enough (joint env scan over a big fleet) that a
// zero-deadline drain catches jobs still queued.
func drainSpec(i int) JobSpec {
	return JobSpec{
		Scenario: scenario.Scenario{
			N: 64, Agents: 200, K: 4, Seed: 99, Horizon: 8192 + i,
			PU: scenario.PrimaryUsers{Count: 8, Window: 64, OnFrac: 0.5},
		},
	}
}

// TestDrainAbortsQueued: with one worker and an immediate deadline,
// in-flight work completes, the queued remainder is reported aborted,
// and no cache pin survives the workers' exit.
func TestDrainAbortsQueued(t *testing.T) {
	cache := withIsolatedCache(t)
	mgr := NewManager(Config{Workers: 1, Cache: cache})
	t.Cleanup(func() { mgr.Drain(0) })
	var jobs []*Job
	for i := 0; i < 8; i++ {
		job, _, err := mgr.Submit(drainSpec(i))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	rep := mgr.Drain(0)
	if got := rep.Done + rep.Failed + rep.Aborted; got != len(jobs) {
		t.Fatalf("drain accounted for %d of %d jobs: %+v", got, len(jobs), rep)
	}
	if rep.Aborted < 5 {
		t.Fatalf("immediate drain aborted only %d of 8 queued jobs: %+v", rep.Aborted, rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("drain failed jobs: %+v", rep)
	}
	if rep.Pinned != 0 {
		t.Fatalf("drain left %d pinned cache entries", rep.Pinned)
	}
	for _, j := range jobs {
		status, msg, _ := j.Snapshot()
		switch status {
		case StatusDone, StatusAborted:
		default:
			t.Fatalf("job %s left in status %s (%s)", j.ID, status, msg)
		}
		if status == StatusAborted && msg == "" {
			t.Fatalf("aborted job %s carries no explanation", j.ID)
		}
	}
	if st := cache.Stats(); st.Pinned != 0 || st.Refs != 0 {
		t.Fatalf("cache pins after drain: %+v", st)
	}
	// Post-drain submissions are refused, idempotent lookups still work.
	if _, _, err := mgr.Submit(testSpec(7, 512)); err != ErrDraining {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
	if j, _, err := mgr.Submit(jobs[0].Spec); err != nil || j != jobs[0] {
		t.Fatalf("post-drain resubmit of known spec = %v, %v", j, err)
	}
}

// TestDrainFinishesQueuedUnderDeadline: a generous deadline lets every
// queued job run to completion before the workers exit.
func TestDrainFinishesQueuedUnderDeadline(t *testing.T) {
	cache := withIsolatedCache(t)
	mgr := NewManager(Config{Workers: 2, Cache: cache})
	t.Cleanup(func() { mgr.Drain(time.Minute) })
	for i := 0; i < 6; i++ {
		if _, _, err := mgr.Submit(testSpec(uint64(i%2), 512+i)); err != nil {
			t.Fatal(err)
		}
	}
	rep := mgr.Drain(time.Minute)
	if rep.Done != 6 || rep.Aborted != 0 || rep.Pinned != 0 {
		t.Fatalf("drain report = %+v, want 6 done, 0 aborted, 0 pinned", rep)
	}
}

func TestQueueFullRejects(t *testing.T) {
	cache := withIsolatedCache(t)
	mgr := NewManager(Config{Workers: 1, QueueDepth: 1, Cache: cache})
	defer mgr.Drain(time.Minute)
	first, _, err := mgr.Submit(drainSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pull the job off the queue.
	for {
		if status, _, _ := first.Snapshot(); status != StatusQueued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := mgr.Submit(drainSpec(1)); err != nil {
		t.Fatalf("queueing one job behind a busy worker: %v", err)
	}
	if _, _, err := mgr.Submit(drainSpec(2)); err != ErrQueueFull {
		t.Fatalf("submit to full queue = %v, want ErrQueueFull", err)
	}
}

func TestStatsEndpoint(t *testing.T) {
	withIsolatedCache(t)
	srv := NewServer(Config{Workers: 2})
	defer srv.Drain(time.Second)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec, _ := json.Marshal(testSpec(5, 1024))
	_, body := postJSON(t, ts, "/v1/jobs", string(spec))
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	job, _ := srv.Manager().Job(sub.ID)
	job.Wait()
	postJSON(t, ts, "/v1/schedule", `{"N":0}`) // one 400 for the error counter

	code, body := getBody(t, ts, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal stats: %v", err)
	}
	if st.Cache.Entries == 0 || st.Cache.Misses == 0 {
		t.Fatalf("cache stats empty after a job: %+v", st.Cache)
	}
	if st.Manager.Jobs.Done != 1 || st.Manager.Workers != 2 {
		t.Fatalf("manager stats = %+v", st.Manager)
	}
	if rs := st.Routes["POST /v1/jobs"]; rs.Count != 1 {
		t.Fatalf("jobs route count = %+v", rs)
	}
	if rs := st.Routes["POST /v1/schedule"]; rs.Count != 1 || rs.Errors != 1 {
		t.Fatalf("schedule route stats = %+v, want 1 count / 1 error", rs)
	}
	if code, _ := getBody(t, ts, "/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
}
