package serve

import (
	"encoding/json"
	"hash/fnv"
	"testing"
	"time"

	"rendezvous/internal/simulator"
	"rendezvous/internal/tablecache"
)

// chaosFault maps a job id to its injected fault. The id is a content
// hash of the spec, so the whole schedule of faults is deterministic:
// the same job list always stalls, panics, and cancels the same jobs.
func chaosFault(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % 4)
}

const (
	faultNone = iota
	faultStall
	faultPanic
	faultCancel
)

// chaosHook is the PreRun fault injector: worker stalls, mid-job
// panics, and engine-level cancellations, all keyed on the job id.
func chaosHook(j *Job) {
	switch chaosFault(j.ID) {
	case faultStall:
		time.Sleep(2 * time.Millisecond)
	case faultPanic:
		panic("chaos: injected panic")
	case faultCancel:
		j.CancelEngine()
	}
}

// TestChaosDrainUnderFaults is the fault-injection harness: a manager
// under a pathological 1-byte table cache runs a deterministic job load
// while the PreRun seam stalls workers, panics mid-job, and fires
// cancellations. The drain must account for every job with the status
// its fault dictates, report zero leaked pins, and every job that
// survived to done must match a fault-free control manager byte for
// byte.
func TestChaosDrainUnderFaults(t *testing.T) {
	// A 1-byte budget means no table ever stays resident past its pins:
	// constant eviction pressure under exactly the load the pins guard.
	chaosCache := tablecache.New(1)
	prev := simulator.SetTableCache(chaosCache)
	t.Cleanup(func() { simulator.SetTableCache(prev) })

	mgr := NewManager(Config{
		Workers: 4,
		Cache:   chaosCache,
		PreRun:  chaosHook,
	})
	var jobs []*Job
	for seed := uint64(1); seed <= 4; seed++ {
		for _, horizon := range []int{512, 1024, 2048, 4096, 8192} {
			job, created, err := mgr.Submit(testSpec(seed, horizon))
			if err != nil || !created {
				t.Fatalf("submit(seed=%d h=%d): created=%v err=%v", seed, horizon, created, err)
			}
			jobs = append(jobs, job)
		}
	}
	rep := mgr.Drain(time.Minute)
	if got := rep.Done + rep.Failed + rep.Aborted + rep.Canceled; got != len(jobs) {
		t.Fatalf("drain accounted for %d of %d jobs: %+v", got, len(jobs), rep)
	}
	if rep.Pinned != 0 {
		t.Fatalf("chaos drain leaked %d pins", rep.Pinned)
	}
	if st := chaosCache.Stats(); st.Pinned != 0 || st.Refs != 0 {
		t.Fatalf("cache pins after chaos drain: %+v", st)
	}

	// Each job's terminal status is dictated by its fault.
	var survivors []*Job
	for _, j := range jobs {
		status, msg, res := j.Snapshot()
		switch chaosFault(j.ID) {
		case faultPanic:
			if status != StatusFailed || res != nil {
				t.Fatalf("panic-injected job %s: status %s (%s)", j.ID, status, msg)
			}
		case faultCancel:
			if status != StatusCanceled || res != nil {
				t.Fatalf("cancel-injected job %s: status %s (%s)", j.ID, status, msg)
			}
		default:
			if status != StatusDone || res == nil {
				t.Fatalf("unfaulted job %s: status %s (%s)", j.ID, status, msg)
			}
			survivors = append(survivors, j)
		}
	}
	if len(survivors) == 0 {
		t.Fatal("fault schedule left no surviving jobs; pick different specs")
	}

	// Survivors must be byte-identical to a fault-free control manager
	// on a normal cache: neither the chaos around them nor the 1-byte
	// budget may leak into results.
	ctrlCache := tablecache.New(32 << 20)
	simulator.SetTableCache(ctrlCache)
	ctrl := NewManager(Config{Workers: 1, Cache: ctrlCache})
	defer ctrl.Drain(time.Minute)
	for _, j := range survivors {
		cj, _, err := ctrl.Submit(j.Spec)
		if err != nil {
			t.Fatal(err)
		}
		cj.Wait()
		_, _, got := j.Snapshot()
		_, _, want := cj.Snapshot()
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if string(gb) != string(wb) {
			t.Fatalf("job %s survived chaos with a different result:\n%s\n%s", j.ID, gb, wb)
		}
	}
}
