package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// postForHeaders is postJSON plus the response headers, for tests that
// pin the shedding contract (Retry-After).
func postForHeaders(t *testing.T, ts *httptest.Server, path, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s response: %v", path, err)
	}
	return resp.StatusCode, resp.Header, b
}

func doDelete(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s response: %v", path, err)
	}
	return resp.StatusCode, b
}

// waitStatus polls until the job leaves the given status.
func waitStatus(t *testing.T, j *Job, leaving JobStatus) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if status, _, _ := j.Snapshot(); status != leaving {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", j.ID, leaving)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShedQueueFullHTTP pins the overload contract: a full queue sheds
// with 429 and a positive integer Retry-After, and the shed counter
// lands in /v1/stats.
func TestShedQueueFullHTTP(t *testing.T) {
	withIsolatedCache(t)
	srv := NewServer(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mkBody := func(i int) string {
		b, _ := json.Marshal(drainSpec(i))
		return string(b)
	}
	// Occupy the worker, then fill the queue behind it.
	code, _, body := postForHeaders(t, ts, "/v1/jobs", mkBody(0))
	if code != http.StatusAccepted {
		t.Fatalf("first submit status = %d, body %s", code, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	first, _ := srv.Manager().Job(sub.ID)
	waitStatus(t, first, StatusQueued)
	if code, _, _ := postForHeaders(t, ts, "/v1/jobs", mkBody(1)); code != http.StatusAccepted {
		t.Fatalf("second submit status = %d, want 202", code)
	}

	code, hdr, body := postForHeaders(t, ts, "/v1/jobs", mkBody(2))
	if code != http.StatusTooManyRequests {
		t.Fatalf("full-queue submit status = %d (%s), want 429", code, body)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Fatalf("Retry-After = %q, want integer in [1, 60]", hdr.Get("Retry-After"))
	}

	_, sb := getBody(t, ts, "/v1/stats")
	var st StatsResponse
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if st.Manager.Shed != 1 {
		t.Fatalf("stats shed counter = %d, want 1", st.Manager.Shed)
	}

	// Cancel everything so drain returns promptly.
	for _, id := range []string{drainJobID(t, 0), drainJobID(t, 1)} {
		srv.Manager().Cancel(id)
	}
	if rep := srv.Drain(time.Minute); rep.Pinned != 0 {
		t.Fatalf("drain left pins: %+v", rep)
	}
}

func drainJobID(t *testing.T, i int) string {
	t.Helper()
	s := drainSpec(i)
	s.normalize()
	return s.id()
}

// TestShedDrainingHTTP pins the drain contract: a draining server says
// 503 with no Retry-After (the server is going away, not backed up).
func TestShedDrainingHTTP(t *testing.T) {
	withIsolatedCache(t)
	srv := NewServer(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Drain(0)

	b, _ := json.Marshal(testSpec(3, 512))
	code, hdr, body := postForHeaders(t, ts, "/v1/jobs", string(b))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit status = %d (%s), want 503", code, body)
	}
	if got := hdr.Get("Retry-After"); got != "" {
		t.Fatalf("draining response carries Retry-After %q", got)
	}
}

// TestShedQuotaHTTP pins the per-fleet admission quota: a second live
// job for the same fleet shape sheds with 429 + Retry-After while a
// different fleet is still admitted, and the rejection is counted.
func TestShedQuotaHTTP(t *testing.T) {
	withIsolatedCache(t)
	srv := NewServer(Config{Workers: 1, MaxPerFleet: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// drainSpec(0) and drainSpec(1) differ only in horizon: same fleet.
	b0, _ := json.Marshal(drainSpec(0))
	code, _, body := postForHeaders(t, ts, "/v1/jobs", string(b0))
	if code != http.StatusAccepted {
		t.Fatalf("first submit status = %d (%s)", code, body)
	}
	b1, _ := json.Marshal(drainSpec(1))
	code, hdr, body := postForHeaders(t, ts, "/v1/jobs", string(b1))
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit status = %d (%s), want 429", code, body)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("over-quota Retry-After = %q", hdr.Get("Retry-After"))
	}
	// A different fleet shape is unaffected by that fleet's quota.
	bOther, _ := json.Marshal(testSpec(9, 512))
	if code, _, body := postForHeaders(t, ts, "/v1/jobs", string(bOther)); code != http.StatusAccepted {
		t.Fatalf("other-fleet submit status = %d (%s), want 202", code, body)
	}

	_, sb := getBody(t, ts, "/v1/stats")
	var st StatsResponse
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if st.Manager.QuotaRejected != 1 {
		t.Fatalf("quota-rejected counter = %d, want 1", st.Manager.QuotaRejected)
	}

	srv.Manager().Cancel(drainJobID(t, 0))
	if rep := srv.Drain(time.Minute); rep.Pinned != 0 {
		t.Fatalf("drain left pins: %+v", rep)
	}
}

// TestQuotaReleasedOnCompletion pins the quota bookkeeping: once the
// live job reaches a terminal state the fleet slot frees and the same
// shape is admitted again.
func TestQuotaReleasedOnCompletion(t *testing.T) {
	cache := withIsolatedCache(t)
	mgr := NewManager(Config{Workers: 1, MaxPerFleet: 1, Cache: cache})
	t.Cleanup(func() { mgr.Drain(time.Minute) })
	first, _, err := mgr.Submit(testSpec(1, 512))
	if err != nil {
		t.Fatal(err)
	}
	first.Wait()
	if _, created, err := mgr.Submit(testSpec(1, 1024)); err != nil || !created {
		t.Fatalf("same-fleet submit after completion: created=%v err=%v", created, err)
	}
}

// TestCancelJobHTTP walks the DELETE lifecycle over HTTP: cancel a
// running job (the engine stops at a block-window boundary, no result),
// a second DELETE evicts the terminal job, and a fresh resubmission of
// the same spec then runs to completion — byte-identical to a control
// run, proving cancellation leaves no state behind.
func TestCancelJobHTTP(t *testing.T) {
	cache := withIsolatedCache(t)
	srv := NewServer(Config{Workers: 1, Cache: cache})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	b, _ := json.Marshal(drainSpec(0))
	code, _, body := postForHeaders(t, ts, "/v1/jobs", string(b))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d (%s)", code, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	job, _ := srv.Manager().Job(sub.ID)
	waitStatus(t, job, StatusQueued)

	code, db := doDelete(t, ts, "/v1/jobs/"+sub.ID)
	if code != http.StatusOK {
		t.Fatalf("DELETE status = %d (%s)", code, db)
	}
	var jr JobResponse
	if err := json.Unmarshal(db, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Status != StatusCanceled || jr.Result != nil {
		t.Fatalf("cancel response = %+v, want canceled with no result", jr)
	}
	job.Wait() // done channel closed by the cancel

	// Second DELETE evicts the terminal job; the id then 404s.
	if code, _ := doDelete(t, ts, "/v1/jobs/"+sub.ID); code != http.StatusOK {
		t.Fatalf("evicting DELETE status = %d", code)
	}
	if code, _ := getBody(t, ts, "/v1/jobs/"+sub.ID); code != http.StatusNotFound {
		t.Fatalf("GET after eviction status = %d, want 404", code)
	}
	if code, _ := doDelete(t, ts, "/v1/jobs/"+sub.ID); code != http.StatusNotFound {
		t.Fatalf("DELETE after eviction status = %d, want 404", code)
	}

	// Resubmitted after eviction, the same spec runs fresh to done —
	// and its result matches a control manager's byte for byte.
	code, _, body = postForHeaders(t, ts, "/v1/jobs", string(b))
	if code != http.StatusAccepted {
		t.Fatalf("resubmit status = %d (%s)", code, body)
	}
	rejob, _ := srv.Manager().Job(sub.ID)
	rejob.Wait()
	if status, msg, _ := rejob.Snapshot(); status != StatusDone {
		t.Fatalf("resubmitted job status = %s (%s), want done", status, msg)
	}
	ctrl := NewManager(Config{Workers: 1, Cache: cache})
	cj, _, err := ctrl.Submit(drainSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	cj.Wait()
	_, _, got := rejob.Snapshot()
	_, _, want := cj.Snapshot()
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if string(gb) != string(wb) {
		t.Fatalf("post-cancel rerun differs from control:\n%s\n%s", gb, wb)
	}

	// Both managers share the cache: only after both drain may no pin
	// survive.
	ctrl.Drain(time.Minute)
	if rep := srv.Drain(time.Minute); rep.Pinned != 0 {
		t.Fatalf("drain left pins: %+v", rep)
	}
}

// TestCancelRunningJob cancels a job mid-run through the manager: the
// status settles canceled with no result, the drain census counts it,
// and no cache pin leaks.
func TestCancelRunningJob(t *testing.T) {
	cache := withIsolatedCache(t)
	mgr := NewManager(Config{Workers: 1, Cache: cache})
	job, _, err := mgr.Submit(drainSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, job, StatusQueued)
	if _, ok := mgr.Cancel(job.ID); !ok {
		t.Fatal("Cancel lost the job")
	}
	job.Wait()
	if status, msg, res := job.Snapshot(); status != StatusCanceled || res != nil || msg == "" {
		t.Fatalf("canceled job snapshot = %s %q %v", status, msg, res)
	}
	if _, ok := mgr.Cancel("junk"); ok {
		t.Fatal("Cancel invented a job")
	}
	rep := mgr.Drain(time.Minute)
	if rep.Canceled != 1 || rep.Pinned != 0 {
		t.Fatalf("drain report = %+v, want 1 canceled, 0 pinned", rep)
	}
	if st := cache.Stats(); st.Pinned != 0 || st.Refs != 0 {
		t.Fatalf("cache pins after cancel+drain: %+v", st)
	}
}

// TestJobDeadline pins per-job deadlines: a spec-level TimeoutMs cuts a
// long run off at a block-window boundary and reports canceled with a
// deadline message, while a generous server default leaves fast jobs
// untouched.
func TestJobDeadline(t *testing.T) {
	cache := withIsolatedCache(t)
	mgr := NewManager(Config{Workers: 1, JobTimeout: time.Hour, Cache: cache})
	t.Cleanup(func() { mgr.Drain(time.Minute) })

	slow := drainSpec(5)
	slow.TimeoutMs = 1
	job, _, err := mgr.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()
	status, msg, res := job.Snapshot()
	if status != StatusCanceled || res != nil {
		t.Fatalf("deadlined job = %s %v, want canceled with no result", status, res)
	}
	if !strings.Contains(msg, "deadline") {
		t.Fatalf("deadlined job error = %q, want a deadline message", msg)
	}

	fast, _, err := mgr.Submit(testSpec(2, 512))
	if err != nil {
		t.Fatal(err)
	}
	fast.Wait()
	if status, msg, _ := fast.Snapshot(); status != StatusDone {
		t.Fatalf("fast job under default deadline = %s (%s), want done", status, msg)
	}
}

// TestJobTTLEviction drives the sweeper's clock directly: terminal jobs
// older than the TTL are evicted (and counted), live jobs never are.
func TestJobTTLEviction(t *testing.T) {
	cache := withIsolatedCache(t)
	mgr := NewManager(Config{Workers: 1, JobTTL: time.Minute, Cache: cache})
	done, _, err := mgr.Submit(testSpec(1, 512))
	if err != nil {
		t.Fatal(err)
	}
	done.Wait()
	slow, _, err := mgr.Submit(drainSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, slow, StatusQueued)

	if n := mgr.evictExpired(time.Now()); n != 0 {
		t.Fatalf("fresh terminal job evicted: %d", n)
	}
	if n := mgr.evictExpired(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("expired sweep evicted %d, want 1 (the done job, not the running one)", n)
	}
	if _, ok := mgr.Job(done.ID); ok {
		t.Fatal("evicted job still tracked")
	}
	if _, ok := mgr.Job(slow.ID); !ok {
		t.Fatal("running job evicted by TTL sweep")
	}
	if st := mgr.Stats(); st.JobsEvicted != 1 {
		t.Fatalf("JobsEvicted = %d, want 1", st.JobsEvicted)
	}
	mgr.Cancel(slow.ID)
	if rep := mgr.Drain(time.Minute); rep.Pinned != 0 {
		t.Fatalf("drain left pins: %+v", rep)
	}
}
