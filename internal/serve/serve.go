// Package serve is the HTTP surface of rvserve, the long-running
// rendezvous daemon: schedule generation (POST /v1/schedule) and
// simulation jobs (POST /v1/jobs, GET /v1/jobs/{id}) over JSON, with a
// bounded job queue, a fixed worker pool of per-goroutine session
// pools, graceful drain, and a /v1/stats endpoint surfacing table-cache
// counters, queue depth, and per-route latency.
//
// Determinism contract: every schedule response and every completed
// job's Result are pure functions of the request — byte-identical JSON
// for the same request at any worker count, queue schedule, or cache
// budget. Envelope fields that track execution (job Status before
// completion, /v1/stats) are the documented exceptions.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"rendezvous/internal/scenario"
	"rendezvous/internal/tablecache"
)

// Server wires the manager into an http.Handler.
type Server struct {
	cfg Config
	mgr *Manager
	mux *http.ServeMux

	latMu sync.Mutex
	lat   map[string]*latRecorder // route pattern -> recorder
}

// NewServer starts the worker pool and registers the routes.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		mgr: NewManager(cfg),
		mux: http.NewServeMux(),
		lat: make(map[string]*latRecorder),
	}
	s.handle("POST /v1/schedule", s.handleSchedule)
	s.handle("POST /v1/jobs", s.handleSubmit)
	s.handle("GET /v1/jobs/{id}", s.handleJob)
	s.handle("DELETE /v1/jobs/{id}", s.handleCancel)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("GET /v1/healthz", s.handleHealthz)
	return s
}

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager exposes the job manager (drain, tests).
func (s *Server) Manager() *Manager { return s.mgr }

// Drain is Manager.Drain; see its contract.
func (s *Server) Drain(timeout time.Duration) DrainReport { return s.mgr.Drain(timeout) }

// handle registers a routed handler wrapped with latency recording.
func (s *Server) handle(pattern string, h func(http.ResponseWriter, *http.Request)) {
	rec := &latRecorder{}
	s.latMu.Lock()
	s.lat[pattern] = rec
	s.latMu.Unlock()
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		h(cw, r)
		rec.observe(time.Since(start), cw.code >= 400)
	})
}

// codeWriter captures the status code for the latency recorder.
type codeWriter struct {
	http.ResponseWriter
	code int
}

func (w *codeWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// writeJSON writes a JSON response body. Encoding is canonical
// (encoding/json struct order), which is what the byte-determinism
// contract rides on.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errBody struct {
	Error string
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errBody{Error: err.Error()})
}

// decodeStrict decodes a JSON request body, rejecting unknown fields
// so spec typos fail loudly instead of silently meaning the default.
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

// ScheduleRequest asks for one agent's hop sequence.
type ScheduleRequest struct {
	// Alg names the builder (ours, general, crseq, crseq-rand,
	// jumpstay, random); defaults to ours.
	Alg string
	// N is the channel universe size [1, N].
	N int
	// Channels is the agent's available channel set.
	Channels []int
	// Seed feeds randomized algorithms; irrelevant to deterministic
	// ones but part of the response identity either way.
	Seed uint64
	// Slots is the hop-table length to return; 0 means
	// min(period, 256), capped by the server's MaxScheduleSlots.
	Slots int
}

// ScheduleResponse is the deterministic reply: the request echoed plus
// the schedule's period and its first Slots hops.
type ScheduleResponse struct {
	Alg      string
	N        int
	Channels []int
	Seed     uint64
	Period   int
	Slots    int
	Hops     []int
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if err := decodeStrict(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Alg == "" {
		req.Alg = "ours"
	}
	if req.N < 1 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("universe size N=%d must be positive", req.N))
		return
	}
	if req.Slots < 0 || req.Slots > s.cfg.MaxScheduleSlots {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("slots %d out of range [0, %d]", req.Slots, s.cfg.MaxScheduleSlots))
		return
	}
	build, err := scenario.BuilderFor(req.Alg, req.N, req.Seed)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sched, err := build(req.Channels, 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	period := sched.Period()
	slots := req.Slots
	if slots == 0 {
		slots = min(period, 256)
	}
	hops := make([]int, slots)
	for t := range hops {
		hops[t] = sched.Channel(t)
	}
	writeJSON(w, http.StatusOK, ScheduleResponse{
		Alg: req.Alg, N: req.N, Channels: req.Channels, Seed: req.Seed,
		Period: period, Slots: slots, Hops: hops,
	})
}

// SubmitResponse acknowledges a job submission. Status reflects the
// job's state at response time (a resubmitted spec may already be
// running or done).
type SubmitResponse struct {
	ID     string
	Status JobStatus
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := decodeStrict(r, &spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	job, created, err := s.mgr.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQuotaExceeded):
		// Overload, not failure: shed with 429 and tell the client when
		// to come back. Draining stays 503 (the server is going away,
		// retrying here won't help).
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	status, _, _ := job.Snapshot()
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
	}
	writeJSON(w, code, SubmitResponse{ID: job.ID, Status: status})
}

// JobResponse is a job's state. For a done job, Result is
// byte-deterministic; Status/Error are the envelope.
type JobResponse struct {
	ID     string
	Status JobStatus
	Error  string     `json:",omitempty"`
	Result *JobResult `json:",omitempty"`
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.mgr.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	status, errMsg, result := job.Snapshot()
	writeJSON(w, http.StatusOK, JobResponse{ID: job.ID, Status: status, Error: errMsg, Result: result})
}

// retryAfterSeconds derives a Retry-After hint from queue pressure: a
// full queue clears at roughly depth/workers job-durations, clamped to
// [1s, 60s] so clients always get a sane, bounded hint.
func (s *Server) retryAfterSeconds() int {
	st := s.mgr.Stats()
	secs := 1 + st.QueueDepth/max(1, st.Workers)
	return min(secs, 60)
}

// handleCancel is DELETE /v1/jobs/{id}: cancel a queued or running job
// (the engine stops at its next block-window boundary), or evict an
// already-finished one. The response is the job's post-cancel state.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.mgr.Cancel(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	status, errMsg, result := job.Snapshot()
	writeJSON(w, http.StatusOK, JobResponse{ID: job.ID, Status: status, Error: errMsg, Result: result})
}

// RouteStats is one route's latency census since server start.
type RouteStats struct {
	Count   int64
	Errors  int64
	P50Us   int64
	P99Us   int64
	MaxUs   int64
	TotalUs int64
}

// StatsResponse is the /v1/stats body. It is observability, not part
// of the determinism contract.
type StatsResponse struct {
	Cache   tablecache.Stats
	Manager ManagerStats
	Routes  map[string]RouteStats
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Cache:   s.cfg.Cache.Stats(),
		Manager: s.mgr.Stats(),
		Routes:  make(map[string]RouteStats),
	}
	s.latMu.Lock()
	for pattern, rec := range s.lat {
		resp.Routes[pattern] = rec.stats()
	}
	s.latMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct{ OK bool }{true})
}

// latBounds are the latency histogram bucket upper bounds; the final
// implicit bucket is unbounded. Log-spaced from 50µs to 5s — request
// handling spans schedule lookups (µs) to giant-fleet job polls (ms).
const numLatBounds = 16

var latBounds = [numLatBounds]time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
	20 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
	500 * time.Millisecond, time.Second, 2 * time.Second, 5 * time.Second,
}

// latRecorder is a fixed-bucket latency histogram plus extrema; cheap
// enough to sit on every request.
type latRecorder struct {
	mu      sync.Mutex
	count   int64
	errors  int64
	total   time.Duration
	max     time.Duration
	buckets [numLatBounds + 1]int64
}

func (l *latRecorder) observe(d time.Duration, isErr bool) {
	i := sort.Search(len(latBounds), func(i int) bool { return d <= latBounds[i] })
	l.mu.Lock()
	l.count++
	if isErr {
		l.errors++
	}
	l.total += d
	if d > l.max {
		l.max = d
	}
	l.buckets[i]++
	l.mu.Unlock()
}

// quantileLocked returns the upper bound of the bucket holding the
// q-quantile observation — an upper estimate within one bucket width.
func (l *latRecorder) quantileLocked(q float64) time.Duration {
	if l.count == 0 {
		return 0
	}
	rank := int64(q * float64(l.count-1))
	var seen int64
	for i, c := range l.buckets {
		seen += c
		if seen > rank {
			if i < len(latBounds) {
				return latBounds[i]
			}
			return l.max
		}
	}
	return l.max
}

func (l *latRecorder) stats() RouteStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return RouteStats{
		Count:   l.count,
		Errors:  l.errors,
		P50Us:   l.quantileLocked(0.50).Microseconds(),
		P99Us:   l.quantileLocked(0.99).Microseconds(),
		MaxUs:   l.max.Microseconds(),
		TotalUs: l.total.Microseconds(),
	}
}
