package ramsey

import "testing"

func TestPaletteSize(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 255: 8, 256: 9, 1024: 11}
	for n, want := range cases {
		if got := PaletteSize(n); got != want {
			t.Errorf("PaletteSize(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestColorWithinPalette(t *testing.T) {
	const n = 300
	for a := 1; a < n; a++ {
		for b := a + 1; b <= n; b++ {
			c, err := Color(a, b, n)
			if err != nil {
				t.Fatalf("Color(%d,%d): %v", a, b, err)
			}
			if c < 0 || c >= PaletteSize(n) {
				t.Fatalf("Color(%d,%d) = %d outside palette [0,%d)", a, b, c, PaletteSize(n))
			}
			// The color must be a separating bit: set in b, clear in a.
			if b>>uint(c)&1 != 1 || a>>uint(c)&1 != 0 {
				t.Fatalf("Color(%d,%d) = %d is not a separating bit", a, b, c)
			}
		}
	}
}

// TestNoMonochromaticPath exhaustively verifies Lemma 2: no directed path
// a < b < c has χ(a,b) = χ(b,c).
func TestNoMonochromaticPath(t *testing.T) {
	const n = 128
	for a := 1; a <= n; a++ {
		for b := a + 1; b <= n; b++ {
			ab := MustColor(a, b, n)
			for c := b + 1; c <= n; c++ {
				if bc := MustColor(b, c, n); ab == bc {
					t.Fatalf("monochromatic path %d→%d→%d with color %d", a, b, c, ab)
				}
			}
		}
	}
}

func TestColorErrors(t *testing.T) {
	for _, bad := range [][3]int{{0, 1, 4}, {2, 2, 4}, {3, 2, 4}, {1, 5, 4}} {
		if _, err := Color(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("Color(%v): expected error", bad)
		}
	}
}

func TestMustColorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustColor(2, 2, 4)
}
