// Package ramsey implements the 2-Ramsey edge coloring of the linear
// poset Lₙ from Lemma 2 of Chen et al. (ICDCS 2014): a coloring of the
// directed edges {(a,b) : 1 ≤ a < b ≤ n} with a palette of bitlen(n)
// colors such that no directed path of length two is monochromatic.
//
// The coloring colors edge (a,b) with a bit position that is 1 in b and
// 0 in a; such a position always exists when a < b. For a directed path
// (a,b), (b,c) the colors differ: χ(a,b) is a 1-bit of b while χ(b,c),
// being an element of X_c \ X_b, is a 0-bit of b.
package ramsey

import (
	"fmt"
	"math/bits"
)

// PaletteSize returns the number of colors used by Coloring for universe
// size n: bitlen(n), the number of bits needed to write n in binary.
// (The paper states log♯n = ⌈log₂n⌉; for channel values up to n the
// bit-set argument requires ⌊log₂n⌋+1 positions, which differs only when
// n is a power of two and affects only the constant inside O(log log n).)
func PaletteSize(n int) int {
	if n < 1 {
		return 0
	}
	return bits.Len(uint(n))
}

// Color returns the color of edge (a,b) in the 2-Ramsey coloring of Lₙ,
// a value in {0, …, PaletteSize(n)−1}. It requires 1 ≤ a < b ≤ n.
//
// The color is the index (0 = least significant) of the highest bit that
// is set in b and clear in a.
func Color(a, b, n int) (int, error) {
	if !(1 <= a && a < b && b <= n) {
		return 0, fmt.Errorf("ramsey: need 1 ≤ a < b ≤ n, got a=%d b=%d n=%d", a, b, n)
	}
	diff := uint(b) &^ uint(a) // bits set in b but not a
	if diff == 0 {
		// Impossible for a < b; defensive.
		return 0, fmt.Errorf("ramsey: no separating bit for a=%d b=%d", a, b)
	}
	return bits.Len(diff) - 1, nil
}

// MustColor is Color for arguments known to satisfy 1 ≤ a < b ≤ n.
func MustColor(a, b, n int) int {
	c, err := Color(a, b, n)
	if err != nil {
		panic(err)
	}
	return c
}
