package rendezvous_test

import (
	"math/rand"
	"testing"

	"rendezvous"
)

// TestFacadeQuickstart exercises the package-doc example end to end.
func TestFacadeQuickstart(t *testing.T) {
	n := 1024
	a, err := rendezvous.New(n, []int{3, 90, 512})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rendezvous.New(n, []int{90, 700})
	if err != nil {
		t.Fatal(err)
	}
	ttr, ok := rendezvous.PairTTR(a, b, 0, 17, 1_000_000)
	if !ok {
		t.Fatal("quickstart pair failed to rendezvous")
	}
	if ttr < 0 {
		t.Fatalf("negative TTR %d", ttr)
	}
	// They may only ever meet on the one shared channel.
	slot := 17 + ttr
	if got := a.Channel(slot); got != 90 {
		t.Fatalf("met on channel %d, want 90", got)
	}
}

func TestFacadeSymmetricConstant(t *testing.T) {
	s1, err := rendezvous.New(256, []int{8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := rendezvous.New(256, []int{8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, wake := range []int{0, 1, 5, 99} {
		ttr, ok := rendezvous.PairTTR(s1, s2, 0, wake, 10)
		if !ok || ttr > 6 {
			t.Fatalf("symmetric TTR = %d (ok=%v) at wake %d", ttr, ok, wake)
		}
	}
}

func TestFacadeEngine(t *testing.T) {
	n := 64
	mk := func(set []int) rendezvous.Schedule {
		s, err := rendezvous.New(n, set)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	agents := []rendezvous.Agent{
		{Name: "base", Sched: mk([]int{10, 20, 30}), Wake: 0},
		{Name: "drone", Sched: mk([]int{20, 40}), Wake: 11},
		{Name: "sensor", Sched: mk([]int{30, 40}), Wake: 23},
	}
	eng, err := rendezvous.NewEngine(agents)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(500_000)
	for _, pair := range [][2]string{{"base", "drone"}, {"base", "sensor"}, {"drone", "sensor"}} {
		if _, ok := res.Meeting(pair[0], pair[1]); !ok {
			t.Errorf("pair %v never met", pair)
		}
	}
}

func TestFacadeBaselines(t *testing.T) {
	n := 32
	set := []int{4, 9, 27}
	for name, build := range map[string]func() (rendezvous.Schedule, error){
		"crseq":      func() (rendezvous.Schedule, error) { return rendezvous.NewCRSEQ(n, set) },
		"crseq-rand": func() (rendezvous.Schedule, error) { return rendezvous.NewCRSEQRandomized(n, set, 7) },
		"crseq-sym":  func() (rendezvous.Schedule, error) { return rendezvous.NewCRSEQSymmetric(n, set) },
		"jumpstay":   func() (rendezvous.Schedule, error) { return rendezvous.NewJumpStay(n, set) },
		"random":     func() (rendezvous.Schedule, error) { return rendezvous.NewRandom(n, set, 3, 1<<16) },
		"sweep":      func() (rendezvous.Schedule, error) { return rendezvous.NewSweep(n, set) },
	} {
		s, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Period() <= 0 {
			t.Errorf("%s: non-positive period", name)
		}
		if got := s.Channel(0); got < 1 || got > n {
			t.Errorf("%s: channel %d out of range", name, got)
		}
	}
}

func TestFacadeBeacon(t *testing.T) {
	src := rendezvous.NewBeaconSource(42)
	n := 512
	a, err := rendezvous.NewBeaconWalk(n, []int{5, 100, 400}, src, rendezvous.BeaconConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rendezvous.NewBeaconWalk(n, []int{100, 222}, src, rendezvous.BeaconConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Global clock: compare at absolute slots via AlignWake + engine.
	eng, err := rendezvous.NewEngine([]rendezvous.Agent{
		{Name: "a", Sched: rendezvous.AlignWake(a, 3), Wake: 3},
		{Name: "b", Sched: rendezvous.AlignWake(b, 30), Wake: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(100_000)
	if _, ok := res.Meeting("a", "b"); !ok {
		t.Fatal("beacon agents failed to meet")
	}
}

func TestFacadeDynamic(t *testing.T) {
	d, err := rendezvous.NewDynamic(64, []rendezvous.Phase{
		{FromSlot: 0, Channels: []int{1, 2, 3}},
		{FromSlot: 1000, Channels: []int{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Channel(1500) != 2 {
		t.Fatalf("post-change channel = %d, want 2", d.Channel(1500))
	}
}

func TestFacadeOneRound(t *testing.T) {
	g, err := rendezvous.NewOneRoundGraph(4, [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 1}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rendezvous.SolveOneRound(g, rendezvous.OneRoundSDPOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.InPairs < 1 {
		t.Errorf("SDP found only %d in-pairs", res.InPairs)
	}
	_, best := rendezvous.BestRandomOrientation(g, rand.New(rand.NewSource(2)), 32)
	if best < 1 {
		t.Errorf("random baseline found %d in-pairs", best)
	}
	if res.InPairs < best {
		t.Errorf("SDP (%d) should not lose to best-of-32 random (%d)", res.InPairs, best)
	}
}

func TestFacadeRejectsBadInput(t *testing.T) {
	if _, err := rendezvous.New(0, []int{1}); err == nil {
		t.Error("n=0: expected error")
	}
	if _, err := rendezvous.New(8, nil); err == nil {
		t.Error("empty set: expected error")
	}
	if _, err := rendezvous.NewGeneral(8, []int{9}); err == nil {
		t.Error("out of range: expected error")
	}
}
