package rendezvous

import "rendezvous/internal/baselines"

// NewCRSEQ returns the Shin-Yang-Kim CRSEQ baseline (IEEE Communications
// Letters 2010): the O(n²) row of the paper's Table 1. With the
// deterministic index remap CRSEQ lacks a worst-case asymmetric
// guarantee (see DESIGN.md for the counterexample found during this
// reproduction); NewCRSEQRandomized restores probability-1 rendezvous.
func NewCRSEQ(n int, channels []int) (Schedule, error) {
	return baselines.NewCRSEQ(n, channels)
}

// NewCRSEQRandomized is CRSEQ with seeded pseudo-random remapping of
// inaccessible channels.
func NewCRSEQRandomized(n int, channels []int, seed uint64) (Schedule, error) {
	return baselines.NewCRSEQRandomized(n, channels, seed)
}

// NewJumpStay returns the Lin-Liu-Chu-Leung jump-stay baseline (INFOCOM
// 2011): O(n³) asymmetric / O(n) symmetric rendezvous, the middle row of
// Table 1.
func NewJumpStay(n int, channels []int) (Schedule, error) {
	return baselines.NewJumpStay(n, channels)
}

// NewRandom returns the randomized strawman from the paper's
// introduction: an independent uniform channel of the set each slot
// (derived from seed; pure in t). Expected rendezvous in
// ≈ |S_A||S_B|/|S_A∩S_B| slots, no deterministic guarantee.
func NewRandom(n int, channels []int, seed uint64, period int) (Schedule, error) {
	return baselines.NewRandom(n, channels, seed, period)
}

// NewSweep returns the trivial synchronous-model schedule from §4
// (hop channel t at slot t when available): Rs(n,k) ≤ n, nothing in the
// asynchronous model.
func NewSweep(n int, channels []int) (Schedule, error) {
	return baselines.NewSweep(n, channels)
}

// NewCRSEQSymmetric wraps CRSEQ with the §3.2 reduction: an
// O(n²)-asymmetric / O(1)-symmetric schedule used as the harness
// stand-in for the Gu-Hua-Wang-Lau Table-1 row.
func NewCRSEQSymmetric(n int, channels []int) (Schedule, error) {
	return baselines.NewCRSEQSymmetric(n, channels)
}
