GO ?= go

.PHONY: build build-examples fmt-check vet test race bench bench-smoke ci

build:
	$(GO) build ./...

# Examples are main packages with no test files; build them explicitly
# so CI catches bit-rot (the smoke test in examples/ then runs them).
build-examples:
	$(GO) build ./examples/...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration per benchmark: proves every bench still runs without
# paying full measurement cost. CI uses this.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The exact sequence CI runs; keep local and CI invocations identical.
ci: fmt-check vet build build-examples race bench-smoke
