GO ?= go

.PHONY: build build-examples fmt-check vet test race bench bench-smoke ci

build:
	$(GO) build ./...

# Examples are main packages with no test files; build them explicitly
# so CI catches bit-rot (the smoke test in examples/ then runs them).
build-examples:
	$(GO) build ./examples/...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration per benchmark: proves every bench still runs without
# paying full measurement cost. CI uses the JSON variant below.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Benchmark trajectory: run the full suite and record the results as
# BENCH_<date>.json via cmd/benchjson (the raw output still streams to
# the terminal). Override BENCHTIME to trade accuracy for time.
BENCHTIME ?= 1s
BENCH_JSON = BENCH_$(shell date +%F).json
# Two steps (not a pipe) so a bench failure fails the target with its
# diagnostics printed; on success benchjson echoes the raw output, so
# the human-readable results still print either way.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... > bench.out \
		|| { cat bench.out; rm -f bench.out; exit 1; }
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < bench.out
	@rm -f bench.out

# One-iteration trajectory point: the CI bench smoke step, which both
# proves every bench runs and uploads the JSON as an artifact.
bench-json-smoke:
	$(MAKE) bench-json BENCHTIME=1x

# The exact sequence CI runs; keep local and CI invocations identical.
ci: fmt-check vet build build-examples race bench-json-smoke
