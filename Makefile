GO ?= go

.PHONY: build build-examples fmt-check vet lint test race bench bench-smoke ci \
	fuzz-smoke cover golden golden-thrash bench-json bench-json-smoke \
	bench-compare bench-compare-smoke serve-smoke serve-chaos

build:
	$(GO) build ./...

# Examples are main packages with no test files; build them explicitly
# so CI catches bit-rot (the smoke test in examples/ then runs them).
build-examples:
	$(GO) build ./examples/...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet: staticcheck (bug patterns and
# simplifications) and govulncheck (known-vulnerable symbols reachable
# from this module). The CI lint job always installs both; a local run
# skips a tool that is not on PATH rather than failing, so `make lint`
# stays useful on a fresh checkout:
#   go install honnef.co/go/tools/cmd/staticcheck@latest
#   go install golang.org/x/vuln/cmd/govulncheck@latest
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "lint: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration per benchmark: proves every bench still runs without
# paying full measurement cost. CI uses the JSON variant below.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Benchmark trajectory: run the full suite and record the results as
# BENCH_<date>.json via cmd/benchjson (the raw output still streams to
# the terminal). Override BENCHTIME to trade accuracy for time.
BENCHTIME ?= 1s
BENCH_JSON = BENCH_$(shell date +%F).json
# Two steps (not a pipe) so a bench failure fails the target with its
# diagnostics printed; on success benchjson echoes the raw output, so
# the human-readable results still print either way.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... > bench.out \
		|| { cat bench.out; rm -f bench.out; exit 1; }
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < bench.out
	@rm -f bench.out

# One-iteration trajectory point: the CI bench smoke step, which both
# proves every bench runs and uploads the JSON as an artifact.
bench-json-smoke:
	$(MAKE) bench-json BENCHTIME=1x

# Regression gate on the committed benchmark trajectory: regenerate the
# trajectory point (bench-json), materialize the newest committed
# BENCH_*.json from git (the working-tree file may just have been
# overwritten by the same-day run), and diff them with cmd/benchjson
# -compare. Selection and content both come from HEAD (ls-tree, not
# ls-files) so a freshly staged-but-uncommitted point never selects a
# baseline `git show HEAD:` cannot produce. The glob is applied by
# grep, not as a pathspec — git ls-tree wildcard matching varies by
# git version (2.39 matches nothing). Thresholds are percentages;
# override for noisy hosts.
BENCH_BASE ?= $(shell git ls-tree --name-only HEAD | grep '^BENCH_.*\.json$$' | sort | tail -1)
BENCH_FAIL_OVER ?= 5
BENCH_FAIL_ALLOCS_OVER ?= 10
BENCH_FAIL_BYTES_OVER ?= 10
# Sign-aware unit=pct gates for custom b.ReportMetric units
# (space-separated): slots/sec is a throughput, so a negative threshold
# fails on falls — the inverted-engine bench may not silently lose 10%
# of its slot rate.
BENCH_METRIC_GATES ?= slots/sec=-10
# Absolute floors under the percentage gates (benchjson
# -min-ns-delta/-min-allocs-delta/-min-bytes-delta): a percentage of a
# tiny count is noise, so a violation also needs this much real
# movement.
BENCH_MIN_NS_DELTA ?= 0
BENCH_MIN_ALLOCS_DELTA ?= 8
BENCH_MIN_BYTES_DELTA ?= 256
bench-compare: bench-json
	@test -n "$(BENCH_BASE)" || { echo "no committed BENCH_*.json baseline"; exit 1; }
	@git show HEAD:$(BENCH_BASE) > bench-base.json
	$(GO) run ./cmd/benchjson -compare -fail-over $(BENCH_FAIL_OVER) \
		-fail-allocs-over $(BENCH_FAIL_ALLOCS_OVER) \
		-fail-bytes-over $(BENCH_FAIL_BYTES_OVER) \
		-min-ns-delta $(BENCH_MIN_NS_DELTA) \
		-min-allocs-delta $(BENCH_MIN_ALLOCS_DELTA) \
		-min-bytes-delta $(BENCH_MIN_BYTES_DELTA) \
		$(foreach g,$(BENCH_METRIC_GATES),-fail-metric-over $(g)) \
		bench-base.json $(BENCH_JSON) \
		|| { rm -f bench-base.json; exit 1; }
	@rm -f bench-base.json

# CI variant: one iteration per benchmark. Single-iteration wall times
# swing wildly on shared runners, so the ns and slots/sec gates are
# wide open there, and single-iteration allocation counts for
# multi-goroutine benchmarks move by a goroutine stack or one
# per-worker scratch buffer depending on scheduling — the absolute
# floors widen to sit above that noise. Real regressions this repo
# gates on (thousands of allocs, MBs per op) still trip it; the tight
# floors apply on full `make bench-compare` runs.
bench-compare-smoke:
	$(MAKE) bench-compare BENCHTIME=1x BENCH_FAIL_OVER=900 \
		BENCH_FAIL_ALLOCS_OVER=25 BENCH_FAIL_BYTES_OVER=25 \
		BENCH_MIN_NS_DELTA=1000000 \
		BENCH_MIN_ALLOCS_DELTA=128 BENCH_MIN_BYTES_DELTA=2097152 \
		BENCH_METRIC_GATES=slots/sec=-90

# Time-boxed coverage-guided fuzzing over the property oracles
# (internal/proptest) and the CLI parsers (cmd/benchjson, cmd/rvsim):
# each pkg:Target gets FUZZTIME of mutation on top of its committed
# seed corpus. Crashers land in the package's testdata/fuzz/ (CI
# uploads them as artifacts).
FUZZTIME ?= 10s
FUZZ_TARGETS = \
	./internal/proptest:FuzzCompile \
	./internal/proptest:FuzzBlockEquivalence \
	./internal/proptest:FuzzEngineVsLegacy \
	./internal/proptest:FuzzScenarioEnv \
	./cmd/benchjson:FuzzParseBenchLine \
	./cmd/benchjson:FuzzParseStream \
	./cmd/rvsim:FuzzParseAgentSpec
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; tgt=$${t##*:}; \
		echo "fuzzing $$pkg $$tgt for $(FUZZTIME)"; \
		$(GO) test $$pkg -run '^$$' -fuzz "^$$tgt$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

# Coverage with a floor on internal/... — the packages carrying the
# correctness arguments. The floor trails the current level (91%+) far
# enough to absorb noise but catches a PR that lands logic untested.
COVER_FLOOR ?= 85
cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "internal coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t + 0 < f + 0) }' \
		|| { echo "coverage below floor"; exit 1; }

# Regenerate the golden-report corpus (internal/experiments and
# cmd/rvsim testdata/golden) after an intentional output change; review
# the diff like any other code change.
golden:
	$(GO) test -run 'TestGolden' ./internal/experiments ./cmd/rvsim -update -count=1

# Worst-case cache thrash: rerun the golden-report and examples smoke
# suites with the shared table cache budgeted to a single byte, so every
# borrow evicts whatever came before. Outputs must stay byte-identical
# to the committed goldens — the cache budget is bookkeeping, never
# semantics.
golden-thrash:
	RV_TABLECACHE_BUDGET=1 $(GO) test -run 'TestGolden' ./internal/experiments ./cmd/rvsim -count=1
	RV_TABLECACHE_BUDGET=1 $(GO) test -run 'TestExamplesRunToCompletion' ./examples -count=1

# End-to-end daemon smoke: boot rvserve on an ephemeral port, drive it
# with rvload, and assert the service contract — byte-identical check
# hashes across a daemon restart and a 1→8 worker change, nonzero
# table-cache hits, pinned=0 on every drain, and a throughput floor
# (SMOKE_MIN_RPS, default 1000 req/s) with p99 latency reported.
serve-smoke:
	sh scripts/serve_smoke.sh

# Chaos drain: the deterministic fault-injection suite — worker stalls,
# mid-job panics, engine-level cancellations, and a 1-byte cache budget
# under load — plus the per-kernel mid-run cancellation tests. Every
# drain must report zero leaked pins and every surviving job must stay
# byte-identical to a fault-free control run. Runs under -race and
# -count=1: the injected faults land on the same seams concurrent
# traffic does, and cached passes prove nothing about chaos.
serve-chaos:
	$(GO) test -race -count=1 \
		-run 'TestChaos|TestCancel|TestShed|TestQuota|TestJobDeadline|TestJobTTLEviction' \
		./internal/serve ./internal/simulator
	$(GO) test -race -count=1 -run 'TestServeChaosDrain' ./cmd/rvserve

# The exact sequence CI runs; keep local and CI invocations identical.
# bench-compare-smoke subsumes bench-json-smoke (it regenerates the
# trajectory point, then gates it against the committed baseline).
ci: fmt-check vet build build-examples race cover golden-thrash serve-smoke serve-chaos bench-compare-smoke
