GO ?= go

.PHONY: build build-examples fmt-check vet test race bench bench-smoke ci \
	fuzz-smoke cover golden

build:
	$(GO) build ./...

# Examples are main packages with no test files; build them explicitly
# so CI catches bit-rot (the smoke test in examples/ then runs them).
build-examples:
	$(GO) build ./examples/...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration per benchmark: proves every bench still runs without
# paying full measurement cost. CI uses the JSON variant below.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Benchmark trajectory: run the full suite and record the results as
# BENCH_<date>.json via cmd/benchjson (the raw output still streams to
# the terminal). Override BENCHTIME to trade accuracy for time.
BENCHTIME ?= 1s
BENCH_JSON = BENCH_$(shell date +%F).json
# Two steps (not a pipe) so a bench failure fails the target with its
# diagnostics printed; on success benchjson echoes the raw output, so
# the human-readable results still print either way.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... > bench.out \
		|| { cat bench.out; rm -f bench.out; exit 1; }
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < bench.out
	@rm -f bench.out

# One-iteration trajectory point: the CI bench smoke step, which both
# proves every bench runs and uploads the JSON as an artifact.
bench-json-smoke:
	$(MAKE) bench-json BENCHTIME=1x

# Time-boxed coverage-guided fuzzing over the property oracles
# (internal/proptest): each target gets FUZZTIME of mutation on top of
# its committed seed corpus. Crashers land in
# internal/proptest/testdata/fuzz/ (CI uploads them as artifacts).
FUZZTIME ?= 10s
FUZZ_TARGETS = FuzzCompile FuzzBlockEquivalence FuzzEngineVsLegacy FuzzScenarioEnv
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		echo "fuzzing $$t for $(FUZZTIME)"; \
		$(GO) test ./internal/proptest -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

# Coverage with a floor on internal/... — the packages carrying the
# correctness arguments. The floor trails the current level (91%+) far
# enough to absorb noise but catches a PR that lands logic untested.
COVER_FLOOR ?= 85
cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "internal coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t + 0 < f + 0) }' \
		|| { echo "coverage below floor"; exit 1; }

# Regenerate the golden-report corpus (internal/experiments and
# cmd/rvsim testdata/golden) after an intentional output change; review
# the diff like any other code change.
golden:
	$(GO) test -run 'TestGolden' ./internal/experiments ./cmd/rvsim -update -count=1

# The exact sequence CI runs; keep local and CI invocations identical.
ci: fmt-check vet build build-examples race cover bench-json-smoke
