package rendezvous_test

// One benchmark per evaluation artifact of the paper (see the
// per-experiment index in DESIGN.md) plus micro-benchmarks for the
// schedule primitives. The experiment benches regenerate the
// corresponding table/figure at CI scale per iteration; run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record.

import (
	"fmt"
	"math/rand"
	"testing"

	"rendezvous"
	"rendezvous/internal/asciiplot"
	"rendezvous/internal/bitstring"
	"rendezvous/internal/catalan"
	"rendezvous/internal/experiments"
	"rendezvous/internal/pairsched"
	"rendezvous/internal/simulator"
	"rendezvous/internal/sweep"
	"rendezvous/internal/tablecache"
)

// benchCfg leaves Workers at 0 (one worker per CPU), so every
// experiment bench exercises the sweep engine at full parallelism.
var benchCfg = experiments.Config{Quick: true, Seed: 1}

// sink defeats dead-code elimination in micro-benches.
var sink int

func BenchmarkTable1Asymmetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Table1Asymmetric(benchCfg)
		sink += len(rep.Rows)
	}
}

func BenchmarkTable1Symmetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Table1Symmetric(benchCfg)
		sink += len(rep.Rows)
	}
}

func BenchmarkFigure1Walk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(asciiplot.Walk("fig1a", "11010"))
		sink += len(asciiplot.Walk("fig1b", "110001"))
	}
}

func BenchmarkFigure2Catalan(b *testing.B) {
	s := bitstring.MustParse("1101011000")
	for i := 0; i < b.N; i++ {
		sink += len(asciiplot.Walk("fig2a", s.String()))
		sink += len(asciiplot.Walk("fig2b", s.Rotate(3).String()))
	}
}

func BenchmarkFigure3TwoMax(b *testing.B) {
	s := bitstring.MustParse("1101011000")
	for i := 0; i < b.N; i++ {
		w := catalan.MakeTwoMaximal(s)
		sink += len(asciiplot.Walk("fig3b", w.String()))
	}
}

func BenchmarkTheorem1Pair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Theorem1(benchCfg)
		sink += len(rep.Rows)
	}
}

func BenchmarkTheorem3General(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Theorem3(benchCfg)
		sink += len(rep.Rows)
	}
}

func BenchmarkSymmetricWrapper(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.SymmetricWrapper(benchCfg)
		sink += len(rep.Rows)
	}
}

func BenchmarkBeaconProtocols(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Beacon(benchCfg)
		sink += len(rep.Rows)
	}
}

func BenchmarkLowerBoundRamsey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.LowerBoundRamsey(benchCfg)
		sink += len(rep.Rows)
	}
}

func BenchmarkLowerBoundAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.LowerBoundAsync(benchCfg)
		sink += len(rep.Rows)
	}
}

func BenchmarkOneRoundSDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.OneRound(benchCfg)
		sink += len(rep.Rows)
	}
}

// --- sweep-engine scaling --------------------------------------------

// BenchmarkTable1AsymmetricWorkers measures the engine's speedup on the
// Table 1 sweep: compare workers=1 against workers=4 (the reports are
// byte-identical — only wall-clock may differ). On a single-core host
// the curve is flat; on ≥4 cores workers=4 should run ≥2x faster.
func BenchmarkTable1AsymmetricWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		cfg := experiments.Config{Quick: true, Seed: 1, Workers: w}
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += len(experiments.Table1Asymmetric(cfg).Rows)
			}
		})
	}
}

// BenchmarkSweepOffsetsWorkers isolates the chunked offset sweep on a
// single large schedule pair.
func BenchmarkSweepOffsetsWorkers(b *testing.B) {
	a, err := rendezvous.New(1024, []int{3, 90, 512, 700})
	if err != nil {
		b.Fatal(err)
	}
	c, err := rendezvous.New(1024, []int{90, 400, 999})
	if err != nil {
		b.Fatal(err)
	}
	offsets := simulator.ExhaustiveOffsets(4096)
	for _, w := range []int{1, 2, 4} {
		r := sweep.Runner{Workers: w}
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := sweep.SweepOffsets(r, a, c, offsets, 1<<18)
				sink += st.Max
			}
		})
	}
}

// BenchmarkEngineRunParallelWorkers measures the pairwise multi-agent
// engine against the serial joint engine (BenchmarkEngineMultiAgent).
func BenchmarkEngineRunParallelWorkers(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(2))
	var agents []rendezvous.Agent
	for i := 0; i < 8; i++ {
		w := simulator.RandomOverlappingPair(rng, n, 4, 4)
		s, err := rendezvous.New(n, w.A)
		if err != nil {
			b.Fatal(err)
		}
		agents = append(agents, rendezvous.Agent{
			Name: string(rune('a' + i)), Sched: s, Wake: rng.Intn(500),
		})
	}
	eng, err := rendezvous.NewEngine(agents)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := eng.RunParallel(50_000, w)
				sink += len(res.Meetings())
			}
		})
	}
}

// BenchmarkEngineJointWorkers measures the time-sharded joint engine
// against the serial joint scan on a 256-agent fleet over a 40-channel
// universe — the acceptance benchmark for the sharded path. Primary
// users occupy 8 channels full-time, so some meetable pairs never meet
// and every run scans the full horizon: stable per-iteration work with
// no early-exit noise. Results are byte-identical at every worker
// count; only wall-clock may differ. On a single-core host the curve
// is flat; on ≥8 cores workers=8 should run ≥3× the serial scan.
func BenchmarkEngineJointWorkers(b *testing.B) {
	sc := rendezvous.Scenario{
		N: 40, Agents: 256, K: 4, Seed: 7, Horizon: 1 << 14,
		Churn: rendezvous.Churn{WakeSpread: 2000},
		PU:    rendezvous.PrimaryUsers{Count: 8, Window: 1024, OnFrac: 1},
	}
	build, err := rendezvous.ScenarioBuilder("ours", sc.N, sc.Seed)
	if err != nil {
		b.Fatal(err)
	}
	agents, env, err := sc.Build(build)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := rendezvous.NewEngine(agents)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += eng.RunEnv(sc.Horizon, env).MetCount()
		}
	})
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += eng.RunJointParallelEnv(sc.Horizon, w, env).MetCount()
			}
		})
	}
}

// BenchmarkEngineInverted is the acceptance benchmark for the
// inverted-index engine: a 1024-agent NETWORK-shaped fleet (128
// channels, K=4, staggered wakes, primary users pinning 8 channels
// full-time so no early exit trims the horizon), comparing the
// occupancy scan against the posting-list scan through the same
// sharded entry point. Both paths produce byte-identical Results; the
// inverted scan replaces the occupancy scan's per-candidate-pair
// random access with word-parallel intersections, so at this fleet
// size it should clear 2× even on one core. Each sub-bench reports
// slots/sec (higher is better) for the trajectory gate.
func BenchmarkEngineInverted(b *testing.B) {
	sc := rendezvous.Scenario{
		N: 128, Agents: 1024, K: 4, Seed: 7, Horizon: 1 << 14,
		Churn: rendezvous.Churn{WakeSpread: 2000, LeaveFrac: 0.25,
			MinLife: 1 << 12, MaxLife: 1 << 14},
		PU: rendezvous.PrimaryUsers{Count: 8, Window: 1024, OnFrac: 0.5},
	}
	build, err := rendezvous.ScenarioBuilder("ours", sc.N, sc.Seed)
	if err != nil {
		b.Fatal(err)
	}
	agents, env, err := sc.Build(build)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := rendezvous.NewEngine(agents)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		floor int
	}{{"sharded", 1 << 30}, {"inverted", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			prev := simulator.SetInvertedFloor(mode.floor)
			defer simulator.SetInvertedFloor(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += eng.RunJointParallelEnv(sc.Horizon, 0, env).MetCount()
			}
			b.ReportMetric(float64(sc.Horizon)*float64(b.N)/b.Elapsed().Seconds(), "slots/sec")
		})
	}
}

// BenchmarkEngineSparse is the acceptance benchmark for the contact-
// sparse engine: a 4,096-agent NETWORK-SPARSE-shaped fleet (constant
// density, mean contact degree ≈ 16) run dense — the same fleet with
// the topology ignored, scanning all 8.4M pairs — and sparse, where
// pair state and per-slot candidates are both O(contact edges). The
// sparse sub-bench reports the candidate reduction (all pairs /
// contact edges, the ≥10× contract at this scale) alongside slots/sec;
// both Results agree on every in-range pair by the contact-equivalence
// tests, so the comparison is pure performance.
func BenchmarkEngineSparse(b *testing.B) {
	const fleet = 4096
	sc := rendezvous.Scenario{
		N: 128, Agents: fleet, K: 4, Seed: 7, Horizon: 1 << 13,
		Churn: rendezvous.Churn{WakeSpread: 2000, LeaveFrac: 0.25,
			MinLife: 1 << 11, MaxLife: 1 << 13},
		PU:   rendezvous.PrimaryUsers{Count: 8, Window: 1024, OnFrac: 0.5},
		Grid: rendezvous.Grid{Side: 64, Radius: 2.26},
	}
	build, err := rendezvous.ScenarioBuilder("ours", sc.N, sc.Seed)
	if err != nil {
		b.Fatal(err)
	}
	agents, env, err := sc.Build(build)
	if err != nil {
		b.Fatal(err)
	}
	graph, err := sc.ContactGraph()
	if err != nil {
		b.Fatal(err)
	}
	pairs := float64(fleet) * float64(fleet-1) / 2
	reduction := pairs / float64(graph.Edges())
	dense, err := rendezvous.NewEngine(agents)
	if err != nil {
		b.Fatal(err)
	}
	sparse, err := rendezvous.NewEngineContact(agents, graph.Topology())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += dense.RunJointParallelEnv(sc.Horizon, 0, env).MetCount()
		}
		b.ReportMetric(float64(sc.Horizon)*float64(b.N)/b.Elapsed().Seconds(), "slots/sec")
	})
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += sparse.RunJointParallelEnv(sc.Horizon, 0, env).MetCount()
		}
		b.ReportMetric(float64(sc.Horizon)*float64(b.N)/b.Elapsed().Seconds(), "slots/sec")
		// Deterministic (same seed ⇒ same geometry), so the trajectory
		// gate can hold the reduction floor exactly.
		b.ReportMetric(reduction, "reduction")
		if r := sparse.LastRoute(); r != simulator.RouteSparse {
			b.Fatalf("sparse engine routed %v, want sparse", r)
		}
	})
}

// --- session reuse & table cache --------------------------------------

// BenchmarkSessionReuse is the acceptance benchmark for the reuse
// layers, measuring one NETWORK-shaped fleet (256 agents, 128 channels,
// primary users) three ways:
//
//   - fresh-cold: engine per run against a brand-new table cache — the
//     pre-cache world, every run rebuilds its hop tables from nothing;
//   - fresh-warm: engine per run against one persistent cache — the
//     batch-sweep shape, table builds amortize across engines (hits/op
//     counts the borrowed tables);
//   - steady: one engine, one session, run after run — the rvserve
//     shape, where only the scan itself remains.
//
// All three produce byte-identical results (budget independence); only
// the amortized build cost differs, which is exactly the gap this
// benchmark pins for the trajectory gate.
func BenchmarkSessionReuse(b *testing.B) {
	sc := rendezvous.Scenario{
		N: 128, Agents: 256, K: 4, Seed: 7, Horizon: 1 << 13,
		Churn: rendezvous.Churn{WakeSpread: 2000},
		PU:    rendezvous.PrimaryUsers{Count: 8, Window: 1024, OnFrac: 0.5},
	}
	build, err := rendezvous.ScenarioBuilder("ours", sc.N, sc.Seed)
	if err != nil {
		b.Fatal(err)
	}
	agents, env, err := sc.Build(build)
	if err != nil {
		b.Fatal(err)
	}
	newEngine := func(b *testing.B) *rendezvous.Engine {
		eng, err := rendezvous.NewEngine(agents)
		if err != nil {
			b.Fatal(err)
		}
		return eng
	}
	b.Run("fresh-cold", func(b *testing.B) {
		prev := simulator.SetTableCache(nil)
		defer simulator.SetTableCache(prev)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			simulator.SetTableCache(tablecache.New(tablecache.DefaultBudget))
			eng := newEngine(b)
			sink += eng.RunEnv(sc.Horizon, env).MetCount()
			eng.Close()
		}
	})
	b.Run("fresh-warm", func(b *testing.B) {
		c := tablecache.New(tablecache.DefaultBudget)
		prev := simulator.SetTableCache(c)
		defer simulator.SetTableCache(prev)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := newEngine(b)
			sink += eng.RunEnv(sc.Horizon, env).MetCount()
			eng.Close()
		}
		b.ReportMetric(float64(c.Stats().Hits)/float64(b.N), "hits/op")
	})
	b.Run("steady", func(b *testing.B) {
		prev := simulator.SetTableCache(tablecache.New(tablecache.DefaultBudget))
		defer simulator.SetTableCache(prev)
		eng := newEngine(b)
		defer eng.Close()
		sess := eng.Session()
		sink += sess.RunEnv(sc.Horizon, env).MetCount() // warm tables + result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sess.Reset()
			sink += sess.RunEnv(sc.Horizon, env).MetCount()
		}
	})
}

// BenchmarkBlockCacheRandom measures the rolling dense-block cache on
// the schedules no table layer reaches: huge-period Random hoppers
// (period 1<<22, far past compilation at this horizon) with the
// prefix-table budget forced to zero, so every block either replays
// from the ring or pays schedule evaluation plus dense remap. Off vs.
// on is the remap-per-block cost disappearing on repeated runs of a
// warm engine — the beacon/Random half of the reuse story.
func BenchmarkBlockCacheRandom(b *testing.B) {
	sc := rendezvous.Scenario{
		N: 128, Agents: 64, K: 4, Seed: 7, Horizon: 1 << 14,
		PU: rendezvous.PrimaryUsers{Count: 8, Window: 1024, OnFrac: 1},
	}
	build, err := rendezvous.ScenarioBuilder("random", sc.N, sc.Seed)
	if err != nil {
		b.Fatal(err)
	}
	agents, env, err := sc.Build(build)
	if err != nil {
		b.Fatal(err)
	}
	prevPrefix := simulator.SetPrefixBudget(0)
	defer simulator.SetPrefixBudget(prevPrefix)
	for _, mode := range []struct {
		name   string
		budget int
	}{{"off", 0}, {"on", 16 << 20}} {
		b.Run(mode.name, func(b *testing.B) {
			prev := simulator.SetBlockCacheBudget(mode.budget)
			defer simulator.SetBlockCacheBudget(prev)
			eng, err := rendezvous.NewEngine(agents)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			sess := eng.Session()
			sink += sess.RunEnv(sc.Horizon, env).MetCount() // warm the ring
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess.Reset()
				sink += sess.RunEnv(sc.Horizon, env).MetCount()
			}
		})
	}
}

// --- block evaluation -------------------------------------------------

// runBlockModes runs fn once per evaluation mode: the per-slot
// reference path and the block/compiled fast path.
func runBlockModes(b *testing.B, fn func(b *testing.B)) {
	for _, mode := range []struct {
		name  string
		block bool
	}{{"slots", false}, {"block", true}} {
		b.Run(mode.name, func(b *testing.B) {
			prev := simulator.SetBlockEval(mode.block)
			defer simulator.SetBlockEval(prev)
			b.ResetTimer()
			fn(b)
		})
	}
}

// BenchmarkGeneralPairScan measures raw pairwise scan throughput on two
// Theorem-3 schedules with DISJOINT channel sets, so every scan runs
// the full horizon (1<<16 slots/op) instead of stopping at an early
// rendezvous. This is the acceptance benchmark for the block layer:
// block mode must be ≥ 2× the slots mode.
func BenchmarkGeneralPairScan(b *testing.B) {
	a, err := rendezvous.NewGeneral(1024, []int{3, 90, 512, 700})
	if err != nil {
		b.Fatal(err)
	}
	c, err := rendezvous.NewGeneral(1024, []int{91, 400, 999})
	if err != nil {
		b.Fatal(err)
	}
	runBlockModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := rendezvous.PairTTR(a, c, 0, 17, 1<<16); ok {
				b.Fatal("disjoint sets rendezvoused")
			}
		}
	})
}

// BenchmarkSymmetricPairScan is the same full-horizon scan through the
// §3.2 wrapper stack (Symmetric over General), the flagship hot path.
func BenchmarkSymmetricPairScan(b *testing.B) {
	a, err := rendezvous.New(1024, []int{3, 90, 512, 700})
	if err != nil {
		b.Fatal(err)
	}
	c, err := rendezvous.New(1024, []int{91, 400, 999})
	if err != nil {
		b.Fatal(err)
	}
	runBlockModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := rendezvous.PairTTR(a, c, 0, 17, 1<<16); ok {
				b.Fatal("disjoint sets rendezvoused")
			}
		}
	})
}

// BenchmarkEngineRunModes measures the joint multi-agent engine with
// and without block evaluation.
func BenchmarkEngineRunModes(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(2))
	var agents []rendezvous.Agent
	for i := 0; i < 8; i++ {
		w := simulator.RandomOverlappingPair(rng, n, 4, 4)
		s, err := rendezvous.New(n, w.A)
		if err != nil {
			b.Fatal(err)
		}
		agents = append(agents, rendezvous.Agent{
			Name: string(rune('a' + i)), Sched: s, Wake: rng.Intn(500),
		})
	}
	eng, err := rendezvous.NewEngine(agents)
	if err != nil {
		b.Fatal(err)
	}
	runBlockModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := eng.Run(50_000)
			sink += len(res.Meetings())
		}
	})
}

// BenchmarkCompiledSweep measures an adversarial offset sweep: two
// CRSEQ schedules with disjoint channel sets never meet, so every
// offset exhausts the horizon and SweepOffsets's ski-rental kicks in,
// compiling both schedules after the first few offsets and replaying
// flat hop tables for the rest.
func BenchmarkCompiledSweep(b *testing.B) {
	a, err := rendezvous.NewCRSEQ(64, []int{3, 21, 40, 63})
	if err != nil {
		b.Fatal(err)
	}
	c, err := rendezvous.NewCRSEQ(64, []int{10, 33, 59})
	if err != nil {
		b.Fatal(err)
	}
	offsets := simulator.ExhaustiveOffsets(128)
	runBlockModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := simulator.SweepOffsets(a, c, offsets, a.Period())
			sink += st.Failures
		}
	})
}

// --- micro-benchmarks -------------------------------------------------

func BenchmarkNewSchedule(b *testing.B) {
	set := []int{3, 90, 512, 700, 999}
	for i := 0; i < b.N; i++ {
		s, err := rendezvous.New(1024, set)
		if err != nil {
			b.Fatal(err)
		}
		sink += s.Period()
	}
}

func BenchmarkPairWordConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := pairsched.Word(1<<20, 90, 700)
		if err != nil {
			b.Fatal(err)
		}
		sink += w.Len()
	}
}

func benchmarkChannelLookup(b *testing.B, s rendezvous.Schedule) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += s.Channel(i)
	}
}

func BenchmarkChannelLookupOurs(b *testing.B) {
	s, err := rendezvous.New(1024, []int{3, 90, 512, 700, 999})
	if err != nil {
		b.Fatal(err)
	}
	benchmarkChannelLookup(b, s)
}

func BenchmarkChannelLookupCRSEQ(b *testing.B) {
	s, err := rendezvous.NewCRSEQ(1024, []int{3, 90, 512, 700, 999})
	if err != nil {
		b.Fatal(err)
	}
	benchmarkChannelLookup(b, s)
}

func BenchmarkChannelLookupJumpStay(b *testing.B) {
	s, err := rendezvous.NewJumpStay(1024, []int{3, 90, 512, 700, 999})
	if err != nil {
		b.Fatal(err)
	}
	benchmarkChannelLookup(b, s)
}

func BenchmarkChannelLookupBeaconWalk(b *testing.B) {
	s, err := rendezvous.NewBeaconWalk(1024, []int{3, 90, 512, 700, 999},
		rendezvous.NewBeaconSource(1), rendezvous.BeaconConfig{})
	if err != nil {
		b.Fatal(err)
	}
	benchmarkChannelLookup(b, s)
}

func BenchmarkPairTTRMeasurement(b *testing.B) {
	a, err := rendezvous.New(1024, []int{3, 90, 512})
	if err != nil {
		b.Fatal(err)
	}
	c, err := rendezvous.New(1024, []int{90, 700})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ttr, ok := rendezvous.PairTTR(a, c, 0, rng.Intn(100_000), 1<<22)
		if !ok {
			b.Fatal("missed rendezvous")
		}
		sink += ttr
	}
}

func BenchmarkEngineMultiAgent(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(2))
	var agents []rendezvous.Agent
	for i := 0; i < 8; i++ {
		w := simulator.RandomOverlappingPair(rng, n, 4, 4)
		s, err := rendezvous.New(n, w.A)
		if err != nil {
			b.Fatal(err)
		}
		agents = append(agents, rendezvous.Agent{
			Name: string(rune('a' + i)), Sched: s, Wake: rng.Intn(500),
		})
	}
	eng, err := rendezvous.NewEngine(agents)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eng.Run(50_000)
		sink += len(res.Meetings())
	}
}

func BenchmarkMultiAgentDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.MultiAgent(benchCfg)
		sink += len(rep.Rows)
	}
}

// BenchmarkNetworkScenarios regenerates the NETWORK report (CI scale):
// fleets under churn + primary users across all four algorithms.
func BenchmarkNetworkScenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Network(benchCfg)
		sink += len(rep.Rows)
	}
}

// BenchmarkScenarioFleet measures one churn + primary-user scenario run
// through the public API at increasing fleet sizes — the network-scale
// hot path (pair pruning, pairwise block scans, environment checks).
func BenchmarkScenarioFleet(b *testing.B) {
	for _, agents := range []int{64, 256} {
		sc := rendezvous.Scenario{
			N: 128, Agents: agents, K: 4, Seed: 1, Horizon: 1 << 14,
			Churn: rendezvous.Churn{WakeSpread: 2000, LeaveFrac: 0.25, MinLife: 1 << 12, MaxLife: 1 << 14},
			PU:    rendezvous.PrimaryUsers{Count: 8, Window: 1024, OnFrac: 0.5},
		}
		build, err := rendezvous.ScenarioBuilder("ours", sc.N, sc.Seed)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("agents=%d", agents), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, _, err := sc.Run(build, 0)
				if err != nil {
					b.Fatal(err)
				}
				sink += res.MetCount()
			}
		})
	}
}
