#!/bin/sh
# serve-smoke: end-to-end check of the rvserve daemon with rvload.
#
# Asserts the three properties the service promises:
#   1. Byte-determinism: the jobs-mode check hash is identical across a
#      cold 1-worker daemon, a warm rerun, and a fresh 8-worker daemon.
#   2. Clean drain: every shutdown reports pinned=0 (no table-cache pin
#      leaks) and exits zero.
#   3. Throughput: a short schedule-mode load run sustains at least
#      SMOKE_MIN_RPS requests/sec (default 1000), p99 printed.
#
# Env knobs: SMOKE_MIN_RPS, SMOKE_RATE, SMOKE_DURATION, GO.
set -eu

GO=${GO:-go}
SMOKE_MIN_RPS=${SMOKE_MIN_RPS:-1000}
SMOKE_RATE=${SMOKE_RATE:-3000}
SMOKE_DURATION=${SMOKE_DURATION:-2s}

work=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building rvserve and rvload"
$GO build -o "$work/rvserve" ./cmd/rvserve
$GO build -o "$work/rvload" ./cmd/rvload

# start_daemon <workers> <logfile>: boots rvserve on an ephemeral port
# and sets $pid and $base.
start_daemon() {
    workers=$1 log=$2
    "$work/rvserve" -addr 127.0.0.1:0 -workers "$workers" -drain 30s >"$log" 2>&1 &
    pid=$!
    i=0
    until grep -q "listening on" "$log" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve-smoke: daemon never came up:" >&2
            cat "$log" >&2
            exit 1
        fi
        kill -0 "$pid" 2>/dev/null || { cat "$log" >&2; exit 1; }
        sleep 0.1
    done
    addr=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$log" | head -1)
    base="http://$addr"
}

# stop_daemon <logfile>: SIGTERM, wait for exit, assert a clean
# pinned=0 drain report and a zero exit status.
stop_daemon() {
    log=$1
    kill -TERM "$pid"
    if ! wait "$pid"; then
        echo "serve-smoke: daemon exited nonzero:" >&2
        cat "$log" >&2
        exit 1
    fi
    pid=""
    if ! grep -q "pinned=0" "$log"; then
        echo "serve-smoke: drain report did not show pinned=0:" >&2
        cat "$log" >&2
        exit 1
    fi
}

# check_hash <mode> <n>: prints the rvload check hash for this daemon.
check_hash() {
    "$work/rvload" -url "$base" -mode "$1" -check "$2" -seed 7 |
        sed -n 's/.*sha256=\([0-9a-f]*\).*/\1/p'
}

echo "serve-smoke: phase 1 — 1-worker daemon, cold then warm"
start_daemon 1 "$work/serve1.log"
jobs_cold=$(check_hash jobs 24)
jobs_warm=$(check_hash jobs 24)
sched_hash=$(check_hash schedule 32)
[ -n "$jobs_cold" ] && [ -n "$sched_hash" ] || { echo "serve-smoke: empty check hash" >&2; exit 1; }
if [ "$jobs_cold" != "$jobs_warm" ]; then
    echo "serve-smoke: warm rerun changed the jobs hash: $jobs_cold vs $jobs_warm" >&2
    exit 1
fi
stop_daemon "$work/serve1.log"

echo "serve-smoke: phase 2 — fresh 8-worker daemon must reproduce the bytes"
start_daemon 8 "$work/serve8.log"
jobs_w8=$(check_hash jobs 24)
sched_w8=$(check_hash schedule 32)
if [ "$jobs_w8" != "$jobs_cold" ] || [ "$sched_w8" != "$sched_hash" ]; then
    echo "serve-smoke: hashes differ across daemons:" >&2
    echo "  jobs:     w1=$jobs_cold w8=$jobs_w8" >&2
    echo "  schedule: w1=$sched_hash w8=$sched_w8" >&2
    exit 1
fi
# Several of the 8 workers opened engines for the same fleet shapes, so
# the later ones must have found their hop tables already cached.
stats=$("$work/rvload" -url "$base" -mode schedule -check 4 -seed 9 -stats | grep "stats ")
echo "serve-smoke: $stats"
hits=$(echo "$stats" | sed -n 's/.*hits=\([0-9]*\).*/\1/p')
if [ "${hits:-0}" -eq 0 ]; then
    echo "serve-smoke: 8-worker daemon reports zero cache hits" >&2
    exit 1
fi

echo "serve-smoke: phase 3 — load at $SMOKE_RATE req/s for $SMOKE_DURATION (floor $SMOKE_MIN_RPS)"
loadout=$("$work/rvload" -url "$base" -mode schedule -rate "$SMOKE_RATE" \
    -duration "$SMOKE_DURATION" -c 16)
echo "$loadout" | sed 's/^/serve-smoke: /'
achieved=$(echo "$loadout" | sed -n 's/.*achieved=\([0-9]*\).*/\1/p')
if [ "${achieved:-0}" -lt "$SMOKE_MIN_RPS" ]; then
    echo "serve-smoke: achieved $achieved req/s, floor is $SMOKE_MIN_RPS" >&2
    exit 1
fi
stop_daemon "$work/serve8.log"

echo "serve-smoke: OK (jobs=$jobs_cold achieved=$achieved req/s)"
