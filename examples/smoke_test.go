// Smoke coverage for the example programs: each example must build AND
// run to completion, and must print the line that proves it exercised
// its scenario. CI builds them via `make build-examples`; this test
// actually executes each main with a short timeout so a hanging or
// log.Fatal-ing example fails the suite instead of rotting silently.
package examples

import (
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// exampleProbes registers every example with a substring its output
// must contain — the line that only prints when the example's scenario
// actually completed. A new example must add itself here (the test
// fails on unregistered directories), and a deleted or renamed one is
// caught by the missing-directory check, so coverage cannot silently
// lapse the way examples/whitespace's once did.
var exampleProbes = map[string]string{
	"audit":      "flagship channel-usage balance",
	"beacon":     "trials:",
	"coalition":  "despite the jammer camping",
	"oneround":   "SDP + hyperplane rounding",
	"quickstart": "worst TTR over 2000 wake offsets",
	"whitespace": "worst observed:",
}

func TestExamplesRunToCompletion(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	mains, err := filepath.Glob("*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, m := range mains {
		found[filepath.Dir(m)] = true
	}
	for dir := range exampleProbes {
		if !found[dir] {
			t.Errorf("registered example %s has no main.go — renamed or deleted?", dir)
		}
	}
	for _, m := range mains {
		dir := filepath.Dir(m)
		probe, registered := exampleProbes[dir]
		if !registered {
			t.Errorf("example %s is not registered in exampleProbes — add it with an output probe", dir)
			continue
		}
		t.Run(dir, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+dir)
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s timed out:\n%s", dir, out)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", dir, err, out)
			}
			if !strings.Contains(string(out), probe) {
				t.Errorf("example %s output missing %q — did it complete its scenario?\n%s", dir, probe, out)
			}
		})
	}
}
