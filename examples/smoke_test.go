// Smoke coverage for the example programs: each example must build AND
// run to completion. CI builds them via `make build-examples`; this
// test actually executes each main with a short timeout so a hanging or
// log.Fatal-ing example fails the suite instead of rotting silently.
package examples

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestExamplesRunToCompletion(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	mains, err := filepath.Glob("*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(mains) == 0 {
		t.Fatal("no examples found — glob or layout changed?")
	}
	for _, m := range mains {
		dir := filepath.Dir(m)
		t.Run(dir, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+dir)
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s timed out:\n%s", dir, out)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", dir)
			}
		})
	}
}
