// Quickstart: two radios with overlapping channel subsets of a 1024-
// channel spectrum build their schedules independently (no identities,
// no shared state, arbitrary wake offsets) and are guaranteed to meet.
package main

import (
	"fmt"
	"log"

	"rendezvous"
)

func main() {
	const n = 1024 // spectrum: channels 1..n

	// Each radio knows only its own accessible channels and n.
	alice, err := rendezvous.New(n, []int{3, 90, 512})
	if err != nil {
		log.Fatal(err)
	}
	bob, err := rendezvous.New(n, []int{90, 700})
	if err != nil {
		log.Fatal(err)
	}

	// Bob wakes 17 slots after Alice; neither knows the offset.
	const bobWake = 17
	ttr, ok := rendezvous.PairTTR(alice, bob, 0, bobWake, 1_000_000)
	if !ok {
		log.Fatal("no rendezvous — impossible: the sets share channel 90")
	}
	slot := bobWake + ttr
	fmt.Printf("rendezvous after %d slots (global slot %d) on channel %d\n",
		ttr, slot, alice.Channel(slot))

	// The guarantee is worst-case over ALL offsets, not luck:
	worst := 0
	for delta := 0; delta < 2000; delta++ {
		t, ok := rendezvous.PairTTR(alice, bob, 0, delta, 1_000_000)
		if !ok {
			log.Fatalf("offset %d failed", delta)
		}
		if t > worst {
			worst = t
		}
	}
	fmt.Printf("worst TTR over 2000 wake offsets: %d slots (O(|A||B|·loglog n))\n", worst)
}
