// Audit scenario: before deploying a channel-hopping algorithm, certify
// its rendezvous guarantee on a small universe with the sequence
// analysis API. This is the workflow that uncovered the CRSEQ
// counterexample recorded in DESIGN.md — run it against any Schedule
// implementation, including your own.
package main

import (
	"fmt"
	"log"

	"rendezvous"
)

func main() {
	const n = 4
	pairs := [][2][]int{
		{{1, 2}, {2, 3}},
		{{2, 4}, {1, 3, 4}}, // the pair that breaks deterministic CRSEQ
		{{1, 2, 3}, {3, 4}},
	}

	fmt.Println("auditing rotation closure on universe [1,4]:")
	for _, algo := range []struct {
		name  string
		build func(set []int) (rendezvous.Schedule, error)
	}{
		{"ours", func(set []int) (rendezvous.Schedule, error) { return rendezvous.New(n, set) }},
		{"crseq", func(set []int) (rendezvous.Schedule, error) { return rendezvous.NewCRSEQ(n, set) }},
	} {
		fmt.Printf("\n%s:\n", algo.name)
		for _, p := range pairs {
			a, err := algo.build(p[0])
			if err != nil {
				log.Fatal(err)
			}
			b, err := algo.build(p[1])
			if err != nil {
				log.Fatal(err)
			}
			// Bound the audit for the wrapped flagship (its joint period
			// is large); one CRSEQ period suffices for the baseline.
			limit := 2000
			ok, off := rendezvous.CheckRotationClosure(a, b, limit)
			verdict := "OK    "
			detail := fmt.Sprintf("all %d offsets rendezvous", limit)
			if !ok {
				verdict = "BROKEN"
				detail = fmt.Sprintf("no rendezvous ever at wake offset %d", off)
			}
			fmt.Printf("  %v vs %v: %s  (%s)\n", p[0], p[1], verdict, detail)
		}
	}

	// Occupancy fairness: Theorem 7 says balanced schedules are the hard
	// case; check how fair the flagship is.
	s, err := rendezvous.NewGeneral(16, []int{2, 5, 9, 11, 14})
	if err != nil {
		log.Fatal(err)
	}
	ratio, err := rendezvous.ChannelBalance(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflagship channel-usage balance over one period: max/min = %.2f\n", ratio)
	fmt.Println("(1.0 = perfectly fair; the two-prime epoch indexing keeps it within a small constant)")
}
