// TV-whitespace scenario (paper §1.3): a pooled hyperspace where the
// universe of channels is huge but each device can access only a small
// subset. This is where the paper's O(|A||B|·log log n) guarantee saves
// a near-quadratic factor over the O(n²)/O(n³) prior art: the prior
// guarantees scale with the universe, ours with the subsets.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rendezvous"
)

func main() {
	const n = 1 << 20 // ~1M addressable channels in the pooled hyperspace
	rng := rand.New(rand.NewSource(7))

	// Two whitespace devices, each sensing 5 free channels, sharing one.
	shared := 1 + rng.Intn(n)
	devA := randomSetWith(rng, n, 5, shared)
	devB := randomSetWith(rng, n, 5, shared)
	fmt.Printf("universe n = %d\ndevice A channels: %v\ndevice B channels: %v\n\n", n, devA, devB)

	a, err := rendezvous.New(n, devA)
	if err != nil {
		log.Fatal(err)
	}
	b, err := rendezvous.New(n, devB)
	if err != nil {
		log.Fatal(err)
	}

	worst := 0
	for _, delta := range []int{0, 1, 13, 997, 50_000, 1_234_567} {
		ttr, ok := rendezvous.PairTTR(a, b, 0, delta, 10_000_000)
		if !ok {
			log.Fatalf("offset %d: no rendezvous", delta)
		}
		if ttr > worst {
			worst = ttr
		}
		fmt.Printf("wake offset %9d → rendezvous in %6d slots\n", delta, ttr)
	}

	// Contrast with the prior-art guarantees at this universe size.
	fmt.Printf("\nworst observed: %d slots\n", worst)
	fmt.Printf("CRSEQ guarantee at n=2^20:    ~3.3e12 slots (P(3P−1))\n")
	fmt.Printf("Jump-Stay guarantee at n=2^20: ~3.5e18 slots (3P²(P−1))\n")
	fmt.Println("ours is independent of n up to a log log factor — that is Table 1.")
}

func randomSetWith(rng *rand.Rand, n, k, shared int) []int {
	set := map[int]bool{shared: true}
	for len(set) < k {
		set[1+rng.Intn(n)] = true
	}
	out := make([]int, 0, k)
	for c := range set {
		out = append(out, c)
	}
	return out
}
