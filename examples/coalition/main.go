// Military-coalition scenario (paper §1.3): members of a dynamic
// coalition all operate on the same small allied frequency block, so
// their channel sets are IDENTICAL — the symmetric case, where the §3.2
// wrapper guarantees O(1) rendezvous.
//
// Phase 1 demonstrates the O(1) symmetric bound pairwise. Phase 2 is
// the dynamic coalition on the Scenario API: members join and leave
// mid-mission (churn) while a barrage jammer sweeps the allied block,
// and the active members still meet in the jammer's gaps — all of it
// derived deterministically from one seed.
package main

import (
	"fmt"
	"log"

	"rendezvous"
)

func main() {
	const n = 4096 // full spectrum
	block := []int{1200, 1201, 1205, 1209, 1214}

	// Phase 1: the whole coalition on the allied block, identical sets.
	// Radios wake at wildly different times (deployment is not
	// synchronized); the §3.2 wrapper still meets in O(1).
	mk := func() rendezvous.Schedule {
		s, err := rendezvous.New(n, block)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	worst := 0
	for delta := 0; delta < 500; delta++ {
		ttr, ok := rendezvous.PairTTR(a, b, 0, delta, 100)
		if !ok {
			log.Fatalf("offset %d: miss", delta)
		}
		if ttr > worst {
			worst = ttr
		}
	}
	fmt.Printf("worst symmetric TTR over 500 offsets: %d slots (paper: O(1), ≤ 6)\n\n", worst)

	// Phase 2: the dynamic coalition as a Scenario. Block pins every
	// member to the allied frequencies; Churn staggers deployments and
	// powers off a third of the radios mid-mission; the Jammer barrages
	// the block itself, camping 40 slots on each allied channel.
	sc := rendezvous.Scenario{
		Name:    "coalition",
		N:       n,
		Agents:  8,
		Block:   block,
		Seed:    1944,
		Horizon: 200_000,
		Churn:   rendezvous.Churn{WakeSpread: 50_000, LeaveFrac: 0.34, MinLife: 30_000, MaxLife: 120_000},
		Jammer:  rendezvous.Jammer{Dwell: 40, Channels: block},
	}
	build, err := rendezvous.ScenarioBuilder("ours", sc.N, sc.Seed)
	if err != nil {
		log.Fatal(err)
	}
	res, agents, err := sc.Run(build, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("dynamic coalition under barrage jamming (identical sets ⇒ O(1) via §3.2):")
	for _, m := range res.Meetings() {
		fmt.Printf("  %-4s ↔ %-4s slot %-7d channel %-5d TTR %d\n", m.A, m.B, m.Slot, m.Channel, m.TTR)
	}
	cov := rendezvous.Summarize(res, agents, sc.Horizon)
	if cov.MetPairs != cov.EligiblePairs {
		log.Fatalf("coalition pairs missed: %d of %d", cov.EligiblePairs-cov.MetPairs, cov.EligiblePairs)
	}
	fmt.Printf("\nall %d coexisting pairs met (%d pairs never shared active time)\n",
		cov.MetPairs, sc.Agents*(sc.Agents-1)/2-cov.EligiblePairs)
	fmt.Printf("mean TTR %.0f slots despite the jammer camping on every allied channel %d%% of the time\n",
		cov.MeanTTR, 100/len(block))
}
