// Military-coalition scenario (paper §1.3): members of a dynamic
// coalition all operate on the same small allied frequency block, so
// their channel sets are IDENTICAL — the symmetric case, where the §3.2
// wrapper guarantees O(1) rendezvous. Mid-mission, jamming removes part
// of the block and every radio re-plans (dynamic channel sets); the
// survivors still meet.
package main

import (
	"fmt"
	"log"

	"rendezvous"
)

func main() {
	const n = 4096 // full spectrum
	block := []int{1200, 1201, 1205, 1209, 1214}

	// Phase 1: whole coalition on the allied block. Radios wake at
	// wildly different times (deployment is not synchronized).
	mk := func() rendezvous.Schedule {
		s, err := rendezvous.NewDynamic(n, []rendezvous.Phase{
			{FromSlot: 0, Channels: block},
			{FromSlot: 100_000, Channels: []int{1205, 1209}}, // jamming at local slot 100k
		})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	agents := []rendezvous.Agent{
		{Name: "hq", Sched: mk(), Wake: 0},
		{Name: "alpha", Sched: mk(), Wake: 3},
		{Name: "bravo", Sched: mk(), Wake: 4711},
		{Name: "charlie", Sched: mk(), Wake: 52_000},
	}
	eng, err := rendezvous.NewEngine(agents)
	if err != nil {
		log.Fatal(err)
	}
	res := eng.Run(400_000)

	fmt.Println("coalition rendezvous log (identical sets ⇒ O(1) via §3.2):")
	for _, m := range res.Meetings() {
		fmt.Printf("  %-8s ↔ %-8s slot %-7d channel %-5d TTR %d\n", m.A, m.B, m.Slot, m.Channel, m.TTR)
	}
	if !res.AllMet(agents) {
		log.Fatal("some coalition pair never met")
	}

	// Demonstrate the O(1) symmetric bound explicitly.
	a, b := mk(), mk()
	worst := 0
	for delta := 0; delta < 500; delta++ {
		ttr, ok := rendezvous.PairTTR(a, b, 0, delta, 100)
		if !ok {
			log.Fatalf("offset %d: miss", delta)
		}
		if ttr > worst {
			worst = ttr
		}
	}
	fmt.Printf("\nworst symmetric TTR over 500 offsets: %d slots (paper: O(1), ≤ 6)\n", worst)
	fmt.Println("after jamming (local slot 100k) the radios re-plan onto {1205,1209} and keep meeting.")
}
