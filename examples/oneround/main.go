// One-round discovery maximization (paper appendix): a swarm of agents,
// each with exactly two channels, gets a SINGLE slot. How many pairs can
// discover each other right now? Orient each channel-pair edge toward
// the chosen channel; pairs meet iff their arcs share a head. Random
// orientation yields ≥ 25% of optimum; the Goemans-Williamson-style SDP
// rounding yields ≥ 43.9% and is near-optimal in practice.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rendezvous"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// A sensor swarm: 7 channels, 14 agents with random channel pairs.
	const vertices = 7
	var edges [][2]int
	for len(edges) < 14 {
		u, v := 1+rng.Intn(vertices), 1+rng.Intn(vertices)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	g, err := rendezvous.NewOneRoundGraph(vertices, edges)
	if err != nil {
		log.Fatal(err)
	}

	res, err := rendezvous.SolveOneRound(g, rendezvous.OneRoundSDPOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	_, rnd := rendezvous.BestRandomOrientation(g, rng, 64)

	fmt.Printf("swarm: %d agents over %d channels\n\n", g.NumEdges(), vertices)
	fmt.Printf("random orientation (best of 64): %3d pairs meet in slot 1\n", rnd)
	fmt.Printf("SDP + hyperplane rounding:       %3d pairs meet in slot 1\n", res.InPairs)
	fmt.Printf("SDP relaxation value (in+out):   %.1f\n\n", res.RelaxationValue)

	fmt.Println("per-agent channel choices from the SDP orientation:")
	for e, edge := range g.Edges() {
		head := edge[1]
		if res.Orientation[e] < 0 {
			head = edge[0]
		}
		fmt.Printf("  agent %2d {%d,%d} → hops channel %d\n", e, edge[0], edge[1], head)
	}
	fmt.Println("\npaper appendix: derandomizable 0.439-approximation; random = 0.25.")
}
