// GPS-beacon scenario (paper §5): the environment broadcasts one common
// random bit per slot (e.g. derived from GPS signals). Agents hash their
// channels with a shared min-wise permutation derived from the stream
// and hop the argmin — beating the deterministic Ω(|A||B|) barrier with
// O(|A|+|B|+log n) expected slots for the expander-walk variant.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"rendezvous"
)

func main() {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(3))

	// Two agents with sizeable sets: deterministic rendezvous costs
	// Ω(|A||B|) = Ω(256); the beacon protocols cost ~|A|+|B|+log n.
	shared := 1 + rng.Intn(n)
	setA := randomSetWith(rng, n, 16, shared)
	setB := randomSetWith(rng, n, 16, shared)

	summary := func(name string, ttrs []int) {
		sort.Ints(ttrs)
		var sum int
		for _, t := range ttrs {
			sum += t
		}
		fmt.Printf("  %-12s mean %6.1f   p90 %6d   max %6d slots\n",
			name, float64(sum)/float64(len(ttrs)), ttrs[len(ttrs)*9/10], ttrs[len(ttrs)-1])
	}

	const trials = 40
	var freshT, walkT, detT []int
	for trial := 0; trial < trials; trial++ {
		src := rendezvous.NewBeaconSource(uint64(trial)*977 + 5)
		fa, err := rendezvous.NewBeaconFresh(n, setA, src, rendezvous.BeaconConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fb, _ := rendezvous.NewBeaconFresh(n, setB, src, rendezvous.BeaconConfig{})
		wa, err := rendezvous.NewBeaconWalk(n, setA, src, rendezvous.BeaconConfig{})
		if err != nil {
			log.Fatal(err)
		}
		wb, _ := rendezvous.NewBeaconWalk(n, setB, src, rendezvous.BeaconConfig{})
		da, _ := rendezvous.New(n, setA)
		db, _ := rendezvous.New(n, setB)

		wake := rng.Intn(300)
		// Beacon protocols follow the global clock: align them.
		if t, ok := rendezvous.PairTTR(rendezvous.AlignWake(fa, 0), rendezvous.AlignWake(fb, wake), 0, wake, 1<<22); ok {
			freshT = append(freshT, t)
		}
		if t, ok := rendezvous.PairTTR(rendezvous.AlignWake(wa, 0), rendezvous.AlignWake(wb, wake), 0, wake, 1<<22); ok {
			walkT = append(walkT, t)
		}
		if t, ok := rendezvous.PairTTR(da, db, 0, wake, 1<<22); ok {
			detT = append(detT, t)
		}
	}

	fmt.Printf("n = %d, |A| = |B| = 16, %d trials:\n", n, trials)
	summary("walk", walkT)
	summary("fresh", freshT)
	summary("determ.", detT)
	fmt.Println("\npaper §5: walk O(|A|+|B|+log n) ≤ fresh O((|A|+|B|)·log n);")
	fmt.Println("both sidestep the deterministic Ω(|A||B|) lower bound (Theorem 7).")
}

func randomSetWith(rng *rand.Rand, n, k, shared int) []int {
	set := map[int]bool{shared: true}
	for len(set) < k {
		set[1+rng.Intn(n)] = true
	}
	out := make([]int, 0, k)
	for c := range set {
		out = append(out, c)
	}
	return out
}
